module D = Gpusim.Device

type rank = { ctx : Dlfw.Ctx.t; buffer : Dlfw.Tensor.t }

type t = { ranks_ : rank array; node_fn : int -> int }

(* Inter-node interconnect (InfiniBand HDR-class), well below NVLink. *)
let internode_bw_gbps = 25.0

let create ?(node_of = fun _ -> 0) ctxs ~buffer_bytes =
  if List.length ctxs < 2 then invalid_arg "Comm.create: need at least two ranks";
  let ranks_ =
    Array.of_list
      (List.map
         (fun ctx ->
           let buffer =
             Dlfw.Tensor.create ctx.Dlfw.Ctx.pool ~name:"nccl_comm_buffer"
               [ buffer_bytes / 4 ] Dlfw.Dtype.F32
           in
           { ctx; buffer })
         ctxs)
  in
  { ranks_; node_fn = node_of }

let ranks t = Array.length t.ranks_
let node_of t rank = t.node_fn rank

(* Advance every participant to the same completion instant: collectives
   are synchronizing. *)
let sync_clocks devices =
  let latest = List.fold_left (fun acc d -> Float.max acc (D.now_us d)) 0.0 devices in
  List.iter
    (fun d ->
      let now = D.now_us d in
      if now < latest then Gpusim.Clock.advance_us (D.clock d) (latest -. now))
    devices

(* One rank's share of a ring all-reduce: 2(n-1) chunk exchanges, each a
   peer copy plus a local reduction kernel over the staging buffer. *)
let ring_pass t ~rank ~bytes =
  let n = ranks t in
  let r = t.ranks_.(rank) in
  let next_rank = (rank + 1) mod n in
  let next = t.ranks_.(next_rank) in
  let chunk = max 1 (bytes / n) in
  let device = r.ctx.Dlfw.Ctx.device in
  let crosses_node = t.node_fn rank <> t.node_fn next_rank in
  for _step = 1 to 2 * (n - 1) do
    D.memcpy device
      ~dst:(Dlfw.Tensor.base next.buffer)
      ~src:(Dlfw.Tensor.base r.buffer)
      ~bytes:chunk
      ~kind:(D.Peer (D.id next.ctx.Dlfw.Ctx.device))
      ();
    if crosses_node then
      (* The chunk re-crosses the node boundary at interconnect speed. *)
      Gpusim.Clock.advance_us (D.clock device)
        (float_of_int chunk /. (internode_bw_gbps *. 1.0e9) *. 1.0e6);
    Dlfw.Kernels.launch r.ctx ~name:"ncclDevKernel_AllReduce_Sum_f32_RING_LL"
      ~regions:
        [
          Dlfw.Kernels.region ~extent:chunk r.buffer;
          Dlfw.Kernels.region ~rw:Dlfw.Kernels.Write ~extent:chunk r.buffer;
        ]
      ~flops:(float_of_int (chunk / 4))
      ~work:(chunk / 4) ()
  done

let all_reduce t ~bytes =
  Array.iteri (fun i _ -> ring_pass t ~rank:i ~bytes) t.ranks_;
  sync_clocks (Array.to_list (Array.map (fun r -> r.ctx.Dlfw.Ctx.device) t.ranks_))

let local_reduce = ring_pass

let send_recv t ~src ~dst ~bytes =
  let s = t.ranks_.(src) and d = t.ranks_.(dst) in
  let sdev = s.ctx.Dlfw.Ctx.device and ddev = d.ctx.Dlfw.Ctx.device in
  D.memcpy sdev
    ~dst:(Dlfw.Tensor.base d.buffer)
    ~src:(Dlfw.Tensor.base s.buffer)
    ~bytes
    ~kind:(D.Peer (D.id ddev))
    ();
  sync_clocks [ sdev; ddev ]

(* Fanout-K tree reduction over the fleet's topology plan: every merge
   node gathers its children's partial summaries onto the node's owner
   rank (the first child's owner), paying one peer transfer per non-owner
   child, level by level.  Reuses Pasta.Fleet.plan so the communication
   model and the fleet aggregation walk the identical tree. *)
let reduce_tree t ~(plan : Pasta.Fleet.plan) ~bytes =
  if plan.Pasta.Fleet.pl_leaves <> ranks t then
    invalid_arg "Comm.reduce_tree: plan leaves must equal rank count";
  let owners = ref (Array.init (ranks t) (fun i -> i)) in
  let transfers = ref 0 in
  List.iter
    (fun level ->
      let prev = !owners in
      let next =
        Array.map
          (fun node ->
            match node.Pasta.Fleet.pn_children with
            | [] -> 0
            | root_child :: rest ->
                let dst = prev.(root_child) in
                List.iter
                  (fun child ->
                    let src = prev.(child) in
                    if src <> dst then begin
                      incr transfers;
                      send_recv t ~src ~dst ~bytes
                    end)
                  rest;
                dst)
          level
      in
      owners := next)
    plan.Pasta.Fleet.pl_levels;
  sync_clocks
    (Array.to_list (Array.map (fun r -> r.ctx.Dlfw.Ctx.device) t.ranks_));
  !transfers

let destroy t = Array.iter (fun r -> Dlfw.Tensor.release r.buffer) t.ranks_
