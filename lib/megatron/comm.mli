(** NCCL-like collectives over simulated devices.

    Each device owns a persistent communication buffer tensor (allocated
    once per trainer, giving Megatron-LM's long-lived communication
    tensors, paper §V-D2).  Collectives launch a ring kernel per device
    and move bytes across the peer link, advancing every participant's
    clock to the collective's completion time. *)

type t

val create : ?node_of:(int -> int) -> Dlfw.Ctx.t list -> buffer_bytes:int -> t
(** One communicator over the given per-device contexts.  [node_of] maps a
    rank to its node (default: all ranks on one node); ring steps that
    cross a node boundary pay interconnect bandwidth on top of the peer
    link, the way NCCL rings slow down over InfiniBand.  Raises
    [Invalid_argument] on fewer than two ranks. *)

val node_of : t -> int -> int

val ranks : t -> int

val all_reduce : t -> bytes:int -> unit
(** Ring all-reduce of [bytes] payload across all ranks. *)

val local_reduce : t -> rank:int -> bytes:int -> unit
(** One rank's share of an all-reduce, charged only to that rank's device
    — the right primitive when ranks are simulated sequentially. *)

val send_recv : t -> src:int -> dst:int -> bytes:int -> unit
(** Point-to-point activation transfer between two ranks (rank = index in
    the creation list). *)

val reduce_tree : t -> plan:Pasta.Fleet.plan -> bytes:int -> int
(** Model a fanout-K tree reduction over the fleet's topology
    ({!Pasta.Fleet.plan}; its leaf count must equal the rank count): each
    merge node gathers [bytes] from every non-owner child onto the node's
    owner rank, level by level, then all clocks synchronize.  Returns the
    number of peer transfers charged — [ranks - 1] regardless of fanout,
    but fanout shapes the critical path. *)

val destroy : t -> unit
(** Release the communication buffers. *)
