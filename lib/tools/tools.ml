let register_all () =
  Pasta.Registry.register "kernel_freq" (fun () -> Kernel_freq.tool (Kernel_freq.create ()));
  Pasta.Registry.register "memory_charact" (fun () ->
      Memory_charact.tool (Memory_charact.create ~variant:Memory_charact.Gpu ()));
  Pasta.Registry.register "memory_charact_cs_cpu" (fun () ->
      Memory_charact.tool (Memory_charact.create ~variant:Memory_charact.Cpu_sanitizer ()));
  Pasta.Registry.register "memory_charact_nvbit_cpu" (fun () ->
      Memory_charact.tool (Memory_charact.create ~variant:Memory_charact.Cpu_nvbit ()));
  Pasta.Registry.register "memory_charact_par" (fun () ->
      Memory_charact.tool (Memory_charact.create ~variant:Memory_charact.Gpu_parallel ()));
  Pasta.Registry.register "hotness" (fun () -> Hotness.tool (Hotness.create ()));
  Pasta.Registry.register "hotness_fine" (fun () -> Hotness.tool_fine (Hotness.create ()));
  Pasta.Registry.register "mem_timeline" (fun () -> Mem_timeline.tool (Mem_timeline.create ()));
  Pasta.Registry.register "divergence" (fun () -> Divergence.tool (Divergence.create ()));
  Pasta.Registry.register "barrier_stall" (fun () ->
      Barrier_stall.tool (Barrier_stall.create ()));
  Pasta.Registry.register "value_check" (fun () -> Value_check.tool (Value_check.create ()));
  Pasta.Registry.register "op_summary" (fun () -> Op_summary.tool (Op_summary.create ()));
  Pasta.Registry.register "trace_export" (fun () ->
      Pasta.Trace_export.tool (Pasta.Trace_export.create ()));
  Pasta.Registry.register "transfer" (fun () -> Transfer.tool (Transfer.create ()));
  Pasta.Registry.register "underutilized" (fun () ->
      Underutilized.tool (Underutilized.create ()))
