(** Memory-barrier stall and shared-memory bank-conflict analysis
    (paper §III-H, "Memory-centric analysis tools").

    From barrier and shared-memory instrumentation this tool aggregates,
    per kernel name, the cumulative time warps wait at device-level
    barriers and the fraction of shared-memory accesses serialized by
    bank conflicts — identifying kernels (and through PASTA's operator
    events, layers) that suffer excessive synchronization overhead. *)

type row = {
  kernel : string;
  launches : int;
  stall_us : float;
  shared_accesses : int;
  bank_conflicts : int;
}

val conflict_rate : row -> float

type t

val create : unit -> t
val tool : t -> Pasta.Tool.t

val rows : t -> row list
(** Sorted by decreasing cumulative stall time. *)

val total_stall_us : t -> float

val stall_fraction : t -> workload_us:float -> float
(** Total stall time as a fraction of the given workload time. *)

val dynamic_barriers : t -> int
(** Barriers observed through the fine-grained [Barrier] event stream
    (instruction-level sessions only; 0 elsewhere). *)

val dynamic_shared : t -> int
(** Weighted shared-memory transactions observed through the
    fine-grained [Shared_access] event stream. *)

val report : t -> Format.formatter -> unit
