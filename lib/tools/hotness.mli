(** Time-series hotness analysis (paper §V-C2, Fig. 13).

    Tracks access counts per 2 MiB virtual-memory block over time windows,
    from the GPU-aggregated region summaries.  Blocks hot across the whole
    run hold long-lived data (model parameters — prefetch and pin them);
    blocks with bursty, narrow access windows hold transient data
    (activations / KV-cache — candidates for proactive eviction). *)

type t

val create : ?time_buckets:int -> unit -> t
val tool : t -> Pasta.Tool.t

val tool_fine : t -> Pasta.Tool.t
(** Fine-grained variant ([Gpu_parallel] analysis model): block heat
    comes from the sampled records of the parallel device-side reduction
    ({!Pasta.Devagg}, same 2 MiB blocks) rather than an even per-region
    share, so hot spots inside a large region stand out. *)

type classification = Persistent_hot | Bursty | Cold

val classification_to_string : classification -> string

val matrix : t -> float array array
(** [blocks x time_buckets] access-count matrix (row 0 is the lowest
    block).  Empty when nothing was observed. *)

val block_bytes : int
val block_count : t -> int

val classify : t -> (int * classification) list
(** Per block-row classification: [Persistent_hot] when accessed in at
    least 60% of time windows, [Bursty] when at least 90% of its accesses
    fall within 20% of windows, [Cold] otherwise. *)

val prefetch_candidates : t -> int list
(** Block rows worth pinning in device memory. *)

val evict_candidates : t -> int list

val report : t -> Format.formatter -> unit
(** Heatmap plus the candidate lists. *)
