let block_bytes = 2 * 1024 * 1024

type classification = Persistent_hot | Bursty | Cold

let classification_to_string = function
  | Persistent_hot -> "persistent-hot"
  | Bursty -> "bursty"
  | Cold -> "cold"

type t = {
  time_buckets : int;
  mutable samples : (float * int * float) list; (* (time_us, absolute block, accesses) *)
  mutable t_min : float;
  mutable t_max : float;
  mutable est_rate_min : float;  (* lowest sampling rate behind any summary *)
  mutable est_records : int;  (* kept records behind estimated summaries *)
}

let create ?(time_buckets = 48) () =
  if time_buckets <= 0 then invalid_arg "Hotness.create: time_buckets must be positive";
  {
    time_buckets;
    samples = [];
    t_min = infinity;
    t_max = neg_infinity;
    est_rate_min = 1.0;
    est_records = 0;
  }

let add_region t ~time ~base ~extent ~accesses =
  if extent > 0 && accesses > 0 then begin
    let b0 = base / block_bytes and b1 = (base + extent - 1) / block_bytes in
    let nblocks = b1 - b0 + 1 in
    let share = float_of_int accesses /. float_of_int nblocks in
    for b = b0 to b1 do
      t.samples <- (time, b, share) :: t.samples
    done;
    t.t_min <- Float.min t.t_min time;
    t.t_max <- Float.max t.t_max time
  end

let rec tool t =
  {
    (Pasta.Tool.default ~fine_grained:Pasta.Tool.Gpu_accelerated "hotness") with
    Pasta.Tool.on_event =
      (fun ev ->
        match ev.Pasta.Event.payload with
        | Pasta.Event.Kernel_region { region; _ } ->
            add_region t ~time:ev.Pasta.Event.time_us ~base:region.Pasta.Event.base
              ~extent:region.Pasta.Event.extent ~accesses:region.Pasta.Event.accesses
        | _ -> ());
    report = (fun ppf -> report t ppf);
  }

and matrix t =
  if t.samples = [] then [||]
  else begin
    let bmin = List.fold_left (fun acc (_, b, _) -> min acc b) max_int t.samples in
    let bmax = List.fold_left (fun acc (_, b, _) -> max acc b) min_int t.samples in
    let rows = bmax - bmin + 1 in
    let span = Float.max 1.0 (t.t_max -. t.t_min) in
    let m = Array.make_matrix rows t.time_buckets 0.0 in
    List.iter
      (fun (time, b, c) ->
        let col =
          min (t.time_buckets - 1)
            (int_of_float ((time -. t.t_min) /. span *. float_of_int t.time_buckets))
        in
        m.(b - bmin).(col) <- m.(b - bmin).(col) +. c)
      t.samples;
    m
  end

and block_count t = Array.length (matrix t)

and classify t =
  let m = matrix t in
  Array.to_list
    (Array.mapi
       (fun i row ->
         let total = Array.fold_left ( +. ) 0.0 row in
         let active = Array.fold_left (fun acc v -> if v > 0.0 then acc + 1 else acc) 0 row in
         let buckets = Array.length row in
         let cls =
           if total <= 0.0 then Cold
           else if float_of_int active >= 0.6 *. float_of_int buckets then Persistent_hot
           else begin
             (* Share of accesses inside the top 20% of windows. *)
             let sorted = Array.copy row in
             Array.sort (fun a b -> compare b a) sorted;
             let top_n = max 1 (buckets / 5) in
             let top_sum = ref 0.0 in
             for j = 0 to top_n - 1 do
               top_sum := !top_sum +. sorted.(j)
             done;
             if !top_sum >= 0.9 *. total then Bursty else Cold
           end
         in
         (i, cls))
       m)

and prefetch_candidates t =
  List.filter_map (fun (i, c) -> if c = Persistent_hot then Some i else None) (classify t)

and evict_candidates t =
  List.filter_map (fun (i, c) -> if c = Bursty then Some i else None) (classify t)

and report t ppf =
  let m = matrix t in
  if Array.length m = 0 then Format.fprintf ppf "hotness: no accesses observed@."
  else begin
    let rows = Array.length m in
    Format.fprintf ppf "hotness: %d blocks of %a over %d time windows@." rows
      Pasta_util.Bytesize.pp block_bytes t.time_buckets;
    (* Downsample rows for display. *)
    let display_rows = min rows 48 in
    let group = (rows + display_rows - 1) / display_rows in
    let display = Array.make_matrix display_rows t.time_buckets 0.0 in
    Array.iteri
      (fun i row ->
        let d = min (display_rows - 1) (i / group) in
        Array.iteri (fun j v -> display.(d).(j) <- display.(d).(j) +. v) row)
      m;
    Pasta_util.Heatmap.render ppf
      ~row_label:(fun i -> Printf.sprintf "blk %5d" (i * group))
      display;
    let hot = prefetch_candidates t and burst = evict_candidates t in
    Format.fprintf ppf "persistent-hot blocks (prefetch/pin candidates): %d@."
      (List.length hot);
    Format.fprintf ppf "bursty blocks (proactive-eviction candidates): %d@."
      (List.length burst);
    (* Exact (rate-1.0) runs print nothing extra, keeping their output
       byte-identical to the pre-sampling pipeline. *)
    if t.est_rate_min < 1.0 then
      Format.fprintf ppf
        "note: estimated from sampled records (min rate %.3f, %d records \
         kept, worst-case ±%.1f%%)@."
        t.est_rate_min t.est_records
        (if t.est_records = 0 then 0.0
         else
           100.0
           *. sqrt
                ((1.0 -. t.est_rate_min)
                /. (float_of_int t.est_records *. t.est_rate_min)))
  end

(* Fine-grained variant: per-block counts come from the parallel
   device-side reduction instead of region summaries, so a block's heat
   reflects the records actually sampled inside it rather than an even
   share of its region.  Devagg uses the same 2 MiB block size. *)
let tool_fine t =
  {
    (Pasta.Tool.default ~fine_grained:Pasta.Tool.Gpu_parallel "hotness_fine") with
    Pasta.Tool.on_event =
      (fun ev ->
        match ev.Pasta.Event.payload with
        | Pasta.Event.Device_summary { summary; _ } ->
            let time = ev.Pasta.Event.time_us in
            if summary.Pasta.Devagg.est_rate < 1.0 then begin
              if summary.Pasta.Devagg.est_rate < t.est_rate_min then
                t.est_rate_min <- summary.Pasta.Devagg.est_rate;
              t.est_records <-
                t.est_records + summary.Pasta.Devagg.sampled_records
            end;
            List.iter
              (fun (blk, count) ->
                if count > 0 then begin
                  t.samples <- (time, blk, float_of_int count) :: t.samples;
                  t.t_min <- Float.min t.t_min time;
                  t.t_max <- Float.max t.t_max time
                end)
              summary.Pasta.Devagg.blocks
        | _ -> ());
    report = (fun ppf -> report t ppf);
  }
