type row = {
  kernel : string;
  launches : int;
  stall_us : float;
  shared_accesses : int;
  bank_conflicts : int;
}

let conflict_rate r =
  if r.shared_accesses = 0 then 0.0
  else float_of_int r.bank_conflicts /. float_of_int r.shared_accesses

type t = {
  table : (string, row) Hashtbl.t;
  (* Dynamic fine-grained stream, when the backend surfaces it: individual
     weighted shared-memory transactions and per-kernel barrier counts. *)
  mutable dyn_barriers : int;
  mutable dyn_shared : int;
}

let create () = { table = Hashtbl.create 64; dyn_barriers = 0; dyn_shared = 0 }
let dynamic_barriers t = t.dyn_barriers
let dynamic_shared t = t.dyn_shared

let on_event t (ev : Pasta.Event.t) =
  match ev.Pasta.Event.payload with
  | Pasta.Event.Barrier { count; _ } -> t.dyn_barriers <- t.dyn_barriers + count
  | Pasta.Event.Shared_access { access; _ } ->
      t.dyn_shared <- t.dyn_shared + access.Pasta.Event.weight
  | _ -> ()

let observe t (info : Pasta.Event.kernel_info) (p : Gpusim.Kernel.profile) =
  let name = info.Pasta.Event.name in
  let prev =
    Option.value
      ~default:
        { kernel = name; launches = 0; stall_us = 0.0; shared_accesses = 0; bank_conflicts = 0 }
      (Hashtbl.find_opt t.table name)
  in
  Hashtbl.replace t.table name
    {
      prev with
      launches = prev.launches + 1;
      stall_us = prev.stall_us +. p.Gpusim.Kernel.barrier_stall_us;
      shared_accesses = prev.shared_accesses + p.Gpusim.Kernel.shared_accesses;
      bank_conflicts = prev.bank_conflicts + p.Gpusim.Kernel.bank_conflicts;
    }

let rows t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.table []
  |> List.sort (fun a b -> compare b.stall_us a.stall_us)

let total_stall_us t = List.fold_left (fun acc r -> acc +. r.stall_us) 0.0 (rows t)

let stall_fraction t ~workload_us =
  if workload_us <= 0.0 then 0.0 else total_stall_us t /. workload_us

let report t ppf =
  let rs = rows t in
  if rs = [] then Format.fprintf ppf "barrier_stall: no kernels observed@."
  else begin
    Format.fprintf ppf "barrier_stall: %.1f ms cumulative barrier stall@."
      (total_stall_us t /. 1000.0);
    List.iteri
      (fun i r ->
        if i < 10 then
          Format.fprintf ppf
            "  %-58s %8.1f ms stall  %5.2f%% bank conflicts (%d launches)@."
            r.kernel (r.stall_us /. 1000.0)
            (100.0 *. conflict_rate r)
            r.launches)
      rs;
    (* Only instruction-level sessions produce the dynamic stream, so runs
       without it keep the report byte-identical. *)
    if t.dyn_barriers > 0 || t.dyn_shared > 0 then
      Format.fprintf ppf "  dynamic: %d barriers, %d shared-memory accesses@."
        t.dyn_barriers t.dyn_shared
  end

let tool t =
  {
    (Pasta.Tool.default ~fine_grained:Pasta.Tool.Instruction_level "barrier_stall") with
    Pasta.Tool.on_event = on_event t;
    Pasta.Tool.on_kernel_profile = observe t;
    report = report t;
  }
