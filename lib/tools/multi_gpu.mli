(** Multi-GPU profiling support (paper §IV-D, §V-D2, Fig. 15).

    One PASTA session per device, each with its own memory-timeline tool
    — the per-rank profile generation the paper describes.  Only processes
    that actually drive a device get instrumented (the
    [CUDA_INJECTION64_PATH] behaviour): attaching skips devices with a
    [has_context] predicate returning false. *)

type t

val attach :
  ?has_context:(Gpusim.Device.t -> bool) -> Gpusim.Device.t list -> t
(** Default predicate: all devices have a context. *)

val detach : t -> (int * Pasta.Session.result) list
(** Per-device results, in attach order. *)

val timelines : t -> (int * Mem_timeline.t) list
(** (device id, timeline tool state). *)

val instrumented_devices : t -> int

val pp_fleet_view : Format.formatter -> t -> unit
(** Per-device one-liners in device-id order (peak bytes, alloc/free
    events) — the same shard-per-line shape {!Pasta.Fleet}'s report uses,
    so multi-GPU and fleet health sections read alike. *)
