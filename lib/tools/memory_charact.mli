(** Memory characteristics / working-set analysis (paper §V-B2, Table V).

    The working set of a workload is the maximum memory footprint of any
    single kernel execution, where a kernel's footprint is the total size
    of the memory objects it {e actually accessed} (argument lists
    over-approximate; access tracking is required).  Objects are resolved
    tensor-first through PASTA's cross-layer registry.

    Three interchangeable variants reproduce the paper's overhead study
    (§V-B3, Figs. 8–10):

    - [Gpu] — GPU-resident collect-and-analyze (PASTA's low-overhead
      design): the tool consumes per-kernel object summaries;
    - [Gpu_parallel] — like [Gpu], but footprints come from the
      domain-parallel device-side reduction over sampled records
      ({!Pasta.Devagg}); the tool consumes one merged summary per kernel;
    - [Cpu_sanitizer] — Compute Sanitizer MemoryTracker style: the tool
      processes every trace record on the host;
    - [Cpu_nvbit] — NVBit MemTrace style: ditto, behind SASS dump/parse.

    All three produce the same working-set numbers; only the analysis
    model (and hence the overhead) differs. *)

type variant = Gpu | Gpu_parallel | Cpu_sanitizer | Cpu_nvbit

val variant_to_string : variant -> string

type row = {
  kernel_count : int;
  footprint_bytes : int;  (** peak framework memory usage *)
  ws_bytes : int;  (** maximum per-kernel footprint *)
  ws_min : int;
  ws_mean : float;
  ws_median : float;
  ws_p90 : float;
}

type t

val create : ?variant:variant -> unit -> t
val tool : t -> Pasta.Tool.t
val variant : t -> variant

val result : t -> row
(** Raises [Invalid_argument] when no kernels were observed. *)

val kernel_footprints : t -> float array
(** Per-kernel accessed-object footprints in bytes, in launch order. *)

val report : t -> Format.formatter -> unit
