type entry = {
  device : Gpusim.Device.t;
  session : Pasta.Session.t;
  mem : Mem_timeline.t;
}

type t = { entries : entry list }

let attach ?(has_context = fun _ -> true) devices =
  let entries =
    List.filter_map
      (fun device ->
        if has_context device then begin
          let mem = Mem_timeline.create () in
          let session = Pasta.Session.attach ~tool:(Mem_timeline.tool mem) device in
          Some { device; session; mem }
        end
        else None)
      devices
  in
  { entries }

let detach t =
  List.map
    (fun e -> (Gpusim.Device.id e.device, Pasta.Session.detach e.session))
    t.entries

let timelines t = List.map (fun e -> (Gpusim.Device.id e.device, e.mem)) t.entries
let instrumented_devices t = List.length t.entries

(* Fleet view: the per-rank sessions rendered the way Pasta.Fleet names
   shards — device id order, one line each — so a multi-GPU timeline run
   and a fleet run read the same in health output. *)
let pp_fleet_view ppf t =
  let entries =
    List.sort
      (fun a b -> compare (Gpusim.Device.id a.device) (Gpusim.Device.id b.device))
      t.entries
  in
  Format.fprintf ppf "multi-gpu fleet view: %d instrumented device%s@."
    (List.length entries)
    (if List.length entries = 1 then "" else "s");
  List.iter
    (fun e ->
      Format.fprintf ppf
        "  device %3d: peak %.0f bytes, %d allocs, %d frees@."
        (Gpusim.Device.id e.device)
        (Mem_timeline.peak_bytes e.mem)
        (Mem_timeline.alloc_events e.mem)
        (Mem_timeline.free_events e.mem))
    entries
