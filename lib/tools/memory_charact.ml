type variant = Gpu | Gpu_parallel | Cpu_sanitizer | Cpu_nvbit

let variant_to_string = function
  | Gpu -> "CS-GPU"
  | Gpu_parallel -> "CS-GPU-PAR"
  | Cpu_sanitizer -> "CS-CPU"
  | Cpu_nvbit -> "NVBIT-CPU"

type row = {
  kernel_count : int;
  footprint_bytes : int;
  ws_bytes : int;
  ws_min : int;
  ws_mean : float;
  ws_median : float;
  ws_p90 : float;
}

type t = {
  var : variant;
  (* CPU variants rebuild the object registry from the event stream; the
     GPU variant receives already-resolved objects. *)
  own_objmap : Pasta.Objmap.t;
  mutable footprints : float list; (* reverse launch order *)
  mutable kernels : int;
  mutable peak_usage : int;
  mutable live_direct : int; (* non-pool runtime allocations *)
  current : (int, int) Hashtbl.t; (* obj_key -> obj_bytes for the running kernel *)
  mutable est_rate_min : float;
      (* lowest sampling rate behind any consumed summary; < 1.0 means the
         working sets are sample-based estimates *)
}

let create ?(variant = Gpu) () =
  {
    var = variant;
    own_objmap = Pasta.Objmap.create ();
    footprints = [];
    kernels = 0;
    peak_usage = 0;
    live_direct = 0;
    current = Hashtbl.create 32;
    est_rate_min = 1.0;
  }

let variant t = t.var
let kernel_footprints t = Array.of_list (List.rev t.footprints)

let push_footprint t bytes = t.footprints <- float_of_int bytes :: t.footprints

let finish_kernel_cpu t =
  let total = Hashtbl.fold (fun _ bytes acc -> acc + bytes) t.current 0 in
  Hashtbl.reset t.current;
  push_footprint t total

let track_usage t (ev : Pasta.Event.t) =
  match ev.Pasta.Event.payload with
  | Pasta.Event.Tensor_alloc { pool_reserved; _ } | Pasta.Event.Tensor_free { pool_reserved; _ }
    ->
      t.peak_usage <- max t.peak_usage pool_reserved
  | Pasta.Event.Memory_alloc { bytes; _ } ->
      t.live_direct <- t.live_direct + bytes;
      t.peak_usage <- max t.peak_usage t.live_direct
  | Pasta.Event.Memory_free { bytes; _ } -> t.live_direct <- t.live_direct - bytes
  | _ -> ()

let feed_own_objmap t (ev : Pasta.Event.t) =
  match ev.Pasta.Event.payload with
  | Pasta.Event.Memory_alloc { addr; bytes; managed } ->
      Pasta.Objmap.on_alloc t.own_objmap ~addr ~bytes ~managed
  | Pasta.Event.Memory_free { addr; _ } -> Pasta.Objmap.on_free t.own_objmap ~addr
  | Pasta.Event.Tensor_alloc { ptr; bytes; tag; _ } ->
      Pasta.Objmap.on_tensor_alloc t.own_objmap ~ptr ~bytes ~tag
  | Pasta.Event.Tensor_free { ptr; _ } -> Pasta.Objmap.on_tensor_free t.own_objmap ~ptr
  | _ -> ()

let result t =
  if t.kernels = 0 || t.footprints = [] then
    invalid_arg "Memory_charact.result: no kernels observed";
  let xs = Array.of_list (List.rev t.footprints) in
  let s = Pasta_util.Stats.summarize xs in
  {
    kernel_count = t.kernels;
    footprint_bytes = t.peak_usage;
    ws_bytes = int_of_float s.Pasta_util.Stats.max;
    ws_min = int_of_float s.Pasta_util.Stats.min;
    ws_mean = s.Pasta_util.Stats.mean;
    ws_median = s.Pasta_util.Stats.median;
    ws_p90 = s.Pasta_util.Stats.p90;
  }

let report t ppf =
  match result t with
  | exception Invalid_argument _ ->
      Format.fprintf ppf "memory_charact (%s): no kernels observed@."
        (variant_to_string t.var)
  | r ->
      Format.fprintf ppf
        "memory_charact (%s): %d kernels, footprint %a, WS %a (min %a, avg %.2f MB, \
         median %.2f MB, p90 %.2f MB)@."
        (variant_to_string t.var) r.kernel_count Pasta_util.Bytesize.pp
        r.footprint_bytes Pasta_util.Bytesize.pp r.ws_bytes Pasta_util.Bytesize.pp
        r.ws_min
        (r.ws_mean /. 1048576.0)
        (r.ws_median /. 1048576.0)
        (r.ws_p90 /. 1048576.0);
      (* Rate-1.0 runs add nothing, so exact output stays byte-identical. *)
      if t.est_rate_min < 1.0 then
        Format.fprintf ppf
          "  note: working sets estimated from sampled records (min rate %.3f)@."
          t.est_rate_min

let tool t =
  let fine_grained =
    match t.var with
    | Gpu -> Pasta.Tool.Gpu_accelerated
    | Gpu_parallel -> Pasta.Tool.Gpu_parallel
    | Cpu_sanitizer -> Pasta.Tool.Cpu_sanitizer
    | Cpu_nvbit -> Pasta.Tool.Cpu_nvbit
  in
  let base = Pasta.Tool.default ~fine_grained "memory_charact" in
  match t.var with
  | Gpu ->
      {
        base with
        Pasta.Tool.on_event = track_usage t;
        on_mem_summary =
          (fun _info summary ->
            let bytes =
              List.fold_left
                (fun acc (obj, count) ->
                  if count > 0 then acc + Pasta.Objmap.obj_bytes obj else acc)
                0 summary
            in
            push_footprint t bytes);
        on_kernel_end = (fun _ _ -> t.kernels <- t.kernels + 1);
        report = report t;
      }
  | Gpu_parallel ->
      {
        base with
        Pasta.Tool.on_event = track_usage t;
        on_device_summary =
          (fun _info summary ->
            if summary.Pasta.Devagg.est_rate < t.est_rate_min then
              t.est_rate_min <- summary.Pasta.Devagg.est_rate;
            let bytes =
              List.fold_left
                (fun acc (obj, count) ->
                  if count > 0 then acc + Pasta.Objmap.obj_bytes obj else acc)
                0 summary.Pasta.Devagg.objects
            in
            push_footprint t bytes);
        on_kernel_end = (fun _ _ -> t.kernels <- t.kernels + 1);
        report = report t;
      }
  | Cpu_sanitizer | Cpu_nvbit ->
      let touch addr =
        let obj = Pasta.Objmap.resolve t.own_objmap addr in
        Hashtbl.replace t.current (Pasta.Objmap.obj_key obj)
          (Pasta.Objmap.obj_bytes obj)
      in
      {
        base with
        Pasta.Tool.on_event =
          (fun ev ->
            feed_own_objmap t ev;
            track_usage t ev);
        on_access = (fun _info access -> touch access.Pasta.Event.addr);
        (* The sanitizer path can hand records over as packed batches;
           working sets only need the addresses, so consume them in place
           instead of paying a per-record callback each. *)
        on_access_batch =
          (if t.var = Cpu_sanitizer then
             Some
               (fun _info batch ->
                 Gpusim.Warp.iter_batch batch ~f:(fun a ->
                     touch a.Gpusim.Warp.addr))
           else None);
        on_access_columns =
          (* Columnar delivery: read the address column straight off the
             batch — no per-record boxing at all. *)
          (if t.var = Cpu_sanitizer then
             Some
               (fun _info batch ->
                 let module W = Gpusim.Warp in
                 for i = 0 to batch.W.b_len - 1 do
                   touch (Bigarray.Array1.unsafe_get batch.W.addrs i)
                 done)
           else None);
        on_kernel_end =
          (fun _ _ ->
            t.kernels <- t.kernels + 1;
            finish_kernel_cpu t);
        report = report t;
      }
