type memcpy_kind = Host_to_device | Device_to_host | Device_to_device | Peer of int

type exec_stats = {
  duration_us : float;
  true_accesses : int;
  faulted_pages : int;
}

type launch_info = {
  device_id : int;
  grid_id : int;
  stream : int;
  kernel : Kernel.t;
  py_stack : Hostctx.frame list;
  native_stack : Hostctx.frame list;
}

type event =
  | Api of { name : string; phase : [ `Enter | `Exit ] }
  | Malloc of { alloc : Device_mem.alloc }
  | Free of { alloc : Device_mem.alloc }
  | Memcpy of { dst : int; src : int; bytes : int; kind : memcpy_kind; stream : int }
  | Memset of { addr : int; bytes : int; value : int; stream : int }
  | Launch_begin of launch_info
  | Launch_end of launch_info * exec_stats
  | Sync of [ `Device | `Stream of int ]

type probe = { probe_name : string; on_event : event -> unit }

type instrument = {
  instr_name : string;
  materialize : bool;
  on_kernel_entry : launch_info -> unit;
  on_region : launch_info -> Kernel.region -> unit;
  on_access : launch_info -> Warp.access -> unit;
  on_access_batch : (launch_info -> Warp.batch -> unit) option;
  on_kernel_exit : launch_info -> exec_stats -> unit;
}

type t = {
  dev_id : int;
  arch : Arch.t;
  clock : Clock.t;
  mem : Device_mem.t;
  uvm : Uvm.t;
  rng : Pasta_util.Det_rng.t;
  key_seed : int64;  (* root of the per-chunk generation streams *)
  mutable probes : probe list;
  mutable instrument : instrument option;
  mutable grid_counter : int;
  mutable sample_cap : int;
  mutable sample_rate : float;  (* fraction of materialized records kept *)
  mutable faults : Faults.t option;
  mutable pool : Pasta_util.Domain_pool.t option;
  stream_busy : (int, float) Hashtbl.t; (* stream -> absolute completion us *)
}

let create ?(id = 0) ?uvm_capacity ?(seed = 0x9A57AL) arch =
  let clock = Clock.create () in
  let uvm_capacity = Option.value ~default:arch.Arch.mem_bytes uvm_capacity in
  {
    dev_id = id;
    arch;
    clock;
    mem = Device_mem.create ~capacity:arch.Arch.mem_bytes ();
    uvm = Uvm.create arch clock ~capacity:uvm_capacity;
    rng = Pasta_util.Det_rng.create (Int64.add seed (Int64.of_int id));
    key_seed = Int64.add seed (Int64.of_int id);
    probes = [];
    instrument = None;
    grid_counter = 0;
    sample_cap = 128;
    sample_rate = 1.0;
    faults = None;
    pool = None;
    stream_busy = Hashtbl.create 4;
  }

let id t = t.dev_id
let arch t = t.arch
let clock t = t.clock
let now_us t = Clock.now_us t.clock
let mem t = t.mem
let uvm t = t.uvm
let launches t = t.grid_counter

let set_sample_cap t n =
  if n <= 0 then invalid_arg "Device.set_sample_cap: must be positive";
  t.sample_cap <- n

let sample_cap t = t.sample_cap

let set_sample_rate t r =
  if not (Float.is_finite r) || r <= 0.0 then
    invalid_arg "Device.set_sample_rate: rate must be positive and finite";
  t.sample_rate <- Float.min r 1.0

let sample_rate t = t.sample_rate

(* Salt appended to the per-chunk key so thinning decisions come from a
   stream disjoint from the fill stream: at rate 1.0 no thinning draw is
   ever made and the fill output is byte-identical to the unsampled
   pipeline. *)
let sampling_salt = 0x5A3D

let add_probe t p = t.probes <- t.probes @ [ p ]
let remove_probe t name =
  t.probes <- List.filter (fun p -> not (String.equal p.probe_name name)) t.probes

let set_instrument t i = t.instrument <- Some i
let clear_instrument t = t.instrument <- None

let set_faults t f = t.faults <- Some f
let clear_faults t = t.faults <- None
let faults t = t.faults

let set_pool t p = t.pool <- Some p
let clear_pool t = t.pool <- None
let pool t = t.pool

(* API enter/exit events pair with phase accounting in the vendor
   substrates, and alloc/free events keep the object registry truthful, so
   fault injection never touches those; everything else on the hook bus is
   fair game for loss and duplication. *)
let droppable = function
  | Memcpy _ | Memset _ | Launch_begin _ | Launch_end _ | Sync _ -> true
  | Api _ | Malloc _ | Free _ -> false

let emit t ev =
  let deliver () = List.iter (fun p -> p.on_event ev) t.probes in
  match t.faults with
  | Some f when droppable ev -> (
      match Faults.event_fate f with
      | `Deliver -> deliver ()
      | `Drop -> ()
      | `Duplicate ->
          deliver ();
          deliver ())
  | _ -> deliver ()

let api_name t suffix =
  match t.arch.Arch.vendor with
  | Arch.Nvidia -> "cuda" ^ suffix
  | Arch.Amd -> "hip" ^ suffix
  | Arch.Google -> "TpuExecutor_" ^ suffix

let with_api t name f =
  emit t (Api { name; phase = `Enter });
  let r = f () in
  emit t (Api { name; phase = `Exit });
  r

let malloc t ?(tag = "device") bytes =
  with_api t (api_name t "Malloc") @@ fun () ->
  Clock.advance_us t.clock Costmodel.malloc_time_us;
  let alloc = Device_mem.alloc t.mem ~tag ~managed:false bytes in
  emit t (Malloc { alloc });
  alloc

let malloc_managed t ?(tag = "managed") bytes =
  with_api t (api_name t "MallocManaged") @@ fun () ->
  Clock.advance_us t.clock Costmodel.malloc_time_us;
  let alloc = Device_mem.alloc t.mem ~tag ~managed:true bytes in
  Uvm.register_range t.uvm ~base:alloc.Device_mem.base ~bytes:alloc.Device_mem.bytes;
  emit t (Malloc { alloc });
  alloc

let free t base =
  with_api t (api_name t "Free") @@ fun () ->
  Clock.advance_us t.clock Costmodel.free_time_us;
  let alloc = Device_mem.free t.mem base in
  if alloc.Device_mem.managed then Uvm.unregister_range t.uvm ~base;
  emit t (Free { alloc })

let memcpy t ~dst ~src ~bytes ~kind ?(stream = 0) () =
  let suffix = match kind with Peer _ -> "MemcpyPeer" | _ -> "Memcpy" in
  with_api t (api_name t suffix) @@ fun () ->
  let kind' =
    match kind with
    | Host_to_device -> `H2d
    | Device_to_host -> `D2h
    | Device_to_device -> `D2d
    | Peer _ -> `P2p
  in
  Clock.advance_us t.clock (Costmodel.memcpy_time_us t.arch ~bytes ~kind:kind');
  emit t (Memcpy { dst; src; bytes; kind; stream })

let memset t ~addr ~bytes ~value ?(stream = 0) () =
  with_api t (api_name t "Memset") @@ fun () ->
  Clock.advance_us t.clock (Costmodel.memset_time_us t.arch ~bytes);
  emit t (Memset { addr; bytes; value; stream })

let launch t ?(stream = 0) kernel =
  let api =
    match t.arch.Arch.vendor with
    | Arch.Nvidia -> "cuLaunchKernel"
    | Arch.Amd -> "hipModuleLaunchKernel"
    | Arch.Google -> "TpuExecutor_ExecuteProgram"
  in
  with_api t api @@ fun () ->
  t.grid_counter <- t.grid_counter + 1;
  let info =
    {
      device_id = t.dev_id;
      grid_id = t.grid_counter;
      stream;
      kernel;
      py_stack = Hostctx.snapshot Hostctx.Python;
      native_stack = Hostctx.snapshot Hostctx.Native;
    }
  in
  emit t (Launch_begin info);
  (match t.instrument with Some i -> i.on_kernel_entry info | None -> ());
  (* Demand-migrate managed pages the kernel touches. *)
  let faulted = ref 0 in
  List.iter
    (fun (r : Kernel.region) ->
      Uvm.touch t.uvm ~base:r.Kernel.base ~bytes:r.Kernel.bytes ~faulted_pages:faulted)
    kernel.Kernel.regions;
  (match t.faults with
  | Some f -> ignore (Faults.ecc_check f t.mem : int option)
  | None -> ());
  let duration = Costmodel.kernel_time_us t.arch kernel in
  let duration =
    match t.faults with
    | Some f -> Faults.kernel_duration_us f duration
    | None -> duration
  in
  Clock.advance_us t.clock duration;
  let true_accesses =
    match t.instrument with
    | None -> Kernel.total_accesses kernel
    | Some i ->
        List.iter (fun r -> i.on_region info r) kernel.Kernel.regions;
        if i.materialize then begin
          (* Chunked generation: the chunk layout and every per-chunk RNG
             stream are pure functions of (kernel, sample cap, grid_id), so
             running the chunks inline or on a pool of any size yields the
             same batches.  The merge below walks the plan order, giving
             downstream consumers one deterministic record stream. *)
          let specs = Warp.plan ~max_records_per_region:t.sample_cap kernel in
          let nspecs = Array.length specs in
          let corrupt =
            match t.faults with
            | Some f ->
                let rates = Faults.rates f and fseed = Faults.seed f in
                fun b -> Faults.corrupt_batch ~rates ~seed:fseed ~grid_id:info.grid_id b
            | None -> fun _ -> 0
          in
          let rate = t.sample_rate in
          let gen idx =
            let spec = specs.(idx) in
            let rng =
              Pasta_util.Det_rng.of_key t.key_seed
                [| info.grid_id; spec.Warp.cs_region_idx; spec.Warp.cs_chunk |]
            in
            let b = Warp.fill_chunk ~rng ~warp_size:t.arch.Arch.warp_size spec in
            let b =
              if rate >= 1.0 then b
              else
                let srng =
                  Pasta_util.Det_rng.of_key t.key_seed
                    [|
                      info.grid_id;
                      spec.Warp.cs_region_idx;
                      spec.Warp.cs_chunk;
                      sampling_salt;
                    |]
                in
                Warp.thin ~rng:srng ~rate b
            in
            (b, corrupt b)
          in
          let results =
            match t.pool with
            | Some p when Pasta_util.Domain_pool.size p > 1 && nspecs > 1 ->
                Pasta_util.Domain_pool.map p nspecs gen
            | _ -> Array.init nspecs gen
          in
          Array.iter
            (fun (b, corrupted) ->
              (match t.faults with
              | Some f when corrupted > 0 -> Faults.note_corrupted f corrupted
              | _ -> ());
              (* Thinning can empty a chunk; delivering a zero-record batch
                 would only burn ring-buffer and dispatch work. *)
              if Warp.batch_len b > 0 then
                match i.on_access_batch with
                | Some fb -> fb info b
                | None -> Warp.iter_batch b ~f:(fun a -> i.on_access info a))
            results;
          Kernel.total_accesses kernel
        end
        else Kernel.total_accesses kernel
  in
  let stats = { duration_us = duration; true_accesses; faulted_pages = !faulted } in
  (match t.instrument with Some i -> i.on_kernel_exit info stats | None -> ());
  emit t (Launch_end (info, stats));
  stats

let stream_busy_until t s =
  Float.max (Clock.now_us t.clock)
    (Option.value ~default:0.0 (Hashtbl.find_opt t.stream_busy s))

let join_host_with t completion =
  let now = Clock.now_us t.clock in
  if completion > now then Clock.advance_us t.clock (completion -. now)

(* Enqueue [duration] of work on a stream, charging the host only the
   submission cost. *)
let enqueue t ~stream ~submit_us ~duration =
  Clock.advance_us t.clock submit_us;
  let start = stream_busy_until t stream in
  Hashtbl.replace t.stream_busy stream (start +. duration)

let launch_async t ~stream kernel =
  if t.instrument <> None then
    (* Instrumentation serializes execution, as on real hardware. *)
    launch t ~stream kernel
  else begin
    let api =
      match t.arch.Arch.vendor with
      | Arch.Nvidia -> "cuLaunchKernel"
      | Arch.Amd -> "hipModuleLaunchKernel"
      | Arch.Google -> "TpuExecutor_ExecuteProgram"
    in
    with_api t api @@ fun () ->
    t.grid_counter <- t.grid_counter + 1;
    let info =
      {
        device_id = t.dev_id;
        grid_id = t.grid_counter;
        stream;
        kernel;
        py_stack = Hostctx.snapshot Hostctx.Python;
        native_stack = Hostctx.snapshot Hostctx.Native;
      }
    in
    emit t (Launch_begin info);
    let faulted = ref 0 in
    List.iter
      (fun (r : Kernel.region) ->
        Uvm.touch t.uvm ~base:r.Kernel.base ~bytes:r.Kernel.bytes ~faulted_pages:faulted)
      kernel.Kernel.regions;
    (match t.faults with
    | Some f -> ignore (Faults.ecc_check f t.mem : int option)
    | None -> ());
    let duration = Costmodel.kernel_time_us t.arch kernel in
    let duration =
      match t.faults with
      | Some f -> Faults.kernel_duration_us f duration
      | None -> duration
    in
    enqueue t ~stream ~submit_us:t.arch.Arch.launch_overhead_us
      ~duration:(duration -. t.arch.Arch.launch_overhead_us);
    let stats =
      {
        duration_us = duration;
        true_accesses = Kernel.total_accesses kernel;
        faulted_pages = !faulted;
      }
    in
    emit t (Launch_end (info, stats));
    stats
  end

let memcpy_async t ~dst ~src ~bytes ~kind ~stream =
  if t.instrument <> None then memcpy t ~dst ~src ~bytes ~kind ~stream ()
  else begin
    let suffix = match kind with Peer _ -> "MemcpyPeerAsync" | _ -> "MemcpyAsync" in
    with_api t (api_name t suffix) @@ fun () ->
    let kind' =
      match kind with
      | Host_to_device -> `H2d
      | Device_to_host -> `D2h
      | Device_to_device -> `D2d
      | Peer _ -> `P2p
    in
    let duration = Costmodel.memcpy_time_us t.arch ~bytes ~kind:kind' in
    enqueue t ~stream ~submit_us:2.0 ~duration:(duration -. 2.0);
    emit t (Memcpy { dst; src; bytes; kind; stream })
  end

let synchronize t =
  with_api t (api_name t "DeviceSynchronize") @@ fun () ->
  Hashtbl.iter (fun _ completion -> join_host_with t completion) t.stream_busy;
  Clock.advance_us t.clock 3.0;
  emit t (Sync `Device)

let stream_synchronize t s =
  with_api t (api_name t "StreamSynchronize") @@ fun () ->
  join_host_with t (stream_busy_until t s);
  Clock.advance_us t.clock 2.0;
  emit t (Sync (`Stream s))
