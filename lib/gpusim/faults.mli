(** Deterministic fault injection for the simulated device.

    A production profiler must keep working when the machine under it
    misbehaves: trace records arrive corrupted, events get lost or
    delivered twice, memory develops ECC errors, kernels hang.  This
    module injects exactly those failures into the device's profiling
    hook bus, driven entirely by a {!Pasta_util.Det_rng} stream so that a
    run with a fixed seed reproduces the same faults bit-for-bit.

    Install an injector with {!Device.set_faults}; the device then routes
    every decision point (event emission, access materialization, kernel
    timing, per-launch memory checks) through it. *)

type rates = {
  corrupt_access : float;  (** P(a materialized access record is corrupted) *)
  drop_event : float;  (** P(a droppable probe event is lost) *)
  duplicate_event : float;  (** P(a droppable probe event is delivered twice) *)
  ecc_per_kernel : float;  (** P(a launch flips a bit in a live allocation) *)
  stuck_kernel : float;  (** P(a launch hangs for [stuck_multiplier]x) *)
}

val default_rates : rates
(** Noticeable but non-catastrophic: a few percent per category. *)

val stuck_multiplier : float
(** Duration multiplier applied to a stuck kernel (10000x), chosen to push
    any realistic kernel past the session watchdog. *)

type stats = {
  mutable corrupted_accesses : int;
  mutable dropped_events : int;
  mutable duplicated_events : int;
  mutable ecc_errors : int;
  mutable ecc_addrs : int list;  (** addresses hit, most recent first *)
  mutable stuck_kernels : int;
}

type t

val create : ?rates:rates -> seed:int64 -> unit -> t
val seed : t -> int64
val rates : t -> rates
val stats : t -> stats

(** {2 Decision points, called by {!Device}} *)

val event_fate : t -> [ `Deliver | `Drop | `Duplicate ]
(** Fate of one droppable probe event. *)

val corrupt_access : t -> Warp.access -> Warp.access
(** Possibly perturb the record's address/size/kind, counting it. *)

val corrupt_batch : rates:rates -> seed:int64 -> grid_id:int -> Warp.batch -> int
(** [corrupt_batch ~rates ~seed ~grid_id b] perturbs records of [b] in
    place, drawing from a stream keyed purely by
    [(seed, grid_id, b.b_region, b.b_chunk)], and returns how many records
    were corrupted.  Stateless and domain-safe: the same faults hit the
    same records for any domain count.  Callers account the returned count
    with {!note_corrupted} during the ordered merge. *)

val note_corrupted : t -> int -> unit
(** Add [n] to the injector's corrupted-access total. *)

val kernel_duration_us : t -> float -> float
(** Possibly turn the launch into a stuck kernel. *)

val ecc_check : t -> Device_mem.t -> int option
(** Possibly pick an address inside a live allocation for an ECC-style
    single-bit error; [None] when no error fires this launch. *)

val pp_stats : Format.formatter -> stats -> unit

(** {2 Fleet-scale failure modes}

    Whole-device failures for fleet profiling ({!Pasta.Fleet}-style
    orchestration): a device crashing mid-kernel, a straggler running a
    slowdown factor behind its peers, and a summary arriving corrupted at
    a reduction merge node.  All decisions are {e pure} functions of the
    seed and the decision's coordinates — no injector state — so a fleet
    run reproduces the same failures bit-for-bit at any domain count. *)

type fleet_rates = {
  crash : float;  (** P(an attempt crashes mid-kernel) *)
  straggle : float;  (** P(an attempt runs as a straggler) *)
  straggle_factor : float;  (** central slowdown multiplier for stragglers *)
  corrupt_summary : float;
      (** P(a child summary arrives corrupted at a merge node) *)
}

val default_fleet_rates : fleet_rates
(** Noticeable at fleet scale: a few percent of devices per attempt. *)

type device_fate =
  | Healthy
  | Crash of int  (** crashes inside this launch ordinal (0-based) *)
  | Straggle of float  (** wall-time slowdown factor, >= 2 *)

val device_fate :
  rates:fleet_rates ->
  seed:int64 ->
  device:int ->
  attempt:int ->
  kernels:int ->
  device_fate
(** Fate of one device attempt, keyed purely by [(seed, device, attempt)];
    [kernels] bounds the crash point. *)

val corrupt_summary_at :
  rates:fleet_rates -> seed:int64 -> node:int -> child:int -> bool
(** Whether the [child]'th input of merge node [node] arrives corrupted,
    keyed purely by [(seed, node, child)]. *)
