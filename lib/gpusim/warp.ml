type access = {
  addr : int;
  size : int;
  write : bool;
  warp_id : int;
  pc : int;
  weight : int;
}

let access_size = 4

let region_records ~rng ~warp_size ~max_records (r : Kernel.region) ~pc ~f =
  if r.accesses = 0 then ()
  else begin
    let n = min r.accesses max_records in
    let base_weight = r.accesses / n and extra = r.accesses mod n in
    let span = max 1 (r.bytes - access_size) in
    for i = 0 to n - 1 do
      let offset =
        match r.pattern with
        | Kernel.Sequential ->
            (* Spread evenly so the samples cover the whole extent. *)
            span * i / n
        | Kernel.Strided stride ->
            let s = max access_size stride in
            s * i mod span
        | Kernel.Random -> Pasta_util.Det_rng.int rng span
      in
      let warp_id = i * warp_size mod max warp_size (span / access_size) / warp_size in
      f
        {
          addr = r.base + offset;
          size = access_size;
          write = r.write;
          warp_id;
          pc;
          weight = (base_weight + if i < extra then 1 else 0);
        }
    done
  end

(* ---- Chunked generation into packed batches ------------------------- *)

(* Fixed shard size, deliberately independent of how many domains will run
   the chunks: the chunk layout — and therefore every derived RNG stream —
   is a function of the kernel alone, which is what makes output identical
   for any domain count. *)
let chunk_records = 1024

type batch = {
  b_region : int;
  b_chunk : int;
  b_pc : int;
  b_len : int;
  addrs : int array;
  sizes : int array;
  warps : int array;
  weights : int array;
  writes : Bytes.t;  (* one 0/1 byte per record *)
}

let batch_len b = b.b_len
let batch_weight b = Array.fold_left ( + ) 0 b.weights

let batch_get b i =
  {
    addr = b.addrs.(i);
    size = b.sizes.(i);
    write = Bytes.get b.writes i <> '\000';
    warp_id = b.warps.(i);
    pc = b.b_pc;
    weight = b.weights.(i);
  }

let iter_batch b ~f =
  for i = 0 to b.b_len - 1 do
    f (batch_get b i)
  done

let batch_of_arrays ~region ~chunk ~pc ~addrs ~sizes ~warps ~weights ~writes =
  let len = Array.length addrs in
  if
    Array.length sizes <> len
    || Array.length warps <> len
    || Array.length weights <> len
    || Bytes.length writes <> len
  then invalid_arg "Warp.batch_of_arrays: array lengths differ";
  if region < 0 || chunk < 0 || pc < 0 then
    invalid_arg "Warp.batch_of_arrays: negative header field";
  {
    b_region = region;
    b_chunk = chunk;
    b_pc = pc;
    b_len = len;
    addrs;
    sizes;
    warps;
    weights;
    writes;
  }

type chunk_spec = {
  cs_region : Kernel.region;
  cs_region_idx : int;
  cs_pc : int;
  cs_n : int;  (* sampled records in the whole region *)
  cs_chunk : int;
  cs_start : int;  (* first record index of this chunk *)
  cs_len : int;
}

let plan ~max_records_per_region k =
  let specs = ref [] in
  List.iteri
    (fun ri (r : Kernel.region) ->
      if r.accesses > 0 then begin
        let pc = (3 + (2 * ri) + 1) * 16 in
        let n = min r.accesses max_records_per_region in
        let chunks = (n + chunk_records - 1) / chunk_records in
        for c = 0 to chunks - 1 do
          let start = c * chunk_records in
          let len = min chunk_records (n - start) in
          specs :=
            {
              cs_region = r;
              cs_region_idx = ri;
              cs_pc = pc;
              cs_n = n;
              cs_chunk = c;
              cs_start = start;
              cs_len = len;
            }
            :: !specs
        done
      end)
    k.Kernel.regions;
  Array.of_list (List.rev !specs)

let fill_chunk ~rng ~warp_size spec =
  let r = spec.cs_region in
  let n = spec.cs_n and len = spec.cs_len in
  let base_weight = r.Kernel.accesses / n and extra = r.Kernel.accesses mod n in
  let span = max 1 (r.Kernel.bytes - access_size) in
  let addrs = Array.make len 0
  and sizes = Array.make len access_size
  and warps = Array.make len 0
  and weights = Array.make len 0
  and writes = Bytes.make len (if r.Kernel.write then '\001' else '\000') in
  for j = 0 to len - 1 do
    let i = spec.cs_start + j in
    (* Same sampling formulas as [region_records]; [Random] draws from the
       chunk-keyed stream so the values do not depend on which domain — or
       in which order — chunks execute. *)
    let offset =
      match r.Kernel.pattern with
      | Kernel.Sequential -> span * i / n
      | Kernel.Strided stride ->
          let s = max access_size stride in
          s * i mod span
      | Kernel.Random -> Pasta_util.Det_rng.int rng span
    in
    addrs.(j) <- r.Kernel.base + offset;
    warps.(j) <- i * warp_size mod max warp_size (span / access_size) / warp_size;
    weights.(j) <- (base_weight + if i < extra then 1 else 0)
  done;
  {
    b_region = spec.cs_region_idx;
    b_chunk = spec.cs_chunk;
    b_pc = spec.cs_pc;
    b_len = len;
    addrs;
    sizes;
    warps;
    weights;
    writes;
  }

(* ---- Probabilistic thinning with inverse-probability reweighting ----- *)

let thin ~rng ~rate b =
  if rate >= 1.0 then b
  else begin
    let rate = Float.max rate 1e-6 in
    let keep = Array.make (max 1 b.b_len) false in
    let reweighted = Array.make (max 1 b.b_len) 0 in
    let kept = ref 0 in
    for i = 0 to b.b_len - 1 do
      (* One keep draw per record, then (for kept records only) one
         randomized-rounding draw: weight'/rate is split into its integer
         part plus a Bernoulli on the fraction, so E[keep * weight'] equals
         the original weight exactly — estimates stay unbiased even though
         weights remain integers.  The draw order is fixed, so the kept set
         is a pure function of the stream [rng] was derived from. *)
      if Pasta_util.Det_rng.prob rng rate then begin
        keep.(i) <- true;
        let scaled = float_of_int b.weights.(i) /. rate in
        let base = int_of_float (Float.floor scaled) in
        let frac = scaled -. float_of_int base in
        reweighted.(i) <- (base + if Pasta_util.Det_rng.prob rng frac then 1 else 0);
        incr kept
      end
    done;
    let n = !kept in
    let addrs = Array.make (max 1 n) 0
    and sizes = Array.make (max 1 n) access_size
    and warps = Array.make (max 1 n) 0
    and weights = Array.make (max 1 n) 0
    and writes = Bytes.make n '\000' in
    let j = ref 0 in
    for i = 0 to b.b_len - 1 do
      if keep.(i) then begin
        addrs.(!j) <- b.addrs.(i);
        sizes.(!j) <- b.sizes.(i);
        warps.(!j) <- b.warps.(i);
        weights.(!j) <- reweighted.(i);
        Bytes.set writes !j (Bytes.get b.writes i);
        incr j
      end
    done;
    {
      b with
      b_len = n;
      addrs = (if n = 0 then [||] else Array.sub addrs 0 n);
      sizes = (if n = 0 then [||] else Array.sub sizes 0 n);
      warps = (if n = 0 then [||] else Array.sub warps 0 n);
      weights = (if n = 0 then [||] else Array.sub weights 0 n);
      writes;
    }
  end

let generate ~rng ~warp_size ~max_records_per_region k ~f =
  (* PCs must match the SASS listing: region i's access instruction is the
     second instruction of its access block, after a 3-instruction
     prologue. *)
  List.iteri
    (fun i r ->
      let pc = (3 + (2 * i) + 1) * 16 in
      region_records ~rng ~warp_size ~max_records:max_records_per_region r ~pc ~f)
    k.Kernel.regions;
  Kernel.total_accesses k
