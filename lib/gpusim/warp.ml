type access = {
  addr : int;
  size : int;
  write : bool;
  warp_id : int;
  pc : int;
  weight : int;
}

let access_size = 4

let region_records ~rng ~warp_size ~max_records (r : Kernel.region) ~pc ~f =
  if r.accesses = 0 then ()
  else begin
    let n = min r.accesses max_records in
    let base_weight = r.accesses / n and extra = r.accesses mod n in
    let span = max 1 (r.bytes - access_size) in
    for i = 0 to n - 1 do
      let offset =
        match r.pattern with
        | Kernel.Sequential ->
            (* Spread evenly so the samples cover the whole extent. *)
            span * i / n
        | Kernel.Strided stride ->
            let s = max access_size stride in
            s * i mod span
        | Kernel.Random -> Pasta_util.Det_rng.int rng span
      in
      let warp_id = i * warp_size mod max warp_size (span / access_size) / warp_size in
      f
        {
          addr = r.base + offset;
          size = access_size;
          write = r.write;
          warp_id;
          pc;
          weight = (base_weight + if i < extra then 1 else 0);
        }
    done
  end

(* ---- Chunked generation into packed columnar batches ----------------- *)

(* Fixed shard size, deliberately independent of how many domains will run
   the chunks: the chunk layout — and therefore every derived RNG stream —
   is a function of the kernel alone, which is what makes output identical
   for any domain count. *)
let chunk_records = 1024

(* Struct-of-arrays columns.  [Bigarray.int] elements read and write as
   unboxed native [int]s (unlike the int64/int32 kinds, which box on every
   access), so the hot loops below never allocate per record.  Sizes fit in
   16 bits (fault injection caps them at [1 lsl 11]) and write flags in one
   byte. *)
type int_col = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type size_col = (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
type flag_col = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let alloc_int_col n : int_col = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n
let alloc_size_col n : size_col =
  Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout n
let alloc_flag_col n : flag_col =
  Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout n

type batch = {
  b_region : int;
  b_chunk : int;
  b_pc : int;
  b_len : int;
  addrs : int_col;
  sizes : size_col;
  warps : int_col;
  weights : int_col;
  writes : flag_col;  (* one 0/1 element per record *)
}

let batch_len b = b.b_len

let batch_weight b =
  let s = ref 0 in
  for i = 0 to b.b_len - 1 do
    s := !s + Bigarray.Array1.unsafe_get b.weights i
  done;
  !s

let batch_get b i =
  {
    addr = b.addrs.{i};
    size = b.sizes.{i};
    write = b.writes.{i} <> 0;
    warp_id = b.warps.{i};
    pc = b.b_pc;
    weight = b.weights.{i};
  }

let iter_batch b ~f =
  (* The per-record fallback spends its life in this loop, so read the
     columns unchecked — [i] is bounded by [b_len], which every
     constructor checks against the column dims. *)
  for i = 0 to b.b_len - 1 do
    f
      {
        addr = Bigarray.Array1.unsafe_get b.addrs i;
        size = Bigarray.Array1.unsafe_get b.sizes i;
        write = Bigarray.Array1.unsafe_get b.writes i <> 0;
        warp_id = Bigarray.Array1.unsafe_get b.warps i;
        pc = b.b_pc;
        weight = Bigarray.Array1.unsafe_get b.weights i;
      }
  done

let check_header ~who ~region ~chunk ~pc =
  if region < 0 || chunk < 0 || pc < 0 then
    invalid_arg (who ^ ": negative header field")

let batch_of_columns ~region ~chunk ~pc ~(addrs : int_col) ~(sizes : size_col)
    ~(warps : int_col) ~(weights : int_col) ~(writes : flag_col) =
  let len = Bigarray.Array1.dim addrs in
  if
    Bigarray.Array1.dim sizes <> len
    || Bigarray.Array1.dim warps <> len
    || Bigarray.Array1.dim weights <> len
    || Bigarray.Array1.dim writes <> len
  then invalid_arg "Warp.batch_of_columns: column lengths differ";
  check_header ~who:"Warp.batch_of_columns" ~region ~chunk ~pc;
  {
    b_region = region;
    b_chunk = chunk;
    b_pc = pc;
    b_len = len;
    addrs;
    sizes;
    warps;
    weights;
    writes;
  }

let batch_of_arrays ~region ~chunk ~pc ~addrs ~sizes ~warps ~weights ~writes =
  let len = Array.length addrs in
  if
    Array.length sizes <> len
    || Array.length warps <> len
    || Array.length weights <> len
    || Bytes.length writes <> len
  then invalid_arg "Warp.batch_of_arrays: array lengths differ";
  check_header ~who:"Warp.batch_of_arrays" ~region ~chunk ~pc;
  let c_addrs = alloc_int_col len
  and c_sizes = alloc_size_col len
  and c_warps = alloc_int_col len
  and c_weights = alloc_int_col len
  and c_writes = alloc_flag_col len in
  for i = 0 to len - 1 do
    c_addrs.{i} <- addrs.(i);
    c_sizes.{i} <- sizes.(i);
    c_warps.{i} <- warps.(i);
    c_weights.{i} <- weights.(i);
    c_writes.{i} <- (if Bytes.get writes i <> '\000' then 1 else 0)
  done;
  {
    b_region = region;
    b_chunk = chunk;
    b_pc = pc;
    b_len = len;
    addrs = c_addrs;
    sizes = c_sizes;
    warps = c_warps;
    weights = c_weights;
    writes = c_writes;
  }

type chunk_spec = {
  cs_region : Kernel.region;
  cs_region_idx : int;
  cs_pc : int;
  cs_n : int;  (* sampled records in the whole region *)
  cs_chunk : int;
  cs_start : int;  (* first record index of this chunk *)
  cs_len : int;
}

let plan ~max_records_per_region k =
  let specs = ref [] in
  List.iteri
    (fun ri (r : Kernel.region) ->
      if r.accesses > 0 then begin
        let pc = (3 + (2 * ri) + 1) * 16 in
        let n = min r.accesses max_records_per_region in
        let chunks = (n + chunk_records - 1) / chunk_records in
        for c = 0 to chunks - 1 do
          let start = c * chunk_records in
          let len = min chunk_records (n - start) in
          specs :=
            {
              cs_region = r;
              cs_region_idx = ri;
              cs_pc = pc;
              cs_n = n;
              cs_chunk = c;
              cs_start = start;
              cs_len = len;
            }
            :: !specs
        done
      end)
    k.Kernel.regions;
  Array.of_list (List.rev !specs)

let fill_chunk ~rng ~warp_size spec =
  let r = spec.cs_region in
  let n = spec.cs_n and len = spec.cs_len in
  let base_weight = r.Kernel.accesses / n and extra = r.Kernel.accesses mod n in
  let span = max 1 (r.Kernel.bytes - access_size) in
  let addrs = alloc_int_col len
  and sizes = alloc_size_col len
  and warps = alloc_int_col len
  and weights = alloc_int_col len
  and writes = alloc_flag_col len in
  Bigarray.Array1.fill sizes access_size;
  Bigarray.Array1.fill writes (if r.Kernel.write then 1 else 0);
  for j = 0 to len - 1 do
    let i = spec.cs_start + j in
    (* Same sampling formulas as [region_records]; [Random] draws from the
       chunk-keyed stream so the values do not depend on which domain — or
       in which order — chunks execute.  Records land in the columns
       directly; no intermediate [access] values are built. *)
    let offset =
      match r.Kernel.pattern with
      | Kernel.Sequential -> span * i / n
      | Kernel.Strided stride ->
          let s = max access_size stride in
          s * i mod span
      | Kernel.Random -> Pasta_util.Det_rng.int rng span
    in
    Bigarray.Array1.unsafe_set addrs j (r.Kernel.base + offset);
    Bigarray.Array1.unsafe_set warps j
      (i * warp_size mod max warp_size (span / access_size) / warp_size);
    Bigarray.Array1.unsafe_set weights j (base_weight + if i < extra then 1 else 0)
  done;
  {
    b_region = spec.cs_region_idx;
    b_chunk = spec.cs_chunk;
    b_pc = spec.cs_pc;
    b_len = len;
    addrs;
    sizes;
    warps;
    weights;
    writes;
  }

(* ---- Probabilistic thinning with inverse-probability reweighting ----- *)

let thin ~rng ~rate b =
  if rate >= 1.0 then b
  else begin
    let rate = Float.max rate 1e-6 in
    let addrs = alloc_int_col b.b_len
    and sizes = alloc_size_col b.b_len
    and warps = alloc_int_col b.b_len
    and weights = alloc_int_col b.b_len
    and writes = alloc_flag_col b.b_len in
    let kept = ref 0 in
    for i = 0 to b.b_len - 1 do
      (* One keep draw per record, then (for kept records only) one
         randomized-rounding draw: weight'/rate is split into its integer
         part plus a Bernoulli on the fraction, so E[keep * weight'] equals
         the original weight exactly — estimates stay unbiased even though
         weights remain integers.  The draw order is fixed, so the kept set
         is a pure function of the stream [rng] was derived from.  Kept
         records compact straight into the output columns in one pass. *)
      if Pasta_util.Det_rng.prob rng rate then begin
        let scaled = float_of_int b.weights.{i} /. rate in
        let base = int_of_float (Float.floor scaled) in
        let frac = scaled -. float_of_int base in
        let w = base + if Pasta_util.Det_rng.prob rng frac then 1 else 0 in
        let j = !kept in
        addrs.{j} <- b.addrs.{i};
        sizes.{j} <- b.sizes.{i};
        warps.{j} <- b.warps.{i};
        weights.{j} <- w;
        writes.{j} <- b.writes.{i};
        incr kept
      end
    done;
    let n = !kept in
    (* [Array1.sub] is a zero-copy view of the same buffer. *)
    {
      b with
      b_len = n;
      addrs = Bigarray.Array1.sub addrs 0 n;
      sizes = Bigarray.Array1.sub sizes 0 n;
      warps = Bigarray.Array1.sub warps 0 n;
      weights = Bigarray.Array1.sub weights 0 n;
      writes = Bigarray.Array1.sub writes 0 n;
    }
  end

let generate ~rng ~warp_size ~max_records_per_region k ~f =
  (* PCs must match the SASS listing: region i's access instruction is the
     second instruction of its access block, after a 3-instruction
     prologue. *)
  List.iteri
    (fun i r ->
      let pc = (3 + (2 * i) + 1) * 16 in
      region_records ~rng ~warp_size ~max_records:max_records_per_region r ~pc ~f)
    k.Kernel.regions;
  Kernel.total_accesses k
