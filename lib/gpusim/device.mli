(** The simulated accelerator device.

    Exposes a CUDA/HIP-flavoured runtime surface — memory management,
    copies, kernel launches, synchronization, UVM — and a profiling hook
    bus.  Vendor profiling substrates ({!Vendor.Sanitizer}, {!Vendor.Nvbit},
    {!Vendor.Rocprofiler}) subscribe to coarse runtime {!event}s with
    {!add_probe} and to fine-grained execution with {!set_instrument}; the
    device itself charges only baseline execution costs, while
    instrumentation layers charge their own overheads on the device
    {!Clock} they can reach through {!clock}. *)

type memcpy_kind =
  | Host_to_device
  | Device_to_host
  | Device_to_device
  | Peer of int  (** destination device id *)

type exec_stats = {
  duration_us : float;  (** baseline kernel time, without instrumentation *)
  true_accesses : int;  (** exact dynamic global-memory access count *)
  faulted_pages : int;  (** UVM pages demand-migrated for this launch *)
}

type launch_info = {
  device_id : int;
  grid_id : int;  (** global launch ordinal on this device, from 1 *)
  stream : int;
  kernel : Kernel.t;
  py_stack : Hostctx.frame list;  (** host Python stack at launch *)
  native_stack : Hostctx.frame list;  (** host C++ stack at launch *)
}

type event =
  | Api of { name : string; phase : [ `Enter | `Exit ] }
      (** driver/runtime API boundary, vendor-flavoured name *)
  | Malloc of { alloc : Device_mem.alloc }
  | Free of { alloc : Device_mem.alloc }
  | Memcpy of { dst : int; src : int; bytes : int; kind : memcpy_kind; stream : int }
  | Memset of { addr : int; bytes : int; value : int; stream : int }
  | Launch_begin of launch_info
  | Launch_end of launch_info * exec_stats
  | Sync of [ `Device | `Stream of int ]

type probe = { probe_name : string; on_event : event -> unit }

type instrument = {
  instr_name : string;
  materialize : bool;
      (** when true, sampled per-access records are generated and fed to
          [on_access]; when false only region aggregates are reported *)
  on_kernel_entry : launch_info -> unit;
  on_region : launch_info -> Kernel.region -> unit;
  on_access : launch_info -> Warp.access -> unit;
  on_access_batch : (launch_info -> Warp.batch -> unit) option;
      (** when set, materialized records arrive as packed {!Warp.batch}es
          (in deterministic (region, chunk) order) instead of one
          [on_access] call per record *)
  on_kernel_exit : launch_info -> exec_stats -> unit;
}

type t

val create : ?id:int -> ?uvm_capacity:int -> ?seed:int64 -> Arch.t -> t
(** [uvm_capacity] bounds the device bytes available to managed memory
    (defaults to the full physical memory); lowering it imposes
    oversubscription. *)

val id : t -> int
val arch : t -> Arch.t
val clock : t -> Clock.t
val now_us : t -> float
val mem : t -> Device_mem.t
val uvm : t -> Uvm.t
val launches : t -> int
(** Number of kernels launched so far. *)

val set_sample_cap : t -> int -> unit
(** Maximum materialized access records per kernel region (the
    [ACCEL_PROF_ENV_SAMPLE_RATE] analogue; default 128).  Raises
    [Invalid_argument] if non-positive. *)

val sample_cap : t -> int

val set_sample_rate : t -> float -> unit
(** Fraction of materialized records kept after chunk generation (default
    1.0 = keep everything).  Rates below 1.0 thin each chunk through
    {!Warp.thin} with a per-(grid, region, chunk) keyed stream salted
    independently of the fill stream: thinning is byte-deterministic at any
    domain count, composes with fault injection, and surviving records carry
    inverse-probability weights so weighted statistics stay unbiased.
    Values above 1.0 clamp to 1.0; raises [Invalid_argument] on
    non-positive or non-finite rates. *)

val sample_rate : t -> float

(** {2 Profiling hooks} *)

val add_probe : t -> probe -> unit
val remove_probe : t -> string -> unit
val set_instrument : t -> instrument -> unit
val clear_instrument : t -> unit

(** {2 Fault injection}

    With an injector installed ({!Faults}), the device deterministically
    drops/duplicates probe events (except API and alloc/free events),
    corrupts materialized access records, turns launches into stuck
    kernels, and develops ECC-style errors in live allocations. *)

val set_faults : t -> Faults.t -> unit
val clear_faults : t -> unit
val faults : t -> Faults.t option

(** {2 Parallel preprocessing}

    With a {!Pasta_util.Domain_pool} installed, materialized record
    generation (and fault corruption of those records) shards across the
    pool by region-chunk.  Chunk layout and per-chunk RNG streams are
    independent of the pool size, so output is byte-identical with or
    without a pool. *)

val set_pool : t -> Pasta_util.Domain_pool.t -> unit
val clear_pool : t -> unit
val pool : t -> Pasta_util.Domain_pool.t option

(** {2 Runtime surface} *)

val malloc : t -> ?tag:string -> int -> Device_mem.alloc
val malloc_managed : t -> ?tag:string -> int -> Device_mem.alloc
val free : t -> int -> unit
val memcpy : t -> dst:int -> src:int -> bytes:int -> kind:memcpy_kind -> ?stream:int -> unit -> unit
val memset : t -> addr:int -> bytes:int -> value:int -> ?stream:int -> unit -> unit
val launch : t -> ?stream:int -> Kernel.t -> exec_stats
val synchronize : t -> unit
val stream_synchronize : t -> int -> unit

(** {2 Asynchronous streams}

    The synchronous surface above models stream-blocking execution (what
    running under a profiler with [CUDA_LAUNCH_BLOCKING]-style
    serialization gives you, and what the calibrated experiments use).
    The [_async] variants model real stream concurrency: work enqueues on
    a per-stream timeline, the host advances only by the submission cost,
    and {!synchronize} / {!stream_synchronize} join the host clock with
    the streams' completion times.  Copy-compute overlap across distinct
    streams falls out naturally.

    Fine-grained instrumentation serializes execution on real hardware
    too, so when an instrument is installed the [_async] variants degrade
    to their synchronous semantics. *)

val launch_async : t -> stream:int -> Kernel.t -> exec_stats
(** Enqueue a kernel; [duration_us] reports the kernel's execution time
    even though the host does not wait for it. *)

val memcpy_async :
  t -> dst:int -> src:int -> bytes:int -> kind:memcpy_kind -> stream:int -> unit

val stream_busy_until : t -> int -> float
(** Absolute completion time of the last work enqueued on the stream;
    the host's current time for an idle stream. *)

val api_name : t -> string -> string
(** Vendor-flavoured runtime entry point: [api_name d "Malloc"] is
    "cudaMalloc" on NVIDIA parts and "hipMalloc" on AMD parts. *)
