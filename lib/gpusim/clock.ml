type t = { mutable now : float; mutable observer : (float -> unit) option }

let create () = { now = 0.0; observer = None }
let now_us t = t.now

let notify t = match t.observer with None -> () | Some f -> f t.now

let advance_us t d =
  if d < 0.0 then invalid_arg "Clock.advance_us: negative duration";
  t.now <- t.now +. d;
  notify t

let reset t =
  t.now <- 0.0;
  notify t

let set_observer t f = t.observer <- f
