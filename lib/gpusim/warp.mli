(** Warp-level memory-access record generation.

    Turns a kernel's access plan into concrete per-access records, the raw
    material of trace-based profiling.  Real workloads issue billions of
    accesses; materializing each one would make the simulator itself
    intractable, so generation is *sampled*: at most
    [max_records_per_region] records are emitted per region and each record
    carries a [weight] — the number of true dynamic accesses it stands for.
    Weights always sum to the region's exact access count, so aggregate
    statistics computed from samples are exact in total and approximate
    only in their spatial distribution. *)

type access = {
  addr : int;
  size : int;  (** bytes per access (4) *)
  write : bool;
  warp_id : int;
  pc : int;  (** PC of the issuing SASS instruction *)
  weight : int;  (** true accesses this sampled record represents *)
}

(** {2 Chunked generation}

    The parallel preprocessing path shards each region's records into
    fixed-size chunks and fills one packed flat-array {!batch} per chunk.
    The chunk layout depends only on the kernel and the sampling cap — never
    on the domain count — and each chunk draws from its own
    [Det_rng.of_key]-derived stream, so the concatenated batches are
    byte-identical whether chunks run serially or on any number of
    domains. *)

val chunk_records : int
(** Records per generation chunk (fixed; the determinism contract depends on
    it being independent of the domain count). *)

type int_col = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Unboxed native-int column: reads and writes never allocate (the
    int64/int32 Bigarray kinds would box every element access). *)

type size_col = (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Access-size column; stores the low 16 bits (fault injection caps sizes
    at [1 lsl 11], so real values always fit). *)

type flag_col = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Write-flag column, one 0/1 element per record. *)

val alloc_int_col : int -> int_col
val alloc_size_col : int -> size_col
val alloc_flag_col : int -> flag_col
(** Fresh uninitialized columns of the given length (for decoders filling
    every element). *)

type batch = private {
  b_region : int;  (** region index within the kernel *)
  b_chunk : int;  (** chunk index within the region *)
  b_pc : int;  (** PC shared by every record of the region *)
  b_len : int;
  addrs : int_col;
  sizes : size_col;
  warps : int_col;
  weights : int_col;
  writes : flag_col;  (** one 0/1 element per record *)
}
(** A packed struct-of-arrays chunk of sampled records.  The header fields
    are immutable; the Bigarray columns are shared, not copied, by every
    consumer downstream (zero-copy).  Ownership rule: after a batch is
    handed to the processor, the *fault injector* ({!Faults}) is the only
    writer; tools must treat columns as read-only.  A batch produced by
    {!thin} may be a sub-view of a longer buffer — always bound loops by
    [b_len], never by the underlying buffer size. *)

val batch_len : batch -> int
val batch_weight : batch -> int
(** Sum of record weights, i.e. the true accesses the batch stands for. *)

val batch_get : batch -> int -> access
val iter_batch : batch -> f:(access -> unit) -> unit

val batch_of_arrays :
  region:int ->
  chunk:int ->
  pc:int ->
  addrs:int array ->
  sizes:int array ->
  warps:int array ->
  weights:int array ->
  writes:Bytes.t ->
  batch
(** Rebuild a batch from boxed parts — the stable compatibility
    constructor tests and synthetic producers use.  Validates that every
    array has the same length and that the header fields are non-negative;
    the arrays are *copied* into fresh columns (callers keep ownership of
    their inputs). *)

val batch_of_columns :
  region:int ->
  chunk:int ->
  pc:int ->
  addrs:int_col ->
  sizes:size_col ->
  warps:int_col ->
  weights:int_col ->
  writes:flag_col ->
  batch
(** Adopt columns zero-copy — the constructor trace decoders use.  The
    batch aliases the given Bigarrays; callers must not retain writable
    references.  Validates equal column lengths and non-negative header
    fields. *)

type chunk_spec = private {
  cs_region : Kernel.region;
  cs_region_idx : int;
  cs_pc : int;
  cs_n : int;  (** sampled records in the whole region *)
  cs_chunk : int;
  cs_start : int;  (** first record index covered by this chunk *)
  cs_len : int;
}

val plan : max_records_per_region:int -> Kernel.t -> chunk_spec array
(** [plan ~max_records_per_region k] lists the generation chunks of [k] in
    (region, chunk) order; empty regions yield no chunks. *)

val fill_chunk : rng:Pasta_util.Det_rng.t -> warp_size:int -> chunk_spec -> batch
(** [fill_chunk ~rng ~warp_size spec] materializes the records of one chunk.
    Addresses follow the same sampling formulas as {!generate}; [Random]
    regions draw from [rng], which callers must derive per chunk with
    [Det_rng.of_key]. Safe to call from any domain. *)

val thin : rng:Pasta_util.Det_rng.t -> rate:float -> batch -> batch
(** [thin ~rng ~rate b] keeps each record of [b] independently with
    probability [rate] and rescales surviving weights by [1/rate] using
    randomized rounding, so the expectation of every weighted statistic is
    unchanged (inverse-probability weighting with integer weights).  [rate
    >= 1.0] returns [b] itself, physically unchanged.  Callers must derive
    [rng] per chunk with [Det_rng.of_key] (with a salt distinct from the
    fill stream) so thinning is deterministic for any domain count and
    leaves the fill draws untouched. *)

val generate :
  rng:Pasta_util.Det_rng.t ->
  warp_size:int ->
  max_records_per_region:int ->
  Kernel.t ->
  f:(access -> unit) ->
  int
(** [generate ~rng ~warp_size ~max_records_per_region k ~f] calls [f] on
    each sampled record and returns the kernel's true total access count.
    Sampled addresses follow the region's pattern: [Sequential] spreads
    records uniformly over the extent, [Strided s] walks in stride [s]
    (wrapping), [Random] draws uniformly.  Every non-empty region yields at
    least one record, so object-coverage analyses never miss a touched
    region. *)
