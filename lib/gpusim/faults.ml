type rates = {
  corrupt_access : float;
  drop_event : float;
  duplicate_event : float;
  ecc_per_kernel : float;
  stuck_kernel : float;
}

let default_rates =
  {
    corrupt_access = 0.02;
    drop_event = 0.02;
    duplicate_event = 0.01;
    ecc_per_kernel = 0.05;
    stuck_kernel = 0.01;
  }

let stuck_multiplier = 10_000.0

type stats = {
  mutable corrupted_accesses : int;
  mutable dropped_events : int;
  mutable duplicated_events : int;
  mutable ecc_errors : int;
  mutable ecc_addrs : int list;
  mutable stuck_kernels : int;
}

type t = {
  seed : int64;
  rates : rates;
  rng : Pasta_util.Det_rng.t;
  stats : stats;
}

let create ?(rates = default_rates) ~seed () =
  {
    seed;
    rates;
    rng = Pasta_util.Det_rng.create seed;
    stats =
      {
        corrupted_accesses = 0;
        dropped_events = 0;
        duplicated_events = 0;
        ecc_errors = 0;
        ecc_addrs = [];
        stuck_kernels = 0;
      };
  }

let seed t = t.seed
let rates t = t.rates
let stats t = t.stats

let event_fate t =
  (* One draw per decision keeps the stream aligned across runs whatever
     the outcome. *)
  let u = Pasta_util.Det_rng.float t.rng 1.0 in
  if u < t.rates.drop_event then begin
    t.stats.dropped_events <- t.stats.dropped_events + 1;
    `Drop
  end
  else if u < t.rates.drop_event +. t.rates.duplicate_event then begin
    t.stats.duplicated_events <- t.stats.duplicated_events + 1;
    `Duplicate
  end
  else `Deliver

let corrupt_access t (a : Warp.access) =
  if not (Pasta_util.Det_rng.prob t.rng t.rates.corrupt_access) then a
  else begin
    t.stats.corrupted_accesses <- t.stats.corrupted_accesses + 1;
    match Pasta_util.Det_rng.int t.rng 3 with
    | 0 ->
        (* Bit flip in the address: the record now points nowhere sane. *)
        let bit = Pasta_util.Det_rng.int t.rng 40 in
        { a with Warp.addr = a.Warp.addr lxor (1 lsl bit) }
    | 1 ->
        (* Garbage transfer size. *)
        { a with Warp.size = 1 lsl Pasta_util.Det_rng.int t.rng 12 }
    | _ ->
        (* Load/store kind inverted. *)
        { a with Warp.write = not a.Warp.write }
  end

let corrupt_batch ~rates ~seed ~grid_id (b : Warp.batch) =
  if rates.corrupt_access <= 0.0 then 0
  else begin
    (* Purely keyed by (seed, grid, region, chunk): workers corrupt their
       own chunks on any domain without touching shared injector state, and
       the faults land on the same records for every domain count.  The
       salt keeps this stream clear of the generation stream even if the
       fault seed and device seed coincide. *)
    let rng =
      Pasta_util.Det_rng.of_key
        (Int64.logxor seed 0x3C6EF372FE94F82BL)
        [| grid_id; b.Warp.b_region; b.Warp.b_chunk |]
    in
    let corrupted = ref 0 in
    for i = 0 to b.Warp.b_len - 1 do
      if Pasta_util.Det_rng.prob rng rates.corrupt_access then begin
        incr corrupted;
        match Pasta_util.Det_rng.int rng 3 with
        | 0 ->
            let bit = Pasta_util.Det_rng.int rng 40 in
            b.Warp.addrs.{i} <- b.Warp.addrs.{i} lxor (1 lsl bit)
        | 1 -> b.Warp.sizes.{i} <- 1 lsl Pasta_util.Det_rng.int rng 12
        | _ -> b.Warp.writes.{i} <- (if b.Warp.writes.{i} = 0 then 1 else 0)
      end
    done;
    !corrupted
  end

let note_corrupted t n =
  t.stats.corrupted_accesses <- t.stats.corrupted_accesses + n

let kernel_duration_us t duration =
  if Pasta_util.Det_rng.prob t.rng t.rates.stuck_kernel then begin
    t.stats.stuck_kernels <- t.stats.stuck_kernels + 1;
    duration *. stuck_multiplier
  end
  else duration

let ecc_check t mem =
  if not (Pasta_util.Det_rng.prob t.rng t.rates.ecc_per_kernel) then None
  else
    match Device_mem.live mem with
    | [] -> None
    | allocs ->
        let a = List.nth allocs (Pasta_util.Det_rng.int t.rng (List.length allocs)) in
        let addr = a.Device_mem.base + Pasta_util.Det_rng.int t.rng a.Device_mem.bytes in
        t.stats.ecc_errors <- t.stats.ecc_errors + 1;
        t.stats.ecc_addrs <- addr :: t.stats.ecc_addrs;
        Some addr

(* --- Fleet-scale failure modes ------------------------------------ *)

(* Unlike the single-device injector above, fleet decisions carry no
   mutable state at all: every fate is a pure function of
   (seed, device, attempt) or (seed, merge node, child), so a fleet run
   reproduces the same crashes, stragglers and corrupted summaries for
   any domain count — the property the tree reduction's byte-determinism
   rests on. *)

type fleet_rates = {
  crash : float;
  straggle : float;
  straggle_factor : float;
  corrupt_summary : float;
}

let default_fleet_rates =
  { crash = 0.06; straggle = 0.08; straggle_factor = 8.0; corrupt_summary = 0.02 }

(* Salt separating the fleet streams from the per-device generation and
   batch-corruption streams even when seeds coincide. *)
let fleet_salt = 0x9E3779B97F4A7C15L

type device_fate = Healthy | Crash of int | Straggle of float

let device_fate ~rates ~seed ~device ~attempt ~kernels =
  let rng =
    Pasta_util.Det_rng.of_key (Int64.logxor seed fleet_salt) [| device; attempt |]
  in
  let u = Pasta_util.Det_rng.float rng 1.0 in
  if u < rates.crash then
    (* Crash mid-kernel: pick the launch ordinal the device dies inside. *)
    Crash (Pasta_util.Det_rng.int rng (max 1 kernels))
  else if u < rates.crash +. rates.straggle then
    (* Straggler slowdown: at least 2x, centred on [straggle_factor]. *)
    Straggle
      (Float.max 2.0
         (rates.straggle_factor
         *. (0.5 +. Pasta_util.Det_rng.float rng 1.0)))
  else Healthy

let corrupt_summary_at ~rates ~seed ~node ~child =
  if rates.corrupt_summary <= 0.0 then false
  else
    let rng =
      Pasta_util.Det_rng.of_key
        (Int64.logxor seed (Int64.lognot fleet_salt))
        [| node; child |]
    in
    Pasta_util.Det_rng.prob rng rates.corrupt_summary

let pp_stats ppf s =
  Format.fprintf ppf
    "corrupted accesses %d, dropped events %d, duplicated events %d, ECC errors %d, \
     stuck kernels %d"
    s.corrupted_accesses s.dropped_events s.duplicated_events s.ecc_errors
    s.stuck_kernels
