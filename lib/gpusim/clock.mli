(** Simulated time.

    Every device owns a clock counting microseconds of simulated execution.
    All costs computed by {!Costmodel} are charged here; the experiment
    harness reads elapsed simulated time to reproduce the paper's
    wall-clock-based figures deterministically. *)

type t

val create : unit -> t

val now_us : t -> float

val advance_us : t -> float -> unit
(** Advance by a non-negative duration; a negative duration raises
    [Invalid_argument]. *)

val reset : t -> unit

val set_observer : t -> (float -> unit) option -> unit
(** At most one observer, called with the new time after every advance (and
    after {!reset}).  The telemetry layer uses this to mirror simulated
    time onto its wall-clock spans; the hook must be cheap and must not
    touch the clock. *)
