type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let of_string s = create (fnv1a s)

let of_key seed parts =
  (* Fold each key component through the finalizer so that streams keyed by
     distinct (seed, parts) tuples are independent.  Purely a function of
     its arguments: chunked record generation derives one stream per
     (grid_id, region, chunk) and gets the same stream no matter which
     domain — or how many domains — run the chunk. *)
  let h = ref (mix64 (Int64.logxor seed 0x6A09E667F3BCC909L)) in
  Array.iter
    (fun p ->
      h := mix64 (Int64.add (Int64.mul !h golden_gamma) (Int64.of_int (p + 1))))
    parts;
  create !h

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = int64 t in
  create (mix64 seed)

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Det_rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit signed int. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  (* 53 high bits -> uniform in [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let prob t p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Det_rng.pick: empty array";
  arr.(int t (Array.length arr))

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Det_rng.geometric: p out of range";
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then min_float else u in
    int_of_float (Float.floor (Float.log u /. Float.log (1.0 -. p)))

let lognormal t ~mu ~sigma =
  (* Box-Muller on two independent uniforms. *)
  let u1 =
    let u = float t 1.0 in
    if u <= 0.0 then min_float else u
  in
  let u2 = float t 1.0 in
  let z = Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2) in
  Float.exp (mu +. (sigma *. z))
