type summary = {
  count : int;
  total : float;
  min : float;
  max : float;
  mean : float;
  median : float;
  p90 : float;
  p99 : float;
  stddev : float;
}

let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  percentile_sorted sorted p

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let geomean xs =
  if Array.length xs = 0 then invalid_arg "Stats.geomean: empty sample";
  let log_sum =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive sample";
        acc +. Float.log x)
      0.0 xs
  in
  Float.exp (log_sum /. float_of_int (Array.length xs))

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let total = Array.fold_left ( +. ) 0.0 sorted in
  let mean = total /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 sorted
    /. float_of_int n
  in
  {
    count = n;
    total;
    min = sorted.(0);
    max = sorted.(n - 1);
    mean;
    median = percentile_sorted sorted 50.0;
    p90 = percentile_sorted sorted 90.0;
    p99 = percentile_sorted sorted 99.0;
    stddev = Float.sqrt var;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d total=%.2f min=%.2f max=%.2f mean=%.2f median=%.2f p90=%.2f p99=%.2f sd=%.2f"
    s.count s.total s.min s.max s.mean s.median s.p90 s.p99 s.stddev
