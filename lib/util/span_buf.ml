(* Fixed-capacity span storage for the self-telemetry layer: a cyclic
   buffer that keeps the newest spans and counts what it overwrote, so
   full-fidelity tracing can stay on without unbounded growth. *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;       (* recording domain id *)
  sp_dev : int;       (* device the recording context was profiling, -1 none *)
  sp_depth : int;     (* nesting depth at begin, 0 = outermost *)
  sp_wall0_us : float;
  sp_dur_us : float;
  sp_sim0_us : float; (* simulated clock at begin/end, for correlation *)
  sp_sim1_us : float;
}

let dummy =
  {
    sp_name = "";
    sp_cat = "";
    sp_tid = 0;
    sp_dev = -1;
    sp_depth = 0;
    sp_wall0_us = 0.0;
    sp_dur_us = 0.0;
    sp_sim0_us = 0.0;
    sp_sim1_us = 0.0;
  }

type t = {
  slots : span array;
  mutable next : int;   (* next write position *)
  mutable stored : int; (* valid slots, <= capacity *)
  mutable pushed : int; (* total record calls *)
  mu : Mutex.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Span_buf.create: capacity must be positive";
  { slots = Array.make capacity dummy; next = 0; stored = 0; pushed = 0; mu = Mutex.create () }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let record t sp =
  locked t (fun () ->
      t.slots.(t.next) <- sp;
      t.next <- (t.next + 1) mod Array.length t.slots;
      if t.stored < Array.length t.slots then t.stored <- t.stored + 1;
      t.pushed <- t.pushed + 1)

let capacity t = Array.length t.slots
let length t = locked t (fun () -> t.stored)
let pushed t = locked t (fun () -> t.pushed)
let dropped t = locked t (fun () -> t.pushed - t.stored)

let iter t f =
  (* Oldest first.  Snapshot under the lock, apply [f] outside it. *)
  let snap =
    locked t (fun () ->
        let n = t.stored in
        let cap = Array.length t.slots in
        let first = (t.next - n + cap) mod cap in
        Array.init n (fun i -> t.slots.((first + i) mod cap)))
  in
  Array.iter f snap

let to_list t =
  let acc = ref [] in
  iter t (fun sp -> acc := sp :: !acc);
  List.rev !acc

let clear t =
  locked t (fun () ->
      t.next <- 0;
      t.stored <- 0;
      t.pushed <- 0)
