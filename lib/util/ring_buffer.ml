type 'a t = {
  slots : 'a option array;
  mutable head : int; (* index of oldest element *)
  mutable len : int;
}

type overflow = Drop_oldest | Drop_newest | Block

let overflow_of_string s =
  match String.lowercase_ascii s with
  | "drop-oldest" | "drop_oldest" | "oldest" -> Some Drop_oldest
  | "drop-newest" | "drop_newest" | "newest" -> Some Drop_newest
  | "block" | "stall" -> Some Block
  | _ -> None

let overflow_to_string = function
  | Drop_oldest -> "drop-oldest"
  | Drop_newest -> "drop-newest"
  | Block -> "block"

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring_buffer.create: capacity must be positive";
  { slots = Array.make capacity None; head = 0; len = 0 }

let capacity t = Array.length t.slots
let length t = t.len
let is_full t = t.len = capacity t
let is_empty t = t.len = 0

let push t x =
  if is_full t then false
  else begin
    let tail = (t.head + t.len) mod capacity t in
    t.slots.(tail) <- Some x;
    t.len <- t.len + 1;
    true
  end

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.slots.(t.head) in
    t.slots.(t.head) <- None;
    t.head <- (t.head + 1) mod capacity t;
    t.len <- t.len - 1;
    x
  end

let push_overflow t ~overflow x =
  if not (is_full t) then begin
    let (_ : bool) = push t x in
    `Stored
  end
  else
    match overflow with
    | Drop_newest -> `Rejected
    | Block -> `Full
    | Drop_oldest -> (
        match pop t with
        | None -> assert false (* full implies non-empty *)
        | Some old ->
            let (_ : bool) = push t x in
            `Evicted old)

let drain t =
  let rec go acc = match pop t with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.head <- 0;
  t.len <- 0
