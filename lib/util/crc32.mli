(** CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.

    Used to checksum trace chunks in the [.ptrace] capture format: cheap
    enough to run on every chunk flush, and strong enough to catch the
    corruption modes the fault injector produces (bit flips, truncation,
    duplicated framing). *)

type t
(** A running checksum. *)

val init : t
(** The empty-message checksum state. *)

val update_bytes : t -> Bytes.t -> pos:int -> len:int -> t
val update_string : t -> string -> t

val finish : t -> int
(** The final CRC value, in [0, 0xFFFFFFFF]. *)

val string : string -> int
(** One-shot checksum of a whole string. *)
