type t = int

(* Slicing-by-8: table.(0) is the classic byte-at-a-time table; table.(k)
   advances a byte through k additional zero bytes, so one loop iteration
   folds eight input bytes into the running CRC with eight table reads. *)
let table =
  lazy
    (let t0 =
       Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1)
             else c := !c lsr 1
           done;
           !c)
     in
     let tabs = Array.make 8 t0 in
     for k = 1 to 7 do
       tabs.(k) <-
         Array.init 256 (fun n ->
             let prev = tabs.(k - 1).(n) in
             t0.(prev land 0xFF) lxor (prev lsr 8))
     done;
     tabs)

let init = 0xFFFFFFFF

let update_bytes t b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.update_bytes";
  let tabs = Lazy.force table in
  let t0 = Array.unsafe_get tabs 0
  and t1 = Array.unsafe_get tabs 1
  and t2 = Array.unsafe_get tabs 2
  and t3 = Array.unsafe_get tabs 3
  and t4 = Array.unsafe_get tabs 4
  and t5 = Array.unsafe_get tabs 5
  and t6 = Array.unsafe_get tabs 6
  and t7 = Array.unsafe_get tabs 7 in
  let c = ref t in
  let i = ref pos in
  let stop = pos + len in
  (* all indices below are masked to 0..255, so unsafe reads cannot escape *)
  while stop - !i >= 8 do
    let w = Bytes.get_int64_le b !i in
    let lo = !c lxor (Int64.to_int w land 0xFFFFFFFF) in
    let hi = Int64.to_int (Int64.shift_right_logical w 32) land 0xFFFFFFFF in
    c :=
      Array.unsafe_get t7 (lo land 0xFF)
      lxor Array.unsafe_get t6 ((lo lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((lo lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 ((lo lsr 24) land 0xFF)
      lxor Array.unsafe_get t3 (hi land 0xFF)
      lxor Array.unsafe_get t2 ((hi lsr 8) land 0xFF)
      lxor Array.unsafe_get t1 ((hi lsr 16) land 0xFF)
      lxor Array.unsafe_get t0 ((hi lsr 24) land 0xFF);
    i := !i + 8
  done;
  while !i < stop do
    c :=
      Array.unsafe_get t0 ((!c lxor Char.code (Bytes.unsafe_get b !i)) land 0xFF)
      lxor (!c lsr 8);
    incr i
  done;
  !c

let update_string t s =
  update_bytes t (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let finish t = t lxor 0xFFFFFFFF

let string s = finish (update_string init s)
