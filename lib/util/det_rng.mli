(** Deterministic, splittable pseudo-random number generator.

    All randomness in the reproduction flows through this module so that
    every experiment is reproducible bit-for-bit across runs and machines.
    The generator is a SplitMix64 core: a 64-bit counter advanced by a fixed
    odd increment, finalized by a mixing function.  [split] derives an
    independent stream, which lets concurrent subsystems (devices, models,
    tools) draw numbers without perturbing each other. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator seeded with [seed]. *)

val of_string : string -> t
(** [of_string s] seeds a generator from the FNV-1a hash of [s]; used to give
    each named subsystem its own stable stream. *)

val of_key : int64 -> int array -> t
(** [of_key seed parts] derives an independent stream purely from [seed] and
    the integer key components [parts] — no generator state is consumed.
    Used to give each (grid_id, region, chunk) shard of parallel record
    generation its own stream, so output is identical for any domain
    count. *)

val split : t -> t
(** [split t] advances [t] once and returns an independent generator whose
    stream does not overlap with [t]'s in practice. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val prob : t -> float -> bool
(** [prob t p] is [true] with probability [p] (clamped to [\[0;1\]]). *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. Raises [Invalid_argument] on
    an empty array. *)

val geometric : t -> float -> int
(** [geometric t p] draws from a geometric distribution with success
    probability [p]; returns the number of failures before first success
    (>= 0). Requires [0 < p <= 1]. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal draw, used for realistic kernel-duration jitter. *)
