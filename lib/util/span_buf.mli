(** Fixed-capacity span storage for self-telemetry: a cyclic buffer that
    keeps the newest spans, overwrites the oldest, and counts what it
    dropped — full-fidelity tracing can stay enabled without unbounded
    growth.  Mutex-guarded; safe to record from any domain. *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;  (** recording domain id *)
  sp_dev : int;  (** device the recording context was profiling, [-1] none *)
  sp_depth : int;  (** nesting depth at begin, 0 = outermost *)
  sp_wall0_us : float;  (** wall-clock begin, absolute microseconds *)
  sp_dur_us : float;
  sp_sim0_us : float;  (** simulated clock at begin, for correlation *)
  sp_sim1_us : float;  (** simulated clock at end *)
}

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] on a non-positive capacity. *)

val record : t -> span -> unit
val capacity : t -> int
val length : t -> int
val pushed : t -> int
(** Total spans ever recorded, including overwritten ones. *)

val dropped : t -> int
(** [pushed - length]: spans lost to overwriting. *)

val iter : t -> (span -> unit) -> unit
(** Oldest to newest, over a snapshot taken under the lock. *)

val to_list : t -> span list
val clear : t -> unit
