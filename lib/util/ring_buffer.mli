(** Fixed-capacity FIFO ring buffer.

    Models the device-side trace buffer of the CPU-analysis profiling
    pipelines (paper Fig. 2a): producers push records until the buffer is
    full, at which point the producing kernel must stall while a consumer
    drains it. *)

type 'a t

type overflow = Drop_oldest | Drop_newest | Block
(** What a bounded pipeline stage does when a producer outruns it:
    evict the oldest record, reject the incoming one, or stall the
    producer until the consumer drains ([Block] is lossless). *)

val overflow_of_string : string -> overflow option
(** Parses "drop-oldest" / "drop-newest" / "block" (case-insensitive). *)

val overflow_to_string : overflow -> string

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_full : 'a t -> bool
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [push t x] appends [x] and returns [true], or returns [false] without
    modifying [t] when full. *)

val push_overflow :
  'a t -> overflow:overflow -> 'a -> [ `Stored | `Evicted of 'a | `Rejected | `Full ]
(** [push_overflow t ~overflow x] applies the overflow policy when [t] is
    full: [Drop_oldest] evicts and returns the displaced element
    ([`Evicted old]), [Drop_newest] refuses [x] ([`Rejected]), and [Block]
    stores nothing and returns [`Full] — the caller must drain and retry
    (the producer "stalls").  On a non-full buffer all policies store and
    return [`Stored]. *)

val pop : 'a t -> 'a option

val drain : 'a t -> 'a list
(** Remove and return all elements, oldest first. *)

val clear : 'a t -> unit
