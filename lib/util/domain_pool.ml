(* A small persistent pool of OCaml 5 domains for data-parallel map over an
   index space.  Spawning a domain costs far more than the chunk-sized tasks
   the profiling pipeline runs, so workers are created once and parked on a
   condition variable between jobs.

   The pool runs one job at a time ([map] holds an internal job slot until
   every index has completed); the submitting domain participates in the
   work, so a pool of size [n] brings [n-1] spawned workers plus the caller.
   A pool of size 1 never spawns anything and runs jobs inline — the inline
   and pooled paths execute the same per-index closures in the same index
   order of completion-independent slots, which is what makes serial and
   parallel runs byte-identical downstream. *)

type job = {
  run : worker:int -> int -> unit;
  n : int;
  mutable next : int;  (* next unclaimed index *)
  mutable done_ : int;  (* completed indices *)
  mutable exn : (exn * Printexc.raw_backtrace) option;
}

type t = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t;  (* signalled when a job is posted or on shutdown *)
  finished : Condition.t;  (* signalled when a job's last index completes *)
  mutable job : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let size t = t.size
let parallelism t = Array.length t.workers + 1

(* Claim and run index blocks of [j] until exhausted.  Runs outside the
   lock.  Claiming one index per lock round-trip makes µs-scale tasks
   serialize on the mutex (measurably so at 2 domains, where the two
   claimants ping-pong the cache line); instead each round claims a guided
   block — half an even share of what remains, at most 32 — so contention
   shrinks with the claim count while the shrinking tail still balances
   load across workers of unequal speed. *)
let drain t ~worker j =
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.mutex;
    if j.next >= j.n then begin
      Mutex.unlock t.mutex;
      continue_ := false
    end
    else begin
      let lo = j.next in
      let remaining = j.n - lo in
      let claimants = Array.length t.workers + 1 in
      let take = min (min 32 remaining) (max 1 (remaining / (2 * claimants))) in
      j.next <- lo + take;
      Mutex.unlock t.mutex;
      let outcome = ref None in
      for i = lo to lo + take - 1 do
        match j.run ~worker i with
        | () -> ()
        | exception e ->
            if !outcome = None then
              outcome := Some (e, Printexc.get_raw_backtrace ())
      done;
      Mutex.lock t.mutex;
      (match !outcome with
      | Some _ when j.exn = None -> j.exn <- !outcome
      | _ -> ());
      j.done_ <- j.done_ + take;
      if j.done_ = j.n then Condition.broadcast t.finished;
      Mutex.unlock t.mutex
    end
  done

let worker_loop t slot () =
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while (not t.stop) && (match t.job with Some j -> j.next >= j.n | None -> true) do
      Condition.wait t.work t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      let j = match t.job with Some j -> j | None -> assert false in
      Mutex.unlock t.mutex;
      drain t ~worker:slot j
    end
  done

let create size =
  if size < 1 then invalid_arg "Domain_pool.create: size must be >= 1";
  let t =
    {
      size;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      stop = false;
      workers = [||];
    }
  in
  (* Never spawn more workers than the hardware can actually run: a pool
     sized past [recommended_domain_count] only adds scheduler ping-pong
     (the measured 2-domain anomaly on a 1-core host — every extra domain
     timeshares the same core through the job mutex).  The requested
     [size] is still reported by [size t]; [parallelism t] is what the
     pool will really use. *)
  let spawn = min (size - 1) (max 0 (Domain.recommended_domain_count () - 1)) in
  if spawn > 0 then
    (* Worker [k] owns slot [k + 1]; the submitting caller is slot 0. *)
    t.workers <- Array.init spawn (fun k -> Domain.spawn (worker_loop t (k + 1)));
  t

let run_sharded t n f =
  if n > 0 then
    if Array.length t.workers = 0 || n < 4 * (Array.length t.workers + 1) then
      (* Sequential cutoff: waking a worker costs more than a handful of
         chunk-sized tasks, and on a machine with fewer cores than the
         pool the handshake serializes anyway.  Results don't depend on
         who runs an index, so this is purely a scheduling choice. *)
      for i = 0 to n - 1 do
        f ~worker:0 i
      done
    else begin
      let j = { run = f; n; next = 0; done_ = 0; exn = None } in
      Mutex.lock t.mutex;
      (* One job at a time: wait for any previous job to finish. *)
      while t.job <> None do
        Condition.wait t.finished t.mutex
      done;
      t.job <- Some j;
      (* Wake only as many workers as there are indices beyond the one the
         caller takes itself: a broadcast on every small job thrashes the
         scheduler when the machine has fewer cores than the pool. *)
      let wake = min (n - 1) (Array.length t.workers) in
      for _ = 1 to wake do
        Condition.signal t.work
      done;
      Mutex.unlock t.mutex;
      drain t ~worker:0 j;
      Mutex.lock t.mutex;
      while j.done_ < j.n do
        Condition.wait t.finished t.mutex
      done;
      t.job <- None;
      Condition.broadcast t.finished;
      Mutex.unlock t.mutex;
      match j.exn with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

let run t n f = run_sharded t n (fun ~worker:_ i -> f i)

let map t n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    (* Distinct cells, and [run]'s completion handshake publishes the
       writes, so reading them back after [run] returns is race-free. *)
    run t n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

let shutdown t =
  if Array.length t.workers > 0 then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

(* The profiling session and the benchmarks share one process-wide pool so
   repeated attach/detach cycles do not spawn fresh domains each time. *)
let current = ref None

let global ~size =
  let size = max 1 size in
  match !current with
  | Some t when t.size = size -> t
  | existing ->
      Option.iter shutdown existing;
      let t = create size in
      current := Some t;
      t
