(* A small metrics registry in the Prometheus data model: named series
   carrying counters (monotone ints), gauges (floats) or histograms
   (count/sum plus a bounded reservoir summarized through {!Stats}).
   Registration is find-or-create on (name, labels), so independent
   subsystems can hold direct handles to the same series.

   Mutation through a handle is a plain field write — the registry is
   meant for the coordinator domain's hot paths, where an atomic or a
   lock per increment would dominate the cost of what is being counted.
   Registration and export take the registry lock. *)

type histo = {
  mutable h_count : int;
  mutable h_sum : float;
  h_samples : float array;  (* cyclic reservoir of the newest observations *)
  mutable h_stored : int;   (* samples currently valid, <= capacity *)
  mutable h_next : int;     (* next write position *)
}

type counter = { mutable c : int }
type gauge = { mutable g : float }
type histogram = histo

type cell = Counter of counter | Gauge of gauge | Histogram of histo

type series = {
  s_name : string;
  s_help : string;
  s_labels : (string * string) list;
  s_cell : cell;
}

type t = {
  mutable series : series list; (* reverse registration order *)
  index : (string, series) Hashtbl.t;
  mu : Mutex.t;
}

let create () = { series = []; index = Hashtbl.create 32; mu = Mutex.create () }

let key name labels =
  match labels with
  | [] -> name
  | _ ->
      let b = Buffer.create 48 in
      Buffer.add_string b name;
      List.iter
        (fun (k, v) ->
          Buffer.add_char b '\x00';
          Buffer.add_string b k;
          Buffer.add_char b '\x01';
          Buffer.add_string b v)
        labels;
      Buffer.contents b

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let register t ~help ~labels name make =
  locked t (fun () ->
      let k = key name labels in
      match Hashtbl.find_opt t.index k with
      | Some s -> s.s_cell
      | None ->
          let s =
            { s_name = name; s_help = help; s_labels = labels; s_cell = make () }
          in
          Hashtbl.add t.index k s;
          t.series <- s :: t.series;
          s.s_cell)

let counter t ?(help = "") ?(labels = []) name =
  match register t ~help ~labels name (fun () -> Counter { c = 0 }) with
  | Counter c -> c
  | _ -> invalid_arg (Printf.sprintf "Metric.counter: %s is not a counter" name)

let gauge t ?(help = "") ?(labels = []) name =
  match register t ~help ~labels name (fun () -> Gauge { g = 0.0 }) with
  | Gauge g -> g
  | _ -> invalid_arg (Printf.sprintf "Metric.gauge: %s is not a gauge" name)

let histogram t ?(help = "") ?(labels = []) ?(samples = 8192) name =
  if samples <= 0 then invalid_arg "Metric.histogram: samples must be positive";
  let make () =
    Histogram
      {
        h_count = 0;
        h_sum = 0.0;
        h_samples = Array.make samples 0.0;
        h_stored = 0;
        h_next = 0;
      }
  in
  match register t ~help ~labels name make with
  | Histogram h -> h
  | _ -> invalid_arg (Printf.sprintf "Metric.histogram: %s is not a histogram" name)

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let set c n = c.c <- n
let value c = c.c

let set_gauge g v = g.g <- v
let add_gauge g v = g.g <- g.g +. v
let max_gauge g v = if v > g.g then g.g <- v
let gauge_value g = g.g

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_samples.(h.h_next) <- v;
  h.h_next <- (h.h_next + 1) mod Array.length h.h_samples;
  if h.h_stored < Array.length h.h_samples then h.h_stored <- h.h_stored + 1

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

let histogram_summary h =
  if h.h_stored = 0 then None
  else Some (Stats.summarize (Array.sub h.h_samples 0 h.h_stored))

let find_counter t ?(labels = []) name =
  locked t (fun () ->
      match Hashtbl.find_opt t.index (key name labels) with
      | Some { s_cell = Counter c; _ } -> Some c.c
      | _ -> None)

let find_gauge t ?(labels = []) name =
  locked t (fun () ->
      match Hashtbl.find_opt t.index (key name labels) with
      | Some { s_cell = Gauge g; _ } -> Some g.g
      | _ -> None)

let counter_samples t =
  locked t (fun () ->
      List.rev t.series
      |> List.filter_map (fun s ->
             match s.s_cell with
             | Counter c -> Some (s.s_name, s.s_labels, c.c)
             | _ -> None))

let reset t =
  locked t (fun () ->
      List.iter
        (fun s ->
          match s.s_cell with
          | Counter c -> c.c <- 0
          | Gauge g -> g.g <- 0.0
          | Histogram h ->
              h.h_count <- 0;
              h.h_sum <- 0.0;
              h.h_stored <- 0;
              h.h_next <- 0)
        t.series)

(* --- Prometheus text exposition --------------------------------------- *)

let escape_label v =
  let b = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels buf labels =
  match labels with
  | [] -> ()
  | _ ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_label v);
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}'

let render_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let sample buf name labels v =
  Buffer.add_string buf name;
  render_labels buf labels;
  Buffer.add_char buf ' ';
  Buffer.add_string buf v;
  Buffer.add_char buf '\n'

let quantile_samples buf name labels h =
  (match histogram_summary h with
  | None -> ()
  | Some s ->
      List.iter
        (fun (q, v) ->
          sample buf name (labels @ [ ("quantile", q) ]) (render_float v))
        [
          ("0.5", s.Stats.median); ("0.9", s.Stats.p90); ("0.99", s.Stats.p99);
        ]);
  sample buf (name ^ "_sum") labels (render_float h.h_sum);
  sample buf (name ^ "_count") labels (string_of_int h.h_count)

let type_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "summary"

(* The exposition format requires every sample of a metric name to sit in
   one block under a single TYPE line, so group by name (first-seen order)
   across all the registries being merged. *)
let to_prometheus_all regs =
  let all =
    List.concat_map (fun t -> locked t (fun () -> List.rev t.series)) regs
  in
  let names = ref [] in
  List.iter
    (fun s -> if not (List.mem s.s_name !names) then names := s.s_name :: !names)
    all;
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      let group = List.filter (fun s -> s.s_name = name) all in
      (match group with
      | s :: _ ->
          if s.s_help <> "" then
            Buffer.add_string buf
              (Printf.sprintf "# HELP %s %s\n" name (escape_label s.s_help));
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s %s\n" name (type_name s.s_cell))
      | [] -> ());
      List.iter
        (fun s ->
          match s.s_cell with
          | Counter c -> sample buf name s.s_labels (string_of_int c.c)
          | Gauge g -> sample buf name s.s_labels (render_float g.g)
          | Histogram h -> quantile_samples buf name s.s_labels h)
        group)
    (List.rev !names);
  Buffer.contents buf

let to_prometheus t = to_prometheus_all [ t ]
