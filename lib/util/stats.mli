(** Descriptive statistics over float samples: the summary columns of the
    paper's Table V (min / avg / median / 90th percentile) plus a few extras
    used by the benches and the telemetry latency histograms (p99 for tail
    visibility). *)

type summary = {
  count : int;
  total : float;
  min : float;
  max : float;
  mean : float;
  median : float;
  p90 : float;
  p99 : float;
  stddev : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array.  Does not mutate the
    input. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0;100\]], linear interpolation between
    closest ranks on a sorted copy.  Raises [Invalid_argument] on an empty
    array or [p] out of range. *)

val mean : float array -> float
val geomean : float array -> float
(** Geometric mean; requires all samples strictly positive. *)

val pp_summary : Format.formatter -> summary -> unit
