(** A small metrics registry in the Prometheus data model.

    Series are registered find-or-create on [(name, labels)] and mutated
    through direct handles, so a hot path pays one field write per update
    and never re-hashes the name.  Three kinds are supported: counters
    (monotone ints — though {!set} exists for mirroring externally-owned
    totals), gauges (floats) and histograms (count/sum plus a bounded
    reservoir of the newest observations, summarized through
    {!Stats.summarize} and exported as a Prometheus [summary] with
    p50/p90/p99 quantiles).

    Handle mutations are not synchronized: series are meant to be updated
    from the coordinator domain only.  Registration and export lock the
    registry. *)

type t
type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Find-or-create.  Raises [Invalid_argument] if the series exists with a
    different kind. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> ?samples:int -> string -> histogram
(** [samples] bounds the quantile reservoir (default 8192); [_count] and
    [_sum] remain exact when it overflows, quantiles reflect the newest
    [samples] observations. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : counter -> int -> unit
(** Overwrite the counter — for mirroring a total owned elsewhere (e.g.
    bytes a writer has flushed). *)

val value : counter -> int

val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val max_gauge : gauge -> float -> unit
(** Keep the maximum of the current value and [v] — high-water marks. *)

val gauge_value : gauge -> float

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_summary : histogram -> Stats.summary option
(** Summary over the reservoir; [None] before the first observation. *)

val find_counter : t -> ?labels:(string * string) list -> string -> int option
val find_gauge : t -> ?labels:(string * string) list -> string -> float option

val counter_samples : t -> (string * (string * string) list * int) list
(** Every counter series in registration order — the deterministic facts a
    replayed trace must reproduce. *)

val reset : t -> unit
(** Zero every registered series (handles stay valid). *)

val to_prometheus : t -> string

val to_prometheus_all : t list -> string
(** Merge several registries into one exposition; samples sharing a metric
    name are grouped under a single [# TYPE] block as the format
    requires. *)
