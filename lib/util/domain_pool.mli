(** Persistent domain pool for data-parallel preprocessing.

    The profiling pipeline shards record generation and aggregation into
    chunk-sized tasks; this pool keeps [size - 1] worker domains parked
    between jobs and lets the caller participate in each job, so a pool of
    size [n] uses [n] domains of compute.  A pool of size 1 spawns nothing
    and runs jobs inline, which keeps the serial path on exactly the same
    code as the parallel one. *)

type t

val create : int -> t
(** [create size] makes a pool of [size] requested compute lanes.  At most
    [Domain.recommended_domain_count () - 1] worker domains are actually
    spawned: sizing a pool past the hardware's parallelism cannot make it
    faster, only thrash the scheduler (domains timesharing one core through
    the job mutex), so the pool clamps silently and {!parallelism} reports
    what it will really use.  Raises [Invalid_argument] if [size < 1]. *)

val size : t -> int
(** The requested size, as passed to {!create}. *)

val parallelism : t -> int
(** Compute lanes the pool actually uses: spawned workers plus the caller,
    i.e. [min (size t) (Domain.recommended_domain_count ())] as observed at
    creation.  Callers sizing per-slot accumulators should use this, not
    {!size}. *)

val run : t -> int -> (int -> unit) -> unit
(** [run t n f] evaluates [f i] for every [i] in [\[0, n)], distributing
    indices over the pool, and returns once all have completed.  Jobs with
    fewer than 4 indices per compute lane run inline on the caller — a
    sequential cutoff below which the worker handshake costs more than the
    work.  [f] must be safe to call from multiple domains; index execution
    order is unspecified.  If any [f i] raises, the first exception
    observed is re-raised after the job drains. *)

val run_sharded : t -> int -> (worker:int -> int -> unit) -> unit
(** [run_sharded t n f] is {!run} with the executing compute lane made
    visible: [f ~worker i] receives the worker slot in [\[0, parallelism t)]
    that claimed index [i].  The submitting caller is always slot [0]; spawned
    worker [k] is slot [k + 1].  At most one domain executes under a given
    slot at any time, so callers may keep one mutable accumulator per slot
    and touch it without synchronization.  Which indices land on which
    slot is unspecified (guided block claiming). *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map t n f] is [\[| f 0; ...; f (n-1) |\]] computed over the pool; the
    result array is in index order regardless of execution order. *)

val shutdown : t -> unit
(** Joins the worker domains.  The pool must be idle.  Idempotent. *)

val global : size:int -> t
(** [global ~size] returns a process-wide shared pool, (re)creating it if the
    previously shared pool had a different size. *)
