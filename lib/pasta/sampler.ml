(* The adaptive sampling governor: a closed feedback loop that keeps
   fine-grained analysis overhead inside a user-set budget by steering the
   device's record sampling rate.

   The loop runs at kernel boundaries.  Each [observe] diffs the
   self-telemetry attribution window against the previous reading to get
   the overhead fraction of the just-elapsed window, folds in ring-buffer
   pressure (drops or producer stalls mean the pipeline is already losing
   data, regardless of what the clock says), and applies AIMD control:
   multiplicative decrease (x0.5, floored at [min_rate]) on violation,
   additive recovery (+0.05, capped at 1.0) once comfortably under
   budget.  Multiplicative decrease converges in a handful of kernels even
   from rate 1.0; additive recovery keeps the steady state from
   oscillating.

   The governor only decides the rate.  Determinism is preserved because
   the chosen rate is recorded in the trace (Processor.note_rate ->
   Sk_rate) before the launch it first applies to, and the thinning
   streams themselves are keyed per (grid, region, chunk): replaying the
   schedule reproduces the sampled stream byte-for-byte.

   With telemetry at [Off] there is no overhead signal, so an [Auto]
   governor cannot close the loop.  It must not silently pin rate 1.0 (the
   user asked for bounded overhead); instead it degrades to a fixed
   fallback rate and counts the blind windows so health reports can warn
   about it. *)

type mode = Fixed of float | Auto of { budget : float }

let min_rate = 0.05
let decrease_factor = 0.5
let recovery_step = 0.05

(* Recover only when the window sat comfortably under budget, so the rate
   doesn't saw-tooth across the ceiling. *)
let recovery_headroom = 0.8

(* An Auto governor that loses its telemetry signal falls back to this
   fixed rate unless the user pinned one via ACCEL_PROF_SAMPLE_RATE. *)
let default_blind_rate = 0.1

type t = {
  mode : mode;
  fallback : float;  (* rate used when Auto runs telemetry-blind *)
  mutable rate : float;
  mutable last_total_us : float;
  mutable last_overhead_us : float;
  mutable last_dropped : int;
  mutable last_stalls : int;
  mutable windows : int;
  mutable adjustments : int;
  mutable violations : int;
  mutable floor_hits : int;
  mutable blind_windows : int;
}

let create ?fallback mode =
  let fallback =
    match fallback with Some r -> r | None -> default_blind_rate
  in
  (match mode with
  | Fixed r when not (r > 0.0 && r <= 1.0 && Float.is_finite r) ->
      invalid_arg "Sampler.create: fixed rate must be in (0, 1]"
  | Auto { budget } when not (budget > 0.0 && budget <= 1.0 && Float.is_finite budget)
    ->
      invalid_arg "Sampler.create: budget must be in (0, 1]"
  | _ -> ());
  if not (fallback > 0.0 && fallback <= 1.0 && Float.is_finite fallback) then
    invalid_arg "Sampler.create: fallback rate must be in (0, 1]";
  {
    mode;
    fallback;
    (* Auto starts exact and backs off under violation, so short runs that
       never threaten the budget stay unsampled. *)
    rate = (match mode with Fixed r -> r | Auto _ -> 1.0);
    last_total_us = 0.0;
    last_overhead_us = 0.0;
    last_dropped = 0;
    last_stalls = 0;
    windows = 0;
    adjustments = 0;
    violations = 0;
    floor_hits = 0;
    blind_windows = 0;
  }

let mode t = t.mode
let rate t = t.rate

let set_rate t r =
  if r <> t.rate then begin
    t.rate <- r;
    t.adjustments <- t.adjustments + 1
  end

let observe t ~dropped ~stalls =
  match t.mode with
  | Fixed _ -> ()
  | Auto { budget } ->
      t.windows <- t.windows + 1;
      if Telemetry.level () = Telemetry.Off then begin
        (* Satellite contract: blind governors degrade to a fixed rate and
           say so — never a silent rate-1.0. *)
        t.blind_windows <- t.blind_windows + 1;
        set_rate t t.fallback
      end
      else begin
        let total, overhead = Telemetry.overhead_snapshot () in
        let d_total = total -. t.last_total_us in
        let d_over = overhead -. t.last_overhead_us in
        t.last_total_us <- total;
        t.last_overhead_us <- overhead;
        let d_dropped = dropped - t.last_dropped in
        let d_stalls = stalls - t.last_stalls in
        t.last_dropped <- dropped;
        t.last_stalls <- stalls;
        let frac = if d_total > 0.0 then d_over /. d_total else 0.0 in
        let pressured = d_dropped > 0 || d_stalls > 0 in
        if frac > budget || pressured then begin
          t.violations <- t.violations + 1;
          let next = Float.max min_rate (t.rate *. decrease_factor) in
          if next <= min_rate then t.floor_hits <- t.floor_hits + 1;
          set_rate t next
        end
        else if frac < budget *. recovery_headroom && t.rate < 1.0 then
          set_rate t (Float.min 1.0 (t.rate +. recovery_step))
      end

type snapshot = {
  sn_mode : string;
  sn_rate : float;
  sn_windows : int;
  sn_adjustments : int;
  sn_violations : int;
  sn_floor_hits : int;
  sn_blind_windows : int;
}

let mode_name = function
  | Fixed r -> Printf.sprintf "fixed %.3f" r
  | Auto { budget } -> Printf.sprintf "auto (budget %.1f%%)" (100.0 *. budget)

let snapshot t =
  {
    sn_mode = mode_name t.mode;
    sn_rate = t.rate;
    sn_windows = t.windows;
    sn_adjustments = t.adjustments;
    sn_violations = t.violations;
    sn_floor_hits = t.floor_hits;
    sn_blind_windows = t.blind_windows;
  }

let pp_snapshot ppf s =
  Format.fprintf ppf
    "sampling: %s, rate %.3f (%d window%s, %d adjustment%s, %d violation%s)"
    s.sn_mode s.sn_rate s.sn_windows
    (if s.sn_windows = 1 then "" else "s")
    s.sn_adjustments
    (if s.sn_adjustments = 1 then "" else "s")
    s.sn_violations
    (if s.sn_violations = 1 then "" else "s");
  if s.sn_floor_hits > 0 then
    Format.fprintf ppf ", floor %.2f hit %d time%s" min_rate s.sn_floor_hits
      (if s.sn_floor_hits = 1 then "" else "s");
  if s.sn_blind_windows > 0 then
    Format.fprintf ppf
      "@.  WARNING: telemetry off — governor ran blind for %d window%s at \
       fixed fallback rate"
      s.sn_blind_windows
      (if s.sn_blind_windows = 1 then "" else "s")

(* Resolve a governor from explicit arguments and the environment knobs.
   A budget (argument or ACCEL_PROF_OVERHEAD_BUDGET) selects [Auto]; a
   bare rate (argument or ACCEL_PROF_SAMPLE_RATE) selects [Fixed]; with
   both, the budget governs and the rate serves as the blind fallback.
   Neither -> no governor, rate stays 1.0. *)
let of_config ?rate ?budget () =
  let rate = match rate with Some r -> Some r | None -> Config.sampling_rate () in
  let budget =
    match budget with Some b -> Some b | None -> Config.overhead_budget ()
  in
  match (budget, rate) with
  | Some b, fallback -> Some (create ?fallback (Auto { budget = b }))
  | None, Some r -> Some (create (Fixed r))
  | None, None -> None

(* A fleet splits one overhead budget across its device shards.  Shards run
   sequentially on the coordinator, so the fair slice for the next shard is
   what remains of the budget divided by the shards still to run; a shard
   that overspent shrinks its successors' slices instead of blowing the
   fleet total.  Clamped into (0, 1] because a slice of 0 would disable
   the governor a caller asked for. *)
let fleet_slice ~budget ~spent_frac ~shards_left =
  if not (budget > 0.0 && budget <= 1.0 && Float.is_finite budget) then
    invalid_arg "Sampler.fleet_slice: budget must be in (0, 1]";
  if shards_left <= 0 then invalid_arg "Sampler.fleet_slice: shards_left <= 0";
  let remaining = Float.max 0.0 (budget -. Float.max 0.0 spent_frac) in
  let slice = remaining /. float_of_int shards_left in
  Float.max 0.001 (Float.min 1.0 slice)
