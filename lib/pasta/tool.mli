(** The PASTA tool template (paper §III-B, "Tool collection").

    A tool is a record of callbacks with no-op defaults; users build one
    by overriding only the functions they need — the paper's "simply
    overriding functions in the PASTA tool collection template".  The
    [fine_grained] field declares what instrumentation the tool needs and
    the analysis model it runs under; the session wires the corresponding
    backend machinery (Fig. 2's two models):

    - [Gpu_accelerated] — device-resident aggregation; the tool receives
      per-kernel object access summaries via [on_mem_summary];
    - [Cpu_sanitizer] / [Cpu_nvbit] — host-side trace analysis; the tool
      receives individual records via [on_access]. *)

type fine_grained =
  | No_fine_grained
  | Gpu_accelerated
  | Gpu_parallel
      (** device-resident *parallel* reduction over materialized records:
          shards aggregate on a domain pool and merge deterministically;
          the tool receives one {!Devagg.summary} per kernel via
          [on_device_summary] and never sees raw records *)
  | Cpu_sanitizer
  | Cpu_nvbit
  | Instruction_level
      (** device-resident instruction-class patching; the tool receives
          per-kernel behaviour profiles via [on_kernel_profile] *)

val fine_grained_to_string : fine_grained -> string

type t = {
  name : string;
  fine_grained : fine_grained;
  on_event : Event.t -> unit;  (** every in-range unified event *)
  on_kernel_begin : Event.kernel_info -> unit;
  on_kernel_end : Event.kernel_info -> Event.kernel_end_summary -> unit;
  on_mem_summary : Event.kernel_info -> (Objmap.obj * int) list -> unit;
      (** per-kernel (object, access count) aggregates, GPU-analyzed *)
  on_device_summary : Event.kernel_info -> Devagg.summary -> unit;
      (** per-kernel merged parallel reduction ([Gpu_parallel] mode) *)
  on_access : Event.kernel_info -> Event.mem_access -> unit;
      (** per-record host analysis (sampled, weighted) *)
  on_access_batch : (Event.kernel_info -> Gpusim.Warp.batch -> unit) option;
      (** when set, fine-grained records are delivered as packed flat-array
          batches instead of per-record [on_access] calls; [None] (the
          default) keeps the per-record loop.  Deprecated in favour of
          [on_access_columns]: this path re-wraps every batch in an
          {!Event.t} per dispatch (the processor counts such deliveries
          under [pasta_deprecated_batch_tools]) *)
  on_access_columns : (Event.kernel_info -> Gpusim.Warp.batch -> unit) option;
      (** when set (and [ACCEL_PROF_COLUMNAR] is not disabled), batches are
          delivered zero-copy with no per-dispatch event allocation; the
          tool reads the Bigarray columns directly.  Columns are shared,
          not copied — treat them as read-only.  Takes precedence over
          [on_access_batch] *)
  on_kernel_profile : Event.kernel_info -> Gpusim.Kernel.profile -> unit;
      (** per-kernel microarchitectural aggregates (divergence, barrier
          stalls, bank conflicts, value ranges), instruction-level mode *)
  on_operator : string -> Event.api_phase -> int -> unit;
  on_tensor :
    [ `Alloc of int * int * string | `Free of int * int ] -> unit;
      (** (ptr, bytes, tag) / (ptr, bytes) *)
  report : Format.formatter -> unit;
}

val default : ?fine_grained:fine_grained -> string -> t
(** A tool that observes nothing and reports a one-line placeholder;
    override fields with [{ (default "name") with ... }]. *)
