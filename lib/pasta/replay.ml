let default_mode = function
  | Some m -> m
  | None -> if Config.trace_strict () then Ptrace.Strict else Ptrace.Tolerant

(* Chunk decoding parallelizes over the same process-wide pool a live
   Session would install; decoded ops are still applied in recorded
   order, so every result is identical to a serial read. *)
let decode_pool () =
  let dsize = Config.domains () in
  if dsize > 1 then Some (Pasta_util.Domain_pool.global ~size:dsize) else None

let apply proc ~time_us (op : Processor.sink_op) =
  match op with
  | Processor.Sk_event (Event.Annotation { label; phase = `Start }) ->
      Processor.annot_start proc ~time_us label
  | Processor.Sk_event (Event.Annotation { label; phase = `End }) ->
      Processor.annot_end proc ~time_us label
  | Processor.Sk_event (Event.Device_summary { kernel; summary }) ->
      (* Recorded aggregate: re-drive it through the structured callback
         instead of [submit] so the tool sees the same
         [on_device_summary] the live run saw. *)
      Processor.submit_device_summary proc ~time_us kernel summary
  | Processor.Sk_event payload -> Processor.submit proc ~time_us payload
  | Processor.Sk_access (k, a) -> Processor.submit_access proc ~time_us k a
  | Processor.Sk_batch (k, b) -> Processor.submit_access_batch proc ~time_us k b
  | Processor.Sk_region (k, r) ->
      Processor.submit_region proc k ~base:r.Event.base ~extent:r.Event.extent
        ~accesses:r.Event.accesses ~written:r.Event.written
  | Processor.Sk_flush_summary k -> Processor.flush_kernel_summary proc ~time_us k
  | Processor.Sk_flush_parallel k ->
      (* The aggregate this flush produced is the next recorded
         [Device_summary] op: drop the buffered batches instead of paying
         the aggregation a second time. *)
      Processor.flush_parallel_drop proc ~time_us k
  | Processor.Sk_profile (k, p) -> Processor.submit_profile proc ~time_us k p
  | Processor.Sk_rate { sr_rate; sr_grid_id } ->
      (* Re-note the recorded rate schedule: downstream summaries regain
         their estimate stamps, and re-recording a replay reproduces the
         same [Sk_rate] stream. *)
      Processor.note_rate proc ~time_us ~grid_id:sr_grid_id sr_rate

let drive ?mode proc path =
  let mode = default_mode mode in
  let reg = Processor.metrics proc in
  (* Labels must match the processor's series or these lookups would
     find-or-create parallel unlabeled ones. *)
  let labels = Processor.metric_labels proc in
  let c_replayed = Pasta_util.Metric.counter reg ~labels "pasta_replay_events" in
  let c_chunks = Pasta_util.Metric.counter reg ~labels "pasta_trace_chunks" in
  let c_skipped =
    Pasta_util.Metric.counter reg ~labels "pasta_trace_chunks_skipped"
  in
  let last_us = ref 0.0 in
  (* The whole read is replay I/O; time spent re-driving ops through the
     processor nests into the dispatch/ring/devagg spans and is charged to
     those layers, leaving decode + disk time on the replay row.  A
     [Ptrace.Corrupt] in strict mode must still pop the span. *)
  Telemetry.begin_span Telemetry.Replay_io "replay.read";
  match
    Ptrace.read_file ~mode ?pool:(decode_pool ()) path ~f:(fun ~time_us op ->
        if time_us > !last_us then last_us := time_us;
        (* Mirror the recorded timeline where a live session mirrors the
           device clock, so exported telemetry spans carry sim stamps. *)
        Telemetry.note_sim_us time_us;
        apply proc ~time_us op;
        Pasta_util.Metric.incr c_replayed)
  with
  | header, rstats ->
      Processor.flush_records proc;
      Telemetry.end_span Telemetry.Replay_io;
      Pasta_util.Metric.set c_chunks rstats.Ptrace.r_chunks;
      Pasta_util.Metric.set c_skipped rstats.Ptrace.r_chunks_skipped;
      (header, rstats, !last_us)
  | exception e ->
      Telemetry.end_span Telemetry.Replay_io;
      raise e

type outcome = {
  header : Ptrace.header;
  tool_name : string;
  ops_replayed : int;
  chunks : int;
  chunks_skipped : int;
  elapsed_us : float;
  processor : Processor.t;
  report : Format.formatter -> unit;
}

let run ?mode ?range ~tool path =
  let hdr = Ptrace.read_header_of_file path in
  let proc = Processor.create ?range ~device:hdr.Ptrace.h_device () in
  Processor.set_tool proc tool;
  (* Match the live pipeline: kernel-end aggregation runs on the same
     process-wide domain pool a Session would install.  Results are
     identical for every pool size, so this only affects wall time. *)
  Option.iter (Processor.set_pool proc) (decode_pool ());
  let header, rstats, elapsed_us = drive ?mode proc path in
  let report ppf =
    try tool.Tool.report ppf
    with exn ->
      Format.fprintf ppf "tool %s: report failed (%s)@." tool.Tool.name
        (Printexc.to_string exn)
  in
  {
    header;
    tool_name = tool.Tool.name;
    ops_replayed = rstats.Ptrace.r_ops;
    chunks = rstats.Ptrace.r_chunks;
    chunks_skipped = rstats.Ptrace.r_chunks_skipped;
    elapsed_us;
    processor = proc;
    report;
  }

(* ------------------------------------------------------------------ *)
(* trace stat                                                          *)
(* ------------------------------------------------------------------ *)

type stat = {
  s_header : Ptrace.header;
  s_bytes : int;
  s_ops : int;
  s_records : int;
  s_chunks : int;
  s_chunks_skipped : int;
  s_first_us : float;
  s_last_us : float;
  s_kinds : (string * int) list;
}

let stat ?mode path =
  let mode = default_mode mode in
  let kinds : (string, int) Hashtbl.t = Hashtbl.create 24 in
  let records = ref 0 in
  let first_us = ref infinity and last_us = ref neg_infinity in
  let header, rstats =
    Ptrace.read_file ~mode ?pool:(decode_pool ()) path ~f:(fun ~time_us op ->
        if time_us < !first_us then first_us := time_us;
        if time_us > !last_us then last_us := time_us;
        records := !records + Ptrace.op_records op;
        let k = Ptrace.op_kind_name op in
        Hashtbl.replace kinds k (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k)))
  in
  let kinds =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []
    |> List.sort (fun (ka, na) (kb, nb) ->
           match compare nb na with 0 -> compare ka kb | c -> c)
  in
  {
    s_header = header;
    s_bytes =
      (try
         let ic = open_in_bin path in
         Fun.protect
           ~finally:(fun () -> close_in ic)
           (fun () -> in_channel_length ic)
       with Sys_error _ -> 0);
    s_ops = rstats.Ptrace.r_ops;
    s_records = !records;
    s_chunks = rstats.Ptrace.r_chunks;
    s_chunks_skipped = rstats.Ptrace.r_chunks_skipped;
    s_first_us = (if !first_us = infinity then 0.0 else !first_us);
    s_last_us = (if !last_us = neg_infinity then 0.0 else !last_us);
    s_kinds = kinds;
  }

let pp_stat ppf s =
  Format.fprintf ppf "ptrace v%d  device %d%s@." s.s_header.Ptrace.h_version
    s.s_header.Ptrace.h_device
    (if s.s_header.Ptrace.h_meta = "" then ""
     else Printf.sprintf "  meta %S" s.s_header.Ptrace.h_meta);
  Format.fprintf ppf "  bytes            %d@." s.s_bytes;
  Format.fprintf ppf "  ops              %d@." s.s_ops;
  Format.fprintf ppf "  records          %d@." s.s_records;
  Format.fprintf ppf "  chunks           %d (%d skipped)@." s.s_chunks
    s.s_chunks_skipped;
  Format.fprintf ppf "  span             %.1f .. %.1f us@." s.s_first_us
    s.s_last_us;
  List.iter
    (fun (k, n) -> Format.fprintf ppf "  %-16s %d@." k n)
    s.s_kinds

(* ------------------------------------------------------------------ *)
(* trace diff                                                          *)
(* ------------------------------------------------------------------ *)

type divergence =
  | Identical of int  (** op count *)
  | Op_mismatch of { index : int; a : string; b : string }
  | Length_mismatch of { a_ops : int; b_ops : int }

(* Fingerprint every op with a canonical (interning-free) encoding; 16
   bytes per op keeps memory flat even for long traces. *)
let op_digests ?mode path =
  let mode = default_mode mode in
  let buf = Buffer.create 4096 in
  let _, rstats =
    Ptrace.read_file ~mode ?pool:(decode_pool ()) path ~f:(fun ~time_us op ->
        Buffer.add_string buf (Digest.string (Ptrace.op_to_string ~time_us op)))
  in
  (rstats.Ptrace.r_ops, Buffer.contents buf)

let describe_op ?mode path index =
  let mode = default_mode mode in
  let i = ref 0 in
  let found = ref "<missing>" in
  let _ =
    Ptrace.read_file ~mode ?pool:(decode_pool ()) path ~f:(fun ~time_us op ->
        if !i = index then
          found := Printf.sprintf "%s @ %.1fus" (Ptrace.op_kind_name op) time_us;
        incr i)
  in
  !found

let diff ?mode a b =
  let a_ops, da = op_digests ?mode a in
  let b_ops, db = op_digests ?mode b in
  if a_ops = b_ops && da = db then Identical a_ops
  else begin
    let n = min a_ops b_ops in
    let rec first i =
      if i >= n then None
      else if String.sub da (i * 16) 16 <> String.sub db (i * 16) 16 then Some i
      else first (i + 1)
    in
    match first 0 with
    | Some index ->
        Op_mismatch
          { index; a = describe_op ?mode a index; b = describe_op ?mode b index }
    | None -> Length_mismatch { a_ops; b_ops }
  end

let pp_divergence ppf = function
  | Identical n -> Format.fprintf ppf "identical (%d ops)@." n
  | Op_mismatch { index; a; b } ->
      Format.fprintf ppf "first divergence at op %d:@.  a: %s@.  b: %s@." index
        a b
  | Length_mismatch { a_ops; b_ops } ->
      Format.fprintf ppf
        "common prefix identical; lengths differ (a: %d ops, b: %d ops)@."
        a_ops b_ops
