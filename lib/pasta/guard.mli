(** Tool sandboxing: a per-session circuit breaker around every {!Tool.t}
    callback.

    PASTA's contract is that attaching a profiler must never take the
    workload down.  A tool is user code, though, and any of its callbacks
    can raise.  The guard catches every exception, counts it per callback,
    and — once a failure threshold is crossed — {e quarantines} the tool:
    callbacks become no-ops and the workload proceeds unobserved.  After a
    cooldown measured in kernels the breaker goes {e half-open}: the next
    callback runs as a probe, and on success the tool is reinstated with a
    fresh failure budget.

    The guard never raises and never lets a tool exception escape.

    The breaker is domain-safe: state transitions are serialized by an
    internal mutex, so concurrent callers (fleet shards, tests racing
    quarantine against half-open probes) observe a linearizable state
    machine — at most one half-open probe is in flight, and a burst of
    concurrent failures trips the breaker exactly once.  Tool callbacks and
    the [on_trip]/[on_failure] hooks always run outside the lock. *)

type callback =
  | On_event
  | On_kernel_begin
  | On_kernel_end
  | On_mem_summary
  | On_device_summary
  | On_access
  | On_access_batch
  | On_kernel_profile
  | On_operator
  | On_tensor
  | Report

val callback_name : callback -> string

type state = Closed | Quarantined | Half_open

val state_name : state -> string

type t

val create :
  ?threshold:int ->
  ?cooldown_kernels:int ->
  ?on_failure:(callback -> unit) ->
  on_trip:(failures:int -> unit) ->
  Tool.t ->
  t
(** [threshold] and [cooldown_kernels] default to the
    {!Config.guard_threshold} / {!Config.guard_cooldown_kernels} knobs.
    [on_failure] fires on every caught exception (lets the processor
    mirror counts into its stats); [on_trip] fires exactly once per
    quarantine, after the state flip. *)

val tool : t -> Tool.t
val state : t -> state

val note_kernel : t -> unit
(** Advance the cooldown clock; call once per kernel launch observed. *)

val call : t -> callback -> (Tool.t -> unit) -> unit
(** Run one callback under the breaker.  Quarantined: no-op (counted as
    suppressed).  Cooldown elapsed: the call is the half-open probe. *)

val guarded_report : t -> Format.formatter -> unit
(** The tool's report, exception-safe; always attempted (quarantine only
    silences the event-path callbacks, not end-of-run reporting). *)

(** {2 Accounting} *)

val total_failures : t -> int
val failures_by_callback : t -> (string * int) list
(** Callbacks with a non-zero failure count, stable order. *)

val quarantine_count : t -> int
val reinstated_count : t -> int
val suppressed_count : t -> int
(** Callback invocations skipped while quarantined. *)
