module Det_rng = Pasta_util.Det_rng
module Metric = Pasta_util.Metric
module Domain_pool = Pasta_util.Domain_pool

(* Fleet-scale profiling: one orchestrator driving N per-device profiling
   shards and merging their Devagg summaries through a fanout-K tree
   reduction in which every merge node is failure-aware.

   Determinism contract.  Everything that decides an outcome is either a
   pure function of the fleet seed (device fates, merge-node corruption,
   retry jitter — Gpusim.Faults fleet streams and Det_rng.of_key) or of
   the simulated clock (per-attempt elapsed time, which a fresh seeded
   device reproduces exactly).  Merge nodes are pure functions of their
   children executed level-by-level over the domain pool, and
   Domain_pool.map returns results in index order — so the final partial
   report is byte-identical for any domain count, and a replay from the
   per-device traces reproduces it.

   Concurrency contract.  Device shards run SEQUENTIALLY on the
   orchestrator (Session keeps unsynchronized per-process state: the
   active-session list, the watchdog counter, the telemetry device);
   only the merge levels of the reduction fan out over the pool. *)

(* --- Reduction-tree topology ------------------------------------------ *)

type plan_node = { pn_id : int; pn_children : int list }
type plan = { pl_leaves : int; pl_fanout : int; pl_levels : plan_node array list }

let plan ~fanout leaves =
  if fanout < 2 then invalid_arg "Fleet.plan: fanout must be >= 2";
  if leaves < 0 then invalid_arg "Fleet.plan: leaves must be >= 0";
  if leaves = 0 then { pl_leaves = 0; pl_fanout = fanout; pl_levels = [] }
  else begin
    (* Merge-node ids are assigned level-major, so a node's id — and with
       it the corruption stream keyed on it — depends only on (leaves,
       fanout), never on execution order. *)
    let next_id = ref 0 in
    let rec build width acc =
      let n = (width + fanout - 1) / fanout in
      let nodes =
        Array.init n (fun i ->
            let lo = i * fanout in
            let hi = min width (lo + fanout) in
            {
              pn_id = !next_id + i;
              pn_children = List.init (hi - lo) (fun j -> lo + j);
            })
      in
      next_id := !next_id + n;
      let acc = nodes :: acc in
      if n = 1 then List.rev acc else build n acc
    in
    { pl_leaves = leaves; pl_fanout = fanout; pl_levels = build leaves [] }
  end

let plan_nodes p =
  List.fold_left (fun acc lvl -> acc + Array.length lvl) 0 p.pl_levels

(* --- Failure-aware tree reduction ------------------------------------- *)

type reduction = {
  red_summary : Devagg.summary option;
      (** the merged aggregate; [None] when nothing survived *)
  red_devices : int list;  (** leaf ids that made it into the aggregate *)
  red_dropped : (int * int list) list;
      (** (merge node id, leaf ids lost there): summaries that arrived
          corrupted or structurally invalid at a merge node, in node order *)
  red_nodes : int;  (** merge nodes executed *)
}

(* What flows up the tree: the leaves carried so far and their merged
   summary.  [None] summaries (missing leaves, fully-dropped subtrees)
   flow as empty carriers so the topology never reshapes around
   failures. *)
type flow = { fl_devices : int list; fl_summary : Devagg.summary option }

let corrupt_summary (s : Devagg.summary) =
  (* A perturbation Devagg.validate always rejects: more writes than
     accesses. *)
  { s with Devagg.writes = s.Devagg.true_accesses + 1 }

let merge_node ~rates ~seed (node : plan_node) (children : flow array) =
  Telemetry.begin_span Telemetry.Fleet "fleet.merge";
  let dropped = ref [] in
  let keep = ref [] in
  List.iteri
    (fun pos child_ix ->
      let child = children.(child_ix) in
      match child.fl_summary with
      | None -> ()
      | Some s ->
          let s =
            match rates with
            | Some rates
              when Gpusim.Faults.corrupt_summary_at ~rates ~seed
                     ~node:node.pn_id ~child:pos ->
                corrupt_summary s
            | _ -> s
          in
          (* Every merge input is validated, corrupted or not: a bad
             summary is dropped and its leaves are reported missing at
             this node rather than poisoning the aggregate. *)
          (match Devagg.validate s with
          | Ok () -> keep := (child.fl_devices, s) :: !keep
          | Error _ -> dropped := child.fl_devices @ !dropped))
    node.pn_children;
  let keep = List.rev !keep in
  let flow =
    match keep with
    | [] -> { fl_devices = []; fl_summary = None }
    | keep ->
        {
          fl_devices = List.concat_map fst keep;
          fl_summary = Some (Devagg.merge_summaries (List.map snd keep));
        }
  in
  Telemetry.end_span Telemetry.Fleet;
  (flow, (node.pn_id, List.sort compare !dropped))

let reduce ?pool ?rates ~seed ~fanout (leaves : Devagg.summary option array) =
  let n = Array.length leaves in
  let p = plan ~fanout n in
  let level_values =
    ref
      (Array.init n (fun i ->
           {
             fl_devices = (match leaves.(i) with Some _ -> [ i ] | None -> []);
             fl_summary = leaves.(i);
           }))
  in
  let dropped = ref [] in
  let nodes = ref 0 in
  List.iter
    (fun lvl ->
      let prev = !level_values in
      let compute i = merge_node ~rates ~seed lvl.(i) prev in
      let results =
        match pool with
        | Some pool when Domain_pool.size pool > 1 && Array.length lvl > 1 ->
            Domain_pool.map pool (Array.length lvl) compute
        | _ -> Array.init (Array.length lvl) compute
      in
      nodes := !nodes + Array.length lvl;
      Array.iter
        (fun (_, (node_id, d)) -> if d <> [] then dropped := (node_id, d) :: !dropped)
        results;
      level_values := Array.map fst results)
    p.pl_levels;
  let root =
    if Array.length !level_values = 1 then !level_values.(0)
    else { fl_devices = []; fl_summary = None }
  in
  {
    red_summary = root.fl_summary;
    red_devices = List.sort compare root.fl_devices;
    red_dropped = List.sort compare (List.rev !dropped);
    red_nodes = !nodes;
  }

let flat_merge = function
  | [] -> None
  | summaries -> Some (Devagg.merge_summaries summaries)

(* --- Fleet configuration ---------------------------------------------- *)

type cfg = {
  devices : int;
  fanout : int;
  deadline_us : float;
      (** per-device budget on cumulative simulated time (attempts +
          backoff); a device over it retries, and a final attempt landing
          past it is delivered [Stale] *)
  retries : int;
  backoff_base_us : float;
  seed : int64;
  kernels : int;  (** launches per device shard *)
  accesses_per_kernel : int;
  fault_rates : Gpusim.Faults.fleet_rates option;  (** [None]: no injection *)
  sample_rate : float option;
  overhead_budget : float option;  (** fleet budget, sliced per shard *)
  capture_prefix : string option;
      (** per-device traces at [<prefix>.devNNN.ptrace] *)
}

let default_cfg ?(devices = 4) () =
  {
    devices;
    fanout = Config.fleet_fanout ();
    deadline_us = Config.fleet_deadline_us ();
    retries = Config.fleet_retries ();
    backoff_base_us = Config.fleet_backoff_us ();
    seed = Config.fault_seed ();
    kernels = 3;
    accesses_per_kernel = 20_000;
    fault_rates = None;
    sample_rate = None;
    overhead_budget = None;
    capture_prefix = None;
  }

let check_cfg cfg =
  if cfg.devices < 1 then invalid_arg "Fleet: devices must be >= 1";
  if cfg.fanout < 2 then invalid_arg "Fleet: fanout must be >= 2";
  if cfg.retries < 0 then invalid_arg "Fleet: retries must be >= 0";
  if cfg.kernels < 1 then invalid_arg "Fleet: kernels must be >= 1";
  if not (cfg.deadline_us > 0.0) then invalid_arg "Fleet: deadline must be > 0"

let trace_path prefix d = Printf.sprintf "%s.dev%03d.ptrace" prefix d

(* --- Per-device outcomes ----------------------------------------------- *)

type reason = Crashed | Quarantined | Timeout
type status = Fresh | Stale | Missing of reason

let reason_name = function
  | Crashed -> "crashed"
  | Quarantined -> "quarantined"
  | Timeout -> "timeout"

let status_name = function
  | Fresh -> "fresh"
  | Stale -> "stale"
  | Missing r -> "missing:" ^ reason_name r

type device_report = {
  fr_dev : int;
  fr_status : status;
  fr_attempts : int;
  fr_spent_us : float;  (** cumulative simulated time incl. retry backoff *)
}

exception Crash_injected of int

let fate_of cfg d attempt =
  match cfg.fault_rates with
  | None -> Gpusim.Faults.Healthy
  | Some rates ->
      Gpusim.Faults.device_fate ~rates ~seed:cfg.seed ~device:d ~attempt
        ~kernels:cfg.kernels

(* Jittered exponential backoff, keyed purely by (seed, device, attempt)
   so live runs and replays charge identical penalties. *)
let backoff_salt = 0x5D1E_C4B7_A309_F21DL

let backoff_us cfg ~device ~attempt =
  let rng =
    Det_rng.of_key (Int64.logxor cfg.seed backoff_salt) [| device; attempt |]
  in
  cfg.backoff_base_us
  *. (2.0 ** float_of_int (attempt - 1))
  *. (1.0 +. Det_rng.float rng 0.5)

(* The retry cascade, shared verbatim by the live run and trace replay so
   both derive the same statuses: [exec] either runs the shard (live) or
   recalls its recorded elapsed time (replay).  Repeatedly-crashing
   devices are quarantined through a fleet-level Guard whose threshold is
   the attempt budget. *)
let run_cascade cfg ~exec d =
  let attempts = cfg.retries + 1 in
  let give_up_us = cfg.deadline_us *. float_of_int attempts in
  let quarantined = ref false in
  let guard =
    Guard.create ~threshold:attempts ~cooldown_kernels:max_int
      ~on_trip:(fun ~failures:_ -> quarantined := true)
      (Tool.default (Printf.sprintf "fleet-dev%d" d))
  in
  let result = ref None in
  let rec go a ~spent ~last_crash =
    if a >= attempts then
      ((if last_crash then Missing Crashed else Missing Timeout), a, spent)
    else if a > 0 && spent >= give_up_us then (Missing Timeout, a, spent)
    else begin
      let fate = fate_of cfg d a in
      let spent =
        if a = 0 then spent else spent +. backoff_us cfg ~device:d ~attempt:a
      in
      match exec ~attempt:a ~fate with
      | `Crashed ->
          (* Count the crash against the fleet guard; tripping it is what
             quarantines a repeatedly-raising device. *)
          Guard.call guard Guard.On_event (fun _ -> raise (Crash_injected a));
          if !quarantined then (Missing Quarantined, a + 1, spent)
          else go (a + 1) ~spent ~last_crash:true
      | `Ran (summary, elapsed_us) -> (
          let factor =
            match fate with Gpusim.Faults.Straggle f -> f | _ -> 1.0
          in
          let spent = spent +. (elapsed_us *. factor) in
          match summary with
          | None ->
              (* A shard that produced nothing is as good as crashed. *)
              Guard.call guard Guard.On_event (fun _ -> raise (Crash_injected a));
              if !quarantined then (Missing Quarantined, a + 1, spent)
              else go (a + 1) ~spent ~last_crash:true
          | Some s ->
              if spent <= cfg.deadline_us then begin
                result := Some s;
                (Fresh, a + 1, spent)
              end
              else if a = attempts - 1 then begin
                result := Some s;
                (Stale, a + 1, spent)
              end
              else go (a + 1) ~spent ~last_crash:false)
    end
  in
  let status, att, spent = go 0 ~spent:0.0 ~last_crash:false in
  let summary =
    match status with Fresh | Stale -> !result | Missing _ -> None
  in
  ({ fr_dev = d; fr_status = status; fr_attempts = att; fr_spent_us = spent },
   summary)

(* --- The live device shard --------------------------------------------- *)

(* One profiling attempt on a fresh seeded device: the same synthetic
   workload for every attempt (the device seed depends only on the device
   id), so retries reproduce the summary a healthy first attempt would
   have produced — which is what makes replay able to reconstruct the
   cascade from a single recorded trace. *)
let shard_workload cfg device d ~crash_at =
  let buf = Gpusim.Device.malloc device ~tag:"fleet" (4 * 1024 * 1024) in
  for k = 0 to cfg.kernels - 1 do
    (match crash_at with
    | Some c when k = c -> raise (Crash_injected k)
    | _ -> ());
    let kernel =
      Gpusim.Kernel.make ~name:"fleet_kernel"
        ~grid:(Gpusim.Dim3.make (64 + (32 * (d mod 4))))
        ~block:(Gpusim.Dim3.make 128)
        ~regions:
          [
            Gpusim.Kernel.region ~base:buf.Gpusim.Device_mem.base
              ~bytes:(1 lsl 20)
              ~accesses:(cfg.accesses_per_kernel + (997 * (k mod 7)))
              ();
          ]
        ()
    in
    ignore (Gpusim.Device.launch device kernel)
  done

let accumulator_tool acc =
  {
    (Tool.default ~fine_grained:Tool.Gpu_parallel "fleet-agg") with
    Tool.on_device_summary = (fun _ s -> acc := s :: !acc);
  }

type shard_stats = {
  mutable sh_records_dropped : int;
  mutable sh_tool_failures : int;
}

let live_exec cfg stats d ~budget_slice ~attempt ~fate =
  let crash_at =
    match fate with Gpusim.Faults.Crash k -> Some k | _ -> None
  in
  ignore attempt;
  Telemetry.begin_span Telemetry.Fleet "fleet.device";
  Fun.protect
    ~finally:(fun () -> Telemetry.end_span Telemetry.Fleet)
    (fun () ->
      let dev_seed = Int64.add cfg.seed (Int64.of_int (d + 1)) in
      let device = Gpusim.Device.create ~id:d ~seed:dev_seed Gpusim.Arch.a100 in
      let acc = ref [] in
      let tool = accumulator_tool acc in
      let capture =
        Option.map (fun p -> trace_path p d) cfg.capture_prefix
      in
      match
        Session.run ?capture ?sample_rate:cfg.sample_rate
          ?overhead_budget:budget_slice ~tool device (fun () ->
            shard_workload cfg device d ~crash_at)
      with
      | exception Crash_injected _ -> `Crashed
      | (), res ->
          stats.sh_records_dropped <-
            stats.sh_records_dropped + res.Session.health.Session.records_dropped;
          stats.sh_tool_failures <-
            stats.sh_tool_failures + res.Session.health.Session.tool_failures;
          let summary =
            match List.rev !acc with
            | [] -> None
            | l -> Some (Devagg.merge_summaries l)
          in
          `Ran (summary, res.Session.elapsed_us))

(* --- Fleet result ------------------------------------------------------ *)

type result = {
  devices : device_report list;  (** per device, in id order *)
  summary : Devagg.summary option;
      (** coverage-re-weighted aggregate; [None] when nothing survived *)
  dropped_at_merge : (int * int list) list;
  fresh : int;
  stale : int;
  missing : int;
  retries_total : int;
  quarantined_total : int;
  merge_nodes : int;
  coverage : float;  (** aggregated devices / fleet size, in [0, 1] *)
  records_dropped : int;  (** summed over all shard sessions *)
  registry : Metric.t;  (** fleet counters, for [Telemetry.prometheus ~extra] *)
  report : string;  (** deterministic partial report *)
}

let missing_with r reason =
  List.filter_map
    (fun d -> if d.fr_status = Missing reason then Some d.fr_dev else None)
    r

let render_report (cfg : cfg) ~devices ~red ~summary ~coverage ~retries_total
    ~quarantined_total =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  let ids l = String.concat "," (List.map string_of_int l) in
  let fresh = List.filter (fun d -> d.fr_status = Fresh) devices in
  let stale = List.filter (fun d -> d.fr_status = Stale) devices in
  let missing =
    List.filter
      (fun d -> match d.fr_status with Missing _ -> true | _ -> false)
      devices
  in
  Format.fprintf ppf
    "fleet report: %d devices, fanout %d, seed 0x%Lx, %d merge nodes@."
    cfg.devices cfg.fanout cfg.seed red.red_nodes;
  Format.fprintf ppf
    "  delivered %d fresh, %d stale; %d missing; coverage %.1f%% (%d/%d \
     aggregated)@."
    (List.length fresh) (List.length stale) (List.length missing)
    (100.0 *. coverage)
    (List.length red.red_devices)
    cfg.devices;
  Format.fprintf ppf "  retries %d, quarantined %d@." retries_total
    quarantined_total;
  if stale <> [] then
    Format.fprintf ppf "  stale devices: [%s]@."
      (ids (List.map (fun d -> d.fr_dev) stale));
  List.iter
    (fun reason ->
      let l = missing_with devices reason in
      if l <> [] then
        Format.fprintf ppf "  missing (%s): [%s]@." (reason_name reason) (ids l))
    [ Crashed; Quarantined; Timeout ];
  List.iter
    (fun (node, devs) ->
      Format.fprintf ppf "  dropped at merge node %d: [%s] (corrupt summary)@."
        node (ids devs))
    red.red_dropped;
  List.iter
    (fun d ->
      Format.fprintf ppf "  device %3d: %-18s attempts %d, spent %.0f us@."
        d.fr_dev (status_name d.fr_status) d.fr_attempts d.fr_spent_us)
    devices;
  (match summary with
  | None -> Format.fprintf ppf "  aggregate: none (no summaries survived)@."
  | Some s ->
      Format.fprintf ppf
        "  aggregate (weights re-scaled by coverage, rel. stderr %.4f):@."
        (Devagg.rel_stderr s);
      Format.fprintf ppf "    %a@." Devagg.pp s);
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let make_registry ~(cfg : cfg) ~devices ~red ~retries_total ~quarantined_total ~coverage
    =
  let reg = Metric.create () in
  let c ?labels name help = Metric.counter reg ~help ?labels name in
  let set name help v = Metric.set (c name help) v in
  set "fleet_devices_total" "devices in the fleet" cfg.devices;
  set "fleet_devices_fresh" "devices delivering inside the deadline"
    (List.length (List.filter (fun d -> d.fr_status = Fresh) devices));
  set "fleet_devices_stale" "devices delivering past the deadline"
    (List.length (List.filter (fun d -> d.fr_status = Stale) devices));
  List.iter
    (fun reason ->
      Metric.set
        (c
           ~labels:[ ("reason", reason_name reason) ]
           "fleet_devices_missing" "devices missing from the aggregate")
        (List.length (missing_with devices reason)))
    [ Crashed; Quarantined; Timeout ];
  set "fleet_retries_total" "device attempts beyond the first" retries_total;
  set "fleet_quarantined_total" "devices quarantined by the fleet guard"
    quarantined_total;
  set "fleet_merge_nodes_total" "merge nodes executed" red.red_nodes;
  List.iter
    (fun d ->
      Metric.set
        (c
           ~labels:[ ("device", string_of_int d.fr_dev) ]
           "fleet_device_attempts" "attempts per device")
        d.fr_attempts)
    devices;
  List.iter
    (fun (node, devs) ->
      Metric.set
        (c
           ~labels:[ ("node", string_of_int node) ]
           "fleet_merge_dropped" "summaries dropped at a merge node")
        (List.length devs))
    red.red_dropped;
  Metric.set_gauge
    (Metric.gauge reg ~help:"fraction of the fleet in the aggregate"
       "fleet_coverage")
    coverage;
  reg

let finish (cfg : cfg) ~devices ~stats ~leaves =
  let pool =
    if cfg.devices > 1 then Some (Domain_pool.global ~size:(Config.domains ()))
    else None
  in
  let red =
    reduce ?pool ?rates:cfg.fault_rates ~seed:cfg.seed ~fanout:cfg.fanout leaves
  in
  let coverage =
    float_of_int (List.length red.red_devices) /. float_of_int cfg.devices
  in
  (* Inverse-probability re-weighting for the dropped-out devices: the
     surviving weighted totals cover [coverage] of the fleet, so the
     effective rate behind them shrinks by the same factor — downstream
     consumers see the aggregate annotated as an estimate with the
     correspondingly wider stderr. *)
  let summary =
    match red.red_summary with
    | Some s when coverage < 1.0 && coverage > 0.0 ->
        Some { s with Devagg.est_rate = s.Devagg.est_rate *. coverage }
    | other -> other
  in
  let retries_total =
    List.fold_left (fun acc d -> acc + (d.fr_attempts - 1)) 0 devices
  in
  let quarantined_total =
    List.length (missing_with devices Quarantined)
  in
  let fresh = List.length (List.filter (fun d -> d.fr_status = Fresh) devices) in
  let stale = List.length (List.filter (fun d -> d.fr_status = Stale) devices) in
  let missing =
    List.length
      (List.filter
         (fun d -> match d.fr_status with Missing _ -> true | _ -> false)
         devices)
  in
  {
    devices;
    summary;
    dropped_at_merge = red.red_dropped;
    fresh;
    stale;
    missing;
    retries_total;
    quarantined_total;
    merge_nodes = red.red_nodes;
    coverage;
    records_dropped = stats.sh_records_dropped;
    registry =
      make_registry ~cfg ~devices ~red ~retries_total ~quarantined_total
        ~coverage;
    report =
      render_report cfg ~devices ~red ~summary ~coverage ~retries_total
        ~quarantined_total;
  }

let run cfg =
  check_cfg cfg;
  Telemetry.begin_span Telemetry.Fleet "fleet.run";
  Fun.protect
    ~finally:(fun () -> Telemetry.end_span Telemetry.Fleet)
    (fun () ->
      let stats = { sh_records_dropped = 0; sh_tool_failures = 0 } in
      let spent_overhead = ref 0.0 in
      let leaves = Array.make cfg.devices None in
      let devices =
        List.init cfg.devices (fun d ->
            (* Slice the fleet overhead budget across the remaining
               shards; an overspending shard throttles its successors. *)
            let budget_slice =
              Option.map
                (fun b ->
                  Sampler.fleet_slice ~budget:b ~spent_frac:!spent_overhead
                    ~shards_left:(cfg.devices - d))
                cfg.overhead_budget
            in
            let report, summary =
              run_cascade cfg ~exec:(live_exec cfg stats d ~budget_slice) d
            in
            (match cfg.overhead_budget with
            | None -> ()
            | Some _ ->
                let total, over = Telemetry.overhead_snapshot () in
                spent_overhead :=
                  (if total > 0.0 then over /. total else 0.0)
                  *. (float_of_int (d + 1) /. float_of_int cfg.devices));
            leaves.(d) <- summary;
            report)
      in
      finish cfg ~devices ~stats ~leaves)

(* --- Replay ------------------------------------------------------------ *)

(* Rebuild the same partial report from the per-device traces: fates,
   jitter and corruption are recomputed from the seed; per-attempt elapsed
   time is recovered from the recorded trace (every attempt of a device
   runs the identical seeded workload, so one trace stands for them all);
   the delivered summaries are re-driven through the same accumulator
   tool.  Byte-identical to the live report as long as sampling was
   deterministic (fixed rate or none — an Auto governor's wall-clock
   feedback is not replayable). *)
let replay cfg =
  check_cfg cfg;
  let prefix =
    match cfg.capture_prefix with
    | Some p -> p
    | None -> invalid_arg "Fleet.replay: cfg.capture_prefix is required"
  in
  let stats = { sh_records_dropped = 0; sh_tool_failures = 0 } in
  let leaves = Array.make cfg.devices None in
  let devices =
    List.init cfg.devices (fun d ->
        let recorded = ref None in
        let recall () =
          match !recorded with
          | Some r -> r
          | None ->
              let acc = ref [] in
              let tool = accumulator_tool acc in
              let r =
                match Replay.run ~tool (trace_path prefix d) with
                | outcome ->
                    let summary =
                      match List.rev !acc with
                      | [] -> None
                      | l -> Some (Devagg.merge_summaries l)
                    in
                    (summary, outcome.Replay.elapsed_us)
                | exception _ -> (None, 0.0)
              in
              recorded := Some r;
              r
        in
        let exec ~attempt:_ ~fate =
          match fate with
          | Gpusim.Faults.Crash _ -> `Crashed
          | _ -> `Ran (recall ())
        in
        let report, summary = run_cascade cfg ~exec d in
        leaves.(d) <- summary;
        report)
  in
  finish cfg ~devices ~stats ~leaves
