type callback =
  | On_event
  | On_kernel_begin
  | On_kernel_end
  | On_mem_summary
  | On_device_summary
  | On_access
  | On_access_batch
  | On_kernel_profile
  | On_operator
  | On_tensor
  | Report

let all_callbacks =
  [
    On_event;
    On_kernel_begin;
    On_kernel_end;
    On_mem_summary;
    On_device_summary;
    On_access;
    On_access_batch;
    On_kernel_profile;
    On_operator;
    On_tensor;
    Report;
  ]

let callback_name = function
  | On_event -> "on_event"
  | On_kernel_begin -> "on_kernel_begin"
  | On_kernel_end -> "on_kernel_end"
  | On_mem_summary -> "on_mem_summary"
  | On_device_summary -> "on_device_summary"
  | On_access -> "on_access"
  | On_access_batch -> "on_access_batch"
  | On_kernel_profile -> "on_kernel_profile"
  | On_operator -> "on_operator"
  | On_tensor -> "on_tensor"
  | Report -> "report"

let callback_index = function
  | On_event -> 0
  | On_kernel_begin -> 1
  | On_kernel_end -> 2
  | On_mem_summary -> 3
  | On_device_summary -> 4
  | On_access -> 5
  | On_access_batch -> 6
  | On_kernel_profile -> 7
  | On_operator -> 8
  | On_tensor -> 9
  | Report -> 10

type state = Closed | Quarantined | Half_open

let state_name = function
  | Closed -> "closed"
  | Quarantined -> "quarantined"
  | Half_open -> "half-open"

type t = {
  the_tool : Tool.t;
  slot : Telemetry.tool_slot;
      (* telemetry attribution slot; resolved once so the per-callback
         path does no hashing *)
  threshold : int;
  cooldown : int;
  on_trip : failures:int -> unit;
  on_failure : callback -> unit;
  failures : int array; (* indexed by callback_index *)
  mutable window_failures : int; (* resets when the breaker closes *)
  mutable total : int;
  mutable quarantined_since : int option; (* kernel ordinal at trip *)
  mutable kernels : int;
  mutable quarantines : int;
  mutable reinstated : int;
  mutable suppressed : int;
  mu : Mutex.t;
      (* serializes state transitions so concurrent callers (fleet shards,
         race tests) see a linearizable breaker.  Callbacks — the tool's
         own and [on_trip]/[on_failure] — always run OUTSIDE the lock:
         [on_trip] re-enters the guard through the processor's quarantine
         incident, and a held lock there would self-deadlock. *)
}

let create ?threshold ?cooldown_kernels ?(on_failure = fun _ -> ()) ~on_trip tool =
  let threshold = Option.value threshold ~default:(Config.guard_threshold ()) in
  let cooldown =
    Option.value cooldown_kernels ~default:(Config.guard_cooldown_kernels ())
  in
  if threshold <= 0 then invalid_arg "Guard.create: threshold must be positive";
  if cooldown <= 0 then invalid_arg "Guard.create: cooldown must be positive";
  {
    the_tool = tool;
    slot = Telemetry.tool_slot tool.Tool.name;
    threshold;
    cooldown;
    on_trip;
    on_failure;
    failures = Array.make (List.length all_callbacks) 0;
    window_failures = 0;
    total = 0;
    quarantined_since = None;
    kernels = 0;
    quarantines = 0;
    reinstated = 0;
    suppressed = 0;
    mu = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let tool t = t.the_tool

let cooldown_elapsed t =
  match t.quarantined_since with
  | None -> false
  | Some since -> t.kernels - since >= t.cooldown

(* Caller holds [t.mu]. *)
let state_locked t =
  match t.quarantined_since with
  | None -> Closed
  | Some _ -> if cooldown_elapsed t then Half_open else Quarantined

let state t = locked t (fun () -> state_locked t)
let note_kernel t = locked t (fun () -> t.kernels <- t.kernels + 1)

(* Caller holds [t.mu].  The [on_failure] callback is the caller's to fire
   after releasing the lock. *)
let record_failure_locked t cb =
  let i = callback_index cb in
  t.failures.(i) <- t.failures.(i) + 1;
  t.total <- t.total + 1;
  t.window_failures <- t.window_failures + 1

(* Run the callback inside the tool's telemetry span.  A raising callback
   still gets its wall time charged to the tool — that is exactly the time
   a misbehaving (soon-quarantined) tool cost the pipeline. *)
let timed t f =
  Telemetry.begin_tool t.slot;
  match f t.the_tool with
  | () -> Telemetry.end_tool t.slot
  | exception e ->
      Telemetry.end_tool t.slot;
      raise e

let call t cb f =
  let action =
    locked t (fun () ->
        match state_locked t with
        | Quarantined ->
            t.suppressed <- t.suppressed + 1;
            `Skip
        | Half_open ->
            (* Claim the probe: re-arm the quarantine clock so concurrent
               callers observe [Quarantined] and suppress until this one
               probe resolves.  One probe decides — success reinstates,
               failure re-quarantines for another full cooldown. *)
            t.quarantined_since <- Some t.kernels;
            `Probe
        | Closed -> `Run)
  in
  match action with
  | `Skip -> ()
  | `Probe -> (
      match timed t f with
      | () ->
          locked t (fun () ->
              t.quarantined_since <- None;
              t.window_failures <- 0;
              t.reinstated <- t.reinstated + 1)
      | exception _ ->
          let failures =
            locked t (fun () ->
                record_failure_locked t cb;
                t.quarantined_since <- Some t.kernels;
                t.quarantines <- t.quarantines + 1;
                t.window_failures)
          in
          t.on_failure cb;
          t.on_trip ~failures)
  | `Run -> (
      match timed t f with
      | () -> ()
      | exception _ -> (
          let tripped =
            locked t (fun () ->
                record_failure_locked t cb;
                (* Only the caller that crosses the threshold while the
                   breaker is still closed trips it — a concurrent failure
                   racing past the threshold must not double-trip. *)
                if t.window_failures >= t.threshold && t.quarantined_since = None
                then begin
                  t.quarantined_since <- Some t.kernels;
                  t.quarantines <- t.quarantines + 1;
                  Some t.window_failures
                end
                else None)
          in
          t.on_failure cb;
          match tripped with
          | Some failures -> t.on_trip ~failures
          | None -> ()))

let guarded_report t ppf =
  match timed t (fun tool -> tool.Tool.report ppf) with
  | () -> ()
  | exception e ->
      locked t (fun () -> record_failure_locked t Report);
      t.on_failure Report;
      Format.fprintf ppf "tool %s: report failed (%s)@." t.the_tool.Tool.name
        (Printexc.to_string e)

let total_failures t = locked t (fun () -> t.total)

let failures_by_callback t =
  locked t (fun () ->
      List.filter_map
        (fun cb ->
          let n = t.failures.(callback_index cb) in
          if n > 0 then Some (callback_name cb, n) else None)
        all_callbacks)

let quarantine_count t = locked t (fun () -> t.quarantines)
let reinstated_count t = locked t (fun () -> t.reinstated)
let suppressed_count t = locked t (fun () -> t.suppressed)
