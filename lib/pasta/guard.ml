type callback =
  | On_event
  | On_kernel_begin
  | On_kernel_end
  | On_mem_summary
  | On_device_summary
  | On_access
  | On_access_batch
  | On_kernel_profile
  | On_operator
  | On_tensor
  | Report

let all_callbacks =
  [
    On_event;
    On_kernel_begin;
    On_kernel_end;
    On_mem_summary;
    On_device_summary;
    On_access;
    On_access_batch;
    On_kernel_profile;
    On_operator;
    On_tensor;
    Report;
  ]

let callback_name = function
  | On_event -> "on_event"
  | On_kernel_begin -> "on_kernel_begin"
  | On_kernel_end -> "on_kernel_end"
  | On_mem_summary -> "on_mem_summary"
  | On_device_summary -> "on_device_summary"
  | On_access -> "on_access"
  | On_access_batch -> "on_access_batch"
  | On_kernel_profile -> "on_kernel_profile"
  | On_operator -> "on_operator"
  | On_tensor -> "on_tensor"
  | Report -> "report"

let callback_index = function
  | On_event -> 0
  | On_kernel_begin -> 1
  | On_kernel_end -> 2
  | On_mem_summary -> 3
  | On_device_summary -> 4
  | On_access -> 5
  | On_access_batch -> 6
  | On_kernel_profile -> 7
  | On_operator -> 8
  | On_tensor -> 9
  | Report -> 10

type state = Closed | Quarantined | Half_open

let state_name = function
  | Closed -> "closed"
  | Quarantined -> "quarantined"
  | Half_open -> "half-open"

type t = {
  the_tool : Tool.t;
  slot : Telemetry.tool_slot;
      (* telemetry attribution slot; resolved once so the per-callback
         path does no hashing *)
  threshold : int;
  cooldown : int;
  on_trip : failures:int -> unit;
  on_failure : callback -> unit;
  failures : int array; (* indexed by callback_index *)
  mutable window_failures : int; (* resets when the breaker closes *)
  mutable total : int;
  mutable quarantined_since : int option; (* kernel ordinal at trip *)
  mutable kernels : int;
  mutable quarantines : int;
  mutable reinstated : int;
  mutable suppressed : int;
}

let create ?threshold ?cooldown_kernels ?(on_failure = fun _ -> ()) ~on_trip tool =
  let threshold = Option.value threshold ~default:(Config.guard_threshold ()) in
  let cooldown =
    Option.value cooldown_kernels ~default:(Config.guard_cooldown_kernels ())
  in
  if threshold <= 0 then invalid_arg "Guard.create: threshold must be positive";
  if cooldown <= 0 then invalid_arg "Guard.create: cooldown must be positive";
  {
    the_tool = tool;
    slot = Telemetry.tool_slot tool.Tool.name;
    threshold;
    cooldown;
    on_trip;
    on_failure;
    failures = Array.make (List.length all_callbacks) 0;
    window_failures = 0;
    total = 0;
    quarantined_since = None;
    kernels = 0;
    quarantines = 0;
    reinstated = 0;
    suppressed = 0;
  }

let tool t = t.the_tool

let cooldown_elapsed t =
  match t.quarantined_since with
  | None -> false
  | Some since -> t.kernels - since >= t.cooldown

let state t =
  match t.quarantined_since with
  | None -> Closed
  | Some _ -> if cooldown_elapsed t then Half_open else Quarantined

let note_kernel t = t.kernels <- t.kernels + 1

let record_failure t cb =
  let i = callback_index cb in
  t.failures.(i) <- t.failures.(i) + 1;
  t.total <- t.total + 1;
  t.window_failures <- t.window_failures + 1;
  t.on_failure cb

(* Run the callback inside the tool's telemetry span.  A raising callback
   still gets its wall time charged to the tool — that is exactly the time
   a misbehaving (soon-quarantined) tool cost the pipeline. *)
let timed t f =
  Telemetry.begin_tool t.slot;
  match f t.the_tool with
  | () -> Telemetry.end_tool t.slot
  | exception e ->
      Telemetry.end_tool t.slot;
      raise e

let call t cb f =
  match state t with
  | Quarantined -> t.suppressed <- t.suppressed + 1
  | Half_open -> (
      (* One probe decides: success reinstates, failure re-quarantines for
         another full cooldown. *)
      match timed t f with
      | () ->
          t.quarantined_since <- None;
          t.window_failures <- 0;
          t.reinstated <- t.reinstated + 1
      | exception _ ->
          record_failure t cb;
          t.quarantined_since <- Some t.kernels;
          t.quarantines <- t.quarantines + 1;
          t.on_trip ~failures:t.window_failures)
  | Closed -> (
      match timed t f with
      | () -> ()
      | exception _ ->
          record_failure t cb;
          if t.window_failures >= t.threshold then begin
            t.quarantined_since <- Some t.kernels;
            t.quarantines <- t.quarantines + 1;
            t.on_trip ~failures:t.window_failures
          end)

let guarded_report t ppf =
  match timed t (fun tool -> tool.Tool.report ppf) with
  | () -> ()
  | exception e ->
      record_failure t Report;
      Format.fprintf ppf "tool %s: report failed (%s)@." t.the_tool.Tool.name
        (Printexc.to_string e)

let total_failures t = t.total

let failures_by_callback t =
  List.filter_map
    (fun cb ->
      let n = t.failures.(callback_index cb) in
      if n > 0 then Some (callback_name cb, n) else None)
    all_callbacks

let quarantine_count t = t.quarantines
let reinstated_count t = t.reinstated
let suppressed_count t = t.suppressed
