(* Device-side partial aggregation of materialized access batches.

   Mirrors the paper's GPU-resident reduction (Fig. 2b): each shard — one
   generation chunk — reduces its records into per-object counts, a block
   histogram and coalesced address intervals, independently and on any
   domain; the shards then merge in deterministic chunk order at kernel
   end.  Summary-only tools consume the merged result and never see raw
   records.  All per-count quantities are weighted by record weight, i.e.
   they are exact true-access counts, not sample counts. *)

module W = Gpusim.Warp

let block_bytes = 2 * 1024 * 1024

type shard = {
  s_objects : (int, Objmap.obj * int) Hashtbl.t;  (* obj_key -> (obj, weight) *)
  s_blocks : (int, int) Hashtbl.t;  (* block index -> weight *)
  s_intervals : (int * int) list;  (* sorted disjoint [base, limit) *)
  s_records : int;
  s_weight : int;
  s_writes : int;
}

type summary = {
  objects : (Objmap.obj * int) list;
  blocks : (int * int) list;
  coalesced : (int * int) list;
  sampled_records : int;
  true_accesses : int;
  writes : int;
  est_rate : float;
}

(* Fuse overlapping or adjacent [base, limit) pairs of a base-sorted list. *)
let fuse = function
  | [] -> []
  | (b0, l0) :: rest ->
      let acc, cur =
        List.fold_left
          (fun (acc, (cb, cl)) (b, l) ->
            if b <= cl then (acc, (cb, max cl l)) else ((cb, cl) :: acc, (b, l)))
          ([], (b0, l0))
          rest
      in
      List.rev (cur :: acc)

(* Merge two base-sorted interval lists, preserving base order. *)
let rec merge_sorted a b =
  match (a, b) with
  | [], l | l, [] -> l
  | ((ab, _) as x) :: a', ((bb, _) as y) :: b' ->
      if (ab : int) <= bb then x :: merge_sorted a' b else y :: merge_sorted a b'

(* In-place quicksort of [a.(lo..hi)] with primitive int comparisons;
   [Array.sort compare] would pay a polymorphic-compare call per
   comparison, which dominates the whole reduction. *)
let rec qsort (a : int array) lo hi =
  if hi - lo < 16 then
    for i = lo + 1 to hi do
      let v = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > v do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- v
    done
  else begin
    let x = a.(lo) and y = a.(lo + ((hi - lo) / 2)) and z = a.(hi) in
    let pivot = max (min x y) (min (max x y) z) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while a.(!i) < pivot do
        incr i
      done;
      while a.(!j) > pivot do
        decr j
      done;
      if !i <= !j then begin
        let t = a.(!i) in
        a.(!i) <- a.(!j);
        a.(!j) <- t;
        incr i;
        decr j
      end
    done;
    if lo < !j then qsort a lo !j;
    if !i < hi then qsort a !i hi
  end

let is_sorted (a : int array) n =
  let ok = ref true in
  let i = ref 1 in
  while !ok && !i < n do
    if a.(!i - 1) > a.(!i) then ok := false;
    incr i
  done;
  !ok

(* Merge the sorted pair runs [lo, mid) and [mid, hi) — pair indices over
   flat [base, limit) storage — from [src] into [dst], lexicographically
   and stably. *)
let merge_runs (src : int array) (dst : int array) lo mid hi =
  let i = ref lo and j = ref mid and k = ref lo in
  while !i < mid && !j < hi do
    let ib = src.(2 * !i) and il = src.((2 * !i) + 1) in
    let jb = src.(2 * !j) and jl = src.((2 * !j) + 1) in
    if ib < jb || (ib = jb && il <= jl) then begin
      dst.(2 * !k) <- ib;
      dst.((2 * !k) + 1) <- il;
      incr i
    end
    else begin
      dst.(2 * !k) <- jb;
      dst.((2 * !k) + 1) <- jl;
      incr j
    end;
    incr k
  done;
  if !i < mid then Array.blit src (2 * !i) dst (2 * !k) (2 * (mid - !i))
  else if !j < hi then Array.blit src (2 * !j) dst (2 * !k) (2 * (hi - !j))

(* Lexicographic sort of [base, limit) pairs stored flat as
   [a.(2i), a.(2i+1)], by natural (run-detecting) bottom-up merge using
   caller-provided scratch ([scratch] >= 2*npairs ints, [bounds] and
   [bounds2] >= npairs+1 each — contents ignored, clobbered).  The input
   here is always a concatenation of a few long already-sorted segments —
   per-chunk coalesced runs, one group per worker — which is exactly the
   shape that drives quicksort's median-of-three pivots quadratic, and
   that a run merge sorts in O(n log runs).  Already-sorted input is
   detected for free (one run, no work). *)
let sort_pairs_in ~(bounds : int array) ~(bounds2 : int array)
    ~(scratch : int array) (a : int array) npairs =
  if npairs > 1 then begin
    let nruns = ref 1 in
    bounds.(0) <- 0;
    for i = 1 to npairs - 1 do
      let pb = a.(2 * (i - 1)) and b = a.(2 * i) in
      if pb > b || (pb = b && a.((2 * (i - 1)) + 1) > a.((2 * i) + 1)) then begin
        bounds.(!nruns) <- i;
        incr nruns
      end
    done;
    if !nruns > 1 then begin
      bounds.(!nruns) <- npairs;
      let src = ref a and dst = ref scratch in
      let bs = ref bounds and bd = ref bounds2 in
      let n = ref !nruns in
      while !n > 1 do
        let m = ref 0 and r = ref 0 in
        while !r < !n do
          if !r + 1 < !n then begin
            merge_runs !src !dst (!bs).(!r) (!bs).(!r + 1) (!bs).(!r + 2);
            (!bd).(!m) <- (!bs).(!r);
            incr m;
            r := !r + 2
          end
          else begin
            let lo = (!bs).(!r) and hi = (!bs).(!r + 1) in
            Array.blit !src (2 * lo) !dst (2 * lo) (2 * (hi - lo));
            (!bd).(!m) <- lo;
            incr m;
            incr r
          end
        done;
        (!bd).(!m) <- npairs;
        n := !m;
        let ts = !src in
        src := !dst;
        dst := ts;
        let tb = !bs in
        bs := !bd;
        bd := tb
      done;
      if !src != a then Array.blit !src 0 a 0 (2 * npairs)
    end
  end

(* Access sizes fit comfortably below this, so an interval packs into one
   immediate int as [addr * pack + size]; sorting the packed array orders
   by (addr, size) without boxing anything. *)
let ival_pack = 8192

let aggregate view (b : W.batch) =
  let objects = Hashtbl.create 16 and blocks = Hashtbl.create 32 in
  let weight = ref 0 and writes = ref 0 in
  let ivals = Array.make (max 1 b.W.b_len) 0 in
  (* Generation chunks have strong locality — long runs of records hit the
     same object and the same 2 MiB block — so both tallies are run-length
     accumulated and only touch their hashtable when the run breaks.  The
     resolve memo is shard-local for the same reason Objmap's is not used
     here: it must be domain-safe. *)
  let memo_base = ref min_int and memo_limit = ref min_int in
  let memo_obj = ref (Objmap.Unknown 0) in
  let cur_key = ref min_int and cur_obj = ref (Objmap.Unknown 0) and cur_w = ref 0 in
  let cur_blk = ref min_int and cur_blk_w = ref 0 in
  let flush_obj () =
    if !cur_w > 0 then begin
      let key = !cur_key in
      match Hashtbl.find_opt objects key with
      | Some (o, acc) -> Hashtbl.replace objects key (o, acc + !cur_w)
      | None -> Hashtbl.add objects key (!cur_obj, !cur_w)
    end
  in
  let flush_blk () =
    if !cur_blk_w > 0 then
      Hashtbl.replace blocks !cur_blk
        (!cur_blk_w + Option.value ~default:0 (Hashtbl.find_opt blocks !cur_blk))
  in
  for i = 0 to b.W.b_len - 1 do
    let addr = Bigarray.Array1.unsafe_get b.W.addrs i
    and w = Bigarray.Array1.unsafe_get b.W.weights i in
    let obj =
      if addr >= !memo_base && addr < !memo_limit then !memo_obj
      else
        match Objmap.resolve_view view addr with
        | Objmap.Unknown _ as u -> u
        | obj ->
            let base = Objmap.obj_key obj in
            memo_base := base;
            memo_limit := base + Objmap.obj_bytes obj;
            memo_obj := obj;
            obj
    in
    let key = Objmap.obj_key obj in
    if key = !cur_key then cur_w := !cur_w + w
    else begin
      flush_obj ();
      cur_key := key;
      cur_obj := obj;
      cur_w := w
    end;
    let blk = addr / block_bytes in
    if blk = !cur_blk then cur_blk_w := !cur_blk_w + w
    else begin
      flush_blk ();
      cur_blk := blk;
      cur_blk_w := w
    end;
    weight := !weight + w;
    if Bigarray.Array1.unsafe_get b.W.writes i <> 0 then writes := !writes + w;
    ivals.(i) <-
      (addr * ival_pack)
      + min (ival_pack - 1) (Bigarray.Array1.unsafe_get b.W.sizes i)
  done;
  flush_obj ();
  flush_blk ();
  let intervals =
    let n = b.W.b_len in
    if n = 0 then []
    else begin
      (* Sequential chunks arrive already sorted; only strided/random
         layouts pay for the sort. *)
      if not (is_sorted ivals n) then qsort ivals 0 (n - 1);
      (* One coalescing pass over the sorted packed endpoints. *)
      let out = ref [] in
      let cb = ref (ivals.(0) / ival_pack) in
      let cl = ref (!cb + (ivals.(0) mod ival_pack)) in
      for i = 1 to n - 1 do
        let base = ivals.(i) / ival_pack in
        let limit = base + (ivals.(i) mod ival_pack) in
        if base <= !cl then cl := max !cl limit
        else begin
          out := (!cb, !cl) :: !out;
          cb := base;
          cl := limit
        end
      done;
      List.rev ((!cb, !cl) :: !out)
    end
  in
  {
    s_objects = objects;
    s_blocks = blocks;
    s_intervals = intervals;
    s_records = b.W.b_len;
    s_weight = !weight;
    s_writes = !writes;
  }

let merge ?(est_rate = 1.0) shards =
  let objects = Hashtbl.create 32 and blocks = Hashtbl.create 64 in
  let intervals = ref [] and records = ref 0 and weight = ref 0 and writes = ref 0 in
  Array.iter
    (fun s ->
      (* Accumulating sums is order-insensitive, and the sorted output below
         makes the result independent of hash iteration order. *)
      Hashtbl.iter
        (fun key (obj, w) ->
          match Hashtbl.find_opt objects key with
          | Some (o, acc) -> Hashtbl.replace objects key (o, acc + w)
          | None -> Hashtbl.add objects key (obj, w))
        s.s_objects;
      Hashtbl.iter
        (fun blk w ->
          Hashtbl.replace blocks blk (w + Option.value ~default:0 (Hashtbl.find_opt blocks blk)))
        s.s_blocks;
      (* Each shard's intervals are sorted and disjoint, so a linear merge
         keeps the accumulator sorted without ever re-sorting. *)
      intervals := merge_sorted s.s_intervals !intervals;
      records := !records + s.s_records;
      weight := !weight + s.s_weight;
      writes := !writes + s.s_writes)
    shards;
  {
    objects =
      List.sort
        (fun (a, _) (b, _) -> compare (Objmap.obj_key a) (Objmap.obj_key b))
        (Hashtbl.fold (fun _ ow acc -> ow :: acc) objects []);
    blocks =
      List.sort
        (fun ((a, _) : int * int) (b, _) -> compare a b)
        (Hashtbl.fold (fun b w acc -> (b, w) :: acc) blocks []);
    coalesced = fuse !intervals;
    sampled_records = !records;
    true_accesses = !weight;
    writes = !writes;
    est_rate;
  }

(* ---- Per-domain accumulators (columnar hot path) --------------------- *)

(* One accumulator per worker domain, reused across every chunk that worker
   reduces (and, via {!accum_reset}, across kernels): batches flush their
   run-length tallies into persistent hashtables and their {e per-chunk
   coalesced} intervals into a growable flat pair array, so the interval
   lists, the fresh per-chunk hashtables and the quadratic [merge_sorted]
   accumulation of [aggregate]+[merge] all disappear.  Everything is merged
   exactly once per kernel in [merge_accums].

   Coalescing per chunk before appending matters: generation chunks are
   usually address-sorted already, so the per-chunk pass is a sort-free
   linear scan that shrinks ~10^3 records to a handful of intervals —
   deferring raw records to kernel end would force a full O(n log n) sort
   of the concatenation there, which is never sorted across chunks.

   Determinism: the interval multiset, the weighted tallies and the count
   sums are all independent of which worker reduced which chunk, and
   [merge_accums] sorts before producing output, so the summary is
   byte-identical to the per-chunk [aggregate]+[merge] path at any domain
   count — coalescing computes connected components under the same
   overlap-or-touch closure whichever way the records are grouped. *)

(* Mutable table cells: tallies bump in place instead of re-inserting a
   fresh (value, bucket-cons) pair per run flush — access streams that
   alternate between two objects flush on every record, and a
   [find_opt]+[replace] round-trip there allocates ~8 words/record. *)
type ocell = { oc_obj : Objmap.obj; mutable oc_w : int }
type bcell = { mutable bc_w : int }

type accum = {
  a_objects : (int, ocell) Hashtbl.t;
  a_blocks : (int, bcell) Hashtbl.t;
  mutable a_ivals : int array;
      (* coalesced [base, limit) pairs, flat: a_ivals.(2k), a_ivals.(2k+1).
         Unlike the packed per-record form, a coalesced interval can span
         an arbitrary number of records, so limits need their own slot. *)
  mutable a_nivals : int;  (* ints used in [a_ivals]; always even *)
  mutable a_scratch : int array;  (* per-chunk packed records, reused *)
  mutable a_records : int;
  mutable a_weight : int;
  mutable a_writes : int;
  (* Merge arena, used through the {e first} accumulator of the array
     handed to [merge_accums] and reused every kernel, so the per-kernel
     merge allocates no arrays (the output summary's lists are the only
     per-kernel allocation left). *)
  mutable a_cat : int array;  (* concatenated pairs (multi-accum merges only) *)
  mutable a_sscratch : int array;  (* run-merge scratch, 2*npairs ints *)
  mutable a_bounds : int array;  (* run boundaries, npairs+1 ints *)
  mutable a_bounds2 : int array;
}

let accum_create () =
  {
    a_objects = Hashtbl.create 32;
    a_blocks = Hashtbl.create 64;
    a_ivals = Array.make 512 0;
    a_nivals = 0;
    a_scratch = Array.make W.chunk_records 0;
    a_records = 0;
    a_weight = 0;
    a_writes = 0;
    a_cat = [||];
    a_sscratch = [||];
    a_bounds = [||];
    a_bounds2 = [||];
  }

(* Reusable buffer sizing: double until [need] fits, never zeroing live
   contents (callers overwrite before reading). *)
let ensure_ints arr need =
  if Array.length arr >= need then arr
  else begin
    let cap = ref (max 512 (Array.length arr)) in
    while !cap < need do
      cap := 2 * !cap
    done;
    Array.make !cap 0
  end

(* [Hashtbl.clear] keeps the grown bucket arrays, so a reused accumulator
   reaches its steady-state footprint after the first kernel and stops
   allocating. *)
let accum_reset acc =
  Hashtbl.clear acc.a_objects;
  Hashtbl.clear acc.a_blocks;
  acc.a_nivals <- 0;
  acc.a_records <- 0;
  acc.a_weight <- 0;
  acc.a_writes <- 0

let accum_reserve acc extra =
  let need = acc.a_nivals + extra in
  if need > Array.length acc.a_ivals then begin
    let cap = ref (2 * Array.length acc.a_ivals) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let grown = Array.make !cap 0 in
    Array.blit acc.a_ivals 0 grown 0 acc.a_nivals;
    acc.a_ivals <- grown
  end

let accum_add acc view (b : W.batch) =
  if Array.length acc.a_scratch < b.W.b_len then
    acc.a_scratch <- Array.make (max b.W.b_len (2 * Array.length acc.a_scratch)) 0;
  let ivals = acc.a_scratch in
  let weight = ref 0 and writes = ref 0 in
  (* Same run-length accumulation as [aggregate], flushing into the
     accumulator's persistent tables instead of fresh per-chunk ones. *)
  let memo_base = ref min_int and memo_limit = ref min_int in
  let memo_obj = ref (Objmap.Unknown 0) in
  let cur_key = ref min_int and cur_obj = ref (Objmap.Unknown 0) and cur_w = ref 0 in
  let cur_blk = ref min_int and cur_blk_w = ref 0 in
  (* Two-slot rotation cache over the cells the runs land in: interleaved
     streams (A,B,A,B,...) flush on every record, and the cache turns
     those flushes into a compare and an in-place bump — no hashing. *)
  let oc0_key = ref min_int and oc0 = ref { oc_obj = Objmap.Unknown 0; oc_w = 0 } in
  let oc1_key = ref min_int and oc1 = ref !oc0 in
  let bc0_key = ref min_int and bc0 = ref { bc_w = 0 } in
  let bc1_key = ref min_int and bc1 = ref !bc0 in
  let flush_obj () =
    if !cur_w > 0 then begin
      let key = !cur_key in
      if key = !oc0_key then !oc0.oc_w <- !oc0.oc_w + !cur_w
      else if key = !oc1_key then begin
        let c = !oc1 in
        c.oc_w <- c.oc_w + !cur_w;
        oc1_key := !oc0_key;
        oc1 := !oc0;
        oc0_key := key;
        oc0 := c
      end
      else begin
        let c =
          match Hashtbl.find_opt acc.a_objects key with
          | Some c -> c
          | None ->
              let c = { oc_obj = !cur_obj; oc_w = 0 } in
              Hashtbl.add acc.a_objects key c;
              c
        in
        c.oc_w <- c.oc_w + !cur_w;
        oc1_key := !oc0_key;
        oc1 := !oc0;
        oc0_key := key;
        oc0 := c
      end
    end
  in
  let flush_blk () =
    if !cur_blk_w > 0 then begin
      let key = !cur_blk in
      if key = !bc0_key then !bc0.bc_w <- !bc0.bc_w + !cur_blk_w
      else if key = !bc1_key then begin
        let c = !bc1 in
        c.bc_w <- c.bc_w + !cur_blk_w;
        bc1_key := !bc0_key;
        bc1 := !bc0;
        bc0_key := key;
        bc0 := c
      end
      else begin
        let c =
          match Hashtbl.find_opt acc.a_blocks key with
          | Some c -> c
          | None ->
              let c = { bc_w = 0 } in
              Hashtbl.add acc.a_blocks key c;
              c
        in
        c.bc_w <- c.bc_w + !cur_blk_w;
        bc1_key := !bc0_key;
        bc1 := !bc0;
        bc0_key := key;
        bc0 := c
      end
    end
  in
  let addrs = b.W.addrs
  and weights = b.W.weights
  and wflags = b.W.writes
  and sizes = b.W.sizes in
  (* Sortedness of the packed column is tracked while packing — one flag
     update per record instead of a separate full scan afterwards. *)
  let sorted = ref true in
  let prev_packed = ref min_int in
  for i = 0 to b.W.b_len - 1 do
    let addr = Bigarray.Array1.unsafe_get addrs i
    and w = Bigarray.Array1.unsafe_get weights i in
    let obj =
      if addr >= !memo_base && addr < !memo_limit then !memo_obj
      else
        match Objmap.resolve_view view addr with
        | Objmap.Unknown _ as u -> u
        | obj ->
            let base = Objmap.obj_key obj in
            memo_base := base;
            memo_limit := base + Objmap.obj_bytes obj;
            memo_obj := obj;
            obj
    in
    let key = Objmap.obj_key obj in
    if key = !cur_key then cur_w := !cur_w + w
    else begin
      flush_obj ();
      cur_key := key;
      cur_obj := obj;
      cur_w := w
    end;
    let blk = addr / block_bytes in
    if blk = !cur_blk then cur_blk_w := !cur_blk_w + w
    else begin
      flush_blk ();
      cur_blk := blk;
      cur_blk_w := w
    end;
    weight := !weight + w;
    if Bigarray.Array1.unsafe_get wflags i <> 0 then writes := !writes + w;
    let packed =
      (addr * ival_pack) + min (ival_pack - 1) (Bigarray.Array1.unsafe_get sizes i)
    in
    if packed < !prev_packed then sorted := false;
    prev_packed := packed;
    Array.unsafe_set ivals i packed
  done;
  flush_obj ();
  flush_blk ();
  let n = b.W.b_len in
  if n > 0 then begin
    (* Sequential chunks arrive already sorted; only strided/random
       layouts pay for the sort. *)
    if not !sorted then qsort ivals 0 (n - 1);
    (* Coalesce the chunk and append the surviving [base, limit) pairs. *)
    accum_reserve acc (2 * n);
    let out = acc.a_ivals in
    let k = ref acc.a_nivals in
    let cb = ref (Array.unsafe_get ivals 0 / ival_pack) in
    let cl = ref (!cb + (Array.unsafe_get ivals 0 mod ival_pack)) in
    for i = 1 to n - 1 do
      let p = Array.unsafe_get ivals i in
      let base = p / ival_pack in
      let limit = base + (p mod ival_pack) in
      if base <= !cl then (if limit > !cl then cl := limit)
      else begin
        out.(!k) <- !cb;
        out.(!k + 1) <- !cl;
        k := !k + 2;
        cb := base;
        cl := limit
      end
    done;
    out.(!k) <- !cb;
    out.(!k + 1) <- !cl;
    acc.a_nivals <- !k + 2
  end;
  acc.a_records <- acc.a_records + b.W.b_len;
  acc.a_weight <- acc.a_weight + !weight;
  acc.a_writes <- acc.a_writes + !writes

let merge_accums ?(est_rate = 1.0) accums =
  let objects = Hashtbl.create 32 and blocks = Hashtbl.create 64 in
  let records = ref 0 and weight = ref 0 and writes = ref 0 in
  let total = Array.fold_left (fun n a -> n + a.a_nivals) 0 accums in
  let a0 = accums.(0) in
  (* Single-accumulator merges (one worker lane) sort [a0]'s own pair
     buffer in place — no concatenation copy; the buffer is dead after
     this merge anyway ([accum_reset] empties it before the next kernel).
     Multi-accumulator merges concatenate into the reused arena. *)
  let ivals =
    if Array.length accums = 1 then a0.a_ivals
    else begin
      a0.a_cat <- ensure_ints a0.a_cat total;
      let filled = ref 0 in
      Array.iter
        (fun a ->
          Array.blit a.a_ivals 0 a0.a_cat !filled a.a_nivals;
          filled := !filled + a.a_nivals)
        accums;
      a0.a_cat
    end
  in
  Array.iter
    (fun a ->
      Hashtbl.iter
        (fun key (c : ocell) ->
          match Hashtbl.find_opt objects key with
          | Some (o, acc) -> Hashtbl.replace objects key (o, acc + c.oc_w)
          | None -> Hashtbl.add objects key (c.oc_obj, c.oc_w))
        a.a_objects;
      Hashtbl.iter
        (fun blk (c : bcell) ->
          Hashtbl.replace blocks blk
            (c.bc_w + Option.value ~default:0 (Hashtbl.find_opt blocks blk)))
        a.a_blocks;
      records := !records + a.a_records;
      weight := !weight + a.a_weight;
      writes := !writes + a.a_writes)
    accums;
  (* The single pair sort makes the interval multiset canonical, so worker
     assignment and arrival order cannot leak into the output.  Chunks were
     coalesced on the way in, so this sorts intervals, not records. *)
  let coalesced =
    let npairs = total / 2 in
    if npairs = 0 then []
    else begin
      a0.a_sscratch <- ensure_ints a0.a_sscratch (2 * npairs);
      a0.a_bounds <- ensure_ints a0.a_bounds (npairs + 1);
      a0.a_bounds2 <- ensure_ints a0.a_bounds2 (npairs + 1);
      sort_pairs_in ~bounds:a0.a_bounds ~bounds2:a0.a_bounds2
        ~scratch:a0.a_sscratch ivals npairs;
      let out = ref [] in
      let cb = ref ivals.(0) and cl = ref ivals.(1) in
      for i = 1 to npairs - 1 do
        let base = ivals.(2 * i) and limit = ivals.((2 * i) + 1) in
        if base <= !cl then (if limit > !cl then cl := limit)
        else begin
          out := (!cb, !cl) :: !out;
          cb := base;
          cl := limit
        end
      done;
      List.rev ((!cb, !cl) :: !out)
    end
  in
  {
    objects =
      List.sort
        (fun (a, _) (b, _) -> compare (Objmap.obj_key a) (Objmap.obj_key b))
        (Hashtbl.fold (fun _ ow acc -> ow :: acc) objects []);
    blocks =
      List.sort
        (fun ((a, _) : int * int) (b, _) -> compare a b)
        (Hashtbl.fold (fun b w acc -> (b, w) :: acc) blocks []);
    coalesced;
    sampled_records = !records;
    true_accesses = !weight;
    writes = !writes;
    est_rate;
  }

(* Summary-level merge, for hierarchical (fleet) reduction: combine
   already-merged per-device summaries into one.  All counts are sums and
   every output list is kept sorted, so the result depends only on the
   multiset of inputs — merge nodes can run on any domain in any order.
   [est_rate] defaults to the record-weighted mean of the inputs' rates,
   which keeps [rel_stderr] meaningful for the combined estimate. *)
let merge_summaries ?est_rate summaries =
  let objects = Hashtbl.create 64 and blocks = Hashtbl.create 128 in
  let intervals = ref [] and records = ref 0 and weight = ref 0 and writes = ref 0 in
  let rate_num = ref 0.0 in
  List.iter
    (fun s ->
      List.iter
        (fun (obj, w) ->
          let key = Objmap.obj_key obj in
          match Hashtbl.find_opt objects key with
          | Some (o, acc) -> Hashtbl.replace objects key (o, acc + w)
          | None -> Hashtbl.add objects key (obj, w))
        s.objects;
      List.iter
        (fun (blk, w) ->
          Hashtbl.replace blocks blk
            (w + Option.value ~default:0 (Hashtbl.find_opt blocks blk)))
        s.blocks;
      intervals := merge_sorted s.coalesced !intervals;
      records := !records + s.sampled_records;
      weight := !weight + s.true_accesses;
      writes := !writes + s.writes;
      rate_num := !rate_num +. (s.est_rate *. float_of_int s.sampled_records))
    summaries;
  let est_rate =
    match est_rate with
    | Some r -> r
    | None -> if !records = 0 then 1.0 else !rate_num /. float_of_int !records
  in
  {
    objects =
      List.sort
        (fun (a, _) (b, _) -> compare (Objmap.obj_key a) (Objmap.obj_key b))
        (Hashtbl.fold (fun _ ow acc -> ow :: acc) objects []);
    blocks =
      List.sort
        (fun ((a, _) : int * int) (b, _) -> compare a b)
        (Hashtbl.fold (fun b w acc -> (b, w) :: acc) blocks []);
    coalesced = fuse !intervals;
    sampled_records = !records;
    true_accesses = !weight;
    writes = !writes;
    est_rate;
  }

(* Structural validation for failure-aware merge nodes.  Every record of a
   well-formed summary lands in exactly one object and one block, so both
   tallies must sum to [true_accesses]; output lists must be sorted with
   positive counts.  A summary corrupted in flight (bit flips on the
   counts, shuffled lists) fails one of these and the merge node drops it
   instead of poisoning the reduction. *)
let validate s =
  let rec sorted_pos prev = function
    | [] -> true
    | (k, w) :: rest -> w > 0 && k > prev && sorted_pos k rest
  in
  let rec intervals_ok prev = function
    | [] -> true
    | (b, l) :: rest -> b >= prev && l > b && intervals_ok l rest
  in
  let osum = List.fold_left (fun acc (_, w) -> acc + w) 0 s.objects in
  let bsum = List.fold_left (fun acc (_, w) -> acc + w) 0 s.blocks in
  if s.true_accesses < 0 || s.sampled_records < 0 || s.writes < 0 then
    Error "negative count"
  else if s.writes > s.true_accesses then Error "writes exceed accesses"
  else if osum <> s.true_accesses then Error "object weights do not sum to total"
  else if bsum <> s.true_accesses then Error "block weights do not sum to total"
  else if
    not
      (sorted_pos min_int
         (List.map (fun (o, w) -> (Objmap.obj_key o, w)) s.objects))
  then Error "object list unsorted or non-positive"
  else if not (sorted_pos min_int s.blocks) then
    Error "block list unsorted or non-positive"
  else if not (intervals_ok min_int s.coalesced) then
    Error "coalesced intervals unsorted or empty"
  else if not (Float.is_finite s.est_rate) || s.est_rate <= 0.0 || s.est_rate > 1.0
  then Error "est_rate outside (0, 1]"
  else Ok ()

(* Relative standard error of an inverse-probability-weighted total built
   from [n] kept records at rate [p]: sqrt((1-p) / (n*p)).  Zero for exact
   (rate-1.0) summaries. *)
let rel_stderr s =
  if s.est_rate >= 1.0 || s.sampled_records = 0 then 0.0
  else
    sqrt ((1.0 -. s.est_rate) /. (float_of_int s.sampled_records *. s.est_rate))

let pp ppf s =
  Format.fprintf ppf
    "@[<v>%d objects, %d hot blocks, %d coalesced extents; %d records standing for %d \
     accesses (%d writes)@]"
    (List.length s.objects) (List.length s.blocks)
    (List.length s.coalesced)
    s.sampled_records s.true_accesses s.writes;
  if s.est_rate < 1.0 then
    Format.fprintf ppf " [estimate, rate %.3f, ±%.1f%%]" s.est_rate
      (100.0 *. rel_stderr s)
