(* Device-side partial aggregation of materialized access batches.

   Mirrors the paper's GPU-resident reduction (Fig. 2b): each shard — one
   generation chunk — reduces its records into per-object counts, a block
   histogram and coalesced address intervals, independently and on any
   domain; the shards then merge in deterministic chunk order at kernel
   end.  Summary-only tools consume the merged result and never see raw
   records.  All per-count quantities are weighted by record weight, i.e.
   they are exact true-access counts, not sample counts. *)

module W = Gpusim.Warp

let block_bytes = 2 * 1024 * 1024

type shard = {
  s_objects : (int, Objmap.obj * int) Hashtbl.t;  (* obj_key -> (obj, weight) *)
  s_blocks : (int, int) Hashtbl.t;  (* block index -> weight *)
  s_intervals : (int * int) list;  (* sorted disjoint [base, limit) *)
  s_records : int;
  s_weight : int;
  s_writes : int;
}

type summary = {
  objects : (Objmap.obj * int) list;
  blocks : (int * int) list;
  coalesced : (int * int) list;
  sampled_records : int;
  true_accesses : int;
  writes : int;
  est_rate : float;
}

(* Fuse overlapping or adjacent [base, limit) pairs of a base-sorted list. *)
let fuse = function
  | [] -> []
  | (b0, l0) :: rest ->
      let acc, cur =
        List.fold_left
          (fun (acc, (cb, cl)) (b, l) ->
            if b <= cl then (acc, (cb, max cl l)) else ((cb, cl) :: acc, (b, l)))
          ([], (b0, l0))
          rest
      in
      List.rev (cur :: acc)

(* Merge two base-sorted interval lists, preserving base order. *)
let rec merge_sorted a b =
  match (a, b) with
  | [], l | l, [] -> l
  | ((ab, _) as x) :: a', ((bb, _) as y) :: b' ->
      if (ab : int) <= bb then x :: merge_sorted a' b else y :: merge_sorted a b'

(* In-place quicksort of [a.(lo..hi)] with primitive int comparisons;
   [Array.sort compare] would pay a polymorphic-compare call per
   comparison, which dominates the whole reduction. *)
let rec qsort (a : int array) lo hi =
  if hi - lo < 16 then
    for i = lo + 1 to hi do
      let v = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > v do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- v
    done
  else begin
    let x = a.(lo) and y = a.(lo + ((hi - lo) / 2)) and z = a.(hi) in
    let pivot = max (min x y) (min (max x y) z) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while a.(!i) < pivot do
        incr i
      done;
      while a.(!j) > pivot do
        decr j
      done;
      if !i <= !j then begin
        let t = a.(!i) in
        a.(!i) <- a.(!j);
        a.(!j) <- t;
        incr i;
        decr j
      end
    done;
    if lo < !j then qsort a lo !j;
    if !i < hi then qsort a !i hi
  end

let is_sorted (a : int array) n =
  let ok = ref true in
  let i = ref 1 in
  while !ok && !i < n do
    if a.(!i - 1) > a.(!i) then ok := false;
    incr i
  done;
  !ok

(* Access sizes fit comfortably below this, so an interval packs into one
   immediate int as [addr * pack + size]; sorting the packed array orders
   by (addr, size) without boxing anything. *)
let ival_pack = 8192

let aggregate view (b : W.batch) =
  let objects = Hashtbl.create 16 and blocks = Hashtbl.create 32 in
  let weight = ref 0 and writes = ref 0 in
  let ivals = Array.make (max 1 b.W.b_len) 0 in
  (* Generation chunks have strong locality — long runs of records hit the
     same object and the same 2 MiB block — so both tallies are run-length
     accumulated and only touch their hashtable when the run breaks.  The
     resolve memo is shard-local for the same reason Objmap's is not used
     here: it must be domain-safe. *)
  let memo_base = ref min_int and memo_limit = ref min_int in
  let memo_obj = ref (Objmap.Unknown 0) in
  let cur_key = ref min_int and cur_obj = ref (Objmap.Unknown 0) and cur_w = ref 0 in
  let cur_blk = ref min_int and cur_blk_w = ref 0 in
  let flush_obj () =
    if !cur_w > 0 then begin
      let key = !cur_key in
      match Hashtbl.find_opt objects key with
      | Some (o, acc) -> Hashtbl.replace objects key (o, acc + !cur_w)
      | None -> Hashtbl.add objects key (!cur_obj, !cur_w)
    end
  in
  let flush_blk () =
    if !cur_blk_w > 0 then
      Hashtbl.replace blocks !cur_blk
        (!cur_blk_w + Option.value ~default:0 (Hashtbl.find_opt blocks !cur_blk))
  in
  for i = 0 to b.W.b_len - 1 do
    let addr = b.W.addrs.(i) and w = b.W.weights.(i) in
    let obj =
      if addr >= !memo_base && addr < !memo_limit then !memo_obj
      else
        match Objmap.resolve_view view addr with
        | Objmap.Unknown _ as u -> u
        | obj ->
            let base = Objmap.obj_key obj in
            memo_base := base;
            memo_limit := base + Objmap.obj_bytes obj;
            memo_obj := obj;
            obj
    in
    let key = Objmap.obj_key obj in
    if key = !cur_key then cur_w := !cur_w + w
    else begin
      flush_obj ();
      cur_key := key;
      cur_obj := obj;
      cur_w := w
    end;
    let blk = addr / block_bytes in
    if blk = !cur_blk then cur_blk_w := !cur_blk_w + w
    else begin
      flush_blk ();
      cur_blk := blk;
      cur_blk_w := w
    end;
    weight := !weight + w;
    if Bytes.get b.W.writes i <> '\000' then writes := !writes + w;
    ivals.(i) <- (addr * ival_pack) + min (ival_pack - 1) b.W.sizes.(i)
  done;
  flush_obj ();
  flush_blk ();
  let intervals =
    let n = b.W.b_len in
    if n = 0 then []
    else begin
      (* Sequential chunks arrive already sorted; only strided/random
         layouts pay for the sort. *)
      if not (is_sorted ivals n) then qsort ivals 0 (n - 1);
      (* One coalescing pass over the sorted packed endpoints. *)
      let out = ref [] in
      let cb = ref (ivals.(0) / ival_pack) in
      let cl = ref (!cb + (ivals.(0) mod ival_pack)) in
      for i = 1 to n - 1 do
        let base = ivals.(i) / ival_pack in
        let limit = base + (ivals.(i) mod ival_pack) in
        if base <= !cl then cl := max !cl limit
        else begin
          out := (!cb, !cl) :: !out;
          cb := base;
          cl := limit
        end
      done;
      List.rev ((!cb, !cl) :: !out)
    end
  in
  {
    s_objects = objects;
    s_blocks = blocks;
    s_intervals = intervals;
    s_records = b.W.b_len;
    s_weight = !weight;
    s_writes = !writes;
  }

let merge ?(est_rate = 1.0) shards =
  let objects = Hashtbl.create 32 and blocks = Hashtbl.create 64 in
  let intervals = ref [] and records = ref 0 and weight = ref 0 and writes = ref 0 in
  Array.iter
    (fun s ->
      (* Accumulating sums is order-insensitive, and the sorted output below
         makes the result independent of hash iteration order. *)
      Hashtbl.iter
        (fun key (obj, w) ->
          match Hashtbl.find_opt objects key with
          | Some (o, acc) -> Hashtbl.replace objects key (o, acc + w)
          | None -> Hashtbl.add objects key (obj, w))
        s.s_objects;
      Hashtbl.iter
        (fun blk w ->
          Hashtbl.replace blocks blk (w + Option.value ~default:0 (Hashtbl.find_opt blocks blk)))
        s.s_blocks;
      (* Each shard's intervals are sorted and disjoint, so a linear merge
         keeps the accumulator sorted without ever re-sorting. *)
      intervals := merge_sorted s.s_intervals !intervals;
      records := !records + s.s_records;
      weight := !weight + s.s_weight;
      writes := !writes + s.s_writes)
    shards;
  {
    objects =
      List.sort
        (fun (a, _) (b, _) -> compare (Objmap.obj_key a) (Objmap.obj_key b))
        (Hashtbl.fold (fun _ ow acc -> ow :: acc) objects []);
    blocks =
      List.sort
        (fun ((a, _) : int * int) (b, _) -> compare a b)
        (Hashtbl.fold (fun b w acc -> (b, w) :: acc) blocks []);
    coalesced = fuse !intervals;
    sampled_records = !records;
    true_accesses = !weight;
    writes = !writes;
    est_rate;
  }

(* Summary-level merge, for hierarchical (fleet) reduction: combine
   already-merged per-device summaries into one.  All counts are sums and
   every output list is kept sorted, so the result depends only on the
   multiset of inputs — merge nodes can run on any domain in any order.
   [est_rate] defaults to the record-weighted mean of the inputs' rates,
   which keeps [rel_stderr] meaningful for the combined estimate. *)
let merge_summaries ?est_rate summaries =
  let objects = Hashtbl.create 64 and blocks = Hashtbl.create 128 in
  let intervals = ref [] and records = ref 0 and weight = ref 0 and writes = ref 0 in
  let rate_num = ref 0.0 in
  List.iter
    (fun s ->
      List.iter
        (fun (obj, w) ->
          let key = Objmap.obj_key obj in
          match Hashtbl.find_opt objects key with
          | Some (o, acc) -> Hashtbl.replace objects key (o, acc + w)
          | None -> Hashtbl.add objects key (obj, w))
        s.objects;
      List.iter
        (fun (blk, w) ->
          Hashtbl.replace blocks blk
            (w + Option.value ~default:0 (Hashtbl.find_opt blocks blk)))
        s.blocks;
      intervals := merge_sorted s.coalesced !intervals;
      records := !records + s.sampled_records;
      weight := !weight + s.true_accesses;
      writes := !writes + s.writes;
      rate_num := !rate_num +. (s.est_rate *. float_of_int s.sampled_records))
    summaries;
  let est_rate =
    match est_rate with
    | Some r -> r
    | None -> if !records = 0 then 1.0 else !rate_num /. float_of_int !records
  in
  {
    objects =
      List.sort
        (fun (a, _) (b, _) -> compare (Objmap.obj_key a) (Objmap.obj_key b))
        (Hashtbl.fold (fun _ ow acc -> ow :: acc) objects []);
    blocks =
      List.sort
        (fun ((a, _) : int * int) (b, _) -> compare a b)
        (Hashtbl.fold (fun b w acc -> (b, w) :: acc) blocks []);
    coalesced = fuse !intervals;
    sampled_records = !records;
    true_accesses = !weight;
    writes = !writes;
    est_rate;
  }

(* Structural validation for failure-aware merge nodes.  Every record of a
   well-formed summary lands in exactly one object and one block, so both
   tallies must sum to [true_accesses]; output lists must be sorted with
   positive counts.  A summary corrupted in flight (bit flips on the
   counts, shuffled lists) fails one of these and the merge node drops it
   instead of poisoning the reduction. *)
let validate s =
  let rec sorted_pos prev = function
    | [] -> true
    | (k, w) :: rest -> w > 0 && k > prev && sorted_pos k rest
  in
  let rec intervals_ok prev = function
    | [] -> true
    | (b, l) :: rest -> b >= prev && l > b && intervals_ok l rest
  in
  let osum = List.fold_left (fun acc (_, w) -> acc + w) 0 s.objects in
  let bsum = List.fold_left (fun acc (_, w) -> acc + w) 0 s.blocks in
  if s.true_accesses < 0 || s.sampled_records < 0 || s.writes < 0 then
    Error "negative count"
  else if s.writes > s.true_accesses then Error "writes exceed accesses"
  else if osum <> s.true_accesses then Error "object weights do not sum to total"
  else if bsum <> s.true_accesses then Error "block weights do not sum to total"
  else if
    not
      (sorted_pos min_int
         (List.map (fun (o, w) -> (Objmap.obj_key o, w)) s.objects))
  then Error "object list unsorted or non-positive"
  else if not (sorted_pos min_int s.blocks) then
    Error "block list unsorted or non-positive"
  else if not (intervals_ok min_int s.coalesced) then
    Error "coalesced intervals unsorted or empty"
  else if not (Float.is_finite s.est_rate) || s.est_rate <= 0.0 || s.est_rate > 1.0
  then Error "est_rate outside (0, 1]"
  else Ok ()

(* Relative standard error of an inverse-probability-weighted total built
   from [n] kept records at rate [p]: sqrt((1-p) / (n*p)).  Zero for exact
   (rate-1.0) summaries. *)
let rel_stderr s =
  if s.est_rate >= 1.0 || s.sampled_records = 0 then 0.0
  else
    sqrt ((1.0 -. s.est_rate) /. (float_of_int s.sampled_records *. s.est_rate))

let pp ppf s =
  Format.fprintf ppf
    "@[<v>%d objects, %d hot blocks, %d coalesced extents; %d records standing for %d \
     accesses (%d writes)@]"
    (List.length s.objects) (List.length s.blocks)
    (List.length s.coalesced)
    s.sampled_records s.true_accesses s.writes;
  if s.est_rate < 1.0 then
    Format.fprintf ppf " [estimate, rate %.3f, ±%.1f%%]" s.est_rate
      (100.0 *. rel_stderr s)
