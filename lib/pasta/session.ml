type watchdog = {
  probe_name : string;
  limit_us : float;
  mutable trips : (string * float) list; (* kernel name, duration; newest first *)
}

type t = {
  device : Gpusim.Device.t;
  backend : Backend.t;
  dl : Dl_hooks.t;
  proc : Processor.t;
  the_tool : Tool.t;
  start_us : float;
  saved_sample_cap : int;
  saved_sample_rate : float;
  sampler : Sampler.t option;
  sampler_probe : string option;
      (* the governor's hook-bus probe name, for teardown *)
  saved_pool : Pasta_util.Domain_pool.t option;
      (* whatever pool the device had before we attached *)
  dog : watchdog;
  installed_faults : Gpusim.Faults.t option;
      (* the injector this session installed (and must tear down) *)
  capture : Capture.t option;
      (* trace capture riding on this session's processor *)
}

type health = {
  guard_state : string;
  tool_failures : int;
  failures_by_callback : (string * int) list;
  quarantines : int;
  reinstated : int;
  events_suppressed : int;
  records_dropped : int;
  records_buffered_peak : int;
  accesses_filtered : int;
  batches_delivered : int;
  domains : int;
  buffer_capacity : int;
  overflow_policy : string;
  buffer_stalls : int;
  watchdog_trips : (string * float) list;
  fault_stats : Gpusim.Faults.stats option;
  incidents : Event.t list;
  events_recorded : int;
  bytes_written : int;
  chunks : int;
  chunks_skipped : int;
  replay_events : int;
  sampling : Sampler.snapshot option;
}

type result = {
  tool_name : string;
  phases : Vendor.Phases.t;
  events_seen : int;
  events_dispatched : int;
  kernels : int;
  elapsed_us : float;
  health : health;
  metrics : Pasta_util.Metric.t;
  report : Format.formatter -> unit;
}

let active : t list ref = ref []

let watchdog_counter = ref 0

let attach ?backend ?range ?sample_cap ?sample_rate ?overhead_budget ?faults
    ?capture ?capture_meta ~tool device =
  let kind =
    match backend with
    | Some k -> k
    | None -> (
        match tool.Tool.fine_grained with
        | Tool.Cpu_nvbit -> Backend.Nvbit
        | _ -> Backend.default_kind_for device)
  in
  let proc = Processor.create ?range ~device:(Gpusim.Device.id device) () in
  Processor.set_tool proc tool;
  (* Self-telemetry: honour the knob as configured right now, and mirror
     the device's simulated clock onto spans so exports can bridge the
     wall and simulated timelines. *)
  Telemetry.refresh_level ();
  (* Spans recorded while this session is attached carry the device id. *)
  Telemetry.set_device (Gpusim.Device.id device);
  if Telemetry.enabled () then
    Gpusim.Clock.set_observer
      (Gpusim.Device.clock device)
      (Some Telemetry.note_sim_us);
  (* Fault injection: an explicit injector wins; otherwise the config knob
     turns on a seeded one — but never stack a second injector onto a
     device that already has one (e.g. a tracer session riding along). *)
  let installed_faults =
    match (faults, Gpusim.Device.faults device) with
    | Some f, None ->
        Gpusim.Device.set_faults device f;
        Some f
    | None, None when Config.inject_faults () ->
        let f = Gpusim.Faults.create ~seed:(Config.fault_seed ()) () in
        Gpusim.Device.set_faults device f;
        Some f
    | _ -> None
  in
  (* Trace capture: an explicit path wins; otherwise the ACCEL_PROF_TRACE
     knob streams every attached session to its file.  The sink is
     installed before the backend attaches, so the very first event of
     the run is already on tape. *)
  let capture =
    match (capture, Config.trace_path ()) with
    | Some path, _ | None, Some path ->
        let meta =
          match capture_meta with Some m -> m | None -> tool.Tool.name
        in
        Some (Capture.start ~meta proc path)
    | None, None -> None
  in
  let b = Backend.attach kind device ~processor:proc in
  Backend.enable_fine_grained b tool.Tool.fine_grained;
  let dl = Dl_hooks.attach device ~processor:proc in
  let saved_sample_cap = Gpusim.Device.sample_cap device in
  (* Parallel preprocessing: one process-wide pool, persistent across
     sessions; results are identical for every pool size, so installing
     it is purely a throughput decision. *)
  let saved_pool = Gpusim.Device.pool device in
  let dsize = Config.domains () in
  if dsize > 1 then begin
    let p = Pasta_util.Domain_pool.global ~size:dsize in
    Gpusim.Device.set_pool device p;
    Processor.set_pool proc p
  end;
  (match (sample_cap, Config.sample_cap ()) with
  | Some r, _ | None, Some r -> Gpusim.Device.set_sample_cap device r
  | None, None -> ());
  (* Adaptive sampling: a fixed rate or an overhead budget (argument or
     environment) installs a governor.  The governor's probe runs at
     launch boundaries: at Launch_begin it records any rate change
     through the processor (so the schedule lands in captures) and points
     the device at the new rate *before* materialization reads it; at
     Launch_end it feeds the elapsed window back into the controller. *)
  let saved_sample_rate = Gpusim.Device.sample_rate device in
  let sampler = Sampler.of_config ?rate:sample_rate ?budget:overhead_budget () in
  let sampler_probe =
    match sampler with
    | None -> None
    | Some g ->
        let name = Printf.sprintf "pasta-sampler-%d" !watchdog_counter in
        Gpusim.Device.add_probe device
          {
            Gpusim.Device.probe_name = name;
            on_event =
              (function
              | Gpusim.Device.Launch_begin info ->
                  let r = Sampler.rate g in
                  if r <> Processor.current_sample_rate proc then
                    Processor.note_rate proc
                      ~time_us:(Gpusim.Device.now_us device)
                      ~grid_id:info.Gpusim.Device.grid_id r;
                  Gpusim.Device.set_sample_rate device r
              | Gpusim.Device.Launch_end _ ->
                  let st = Processor.stats proc in
                  Sampler.observe g ~dropped:st.Processor.records_dropped
                    ~stalls:st.Processor.buffer_stalls
              | _ -> ());
          };
        Some name
  in
  incr watchdog_counter;
  let dog =
    {
      probe_name = Printf.sprintf "pasta-watchdog-%d" !watchdog_counter;
      limit_us = Config.watchdog_us ();
      trips = [];
    }
  in
  (* The watchdog listens on the raw hook bus: a kernel whose duration
     blows past the limit is flagged even if the tool never sees it. *)
  Gpusim.Device.add_probe device
    {
      Gpusim.Device.probe_name = dog.probe_name;
      on_event =
        (function
        | Gpusim.Device.Launch_end (info, stats)
          when stats.Gpusim.Device.duration_us > dog.limit_us ->
            dog.trips <-
              (info.Gpusim.Device.kernel.Gpusim.Kernel.name, stats.Gpusim.Device.duration_us)
              :: dog.trips
        | _ -> ());
    };
  let s =
    {
      device;
      backend = b;
      dl;
      proc;
      the_tool = tool;
      start_us = Gpusim.Device.now_us device;
      saved_sample_cap;
      saved_sample_rate;
      sampler;
      sampler_probe;
      saved_pool;
      dog;
      installed_faults;
      capture;
    }
  in
  active := s :: !active;
  s

let health_of s =
  let stats = Processor.stats s.proc in
  let g = Processor.guard s.proc in
  {
    guard_state =
      (match g with Some g -> Guard.state_name (Guard.state g) | None -> "closed");
    tool_failures = stats.Processor.tool_failures;
    failures_by_callback =
      (match g with Some g -> Guard.failures_by_callback g | None -> []);
    quarantines = (match g with Some g -> Guard.quarantine_count g | None -> 0);
    reinstated = (match g with Some g -> Guard.reinstated_count g | None -> 0);
    events_suppressed = stats.Processor.events_suppressed;
    records_dropped = stats.Processor.records_dropped;
    records_buffered_peak = stats.Processor.records_buffered_peak;
    accesses_filtered = stats.Processor.accesses_filtered;
    batches_delivered = stats.Processor.batches_delivered;
    domains =
      (match Gpusim.Device.pool s.device with
      | Some p -> Pasta_util.Domain_pool.size p
      | None -> 1);
    buffer_capacity = Processor.buffer_capacity s.proc;
    overflow_policy =
      Pasta_util.Ring_buffer.overflow_to_string (Processor.overflow_policy s.proc);
    buffer_stalls = stats.Processor.buffer_stalls;
    watchdog_trips = List.rev s.dog.trips;
    fault_stats = Option.map Gpusim.Faults.stats (Gpusim.Device.faults s.device);
    incidents = Processor.incidents s.proc;
    events_recorded = stats.Processor.events_recorded;
    bytes_written = stats.Processor.bytes_written;
    chunks = stats.Processor.chunks;
    chunks_skipped = stats.Processor.chunks_skipped;
    replay_events = stats.Processor.replay_events;
    sampling = Option.map Sampler.snapshot s.sampler;
  }

let pp_health ppf h =
  Format.fprintf ppf "pipeline health: guard %s, %d tool failure%s" h.guard_state
    h.tool_failures
    (if h.tool_failures = 1 then "" else "s");
  if h.failures_by_callback <> [] then begin
    Format.fprintf ppf " (";
    List.iteri
      (fun i (cb, n) -> Format.fprintf ppf "%s%s x%d" (if i > 0 then ", " else "") cb n)
      h.failures_by_callback;
    Format.fprintf ppf ")"
  end;
  Format.fprintf ppf "@.";
  if h.quarantines > 0 || h.reinstated > 0 then
    Format.fprintf ppf "  quarantined %d time%s, reinstated %d, %d events suppressed@."
      h.quarantines
      (if h.quarantines = 1 then "" else "s")
      h.reinstated h.events_suppressed;
  Format.fprintf ppf "  record buffer: cap %d (%s), peak %d, dropped %d, stalls %d@."
    h.buffer_capacity h.overflow_policy h.records_buffered_peak h.records_dropped
    h.buffer_stalls;
  Format.fprintf ppf "  preprocessing: %d domain%s, %d record%s range-filtered, %d batch%s delivered@."
    h.domains
    (if h.domains = 1 then "" else "s")
    h.accesses_filtered
    (if h.accesses_filtered = 1 then "" else "s")
    h.batches_delivered
    (if h.batches_delivered = 1 then "" else "es");
  if h.events_recorded > 0 then
    Format.fprintf ppf "  trace capture: %d op%s, %d bytes, %d chunk%s@."
      h.events_recorded
      (if h.events_recorded = 1 then "" else "s")
      h.bytes_written h.chunks
      (if h.chunks = 1 then "" else "s");
  if h.replay_events > 0 then
    Format.fprintf ppf "  trace replay: %d op%s, %d chunk%s, %d skipped@."
      h.replay_events
      (if h.replay_events = 1 then "" else "s")
      h.chunks
      (if h.chunks = 1 then "" else "s")
      h.chunks_skipped;
  (match h.watchdog_trips with
  | [] -> ()
  | trips ->
      Format.fprintf ppf "  watchdog: %d stuck kernel%s" (List.length trips)
        (if List.length trips = 1 then "" else "s");
      List.iteri
        (fun i (name, dur) ->
          if i < 3 then Format.fprintf ppf "%s %s (%.0fus)" (if i > 0 then "," else "") name dur)
        trips;
      Format.fprintf ppf "@.");
  (match h.sampling with
  | None -> ()
  | Some sn -> Format.fprintf ppf "  %a@." Sampler.pp_snapshot sn);
  match h.fault_stats with
  | None -> ()
  | Some fs -> Format.fprintf ppf "  injected faults: %a@." Gpusim.Faults.pp_stats fs

let detach s =
  active := List.filter (fun x -> x != s) !active;
  (* Keep the clock observer while another session still profiles this
     device (e.g. a tracer riding along); drop it with the last one. *)
  if not (List.exists (fun x -> x.device == s.device) !active) then begin
    Gpusim.Clock.set_observer (Gpusim.Device.clock s.device) None;
    if Telemetry.current_device () = Gpusim.Device.id s.device then
      Telemetry.set_device (-1)
  end;
  (* Anything still sitting in the bounded buffer belongs to the tool. *)
  Processor.flush_records s.proc;
  (* Close the trace before health is sampled so the capture counters
     are final. *)
  Option.iter Capture.finish s.capture;
  Dl_hooks.detach s.dl;
  let health = health_of s in
  let phases = Vendor.Phases.add (Vendor.Phases.create ()) (Backend.phases s.backend) in
  phases.Vendor.Phases.dropped_records <-
    phases.Vendor.Phases.dropped_records + health.records_dropped;
  Backend.detach s.backend;
  Gpusim.Device.remove_probe s.device s.dog.probe_name;
  (match s.installed_faults with
  | Some _ -> Gpusim.Device.clear_faults s.device
  | None -> ());
  Gpusim.Device.set_sample_cap s.device s.saved_sample_cap;
  Option.iter (Gpusim.Device.remove_probe s.device) s.sampler_probe;
  Gpusim.Device.set_sample_rate s.device s.saved_sample_rate;
  (* The global pool itself stays warm for the next session; only the
     device's installation reverts. *)
  (match s.saved_pool with
  | Some p -> Gpusim.Device.set_pool s.device p
  | None -> Gpusim.Device.clear_pool s.device);
  Processor.clear_pool s.proc;
  let stats = Processor.stats s.proc in
  let report =
    match Processor.guard s.proc with
    | Some g -> Guard.guarded_report g
    | None -> s.the_tool.Tool.report
  in
  {
    tool_name = s.the_tool.Tool.name;
    phases;
    events_seen = stats.Processor.events_seen;
    events_dispatched = stats.Processor.events_dispatched;
    kernels = stats.Processor.kernels_seen;
    elapsed_us = Gpusim.Device.now_us s.device -. s.start_us;
    health;
    metrics = Processor.metrics s.proc;
    report;
  }

let run ?backend ?range ?sample_cap ?sample_rate ?overhead_budget ?faults
    ?capture ?capture_meta ~tool device f =
  let s =
    attach ?backend ?range ?sample_cap ?sample_rate ?overhead_budget ?faults
      ?capture ?capture_meta ~tool device
  in
  match f () with
  | v -> (v, detach s)
  | exception e ->
      let (_ : result) = detach s in
      raise e

let processor s = s.proc
let tool s = s.the_tool

let start ?(label = "region") () =
  match !active with
  | [] -> ()
  | s :: _ ->
      Processor.annot_start s.proc ~time_us:(Gpusim.Device.now_us s.device) label

let end_ ?(label = "region") () =
  match !active with
  | [] -> ()
  | s :: _ ->
      Processor.annot_end s.proc ~time_us:(Gpusim.Device.now_us s.device) label
