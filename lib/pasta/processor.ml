module Ring_buffer = Pasta_util.Ring_buffer
module Metric = Pasta_util.Metric

(* Legacy snapshot shape; see [stats] below.  The single source of truth is
   the [counters] registry — this record is rebuilt from it on every call,
   so the field names every existing caller and test relies on keep
   working while exporters read the registry directly. *)
type stats = {
  mutable events_seen : int;
  mutable events_dispatched : int;
  mutable events_suppressed : int;
  mutable kernels_seen : int;
  mutable summaries_flushed : int;
  mutable tool_failures : int;
  callback_failures : (string, int) Hashtbl.t;
  mutable records_dropped : int;
  mutable records_buffered_peak : int;
  mutable buffer_stalls : int;
  mutable accesses_filtered : int;
  mutable batches_delivered : int;
  mutable objmap_memo_hits : int;
  mutable objmap_memo_misses : int;
  mutable events_recorded : int;
  mutable bytes_written : int;
  mutable chunks : int;
  mutable chunks_skipped : int;
  mutable replay_events : int;
}

(* Every processor owns one metrics registry; handles below are the hot
   paths' direct pointers into it. *)
type counters = {
  reg : Metric.t;
  c_events_seen : Metric.counter;
  c_events_dispatched : Metric.counter;
  c_events_suppressed : Metric.counter;
  c_kernels_seen : Metric.counter;
  c_summaries_flushed : Metric.counter;
  c_tool_failures : Metric.counter;
  c_records_dropped : Metric.counter;
  g_records_buffered_peak : Metric.gauge;
  c_buffer_stalls : Metric.counter;
  c_accesses_filtered : Metric.counter;
  c_batches_delivered : Metric.counter;
  c_deprecated_batch_tools : Metric.counter;
  c_objmap_memo_hits : Metric.counter;
  c_objmap_memo_misses : Metric.counter;
  g_sample_rate : Metric.gauge;
  c_rate_changes : Metric.counter;
  c_events_recorded : Metric.counter;
  c_bytes_written : Metric.counter;
  c_chunks : Metric.counter;
  c_chunks_skipped : Metric.counter;
  c_replay_events : Metric.counter;
}

let callback_failures_metric = "pasta_callback_failures"

(* Every series a processor owns carries its device id as a label, so
   expositions merged across a fleet ([Telemetry.prometheus ~extra]) keep
   per-device resolution instead of colliding on bare names. *)
let device_labels device = [ ("device", string_of_int device) ]

let make_counters ~device () =
  let reg = Metric.create () in
  let labels = device_labels device in
  let c ?help name = Metric.counter reg ?help ~labels name in
  {
    reg;
    c_events_seen = c ~help:"normalized events submitted" "pasta_events_seen";
    c_events_dispatched =
      c ~help:"events delivered to the tool" "pasta_events_dispatched";
    c_events_suppressed =
      c ~help:"events withheld while the tool was quarantined"
        "pasta_events_suppressed";
    c_kernels_seen = c ~help:"kernel launches observed" "pasta_kernels_seen";
    c_summaries_flushed =
      c ~help:"kernel-end summaries flushed" "pasta_summaries_flushed";
    c_tool_failures =
      c ~help:"tool callback exceptions caught" "pasta_tool_failures";
    c_records_dropped =
      c ~help:"fine-grained records lost to buffer overflow"
        "pasta_records_dropped";
    g_records_buffered_peak =
      Metric.gauge reg ~help:"bounded-buffer high-water mark, records"
        ~labels "pasta_records_buffered_peak";
    c_buffer_stalls =
      c ~help:"producer stalls under the block overflow policy"
        "pasta_buffer_stalls";
    c_accesses_filtered =
      c ~help:"access records withheld by the range filter"
        "pasta_accesses_filtered";
    c_batches_delivered =
      c ~help:"packed batches handed to a batch-aware tool"
        "pasta_batches_delivered";
    c_deprecated_batch_tools =
      c
        ~help:"tools observed on the deprecated event-wrapped on_access_batch \
               path (counted once per processor)"
        "pasta_deprecated_batch_tools";
    c_objmap_memo_hits = c ~help:"objmap resolve-memo hits" "pasta_objmap_memo_hits";
    c_objmap_memo_misses =
      c ~help:"objmap resolve-memo misses" "pasta_objmap_memo_misses";
    g_sample_rate =
      (let g =
         Metric.gauge reg ~help:"effective fine-grained sampling rate"
           ~labels "pasta_sample_rate"
       in
       Metric.set_gauge g 1.0;
       g);
    c_rate_changes =
      c ~help:"sampling-rate adjustments applied" "pasta_sample_rate_changes";
    c_events_recorded =
      c ~help:"submission-level ops written by trace capture"
        "pasta_events_recorded";
    c_bytes_written =
      c ~help:"bytes the trace capture has flushed" "pasta_bytes_written";
    c_chunks = c ~help:"trace chunks written (capture) or read (replay)" "pasta_trace_chunks";
    c_chunks_skipped =
      c ~help:"corrupt chunks skipped by a tolerant replay"
        "pasta_trace_chunks_skipped";
    c_replay_events =
      c ~help:"submission-level ops re-driven from a recorded trace"
        "pasta_replay_events";
  }

(* Submission-level operations, as seen by a trace sink.  One constructor
   per processor entry point: a recorded op stream re-driven through the
   same entry points reproduces the exact callback sequence the live tool
   saw — the replay contract. *)
type sink_op =
  | Sk_event of Event.payload
  | Sk_access of Event.kernel_info * Event.mem_access
  | Sk_batch of Event.kernel_info * Gpusim.Warp.batch
  | Sk_region of Event.kernel_info * Event.region_summary
  | Sk_flush_summary of Event.kernel_info
  | Sk_flush_parallel of Event.kernel_info
  | Sk_profile of Event.kernel_info * Gpusim.Kernel.profile
  | Sk_rate of { sr_rate : float; sr_grid_id : int }
      (** effective sampling-rate change, recorded at the launch it first
          applies to; the implicit initial rate is 1.0, so rate-1.0 runs
          never emit this op and their traces are unchanged *)

type pending_region = { p_base : int; p_extent : int; p_accesses : int; p_written : bool }

(* The bounded buffer holds either legacy single records or packed batches;
   all drop/peak accounting below counts *records*, so the two shapes are
   indistinguishable in the health report. *)
type buffered =
  | B_one of Event.kernel_info * Event.mem_access * float
  | B_batch of Event.kernel_info * Gpusim.Warp.batch * float

let buffered_count = function
  | B_one _ -> 1
  | B_batch (_, b, _) -> Gpusim.Warp.batch_len b

type t = {
  device : int;
  objmap : Objmap.t;
  range : Range.t;
  mutable guard : Guard.t option;
  ctr : counters;
  buf : buffered Ring_buffer.t;
  policy : Ring_buffer.overflow;
  mutable pool : Pasta_util.Domain_pool.t option;
  columnar : bool;
      (** zero-copy columnar delivery and per-domain aggregation
          ([ACCEL_PROF_COLUMNAR], snapshotted at creation) *)
  mutable legacy_batch_noted : bool;
      (* the deprecation counter fires once per processor, not per batch *)
  mutable dev_accums : Devagg.accum array;
      (* per-worker aggregation state, reused across kernels; sized to the
         pool on first parallel flush *)
  mutable buffered_records : int;  (* records currently in [buf] *)
  mutable incidents : Event.t list; (* most recent first *)
  mutable last_time_us : float;
  mutable pending : (int * pending_region list) option;
      (** (grid_id, regions) of the kernel currently being aggregated *)
  mutable cur_rate : float;
      (** effective sampling rate behind incoming batches (stamped onto
          Devagg summaries as [est_rate]); updated through {!note_rate} *)
  mutable sink : (time_us:float -> sink_op -> unit) option;
      (** trace-capture tap, fed every submission before range filtering *)
}

let create ?range ?buffer_capacity ?overflow_policy ~device () =
  let range = match range with Some r -> r | None -> Range.of_config () in
  let capacity =
    match buffer_capacity with Some c -> c | None -> Config.buffer_capacity ()
  in
  let policy =
    match overflow_policy with Some p -> p | None -> Config.overflow_policy ()
  in
  {
    device;
    objmap = Objmap.create ();
    range;
    guard = None;
    ctr = make_counters ~device ();
    buf = Ring_buffer.create ~capacity;
    policy;
    pool = None;
    columnar = Config.columnar ();
    legacy_batch_noted = false;
    dev_accums = [||];
    buffered_records = 0;
    incidents = [];
    last_time_us = 0.0;
    pending = None;
    cur_rate = 1.0;
    sink = None;
  }

let objmap t = t.objmap
let range t = t.range
let device t = t.device
let metrics t = t.ctr.reg
let metric_labels t = device_labels t.device

let stats t =
  let hits, misses = Objmap.memo_stats t.objmap in
  Metric.set t.ctr.c_objmap_memo_hits hits;
  Metric.set t.ctr.c_objmap_memo_misses misses;
  let callback_failures = Hashtbl.create 8 in
  List.iter
    (fun (name, labels, v) ->
      if name = callback_failures_metric then
        match List.assoc_opt "callback" labels with
        | Some cb -> Hashtbl.replace callback_failures cb v
        | None -> ())
    (Metric.counter_samples t.ctr.reg);
  {
    events_seen = Metric.value t.ctr.c_events_seen;
    events_dispatched = Metric.value t.ctr.c_events_dispatched;
    events_suppressed = Metric.value t.ctr.c_events_suppressed;
    kernels_seen = Metric.value t.ctr.c_kernels_seen;
    summaries_flushed = Metric.value t.ctr.c_summaries_flushed;
    tool_failures = Metric.value t.ctr.c_tool_failures;
    callback_failures;
    records_dropped = Metric.value t.ctr.c_records_dropped;
    records_buffered_peak =
      int_of_float (Metric.gauge_value t.ctr.g_records_buffered_peak);
    buffer_stalls = Metric.value t.ctr.c_buffer_stalls;
    accesses_filtered = Metric.value t.ctr.c_accesses_filtered;
    batches_delivered = Metric.value t.ctr.c_batches_delivered;
    objmap_memo_hits = hits;
    objmap_memo_misses = misses;
    events_recorded = Metric.value t.ctr.c_events_recorded;
    bytes_written = Metric.value t.ctr.c_bytes_written;
    chunks = Metric.value t.ctr.c_chunks;
    chunks_skipped = Metric.value t.ctr.c_chunks_skipped;
    replay_events = Metric.value t.ctr.c_replay_events;
  }

let set_pool t p = t.pool <- Some p
let clear_pool t = t.pool <- None

let set_sink t f = t.sink <- Some f
let clear_sink t = t.sink <- None

let tap t ~time_us op =
  match t.sink with None -> () | Some f -> f ~time_us op
let guard t = t.guard
let tool t = Option.map Guard.tool t.guard
let incidents t = List.rev t.incidents
let buffer_capacity t = Ring_buffer.capacity t.buf
let overflow_policy t = t.policy

let guard_call t cb f =
  match t.guard with None -> () | Some g -> Guard.call g cb f

let dispatch t (ev : Event.t) =
  match t.guard with
  | None -> ()
  | Some g ->
      (match Guard.state g with
      | Guard.Quarantined -> Metric.incr t.ctr.c_events_suppressed
      | Guard.Closed | Guard.Half_open -> Metric.incr t.ctr.c_events_dispatched);
      Guard.call g Guard.On_event (fun tool -> tool.Tool.on_event ev);
      (match ev.Event.payload with
      | Event.Kernel_launch { info; phase = `Begin } ->
          Guard.call g Guard.On_kernel_begin (fun tool -> tool.Tool.on_kernel_begin info)
      | Event.Kernel_launch { info; phase = `End s } ->
          Guard.call g Guard.On_kernel_end (fun tool -> tool.Tool.on_kernel_end info s)
      | Event.Operator { name; phase; seq } ->
          Guard.call g Guard.On_operator (fun tool -> tool.Tool.on_operator name phase seq)
      | Event.Tensor_alloc { ptr; bytes; tag; _ } ->
          Guard.call g Guard.On_tensor (fun tool ->
              tool.Tool.on_tensor (`Alloc (ptr, bytes, tag)))
      | Event.Tensor_free { ptr; bytes; _ } ->
          Guard.call g Guard.On_tensor (fun tool -> tool.Tool.on_tensor (`Free (ptr, bytes)))
      | _ -> ())

let quarantine_incident t ~failures =
  let tool_name = match tool t with Some tl -> tl.Tool.name | None -> "<none>" in
  let ev =
    {
      Event.device = t.device;
      time_us = t.last_time_us;
      payload = Event.Tool_quarantined { tool = tool_name; failures };
    }
  in
  t.incidents <- ev :: t.incidents;
  (* Keep the unified stream complete; the quarantined tool itself will
     only see this if it is later reinstated and another trip occurs. *)
  dispatch t ev

let set_tool t tool =
  let ctr = t.ctr in
  let guard =
    Guard.create
      ~on_failure:(fun cb ->
        Metric.incr ctr.c_tool_failures;
        Metric.incr
          (Metric.counter ctr.reg
             ~help:"per-callback tool failures"
             ~labels:(("callback", Guard.callback_name cb) :: device_labels t.device)
             callback_failures_metric))
      ~on_trip:(fun ~failures -> quarantine_incident t ~failures)
      tool
  in
  t.guard <- Some guard

let clear_tool t = t.guard <- None

let update_registry t payload =
  match payload with
  | Event.Memory_alloc { addr; bytes; managed } ->
      Objmap.on_alloc t.objmap ~addr ~bytes ~managed
  | Event.Memory_free { addr; _ } -> Objmap.on_free t.objmap ~addr
  | Event.Tensor_alloc { ptr; bytes; tag; _ } ->
      Objmap.on_tensor_alloc t.objmap ~ptr ~bytes ~tag
  | Event.Tensor_free { ptr; _ } -> Objmap.on_tensor_free t.objmap ~ptr
  | _ -> ()

let in_range t payload =
  match payload with
  | Event.Kernel_launch { info; _ }
  | Event.Global_access { kernel = info; _ }
  | Event.Access_batch { kernel = info; _ }
  | Event.Device_summary { kernel = info; _ }
  | Event.Shared_access { kernel = info; _ }
  | Event.Kernel_region { kernel = info; _ }
  | Event.Kernel_profile { kernel = info; _ }
  | Event.Barrier { kernel = info; _ } ->
      Range.active t.range ~grid_id:info.Event.grid_id
  | _ -> Range.active_now t.range

(* --- Bounded record buffer (paper Fig. 2a's device trace buffer) --- *)

let mem_access_of_warp (a : Gpusim.Warp.access) =
  {
    Event.addr = a.Gpusim.Warp.addr;
    size = a.Gpusim.Warp.size;
    write = a.Gpusim.Warp.write;
    pc = a.Gpusim.Warp.pc;
    warp = a.Gpusim.Warp.warp_id;
    weight = a.Gpusim.Warp.weight;
  }

let deliver_record t (info, access, time_us) =
  dispatch t
    {
      Event.device = t.device;
      time_us;
      payload = Event.Global_access { kernel = info; access };
    };
  guard_call t Guard.On_access (fun tool -> tool.Tool.on_access info access)

let deliver_batch t info batch time_us =
  let columns_aware, batch_aware =
    match tool t with
    | Some tl ->
        (t.columnar && tl.Tool.on_access_columns <> None,
         tl.Tool.on_access_batch <> None)
    | None -> (false, false)
  in
  if columns_aware then begin
    (* Zero-copy columnar delivery: the tool reads the batch's Bigarray
       columns in place — no [Event.t] wrapper, no per-record closures,
       nothing allocated per dispatch. *)
    Metric.incr t.ctr.c_batches_delivered;
    guard_call t Guard.On_access_batch (fun tool ->
        match tool.Tool.on_access_columns with
        | Some f -> f info batch
        | None -> ())
  end
  else if batch_aware then begin
    if not t.legacy_batch_noted then begin
      t.legacy_batch_noted <- true;
      Metric.incr t.ctr.c_deprecated_batch_tools
    end;
    Metric.incr t.ctr.c_batches_delivered;
    dispatch t
      {
        Event.device = t.device;
        time_us;
        payload = Event.Access_batch { kernel = info; batch };
      };
    guard_call t Guard.On_access_batch (fun tool ->
        match tool.Tool.on_access_batch with
        | Some f -> f info batch
        | None -> ())
  end
  else
    (* Per-record fallback: exactly the legacy event stream — one
       Global_access dispatch and one on_access call per record. *)
    Gpusim.Warp.iter_batch batch ~f:(fun a ->
        deliver_record t (info, mem_access_of_warp a, time_us))

let deliver_item t = function
  | B_one (info, access, time_us) -> deliver_record t (info, access, time_us)
  | B_batch (info, batch, time_us) -> deliver_batch t info batch time_us

let flush_records t =
  Telemetry.begin_span Telemetry.Ring "ring.drain";
  let items = Ring_buffer.drain t.buf in
  t.buffered_records <- 0;
  Telemetry.sample_ring_occupancy 0;
  Telemetry.end_span Telemetry.Ring;
  List.iter (deliver_item t) items

let buffer_item t item =
  Telemetry.begin_span Telemetry.Ring "ring.push";
  (match Ring_buffer.push_overflow t.buf ~overflow:t.policy item with
  | `Stored -> t.buffered_records <- t.buffered_records + buffered_count item
  | `Evicted old ->
      Metric.add t.ctr.c_records_dropped (buffered_count old);
      t.buffered_records <-
        t.buffered_records + buffered_count item - buffered_count old
  | `Rejected -> Metric.add t.ctr.c_records_dropped (buffered_count item)
  | `Full ->
      (* Block: the producer stalls while the consumer drains, then the
         record lands; nothing is lost. *)
      Metric.incr t.ctr.c_buffer_stalls;
      Telemetry.end_span Telemetry.Ring;
      flush_records t;
      Telemetry.begin_span Telemetry.Ring "ring.push";
      let (_ : bool) = Ring_buffer.push t.buf item in
      t.buffered_records <- buffered_count item);
  Metric.max_gauge t.ctr.g_records_buffered_peak (float_of_int t.buffered_records);
  Telemetry.sample_ring_occupancy t.buffered_records;
  Telemetry.end_span Telemetry.Ring

let submit t ~time_us payload =
  Telemetry.begin_span Telemetry.Dispatch "proc.submit";
  tap t ~time_us (Sk_event payload);
  Metric.incr t.ctr.c_events_seen;
  t.last_time_us <- time_us;
  update_registry t payload;
  (match payload with
  | Event.Kernel_launch { phase = `Begin; _ } ->
      Metric.incr t.ctr.c_kernels_seen;
      Option.iter Guard.note_kernel t.guard
  | Event.Kernel_launch { phase = `End _; _ } ->
      (* Kernel boundary: drain the record buffer so every record of this
         kernel reaches the tool before its on_kernel_end. *)
      flush_records t
  | _ -> ());
  if in_range t payload then
    dispatch t { Event.device = t.device; time_us; payload };
  Telemetry.end_span Telemetry.Dispatch

let submit_region t (info : Event.kernel_info) ~base ~extent ~accesses ~written =
  tap t ~time_us:t.last_time_us
    (Sk_region (info, { Event.base; extent; accesses; written }));
  let region = { p_base = base; p_extent = extent; p_accesses = accesses; p_written = written } in
  match t.pending with
  | Some (gid, regions) when gid = info.Event.grid_id ->
      t.pending <- Some (gid, region :: regions)
  | _ -> t.pending <- Some (info.Event.grid_id, [ region ])

let flush_kernel_summary t ~time_us (info : Event.kernel_info) =
  Telemetry.begin_span Telemetry.Dispatch "proc.flush_summary";
  tap t ~time_us (Sk_flush_summary info);
  (match t.pending with
  | Some (gid, regions) when gid = info.Event.grid_id ->
      t.pending <- None;
      t.last_time_us <- time_us;
      Metric.incr t.ctr.c_summaries_flushed;
      if Range.active t.range ~grid_id:info.Event.grid_id then begin
        (* Emit one Kernel_region event per raw region... *)
        List.iter
          (fun r ->
            dispatch t
              {
                Event.device = t.device;
                time_us;
                payload =
                  Event.Kernel_region
                    {
                      kernel = info;
                      region =
                        {
                          Event.base = r.p_base;
                          extent = r.p_extent;
                          accesses = r.p_accesses;
                          written = r.p_written;
                        };
                    };
              })
          (List.rev regions);
        (* ...and the object-level aggregate for the tool. *)
        match t.guard with
        | None -> ()
        | Some g ->
            let by_obj = Hashtbl.create 8 in
            List.iter
              (fun r ->
                let obj = Objmap.resolve t.objmap r.p_base in
                let key = Objmap.obj_key obj in
                match Hashtbl.find_opt by_obj key with
                | Some (o, count) -> Hashtbl.replace by_obj key (o, count + r.p_accesses)
                | None -> Hashtbl.add by_obj key (obj, r.p_accesses))
              regions;
            let summary =
              Hashtbl.fold (fun _ (o, c) acc -> (o, c) :: acc) by_obj []
              |> List.sort (fun (a, _) (b, _) -> compare (Objmap.obj_key a) (Objmap.obj_key b))
            in
            Guard.call g Guard.On_mem_summary (fun tool ->
                tool.Tool.on_mem_summary info summary)
      end
  | _ -> ());
  Telemetry.end_span Telemetry.Dispatch

let submit_access t ~time_us (info : Event.kernel_info) access =
  Telemetry.begin_span Telemetry.Dispatch "proc.submit_access";
  tap t ~time_us (Sk_access (info, access));
  Metric.incr t.ctr.c_events_seen;
  t.last_time_us <- time_us;
  if Range.active t.range ~grid_id:info.Event.grid_id then
    buffer_item t (B_one (info, access, time_us))
  else Metric.incr t.ctr.c_accesses_filtered;
  Telemetry.end_span Telemetry.Dispatch

let submit_access_batch t ~time_us (info : Event.kernel_info) batch =
  Telemetry.begin_span Telemetry.Dispatch "proc.submit_batch";
  tap t ~time_us (Sk_batch (info, batch));
  let len = Gpusim.Warp.batch_len batch in
  Metric.add t.ctr.c_events_seen len;
  t.last_time_us <- time_us;
  if Range.active t.range ~grid_id:info.Event.grid_id then
    buffer_item t (B_batch (info, batch, time_us))
  else Metric.add t.ctr.c_accesses_filtered len;
  Telemetry.end_span Telemetry.Dispatch

(* Deliver a device summary to the tool.  Called with a freshly merged
   aggregate on the live path, and with the recorded aggregate when a
   trace is replayed (the trace stores the [Device_summary] payload right
   after its flush marker, so replay re-drives it here instead of paying
   the aggregation again).  The [tap] makes re-recording a replayed run
   reproduce the original op stream. *)
let submit_device_summary t ~time_us (info : Event.kernel_info) summary =
  Telemetry.begin_span Telemetry.Dispatch "proc.device_summary";
  tap t ~time_us (Sk_event (Event.Device_summary { kernel = info; summary }));
  t.last_time_us <- time_us;
  if Range.active t.range ~grid_id:info.Event.grid_id then begin
    Metric.incr t.ctr.c_summaries_flushed;
    dispatch t
      {
        Event.device = t.device;
        time_us;
        payload = Event.Device_summary { kernel = info; summary };
      };
    guard_call t Guard.On_device_summary (fun tool ->
        tool.Tool.on_device_summary info summary)
  end;
  Telemetry.end_span Telemetry.Dispatch

(* Drain this kernel's buffered batches at kernel end: batches belonging
   to other kernels are delivered as-is, this kernel's are returned for
   aggregation (live) or discarded (replay, which re-drives the recorded
   summary instead). *)
let drain_parallel t ~time_us (info : Event.kernel_info) =
  tap t ~time_us (Sk_flush_parallel info);
  t.last_time_us <- time_us;
  Telemetry.begin_span Telemetry.Ring "ring.drain";
  let items = Ring_buffer.drain t.buf in
  t.buffered_records <- 0;
  Telemetry.sample_ring_occupancy 0;
  Telemetry.end_span Telemetry.Ring;
  let mine, others =
    List.partition
      (function
        | B_batch (i, _, _) -> i.Event.grid_id = info.Event.grid_id
        | B_one _ -> false)
      items
  in
  List.iter (deliver_item t) others;
  Array.of_list
    (List.filter_map (function B_batch (_, b, _) -> Some b | B_one _ -> None) mine)

(* Kernel-end reduction for [Gpu_parallel] tools: drain this kernel's
   batches, aggregate each shard (over the pool when one is installed),
   merge in deterministic order, and hand the tool a single summary.  Raw
   records never reach the tool. *)
let flush_parallel_summary t ~time_us (info : Event.kernel_info) =
  let batches = drain_parallel t ~time_us info in
  if Array.length batches > 0 then begin
    Telemetry.begin_span Telemetry.Devagg "devagg.aggregate";
    let view = Objmap.view t.objmap in
    let merged =
      if t.columnar then begin
        (* Columnar path: one accumulator per worker slot, merged exactly
           once per kernel.  [run_sharded] guarantees a slot is never
           executed by two domains at once, so the accumulators need no
           locks; [merge_accums] sorts before emitting, so the summary
           does not depend on the chunk-to-worker assignment. *)
        let want =
          match t.pool with
          | Some p -> Pasta_util.Domain_pool.parallelism p
          | None -> 1
        in
        (* Accumulators live as long as the processor: kernel N reuses the
           tables and buffers kernel N-1 grew, so steady state allocates
           nothing per kernel beyond the summary itself. *)
        let accums =
          if Array.length t.dev_accums <> want then begin
            t.dev_accums <- Array.init want (fun _ -> Devagg.accum_create ());
            t.dev_accums
          end
          else begin
            Array.iter Devagg.accum_reset t.dev_accums;
            t.dev_accums
          end
        in
        (match t.pool with
        | Some p when want > 1 && Array.length batches > 1 ->
            Pasta_util.Domain_pool.run_sharded p (Array.length batches)
              (fun ~worker i -> Devagg.accum_add accums.(worker) view batches.(i))
        | _ ->
            let acc = accums.(0) in
            Array.iter (Devagg.accum_add acc view) batches);
        Devagg.merge_accums ~est_rate:t.cur_rate accums
      end
      else begin
        (* Legacy per-chunk shard path, kept as the equivalence oracle. *)
        let shards =
          match t.pool with
          | Some p when Pasta_util.Domain_pool.size p > 1 && Array.length batches > 1
            ->
              Pasta_util.Domain_pool.map p (Array.length batches) (fun i ->
                  Devagg.aggregate view batches.(i))
          | _ -> Array.map (Devagg.aggregate view) batches
        in
        Devagg.merge ~est_rate:t.cur_rate shards
      end
    in
    Telemetry.end_span Telemetry.Devagg;
    submit_device_summary t ~time_us info merged
  end

(* Replay path for a recorded flush marker: the aggregate this flush
   produced live is stored in the trace right after the marker, so the
   buffered batches are dropped here and the summary is re-driven through
   {!submit_device_summary} when the reader reaches it. *)
let flush_parallel_drop t ~time_us (info : Event.kernel_info) =
  let (_ : Gpusim.Warp.batch array) = drain_parallel t ~time_us info in
  ()

let submit_profile t ~time_us (info : Event.kernel_info) profile =
  Telemetry.begin_span Telemetry.Dispatch "proc.submit_profile";
  tap t ~time_us (Sk_profile (info, profile));
  Metric.incr t.ctr.c_events_seen;
  t.last_time_us <- time_us;
  if Range.active t.range ~grid_id:info.Event.grid_id then begin
    dispatch t
      {
        Event.device = t.device;
        time_us;
        payload = Event.Kernel_profile { kernel = info; profile };
      };
    guard_call t Guard.On_kernel_profile (fun tool ->
        tool.Tool.on_kernel_profile info profile)
  end;
  Telemetry.end_span Telemetry.Dispatch

(* Record an effective sampling-rate change.  Called by the sampler at the
   launch the new rate first applies to, and by replay when it reaches a
   recorded [Sk_rate] op; the tap makes re-recording a replayed run
   reproduce the original rate schedule. *)
let note_rate t ~time_us ~grid_id rate =
  tap t ~time_us (Sk_rate { sr_rate = rate; sr_grid_id = grid_id });
  t.last_time_us <- time_us;
  t.cur_rate <- rate;
  Metric.set_gauge t.ctr.g_sample_rate rate;
  Metric.incr t.ctr.c_rate_changes

let current_sample_rate t = t.cur_rate

let annot_start t ~time_us label =
  Range.annot_start t.range label;
  submit t ~time_us (Event.Annotation { label; phase = `Start })

let annot_end t ~time_us label =
  Range.annot_end t.range label;
  submit t ~time_us (Event.Annotation { label; phase = `End })
