module Ring_buffer = Pasta_util.Ring_buffer

type stats = {
  mutable events_seen : int;
  mutable events_dispatched : int;
  mutable events_suppressed : int;
  mutable kernels_seen : int;
  mutable summaries_flushed : int;
  mutable tool_failures : int;
  callback_failures : (string, int) Hashtbl.t;
  mutable records_dropped : int;
  mutable records_buffered_peak : int;
  mutable buffer_stalls : int;
}

type pending_region = { p_base : int; p_extent : int; p_accesses : int; p_written : bool }

type t = {
  device : int;
  objmap : Objmap.t;
  range : Range.t;
  mutable guard : Guard.t option;
  stats : stats;
  buf : (Event.kernel_info * Event.mem_access * float) Ring_buffer.t;
  policy : Ring_buffer.overflow;
  mutable incidents : Event.t list; (* most recent first *)
  mutable last_time_us : float;
  mutable pending : (int * pending_region list) option;
      (** (grid_id, regions) of the kernel currently being aggregated *)
}

let create ?range ?buffer_capacity ?overflow_policy ~device () =
  let range = match range with Some r -> r | None -> Range.of_config () in
  let capacity =
    match buffer_capacity with Some c -> c | None -> Config.buffer_capacity ()
  in
  let policy =
    match overflow_policy with Some p -> p | None -> Config.overflow_policy ()
  in
  {
    device;
    objmap = Objmap.create ();
    range;
    guard = None;
    stats =
      {
        events_seen = 0;
        events_dispatched = 0;
        events_suppressed = 0;
        kernels_seen = 0;
        summaries_flushed = 0;
        tool_failures = 0;
        callback_failures = Hashtbl.create 8;
        records_dropped = 0;
        records_buffered_peak = 0;
        buffer_stalls = 0;
      };
    buf = Ring_buffer.create ~capacity;
    policy;
    incidents = [];
    last_time_us = 0.0;
    pending = None;
  }

let objmap t = t.objmap
let range t = t.range
let stats t = t.stats
let guard t = t.guard
let tool t = Option.map Guard.tool t.guard
let incidents t = List.rev t.incidents
let buffer_capacity t = Ring_buffer.capacity t.buf
let overflow_policy t = t.policy

let guard_call t cb f =
  match t.guard with None -> () | Some g -> Guard.call g cb f

let dispatch t (ev : Event.t) =
  match t.guard with
  | None -> ()
  | Some g ->
      (match Guard.state g with
      | Guard.Quarantined ->
          t.stats.events_suppressed <- t.stats.events_suppressed + 1
      | Guard.Closed | Guard.Half_open ->
          t.stats.events_dispatched <- t.stats.events_dispatched + 1);
      Guard.call g Guard.On_event (fun tool -> tool.Tool.on_event ev);
      (match ev.Event.payload with
      | Event.Kernel_launch { info; phase = `Begin } ->
          Guard.call g Guard.On_kernel_begin (fun tool -> tool.Tool.on_kernel_begin info)
      | Event.Kernel_launch { info; phase = `End s } ->
          Guard.call g Guard.On_kernel_end (fun tool -> tool.Tool.on_kernel_end info s)
      | Event.Operator { name; phase; seq } ->
          Guard.call g Guard.On_operator (fun tool -> tool.Tool.on_operator name phase seq)
      | Event.Tensor_alloc { ptr; bytes; tag; _ } ->
          Guard.call g Guard.On_tensor (fun tool ->
              tool.Tool.on_tensor (`Alloc (ptr, bytes, tag)))
      | Event.Tensor_free { ptr; bytes; _ } ->
          Guard.call g Guard.On_tensor (fun tool -> tool.Tool.on_tensor (`Free (ptr, bytes)))
      | _ -> ())

let quarantine_incident t ~failures =
  let tool_name = match tool t with Some tl -> tl.Tool.name | None -> "<none>" in
  let ev =
    {
      Event.device = t.device;
      time_us = t.last_time_us;
      payload = Event.Tool_quarantined { tool = tool_name; failures };
    }
  in
  t.incidents <- ev :: t.incidents;
  (* Keep the unified stream complete; the quarantined tool itself will
     only see this if it is later reinstated and another trip occurs. *)
  dispatch t ev

let set_tool t tool =
  let stats = t.stats in
  let guard =
    Guard.create
      ~on_failure:(fun cb ->
        stats.tool_failures <- stats.tool_failures + 1;
        let name = Guard.callback_name cb in
        let n = Option.value ~default:0 (Hashtbl.find_opt stats.callback_failures name) in
        Hashtbl.replace stats.callback_failures name (n + 1))
      ~on_trip:(fun ~failures -> quarantine_incident t ~failures)
      tool
  in
  t.guard <- Some guard

let clear_tool t = t.guard <- None

let update_registry t payload =
  match payload with
  | Event.Memory_alloc { addr; bytes; managed } ->
      Objmap.on_alloc t.objmap ~addr ~bytes ~managed
  | Event.Memory_free { addr; _ } -> Objmap.on_free t.objmap ~addr
  | Event.Tensor_alloc { ptr; bytes; tag; _ } ->
      Objmap.on_tensor_alloc t.objmap ~ptr ~bytes ~tag
  | Event.Tensor_free { ptr; _ } -> Objmap.on_tensor_free t.objmap ~ptr
  | _ -> ()

let in_range t payload =
  match payload with
  | Event.Kernel_launch { info; _ }
  | Event.Global_access { kernel = info; _ }
  | Event.Shared_access { kernel = info; _ }
  | Event.Kernel_region { kernel = info; _ }
  | Event.Kernel_profile { kernel = info; _ }
  | Event.Barrier { kernel = info; _ } ->
      Range.active t.range ~grid_id:info.Event.grid_id
  | _ -> Range.active_now t.range

(* --- Bounded record buffer (paper Fig. 2a's device trace buffer) --- *)

let deliver_record t (info, access, time_us) =
  dispatch t
    {
      Event.device = t.device;
      time_us;
      payload = Event.Global_access { kernel = info; access };
    };
  guard_call t Guard.On_access (fun tool -> tool.Tool.on_access info access)

let flush_records t = List.iter (deliver_record t) (Ring_buffer.drain t.buf)

let buffer_record t item =
  (match Ring_buffer.push_overflow t.buf ~overflow:t.policy item with
  | `Stored -> ()
  | `Evicted _ | `Rejected -> t.stats.records_dropped <- t.stats.records_dropped + 1
  | `Full ->
      (* Block: the producer stalls while the consumer drains, then the
         record lands; nothing is lost. *)
      t.stats.buffer_stalls <- t.stats.buffer_stalls + 1;
      flush_records t;
      let (_ : bool) = Ring_buffer.push t.buf item in
      ());
  t.stats.records_buffered_peak <-
    max t.stats.records_buffered_peak (Ring_buffer.length t.buf)

let submit t ~time_us payload =
  t.stats.events_seen <- t.stats.events_seen + 1;
  t.last_time_us <- time_us;
  update_registry t payload;
  (match payload with
  | Event.Kernel_launch { phase = `Begin; _ } ->
      t.stats.kernels_seen <- t.stats.kernels_seen + 1;
      Option.iter Guard.note_kernel t.guard
  | Event.Kernel_launch { phase = `End _; _ } ->
      (* Kernel boundary: drain the record buffer so every record of this
         kernel reaches the tool before its on_kernel_end. *)
      flush_records t
  | _ -> ());
  if in_range t payload then
    dispatch t { Event.device = t.device; time_us; payload }

let submit_region t (info : Event.kernel_info) ~base ~extent ~accesses ~written =
  let region = { p_base = base; p_extent = extent; p_accesses = accesses; p_written = written } in
  match t.pending with
  | Some (gid, regions) when gid = info.Event.grid_id ->
      t.pending <- Some (gid, region :: regions)
  | _ -> t.pending <- Some (info.Event.grid_id, [ region ])

let flush_kernel_summary t ~time_us (info : Event.kernel_info) =
  match t.pending with
  | Some (gid, regions) when gid = info.Event.grid_id ->
      t.pending <- None;
      t.last_time_us <- time_us;
      t.stats.summaries_flushed <- t.stats.summaries_flushed + 1;
      if Range.active t.range ~grid_id:info.Event.grid_id then begin
        (* Emit one Kernel_region event per raw region... *)
        List.iter
          (fun r ->
            dispatch t
              {
                Event.device = t.device;
                time_us;
                payload =
                  Event.Kernel_region
                    {
                      kernel = info;
                      region =
                        {
                          Event.base = r.p_base;
                          extent = r.p_extent;
                          accesses = r.p_accesses;
                          written = r.p_written;
                        };
                    };
              })
          (List.rev regions);
        (* ...and the object-level aggregate for the tool. *)
        match t.guard with
        | None -> ()
        | Some g ->
            let by_obj = Hashtbl.create 8 in
            List.iter
              (fun r ->
                let obj = Objmap.resolve t.objmap r.p_base in
                let key = Objmap.obj_key obj in
                match Hashtbl.find_opt by_obj key with
                | Some (o, count) -> Hashtbl.replace by_obj key (o, count + r.p_accesses)
                | None -> Hashtbl.add by_obj key (obj, r.p_accesses))
              regions;
            let summary =
              Hashtbl.fold (fun _ (o, c) acc -> (o, c) :: acc) by_obj []
              |> List.sort (fun (a, _) (b, _) -> compare (Objmap.obj_key a) (Objmap.obj_key b))
            in
            Guard.call g Guard.On_mem_summary (fun tool ->
                tool.Tool.on_mem_summary info summary)
      end
  | _ -> ()

let submit_access t ~time_us (info : Event.kernel_info) access =
  t.stats.events_seen <- t.stats.events_seen + 1;
  t.last_time_us <- time_us;
  if Range.active t.range ~grid_id:info.Event.grid_id then
    buffer_record t (info, access, time_us)

let submit_profile t ~time_us (info : Event.kernel_info) profile =
  t.stats.events_seen <- t.stats.events_seen + 1;
  t.last_time_us <- time_us;
  if Range.active t.range ~grid_id:info.Event.grid_id then begin
    dispatch t
      {
        Event.device = t.device;
        time_us;
        payload = Event.Kernel_profile { kernel = info; profile };
      };
    guard_call t Guard.On_kernel_profile (fun tool ->
        tool.Tool.on_kernel_profile info profile)
  end

let annot_start t ~time_us label =
  Range.annot_start t.range label;
  submit t ~time_us (Event.Annotation { label; phase = `Start })

let annot_end t ~time_us label =
  Range.annot_end t.range label;
  submit t ~time_us (Event.Annotation { label; phase = `End })
