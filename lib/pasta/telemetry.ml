module Metric = Pasta_util.Metric
module Span_buf = Pasta_util.Span_buf

(* The framework's own observability (the treatment PASTA gives GPU
   programs, applied to PASTA itself).  Design constraints, in order:

   1. Cheap enough to leave on.  The [basic] level does exactly two
      wall-clock reads per span and a handful of field writes into
      preallocated state — no allocation, no hashing, no locks on the
      begin/end path.
   2. Exact attribution.  Self time is kept as a stack discipline: every
      wall-clock interval between two instrumentation points is charged to
      whichever span (or the simulate/workload root) was on top when it
      elapsed.  The per-layer and per-tool rows of {!attribution} therefore
      sum to total wall time by construction, not by approximation.
   3. Deterministic-safe.  Nothing here feeds back into the pipeline:
      metric *counts* come from the processor's registry, and replaying a
      trace reproduces them exactly even though every timing differs. *)

type level = Off | Basic | Full

let level_name = function Off -> "off" | Basic -> "basic" | Full -> "full"

(* One int load guards every instrumentation point. *)
let lvl = ref 1

let level () = match !lvl with 0 -> Off | 1 -> Basic | _ -> Full
let set_level l = lvl := (match l with Off -> 0 | Basic -> 1 | Full -> 2)

let refresh_level () =
  set_level
    (match Config.telemetry () with
    | `Off -> Off
    | `Basic -> Basic
    | `Full -> Full)

let enabled () = !lvl > 0

let now_us () = Unix.gettimeofday () *. 1e6

(* Simulated-clock mirror, refreshed by the Gpusim.Clock observer a Session
   installs (replay refreshes it from recorded timestamps instead), so every
   span carries both clock domains. *)
let sim_now = ref 0.0
let note_sim_us v = sim_now := v

(* --- Categories ------------------------------------------------------- *)

type cat =
  | Simulate    (* the root: workload + simulator, everything unattributed *)
  | Handler     (* vendor event adaptation / normalization *)
  | Dispatch    (* processor: registry, filtering, dispatch *)
  | Ring        (* bounded record buffer enqueue/drain *)
  | Devagg      (* kernel-end shard aggregation + merge *)
  | Capture_io  (* trace capture encode + write *)
  | Replay_io   (* trace decode + re-drive loop *)
  | Export      (* telemetry's own exporters *)
  | Fleet       (* fleet orchestration: device attempts, merge nodes *)

let cat_index = function
  | Simulate -> 0
  | Handler -> 1
  | Dispatch -> 2
  | Ring -> 3
  | Devagg -> 4
  | Capture_io -> 5
  | Replay_io -> 6
  | Export -> 7
  | Fleet -> 8

let cat_count = 9

let cat_label_of_index = function
  | 0 -> "simulate"
  | 1 -> "handler"
  | 2 -> "processor"
  | 3 -> "ring_buffer"
  | 4 -> "devagg"
  | 5 -> "capture"
  | 6 -> "replay"
  | 7 -> "export"
  | 8 -> "fleet"
  | _ -> "unknown"

let cat_describe_of_index = function
  | 0 -> "simulate + workload"
  | 1 -> "handler (vendor adapt)"
  | 2 -> "processor (dispatch)"
  | 3 -> "ring buffer"
  | 4 -> "devagg (parallel agg)"
  | 5 -> "capture I/O"
  | 6 -> "replay I/O"
  | 7 -> "telemetry export"
  | 8 -> "fleet orchestration"
  | _ -> "unknown"

(* --- Registry and tool slots ------------------------------------------ *)

let reg = Metric.create ()
let registry () = reg

type tool_slot = {
  ts_name : string;
  mutable ts_self_us : float;
  mutable ts_calls : int;
  mutable ts_minor_w : float;  (* minor words allocated while on top *)
  mutable ts_major_w : float;  (* major words allocated while on top *)
  ts_hist : Metric.histogram;  (* per-callback latency, observed in Full *)
}

let slots : (string, tool_slot) Hashtbl.t = Hashtbl.create 8
let slots_mu = Mutex.create ()

let tool_slot name =
  Mutex.lock slots_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock slots_mu)
    (fun () ->
      match Hashtbl.find_opt slots name with
      | Some s -> s
      | None ->
          let s =
            {
              ts_name = name;
              ts_self_us = 0.0;
              ts_calls = 0;
              ts_minor_w = 0.0;
              ts_major_w = 0.0;
              ts_hist =
                Metric.histogram reg
                  ~help:"tool callback latency, microseconds"
                  ~labels:[ ("tool", name) ] "pasta_tool_callback_us";
            }
          in
          Hashtbl.add slots name s;
          s)

(* The dummy's histogram lives in a throwaway registry so it never shows
   up in the exported exposition. *)
let dummy_slot =
  {
    ts_name = "";
    ts_self_us = 0.0;
    ts_calls = 0;
    ts_minor_w = 0.0;
    ts_major_w = 0.0;
    ts_hist = Metric.histogram (Metric.create ()) ~samples:1 "dummy";
  }

(* --- Per-domain context ------------------------------------------------ *)

(* [f_cat >= 0] is a category frame; [f_cat = -1] marks a tool frame and
   the slot carries the identity — no option, so pushing never allocates. *)
type frame = {
  mutable f_cat : int;
  mutable f_slot : tool_slot;
  mutable f_name : string;
  mutable f_t0 : float;
  mutable f_sim0 : float;
}

let stack_cap = 64

type ctx = {
  cx_id : int;  (* domain id at creation *)
  mutable cx_dev : int;  (* device this context is profiling, -1 none *)
  stack : frame array;
  mutable depth : int;
  mutable skipped : int;  (* virtual frames beyond [stack_cap] *)
  mutable last : float;   (* wall time of the last attribution switch *)
  self : float array;     (* per-category self time, us *)
  counts : int array;     (* per-category completed spans *)
  self_minor : float array;  (* per-category minor words allocated *)
  self_major : float array;  (* per-category major words allocated *)
  mutable last_minor : float;  (* Gc minor-words reading at the last switch *)
  mutable last_major : float;
  mutable mismatches : int;
  mutable spans : int;    (* spans recorded to the store (Full) *)
}

let make_frame () =
  { f_cat = 0; f_slot = dummy_slot; f_name = ""; f_t0 = 0.0; f_sim0 = 0.0 }

let make_ctx () =
  let minor0, _, major0 = Gc.counters () in
  {
    cx_id = (Domain.self () :> int);
    cx_dev = -1;
    stack = Array.init stack_cap (fun _ -> make_frame ());
    depth = 0;
    skipped = 0;
    last = now_us ();
    self = Array.make cat_count 0.0;
    counts = Array.make cat_count 0;
    self_minor = Array.make cat_count 0.0;
    self_major = Array.make cat_count 0.0;
    last_minor = minor0;
    last_major = major0;
    mismatches = 0;
    spans = 0;
  }

let ctx_key = Domain.DLS.new_key make_ctx
let ctx () = Domain.DLS.get ctx_key

(* Which device this domain's instrumentation is attributed to.  Sessions
   set it at attach and clear it (-1) at detach; fleet shards set it per
   attempt.  Per-domain, so concurrent merge workers stay unattributed. *)
let set_device d = (ctx ()).cx_dev <- d
let current_device () = (ctx ()).cx_dev

(* Epoch of the current measurement window ([reset] moves it). *)
let epoch = ref (now_us ())

(* --- Span store and occupancy series (Full mode) ----------------------- *)

let spans_store : Span_buf.t option ref = ref None

let span_store () =
  match !spans_store with
  | Some b -> b
  | None ->
      let b = Span_buf.create ~capacity:(Config.telemetry_spans ()) in
      spans_store := Some b;
      b

(* Ring-buffer occupancy samples for the Perfetto counter track: cyclic,
   newest-wins, one (wall, value) pair per sample. *)
let occ_cap = 8192
let occ_t = Array.make occ_cap 0.0
let occ_v = Array.make occ_cap 0.0
let occ_next = ref 0
let occ_stored = ref 0

let sample_ring_occupancy n =
  if !lvl > 1 then begin
    occ_t.(!occ_next) <- now_us ();
    occ_v.(!occ_next) <- float_of_int n;
    occ_next := (!occ_next + 1) mod occ_cap;
    if !occ_stored < occ_cap then incr occ_stored
  end

let occ_samples () =
  let n = !occ_stored in
  let first = (!occ_next - n + occ_cap) mod occ_cap in
  List.init n (fun i ->
      let j = (first + i) mod occ_cap in
      (occ_t.(j), occ_v.(j)))

(* --- The span discipline ----------------------------------------------- *)

let charge c now =
  let dt = now -. c.last in
  c.last <- now;
  (* Gc words are attributed under exactly the same stack discipline as
     wall time, so per-stage allocation (the zero-copy proof) sums to the
     domain's total by construction.  Reading the Gc counters costs real
     time and allocates on every instrumentation point, which the Basic
     level cannot afford on per-record spans — allocation attribution is
     a Full-level feature (the columns read 0 at Basic). *)
  if !lvl > 1 then begin
    let minor, _, major = Gc.counters () in
    let dmin = minor -. c.last_minor and dmaj = major -. c.last_major in
    c.last_minor <- minor;
    c.last_major <- major;
    if c.depth = 0 then begin
      c.self_minor.(0) <- c.self_minor.(0) +. dmin;
      c.self_major.(0) <- c.self_major.(0) +. dmaj
    end
    else begin
      let f = c.stack.(c.depth - 1) in
      if f.f_cat >= 0 then begin
        c.self_minor.(f.f_cat) <- c.self_minor.(f.f_cat) +. dmin;
        c.self_major.(f.f_cat) <- c.self_major.(f.f_cat) +. dmaj
      end
      else begin
        f.f_slot.ts_minor_w <- f.f_slot.ts_minor_w +. dmin;
        f.f_slot.ts_major_w <- f.f_slot.ts_major_w +. dmaj
      end
    end
  end;
  if c.depth = 0 then c.self.(0) <- c.self.(0) +. dt
  else begin
    let f = c.stack.(c.depth - 1) in
    if f.f_cat >= 0 then c.self.(f.f_cat) <- c.self.(f.f_cat) +. dt
    else f.f_slot.ts_self_us <- f.f_slot.ts_self_us +. dt
  end

let push c cat slot name now =
  if c.skipped > 0 || c.depth >= stack_cap then c.skipped <- c.skipped + 1
  else begin
    let f = c.stack.(c.depth) in
    f.f_cat <- cat;
    f.f_slot <- slot;
    f.f_name <- name;
    f.f_t0 <- now;
    f.f_sim0 <- !sim_now;
    c.depth <- c.depth + 1
  end

let record_span c (f : frame) now =
  c.spans <- c.spans + 1;
  let cat_name =
    if f.f_cat >= 0 then cat_label_of_index f.f_cat else "tool"
  in
  let name = if f.f_cat >= 0 then f.f_name else f.f_slot.ts_name in
  Span_buf.record (span_store ())
    {
      Span_buf.sp_name = name;
      sp_cat = cat_name;
      sp_tid = c.cx_id;
      sp_dev = c.cx_dev;
      sp_depth = c.depth;
      sp_wall0_us = f.f_t0;
      sp_dur_us = now -. f.f_t0;
      sp_sim0_us = f.f_sim0;
      sp_sim1_us = !sim_now;
    }

(* Pop the top frame if it matches [cat]/[slot]; a mismatched or missing
   begin is counted, never raised — instrumentation must not be able to
   take the pipeline down. *)
let pop c cat slot now =
  if c.skipped > 0 then c.skipped <- c.skipped - 1
  else if c.depth = 0 then c.mismatches <- c.mismatches + 1
  else begin
    let f = c.stack.(c.depth - 1) in
    c.depth <- c.depth - 1;
    if f.f_cat = cat && (cat >= 0 || f.f_slot == slot) then begin
      if cat >= 0 then c.counts.(cat) <- c.counts.(cat) + 1
      else begin
        f.f_slot.ts_calls <- f.f_slot.ts_calls + 1;
        if !lvl > 1 then Metric.observe f.f_slot.ts_hist (now -. f.f_t0)
      end;
      if !lvl > 1 then record_span c f now
    end
    else c.mismatches <- c.mismatches + 1
  end

let begin_span cat name =
  if !lvl > 0 then begin
    let c = ctx () in
    let now = now_us () in
    charge c now;
    push c (cat_index cat) dummy_slot name now
  end

let end_span cat =
  if !lvl > 0 then begin
    let c = ctx () in
    let now = now_us () in
    charge c now;
    pop c (cat_index cat) dummy_slot now
  end

let begin_tool slot =
  if !lvl > 0 then begin
    let c = ctx () in
    let now = now_us () in
    charge c now;
    push c (-1) slot slot.ts_name now
  end

let end_tool slot =
  if !lvl > 0 then begin
    let c = ctx () in
    let now = now_us () in
    charge c now;
    pop c (-1) slot now
  end

(* --- Test hooks --------------------------------------------------------- *)

let depth () = (ctx ()).depth + (ctx ()).skipped
let mismatches () = (ctx ()).mismatches
let spans_recorded () = (ctx ()).spans
let span_buffer () = span_store ()

(* --- Reset -------------------------------------------------------------- *)

let reset () =
  let c = ctx () in
  let now = now_us () in
  epoch := now;
  c.last <- now;
  c.depth <- 0;
  c.skipped <- 0;
  Array.fill c.self 0 cat_count 0.0;
  Array.fill c.counts 0 cat_count 0;
  Array.fill c.self_minor 0 cat_count 0.0;
  Array.fill c.self_major 0 cat_count 0.0;
  (let minor0, _, major0 = Gc.counters () in
   c.last_minor <- minor0;
   c.last_major <- major0);
  c.mismatches <- 0;
  c.spans <- 0;
  Mutex.lock slots_mu;
  Hashtbl.iter
    (fun _ s ->
      s.ts_self_us <- 0.0;
      s.ts_calls <- 0;
      s.ts_minor_w <- 0.0;
      s.ts_major_w <- 0.0)
    slots;
  Mutex.unlock slots_mu;
  Metric.reset reg;
  (match !spans_store with Some b -> Span_buf.clear b | None -> ());
  occ_next := 0;
  occ_stored := 0

(* --- Overhead attribution ---------------------------------------------- *)

type row = {
  row_label : string;
  row_self_us : float;
  row_count : int;
  row_minor_words : float;
  row_major_words : float;
}
type attribution = { at_total_us : float; at_rows : row list }

let tool_rows () =
  Mutex.lock slots_mu;
  let rows =
    Hashtbl.fold
      (fun _ s acc ->
        if s.ts_calls > 0 || s.ts_self_us > 0.0 then
          { row_label = "tool:" ^ s.ts_name; row_self_us = s.ts_self_us;
            row_count = s.ts_calls; row_minor_words = s.ts_minor_w;
            row_major_words = s.ts_major_w }
          :: acc
        else acc)
      slots []
  in
  Mutex.unlock slots_mu;
  List.sort (fun a b -> compare a.row_label b.row_label) rows

(* Cheap feedback reading for the sampling governor: cumulative window
   total and the part of it NOT charged to the simulate/workload root,
   i.e. the framework's own overhead so far.  Callers diff successive
   snapshots to get per-window readings.  No allocation beyond the tuple;
   (0, 0) at level Off, where nothing is attributed. *)
let overhead_snapshot () =
  if !lvl = 0 then (0.0, 0.0)
  else begin
    let c = ctx () in
    let now = now_us () in
    charge c now;
    let total = now -. !epoch in
    (total, Float.max 0.0 (total -. c.self.(0)))
  end

(* Attribution covers the calling domain's context — the coordinator.  The
   coordinator blocks while the domain pool maps, so pool wall time shows
   up in the devagg row; workers are never instrumented directly. *)
let attribution () =
  let c = ctx () in
  let now = now_us () in
  charge c now;
  let total = now -. !epoch in
  let cats =
    List.init cat_count (fun i ->
        {
          row_label = cat_describe_of_index i;
          row_self_us = c.self.(i);
          row_count = c.counts.(i);
          row_minor_words = c.self_minor.(i);
          row_major_words = c.self_major.(i);
        })
    |> List.filter (fun r -> r.row_self_us > 0.0 || r.row_count > 0)
  in
  { at_total_us = total; at_rows = cats @ tool_rows () }

let pp_attribution ppf a =
  let sum = List.fold_left (fun acc r -> acc +. r.row_self_us) 0.0 a.at_rows in
  let sum_minor =
    List.fold_left (fun acc r -> acc +. r.row_minor_words) 0.0 a.at_rows
  in
  let sum_major =
    List.fold_left (fun acc r -> acc +. r.row_major_words) 0.0 a.at_rows
  in
  Format.fprintf ppf "overhead attribution (self wall time, level %s):@."
    (level_name (level ()));
  Format.fprintf ppf "  %-28s %12s %7s %10s %12s %12s@." "layer" "self (ms)"
    "share" "spans" "minor (kw)" "major (kw)";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-28s %12.3f %6.1f%% %10d %12.1f %12.1f@."
        r.row_label
        (r.row_self_us /. 1000.0)
        (if a.at_total_us > 0.0 then 100.0 *. r.row_self_us /. a.at_total_us
         else 0.0)
        r.row_count
        (r.row_minor_words /. 1000.0)
        (r.row_major_words /. 1000.0))
    a.at_rows;
  Format.fprintf ppf "  %-28s %12.3f %6.1f%% %10s %12.1f %12.1f@." "total"
    (a.at_total_us /. 1000.0)
    (if a.at_total_us > 0.0 then 100.0 *. sum /. a.at_total_us else 0.0)
    "" (sum_minor /. 1000.0) (sum_major /. 1000.0)

(* --- Chrome trace-event export ------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Telemetry events live in their own process group (pid 1000) on the wall
   clock; workload events exported by {!Trace_export} keep their device
   pids on the simulated clock.  The sim_t0/sim_t1 args are the bridge
   between the two timelines. *)
let telemetry_pid = 1000

let chrome_events () =
  let evs = ref [] in
  let add s = evs := s :: !evs in
  add
    (Printf.sprintf
       {|{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"pasta-telemetry"}}|}
       telemetry_pid);
  let tids = Hashtbl.create 4 in
  (match !spans_store with
  | None -> ()
  | Some b ->
      Span_buf.iter b (fun sp ->
          if not (Hashtbl.mem tids sp.Span_buf.sp_tid) then begin
            Hashtbl.add tids sp.Span_buf.sp_tid ();
            add
              (Printf.sprintf
                 {|{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"domain%d"}}|}
                 telemetry_pid sp.Span_buf.sp_tid sp.Span_buf.sp_tid)
          end;
          add
            (Printf.sprintf
               {|{"name":"%s","cat":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"device":%d,"sim_t0_us":%.3f,"sim_t1_us":%.3f}}|}
               (json_escape sp.Span_buf.sp_name)
               (json_escape sp.Span_buf.sp_cat)
               (sp.Span_buf.sp_wall0_us -. !epoch)
               sp.Span_buf.sp_dur_us telemetry_pid sp.Span_buf.sp_tid
               sp.Span_buf.sp_dev sp.Span_buf.sp_sim0_us
               sp.Span_buf.sp_sim1_us)));
  List.iter
    (fun (t, v) ->
      add
        (Printf.sprintf
           {|{"name":"ring_buffer_records","ph":"C","ts":%.3f,"pid":%d,"tid":0,"args":{"records":%.0f}}|}
           (t -. !epoch) telemetry_pid v))
    (occ_samples ());
  List.rev !evs

let write_chrome_trace path =
  begin_span Export "telemetry.chrome";
  let evs = chrome_events () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc {|{"traceEvents":[|};
      List.iteri
        (fun i e ->
          if i > 0 then output_char oc ',';
          output_string oc e)
        evs;
      output_string oc {|],"displayTimeUnit":"ms"}|});
  end_span Export

(* --- Prometheus export -------------------------------------------------- *)

(* Fold the attribution state into gauges right before exposition, so the
   hot path never touches the registry. *)
let sync_metrics () =
  let a = attribution () in
  Metric.set_gauge
    (Metric.gauge reg ~help:"wall time covered by the attribution window"
       "pasta_telemetry_window_us")
    a.at_total_us;
  let c = ctx () in
  for i = 0 to cat_count - 1 do
    Metric.set_gauge
      (Metric.gauge reg ~help:"self wall time per pipeline layer"
         ~labels:[ ("layer", cat_label_of_index i) ] "pasta_layer_self_us")
      c.self.(i);
    Metric.set_gauge
      (Metric.gauge reg ~help:"minor words allocated per pipeline layer"
         ~labels:[ ("layer", cat_label_of_index i) ] "pasta_layer_minor_words")
      c.self_minor.(i);
    Metric.set_gauge
      (Metric.gauge reg ~help:"major words allocated per pipeline layer"
         ~labels:[ ("layer", cat_label_of_index i) ] "pasta_layer_major_words")
      c.self_major.(i)
  done;
  Mutex.lock slots_mu;
  Hashtbl.iter
    (fun _ s ->
      Metric.set_gauge
        (Metric.gauge reg ~help:"self wall time per tool"
           ~labels:[ ("tool", s.ts_name) ] "pasta_tool_self_us")
        s.ts_self_us;
      Metric.set
        (Metric.counter reg ~help:"guarded tool callback invocations"
           ~labels:[ ("tool", s.ts_name) ] "pasta_tool_calls")
        s.ts_calls)
    slots;
  Mutex.unlock slots_mu;
  Metric.set
    (Metric.counter reg ~help:"unbalanced span ends observed"
       "pasta_telemetry_span_mismatches")
    c.mismatches;
  match !spans_store with
  | None -> ()
  | Some b ->
      Metric.set
        (Metric.counter reg ~help:"spans recorded to the cyclic store"
           "pasta_telemetry_spans_recorded")
        (Span_buf.pushed b);
      Metric.set
        (Metric.counter reg ~help:"spans overwritten in the cyclic store"
           "pasta_telemetry_spans_dropped")
        (Span_buf.dropped b)

let prometheus ?(extra = []) () =
  sync_metrics ();
  Metric.to_prometheus_all (extra @ [ reg ])

let write_prometheus ?extra path =
  let body = prometheus ?extra () in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body)
