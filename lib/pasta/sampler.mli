(** Adaptive sampling governor: keeps fine-grained analysis overhead
    inside a user-set budget by steering the device's record sampling
    rate in a closed feedback loop.

    [Fixed r] pins the rate; [Auto] starts exact (rate 1.0) and applies
    AIMD control at each kernel boundary — multiplicative decrease when
    the just-elapsed window's overhead fraction (from
    {!Telemetry.overhead_snapshot}) exceeds the budget or the record
    buffer shows pressure, additive recovery once comfortably under.

    The governor decides rates; determinism is preserved elsewhere: the
    session records each change ({!Processor.note_rate}) before the
    launch it first applies to, and {!Gpusim.Warp.thin} draws from
    per-(grid, region, chunk) streams, so replaying the recorded schedule
    reproduces the sampled stream byte-for-byte.

    With telemetry [Off] an [Auto] governor has no overhead signal.  It
    degrades to a fixed fallback rate and counts the blind windows
    ({!snapshot.sn_blind_windows}) so health output can warn — it never
    silently pins rate 1.0. *)

type mode = Fixed of float | Auto of { budget : float }

type t

val min_rate : float
(** Floor the multiplicative decrease never crosses (0.05). *)

val default_blind_rate : float
(** Fallback rate for telemetry-blind [Auto] governors when no explicit
    rate was configured (0.1). *)

val create : ?fallback:float -> mode -> t
(** [fallback] (default {!default_blind_rate}) is the fixed rate an
    [Auto] governor degrades to when telemetry is off.  Raises
    [Invalid_argument] when any rate or budget is outside (0, 1]. *)

val of_config : ?rate:float -> ?budget:float -> unit -> t option
(** Resolve from explicit values and the environment
    ([ACCEL_PROF_SAMPLE_RATE], [ACCEL_PROF_OVERHEAD_BUDGET]).  A budget
    selects [Auto]; a bare rate selects [Fixed]; with both, the budget
    governs and the rate is the blind fallback; neither yields [None]. *)

val fleet_slice : budget:float -> spent_frac:float -> shards_left:int -> float
(** Overhead-budget slice for the next of [shards_left] sequential fleet
    shards, given the fraction already [spent_frac] by earlier shards:
    [(budget - spent) / shards_left], clamped into [[0.001, 1.0]] so an
    overspent budget throttles successors instead of disabling their
    governors.  Raises [Invalid_argument] on a budget outside (0, 1] or
    non-positive [shards_left]. *)

val mode : t -> mode

val rate : t -> float
(** The rate the next launch should run at. *)

val observe : t -> dropped:int -> stalls:int -> unit
(** Close the loop over the window since the previous call: [dropped] and
    [stalls] are the processor's cumulative ring-buffer drop/stall
    counters.  A no-op for [Fixed] governors. *)

type snapshot = {
  sn_mode : string;
  sn_rate : float;
  sn_windows : int;  (** feedback windows observed *)
  sn_adjustments : int;  (** rate changes applied *)
  sn_violations : int;  (** windows over budget or under ring pressure *)
  sn_floor_hits : int;  (** decreases clamped at {!min_rate} *)
  sn_blind_windows : int;
      (** windows governed without telemetry (fallback rate in force) *)
}

val snapshot : t -> snapshot
val pp_snapshot : Format.formatter -> snapshot -> unit
