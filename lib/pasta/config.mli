(** Configuration knobs, settable programmatically or through the
    environment variables the paper's artifact uses
    ([PASTA_TOOL], [START_GRID_ID], [END_GRID_ID],
    [ACCEL_PROF_ENV_SAMPLE_RATE]).  Programmatic overrides win over the
    environment; [clear_overrides] restores environment-only behaviour. *)

val set : string -> string -> unit
val unset : string -> unit
val clear_overrides : unit -> unit

val get : string -> string option
val get_int : string -> int option
(** [None] when the variable is absent or not an integer. *)

val tool_name : unit -> string option
(** [PASTA_TOOL]. *)

val start_grid_id : unit -> int option
val end_grid_id : unit -> int option

val sample_cap : unit -> int option
(** [ACCEL_PROF_ENV_SAMPLE_RATE]: per-region cap on materialized records
    (the paper artifact's integer knob — a cap, not a probability). *)

(** {2 Adaptive sampling knobs} *)

val sampling_rate : unit -> float option
(** [ACCEL_PROF_SAMPLE_RATE]: fixed fraction of materialized records to
    keep, in (0, 1].  [None] when unset or invalid; surviving records
    carry inverse-probability weights so weighted statistics stay
    unbiased. *)

val parse_budget : string -> float option
(** Parse an overhead budget: ["5%"] and ["0.05"] both mean 5% of
    workload time.  [None] outside (0, 1] or on malformed input. *)

val overhead_budget : unit -> float option
(** [ACCEL_PROF_OVERHEAD_BUDGET]: target ceiling for analysis overhead as
    a fraction of workload time; enables the closed-loop sampling
    governor ({!Sampler}). *)

(** {2 Robustness knobs}

    These return a usable default when the variable is unset or invalid,
    because the supervision layer must never fail to configure itself. *)

val guard_threshold : unit -> int
(** [ACCEL_PROF_GUARD_THRESHOLD]: tool-callback failures tolerated before
    quarantine (default 10). *)

val guard_cooldown_kernels : unit -> int
(** [ACCEL_PROF_GUARD_COOLDOWN_KERNELS]: kernels a quarantined tool sits
    out before a half-open probe (default 25). *)

val buffer_capacity : unit -> int
(** [ACCEL_PROF_BUFFER_CAP]: bounded record-buffer capacity (default 4096). *)

val overflow_policy : unit -> Pasta_util.Ring_buffer.overflow
(** [ACCEL_PROF_OVERFLOW_POLICY]: drop-oldest | drop-newest | block
    (default block, which is lossless). *)

val watchdog_us : unit -> float
(** [ACCEL_PROF_WATCHDOG_US]: kernel duration above which the session
    watchdog flags a stuck kernel (default 1e6 us). *)

val batch_delivery : unit -> bool
(** [ACCEL_PROF_BATCH_DELIVERY]: deliver host-analyzed records to the
    processor as packed batches (default).  Setting it to [0]/[off]
    restores the legacy one-callback-per-record path — same results,
    higher overhead; kept as an A/B switch for overhead studies. *)

val columnar : unit -> bool
(** [ACCEL_PROF_COLUMNAR]: use the zero-copy columnar hot path — direct
    {!Tool.t.on_access_columns} delivery with no per-dispatch event
    wrapping, and per-domain device aggregation merged once per kernel
    (default).  Setting it to [0]/[off] restores the legacy per-chunk
    shard path and event-wrapped batch dispatch — same bytes, higher
    overhead; kept as an escape hatch and equivalence oracle. *)

val domains : unit -> int
(** [ACCEL_PROF_DOMAINS]: domain-pool size for parallel device-side
    preprocessing.  Defaults to [Domain.recommended_domain_count ()]
    capped at 8; explicit values are honoured up to 64.  Size 1 means
    fully serial (no domains spawned). *)

val inject_faults : unit -> bool
(** [ACCEL_PROF_INJECT_FAULTS]: enable deterministic fault injection for
    sessions that don't install their own injector. *)

val fault_seed : unit -> int64
(** [ACCEL_PROF_FAULT_SEED]: seed for injected faults (default 0x5EED). *)

(** {2 Fleet profiling knobs}

    Defaults are usable without any environment, like the robustness
    knobs: fleet orchestration must configure itself even on a bare
    machine. *)

val fleet_fanout : unit -> int
(** [ACCEL_PROF_FLEET_FANOUT]: children per merge node of the fleet
    reduction tree (default 8, minimum 2). *)

val fleet_deadline_us : unit -> float
(** [ACCEL_PROF_FLEET_DEADLINE_US]: simulated per-device wall budget; a
    device attempt finishing past it retries, and the final attempt's
    late summary is delivered [Stale] (default 5e6 us). *)

val fleet_retries : unit -> int
(** [ACCEL_PROF_FLEET_RETRIES]: attempts after the first before a device
    is declared missing (default 2). *)

val fleet_backoff_us : unit -> float
(** [ACCEL_PROF_FLEET_BACKOFF_US]: base of the exponential retry backoff,
    jittered deterministically per (device, attempt) (default 1e4 us). *)

val strict_fleet : unit -> bool
(** [ACCEL_PROF_STRICT_FLEET]: promote missing devices from a degraded
    partial report to a hard run failure (default off). *)

(** {2 Self-telemetry knobs} *)

val telemetry : unit -> [ `Off | `Basic | `Full ]
(** [ACCEL_PROF_TELEMETRY]: the framework's self-observability level.
    [off] disables the span layer entirely, [basic] (the default) keeps
    allocation-free self-time attribution on, [full] additionally records
    individual spans, tool latency histograms and ring-occupancy samples
    for export. *)

val telemetry_spans : unit -> int
(** [ACCEL_PROF_TELEMETRY_SPANS]: capacity of the cyclic span store used
    in [full] mode (default 65536); the newest spans win. *)

(** {2 Trace capture / replay knobs} *)

val trace_path : unit -> string option
(** [ACCEL_PROF_TRACE]: when set, every attached session also streams its
    unified event stream to this [.ptrace] file. *)

val trace_chunk_bytes : unit -> int
(** [ACCEL_PROF_TRACE_CHUNK_KB]: capture chunk size in KiB (default 256).
    Each chunk is independently framed and CRC-protected; smaller chunks
    bound capture memory tighter and lose less to a corrupt chunk,
    larger chunks compress the framing overhead. *)

val trace_strict : unit -> bool
(** [ACCEL_PROF_TRACE_STRICT]: replay verification mode.  Strict (the
    default) fails on any CRC or framing violation; [0]/[off]/[tolerant]
    skips corrupt chunks and keeps going. *)
