(** Fleet-scale profiling with failure-tolerant hierarchical aggregation.

    One orchestrator drives [devices] per-device profiling shards — each a
    full {!Session} over a fresh seeded simulated device — and merges
    their {!Devagg} summaries through a fanout-[K] tree reduction whose
    every merge node is failure-aware: inputs are validated
    ({!Devagg.validate}), corrupted summaries are dropped with their
    origin devices reported, and the reduction completes with a partial
    result naming exactly which devices are missing, stale or estimated.

    Failure handling per device: a deadline on cumulative simulated time
    with jittered exponential-backoff retries (bounded attempts), a
    fleet-level {!Guard} quarantining repeatedly-crashing devices, and
    [Stale] delivery for a final attempt landing past the deadline.  When
    devices drop out, the aggregate's effective sampling rate is re-scaled
    by coverage (inverse-probability re-weighting), so its estimate
    annotation and {!Devagg.rel_stderr} widen accordingly.

    Everything is byte-deterministic: failure decisions are pure functions
    of the fleet seed ({!Gpusim.Faults.device_fate},
    {!Gpusim.Faults.corrupt_summary_at}), timing decisions are on the
    simulated clock, and merge nodes are pure and executed level-by-level
    over the domain pool — the same seed produces the same {!result.report}
    bytes at any domain count, live or {!replay}ed.

    Device shards run sequentially on the orchestrator (sessions keep
    per-process state); only the merge levels parallelize. *)

(** {2 Reduction topology}

    The topology is pure data so communication layers (e.g.
    [Megatron.Comm.reduce_tree]) can reuse it to model the same reduction
    over real interconnects. *)

type plan_node = {
  pn_id : int;  (** level-major ordinal, stable for (leaves, fanout) *)
  pn_children : int list;  (** indices into the previous level (or leaves) *)
}

type plan = {
  pl_leaves : int;
  pl_fanout : int;
  pl_levels : plan_node array list;  (** bottom-up; last level is the root *)
}

val plan : fanout:int -> int -> plan
(** [plan ~fanout leaves].  Raises [Invalid_argument] when [fanout < 2] or
    [leaves < 0]. *)

val plan_nodes : plan -> int
(** Total merge nodes. *)

(** {2 Failure-aware reduction} *)

type reduction = {
  red_summary : Devagg.summary option;
  red_devices : int list;  (** leaf indices aggregated, sorted *)
  red_dropped : (int * int list) list;
      (** (merge node id, leaf indices dropped there), sorted *)
  red_nodes : int;
}

val reduce :
  ?pool:Pasta_util.Domain_pool.t ->
  ?rates:Gpusim.Faults.fleet_rates ->
  seed:int64 ->
  fanout:int ->
  Devagg.summary option array ->
  reduction
(** Merge the leaf summaries ([None] = missing leaf) through the tree.
    With [rates], summary corruption is injected at merge inputs keyed by
    (seed, node, child); every input — corrupted or not — is validated and
    dropped on failure.  Deterministic for any [pool] size. *)

val flat_merge : Devagg.summary list -> Devagg.summary option
(** Single-node baseline (one [merge_summaries] over everything): the
    flat-concat aggregation the benchmarks compare the tree against. *)

(** {2 Fleet orchestration} *)

type cfg = {
  devices : int;
  fanout : int;
  deadline_us : float;
  retries : int;
  backoff_base_us : float;
  seed : int64;
  kernels : int;
  accesses_per_kernel : int;
  fault_rates : Gpusim.Faults.fleet_rates option;
  sample_rate : float option;
  overhead_budget : float option;
  capture_prefix : string option;
}

val default_cfg : ?devices:int -> unit -> cfg
(** Defaults from the [ACCEL_PROF_FLEET_*] knobs ({!Config}); 4 devices, 3
    kernels of 20k accesses per shard, no fault injection, no capture. *)

val trace_path : string -> int -> string
(** [trace_path prefix d] is [<prefix>.devNNN.ptrace]. *)

type reason = Crashed | Quarantined | Timeout
type status = Fresh | Stale | Missing of reason

val reason_name : reason -> string
val status_name : status -> string

type device_report = {
  fr_dev : int;
  fr_status : status;
  fr_attempts : int;
  fr_spent_us : float;
}

type result = {
  devices : device_report list;
  summary : Devagg.summary option;
  dropped_at_merge : (int * int list) list;
  fresh : int;
  stale : int;
  missing : int;
  retries_total : int;
  quarantined_total : int;
  merge_nodes : int;
  coverage : float;
  records_dropped : int;
  registry : Pasta_util.Metric.t;
  report : string;
}

val run : cfg -> result
(** Profile the fleet.  Raises [Invalid_argument] on a malformed [cfg];
    injected failures never escape. *)

val replay : cfg -> result
(** Rebuild the result from the per-device traces a captured {!run} left
    at [cfg.capture_prefix] (required).  Byte-identical report when
    sampling was deterministic (fixed rate or none).  Raises
    [Invalid_argument] without a capture prefix. *)
