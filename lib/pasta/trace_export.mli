(** Chrome-trace export.

    Serializes a unified event stream into the Trace Event Format consumed
    by chrome://tracing and Perfetto — the interchange every mainstream
    profiler (Nsight Systems, PyTorch profiler, XProf) speaks.  Kernel
    launches and operators become duration events ([ph:"X"]); allocations,
    frees and annotations become instants ([ph:"i"]); tensor pool usage
    becomes a counter track ([ph:"C"]).

    The exporter is itself a PASTA tool: attach it like any other and
    write the trace at the end of the session. *)

type t

val create : unit -> t

val record : t -> Event.t -> unit
(** Feed one event.  [Kernel_launch]/[Operator] begin/end pairs are
    matched internally; unbalanced ends are dropped. *)

val event_count : t -> int
(** Trace events materialized so far. *)

val to_json : ?extra:string list -> t -> string
(** The complete trace as a JSON object
    [{"traceEvents": [...], "displayTimeUnit": "ms"}].  Deterministic.
    [extra] splices pre-rendered trace-event JSON objects (e.g.
    {!Telemetry.chrome_events}) into the same array, producing one file
    that carries both the workload timeline (simulated clock, device
    pids) and the framework's self-telemetry (wall clock, pid 1000). *)

val write_file : ?extra:string list -> t -> string -> unit
(** Write {!to_json} to the given path. *)

val tool : t -> Tool.t
(** A coarse-events tool whose report prints the event count; combine with
    {!write_file} after the session. *)
