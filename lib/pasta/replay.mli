(** Deterministic trace replay: re-drive a recorded [.ptrace] op stream
    through a fresh {!Processor} and tool, offline.

    Because the trace records submissions, the processor rebuilds
    everything it computed live — object-registry state, range
    filtering, bounded buffering, region summaries — so the replayed
    tool sees the exact callback sequence of the original run and
    produces a byte-identical report, provided the pipeline knobs
    (buffer capacity, overflow policy, batch delivery, guard thresholds)
    match the recording run.  Kernel-end device aggregates are the
    exception: the trace stores each flush's merged {!Devagg.summary},
    so replay re-drives the recorded aggregate instead of re-running the
    reduction — identical output (aggregation is deterministic for every
    domain count), a fraction of the wall time.

    Replay applies its own range filter: a trace recorded unfiltered can
    be re-analyzed over any sub-range. *)

type outcome = {
  header : Ptrace.header;
  tool_name : string;
  ops_replayed : int;
  chunks : int;
  chunks_skipped : int;  (** corrupt chunks skipped (tolerant mode) *)
  elapsed_us : float;  (** last simulated timestamp in the trace *)
  processor : Processor.t;  (** for stats / health inspection *)
  report : Format.formatter -> unit;  (** the tool's report, exception-safe *)
}

val run :
  ?mode:Ptrace.mode -> ?range:Range.t -> tool:Tool.t -> string -> outcome
(** [run ~tool path] replays [path] into a fresh processor driving
    [tool].  [mode] defaults to the {!Config.trace_strict} knob; strict
    replay raises {!Ptrace.Corrupt} on any damage, tolerant replay skips
    corrupt chunks and reports them in [chunks_skipped]. *)

val apply : Processor.t -> time_us:float -> Processor.sink_op -> unit
(** Re-drive one recorded op through a processor's submission entry
    points (annotations go through [annot_start]/[annot_end] so range
    state is rebuilt). *)

val drive :
  ?mode:Ptrace.mode ->
  Processor.t ->
  string ->
  Ptrace.header * Ptrace.read_stats * float
(** Lower-level entry: replay into an existing processor (whatever tool
    and range it carries) and return the header, read stats and the last
    timestamp seen.  Used by {!run} and by tests that need custom
    processor configuration. *)

(** {2 Offline inspection} *)

type stat = {
  s_header : Ptrace.header;
  s_bytes : int;  (** file size on disk *)
  s_ops : int;
  s_records : int;  (** fine-grained records (batches count their length) *)
  s_chunks : int;
  s_chunks_skipped : int;
  s_first_us : float;
  s_last_us : float;
  s_kinds : (string * int) list;  (** op-kind histogram, most frequent first *)
}

val stat : ?mode:Ptrace.mode -> string -> stat
val pp_stat : Format.formatter -> stat -> unit

type divergence =
  | Identical of int  (** op count *)
  | Op_mismatch of { index : int; a : string; b : string }
  | Length_mismatch of { a_ops : int; b_ops : int }
      (** one trace is a strict prefix of the other *)

val diff : ?mode:Ptrace.mode -> string -> string -> divergence
(** Structural comparison of two traces' op streams (chunking and
    interning layout are ignored — only the ops matter). *)

val pp_divergence : Format.formatter -> divergence -> unit
