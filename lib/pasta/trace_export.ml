(* Trace Event Format reference:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU *)

type trace_event = {
  name : string;
  cat : string;
  ph : string;  (* "X" duration, "i" instant, "C" counter *)
  ts : float;  (* microseconds *)
  dur : float option;
  pid : int;
  tid : int;
  arg : (string * string) list;  (* rendered into "args" *)
}

type t = {
  mutable events : trace_event list; (* reverse order *)
  mutable count : int;
  open_kernels : (int, float) Hashtbl.t; (* grid_id -> begin ts *)
  open_ops : (int, string * float) Hashtbl.t; (* seq -> (name, begin ts) *)
}

let create () =
  { events = []; count = 0; open_kernels = Hashtbl.create 32; open_ops = Hashtbl.create 32 }

let push t ev =
  t.events <- ev :: t.events;
  t.count <- t.count + 1

let event_count t = t.count

(* Track ids keep the trace readable: GPU kernels, framework operators and
   runtime calls land on separate rows. *)
let tid_kernels = 1
let tid_operators = 2
let tid_memory = 3
let tid_api = 4

let record t (e : Event.t) =
  let pid = e.Event.device in
  let ts = e.Event.time_us in
  match e.Event.payload with
  | Event.Kernel_launch { info; phase = `Begin } ->
      Hashtbl.replace t.open_kernels info.Event.grid_id ts
  | Event.Kernel_launch { info; phase = `End summary } -> (
      match Hashtbl.find_opt t.open_kernels info.Event.grid_id with
      | None -> ()
      | Some t0 ->
          Hashtbl.remove t.open_kernels info.Event.grid_id;
          push t
            {
              name = info.Event.name;
              cat = "kernel";
              ph = "X";
              ts = t0;
              dur = Some (Float.max summary.Event.duration_us (ts -. t0));
              pid;
              tid = tid_kernels;
              arg =
                [
                  ("grid", Gpusim.Dim3.to_string info.Event.grid);
                  ("block", Gpusim.Dim3.to_string info.Event.block);
                  ("accesses", string_of_int summary.Event.true_accesses);
                ];
            })
  | Event.Operator { name; phase = `Enter; seq } ->
      Hashtbl.replace t.open_ops seq (name, ts)
  | Event.Operator { phase = `Exit; seq; _ } -> (
      match Hashtbl.find_opt t.open_ops seq with
      | None -> ()
      | Some (name, t0) ->
          Hashtbl.remove t.open_ops seq;
          push t
            {
              name;
              cat = "operator";
              ph = "X";
              ts = t0;
              dur = Some (ts -. t0);
              pid;
              tid = tid_operators;
              arg = [];
            })
  | Event.Memory_alloc { addr; bytes; managed } ->
      push t
        {
          name = "alloc";
          cat = "memory";
          ph = "i";
          ts;
          dur = None;
          pid;
          tid = tid_memory;
          arg =
            [
              ("addr", Printf.sprintf "0x%x" addr);
              ("bytes", string_of_int bytes);
              ("managed", string_of_bool managed);
            ];
        }
  | Event.Memory_free { addr; bytes } ->
      push t
        {
          name = "free";
          cat = "memory";
          ph = "i";
          ts;
          dur = None;
          pid;
          tid = tid_memory;
          arg = [ ("addr", Printf.sprintf "0x%x" addr); ("bytes", string_of_int bytes) ];
        }
  | Event.Tensor_alloc { pool_allocated; _ } | Event.Tensor_free { pool_allocated; _ } ->
      push t
        {
          name = "framework memory";
          cat = "memory";
          ph = "C";
          ts;
          dur = None;
          pid;
          tid = tid_memory;
          arg = [ ("allocated", string_of_int pool_allocated) ];
        }
  | Event.Annotation { label; phase } ->
      push t
        {
          name = Printf.sprintf "pasta.%s" (match phase with `Start -> "start" | `End -> "end");
          cat = "annotation";
          ph = "i";
          ts;
          dur = None;
          pid;
          tid = tid_operators;
          arg = [ ("label", label) ];
        }
  | Event.Tool_quarantined { tool; failures } ->
      push t
        {
          name = "tool quarantined";
          cat = "supervision";
          ph = "i";
          ts;
          dur = None;
          pid;
          tid = tid_operators;
          arg = [ ("tool", tool); ("failures", string_of_int failures) ];
        }
  | Event.Memory_copy { bytes; direction; _ } ->
      push t
        {
          name = Format.asprintf "memcpy %a" Event.pp_direction direction;
          cat = "transfer";
          ph = "i";
          ts;
          dur = None;
          pid;
          tid = tid_memory;
          arg = [ ("bytes", string_of_int bytes) ];
        }
  | Event.Device_summary { kernel; summary } ->
      (* Instant on the kernel row, carrying the merged device-side
         reduction: object count and exact weighted totals. *)
      push t
        {
          name = Printf.sprintf "%s summary" kernel.Event.name;
          cat = "device_summary";
          ph = "i";
          ts;
          dur = None;
          pid;
          tid = tid_kernels;
          arg =
            [
              ("objects", string_of_int (List.length summary.Devagg.objects));
              ("true_accesses", string_of_int summary.Devagg.true_accesses);
              ("writes", string_of_int summary.Devagg.writes);
              ("sampled_records", string_of_int summary.Devagg.sampled_records);
            ];
        }
  | Event.Kernel_profile { kernel; profile } ->
      push t
        {
          name = Printf.sprintf "%s profile" kernel.Event.name;
          cat = "kernel_profile";
          ph = "i";
          ts;
          dur = None;
          pid;
          tid = tid_kernels;
          arg =
            [
              ("branches", string_of_int profile.Gpusim.Kernel.branches);
              ( "divergent_branches",
                string_of_int profile.Gpusim.Kernel.divergent_branches );
              ( "bank_conflicts",
                string_of_int profile.Gpusim.Kernel.bank_conflicts );
              ( "barrier_stall_us",
                Printf.sprintf "%.3f" profile.Gpusim.Kernel.barrier_stall_us );
              ( "redundant_loads",
                string_of_int profile.Gpusim.Kernel.redundant_loads );
            ];
        }
  (* Host API surface: one instant per completed call keeps the row light
     (the paired Enter carries no extra information in this vocabulary). *)
  | Event.Driver_call { name; phase = `Exit } ->
      push t
        { name; cat = "driver_api"; ph = "i"; ts; dur = None; pid; tid = tid_api; arg = [] }
  | Event.Runtime_call { name; phase = `Exit } ->
      push t
        { name; cat = "runtime_api"; ph = "i"; ts; dur = None; pid; tid = tid_api; arg = [] }
  | Event.Driver_call { phase = `Enter; _ } | Event.Runtime_call { phase = `Enter; _ } -> ()
  | Event.Memory_set { addr; bytes; value } ->
      push t
        {
          name = "memset";
          cat = "memory";
          ph = "i";
          ts;
          dur = None;
          pid;
          tid = tid_memory;
          arg =
            [
              ("addr", Printf.sprintf "0x%x" addr);
              ("bytes", string_of_int bytes);
              ("value", string_of_int value);
            ];
        }
  | Event.Synchronization { scope } ->
      push t
        {
          name =
            (match scope with
            | `Device -> "deviceSynchronize"
            | `Stream s -> Printf.sprintf "streamSynchronize(%d)" s);
          cat = "sync";
          ph = "i";
          ts;
          dur = None;
          pid;
          tid = tid_api;
          arg = [];
        }
  | _ -> ()

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_event e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"name":"%s","cat":"%s","ph":"%s","ts":%.3f,"pid":%d,"tid":%d|}
       (escape e.name) (escape e.cat) e.ph e.ts e.pid e.tid);
  (match e.dur with
  | Some d -> Buffer.add_string buf (Printf.sprintf {|,"dur":%.3f|} d)
  | None -> ());
  if e.arg <> [] then begin
    Buffer.add_string buf {|,"args":{|};
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf {|"%s":"%s"|} (escape k) (escape v)))
      e.arg;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_json ?(extra = []) t =
  let buf = Buffer.create 4096 in
  let emitted = ref 0 in
  let emit s =
    if !emitted > 0 then Buffer.add_char buf ',';
    incr emitted;
    Buffer.add_string buf s
  in
  Buffer.add_string buf {|{"traceEvents":[|};
  List.iter (fun e -> emit (json_of_event e)) (List.rev t.events);
  (* [extra]: pre-rendered trace-event objects (e.g.
     {!Telemetry.chrome_events}) spliced into the same array, so one file
     carries the workload and the framework's self-telemetry. *)
  List.iter emit extra;
  Buffer.add_string buf {|],"displayTimeUnit":"ms"}|};
  Buffer.contents buf

let write_file ?extra t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ?extra t))

let tool t =
  {
    (Tool.default "trace_export") with
    Tool.on_event = record t;
    report =
      (fun ppf ->
        Format.fprintf ppf "trace_export: %d trace events materialized@." t.count);
  }
