(* The .ptrace binary trace format.

   A capture file is a small header followed by independent chunks:

     header := magic "PTRC" | version byte | varint device | string meta
     chunk  := varint payload_len | varint op_count
             | u32le CRC-32 of payload | payload bytes

   The payload is a sequence of submission-level ops ({!Processor.sink_op}
   plus a simulated timestamp), varint-encoded: unsigned LEB128 for
   counts/sizes, zigzag LEB128 for quantities that can be negative,
   raw little-endian IEEE-754 for floats, length-prefixed bytes for
   strings.  Kernel descriptors are interned *per chunk* — the first op of
   a chunk referencing a kernel carries the full descriptor, later ops a
   one-varint handle — so every chunk decodes on its own and a corrupt
   chunk costs exactly its own ops and nothing downstream.

   Compatibility rule: the version byte gates everything after the magic.
   Additive evolution (new op tags, new payload tags) keeps the version;
   readers reject unknown tags as corruption, which tolerant mode turns
   into skipped chunks.  Any change to existing encodings bumps the
   version, and readers refuse versions they don't know. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let magic = "PTRC"
let version = 2

(* ------------------------------------------------------------------ *)
(* Encoding primitives                                                 *)
(* ------------------------------------------------------------------ *)

let put_u buf n =
  if n < 0 then invalid_arg "Ptrace.put_u: negative";
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char buf (Char.chr (!n land 0x7f lor 0x80));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.chr !n)

let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag u = (u lsr 1) lxor (- (u land 1))
let put_z buf n = put_u buf (zigzag n)
let put_f buf x = Buffer.add_int64_le buf (Int64.bits_of_float x)
let put_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

let put_str buf s =
  put_u buf (String.length s);
  Buffer.add_string buf s

type cursor = { c_s : string; mutable c_pos : int; c_limit : int }

let cursor ?(pos = 0) ?limit s =
  let limit = match limit with Some l -> l | None -> String.length s in
  { c_s = s; c_pos = pos; c_limit = limit }

let at_end c = c.c_pos >= c.c_limit

let get_byte c =
  if c.c_pos >= c.c_limit then corrupt "truncated varint";
  let b = Char.code c.c_s.[c.c_pos] in
  c.c_pos <- c.c_pos + 1;
  b

let rec get_u_slow c acc shift =
  let b = get_byte c in
  if shift > 56 then corrupt "varint too long";
  let acc = acc lor ((b land 0x7f) lsl shift) in
  if b land 0x80 = 0 then acc else get_u_slow c acc (shift + 7)

(* Single-byte values dominate real traces (sizes, warp ids, weights,
   small address deltas), so the common case is inlined: one bounds
   check, one unsafe read. *)
let get_u c =
  let pos = c.c_pos in
  if pos >= c.c_limit then corrupt "truncated varint";
  let b = Char.code (String.unsafe_get c.c_s pos) in
  if b < 0x80 then begin
    c.c_pos <- pos + 1;
    b
  end
  else get_u_slow c 0 0

let get_z c = unzigzag (get_u c)

let get_f c =
  if c.c_pos + 8 > c.c_limit then corrupt "truncated float";
  let v = String.get_int64_le c.c_s c.c_pos in
  c.c_pos <- c.c_pos + 8;
  Int64.float_of_bits v

let get_bool c = get_byte c <> 0

let get_str c =
  let len = get_u c in
  if c.c_pos + len > c.c_limit then corrupt "truncated string";
  let s = String.sub c.c_s c.c_pos len in
  c.c_pos <- c.c_pos + len;
  s

(* ------------------------------------------------------------------ *)
(* Domain-type codecs                                                  *)
(* ------------------------------------------------------------------ *)

let put_api_phase buf = function
  | `Enter -> put_u buf 0
  | `Exit -> put_u buf 1

let get_api_phase c =
  match get_u c with
  | 0 -> `Enter
  | 1 -> `Exit
  | n -> corrupt "bad api phase %d" n

let put_frames buf frames =
  put_u buf (List.length frames);
  List.iter
    (fun (f : Gpusim.Hostctx.frame) ->
      put_str buf f.Gpusim.Hostctx.file;
      put_u buf f.Gpusim.Hostctx.line;
      put_str buf f.Gpusim.Hostctx.symbol)
    frames

let get_frames c =
  let n = get_u c in
  List.init n (fun _ ->
      let file = get_str c in
      let line = get_u c in
      let symbol = get_str c in
      { Gpusim.Hostctx.file; line; symbol })

let put_dim3 buf (d : Gpusim.Dim3.t) =
  put_u buf d.Gpusim.Dim3.x;
  put_u buf d.Gpusim.Dim3.y;
  put_u buf d.Gpusim.Dim3.z

let get_dim3 c =
  let x = get_u c in
  let y = get_u c in
  let z = get_u c in
  { Gpusim.Dim3.x; y; z }

let put_kernel_info_body buf (k : Event.kernel_info) =
  put_u buf k.Event.device_id;
  put_u buf k.Event.grid_id;
  put_u buf k.Event.stream;
  put_str buf k.Event.name;
  put_dim3 buf k.Event.grid;
  put_dim3 buf k.Event.block;
  put_u buf k.Event.shared_bytes;
  put_u buf (List.length k.Event.arg_ptrs);
  List.iter (put_z buf) k.Event.arg_ptrs;
  put_frames buf k.Event.py_stack;
  put_frames buf k.Event.native_stack

let get_kernel_info_body c =
  let device_id = get_u c in
  let grid_id = get_u c in
  let stream = get_u c in
  let name = get_str c in
  let grid = get_dim3 c in
  let block = get_dim3 c in
  let shared_bytes = get_u c in
  let nargs = get_u c in
  let arg_ptrs = List.init nargs (fun _ -> get_z c) in
  let py_stack = get_frames c in
  let native_stack = get_frames c in
  {
    Event.device_id;
    grid_id;
    stream;
    name;
    grid;
    block;
    shared_bytes;
    arg_ptrs;
    py_stack;
    native_stack;
  }

(* Per-chunk kernel interning.  The encoder keys on [grid_id] (launch ids
   are unique per device, and every kernel_info of a launch is structurally
   identical); the decoder keeps slots in definition order. *)

type intern = { by_grid : (int, int) Hashtbl.t; mutable next : int }
type extern = { by_slot : (int, Event.kernel_info) Hashtbl.t; mutable count : int }

let intern () = { by_grid = Hashtbl.create 32; next = 0 }
let extern () = { by_slot = Hashtbl.create 32; count = 0 }

let put_kernel it buf (k : Event.kernel_info) =
  match Hashtbl.find_opt it.by_grid k.Event.grid_id with
  | Some slot -> put_u buf (slot + 1)
  | None ->
      Hashtbl.add it.by_grid k.Event.grid_id it.next;
      it.next <- it.next + 1;
      put_u buf 0;
      put_kernel_info_body buf k

let get_kernel ex c =
  match get_u c with
  | 0 ->
      let k = get_kernel_info_body c in
      Hashtbl.replace ex.by_slot ex.count k;
      ex.count <- ex.count + 1;
      k
  | handle -> (
      match Hashtbl.find_opt ex.by_slot (handle - 1) with
      | Some k -> k
      | None -> corrupt "undefined kernel handle %d" (handle - 1))

let put_access buf (a : Event.mem_access) =
  put_z buf a.Event.addr;
  put_u buf a.Event.size;
  put_bool buf a.Event.write;
  put_u buf a.Event.pc;
  put_u buf a.Event.warp;
  put_u buf a.Event.weight

let get_access c =
  let addr = get_z c in
  let size = get_u c in
  let write = get_bool c in
  let pc = get_u c in
  let warp = get_u c in
  let weight = get_u c in
  { Event.addr; size; write; pc; warp; weight }

(* Integer-column codec for batch payloads.  Simulated columns are
   heavily structured — sizes are constant, weights take at most two
   values, warp ids and address deltas are run- or two-valued — so the
   writer picks, per column, whichever of four encodings is smallest:

     tag 0 (raw)      len varints, one per element
     tag 1 (rle)      varint run count, then (value, run length) pairs
     tag 2 (two)      two varint values, then 1 bit per element
     tag 3 (const)    a single varint value

   Values must be non-negative (zigzag first for signed columns). *)
let col_raw = 0
let col_rle = 1
let col_two = 2
let col_const = 3

(* Generic over the element accessor, so the same codec serves both plain
   int arrays (the delta scratch) and the batch's Bigarray columns — the
   live capture path reads columns in place, with no boxed copy on the
   encode side. *)
let put_colf buf ~(get : int -> int) len =
  if len = 0 then put_u buf col_raw
  else begin
    let v0 = get 0 in
    let second = ref v0 in
    let distinct = ref 1 in
    let runs = ref 1 in
    let prev = ref v0 in
    for i = 1 to len - 1 do
      let v = get i in
      if v <> !prev then incr runs;
      prev := v;
      if !distinct = 1 then begin
        if v <> v0 then begin
          second := v;
          distinct := 2
        end
      end
      else if !distinct = 2 && v <> v0 && v <> !second then distinct := 3
    done;
    if !distinct = 1 then begin
      put_u buf col_const;
      put_u buf v0
    end
    else if !distinct = 2 then begin
      put_u buf col_two;
      put_u buf v0;
      put_u buf !second;
      let nbytes = (len + 7) / 8 in
      let bits = Bytes.make nbytes '\000' in
      for i = 0 to len - 1 do
        if get i = !second then
          Bytes.unsafe_set bits (i / 8)
            (Char.unsafe_chr
               (Char.code (Bytes.unsafe_get bits (i / 8)) lor (1 lsl (i mod 8))))
      done;
      Buffer.add_bytes buf bits
    end
    else if 4 * !runs <= len then begin
      put_u buf col_rle;
      put_u buf !runs;
      let i = ref 0 in
      while !i < len do
        let v = get !i in
        let j = ref !i in
        while !j < len && get !j = v do
          incr j
        done;
        put_u buf v;
        put_u buf (!j - !i);
        i := !j
      done
    end
    else begin
      put_u buf col_raw;
      for i = 0 to len - 1 do
        put_u buf (get i)
      done
    end
  end

let put_col buf (a : int array) len = put_colf buf ~get:(Array.unsafe_get a) len

(* Decode one column through an element setter — columns decode straight
   into their final Bigarray storage, no intermediate int array. *)
let get_colf c ~(set : int -> int -> unit) len =
  match get_u c with
  | 0 (* raw *) ->
      for i = 0 to len - 1 do
        set i (get_u c)
      done
  | 1 (* rle *) ->
      let nruns = get_u c in
      let filled = ref 0 in
      for _ = 1 to nruns do
        let v = get_u c in
        let r = get_u c in
        if r <= 0 || r > len - !filled then corrupt "bad column run";
        for i = !filled to !filled + r - 1 do
          set i v
        done;
        filled := !filled + r
      done;
      if !filled <> len then corrupt "column rle covers %d of %d" !filled len
  | 2 (* two *) ->
      let v0 = get_u c in
      let v1 = get_u c in
      let nbytes = (len + 7) / 8 in
      if c.c_pos + nbytes > c.c_limit then corrupt "truncated column bits";
      for i = 0 to len - 1 do
        set i
          (if
             Char.code (String.unsafe_get c.c_s (c.c_pos + (i / 8)))
             land (1 lsl (i mod 8))
             <> 0
           then v1
           else v0)
      done;
      c.c_pos <- c.c_pos + nbytes
  | 3 (* const *) ->
      let v = get_u c in
      for i = 0 to len - 1 do
        set i v
      done
  | n -> corrupt "bad column tag %d" n

(* Upper bound on a decoded batch: generated batches hold at most
   {!Gpusim.Warp.chunk_records} records, but column compression means a
   tiny payload can declare a huge length, so corrupt data must not be
   able to force absurd allocations. *)
let max_batch_len = 1 lsl 22

let put_batch buf (b : Gpusim.Warp.batch) =
  let module W = Gpusim.Warp in
  put_u buf b.W.b_region;
  put_u buf b.W.b_chunk;
  put_u buf b.W.b_pc;
  put_u buf b.W.b_len;
  let len = b.W.b_len in
  (* Addresses go through zigzag deltas first: generation chunks are
     mostly monotone with near-constant stride, so the delta column
     collapses under the column codec even when absolute addresses are
     large. *)
  let deltas = Array.make (max len 1) 0 in
  let prev = ref 0 in
  for i = 0 to len - 1 do
    let a = Bigarray.Array1.unsafe_get b.W.addrs i in
    Array.unsafe_set deltas i (zigzag (a - !prev));
    prev := a
  done;
  put_col buf deltas len;
  put_colf buf ~get:(fun i -> Bigarray.Array1.unsafe_get b.W.sizes i) len;
  put_colf buf ~get:(fun i -> Bigarray.Array1.unsafe_get b.W.warps i) len;
  put_colf buf ~get:(fun i -> Bigarray.Array1.unsafe_get b.W.weights i) len;
  (* Write flags: constant for the whole batch in the common case, else
     one bit per record.  Nonzero flags all map to 1 either way. *)
  let first_write = len > 0 && b.W.writes.{0} <> 0 in
  let all_same = ref true in
  for i = 1 to len - 1 do
    if Bigarray.Array1.unsafe_get b.W.writes i <> 0 <> first_write then
      all_same := false
  done;
  if !all_same then begin
    put_u buf col_const;
    put_bool buf first_write
  end
  else begin
    put_u buf col_raw;
    let nbytes = (len + 7) / 8 in
    let bits = Bytes.make nbytes '\000' in
    for i = 0 to len - 1 do
      if Bigarray.Array1.unsafe_get b.W.writes i <> 0 then
        Bytes.set bits (i / 8)
          (Char.chr (Char.code (Bytes.get bits (i / 8)) lor (1 lsl (i mod 8))))
    done;
    Buffer.add_bytes buf bits
  end

let get_batch c =
  let region = get_u c in
  let chunk = get_u c in
  let pc = get_u c in
  let len = get_u c in
  if len > max_batch_len then corrupt "batch length %d exceeds limit" len;
  let module W = Gpusim.Warp in
  (* Columns decode straight into their final Bigarray storage and the
     batch adopts them zero-copy ([batch_of_columns]): replay hands the
     processor the very buffers the decoder filled. *)
  let addrs = W.alloc_int_col len in
  get_colf c ~set:(fun i v -> Bigarray.Array1.unsafe_set addrs i v) len;
  (* prefix-sum the zigzag deltas back into absolute addresses in place *)
  let prev = ref 0 in
  for i = 0 to len - 1 do
    prev := !prev + unzigzag (Bigarray.Array1.unsafe_get addrs i);
    Bigarray.Array1.unsafe_set addrs i !prev
  done;
  let sizes = W.alloc_size_col len in
  get_colf c ~set:(fun i v -> Bigarray.Array1.unsafe_set sizes i v) len;
  let warps = W.alloc_int_col len in
  get_colf c ~set:(fun i v -> Bigarray.Array1.unsafe_set warps i v) len;
  let weights = W.alloc_int_col len in
  get_colf c ~set:(fun i v -> Bigarray.Array1.unsafe_set weights i v) len;
  let writes = W.alloc_flag_col len in
  (match get_u c with
  | 3 (* const *) ->
      if len > 0 then Bigarray.Array1.fill writes (if get_bool c then 1 else 0)
      else ignore (get_bool c)
  | 0 (* raw bits *) ->
      let nbytes = (len + 7) / 8 in
      if c.c_pos + nbytes > c.c_limit then corrupt "truncated batch write-bits";
      if len > 0 then Bigarray.Array1.fill writes 0;
      (* byte-outer so the common all-zero (read-only) byte costs one test *)
      for j = 0 to nbytes - 1 do
        let byte = Char.code (String.unsafe_get c.c_s (c.c_pos + j)) in
        if byte <> 0 then
          for k = 0 to 7 do
            let i = (j * 8) + k in
            if i < len && byte land (1 lsl k) <> 0 then
              Bigarray.Array1.unsafe_set writes i 1
          done
      done;
      c.c_pos <- c.c_pos + nbytes
  | n -> corrupt "bad writes tag %d" n);
  W.batch_of_columns ~region ~chunk ~pc ~addrs ~sizes ~warps ~weights ~writes

let put_obj buf = function
  | Objmap.Tensor { ptr; bytes; tag } ->
      put_u buf 0;
      put_z buf ptr;
      put_u buf bytes;
      put_str buf tag
  | Objmap.Device_alloc { ptr; bytes; managed } ->
      put_u buf 1;
      put_z buf ptr;
      put_u buf bytes;
      put_bool buf managed
  | Objmap.Unknown addr ->
      put_u buf 2;
      put_z buf addr

let get_obj c =
  match get_u c with
  | 0 ->
      let ptr = get_z c in
      let bytes = get_u c in
      let tag = get_str c in
      Objmap.Tensor { ptr; bytes; tag }
  | 1 ->
      let ptr = get_z c in
      let bytes = get_u c in
      let managed = get_bool c in
      Objmap.Device_alloc { ptr; bytes; managed }
  | 2 -> Objmap.Unknown (get_z c)
  | n -> corrupt "bad object tag %d" n

(* Summary pair lists ([blocks], [coalesced]) are sorted by their first
   component: first components are stored as zigzag deltas from the
   previous entry, second components relative to their own first (for
   [coalesced] that turns an absolute interval end into its short
   length).  The [coalesced] intervals of a strided kernel are perfectly
   periodic — constant (start delta, length) repeated thousands of times
   — so the writer counts maximal constant runs and switches to a
   run-length form when it is smaller; a plain delta form remains for
   irregular data. *)
let pairs_plain = 0

let pairs_rle = 1

let count_pair_runs l =
  let runs = ref 0 and prev = ref 0 and step = ref 0 and b0 = ref 0 in
  let first = ref true in
  List.iter
    (fun (a, b) ->
      let d = a - !prev and r = b - a in
      prev := a;
      if !first || d <> !step || r <> !b0 then begin
        incr runs;
        first := false;
        step := d;
        b0 := r
      end)
    l;
  !runs

let put_pair_list buf l =
  let len = List.length l in
  put_u buf len;
  if len = 0 then ()
  else begin
    let runs = count_pair_runs l in
    (* A run costs one extra varint; worth it when runs are long. *)
    if 3 * runs <= 2 * len then begin
      put_u buf pairs_rle;
      let pending = ref 0 and prev = ref 0 and step = ref 0 and b0 = ref 0 in
      let flush () =
        if !pending > 0 then begin
          put_u buf !pending;
          put_z buf !step;
          put_z buf !b0
        end
      in
      List.iter
        (fun (a, b) ->
          let d = a - !prev and r = b - a in
          prev := a;
          if !pending > 0 && d = !step && r = !b0 then incr pending
          else begin
            flush ();
            pending := 1;
            step := d;
            b0 := r
          end)
        l;
      flush ()
    end
    else begin
      put_u buf pairs_plain;
      let prev = ref 0 in
      List.iter
        (fun (a, b) ->
          put_z buf (a - !prev);
          prev := a;
          put_z buf (b - a))
        l
    end
  end

let get_pair_list c =
  let n = get_u c in
  if n = 0 then []
  else begin
    let prev = ref 0 in
    match get_u c with
    | t when t = pairs_plain ->
        let rec go k acc =
          if k = 0 then List.rev acc
          else begin
            let a = !prev + get_z c in
            prev := a;
            let b = a + get_z c in
            go (k - 1) ((a, b) :: acc)
          end
        in
        go n []
    | t when t = pairs_rle ->
        let acc = ref [] in
        let remaining = ref n in
        while !remaining > 0 do
          let count = get_u c in
          if count = 0 || count > !remaining then corrupt "bad pair run %d" count;
          remaining := !remaining - count;
          let step = get_z c in
          let r = get_z c in
          for _ = 1 to count do
            prev := !prev + step;
            acc := (!prev, !prev + r) :: !acc
          done
        done;
        List.rev !acc
    | t -> corrupt "bad pair-list tag %d" t
  end

let put_summary buf (s : Devagg.summary) =
  put_u buf (List.length s.Devagg.objects);
  List.iter
    (fun (o, w) ->
      put_obj buf o;
      put_z buf w)
    s.Devagg.objects;
  put_pair_list buf s.Devagg.blocks;
  put_pair_list buf s.Devagg.coalesced;
  put_u buf s.Devagg.sampled_records;
  put_u buf s.Devagg.true_accesses;
  put_u buf s.Devagg.writes;
  put_f buf s.Devagg.est_rate

let get_summary c =
  let nobj = get_u c in
  let objects =
    List.init nobj (fun _ ->
        let o = get_obj c in
        let w = get_z c in
        (o, w))
  in
  let blocks = get_pair_list c in
  let coalesced = get_pair_list c in
  let sampled_records = get_u c in
  let true_accesses = get_u c in
  let writes = get_u c in
  let est_rate = get_f c in
  { Devagg.objects; blocks; coalesced; sampled_records; true_accesses; writes; est_rate }

let put_region buf (r : Event.region_summary) =
  put_z buf r.Event.base;
  put_u buf r.Event.extent;
  put_u buf r.Event.accesses;
  put_bool buf r.Event.written

let get_region c =
  let base = get_z c in
  let extent = get_u c in
  let accesses = get_u c in
  let written = get_bool c in
  { Event.base; extent; accesses; written }

let put_profile buf (p : Gpusim.Kernel.profile) =
  put_u buf p.Gpusim.Kernel.branches;
  put_u buf p.Gpusim.Kernel.divergent_branches;
  put_u buf p.Gpusim.Kernel.shared_accesses;
  put_u buf p.Gpusim.Kernel.bank_conflicts;
  put_f buf p.Gpusim.Kernel.barrier_stall_us;
  put_f buf p.Gpusim.Kernel.value_min;
  put_f buf p.Gpusim.Kernel.value_max;
  put_u buf p.Gpusim.Kernel.redundant_loads

let get_profile c =
  let branches = get_u c in
  let divergent_branches = get_u c in
  let shared_accesses = get_u c in
  let bank_conflicts = get_u c in
  let barrier_stall_us = get_f c in
  let value_min = get_f c in
  let value_max = get_f c in
  let redundant_loads = get_u c in
  {
    Gpusim.Kernel.branches;
    divergent_branches;
    shared_accesses;
    bank_conflicts;
    barrier_stall_us;
    value_min;
    value_max;
    redundant_loads;
  }

(* ------------------------------------------------------------------ *)
(* Event payloads                                                      *)
(* ------------------------------------------------------------------ *)

let put_payload it buf (p : Event.payload) =
  match p with
  | Event.Driver_call { name; phase } ->
      put_u buf 0;
      put_str buf name;
      put_api_phase buf phase
  | Event.Runtime_call { name; phase } ->
      put_u buf 1;
      put_str buf name;
      put_api_phase buf phase
  | Event.Kernel_launch { info; phase = `Begin } ->
      put_u buf 2;
      put_kernel it buf info;
      put_u buf 0
  | Event.Kernel_launch { info; phase = `End s } ->
      put_u buf 2;
      put_kernel it buf info;
      put_u buf 1;
      put_f buf s.Event.duration_us;
      put_u buf s.Event.true_accesses;
      put_u buf s.Event.faulted_pages
  | Event.Memory_copy { bytes; direction; stream } ->
      put_u buf 3;
      put_u buf bytes;
      (match direction with
      | `H2d -> put_u buf 0
      | `D2h -> put_u buf 1
      | `D2d -> put_u buf 2
      | `P2p d ->
          put_u buf 3;
          put_u buf d);
      put_u buf stream
  | Event.Memory_set { addr; bytes; value } ->
      put_u buf 4;
      put_z buf addr;
      put_u buf bytes;
      put_z buf value
  | Event.Memory_alloc { addr; bytes; managed } ->
      put_u buf 5;
      put_z buf addr;
      put_u buf bytes;
      put_bool buf managed
  | Event.Memory_free { addr; bytes } ->
      put_u buf 6;
      put_z buf addr;
      put_u buf bytes
  | Event.Synchronization { scope } ->
      put_u buf 7;
      (match scope with
      | `Device -> put_u buf 0
      | `Stream s ->
          put_u buf 1;
          put_u buf s)
  | Event.Global_access { kernel; access } ->
      put_u buf 8;
      put_kernel it buf kernel;
      put_access buf access
  | Event.Access_batch { kernel; batch } ->
      put_u buf 9;
      put_kernel it buf kernel;
      put_batch buf batch
  | Event.Device_summary { kernel; summary } ->
      put_u buf 10;
      put_kernel it buf kernel;
      put_summary buf summary
  | Event.Shared_access { kernel; access } ->
      put_u buf 11;
      put_kernel it buf kernel;
      put_access buf access
  | Event.Kernel_region { kernel; region } ->
      put_u buf 12;
      put_kernel it buf kernel;
      put_region buf region
  | Event.Barrier { kernel; count } ->
      put_u buf 13;
      put_kernel it buf kernel;
      put_u buf count
  | Event.Kernel_profile { kernel; profile } ->
      put_u buf 14;
      put_kernel it buf kernel;
      put_profile buf profile
  | Event.Operator { name; phase; seq } ->
      put_u buf 15;
      put_str buf name;
      put_api_phase buf phase;
      put_u buf seq
  | Event.Tensor_alloc { ptr; bytes; pool_allocated; pool_reserved; tag } ->
      put_u buf 16;
      put_z buf ptr;
      put_u buf bytes;
      put_u buf pool_allocated;
      put_u buf pool_reserved;
      put_str buf tag
  | Event.Tensor_free { ptr; bytes; pool_allocated; pool_reserved } ->
      put_u buf 17;
      put_z buf ptr;
      put_u buf bytes;
      put_u buf pool_allocated;
      put_u buf pool_reserved
  | Event.Annotation { label; phase } ->
      put_u buf 18;
      put_str buf label;
      put_u buf (match phase with `Start -> 0 | `End -> 1)
  | Event.Tool_quarantined { tool; failures } ->
      put_u buf 19;
      put_str buf tool;
      put_u buf failures

let get_payload ex c : Event.payload =
  match get_u c with
  | 0 ->
      let name = get_str c in
      let phase = get_api_phase c in
      Event.Driver_call { name; phase }
  | 1 ->
      let name = get_str c in
      let phase = get_api_phase c in
      Event.Runtime_call { name; phase }
  | 2 -> (
      let info = get_kernel ex c in
      match get_u c with
      | 0 -> Event.Kernel_launch { info; phase = `Begin }
      | 1 ->
          let duration_us = get_f c in
          let true_accesses = get_u c in
          let faulted_pages = get_u c in
          Event.Kernel_launch
            { info; phase = `End { Event.duration_us; true_accesses; faulted_pages } }
      | n -> corrupt "bad launch phase %d" n)
  | 3 ->
      let bytes = get_u c in
      let direction =
        match get_u c with
        | 0 -> `H2d
        | 1 -> `D2h
        | 2 -> `D2d
        | 3 -> `P2p (get_u c)
        | n -> corrupt "bad copy direction %d" n
      in
      let stream = get_u c in
      Event.Memory_copy { bytes; direction; stream }
  | 4 ->
      let addr = get_z c in
      let bytes = get_u c in
      let value = get_z c in
      Event.Memory_set { addr; bytes; value }
  | 5 ->
      let addr = get_z c in
      let bytes = get_u c in
      let managed = get_bool c in
      Event.Memory_alloc { addr; bytes; managed }
  | 6 ->
      let addr = get_z c in
      let bytes = get_u c in
      Event.Memory_free { addr; bytes }
  | 7 ->
      let scope =
        match get_u c with
        | 0 -> `Device
        | 1 -> `Stream (get_u c)
        | n -> corrupt "bad sync scope %d" n
      in
      Event.Synchronization { scope }
  | 8 ->
      let kernel = get_kernel ex c in
      let access = get_access c in
      Event.Global_access { kernel; access }
  | 9 ->
      let kernel = get_kernel ex c in
      let batch = get_batch c in
      Event.Access_batch { kernel; batch }
  | 10 ->
      let kernel = get_kernel ex c in
      let summary = get_summary c in
      Event.Device_summary { kernel; summary }
  | 11 ->
      let kernel = get_kernel ex c in
      let access = get_access c in
      Event.Shared_access { kernel; access }
  | 12 ->
      let kernel = get_kernel ex c in
      let region = get_region c in
      Event.Kernel_region { kernel; region }
  | 13 ->
      let kernel = get_kernel ex c in
      let count = get_u c in
      Event.Barrier { kernel; count }
  | 14 ->
      let kernel = get_kernel ex c in
      let profile = get_profile c in
      Event.Kernel_profile { kernel; profile }
  | 15 ->
      let name = get_str c in
      let phase = get_api_phase c in
      let seq = get_u c in
      Event.Operator { name; phase; seq }
  | 16 ->
      let ptr = get_z c in
      let bytes = get_u c in
      let pool_allocated = get_u c in
      let pool_reserved = get_u c in
      let tag = get_str c in
      Event.Tensor_alloc { ptr; bytes; pool_allocated; pool_reserved; tag }
  | 17 ->
      let ptr = get_z c in
      let bytes = get_u c in
      let pool_allocated = get_u c in
      let pool_reserved = get_u c in
      Event.Tensor_free { ptr; bytes; pool_allocated; pool_reserved }
  | 18 ->
      let label = get_str c in
      let phase =
        match get_u c with
        | 0 -> `Start
        | 1 -> `End
        | n -> corrupt "bad annotation phase %d" n
      in
      Event.Annotation { label; phase }
  | 19 ->
      let tool = get_str c in
      let failures = get_u c in
      Event.Tool_quarantined { tool; failures }
  | n -> corrupt "unknown payload tag %d" n

(* ------------------------------------------------------------------ *)
(* Submission ops                                                      *)
(* ------------------------------------------------------------------ *)

let put_op it buf ~time_us (op : Processor.sink_op) =
  (match op with
  | Processor.Sk_event _ -> put_u buf 0
  | Processor.Sk_access _ -> put_u buf 1
  | Processor.Sk_batch _ -> put_u buf 2
  | Processor.Sk_region _ -> put_u buf 3
  | Processor.Sk_flush_summary _ -> put_u buf 4
  | Processor.Sk_flush_parallel _ -> put_u buf 5
  | Processor.Sk_profile _ -> put_u buf 6
  | Processor.Sk_rate _ -> put_u buf 7);
  put_f buf time_us;
  match op with
  | Processor.Sk_event p -> put_payload it buf p
  | Processor.Sk_access (k, a) ->
      put_kernel it buf k;
      put_access buf a
  | Processor.Sk_batch (k, b) ->
      put_kernel it buf k;
      put_batch buf b
  | Processor.Sk_region (k, r) ->
      put_kernel it buf k;
      put_region buf r
  | Processor.Sk_flush_summary k | Processor.Sk_flush_parallel k ->
      put_kernel it buf k
  | Processor.Sk_profile (k, p) ->
      put_kernel it buf k;
      put_profile buf p
  | Processor.Sk_rate { sr_rate; sr_grid_id } ->
      put_f buf sr_rate;
      put_u buf sr_grid_id

let get_op ex c =
  let tag = get_u c in
  let time_us = get_f c in
  let op =
    match tag with
    | 0 -> Processor.Sk_event (get_payload ex c)
    | 1 ->
        let k = get_kernel ex c in
        let a = get_access c in
        Processor.Sk_access (k, a)
    | 2 ->
        let k = get_kernel ex c in
        let b = get_batch c in
        Processor.Sk_batch (k, b)
    | 3 ->
        let k = get_kernel ex c in
        let r = get_region c in
        Processor.Sk_region (k, r)
    | 4 -> Processor.Sk_flush_summary (get_kernel ex c)
    | 5 -> Processor.Sk_flush_parallel (get_kernel ex c)
    | 6 ->
        let k = get_kernel ex c in
        let p = get_profile c in
        Processor.Sk_profile (k, p)
    | 7 ->
        let sr_rate = get_f c in
        let sr_grid_id = get_u c in
        Processor.Sk_rate { sr_rate; sr_grid_id }
    | n -> corrupt "unknown op tag %d" n
  in
  (time_us, op)

let op_kind_name = function
  | Processor.Sk_event p -> Event.kind_name p
  | Processor.Sk_access _ -> "global_access"
  | Processor.Sk_batch _ -> "access_batch"
  | Processor.Sk_region _ -> "kernel_region"
  | Processor.Sk_flush_summary _ -> "kernel_flush"
  | Processor.Sk_flush_parallel _ -> "parallel_flush"
  | Processor.Sk_profile _ -> "kernel_profile"
  | Processor.Sk_rate _ -> "sample_rate"

let op_records = function
  | Processor.Sk_access _ -> 1
  | Processor.Sk_batch (_, b) -> Gpusim.Warp.batch_len b
  | Processor.Sk_event (Event.Global_access _) -> 1
  | Processor.Sk_event (Event.Access_batch { batch; _ }) ->
      Gpusim.Warp.batch_len batch
  | _ -> 0

(* Standalone payload codec for property tests and ad-hoc tooling: a
   fresh interning context per value, so the encoding is self-contained. *)

let payload_to_string p =
  let buf = Buffer.create 128 in
  put_payload (intern ()) buf p;
  Buffer.contents buf

let op_to_string ~time_us op =
  let buf = Buffer.create 128 in
  put_op (intern ()) buf ~time_us op;
  Buffer.contents buf

let payload_of_string s =
  let c = cursor s in
  let p = get_payload (extern ()) c in
  if not (at_end c) then corrupt "trailing bytes after payload";
  p

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = {
  w_oc : out_channel;
  w_buf : Buffer.t;
  w_chunk_bytes : int;
  mutable w_intern : intern;
  mutable w_chunk_ops : int;
  mutable w_ops : int;
  mutable w_bytes : int;
  mutable w_chunks : int;
  mutable w_closed : bool;
}

let create_writer ?chunk_bytes ?(meta = "") ~device path =
  let chunk_bytes =
    match chunk_bytes with Some b when b > 0 -> b | _ -> Config.trace_chunk_bytes ()
  in
  let oc = open_out_bin path in
  let hdr = Buffer.create 64 in
  Buffer.add_string hdr magic;
  Buffer.add_char hdr (Char.chr version);
  put_u hdr device;
  put_str hdr meta;
  Buffer.output_buffer oc hdr;
  {
    w_oc = oc;
    w_buf = Buffer.create (chunk_bytes + 4096);
    w_chunk_bytes = chunk_bytes;
    w_intern = intern ();
    w_chunk_ops = 0;
    w_ops = 0;
    w_bytes = Buffer.length hdr;
    w_chunks = 0;
    w_closed = false;
  }

let flush_chunk w =
  if w.w_chunk_ops > 0 then begin
    let payload = Buffer.contents w.w_buf in
    let frame = Buffer.create 16 in
    put_u frame (String.length payload);
    put_u frame w.w_chunk_ops;
    Buffer.add_int32_le frame (Int32.of_int (Pasta_util.Crc32.string payload));
    Buffer.output_buffer w.w_oc frame;
    output_string w.w_oc payload;
    w.w_bytes <- w.w_bytes + Buffer.length frame + String.length payload;
    w.w_chunks <- w.w_chunks + 1;
    Buffer.clear w.w_buf;
    w.w_chunk_ops <- 0;
    w.w_intern <- intern ()
  end

let write_op w ~time_us op =
  if w.w_closed then invalid_arg "Ptrace.write_op: writer is closed";
  put_op w.w_intern w.w_buf ~time_us op;
  w.w_chunk_ops <- w.w_chunk_ops + 1;
  w.w_ops <- w.w_ops + 1;
  if Buffer.length w.w_buf >= w.w_chunk_bytes then flush_chunk w

let close_writer w =
  if not w.w_closed then begin
    flush_chunk w;
    close_out w.w_oc;
    w.w_closed <- true
  end

let writer_ops w = w.w_ops
let writer_bytes w = w.w_bytes + Buffer.length w.w_buf
let writer_chunks w = w.w_chunks

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type mode = Strict | Tolerant

type header = { h_version : int; h_device : int; h_meta : string }

type read_stats = {
  mutable r_ops : int;
  mutable r_chunks : int;
  mutable r_chunks_skipped : int;
}

let input_u ic =
  let n = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    let b = Char.code (input_char ic) in
    if !shift > 56 then corrupt "varint too long";
    n := !n lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  !n

let read_header ic =
  let m = really_input_string ic (String.length magic) in
  if m <> magic then corrupt "bad magic %S (not a .ptrace file)" m;
  let v = Char.code (input_char ic) in
  if v <> version then corrupt "unsupported .ptrace version %d (expected %d)" v version;
  let device = input_u ic in
  let meta_len = input_u ic in
  let meta = really_input_string ic meta_len in
  { h_version = v; h_device = device; h_meta = meta }

let read_header_of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> try read_header ic with End_of_file -> corrupt "truncated header")

(* Verify and decode one chunk payload to its ops, in op order.  A chunk
   that fails the CRC, decodes badly or misses its declared op count
   yields [Error] as a unit — none of its ops escape, so a corrupt chunk
   is all-or-nothing for the caller. *)
let decode_chunk ~index ~declared_ops ~expect payload =
  if Pasta_util.Crc32.string payload <> expect then
    Error (Printf.sprintf "chunk %d: CRC mismatch" index)
  else
    match
      let ex = extern () in
      let c = cursor payload in
      let ops = ref [] in
      while not (at_end c) do
        let time_us, op = get_op ex c in
        ops := (time_us, op) :: !ops
      done;
      !ops
    with
    | exception Corrupt msg -> Error (Printf.sprintf "chunk %d: %s" index msg)
    | rev_ops ->
        let decoded_ops = List.length rev_ops in
        if decoded_ops <> declared_ops then
          Error
            (Printf.sprintf
               "chunk %d: framing mismatch (%d ops declared, %d decoded)" index
               declared_ops decoded_ops)
        else Ok (Array.of_list (List.rev rev_ops))

(* Stream the chunks of [path], calling [f] on every op of every intact
   chunk.  Strict mode raises {!Corrupt} on the first CRC mismatch,
   framing violation or truncation; tolerant mode counts the chunk as
   skipped and moves on (a truncated tail ends the file).

   Chunks are self-contained (per-chunk interning), so when a pool is
   supplied they are CRC-checked and decoded in parallel, a bounded
   window at a time; [f] is still applied strictly in chunk order. *)
let read_file ?(mode = Strict) ?pool path ~f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        try read_header ic
        with End_of_file -> corrupt "truncated header"
      in
      let stats = { r_ops = 0; r_chunks = 0; r_chunks_skipped = 0 } in
      let fail_or_skip msg =
        match mode with
        | Strict -> corrupt "%s" msg
        | Tolerant -> stats.r_chunks_skipped <- stats.r_chunks_skipped + 1
      in
      let chunk_index = ref 0 in
      let next_frame () =
        match input_u ic with
        | exception End_of_file -> `Eof
        | payload_len -> (
            match
              let declared_ops = input_u ic in
              let crc_bytes = really_input_string ic 4 in
              let payload = really_input_string ic payload_len in
              (declared_ops, crc_bytes, payload)
            with
            | exception End_of_file -> `Truncated
            | declared_ops, crc_bytes, payload ->
                let expect =
                  Int32.to_int (String.get_int32_le crc_bytes 0) land 0xFFFFFFFF
                in
                `Chunk (declared_ops, expect, payload))
      in
      let apply = function
        | Ok ops ->
            Array.iter (fun (time_us, op) -> f ~time_us op) ops;
            stats.r_ops <- stats.r_ops + Array.length ops;
            stats.r_chunks <- stats.r_chunks + 1
        | Error msg -> fail_or_skip msg
      in
      let eof = ref false in
      (match pool with
      | Some p when Pasta_util.Domain_pool.size p > 1 ->
          let window = 4 * Pasta_util.Domain_pool.size p in
          (* a truncated tail is reported only after the intact chunks
             read before it have been applied, as in the serial path *)
          let tail_failure = ref None in
          while not !eof do
            let frames = ref [] and nframes = ref 0 in
            while (not !eof) && !nframes < window do
              match next_frame () with
              | `Eof -> eof := true
              | `Truncated ->
                  tail_failure := Some "truncated chunk";
                  eof := true
              | `Chunk (declared_ops, expect, payload) ->
                  frames := (!chunk_index, declared_ops, expect, payload) :: !frames;
                  incr chunk_index;
                  incr nframes
            done;
            let frames = Array.of_list (List.rev !frames) in
            Pasta_util.Domain_pool.map p (Array.length frames) (fun i ->
                let index, declared_ops, expect, payload = frames.(i) in
                decode_chunk ~index ~declared_ops ~expect payload)
            |> Array.iter apply
          done;
          Option.iter fail_or_skip !tail_failure
      | _ ->
          while not !eof do
            match next_frame () with
            | `Eof -> eof := true
            | `Truncated ->
                fail_or_skip "truncated chunk";
                eof := true
            | `Chunk (declared_ops, expect, payload) ->
                apply
                  (decode_chunk ~index:!chunk_index ~declared_ops ~expect
                     payload);
                incr chunk_index
          done);
      (header, stats))
