(** Trace capture: stream a live session's submission-level op stream to
    a [.ptrace] file.

    A capture installs itself as the processor's sink, so it observes
    every submission — coarse events, packed access batches, region
    aggregates, kernel-end flush points — in arrival order, before range
    filtering and buffering.  Memory stays bounded: ops are encoded into
    a chunk buffer that is flushed to disk whenever it reaches the chunk
    size ({!Config.trace_chunk_bytes} by default).

    The capture keeps the processor's [events_recorded],
    [bytes_written] and [chunks] stats current, so session health
    reports cover it. *)

type t

val start : ?chunk_bytes:int -> ?meta:string -> Processor.t -> string -> t
(** [start proc path] opens [path] and taps [proc].  At most one sink
    per processor: starting a capture replaces any existing sink. *)

val finish : t -> unit
(** Detach the sink, flush the final chunk and close the file.
    Idempotent. *)

val ops : t -> int
(** Submission ops recorded so far. *)

val bytes : t -> int
val chunks : t -> int

val passthrough : unit -> Tool.t
(** A record-only tool: requests [Cpu_sanitizer] instrumentation with
    batch delivery and does nothing with it, so [accelprof record] can
    capture a fine-grained trace without running an analysis. *)
