(** The PASTA event processor (paper §III-B): the dispatch and
    preprocessing layer between the event handler and the tools.

    It maintains the memory-object registry from the event stream, applies
    the range filter, enriches fine-grained data (resolving raw addresses
    to objects), and routes each event to the active tool's callbacks.
    For GPU-accelerated analysis it accumulates per-kernel region
    aggregates and flushes them as object-level summaries when the kernel
    completes.

    Every tool callback runs under a {!Guard} circuit breaker — a raising
    tool is counted, eventually quarantined, and never takes the workload
    down.  Fine-grained access records flow through a bounded
    {!Pasta_util.Ring_buffer} with a configurable overflow policy; drops
    and stalls are accounted in the processor's metric registry.

    All pipeline counters live in a per-processor {!Pasta_util.Metric}
    registry ({!metrics}); {!stats} is a snapshot rebuilt from it, kept
    for callers and health reports that read the record fields. *)

type stats = {
  mutable events_seen : int;
  mutable events_dispatched : int;
  mutable events_suppressed : int;
      (** events withheld while the tool was quarantined *)
  mutable kernels_seen : int;
  mutable summaries_flushed : int;
  mutable tool_failures : int;  (** tool-callback exceptions caught *)
  callback_failures : (string, int) Hashtbl.t;
      (** per-callback failure counts, keyed by callback name *)
  mutable records_dropped : int;
      (** fine-grained records lost to buffer overflow *)
  mutable records_buffered_peak : int;
      (** bounded-buffer high-water mark, in records (a batch counts its
          length) *)
  mutable buffer_stalls : int;
      (** producer stalls under the [Block] overflow policy *)
  mutable accesses_filtered : int;
      (** access records counted in [events_seen] but withheld from the
          tool by the range filter; [events_seen = delivered + dropped +
          filtered + buffered] for the access path *)
  mutable batches_delivered : int;
      (** packed batches handed to a batch-aware tool *)
  mutable objmap_memo_hits : int;  (** {!Objmap} resolve-memo hits *)
  mutable objmap_memo_misses : int;
  mutable events_recorded : int;
      (** submission-level ops written by an attached trace capture *)
  mutable bytes_written : int;  (** bytes the capture has flushed to disk *)
  mutable chunks : int;  (** trace chunks written (capture) or read (replay) *)
  mutable chunks_skipped : int;
      (** corrupt chunks skipped by a tolerant replay *)
  mutable replay_events : int;
      (** submission-level ops re-driven from a recorded trace *)
}

type sink_op =
  | Sk_event of Event.payload
  | Sk_access of Event.kernel_info * Event.mem_access
  | Sk_batch of Event.kernel_info * Gpusim.Warp.batch
  | Sk_region of Event.kernel_info * Event.region_summary
  | Sk_flush_summary of Event.kernel_info
  | Sk_flush_parallel of Event.kernel_info
  | Sk_profile of Event.kernel_info * Gpusim.Kernel.profile
  | Sk_rate of { sr_rate : float; sr_grid_id : int }
      (** Submission-level operations, one constructor per processor entry
          point.  A sink sees every submission in arrival order, before
          range filtering and buffering — a recorded op stream re-driven
          through the same entry points reproduces the exact callback
          sequence the live tool saw.  [Sk_rate] records an effective
          sampling-rate change at the launch it first applies to; the
          implicit initial rate is 1.0, so fixed rate-1.0 runs record no
          such op and their op streams are unchanged. *)

type t

val create :
  ?range:Range.t ->
  ?buffer_capacity:int ->
  ?overflow_policy:Pasta_util.Ring_buffer.overflow ->
  device:int ->
  unit ->
  t
(** [buffer_capacity] and [overflow_policy] default to the
    {!Config.buffer_capacity} / {!Config.overflow_policy} knobs. *)

val set_tool : t -> Tool.t -> unit
(** Installs the tool behind a fresh circuit breaker configured from the
    guard knobs. *)

val clear_tool : t -> unit
val tool : t -> Tool.t option
val guard : t -> Guard.t option
(** The active tool's circuit breaker, for health inspection. *)

val objmap : t -> Objmap.t
val range : t -> Range.t

val device : t -> int
(** The device id this processor stamps on dispatched events. *)

val stats : t -> stats
(** Snapshot of the metric registry in the legacy record shape; the objmap
    memo fields (and their metrics) are refreshed on each call.  Mutating
    the returned record does not affect the registry. *)

val metrics : t -> Pasta_util.Metric.t
(** The processor's metric registry — the single source of truth for every
    pipeline counter, exportable via {!Telemetry.prometheus}.  Every series
    carries a [("device", "<id>")] label ({!metric_labels}), so fleet-wide
    expositions keep per-device resolution.  Capture and replay resolve
    their counter handles from it at attach time (find-or-create by name
    and device labels), so the names below are part of the stable surface:
    [pasta_events_recorded], [pasta_bytes_written], [pasta_trace_chunks],
    [pasta_trace_chunks_skipped], [pasta_replay_events]. *)

val metric_labels : t -> (string * string) list
(** The label set every series in {!metrics} carries:
    [[("device", string_of_int (device t))]].  Lookups into the registry
    (capture, replay, tests) must pass these labels or they will
    find-or-create a parallel unlabeled series. *)

val set_pool : t -> Pasta_util.Domain_pool.t -> unit
(** Install a domain pool for parallel kernel-end aggregation
    ([Gpu_parallel] mode).  Without one, shards aggregate inline — same
    results, serially. *)

val clear_pool : t -> unit

val set_sink : t -> (time_us:float -> sink_op -> unit) -> unit
(** Install a trace-capture tap.  At most one sink is active; the sink
    must not call back into the processor. *)

val clear_sink : t -> unit

val incidents : t -> Event.t list
(** Supervision incidents ({!Event.Tool_quarantined} so far) in emission
    order. *)

val buffer_capacity : t -> int
val overflow_policy : t -> Pasta_util.Ring_buffer.overflow

val submit : t -> time_us:float -> Event.payload -> unit
(** Feed one normalized event.  Registry updates happen regardless of the
    range filter; tool dispatch respects it.  A kernel-end event first
    drains the bounded record buffer so every record of the finishing
    kernel reaches the tool before its [on_kernel_end]. *)

val submit_region :
  t -> Event.kernel_info -> base:int -> extent:int -> accesses:int -> written:bool -> unit
(** Accumulate a device-side region aggregate for the kernel currently
    executing (GPU-accelerated mode). *)

val flush_kernel_summary : t -> time_us:float -> Event.kernel_info -> unit
(** Resolve the accumulated regions to objects, aggregate per object, emit
    [Kernel_region] events and call the tool's [on_mem_summary]. *)

val submit_access : t -> time_us:float -> Event.kernel_info -> Event.mem_access -> unit
(** Feed one host-analyzed trace record (CPU modes).  In-range records
    enter the bounded buffer and are delivered at the next kernel-end (or
    {!flush_records}); the overflow policy decides what happens when the
    producer outruns the drain points. *)

val submit_access_batch :
  t -> time_us:float -> Event.kernel_info -> Gpusim.Warp.batch -> unit
(** Feed one packed record batch.  Counts every record in [events_seen];
    in-range batches enter the bounded buffer whole.  At delivery a tool
    with [on_access_batch] receives the batch as-is (one {!Event.Access_batch}
    event); any other tool gets the legacy per-record stream — one
    [Global_access] event and [on_access] call per record, in batch
    order. *)

val flush_parallel_summary : t -> time_us:float -> Event.kernel_info -> unit
(** Kernel-end reduction for [Gpu_parallel] tools: drain the finishing
    kernel's batches, aggregate shards (on the installed pool when
    present), merge deterministically and dispatch one
    {!Event.Device_summary} plus the tool's [on_device_summary].  Buffered
    items belonging to other kernels are delivered normally.  The merged
    aggregate is also tapped to the sink (as an [Sk_event] carrying the
    {!Event.Device_summary} payload), so a trace stores each flush's
    result right after its marker and replay need not aggregate again. *)

val submit_device_summary :
  t -> time_us:float -> Event.kernel_info -> Devagg.summary -> unit
(** Feed an already-computed device aggregate: dispatch the
    {!Event.Device_summary} unified event and the tool's
    [on_device_summary], subject to range filtering.  Replay uses this to
    re-drive recorded aggregates byte-identically. *)

val flush_parallel_drop : t -> time_us:float -> Event.kernel_info -> unit
(** Replay-side counterpart of {!flush_parallel_summary}: drain the
    finishing kernel's buffered batches without aggregating them
    (delivering other kernels' buffered items normally).  The aggregate
    this flush produced live is recorded in the trace and re-driven via
    {!submit_device_summary}. *)

val flush_records : t -> unit
(** Drain the bounded record buffer to the tool now. *)

val note_rate : t -> time_us:float -> grid_id:int -> float -> unit
(** Record that fine-grained generation runs at the given sampling rate
    from launch [grid_id] on.  Taps an {!sink_op.Sk_rate} op (so the rate
    schedule lands in captures and re-recording a replay reproduces it),
    updates the [pasta_sample_rate] gauge and stamps subsequent
    {!flush_parallel_summary} merges with the rate as
    {!Devagg.summary.est_rate}.  Callers emit it only when the effective
    rate changes; the implicit initial rate is 1.0. *)

val current_sample_rate : t -> float
(** The most recently noted effective sampling rate (1.0 initially). *)

val submit_profile :
  t -> time_us:float -> Event.kernel_info -> Gpusim.Kernel.profile -> unit
(** Feed a per-kernel behaviour profile (instruction-level mode);
    dispatched as a {!Event.Kernel_profile} unified event and to the
    tool's [on_kernel_profile] when in range. *)

val annot_start : t -> time_us:float -> string -> unit
val annot_end : t -> time_us:float -> string -> unit
(** Range annotations, also forwarded as [Annotation] events stamped with
    the simulated time at which they happened. *)
