(** Framework self-observability: spans, self-time attribution, metrics and
    exporters — PASTA measuring PASTA (the paper's low-overhead claim made
    checkable on our own pipeline).

    The span layer is a stack discipline per domain: every wall-clock
    interval between two instrumentation points is charged to whichever
    span was on top while it elapsed (the empty stack charges to the
    simulate/workload root).  Per-layer and per-tool self times therefore
    sum {e exactly} to the wall time of the measurement window.

    Levels ([ACCEL_PROF_TELEMETRY]):
    - [Off] — every instrumentation point is a single int load.
    - [Basic] (default) — self-time attribution only: two clock reads and a
      few field writes per span, no allocation.
    - [Full] — additionally records finished spans into a bounded cyclic
      store, feeds per-tool latency histograms and samples ring-buffer
      occupancy, for Chrome-trace / Prometheus export.

    Unbalanced begin/end pairs are counted ({!mismatches}), never raised:
    instrumentation must not be able to take the pipeline down. *)

type level = Off | Basic | Full

val level : unit -> level
val set_level : level -> unit

val refresh_level : unit -> unit
(** Re-read {!Config.telemetry} (sessions call this on attach). *)

val level_name : level -> string
val enabled : unit -> bool

(** Pipeline layers a span can belong to.  [Simulate] is the root and never
    pushed explicitly. *)
type cat =
  | Simulate
  | Handler
  | Dispatch
  | Ring
  | Devagg
  | Capture_io
  | Replay_io
  | Export
  | Fleet

val begin_span : cat -> string -> unit
(** [begin_span cat name]: push a span.  [name] only matters in [Full] mode
    (it labels the exported trace event); pass a static string so the basic
    path stays allocation-free. *)

val end_span : cat -> unit

(** {2 Tool spans}

    Per-tool attribution uses preregistered slots so the per-callback path
    does no hashing; {!Guard} holds its tool's slot and wraps every
    callback, which is what attributes quarantine-provoking (raising)
    callbacks to the tool that caused them. *)

type tool_slot

val tool_slot : string -> tool_slot
(** Find-or-create the slot for a tool name. *)

val begin_tool : tool_slot -> unit
val end_tool : tool_slot -> unit

val note_sim_us : float -> unit
(** Mirror of the simulated clock, stamped onto spans; fed by the
    {!Gpusim.Clock} observer a session installs (replay feeds recorded
    timestamps instead). *)

val set_device : int -> unit
(** Device id the calling domain's spans are attributed to ([-1] none).
    Sessions set it on attach and clear it on detach; fleet shards set it
    per attempt.  Every span recorded afterwards carries the id
    ([Span_buf.sp_dev], the ["device"] arg of exported trace events). *)

val current_device : unit -> int

val sample_ring_occupancy : int -> unit
(** Record the bounded record-buffer occupancy for the exported counter
    track ([Full] mode only; a no-op otherwise). *)

val reset : unit -> unit
(** Start a fresh measurement window: zero attribution state, tool slots,
    the telemetry registry, the span store and occupancy samples. *)

(** {2 Overhead attribution} *)

type row = {
  row_label : string;  (** layer description or ["tool:<name>"] *)
  row_self_us : float;
  row_count : int;  (** completed spans (layer) or callback calls (tool) *)
  row_minor_words : float;
      (** Gc minor words allocated while this row was the innermost open
          span — attributed under the same stack discipline as self time.
          Sampled only at level [Full] (the counter read costs time and
          allocates, which Basic cannot afford on per-record spans);
          reads 0 at [Basic]. *)
  row_major_words : float;  (** Gc major (heap) words, same discipline. *)
}

type attribution = { at_total_us : float; at_rows : row list }

val overhead_snapshot : unit -> float * float
(** [(window_total_us, overhead_us)] for the calling domain: the wall time
    of the measurement window so far and the part of it {e not} charged to
    the simulate/workload root — the framework's cumulative self time.
    The sampling governor ({!Sampler}) diffs successive snapshots for its
    per-kernel feedback.  [(0., 0.)] at level [Off], where nothing is
    attributed (governors must detect that case via {!level}, not infer it
    from zeros). *)

val attribution : unit -> attribution
(** Snapshot for the calling domain (the coordinator; it blocks while the
    pool maps, so worker time lands in the devagg row).  The rows' self
    times sum exactly to [at_total_us] minus only the simulate row when the
    stack discipline was respected — in practice: rows including the
    simulate root sum to the total by construction. *)

val pp_attribution : Format.formatter -> attribution -> unit

(** {2 Exporters} *)

val registry : unit -> Pasta_util.Metric.t
(** Telemetry's own metric registry (tool latency histograms, span/mismatch
    counters, per-layer gauges after {!prometheus}). *)

val chrome_events : unit -> string list
(** Rendered Chrome trace-event JSON objects: one ["X"] event per stored
    span (wall-clock timeline, pid 1000, with [sim_t0_us]/[sim_t1_us]
    args bridging to the simulated timeline) plus a ["C"] counter track of
    ring-buffer occupancy.  Splice into {!Trace_export.to_json}'s [extra]
    for a combined workload + telemetry trace. *)

val write_chrome_trace : string -> unit
(** Standalone [{"traceEvents":[...]}] file from {!chrome_events}. *)

val prometheus : ?extra:Pasta_util.Metric.t list -> unit -> string
(** Text exposition of [extra @ [registry ()]] (pass a processor's registry
    to include pipeline counters), after folding attribution state into
    gauges. *)

val write_prometheus : ?extra:Pasta_util.Metric.t list -> string -> unit

(** {2 Introspection (tests)} *)

val depth : unit -> int
(** Current nesting depth of the calling domain's span stack. *)

val mismatches : unit -> int
val spans_recorded : unit -> int
val span_buffer : unit -> Pasta_util.Span_buf.t
