type fine_grained =
  | No_fine_grained
  | Gpu_accelerated
  | Gpu_parallel
  | Cpu_sanitizer
  | Cpu_nvbit
  | Instruction_level

let fine_grained_to_string = function
  | No_fine_grained -> "none"
  | Gpu_accelerated -> "gpu-accelerated"
  | Gpu_parallel -> "gpu-parallel"
  | Cpu_sanitizer -> "cpu-sanitizer"
  | Cpu_nvbit -> "cpu-nvbit"
  | Instruction_level -> "instruction-level"

type t = {
  name : string;
  fine_grained : fine_grained;
  on_event : Event.t -> unit;
  on_kernel_begin : Event.kernel_info -> unit;
  on_kernel_end : Event.kernel_info -> Event.kernel_end_summary -> unit;
  on_mem_summary : Event.kernel_info -> (Objmap.obj * int) list -> unit;
  on_device_summary : Event.kernel_info -> Devagg.summary -> unit;
  on_access : Event.kernel_info -> Event.mem_access -> unit;
  on_access_batch : (Event.kernel_info -> Gpusim.Warp.batch -> unit) option;
  on_access_columns : (Event.kernel_info -> Gpusim.Warp.batch -> unit) option;
  on_kernel_profile : Event.kernel_info -> Gpusim.Kernel.profile -> unit;
  on_operator : string -> Event.api_phase -> int -> unit;
  on_tensor : [ `Alloc of int * int * string | `Free of int * int ] -> unit;
  report : Format.formatter -> unit;
}

let default ?(fine_grained = No_fine_grained) name =
  {
    name;
    fine_grained;
    on_event = ignore;
    on_kernel_begin = ignore;
    on_kernel_end = (fun _ _ -> ());
    on_mem_summary = (fun _ _ -> ());
    on_device_summary = (fun _ _ -> ());
    on_access = (fun _ _ -> ());
    on_access_batch = None;
    on_access_columns = None;
    on_kernel_profile = (fun _ _ -> ());
    on_operator = (fun _ _ _ -> ());
    on_tensor = ignore;
    report = (fun ppf -> Format.fprintf ppf "tool %s: no report@." name);
  }
