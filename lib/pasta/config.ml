let overrides : (string, string) Hashtbl.t = Hashtbl.create 8

let set k v = Hashtbl.replace overrides k v
let unset k = Hashtbl.remove overrides k
let clear_overrides () = Hashtbl.reset overrides

let get k =
  match Hashtbl.find_opt overrides k with
  | Some v -> Some v
  | None -> Sys.getenv_opt k

let get_int k = Option.bind (get k) int_of_string_opt

let tool_name () = get "PASTA_TOOL"
let start_grid_id () = get_int "START_GRID_ID"
let end_grid_id () = get_int "END_GRID_ID"
let sample_cap () = get_int "ACCEL_PROF_ENV_SAMPLE_RATE"

(* --- Adaptive sampling knobs --- *)

let sampling_rate () =
  match Option.bind (get "ACCEL_PROF_SAMPLE_RATE") float_of_string_opt with
  | Some r when r > 0.0 && r <= 1.0 && Float.is_finite r -> Some r
  | _ -> None

(* Accepts "5%" (percent of workload time) or "0.05" (fraction). *)
let parse_budget s =
  let s = String.trim s in
  if s = "" then None
  else
    let frac =
      if s.[String.length s - 1] = '%' then
        Option.map
          (fun p -> p /. 100.0)
          (float_of_string_opt (String.sub s 0 (String.length s - 1)))
      else float_of_string_opt s
    in
    match frac with
    | Some f when f > 0.0 && f <= 1.0 && Float.is_finite f -> Some f
    | _ -> None

let overhead_budget () = Option.bind (get "ACCEL_PROF_OVERHEAD_BUDGET") parse_budget

(* --- Robustness / supervision knobs --- *)

let guard_threshold () =
  match get_int "ACCEL_PROF_GUARD_THRESHOLD" with
  | Some n when n > 0 -> n
  | _ -> 10

let guard_cooldown_kernels () =
  match get_int "ACCEL_PROF_GUARD_COOLDOWN_KERNELS" with
  | Some n when n > 0 -> n
  | _ -> 25

let buffer_capacity () =
  match get_int "ACCEL_PROF_BUFFER_CAP" with
  | Some n when n > 0 -> n
  | _ -> 4096

let overflow_policy () =
  match Option.bind (get "ACCEL_PROF_OVERFLOW_POLICY") Pasta_util.Ring_buffer.overflow_of_string with
  | Some p -> p
  | None -> Pasta_util.Ring_buffer.Block

let watchdog_us () =
  match Option.bind (get "ACCEL_PROF_WATCHDOG_US") float_of_string_opt with
  | Some v when v > 0.0 -> v
  | _ -> 1_000_000.0

let batch_delivery () =
  match get "ACCEL_PROF_BATCH_DELIVERY" with
  | Some ("0" | "false" | "no" | "off") -> false
  | _ -> true

let columnar () =
  match get "ACCEL_PROF_COLUMNAR" with
  | Some ("0" | "false" | "no" | "off") -> false
  | _ -> true

let domains () =
  let cap = max 1 (min 8 (Domain.recommended_domain_count ())) in
  match get_int "ACCEL_PROF_DOMAINS" with
  | Some n when n > 0 -> min n 64
  | _ -> cap

let inject_faults () =
  match get "ACCEL_PROF_INJECT_FAULTS" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let fault_seed () =
  match Option.bind (get "ACCEL_PROF_FAULT_SEED") Int64.of_string_opt with
  | Some s -> s
  | None -> 0x5EEDL

(* --- Fleet profiling knobs --- *)

let fleet_fanout () =
  match get_int "ACCEL_PROF_FLEET_FANOUT" with
  | Some n when n >= 2 -> n
  | _ -> 8

let fleet_deadline_us () =
  match Option.bind (get "ACCEL_PROF_FLEET_DEADLINE_US") float_of_string_opt with
  | Some v when v > 0.0 -> v
  | _ -> 5_000_000.0

let fleet_retries () =
  match get_int "ACCEL_PROF_FLEET_RETRIES" with
  | Some n when n >= 0 -> n
  | _ -> 2

let fleet_backoff_us () =
  match Option.bind (get "ACCEL_PROF_FLEET_BACKOFF_US") float_of_string_opt with
  | Some v when v >= 0.0 -> v
  | _ -> 10_000.0

let strict_fleet () =
  match get "ACCEL_PROF_STRICT_FLEET" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

(* --- Self-telemetry knobs --- *)

let telemetry () =
  match Option.map String.lowercase_ascii (get "ACCEL_PROF_TELEMETRY") with
  | Some ("off" | "0" | "false" | "no" | "none") -> `Off
  | Some ("full" | "2") -> `Full
  | Some _ | None -> `Basic

let telemetry_spans () =
  match get_int "ACCEL_PROF_TELEMETRY_SPANS" with
  | Some n when n > 0 -> n
  | _ -> 65536

(* --- Trace capture / replay knobs --- *)

let trace_path () =
  match get "ACCEL_PROF_TRACE" with
  | Some p when p <> "" -> Some p
  | _ -> None

let trace_chunk_bytes () =
  match get_int "ACCEL_PROF_TRACE_CHUNK_KB" with
  | Some n when n > 0 -> n * 1024
  | _ -> 256 * 1024

let trace_strict () =
  match get "ACCEL_PROF_TRACE_STRICT" with
  | Some ("0" | "false" | "no" | "off" | "tolerant") -> false
  | _ -> true
