(** PASTA's unified event vocabulary (paper Table II).

    Every profiling backend and DL-framework hook is normalized into this
    one type, so tools are written once and run on any vendor or
    framework.  Events are grouped exactly as the paper groups them:
    coarse-grained host-called API events, fine-grained device-side
    operations, and high-level DL framework events. *)

type api_phase = [ `Enter | `Exit ]

type copy_direction = [ `H2d | `D2h | `D2d | `P2p of int ]

val pp_direction : Format.formatter -> copy_direction -> unit

type kernel_info = {
  device_id : int;
  grid_id : int;
  stream : int;
  name : string;
  grid : Gpusim.Dim3.t;
  block : Gpusim.Dim3.t;
  shared_bytes : int;
  arg_ptrs : int list;
  py_stack : Gpusim.Hostctx.frame list;
  native_stack : Gpusim.Hostctx.frame list;
}

val kernel_info_of_launch : Gpusim.Device.launch_info -> kernel_info

type kernel_end_summary = {
  duration_us : float;
  true_accesses : int;
  faulted_pages : int;
}

type mem_access = {
  addr : int;
  size : int;
  write : bool;
  pc : int;
  warp : int;
  weight : int;  (** true accesses this sampled record stands for *)
}

type region_summary = {
  base : int;
  extent : int;
  accesses : int;
  written : bool;
}

type payload =
  (* Coarse-grained host-called API events *)
  | Driver_call of { name : string; phase : api_phase }
  | Runtime_call of { name : string; phase : api_phase }
  | Kernel_launch of { info : kernel_info; phase : [ `Begin | `End of kernel_end_summary ] }
  | Memory_copy of { bytes : int; direction : copy_direction; stream : int }
  | Memory_set of { addr : int; bytes : int; value : int }
  | Memory_alloc of { addr : int; bytes : int; managed : bool }
  | Memory_free of { addr : int; bytes : int }
  | Synchronization of { scope : [ `Device | `Stream of int ] }
  (* Fine-grained device-side operations *)
  | Global_access of { kernel : kernel_info; access : mem_access }
  | Access_batch of { kernel : kernel_info; batch : Gpusim.Warp.batch }
      (** packed flat-array record batch from the parallel preprocessing
          path; dispatched once per batch to tools that opt into
          [on_access_batch] *)
  | Device_summary of { kernel : kernel_info; summary : Devagg.summary }
      (** merged device-side reduction of a kernel's materialized records *)
  | Shared_access of { kernel : kernel_info; access : mem_access }
  | Kernel_region of { kernel : kernel_info; region : region_summary }
      (** aggregated by GPU-resident analysis *)
  | Barrier of { kernel : kernel_info; count : int }
  | Kernel_profile of { kernel : kernel_info; profile : Gpusim.Kernel.profile }
      (** per-kernel behaviour aggregate from instruction-level patching *)
  (* High-level DL framework events *)
  | Operator of { name : string; phase : api_phase; seq : int }
  | Tensor_alloc of { ptr : int; bytes : int; pool_allocated : int; pool_reserved : int; tag : string }
  | Tensor_free of { ptr : int; bytes : int; pool_allocated : int; pool_reserved : int }
  | Annotation of { label : string; phase : [ `Start | `End ] }
      (** pasta.start / pasta.end user annotations *)
  | Tool_quarantined of { tool : string; failures : int }
      (** emitted by the supervision layer when a tool's circuit breaker
          trips ({!Guard}); the workload keeps running *)

type t = {
  device : int;
  time_us : float;  (** simulated timestamp at emission *)
  payload : payload;
}

val kind_name : payload -> string
(** Short classifier used by filters and reports, e.g. "kernel_launch". *)

val all_kinds : string list
(** Every [kind_name] the vocabulary can produce, one per [payload]
    constructor, in declaration order.  The coverage suite checks this
    list against a sample of every constructor, so it cannot drift. *)

val is_fine_grained : payload -> bool
val is_dl_framework : payload -> bool

val pp : Format.formatter -> t -> unit
