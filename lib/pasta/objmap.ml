module Imap = Map.Make (Int)

type obj =
  | Tensor of { ptr : int; bytes : int; tag : string }
  | Device_alloc of { ptr : int; bytes : int; managed : bool }
  | Unknown of int

let obj_key = function
  | Tensor { ptr; _ } | Device_alloc { ptr; _ } -> ptr
  | Unknown addr -> addr

let obj_bytes = function
  | Tensor { bytes; _ } | Device_alloc { bytes; _ } -> bytes
  | Unknown _ -> 0

let obj_label = function
  | Tensor { tag; _ } -> "tensor:" ^ tag
  | Device_alloc { managed; _ } -> if managed then "managed-alloc" else "device-alloc"
  | Unknown _ -> "unknown"

type alloc_rec = { a_bytes : int; managed : bool }
type tensor_rec = { t_bytes : int; tag : string }

(* Single-entry memoization of the last successful resolve: access streams
   have strong sequential locality (consecutive records usually fall in the
   same object), so one cached extent absorbs most lookups.  Any registry
   mutation invalidates the entry wholesale — a new tensor can overlay the
   memoized allocation, changing what the same address resolves to. *)
type memo = { m_base : int; m_limit : int; m_obj : obj }

type t = {
  mutable allocs : alloc_rec Imap.t;
  mutable tensors : tensor_rec Imap.t;
  mutable memo : memo option;
  mutable memo_hits : int;
  mutable memo_misses : int;
}

let create () =
  { allocs = Imap.empty; tensors = Imap.empty; memo = None; memo_hits = 0; memo_misses = 0 }

let on_alloc t ~addr ~bytes ~managed =
  t.memo <- None;
  t.allocs <- Imap.add addr { a_bytes = bytes; managed } t.allocs

let on_free t ~addr =
  t.memo <- None;
  t.allocs <- Imap.remove addr t.allocs

let on_tensor_alloc t ~ptr ~bytes ~tag =
  t.memo <- None;
  t.tensors <- Imap.add ptr { t_bytes = bytes; tag } t.tensors

let on_tensor_free t ~ptr =
  t.memo <- None;
  t.tensors <- Imap.remove ptr t.tensors

let find_covering map addr size_of =
  match Imap.find_last_opt (fun b -> b <= addr) map with
  | Some (base, r) when addr < base + size_of r -> Some (base, r)
  | _ -> None

let resolve_uncached tensors allocs addr =
  match find_covering tensors addr (fun r -> r.t_bytes) with
  | Some (ptr, r) -> Tensor { ptr; bytes = r.t_bytes; tag = r.tag }
  | None -> (
      match find_covering allocs addr (fun r -> r.a_bytes) with
      | Some (ptr, r) -> Device_alloc { ptr; bytes = r.a_bytes; managed = r.managed }
      | None -> Unknown addr)

let resolve t addr =
  match t.memo with
  | Some m when addr >= m.m_base && addr < m.m_limit ->
      t.memo_hits <- t.memo_hits + 1;
      m.m_obj
  | _ -> (
      t.memo_misses <- t.memo_misses + 1;
      match resolve_uncached t.tensors t.allocs addr with
      | Unknown _ as u -> u
      | obj ->
          let base = obj_key obj in
          t.memo <- Some { m_base = base; m_limit = base + obj_bytes obj; m_obj = obj };
          obj)

let memo_stats t = (t.memo_hits, t.memo_misses)

(* Immutable snapshot for worker domains: the maps are persistent, so a view
   shares structure with the registry but never observes later mutations. *)
type view = { v_allocs : alloc_rec Imap.t; v_tensors : tensor_rec Imap.t }

let view t = { v_allocs = t.allocs; v_tensors = t.tensors }
let resolve_view v addr = resolve_uncached v.v_tensors v.v_allocs addr

let live_objects t = Imap.cardinal t.allocs + Imap.cardinal t.tensors
let live_allocs t = List.map (fun (b, r) -> (b, r.a_bytes)) (Imap.bindings t.allocs)
let map_bytes t = 16 * max 1 (live_objects t)
