module Imap = Map.Make (Int)

type obj =
  | Tensor of { ptr : int; bytes : int; tag : string }
  | Device_alloc of { ptr : int; bytes : int; managed : bool }
  | Unknown of int

let obj_key = function
  | Tensor { ptr; _ } | Device_alloc { ptr; _ } -> ptr
  | Unknown addr -> addr

let obj_bytes = function
  | Tensor { bytes; _ } | Device_alloc { bytes; _ } -> bytes
  | Unknown _ -> 0

let obj_label = function
  | Tensor { tag; _ } -> "tensor:" ^ tag
  | Device_alloc { managed; _ } -> if managed then "managed-alloc" else "device-alloc"
  | Unknown _ -> "unknown"

type alloc_rec = { a_bytes : int; managed : bool }
type tensor_rec = { t_bytes : int; tag : string }

(* Single-entry memoization of the last successful resolve: access streams
   have strong sequential locality (consecutive records usually fall in the
   same object), so one cached extent absorbs most lookups.  Any registry
   mutation invalidates the entry wholesale — a new tensor can overlay the
   memoized allocation, changing what the same address resolves to. *)
type memo = { m_base : int; m_limit : int; m_obj : obj }

type t = {
  mutable allocs : alloc_rec Imap.t;
  mutable tensors : tensor_rec Imap.t;
  mutable memo : memo option;
  mutable memo_hits : int;
  mutable memo_misses : int;
}

let create () =
  { allocs = Imap.empty; tensors = Imap.empty; memo = None; memo_hits = 0; memo_misses = 0 }

let on_alloc t ~addr ~bytes ~managed =
  t.memo <- None;
  t.allocs <- Imap.add addr { a_bytes = bytes; managed } t.allocs

let on_free t ~addr =
  t.memo <- None;
  t.allocs <- Imap.remove addr t.allocs

let on_tensor_alloc t ~ptr ~bytes ~tag =
  t.memo <- None;
  t.tensors <- Imap.add ptr { t_bytes = bytes; tag } t.tensors

let on_tensor_free t ~ptr =
  t.memo <- None;
  t.tensors <- Imap.remove ptr t.tensors

let find_covering map addr size_of =
  match Imap.find_last_opt (fun b -> b <= addr) map with
  | Some (base, r) when addr < base + size_of r -> Some (base, r)
  | _ -> None

let resolve_uncached tensors allocs addr =
  match find_covering tensors addr (fun r -> r.t_bytes) with
  | Some (ptr, r) -> Tensor { ptr; bytes = r.t_bytes; tag = r.tag }
  | None -> (
      match find_covering allocs addr (fun r -> r.a_bytes) with
      | Some (ptr, r) -> Device_alloc { ptr; bytes = r.a_bytes; managed = r.managed }
      | None -> Unknown addr)

let resolve t addr =
  match t.memo with
  | Some m when addr >= m.m_base && addr < m.m_limit ->
      t.memo_hits <- t.memo_hits + 1;
      m.m_obj
  | _ -> (
      t.memo_misses <- t.memo_misses + 1;
      match resolve_uncached t.tensors t.allocs addr with
      | Unknown _ as u -> u
      | obj ->
          let base = obj_key obj in
          t.memo <- Some { m_base = base; m_limit = base + obj_bytes obj; m_obj = obj };
          obj)

let memo_stats t = (t.memo_hits, t.memo_misses)

(* Immutable snapshot for worker domains, flattened to sorted arrays with
   the [obj] values prebuilt: the aggregation hot loop calls
   {!resolve_view} on every memo miss, and the persistent-map lookup both
   walks pointer-chasing tree nodes and allocates (a closure, options, a
   fresh [obj] record) per call — at alternating-object access streams
   that is several words for every record.  Binary search over flat base
   arrays returning a preallocated [obj] does the same resolution with
   zero allocation.  Snapshots are taken once per kernel flush, so the
   [O(objects)] build cost is noise. *)
type view = {
  vt_base : int array;  (* tensor base addrs, ascending *)
  vt_limit : int array;
  vt_obj : obj array;
  va_base : int array;  (* device allocs, ascending *)
  va_limit : int array;
  va_obj : obj array;
}

let flatten n fold =
  let base = Array.make n 0 and limit = Array.make n 0 in
  let objs = Array.make n (Unknown 0) in
  let i = ref 0 in
  fold (fun b lim o ->
      base.(!i) <- b;
      limit.(!i) <- lim;
      objs.(!i) <- o;
      incr i);
  (base, limit, objs)

let view t =
  let vt_base, vt_limit, vt_obj =
    flatten (Imap.cardinal t.tensors) (fun emit ->
        Imap.iter
          (fun ptr r -> emit ptr (ptr + r.t_bytes) (Tensor { ptr; bytes = r.t_bytes; tag = r.tag }))
          t.tensors)
  in
  let va_base, va_limit, va_obj =
    flatten (Imap.cardinal t.allocs) (fun emit ->
        Imap.iter
          (fun ptr r ->
            emit ptr (ptr + r.a_bytes)
              (Device_alloc { ptr; bytes = r.a_bytes; managed = r.managed }))
          t.allocs)
  in
  { vt_base; vt_limit; vt_obj; va_base; va_limit; va_obj }

(* Index of the last base [<= addr], or [-1]. *)
let find_le (base : int array) addr =
  let lo = ref 0 and hi = ref (Array.length base) in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get base mid <= addr then lo := mid + 1 else hi := mid
  done;
  !lo - 1

let resolve_view v addr =
  let ti = find_le v.vt_base addr in
  if ti >= 0 && addr < Array.unsafe_get v.vt_limit ti then Array.unsafe_get v.vt_obj ti
  else begin
    let ai = find_le v.va_base addr in
    if ai >= 0 && addr < Array.unsafe_get v.va_limit ai then Array.unsafe_get v.va_obj ai
    else Unknown addr
  end

let live_objects t = Imap.cardinal t.allocs + Imap.cardinal t.tensors
let live_allocs t = List.map (fun (b, r) -> (b, r.a_bytes)) (Imap.bindings t.allocs)
let map_bytes t = 16 * max 1 (live_objects t)
