(** Device-side partial aggregation of access batches.

    The parallel preprocessing path reduces each generation chunk into a
    {!shard} — per-object weighted counts (through an {!Objmap.view}
    snapshot), a [block_bytes]-granular access histogram and coalesced
    address intervals — then {!merge}s the shards in deterministic chunk
    order.  Aggregation is pure with respect to shared state, so shards can
    be computed on any domain; the merged {!summary} is identical for every
    domain count.  Counts are weighted, i.e. exact true-access totals. *)

val block_bytes : int
(** Histogram granularity (2 MiB, matching the hotness tool's blocks). *)

type shard

val aggregate : Objmap.view -> Gpusim.Warp.batch -> shard
(** Reduce one batch.  Safe to call concurrently from worker domains. *)

type summary = {
  objects : (Objmap.obj * int) list;  (** weighted counts, sorted by object key *)
  blocks : (int * int) list;  (** (block index, weighted count), sorted *)
  coalesced : (int * int) list;  (** disjoint touched extents, sorted *)
  sampled_records : int;
  true_accesses : int;  (** sum of record weights *)
  writes : int;  (** weighted write accesses *)
  est_rate : float;
      (** effective sampling rate behind the counts: 1.0 means exact totals,
          below 1.0 the weighted sums are unbiased estimates (records carry
          inverse-probability weights from {!Gpusim.Warp.thin}) *)
}

val merge : ?est_rate:float -> shard array -> summary
(** Combine shards (callers pass them in chunk order; the result is in fact
    order-insensitive because all counts are sums and outputs are sorted).
    [est_rate] (default 1.0) stamps the sampling rate the batches were
    thinned at, so consumers can annotate estimates. *)

type accum
(** A per-worker-domain accumulator for the columnar hot path: reused
    across every chunk the worker reduces, it appends packed intervals to
    a preallocated flat array and weighted tallies to persistent tables.
    NOT safe for concurrent use — one accumulator per worker. *)

val accum_create : unit -> accum

val accum_reset : accum -> unit
(** Empty the accumulator for reuse on the next kernel while keeping its
    grown tables and buffers, so a long-lived accumulator reaches a
    steady-state footprint and stops allocating. *)

val accum_add : accum -> Objmap.view -> Gpusim.Warp.batch -> unit
(** Reduce one batch into the accumulator: run-length tallies into the
    persistent tables, plus a per-chunk coalesce (sort-free for the usual
    address-sorted chunks) whose surviving intervals are appended to a
    flat pair buffer.  No per-chunk table or list allocations. *)

val merge_accums : ?est_rate:float -> accum array -> summary
(** Merge per-worker accumulators once per kernel: sums the tallies,
    sorts the concatenated {e already per-chunk-coalesced} intervals —
    intervals, not records — and coalesces them in a single pass.
    Byte-identical to [merge (Array.map (aggregate view) batches)] for
    the same records, at any domain count — coalescing computes the same
    connected components under the same overlap-or-touch closure
    whichever way the records are grouped. *)

val merge_summaries : ?est_rate:float -> summary list -> summary
(** Combine already-merged summaries into one — the merge-node primitive
    of a hierarchical (fleet) reduction.  Order-insensitive: counts are
    sums and outputs are sorted, so any reduction tree over the same
    inputs yields the same bytes.  [est_rate] defaults to the
    record-weighted mean of the inputs' rates. *)

val validate : summary -> (unit, string) result
(** Structural integrity check for failure-aware merge nodes: object and
    block weights must each sum to [true_accesses], output lists must be
    sorted with positive counts, intervals disjoint, [est_rate] in
    (0, 1].  [Error] names the violated invariant. *)

val rel_stderr : summary -> float
(** Relative standard error of the summary's weighted totals,
    [sqrt ((1 - p) / (n * p))] for [n] kept records at rate [p]; [0.0] for
    exact (rate-1.0) summaries. *)

val pp : Format.formatter -> summary -> unit
