(** Device-side partial aggregation of access batches.

    The parallel preprocessing path reduces each generation chunk into a
    {!shard} — per-object weighted counts (through an {!Objmap.view}
    snapshot), a [block_bytes]-granular access histogram and coalesced
    address intervals — then {!merge}s the shards in deterministic chunk
    order.  Aggregation is pure with respect to shared state, so shards can
    be computed on any domain; the merged {!summary} is identical for every
    domain count.  Counts are weighted, i.e. exact true-access totals. *)

val block_bytes : int
(** Histogram granularity (2 MiB, matching the hotness tool's blocks). *)

type shard

val aggregate : Objmap.view -> Gpusim.Warp.batch -> shard
(** Reduce one batch.  Safe to call concurrently from worker domains. *)

type summary = {
  objects : (Objmap.obj * int) list;  (** weighted counts, sorted by object key *)
  blocks : (int * int) list;  (** (block index, weighted count), sorted *)
  coalesced : (int * int) list;  (** disjoint touched extents, sorted *)
  sampled_records : int;
  true_accesses : int;  (** sum of record weights *)
  writes : int;  (** weighted write accesses *)
}

val merge : shard array -> summary
(** Combine shards (callers pass them in chunk order; the result is in fact
    order-insensitive because all counts are sums and outputs are sorted). *)

val pp : Format.formatter -> summary -> unit
