(** Device-side partial aggregation of access batches.

    The parallel preprocessing path reduces each generation chunk into a
    {!shard} — per-object weighted counts (through an {!Objmap.view}
    snapshot), a [block_bytes]-granular access histogram and coalesced
    address intervals — then {!merge}s the shards in deterministic chunk
    order.  Aggregation is pure with respect to shared state, so shards can
    be computed on any domain; the merged {!summary} is identical for every
    domain count.  Counts are weighted, i.e. exact true-access totals. *)

val block_bytes : int
(** Histogram granularity (2 MiB, matching the hotness tool's blocks). *)

type shard

val aggregate : Objmap.view -> Gpusim.Warp.batch -> shard
(** Reduce one batch.  Safe to call concurrently from worker domains. *)

type summary = {
  objects : (Objmap.obj * int) list;  (** weighted counts, sorted by object key *)
  blocks : (int * int) list;  (** (block index, weighted count), sorted *)
  coalesced : (int * int) list;  (** disjoint touched extents, sorted *)
  sampled_records : int;
  true_accesses : int;  (** sum of record weights *)
  writes : int;  (** weighted write accesses *)
  est_rate : float;
      (** effective sampling rate behind the counts: 1.0 means exact totals,
          below 1.0 the weighted sums are unbiased estimates (records carry
          inverse-probability weights from {!Gpusim.Warp.thin}) *)
}

val merge : ?est_rate:float -> shard array -> summary
(** Combine shards (callers pass them in chunk order; the result is in fact
    order-insensitive because all counts are sums and outputs are sorted).
    [est_rate] (default 1.0) stamps the sampling rate the batches were
    thinned at, so consumers can annotate estimates. *)

val merge_summaries : ?est_rate:float -> summary list -> summary
(** Combine already-merged summaries into one — the merge-node primitive
    of a hierarchical (fleet) reduction.  Order-insensitive: counts are
    sums and outputs are sorted, so any reduction tree over the same
    inputs yields the same bytes.  [est_rate] defaults to the
    record-weighted mean of the inputs' rates. *)

val validate : summary -> (unit, string) result
(** Structural integrity check for failure-aware merge nodes: object and
    block weights must each sum to [true_accesses], output lists must be
    sorted with positive counts, intervals disjoint, [est_rate] in
    (0, 1].  [Error] names the violated invariant. *)

val rel_stderr : summary -> float
(** Relative standard error of the summary's weighted totals,
    [sqrt ((1 - p) / (n * p))] for [n] kept records at rate [p]; [0.0] for
    exact (rate-1.0) summaries. *)

val pp : Format.formatter -> summary -> unit
