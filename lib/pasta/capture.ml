type t = {
  cap_writer : Ptrace.writer;
  cap_proc : Processor.t;
  mutable cap_open : bool;
}

let sync_stats t =
  let st = Processor.stats t.cap_proc in
  st.Processor.bytes_written <- Ptrace.writer_bytes t.cap_writer;
  st.Processor.chunks <- Ptrace.writer_chunks t.cap_writer

let start ?chunk_bytes ?meta proc path =
  let writer =
    Ptrace.create_writer ?chunk_bytes ?meta ~device:(Processor.device proc) path
  in
  let st = Processor.stats proc in
  let t = { cap_writer = writer; cap_proc = proc; cap_open = true } in
  Processor.set_sink proc (fun ~time_us op ->
      Ptrace.write_op writer ~time_us op;
      st.Processor.events_recorded <- st.Processor.events_recorded + 1;
      st.Processor.bytes_written <- Ptrace.writer_bytes writer;
      st.Processor.chunks <- Ptrace.writer_chunks writer);
  t

let finish t =
  if t.cap_open then begin
    t.cap_open <- false;
    Processor.clear_sink t.cap_proc;
    Ptrace.close_writer t.cap_writer;
    sync_stats t
  end

let ops t = Ptrace.writer_ops t.cap_writer
let bytes t = Ptrace.writer_bytes t.cap_writer
let chunks t = Ptrace.writer_chunks t.cap_writer

let passthrough () =
  let tool = Tool.default ~fine_grained:Tool.Cpu_sanitizer "capture" in
  {
    tool with
    Tool.on_access_batch = Some (fun _ _ -> ());
    report =
      (fun ppf ->
        Format.fprintf ppf "capture: passthrough recording, no analysis@.");
  }
