module Metric = Pasta_util.Metric

type t = {
  cap_writer : Ptrace.writer;
  cap_proc : Processor.t;
  c_recorded : Metric.counter;
  c_bytes : Metric.counter;
  c_chunks : Metric.counter;
  mutable cap_open : bool;
}

let sync_stats t =
  Metric.set t.c_bytes (Ptrace.writer_bytes t.cap_writer);
  Metric.set t.c_chunks (Ptrace.writer_chunks t.cap_writer)

let start ?chunk_bytes ?meta proc path =
  let writer =
    Ptrace.create_writer ?chunk_bytes ?meta ~device:(Processor.device proc) path
  in
  let reg = Processor.metrics proc in
  (* Resolve with the processor's device labels: every series in its
     registry carries them, and a bare-name lookup would find-or-create a
     parallel unlabeled series. *)
  let labels = Processor.metric_labels proc in
  let t =
    {
      cap_writer = writer;
      cap_proc = proc;
      c_recorded = Metric.counter reg ~labels "pasta_events_recorded";
      c_bytes = Metric.counter reg ~labels "pasta_bytes_written";
      c_chunks = Metric.counter reg ~labels "pasta_trace_chunks";
      cap_open = true;
    }
  in
  Processor.set_sink proc (fun ~time_us op ->
      Telemetry.begin_span Telemetry.Capture_io "capture.write_op";
      Ptrace.write_op writer ~time_us op;
      Metric.incr t.c_recorded;
      Metric.set t.c_bytes (Ptrace.writer_bytes writer);
      Metric.set t.c_chunks (Ptrace.writer_chunks writer);
      Telemetry.end_span Telemetry.Capture_io);
  t

let finish t =
  if t.cap_open then begin
    t.cap_open <- false;
    Processor.clear_sink t.cap_proc;
    Telemetry.begin_span Telemetry.Capture_io "capture.close";
    Ptrace.close_writer t.cap_writer;
    Telemetry.end_span Telemetry.Capture_io;
    sync_stats t
  end

let ops t = Ptrace.writer_ops t.cap_writer
let bytes t = Ptrace.writer_bytes t.cap_writer
let chunks t = Ptrace.writer_chunks t.cap_writer

let passthrough () =
  let tool = Tool.default ~fine_grained:Tool.Cpu_sanitizer "capture" in
  {
    tool with
    Tool.on_access_batch = Some (fun _ _ -> ());
    on_access_columns = Some (fun _ _ -> ());
    report =
      (fun ppf ->
        Format.fprintf ppf "capture: passthrough recording, no analysis@.");
  }
