(** Memory-object registry: resolve device addresses to objects.

    The event processor keeps this registry up to date from the event
    stream (runtime allocations and DL-framework tensor events).  Tools
    resolve raw access addresses through it, which is what turns address
    traces into object-level insight (paper §V-B2): a *tensor* when a live
    framework tensor covers the address — the cross-layer case only PASTA
    can see — otherwise the runtime *allocation*, otherwise unknown. *)

type obj =
  | Tensor of { ptr : int; bytes : int; tag : string }
  | Device_alloc of { ptr : int; bytes : int; managed : bool }
  | Unknown of int  (** the unresolved address *)

val obj_key : obj -> int
(** Stable identity for grouping (the object base address; the address
    itself for [Unknown]). *)

val obj_bytes : obj -> int
(** Object size; 0 for [Unknown]. *)

val obj_label : obj -> string

type t

val create : unit -> t

val on_alloc : t -> addr:int -> bytes:int -> managed:bool -> unit
val on_free : t -> addr:int -> unit
(** Unknown addresses are ignored (frees may race with attach order). *)

val on_tensor_alloc : t -> ptr:int -> bytes:int -> tag:string -> unit
val on_tensor_free : t -> ptr:int -> unit

val resolve : t -> int -> obj
(** Resolution keeps a single-entry memo of the last successful lookup —
    access streams are sequentially local, so most resolutions hit it.  Any
    registry mutation invalidates the memo. *)

val memo_stats : t -> int * int
(** [(hits, misses)] of the resolve memo since [create]. *)

type view
(** Immutable snapshot of the registry, safe to share across domains. *)

val view : t -> view
val resolve_view : view -> int -> obj
(** Like {!resolve} against the snapshot; no memo, no mutation, and
    therefore callable from any domain concurrently. *)

val live_objects : t -> int
(** Count of live allocations plus live tensors. *)

val live_allocs : t -> (int * int) list
(** (base, bytes) of live runtime allocations. *)

val map_bytes : t -> int
(** Size of the object→count map a GPU-resident analysis would ship to the
    device (16 bytes per live object). *)
