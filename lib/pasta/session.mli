(** A profiling session: the [LD_PRELOAD] injection equivalent.

    Attaching a session wires the whole PASTA stack onto a device: the
    vendor backend for low-level events, the DL-framework hooks for
    high-level events, the event processor in between, and the selected
    tool — plus whatever fine-grained instrumentation the tool's analysis
    model requires.  Detaching tears it all down and returns the run's
    accounting.

    The session is also the supervision root: the tool runs behind a
    {!Guard} circuit breaker, fine-grained records flow through a bounded
    buffer, a watchdog probe flags stuck kernels, and (when enabled)
    deterministic fault injection exercises all of it.  {!result.health}
    reports what happened.

    {!start} / {!end_} implement the [pasta.start()] / [pasta.end()]
    Python annotations (paper Listing 1) against the innermost active
    session. *)

type t

type health = {
  guard_state : string;  (** "closed" | "quarantined" | "half-open" *)
  tool_failures : int;  (** tool-callback exceptions caught *)
  failures_by_callback : (string * int) list;
  quarantines : int;  (** times the breaker tripped *)
  reinstated : int;  (** successful half-open probes *)
  events_suppressed : int;  (** events withheld during quarantine *)
  records_dropped : int;  (** bounded-buffer overflow losses *)
  records_buffered_peak : int;
  accesses_filtered : int;
      (** records seen but withheld by the range filter; with drops and
          deliveries this makes the event accounting add up *)
  batches_delivered : int;  (** packed batches handed to a batch-aware tool *)
  domains : int;  (** preprocessing domain-pool size in effect (1 = serial) *)
  buffer_capacity : int;
  overflow_policy : string;
  buffer_stalls : int;  (** producer stalls under the Block policy *)
  watchdog_trips : (string * float) list;
      (** kernels whose duration exceeded [ACCEL_PROF_WATCHDOG_US] *)
  fault_stats : Gpusim.Faults.stats option;
      (** what the injector actually did, when fault injection was on *)
  incidents : Event.t list;  (** [Tool_quarantined] events, in order *)
  events_recorded : int;  (** submission ops written by the trace capture *)
  bytes_written : int;  (** [.ptrace] bytes produced *)
  chunks : int;  (** trace chunks written (capture) or read (replay) *)
  chunks_skipped : int;  (** corrupt chunks a tolerant replay skipped *)
  replay_events : int;  (** ops re-driven from a recorded trace *)
  sampling : Sampler.snapshot option;
      (** governor state when adaptive/fixed-rate sampling was active *)
}

val pp_health : Format.formatter -> health -> unit

type result = {
  tool_name : string;
  phases : Vendor.Phases.t;  (** profiling-time phase breakdown (Fig. 10) *)
  events_seen : int;
  events_dispatched : int;
  kernels : int;
  elapsed_us : float;  (** simulated device time spent while attached *)
  health : health;  (** supervision-layer accounting *)
  metrics : Pasta_util.Metric.t;
      (** the processor's metric registry — every [health] counter in
          exportable form; pass to {!Telemetry.prometheus} via [extra] *)
  report : Format.formatter -> unit;  (** the tool's report, exception-safe *)
}

val attach :
  ?backend:Backend.kind ->
  ?range:Range.t ->
  ?sample_cap:int ->
  ?sample_rate:float ->
  ?overhead_budget:float ->
  ?faults:Gpusim.Faults.t ->
  ?capture:string ->
  ?capture_meta:string ->
  tool:Tool.t ->
  Gpusim.Device.t ->
  t
(** [backend] defaults per vendor ({!Backend.default_kind_for}), except
    that a tool requiring [Cpu_nvbit] forces the NVBit backend.
    [sample_cap] caps materialized records per kernel region (defaults to
    [ACCEL_PROF_ENV_SAMPLE_RATE] when set).  [sample_rate] pins a fixed
    record sampling rate in (0, 1] and [overhead_budget] enables the
    adaptive {!Sampler} governor instead (both default to their
    [ACCEL_PROF_SAMPLE_RATE] / [ACCEL_PROF_OVERHEAD_BUDGET] knobs; with
    both set, the budget governs and the rate is the telemetry-blind
    fallback).  Rate changes are recorded in any attached capture before
    the launch they apply to, so replay reproduces the sampled stream
    exactly.  [faults] installs the given
    injector on the device for the session's lifetime; without it, the
    [ACCEL_PROF_INJECT_FAULTS] knob creates one seeded from
    [ACCEL_PROF_FAULT_SEED].  A device that already carries an injector is
    left untouched.  [capture] streams the session's submission-level op
    stream to the given [.ptrace] file ({!Capture}); without it, the
    [ACCEL_PROF_TRACE] knob does the same.  [capture_meta] is stored in
    the trace header (default: the tool's display name; the CLI passes
    the registry key so replay can re-resolve the tool).  The file is
    closed at {!detach}, and {!result.health} accounts what was
    recorded. *)

val detach : t -> result

val run :
  ?backend:Backend.kind ->
  ?range:Range.t ->
  ?sample_cap:int ->
  ?sample_rate:float ->
  ?overhead_budget:float ->
  ?faults:Gpusim.Faults.t ->
  ?capture:string ->
  ?capture_meta:string ->
  tool:Tool.t ->
  Gpusim.Device.t ->
  (unit -> 'a) ->
  'a * result
(** Attach, run the workload, detach — even on exception. *)

val processor : t -> Processor.t
val tool : t -> Tool.t

val start : ?label:string -> unit -> unit
(** [pasta.start()]: open an analysis range on the innermost active
    session; a no-op when no session is attached. *)

val end_ : ?label:string -> unit -> unit
(** [pasta.end()]. *)
