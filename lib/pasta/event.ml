type api_phase = [ `Enter | `Exit ]
type copy_direction = [ `H2d | `D2h | `D2d | `P2p of int ]

let pp_direction ppf = function
  | `H2d -> Format.pp_print_string ppf "HtoD"
  | `D2h -> Format.pp_print_string ppf "DtoH"
  | `D2d -> Format.pp_print_string ppf "DtoD"
  | `P2p d -> Format.fprintf ppf "PtoP(dev%d)" d

type kernel_info = {
  device_id : int;
  grid_id : int;
  stream : int;
  name : string;
  grid : Gpusim.Dim3.t;
  block : Gpusim.Dim3.t;
  shared_bytes : int;
  arg_ptrs : int list;
  py_stack : Gpusim.Hostctx.frame list;
  native_stack : Gpusim.Hostctx.frame list;
}

let kernel_info_of_launch (li : Gpusim.Device.launch_info) =
  let k = li.Gpusim.Device.kernel in
  {
    device_id = li.Gpusim.Device.device_id;
    grid_id = li.Gpusim.Device.grid_id;
    stream = li.Gpusim.Device.stream;
    name = k.Gpusim.Kernel.name;
    grid = k.Gpusim.Kernel.grid;
    block = k.Gpusim.Kernel.block;
    shared_bytes = k.Gpusim.Kernel.shared_bytes;
    arg_ptrs = k.Gpusim.Kernel.arg_ptrs;
    py_stack = li.Gpusim.Device.py_stack;
    native_stack = li.Gpusim.Device.native_stack;
  }

type kernel_end_summary = {
  duration_us : float;
  true_accesses : int;
  faulted_pages : int;
}

type mem_access = {
  addr : int;
  size : int;
  write : bool;
  pc : int;
  warp : int;
  weight : int;
}

type region_summary = { base : int; extent : int; accesses : int; written : bool }

type payload =
  | Driver_call of { name : string; phase : api_phase }
  | Runtime_call of { name : string; phase : api_phase }
  | Kernel_launch of { info : kernel_info; phase : [ `Begin | `End of kernel_end_summary ] }
  | Memory_copy of { bytes : int; direction : copy_direction; stream : int }
  | Memory_set of { addr : int; bytes : int; value : int }
  | Memory_alloc of { addr : int; bytes : int; managed : bool }
  | Memory_free of { addr : int; bytes : int }
  | Synchronization of { scope : [ `Device | `Stream of int ] }
  | Global_access of { kernel : kernel_info; access : mem_access }
  | Access_batch of { kernel : kernel_info; batch : Gpusim.Warp.batch }
  | Device_summary of { kernel : kernel_info; summary : Devagg.summary }
  | Shared_access of { kernel : kernel_info; access : mem_access }
  | Kernel_region of { kernel : kernel_info; region : region_summary }
  | Barrier of { kernel : kernel_info; count : int }
  | Kernel_profile of { kernel : kernel_info; profile : Gpusim.Kernel.profile }
  | Operator of { name : string; phase : api_phase; seq : int }
  | Tensor_alloc of { ptr : int; bytes : int; pool_allocated : int; pool_reserved : int; tag : string }
  | Tensor_free of { ptr : int; bytes : int; pool_allocated : int; pool_reserved : int }
  | Annotation of { label : string; phase : [ `Start | `End ] }
  | Tool_quarantined of { tool : string; failures : int }

type t = { device : int; time_us : float; payload : payload }

let kind_name = function
  | Driver_call _ -> "driver_call"
  | Runtime_call _ -> "runtime_call"
  | Kernel_launch _ -> "kernel_launch"
  | Memory_copy _ -> "memory_copy"
  | Memory_set _ -> "memory_set"
  | Memory_alloc _ -> "memory_alloc"
  | Memory_free _ -> "memory_free"
  | Synchronization _ -> "synchronization"
  | Global_access _ -> "global_access"
  | Access_batch _ -> "access_batch"
  | Device_summary _ -> "device_summary"
  | Shared_access _ -> "shared_access"
  | Kernel_region _ -> "kernel_region"
  | Barrier _ -> "barrier"
  | Kernel_profile _ -> "kernel_profile"
  | Operator _ -> "operator"
  | Tensor_alloc _ -> "tensor_alloc"
  | Tensor_free _ -> "tensor_free"
  | Annotation _ -> "annotation"
  | Tool_quarantined _ -> "tool_quarantined"

(* One name per [payload] constructor, in declaration order.  The
   coverage suite pattern-matches a sample of every constructor against
   this list, so a new constructor that is not added here fails the
   build (via [kind_name]) and then the tests. *)
let all_kinds =
  [
    "driver_call";
    "runtime_call";
    "kernel_launch";
    "memory_copy";
    "memory_set";
    "memory_alloc";
    "memory_free";
    "synchronization";
    "global_access";
    "access_batch";
    "device_summary";
    "shared_access";
    "kernel_region";
    "barrier";
    "kernel_profile";
    "operator";
    "tensor_alloc";
    "tensor_free";
    "annotation";
    "tool_quarantined";
  ]

let is_fine_grained = function
  | Global_access _ | Access_batch _ | Device_summary _ | Shared_access _
  | Kernel_region _ | Barrier _ | Kernel_profile _ ->
      true
  | _ -> false

let is_dl_framework = function
  | Operator _ | Tensor_alloc _ | Tensor_free _ | Annotation _ -> true
  | _ -> false

let pp_phase ppf = function
  | `Enter -> Format.pp_print_string ppf "enter"
  | `Exit -> Format.pp_print_string ppf "exit"

let pp ppf { device; time_us; payload } =
  Format.fprintf ppf "[dev%d %.1fus] " device time_us;
  match payload with
  | Driver_call { name; phase } -> Format.fprintf ppf "driver %s (%a)" name pp_phase phase
  | Runtime_call { name; phase } -> Format.fprintf ppf "runtime %s (%a)" name pp_phase phase
  | Kernel_launch { info; phase = `Begin } ->
      Format.fprintf ppf "launch #%d %s grid=%a" info.grid_id info.name Gpusim.Dim3.pp info.grid
  | Kernel_launch { info; phase = `End s } ->
      Format.fprintf ppf "launch-end #%d %s %.1fus %d accesses" info.grid_id info.name
        s.duration_us s.true_accesses
  | Memory_copy { bytes; direction; stream } ->
      Format.fprintf ppf "memcpy %a %a (stream %d)" Pasta_util.Bytesize.pp bytes
        pp_direction direction stream
  | Memory_set { addr; bytes; value } ->
      Format.fprintf ppf "memset 0x%x %a = %d" addr Pasta_util.Bytesize.pp bytes value
  | Memory_alloc { addr; bytes; managed } ->
      Format.fprintf ppf "malloc%s 0x%x %a"
        (if managed then "(managed)" else "")
        addr Pasta_util.Bytesize.pp bytes
  | Memory_free { addr; bytes } ->
      Format.fprintf ppf "free 0x%x %a" addr Pasta_util.Bytesize.pp bytes
  | Synchronization { scope = `Device } -> Format.fprintf ppf "deviceSynchronize"
  | Synchronization { scope = `Stream s } -> Format.fprintf ppf "streamSynchronize(%d)" s
  | Global_access { kernel; access } ->
      Format.fprintf ppf "gmem %s 0x%x %s w=%d" kernel.name access.addr
        (if access.write then "st" else "ld")
        access.weight
  | Access_batch { kernel; batch } ->
      Format.fprintf ppf "gmem-batch %s %d records w=%d" kernel.name
        (Gpusim.Warp.batch_len batch)
        (Gpusim.Warp.batch_weight batch)
  | Device_summary { kernel; summary } ->
      Format.fprintf ppf "device-summary %s %a" kernel.name Devagg.pp summary
  | Shared_access { kernel; _ } -> Format.fprintf ppf "smem %s" kernel.name
  | Kernel_region { kernel; region } ->
      Format.fprintf ppf "region %s 0x%x+%a %d accesses" kernel.name region.base
        Pasta_util.Bytesize.pp region.extent region.accesses
  | Barrier { kernel; count } -> Format.fprintf ppf "barrier %s x%d" kernel.name count
  | Kernel_profile { kernel; profile } ->
      Format.fprintf ppf "profile %s branches=%d shared=%d" kernel.name
        profile.Gpusim.Kernel.branches profile.Gpusim.Kernel.shared_accesses
  | Operator { name; phase; seq } ->
      Format.fprintf ppf "op %s (%a) seq=%d" name pp_phase phase seq
  | Tensor_alloc { ptr; bytes; tag; _ } ->
      Format.fprintf ppf "tensor+ %s 0x%x %a" tag ptr Pasta_util.Bytesize.pp bytes
  | Tensor_free { ptr; bytes; _ } ->
      Format.fprintf ppf "tensor- 0x%x %a" ptr Pasta_util.Bytesize.pp bytes
  | Annotation { label; phase } ->
      Format.fprintf ppf "pasta.%s(%s)"
        (match phase with `Start -> "start" | `End -> "end")
        label
  | Tool_quarantined { tool; failures } ->
      Format.fprintf ppf "tool %s quarantined after %d failures" tool failures
