module D = Gpusim.Device

type kind = Sanitizer | Nvbit | Rocprofiler | Xprof

let kind_to_string = function
  | Sanitizer -> "compute-sanitizer"
  | Nvbit -> "nvbit"
  | Rocprofiler -> "rocprofiler-sdk"
  | Xprof -> "xprof"

let default_kind_for device =
  match (D.arch device).Gpusim.Arch.vendor with
  | Gpusim.Arch.Nvidia -> Sanitizer
  | Gpusim.Arch.Amd -> Rocprofiler
  | Gpusim.Arch.Google -> Xprof

type session =
  | S_sanitizer of Vendor.Sanitizer.t
  | S_nvbit of Vendor.Nvbit.t
  | S_rocprofiler of Vendor.Rocprofiler.t
  | S_xprof of Vendor.Xprof.t

type t = { device : D.t; session : session; processor : Processor.t }

let require_nvidia device name =
  match (D.arch device).Gpusim.Arch.vendor with
  | Gpusim.Arch.Nvidia -> ()
  | Gpusim.Arch.Amd | Gpusim.Arch.Google ->
      invalid_arg (name ^ ": requires an NVIDIA device")

(* The event-handler layer: adapt one vendor callback into normalized
   submissions.  The enclosing Handler span (begun at the vendor callback
   boundary, see [attach] and the feeders) captures normalization plus
   pump; dispatch time inside the processor is charged to its own layer by
   the telemetry stack discipline. *)
let pump t payloads =
  let time_us = D.now_us t.device in
  List.iter (fun p -> Processor.submit t.processor ~time_us p) payloads

let attach kind device ~processor =
  match kind with
  | Sanitizer ->
      require_nvidia device "Backend.attach(Sanitizer)";
      let s = Vendor.Sanitizer.attach device in
      List.iter
        (Vendor.Sanitizer.enable_domain s)
        [
          Vendor.Sanitizer.Driver_api;
          Vendor.Sanitizer.Launch;
          Vendor.Sanitizer.Memcpy;
          Vendor.Sanitizer.Memset;
          Vendor.Sanitizer.Memory;
          Vendor.Sanitizer.Synchronize;
        ];
      let t = { device; session = S_sanitizer s; processor } in
      Vendor.Sanitizer.set_callback s (fun cb ->
          Telemetry.begin_span Telemetry.Handler "handler.sanitizer";
          pump t (Normalize.of_sanitizer cb);
          Telemetry.end_span Telemetry.Handler);
      t
  | Nvbit ->
      require_nvidia device "Backend.attach(Nvbit)";
      let s = Vendor.Nvbit.attach device in
      let t = { device; session = S_nvbit s; processor } in
      Vendor.Nvbit.at_cuda_event s (fun ev ->
          Telemetry.begin_span Telemetry.Handler "handler.nvbit";
          pump t (Normalize.of_nvbit ev);
          Telemetry.end_span Telemetry.Handler);
      t
  | Rocprofiler ->
      let s = Vendor.Rocprofiler.attach device in
      let t = { device; session = S_rocprofiler s; processor } in
      Vendor.Rocprofiler.configure_callback s (fun r ->
          Telemetry.begin_span Telemetry.Handler "handler.rocprofiler";
          pump t (Normalize.of_rocprofiler r);
          Telemetry.end_span Telemetry.Handler);
      t
  | Xprof ->
      let s = Vendor.Xprof.attach device in
      let t = { device; session = S_xprof s; processor } in
      Vendor.Xprof.configure_callback s (fun r ->
          Telemetry.begin_span Telemetry.Handler "handler.xprof";
          pump t (Normalize.of_xprof r);
          Telemetry.end_span Telemetry.Handler);
      t

let detach t =
  match t.session with
  | S_sanitizer s -> Vendor.Sanitizer.detach s
  | S_nvbit s -> Vendor.Nvbit.detach s
  | S_rocprofiler s -> Vendor.Rocprofiler.detach s
  | S_xprof s -> Vendor.Xprof.detach s

let kind t =
  match t.session with
  | S_sanitizer _ -> Sanitizer
  | S_nvbit _ -> Nvbit
  | S_rocprofiler _ -> Rocprofiler
  | S_xprof _ -> Xprof

let phases t =
  match t.session with
  | S_sanitizer s -> Vendor.Sanitizer.phases s
  | S_nvbit s -> Vendor.Nvbit.phases s
  | S_rocprofiler s -> Vendor.Rocprofiler.phases s
  | S_xprof s -> Vendor.Xprof.phases s

let device t = t.device

let region_feeder t (info : D.launch_info) (r : Gpusim.Kernel.region) =
  Telemetry.begin_span Telemetry.Handler "handler.region";
  Processor.submit_region t.processor
    (Event.kernel_info_of_launch info)
    ~base:r.Gpusim.Kernel.base ~extent:r.Gpusim.Kernel.bytes
    ~accesses:r.Gpusim.Kernel.accesses ~written:r.Gpusim.Kernel.write;
  Telemetry.end_span Telemetry.Handler

let completion_feeder t (info : D.launch_info) (_ : D.exec_stats) =
  Telemetry.begin_span Telemetry.Handler "handler.kernel_complete";
  Processor.flush_kernel_summary t.processor ~time_us:(D.now_us t.device)
    (Event.kernel_info_of_launch info);
  Telemetry.end_span Telemetry.Handler

let access_feeder t (info : D.launch_info) (a : Gpusim.Warp.access) =
  Telemetry.begin_span Telemetry.Handler "handler.access";
  Processor.submit_access t.processor ~time_us:(D.now_us t.device)
    (Event.kernel_info_of_launch info)
    {
      Event.addr = a.Gpusim.Warp.addr;
      size = a.Gpusim.Warp.size;
      write = a.Gpusim.Warp.write;
      pc = a.Gpusim.Warp.pc;
      warp = a.Gpusim.Warp.warp_id;
      weight = a.Gpusim.Warp.weight;
    };
  Telemetry.end_span Telemetry.Handler

let batch_feeder t (info : D.launch_info) (b : Gpusim.Warp.batch) =
  Telemetry.begin_span Telemetry.Handler "handler.batch";
  Processor.submit_access_batch t.processor ~time_us:(D.now_us t.device)
    (Event.kernel_info_of_launch info)
    b;
  Telemetry.end_span Telemetry.Handler

let parallel_completion_feeder t (info : D.launch_info) (_ : D.exec_stats) =
  Telemetry.begin_span Telemetry.Handler "handler.parallel_complete";
  Processor.flush_parallel_summary t.processor ~time_us:(D.now_us t.device)
    (Event.kernel_info_of_launch info);
  Telemetry.end_span Telemetry.Handler

let enable_fine_grained t mode =
  let map_bytes () = Objmap.map_bytes (Processor.objmap t.processor) in
  match (mode, t.session) with
  | Tool.No_fine_grained, _ -> ()
  | Tool.Gpu_accelerated, S_sanitizer s ->
      Vendor.Sanitizer.patch_module s
        (Vendor.Sanitizer.Device_analysis
           {
             map_bytes;
             device_fn = region_feeder t;
             on_kernel_complete = completion_feeder t;
           })
  | Tool.Gpu_accelerated, S_rocprofiler s ->
      Vendor.Rocprofiler.patch_kernels s ~map_bytes ~device_fn:(region_feeder t)
        ~on_kernel_complete:(completion_feeder t)
  | Tool.Gpu_accelerated, S_nvbit _ ->
      invalid_arg "Backend: NVBit supports only CPU-side trace analysis"
  | ( ( Tool.Gpu_accelerated | Tool.Gpu_parallel | Tool.Cpu_sanitizer | Tool.Cpu_nvbit
      | Tool.Instruction_level ),
      S_xprof _ ) ->
      invalid_arg "Backend: TPUs expose no fine-grained instrumentation"
  | Tool.Gpu_parallel, S_sanitizer s ->
      Vendor.Sanitizer.patch_module s
        (Vendor.Sanitizer.Parallel_analysis
           {
             map_bytes;
             on_batch = batch_feeder t;
             on_kernel_complete = parallel_completion_feeder t;
           })
  | Tool.Gpu_parallel, _ ->
      invalid_arg "Backend: parallel device analysis needs the Sanitizer backend"
  | Tool.Cpu_sanitizer, S_sanitizer s ->
      Vendor.Sanitizer.patch_module s
        (Vendor.Sanitizer.Host_analysis
           {
             buffer_records = Vendor.Sanitizer.default_buffer_records;
             on_record = access_feeder t;
             on_batch =
               (if Config.batch_delivery () then Some (batch_feeder t) else None);
             per_record_us = Gpusim.Costmodel.sanitizer_host_per_record_us;
           })
  | Tool.Cpu_nvbit, S_nvbit s ->
      Vendor.Nvbit.instrument_memory s ~on_record:(access_feeder t) ()
  | Tool.Instruction_level, S_sanitizer s ->
      Vendor.Sanitizer.patch_module s
        (Vendor.Sanitizer.Instruction_analysis
           {
             classes = Vendor.Sanitizer.all_instr_classes;
             on_profile =
               (fun info profile ->
                 Telemetry.begin_span Telemetry.Handler "handler.profile";
                 Processor.submit_profile t.processor ~time_us:(D.now_us t.device)
                   (Event.kernel_info_of_launch info)
                   profile;
                 Telemetry.end_span Telemetry.Handler);
             on_shared_access =
               Some
                 (fun info a ->
                   Telemetry.begin_span Telemetry.Handler "handler.shared";
                   Processor.submit t.processor ~time_us:(D.now_us t.device)
                     (Event.Shared_access
                        {
                          kernel = Event.kernel_info_of_launch info;
                          access =
                            {
                              Event.addr = a.Gpusim.Warp.addr;
                              size = a.Gpusim.Warp.size;
                              write = a.Gpusim.Warp.write;
                              pc = a.Gpusim.Warp.pc;
                              warp = a.Gpusim.Warp.warp_id;
                              weight = a.Gpusim.Warp.weight;
                            };
                        });
                   Telemetry.end_span Telemetry.Handler);
             on_barrier =
               Some
                 (fun info count ->
                   Telemetry.begin_span Telemetry.Handler "handler.barrier";
                   Processor.submit t.processor ~time_us:(D.now_us t.device)
                     (Event.Barrier
                        { kernel = Event.kernel_info_of_launch info; count });
                   Telemetry.end_span Telemetry.Handler);
           })
  | Tool.Cpu_sanitizer, _ ->
      invalid_arg "Backend: CPU-sanitizer analysis needs the Sanitizer backend"
  | Tool.Cpu_nvbit, _ -> invalid_arg "Backend: CPU-NVBit analysis needs the NVBit backend"
  | Tool.Instruction_level, _ ->
      invalid_arg "Backend: instruction-level analysis needs the Sanitizer backend"
