(** The [.ptrace] binary trace format: codec, chunked writer, chunked
    reader.

    A trace records the *submission-level* op stream of a live session
    ({!Processor.sink_op} plus timestamps), so replaying it through a
    fresh processor deterministically rebuilds every derived callback
    (region summaries, buffering and guard behaviour) exactly as the
    live run saw them.  The one derived result that is also stored is
    each kernel-end {!Devagg.summary} (as a [Device_summary] payload
    right after its flush marker): aggregation is deterministic, so
    replay re-drives the recorded aggregate instead of paying the
    reduction again.

    Layout: a header (magic ["PTRC"], version byte, device id, free-form
    meta string) followed by self-contained chunks, each framed with its
    payload length, op count and a CRC-32 of the payload.  Kernel
    descriptors are interned per chunk, so a corrupt chunk can be
    skipped without poisoning the rest of the file.  See
    docs/DEVELOPER_GUIDE.md for the byte-level spec and the
    compatibility rule. *)

exception Corrupt of string
(** Raised on malformed input: bad magic, unsupported version, CRC
    mismatch, framing violation or truncation. *)

val version : int
(** Format version this build writes and reads. *)

(** {2 Writer} *)

type writer

val create_writer :
  ?chunk_bytes:int -> ?meta:string -> device:int -> string -> writer
(** [create_writer ~device path] opens [path] and writes the header.
    [chunk_bytes] (default {!Config.trace_chunk_bytes}) bounds capture
    memory: the op buffer is flushed as a framed chunk whenever it
    reaches that size, and at {!close_writer}. *)

val write_op : writer -> time_us:float -> Processor.sink_op -> unit

val close_writer : writer -> unit
(** Flush the final chunk and close the file.  Idempotent. *)

val writer_ops : writer -> int
val writer_bytes : writer -> int
(** Bytes on disk plus the not-yet-flushed buffer. *)

val writer_chunks : writer -> int

(** {2 Reader} *)

type mode = Strict | Tolerant

type header = { h_version : int; h_device : int; h_meta : string }

type read_stats = {
  mutable r_ops : int;  (** ops decoded from intact chunks *)
  mutable r_chunks : int;  (** intact chunks read *)
  mutable r_chunks_skipped : int;  (** corrupt chunks skipped (tolerant) *)
}

val read_header_of_file : string -> header
(** Parse just the header of a trace (cheap — no chunk is read). *)

val read_file :
  ?mode:mode ->
  ?pool:Pasta_util.Domain_pool.t ->
  string ->
  f:(time_us:float -> Processor.sink_op -> unit) ->
  header * read_stats
(** Stream the chunks of a trace, calling [f] on every op in recorded
    order.  [Strict] (default) raises {!Corrupt} on the first CRC
    mismatch, framing violation or truncation; [Tolerant] skips the
    offending chunk and keeps going.  A corrupt chunk is all-or-nothing:
    none of its ops reach [f].  When [pool] is supplied (size > 1),
    chunks are CRC-checked and decoded in parallel, a bounded window at
    a time — chunks are self-contained, and [f] still runs in recorded
    order, so results are identical to the serial read. *)

(** {2 Inspection helpers} *)

val op_kind_name : Processor.sink_op -> string
(** Classifier for op histograms ([trace stat]); [Sk_event] ops report
    their payload's {!Event.kind_name}. *)

val op_records : Processor.sink_op -> int
(** Fine-grained records the op carries (a batch counts its length). *)

(** {2 Standalone payload codec}

    Round-trip codec for a single {!Event.payload} with a fresh
    kernel-interning context, used by property tests. *)

val payload_to_string : Event.payload -> string

val op_to_string : time_us:float -> Processor.sink_op -> string
(** Canonical self-contained encoding of one op (fresh interning
    context), used to fingerprint op streams for [trace diff]. *)

val payload_of_string : string -> Event.payload
(** Raises {!Corrupt} on malformed or trailing bytes. *)
