module D = Gpusim.Device
module Cost = Gpusim.Costmodel

type domain = Driver_api | Launch | Memcpy | Memset | Memory | Synchronize

type callback =
  | Api of { name : string; phase : [ `Enter | `Exit ] }
  | Launch_begin of D.launch_info
  | Launch_end of D.launch_info * D.exec_stats
  | Memcpy_cb of { dst : int; src : int; bytes : int; kind : D.memcpy_kind; stream : int }
  | Memset_cb of { addr : int; bytes : int; value : int; stream : int }
  | Alloc_cb of Gpusim.Device_mem.alloc
  | Free_cb of Gpusim.Device_mem.alloc
  | Sync_cb of [ `Device | `Stream of int ]

type instr_class = Control_flow | Shared_mem | Barrier_sync | Operand_values

let all_instr_classes = [ Control_flow; Shared_mem; Barrier_sync; Operand_values ]

type patch_mode =
  | Device_analysis of {
      map_bytes : unit -> int;
      device_fn : D.launch_info -> Gpusim.Kernel.region -> unit;
      on_kernel_complete : D.launch_info -> D.exec_stats -> unit;
    }
  | Host_analysis of {
      buffer_records : int;
      on_record : D.launch_info -> Gpusim.Warp.access -> unit;
      on_batch : (D.launch_info -> Gpusim.Warp.batch -> unit) option;
      per_record_us : float;
    }
  | Parallel_analysis of {
      map_bytes : unit -> int;
      on_batch : D.launch_info -> Gpusim.Warp.batch -> unit;
      on_kernel_complete : D.launch_info -> D.exec_stats -> unit;
    }
  | Instruction_analysis of {
      classes : instr_class list;
      on_profile : D.launch_info -> Gpusim.Kernel.profile -> unit;
      on_shared_access : (D.launch_info -> Gpusim.Warp.access -> unit) option;
      on_barrier : (D.launch_info -> int -> unit) option;
    }

let default_buffer_records = 4 * 1024 * 1024 / Cost.record_bytes

type t = {
  device : D.t;
  probe_name : string;
  mutable domains : domain list;
  mutable callback : callback -> unit;
  mutable patched : bool;
  phases : Phases.t;
  (* Host-analysis buffering state: true (unsampled) record count pending in
     the device buffer, plus the sampled payloads standing for them. *)
  mutable pending_true : int;
  mutable pending_records : (D.launch_info * Gpusim.Warp.access) list;
  mutable pending_batches : (D.launch_info * Gpusim.Warp.batch) list;
}

let enabled t d = List.mem d t.domains

let dispatch t ev =
  match ev with
  | D.Api { name; phase } ->
      if enabled t Driver_api then t.callback (Api { name; phase })
  | D.Malloc { alloc } -> if enabled t Memory then t.callback (Alloc_cb alloc)
  | D.Free { alloc } -> if enabled t Memory then t.callback (Free_cb alloc)
  | D.Memcpy { dst; src; bytes; kind; stream } ->
      if enabled t Memcpy then t.callback (Memcpy_cb { dst; src; bytes; kind; stream })
  | D.Memset { addr; bytes; value; stream } ->
      if enabled t Memset then t.callback (Memset_cb { addr; bytes; value; stream })
  | D.Launch_begin info ->
      if enabled t Launch then t.callback (Launch_begin info)
  | D.Launch_end (info, stats) ->
      t.phases.Phases.workload_us <- t.phases.Phases.workload_us +. stats.D.duration_us;
      if enabled t Launch then t.callback (Launch_end (info, stats))
  | D.Sync scope -> if enabled t Synchronize then t.callback (Sync_cb scope)

let attach device =
  let t =
    {
      device;
      probe_name = Printf.sprintf "sanitizer-%d" (D.id device);
      domains = [];
      callback = ignore;
      patched = false;
      phases = Phases.create ();
      pending_true = 0;
      pending_records = [];
      pending_batches = [];
    }
  in
  D.add_probe device { D.probe_name = t.probe_name; on_event = (fun ev -> dispatch t ev) };
  t

let unpatch_module t =
  if t.patched then begin
    D.clear_instrument t.device;
    t.patched <- false;
    t.pending_true <- 0;
    t.pending_records <- [];
    t.pending_batches <- []
  end

let detach t =
  unpatch_module t;
  D.remove_probe t.device t.probe_name

let enable_domain t d = if not (enabled t d) then t.domains <- d :: t.domains
let disable_domain t d = t.domains <- List.filter (fun x -> x <> d) t.domains
let set_callback t f = t.callback <- f

let charge t ~phase us = Phases.charge (D.clock t.device) t.phases phase us

let flush_host t ~on_record ~on_batch ~per_record_us =
  if t.pending_true > 0 then begin
    let arch = D.arch t.device in
    charge t ~phase:`Transfer (Cost.transfer_time_us arch ~records:t.pending_true);
    charge t ~phase:`Analysis
      (Cost.host_analysis_time_us ~records:t.pending_true ~per_record_us);
    List.iter (fun (info, a) -> on_record info a) (List.rev t.pending_records);
    List.iter
      (fun (info, b) ->
        match on_batch with
        | Some fb -> fb info b
        | None -> Gpusim.Warp.iter_batch b ~f:(fun a -> on_record info a))
      (List.rev t.pending_batches);
    t.pending_true <- 0;
    t.pending_records <- [];
    t.pending_batches <- []
  end

(* Restrict a ground-truth profile to the patched classes, and count the
   dynamic instructions whose observation must be paid for. *)
let mask_profile classes (p : Gpusim.Kernel.profile) =
  let has c = List.mem c classes in
  let masked =
    {
      Gpusim.Kernel.branches = (if has Control_flow then p.Gpusim.Kernel.branches else 0);
      divergent_branches = (if has Control_flow then p.Gpusim.Kernel.divergent_branches else 0);
      shared_accesses = (if has Shared_mem then p.Gpusim.Kernel.shared_accesses else 0);
      bank_conflicts = (if has Shared_mem then p.Gpusim.Kernel.bank_conflicts else 0);
      barrier_stall_us = (if has Barrier_sync then p.Gpusim.Kernel.barrier_stall_us else 0.0);
      value_min = (if has Operand_values then p.Gpusim.Kernel.value_min else 0.0);
      value_max = (if has Operand_values then p.Gpusim.Kernel.value_max else 0.0);
      redundant_loads = (if has Operand_values then p.Gpusim.Kernel.redundant_loads else 0);
    }
  in
  let instrumented =
    (if has Control_flow then p.Gpusim.Kernel.branches else 0)
    + (if has Shared_mem then p.Gpusim.Kernel.shared_accesses else 0)
    + if has Operand_values then p.Gpusim.Kernel.redundant_loads else 0
  in
  (masked, instrumented)

(* Shared-memory patching surfaces individual transactions, not just the
   per-kernel aggregate.  The simulator's kernels carry only the dynamic
   count, so we expand it into a bounded set of weighted records — a pure
   function of the kernel, with weights summing exactly to the count, so
   instruction-level runs stay byte-deterministic. *)
let synth_shared_accesses ~(kernel : Gpusim.Kernel.t) ~total ~f =
  if total > 0 then begin
    let n = min 16 total in
    let base = total / n and extra = total mod n in
    let span = max kernel.Gpusim.Kernel.shared_bytes 128 in
    for i = 0 to n - 1 do
      f
        {
          Gpusim.Warp.addr = i * 128 mod span;
          size = 4;
          write = i land 1 = 1;
          warp_id = i;
          pc = 0x500 + (4 * i);
          weight = base + (if i < extra then 1 else 0);
        }
    done
  end

let patch_module t mode =
  let arch = D.arch t.device in
  let instrument =
    match mode with
    | Device_analysis { map_bytes; device_fn; on_kernel_complete } ->
        {
          D.instr_name = "sanitizer-device-analysis";
          materialize = false;
          on_kernel_entry =
            (fun _info ->
              (* Ship the object map to the device. *)
              charge t ~phase:`Transfer
                (Cost.memcpy_time_us arch ~bytes:(map_bytes ()) ~kind:`H2d));
          on_region =
            (fun info region ->
              (* Fused in-situ collection + analysis (Fig. 2b): cost is
                 per-access, amortized over hardware lanes. *)
              charge t ~phase:`Collect
                (Cost.device_analysis_time_us arch ~accesses:region.Gpusim.Kernel.accesses
                   ~per_access_us:Cost.sanitizer_gpu_per_access_us);
              device_fn info region);
          on_access = (fun _ _ -> ());
          on_access_batch = None;
          on_kernel_exit =
            (fun info stats ->
              charge t ~phase:`Transfer
                (Cost.memcpy_time_us arch ~bytes:(map_bytes ()) ~kind:`D2h);
              on_kernel_complete info stats);
        }
    | Host_analysis { buffer_records; on_record; on_batch; per_record_us } ->
        if buffer_records <= 0 then
          invalid_arg "Sanitizer.patch_module: buffer_records must be positive";
        {
          D.instr_name = "sanitizer-host-analysis";
          materialize = true;
          on_kernel_entry = (fun _ -> ());
          on_region =
            (fun _info region ->
              charge t ~phase:`Collect
                (Cost.collect_time_us arch ~accesses:region.Gpusim.Kernel.accesses
                   ~per_access_us:Cost.sanitizer_collect_per_access_us));
          on_access =
            (fun info a ->
              (* The buffer fills with *true* records; the GPU stalls while
                 the host drains it (Fig. 2a). *)
              t.pending_true <- t.pending_true + a.Gpusim.Warp.weight;
              t.pending_records <- (info, a) :: t.pending_records;
              if t.pending_true >= buffer_records then
                flush_host t ~on_record ~on_batch ~per_record_us);
          on_access_batch =
            Some
              (fun info b ->
                t.pending_true <- t.pending_true + Gpusim.Warp.batch_weight b;
                t.pending_batches <- (info, b) :: t.pending_batches;
                if t.pending_true >= buffer_records then
                  flush_host t ~on_record ~on_batch ~per_record_us);
          on_kernel_exit =
            (fun _info _stats -> flush_host t ~on_record ~on_batch ~per_record_us);
        }
    | Parallel_analysis { map_bytes; on_batch; on_kernel_complete } ->
        {
          D.instr_name = "sanitizer-parallel-analysis";
          materialize = true;
          on_kernel_entry =
            (fun _info ->
              (* Ship the object map to the device; the in-situ reduction
                 resolves objects there (Fig. 2b). *)
              charge t ~phase:`Transfer
                (Cost.memcpy_time_us arch ~bytes:(map_bytes ()) ~kind:`H2d));
          on_region =
            (fun _info region ->
              (* Collection + parallel reduction happen on-device, amortized
                 over the analysis lanes, as in Device_analysis. *)
              charge t ~phase:`Collect
                (Cost.device_analysis_time_us arch ~accesses:region.Gpusim.Kernel.accesses
                   ~per_access_us:Cost.sanitizer_gpu_per_access_us));
          on_access = (fun _ _ -> ());
          (* Batches model device-side shard buffers: the simulated cost of
             producing them is the Collect charge above; only the merged
             summary map is charged as a D2h transfer at kernel exit. *)
          on_access_batch = Some on_batch;
          on_kernel_exit =
            (fun info stats ->
              charge t ~phase:`Transfer
                (Cost.memcpy_time_us arch ~bytes:(map_bytes ()) ~kind:`D2h);
              on_kernel_complete info stats);
        }
    | Instruction_analysis { classes; on_profile; on_shared_access; on_barrier } ->
        {
          D.instr_name = "sanitizer-instruction-analysis";
          materialize = false;
          on_kernel_entry = (fun _ -> ());
          on_region = (fun _ _ -> ());
          on_access = (fun _ _ -> ());
          on_access_batch = None;
          on_kernel_exit =
            (fun info _stats ->
              let kernel = info.D.kernel in
              let masked, instrumented =
                mask_profile classes kernel.Gpusim.Kernel.prof
              in
              charge t ~phase:`Collect
                (Cost.device_analysis_time_us arch ~accesses:instrumented
                   ~per_access_us:Cost.sanitizer_gpu_per_access_us);
              (if List.mem Shared_mem classes then
                 match on_shared_access with
                 | Some f ->
                     synth_shared_accesses ~kernel
                       ~total:masked.Gpusim.Kernel.shared_accesses
                       ~f:(fun a -> f info a)
                 | None -> ());
              (if List.mem Barrier_sync classes then
                 match on_barrier with
                 | Some f when kernel.Gpusim.Kernel.barriers > 0 ->
                     f info kernel.Gpusim.Kernel.barriers
                 | _ -> ());
              on_profile info masked);
        }
  in
  D.set_instrument t.device instrument;
  t.patched <- true

let phases t = t.phases
let reset_phases t = Phases.reset t.phases
