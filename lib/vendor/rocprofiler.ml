module D = Gpusim.Device
module Cost = Gpusim.Costmodel

type record =
  | Hip_api of { name : string; phase : [ `Enter | `Exit ] }
  | Kernel_dispatch of {
      agent : int;
      queue : int;
      dispatch : D.launch_info;
      phase : [ `Begin | `End ];
      stats : D.exec_stats option;
    }
  | Memory_copy of { bytes : int; kind : D.memcpy_kind }
  | Memory_allocate of { address : int; size_delta : int; agent : int }
  | Scratch_memory of { bytes : int }
  | Sync_event

type t = {
  device : D.t;
  probe_name : string;
  mutable callback : record -> unit;
  mutable patched : bool;
  phases : Phases.t;
}

let dispatch t ev =
  let agent = D.id t.device in
  match ev with
  | D.Api { name; phase } -> t.callback (Hip_api { name; phase })
  | D.Malloc { alloc } ->
      t.callback
        (Memory_allocate
           { address = alloc.Gpusim.Device_mem.base;
             size_delta = alloc.Gpusim.Device_mem.bytes;
             agent })
  | D.Free { alloc } ->
      (* The SDK convention: a release is a negative-sized allocation. *)
      t.callback
        (Memory_allocate
           { address = alloc.Gpusim.Device_mem.base;
             size_delta = -alloc.Gpusim.Device_mem.bytes;
             agent })
  | D.Memcpy { bytes; kind; _ } -> t.callback (Memory_copy { bytes; kind })
  | D.Memset { bytes; _ } -> t.callback (Scratch_memory { bytes })
  | D.Launch_begin info ->
      t.callback
        (Kernel_dispatch
           { agent; queue = info.D.stream; dispatch = info; phase = `Begin; stats = None })
  | D.Launch_end (info, stats) ->
      t.phases.Phases.workload_us <- t.phases.Phases.workload_us +. stats.D.duration_us;
      t.callback
        (Kernel_dispatch
           { agent;
             queue = info.D.stream;
             dispatch = info;
             phase = `End;
             stats = Some stats })
  | D.Sync _ -> t.callback Sync_event

let attach device =
  (match (D.arch device).Gpusim.Arch.vendor with
  | Gpusim.Arch.Amd -> ()
  | Gpusim.Arch.Nvidia | Gpusim.Arch.Google ->
      invalid_arg "Rocprofiler.attach: not an AMD device");
  let t =
    {
      device;
      probe_name = Printf.sprintf "rocprofiler-%d" (D.id device);
      callback = ignore;
      patched = false;
      phases = Phases.create ();
    }
  in
  D.add_probe device { D.probe_name = t.probe_name; on_event = (fun ev -> dispatch t ev) };
  t

let unpatch_kernels t =
  if t.patched then begin
    D.clear_instrument t.device;
    t.patched <- false
  end

let detach t =
  unpatch_kernels t;
  D.remove_probe t.device t.probe_name

let configure_callback t f = t.callback <- f

let charge t ~phase us = Phases.charge (D.clock t.device) t.phases phase us

let patch_kernels t ~map_bytes ~device_fn ~on_kernel_complete =
  let arch = D.arch t.device in
  let instrument =
    {
      D.instr_name = "rocprofiler-device-analysis";
      materialize = false;
      on_kernel_entry =
        (fun _info ->
          charge t ~phase:`Transfer
            (Cost.memcpy_time_us arch ~bytes:(map_bytes ()) ~kind:`H2d));
      on_region =
        (fun info region ->
          charge t ~phase:`Collect
            (Cost.device_analysis_time_us arch
               ~accesses:region.Gpusim.Kernel.accesses
               ~per_access_us:Cost.sanitizer_gpu_per_access_us);
          device_fn info region);
      on_access = (fun _ _ -> ());
      on_access_batch = None;
      on_kernel_exit =
        (fun info stats ->
          charge t ~phase:`Transfer
            (Cost.memcpy_time_us arch ~bytes:(map_bytes ()) ~kind:`D2h);
          on_kernel_complete info stats);
    }
  in
  D.set_instrument t.device instrument;
  t.patched <- true

let phases t = t.phases
let reset_phases t = Phases.reset t.phases
