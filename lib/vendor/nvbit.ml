module D = Gpusim.Device
module Cost = Gpusim.Costmodel

type cuda_event =
  | Ev_launch_begin of D.launch_info
  | Ev_launch_end of D.launch_info * D.exec_stats
  | Ev_memcpy of { bytes : int; kind : D.memcpy_kind }
  | Ev_malloc of Gpusim.Device_mem.alloc
  | Ev_free of Gpusim.Device_mem.alloc
  | Ev_sync

type t = {
  device : D.t;
  probe_name : string;
  mutable callback : cuda_event -> unit;
  mutable instrumented : bool;
  parsed : (string, Gpusim.Instr.t list) Hashtbl.t;
  phases : Phases.t;
  mutable pending_true : int;
  mutable pending_records : (D.launch_info * Gpusim.Warp.access) list;
}

let dispatch t ev =
  match ev with
  | D.Launch_begin info -> t.callback (Ev_launch_begin info)
  | D.Launch_end (info, stats) ->
      t.phases.Phases.workload_us <- t.phases.Phases.workload_us +. stats.D.duration_us;
      t.callback (Ev_launch_end (info, stats))
  | D.Memcpy { bytes; kind; _ } -> t.callback (Ev_memcpy { bytes; kind })
  | D.Malloc { alloc } -> t.callback (Ev_malloc alloc)
  | D.Free { alloc } -> t.callback (Ev_free alloc)
  | D.Sync _ -> t.callback Ev_sync
  | D.Api _ | D.Memset _ -> ()

let attach device =
  let t =
    {
      device;
      probe_name = Printf.sprintf "nvbit-%d" (D.id device);
      callback = ignore;
      instrumented = false;
      parsed = Hashtbl.create 64;
      phases = Phases.create ();
      pending_true = 0;
      pending_records = [];
    }
  in
  D.add_probe device { D.probe_name = t.probe_name; on_event = (fun ev -> dispatch t ev) };
  t

let uninstrument t =
  if t.instrumented then begin
    D.clear_instrument t.device;
    t.instrumented <- false;
    t.pending_true <- 0;
    t.pending_records <- []
  end

let detach t =
  uninstrument t;
  D.remove_probe t.device t.probe_name

let at_cuda_event t f = t.callback <- f

let charge t ~phase us = Phases.charge (D.clock t.device) t.phases phase us

let get_instrs t kernel =
  let name = kernel.Gpusim.Kernel.name in
  match Hashtbl.find_opt t.parsed name with
  | Some instrs -> instrs
  | None ->
      (* Dump the SASS text and parse it back — the round trip a real
         NVBit tool performs to locate memory instructions. *)
      let text = Gpusim.Sass.dump kernel in
      let instrs = Gpusim.Sass.parse text in
      charge t ~phase:`Collect
        (Cost.sass_dump_parse_time_us ~static_instrs:(List.length instrs));
      Hashtbl.add t.parsed name instrs;
      instrs

let functions_parsed t = Hashtbl.length t.parsed

let flush t ~on_record ~per_record_us =
  if t.pending_true > 0 then begin
    let arch = D.arch t.device in
    charge t ~phase:`Transfer
      (Cost.transfer_time_us arch ~records:t.pending_true +. Cost.flush_overhead_us);
    charge t ~phase:`Analysis
      (Cost.host_analysis_time_us ~records:t.pending_true ~per_record_us);
    List.iter (fun (info, a) -> on_record info a) (List.rev t.pending_records);
    t.pending_true <- 0;
    t.pending_records <- []
  end

let instrument_memory t ?(buffer_records = 4 * 1024 * 1024 / Cost.record_bytes)
    ?(per_record_us = Cost.nvbit_host_per_record_us) ~on_record () =
  if buffer_records <= 0 then
    invalid_arg "Nvbit.instrument_memory: buffer_records must be positive";
  let arch = D.arch t.device in
  let instrument =
    {
      D.instr_name = "nvbit-memtrace";
      materialize = true;
      on_kernel_entry =
        (fun info ->
          (* First launch of a function: dump + parse its SASS.  The parsed
             memory PCs are what gets instrumented. *)
          ignore (Gpusim.Sass.memory_pcs (get_instrs t info.D.kernel)));
      on_region =
        (fun _info region ->
          charge t ~phase:`Collect
            (Cost.collect_time_us arch ~accesses:region.Gpusim.Kernel.accesses
               ~per_access_us:Cost.nvbit_collect_per_access_us));
      on_access =
        (fun info a ->
          t.pending_true <- t.pending_true + a.Gpusim.Warp.weight;
          t.pending_records <- (info, a) :: t.pending_records;
          if t.pending_true >= buffer_records then flush t ~on_record ~per_record_us);
      (* NVBit's trampoline really is one callback per dynamic access;
         batching is a Sanitizer-substrate capability. *)
      on_access_batch = None;
      on_kernel_exit = (fun _info _stats -> flush t ~on_record ~per_record_us);
    }
  in
  D.set_instrument t.device instrument;
  t.instrumented <- true

let instrument_opcodes t ~opcodes ~on_counts () =
  let arch = D.arch t.device in
  let instrument =
    {
      D.instr_name = "nvbit-opcode-counter";
      materialize = false;
      on_kernel_entry = (fun _ -> ());
      on_region = (fun _ _ -> ());
      on_access = (fun _ _ -> ());
      on_access_batch = None;
      on_kernel_exit =
        (fun info _stats ->
          let kernel = info.D.kernel in
          let instrs = get_instrs t kernel in
          let threads = Gpusim.Kernel.threads kernel in
          let counts =
            List.map
              (fun opcode ->
                let static =
                  List.length
                    (List.filter (fun (i : Gpusim.Instr.t) -> i.Gpusim.Instr.opcode = opcode) instrs)
                in
                (opcode, static * threads))
              opcodes
          in
          let dynamic = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
          charge t ~phase:`Collect
            (Cost.collect_time_us arch ~accesses:dynamic
               ~per_access_us:Cost.nvbit_collect_per_access_us);
          on_counts info counts);
    }
  in
  D.set_instrument t.device instrument;
  t.instrumented <- true

let phases t = t.phases
let reset_phases t = Phases.reset t.phases
