(** Compute-Sanitizer-style profiling substrate.

    Mirrors the NVIDIA Sanitizer API surface PASTA builds on
    (paper §III-D): callback *domains* that are enabled per subscription
    ([sanitizerEnableDomain]), per-CBID callbacks for coarse host events,
    and *module patching* ([sanitizerPatchModule]) for fine-grained
    device events.  Patching supports the two analysis models of the
    paper's Fig. 2:

    - {!Device_analysis} — the GPU-resident collect-and-analyze model:
      a device function aggregates accesses in place, only a small result
      map crosses the link (Fig. 2b);
    - {!Host_analysis} — trace collection into a fixed device buffer that
      stalls when full and is drained by a single host thread (Fig. 2a).

    All instrumentation costs are charged on the device clock and
    attributed to a {!Phases.t} accounting. *)

type domain = Driver_api | Launch | Memcpy | Memset | Memory | Synchronize

type callback =
  | Api of { name : string; phase : [ `Enter | `Exit ] }
  | Launch_begin of Gpusim.Device.launch_info
  | Launch_end of Gpusim.Device.launch_info * Gpusim.Device.exec_stats
  | Memcpy_cb of {
      dst : int;
      src : int;
      bytes : int;
      kind : Gpusim.Device.memcpy_kind;
      stream : int;
    }
  | Memset_cb of { addr : int; bytes : int; value : int; stream : int }
  | Alloc_cb of Gpusim.Device_mem.alloc
  | Free_cb of Gpusim.Device_mem.alloc
  | Sync_cb of [ `Device | `Stream of int ]

type instr_class = Control_flow | Shared_mem | Barrier_sync | Operand_values

val all_instr_classes : instr_class list

type patch_mode =
  | Device_analysis of {
      map_bytes : unit -> int;
          (** size of the object→count map shipped to the device at launch
              and back at completion *)
      device_fn : Gpusim.Device.launch_info -> Gpusim.Kernel.region -> unit;
          (** the \_\_device\_\_ accumulation function, invoked with exact
              region aggregates *)
      on_kernel_complete :
        Gpusim.Device.launch_info -> Gpusim.Device.exec_stats -> unit;
          (** host callback once the result map is back *)
    }
  | Host_analysis of {
      buffer_records : int;  (** device trace-buffer capacity, in records *)
      on_record : Gpusim.Device.launch_info -> Gpusim.Warp.access -> unit;
          (** host analysis of each (sampled, weighted) record *)
      on_batch :
        (Gpusim.Device.launch_info -> Gpusim.Warp.batch -> unit) option;
          (** when set, drained records are forwarded as packed batches in
              generation order instead of through [on_record] *)
      per_record_us : float;  (** host cost per true record *)
    }
  | Parallel_analysis of {
      map_bytes : unit -> int;
          (** size of the object map shipped to the device at launch and of
              the merged summary shipped back at completion *)
      on_batch : Gpusim.Device.launch_info -> Gpusim.Warp.batch -> unit;
          (** device-side shard buffer handoff: packed record batches in
              deterministic (region, chunk) order, produced in parallel on
              the device *)
      on_kernel_complete :
        Gpusim.Device.launch_info -> Gpusim.Device.exec_stats -> unit;
          (** host callback once the merged summary map is back *)
    }
      (** The GPU-accelerated preprocessing model with materialized
          records (Fig. 2b applied to trace reduction): records are
          generated and reduced in parallel on the device, and only the
          merged summary is charged as a host transfer. *)
  | Instruction_analysis of {
      classes : instr_class list;
          (** instruction classes to patch; only those classes' aggregates
              are observable (and paid for) *)
      on_profile :
        Gpusim.Device.launch_info -> Gpusim.Kernel.profile -> unit;
          (** per-kernel behaviour aggregates, device-analyzed; fields of
              unpatched classes are zeroed *)
      on_shared_access :
        (Gpusim.Device.launch_info -> Gpusim.Warp.access -> unit) option;
          (** individual shared-memory transactions, surfaced only when
              [Shared_mem] is patched: a bounded set of weighted records
              per kernel whose weights sum exactly to the kernel's dynamic
              shared-access count (a pure function of the kernel, so runs
              stay byte-deterministic) *)
      on_barrier :
        (Gpusim.Device.launch_info -> int -> unit) option;
          (** per-kernel dynamic barrier count, surfaced only when
              [Barrier_sync] is patched and the kernel has barriers *)
    }
      (** Instruction-level patching (paper §III-H): control-flow for
          branch-divergence analysis, shared-memory for bank conflicts,
          barriers for stall analysis, operand values for value-based
          tools.  Device-resident like {!Device_analysis}. *)

type t

val attach : Gpusim.Device.t -> t
(** Subscribe to the device.  No callbacks fire until domains are enabled. *)

val detach : t -> unit

val enable_domain : t -> domain -> unit
val disable_domain : t -> domain -> unit
val set_callback : t -> (callback -> unit) -> unit

val patch_module : t -> patch_mode -> unit
(** Install fine-grained instrumentation (requires the [Memory] domain to
    deliver events; patching replaces any previous patch on the device). *)

val unpatch_module : t -> unit

val phases : t -> Phases.t
(** Cumulative phase accounting since attach (or the last [reset]). *)

val reset_phases : t -> unit

val default_buffer_records : int
(** 262144 records = the 4 MB device buffer the paper mentions. *)
