type t = {
  mutable workload_us : float;
  mutable collect_us : float;
  mutable transfer_us : float;
  mutable analysis_us : float;
  mutable dropped_records : int;
}

let create () =
  {
    workload_us = 0.0;
    collect_us = 0.0;
    transfer_us = 0.0;
    analysis_us = 0.0;
    dropped_records = 0;
  }

let reset t =
  t.workload_us <- 0.0;
  t.collect_us <- 0.0;
  t.transfer_us <- 0.0;
  t.analysis_us <- 0.0;
  t.dropped_records <- 0

let total_us t = t.workload_us +. t.collect_us +. t.transfer_us +. t.analysis_us
let overhead_us t = t.collect_us +. t.transfer_us +. t.analysis_us

let add a b =
  {
    workload_us = a.workload_us +. b.workload_us;
    collect_us = a.collect_us +. b.collect_us;
    transfer_us = a.transfer_us +. b.transfer_us;
    analysis_us = a.analysis_us +. b.analysis_us;
    dropped_records = a.dropped_records + b.dropped_records;
  }

let charge clock t phase us =
  Gpusim.Clock.advance_us clock us;
  match phase with
  | `Collect -> t.collect_us <- t.collect_us +. us
  | `Transfer -> t.transfer_us <- t.transfer_us +. us
  | `Analysis -> t.analysis_us <- t.analysis_us +. us

let pp ppf t =
  Format.fprintf ppf
    "workload %.1fus, collect %.1fus, transfer %.1fus, analysis %.1fus"
    t.workload_us t.collect_us t.transfer_us t.analysis_us;
  if t.dropped_records > 0 then
    Format.fprintf ppf ", %d records dropped" t.dropped_records

let fractions t =
  let total = total_us t in
  if total <= 0.0 then (0.0, 0.0, 0.0, 0.0)
  else
    ( t.workload_us /. total,
      t.collect_us /. total,
      t.transfer_us /. total,
      t.analysis_us /. total )
