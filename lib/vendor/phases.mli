(** Profiling-time phase accounting.

    The paper's Fig. 10 breaks total profiling time into workload
    execution, trace collection, trace transfer and trace analysis.  Every
    profiling backend charges its costs through one of these accumulators
    so the breakdown can be reported per run.  In the GPU-accelerated
    model collection and analysis are fused into one device function, so
    backends in that mode charge the fused time to [collect_us] — exactly
    the convention the paper uses. *)

type t = {
  mutable workload_us : float;  (** baseline kernel / copy execution *)
  mutable collect_us : float;  (** trace collection (device side) *)
  mutable transfer_us : float;  (** device-to-host buffer copies *)
  mutable analysis_us : float;  (** host-side record processing *)
  mutable dropped_records : int;
      (** fine-grained records lost to bounded-buffer overflow *)
}

val create : unit -> t
val reset : t -> unit
val total_us : t -> float
val overhead_us : t -> float
(** Everything but the workload itself. *)

val add : t -> t -> t
(** Fresh sum of two accountings. *)

val charge :
  Gpusim.Clock.t -> t -> [ `Collect | `Transfer | `Analysis ] -> float -> unit
(** Advance the device clock by the duration and attribute it to the
    given phase — the one way every profiling substrate charges its
    overhead. *)

val pp : Format.formatter -> t -> unit

val fractions : t -> float * float * float * float
(** (workload, collect, transfer, analysis) as fractions of the total;
    all zero when the total is zero. *)
