(* Evaluation harness: regenerates every table and figure of the paper's
   evaluation section (PASTA, CGO 2026) on the simulated substrate, plus
   wall-clock Bechamel microbenches and ablations.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig9    -- one experiment
     dune exec bench/main.exe -- list    -- available experiments *)

module Runner = Dlfw.Runner
module MC = Pasta_tools.Memory_charact
module UX = Pasta_tools.Uvm_experiment

(* All experiment output goes through [ppf], which forwards to the current
   target — stdout by default, a per-experiment results file under
   [--out DIR]. *)
let out_ppf = ref Format.std_formatter

let ppf =
  Format.make_formatter
    (fun s pos len ->
      let out = Format.pp_get_formatter_out_functions !out_ppf () in
      out.Format.out_string s pos len)
    (fun () -> Format.pp_print_flush !out_ppf ())

let section title =
  Format.fprintf ppf "@.=== %s ===@.@." title

let mb bytes = float_of_int bytes /. 1048576.0

let all_workloads =
  List.concat_map
    (fun abbr -> [ (abbr, Runner.Inference); (abbr, Runner.Train) ])
    Runner.all_abbrs

(* Run a workload on a fresh device; returns (device, ctx, model) post-run. *)
let fresh_run ?(arch = Gpusim.Arch.a100) ?session_tool abbr mode =
  let device = Gpusim.Device.create arch in
  let ctx = Dlfw.Ctx.create device in
  let session = Option.map (fun tool -> Pasta.Session.attach ~tool device) session_tool in
  let model = Runner.run_default ctx abbr ~mode in
  let result = Option.map Pasta.Session.detach session in
  (device, ctx, model, result)

let baseline_time ?(arch = Gpusim.Arch.a100) abbr mode =
  let device, ctx, _, _ = fresh_run ~arch abbr mode in
  let t = Gpusim.Device.now_us device in
  Dlfw.Ctx.destroy ctx;
  t

(* ------------------------------------------------------------------ *)
(* Figure 4: cross-layer call stack of the hottest kernel.            *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "Figure 4: cross-layer call stack, most memory-referencing kernel (BERT inference)";
  let kf = Pasta_tools.Kernel_freq.create () in
  let _, ctx, _, _ =
    fresh_run ~session_tool:(Pasta_tools.Kernel_freq.tool kf) "BERT" Runner.Inference
  in
  (match Pasta_tools.Kernel_freq.most_mem_referenced kf with
  | None -> Format.fprintf ppf "no kernels observed@."
  | Some (k, accesses) ->
      Format.fprintf ppf "kernel: %s (%d memory references)@.@." k.Pasta.Event.name accesses;
      Pasta.Callstack.pp ppf (Pasta.Callstack.of_kernel k));
  Dlfw.Ctx.destroy ctx

(* ------------------------------------------------------------------ *)
(* Figure 7: kernel invocation frequency distribution.                *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  section "Figure 7: kernel invocation frequency across model inference and training";
  List.iter
    (fun (abbr, mode) ->
      let kf = Pasta_tools.Kernel_freq.create () in
      let _, ctx, _, _ =
        fresh_run ~session_tool:(Pasta_tools.Kernel_freq.tool kf) abbr mode
      in
      Format.fprintf ppf "%s %s: %d launches, %d distinct kernels@." abbr
        (Runner.mode_to_string mode)
        (Pasta_tools.Kernel_freq.total_launches kf)
        (Pasta_tools.Kernel_freq.distinct_kernels kf);
      List.iter
        (fun (name, count) -> Format.fprintf ppf "    %-62s %8d@." name count)
        (Pasta_tools.Kernel_freq.top kf 6);
      Dlfw.Ctx.destroy ctx)
    all_workloads

(* ------------------------------------------------------------------ *)
(* Table V: memory characteristics of the DNN models.                 *)
(* ------------------------------------------------------------------ *)

(* Reference values from the paper, for side-by-side comparison:
   (kernel count, footprint MB, WS MB, avg MB, median MB, p90 MB). *)
let paper_tablev = function
  | "AN", Runner.Inference -> Some (1428, 1528.13, 876.12, 216.25, 148.26, 406.33)
  | "RN-18", Runner.Inference -> Some (1497, 1232.13, 1024.0, 86.07, 64.0, 172.27)
  | "RN-34", Runner.Inference -> Some (2657, 1261.59, 1024.0, 76.61, 43.25, 164.0)
  | "BERT", Runner.Inference -> Some (487, 1179.64, 212.62, 75.23, 37.69, 141.75)
  | "GPT-2", Runner.Inference -> Some (583, 4148.10, 1493.85, 59.02, 25.08, 138.0)
  | "Whisper", Runner.Inference -> Some (663, 2304.15, 627.44, 78.54, 20.81, 153.81)
  | "AN", Runner.Train -> Some (4040, 3285.17, 1512.09, 188.60, 144.62, 406.33)
  | "RN-18", Runner.Train -> Some (1542, 3165.13, 1024.0, 84.58, 43.25, 172.27)
  | "RN-34", Runner.Train -> Some (2734, 4316.86, 1024.0, 75.33, 43.25, 164.0)
  | "BERT", Runner.Train -> Some (554, 5679.03, 235.47, 77.71, 37.97, 209.30)
  | "GPT-2", Runner.Train -> Some (2004, 7862.10, 2240.77, 51.37, 24.0, 137.66)
  | "Whisper", Runner.Train -> Some (665, 2104.80, 937.01, 80.42, 20.81, 153.81)
  | _ -> None

let tablev_row abbr mode =
  let mc = MC.create ~variant:MC.Gpu () in
  let _, ctx, _, _ = fresh_run ~session_tool:(MC.tool mc) abbr mode in
  let r = MC.result mc in
  Dlfw.Ctx.destroy ctx;
  r

let tablev () =
  section "Table V: memory characteristics of diverse DNN models (measured vs paper)";
  let header =
    [ "mode"; "model"; "kernels"; "footprint"; "WS"; "min WS"; "avg WS"; "median"; "p90" ]
  in
  let fmt_pair ours paper = Printf.sprintf "%.0f/%.0f" ours paper in
  let rows =
    List.map
      (fun (abbr, mode) ->
        let r = tablev_row abbr mode in
        let kc, fp, ws, avg, med, p90 =
          match paper_tablev (abbr, mode) with
          | Some p -> p
          | None -> (0, 0.0, 0.0, 0.0, 0.0, 0.0)
        in
        [
          Runner.mode_to_string mode;
          abbr;
          Printf.sprintf "%d/%d" r.MC.kernel_count kc;
          fmt_pair (mb r.MC.footprint_bytes) fp;
          fmt_pair (mb r.MC.ws_bytes) ws;
          Format.asprintf "%a" Pasta_util.Bytesize.pp r.MC.ws_min;
          fmt_pair (r.MC.ws_mean /. 1048576.0) avg;
          fmt_pair (r.MC.ws_median /. 1048576.0) med;
          fmt_pair (r.MC.ws_p90 /. 1048576.0) p90;
        ])
      all_workloads
  in
  Format.fprintf ppf "cells are measured/paper; sizes in MB@.@.";
  Pasta_util.Texttab.render ppf ~header
    ~align:[ Pasta_util.Texttab.Left; Left; Right; Right; Right; Right; Right; Right; Right ]
    rows

(* ------------------------------------------------------------------ *)
(* Figures 9 and 10: analysis-model overhead and its breakdown.       *)
(* ------------------------------------------------------------------ *)

type overhead_run = {
  o_abbr : string;
  o_mode : Runner.mode;
  o_variant : MC.variant;
  o_base_us : float;
  o_total_us : float;
  o_phases : Vendor.Phases.t;
}

let seven_days_us = 7.0 *. 24.0 *. 3600.0 *. 1.0e6

(* Workloads whose footprint exceeds the device memory are skipped, as
   they would OOM on the real part too (fp32 GPT-2 training does not fit
   a 12 GB RTX 3060). *)
let overhead_suite arch =
  List.concat_map
    (fun (abbr, mode) ->
      match baseline_time ~arch abbr mode with
      | exception Gpusim.Device_mem.Out_of_memory _ -> []
      | base ->
          List.map
            (fun variant ->
              let mc = MC.create ~variant () in
              let _, ctx, _, result =
                fresh_run ~arch ~session_tool:(MC.tool mc) abbr mode
              in
              Dlfw.Ctx.destroy ctx;
              let result = Option.get result in
              {
                o_abbr = abbr;
                o_mode = mode;
                o_variant = variant;
                o_base_us = base;
                o_total_us = result.Pasta.Session.elapsed_us;
                o_phases = result.Pasta.Session.phases;
              })
            [ MC.Gpu; MC.Cpu_sanitizer; MC.Cpu_nvbit ])
    all_workloads

let suites : (string, overhead_run list) Hashtbl.t = Hashtbl.create 4

let suite_for arch =
  let key = arch.Gpusim.Arch.name in
  match Hashtbl.find_opt suites key with
  | Some s -> s
  | None ->
      let s = overhead_suite arch in
      Hashtbl.add suites key s;
      s

let overhead_string r =
  if r.o_total_us > seven_days_us then "inf"
  else Printf.sprintf "%.1fx" (r.o_total_us /. r.o_base_us)

let fig9 () =
  section "Figure 9: normalized overhead of analysis models (inf = > 7 days)";
  List.iter
    (fun arch ->
      let suite = suite_for arch in
      Format.fprintf ppf "--- %s ---@." arch.Gpusim.Arch.name;
      let header = [ "workload"; "CS-GPU"; "CS-CPU"; "NVBIT-CPU" ] in
      let find abbr mode v =
        List.find_opt
          (fun r -> r.o_abbr = abbr && r.o_mode = mode && r.o_variant = v)
          suite
      in
      let rows =
        List.map
          (fun (abbr, mode) ->
            Printf.sprintf "%s-%s" abbr (Runner.mode_to_string mode)
            :: List.map
                 (fun v ->
                   match find abbr mode v with
                   | Some r -> overhead_string r
                   | None -> "OOM")
                 [ MC.Gpu; MC.Cpu_sanitizer; MC.Cpu_nvbit ])
          all_workloads
      in
      Pasta_util.Texttab.render ppf ~header
        ~align:[ Pasta_util.Texttab.Left; Right; Right; Right ]
        rows;
      (* Average speedup of the GPU-accelerated tool over the CPU tools
         (the paper reports 941x / 13006x on A100, 627x / 7353x on 3060). *)
      let speedups v =
        List.filter_map
          (fun (abbr, mode) ->
            match (find abbr mode MC.Gpu, find abbr mode v) with
            | Some g, Some c when g.o_total_us > 0.0 ->
                Some (c.o_total_us /. g.o_total_us)
            | _ -> None)
          all_workloads
      in
      let mean xs = Pasta_util.Stats.mean (Array.of_list xs) in
      Format.fprintf ppf
        "@.CS-GPU is on average %.0fx faster than CS-CPU and %.0fx faster than NVBIT-CPU@.@."
        (mean (speedups MC.Cpu_sanitizer))
        (mean (speedups MC.Cpu_nvbit)))
    [ Gpusim.Arch.a100; Gpusim.Arch.rtx3060 ]

let fig10 () =
  section "Figure 10: breakdown of PASTA profiling time";
  List.iter
    (fun arch ->
      let suite = suite_for arch in
      Format.fprintf ppf "--- %s ---@." arch.Gpusim.Arch.name;
      let header = [ "workload"; "variant"; "workload%"; "collect%"; "transfer%"; "analysis%" ] in
      let rows =
        List.map
          (fun r ->
            let w, c, t, a = Vendor.Phases.fractions r.o_phases in
            [
              Printf.sprintf "%s-%s" r.o_abbr (Runner.mode_to_string r.o_mode);
              MC.variant_to_string r.o_variant;
              Printf.sprintf "%.1f" (100.0 *. w);
              Printf.sprintf "%.1f" (100.0 *. c);
              Printf.sprintf "%.1f" (100.0 *. t);
              Printf.sprintf "%.1f" (100.0 *. a);
            ])
          suite
      in
      Pasta_util.Texttab.render ppf ~header
        ~align:[ Pasta_util.Texttab.Left; Left; Right; Right; Right; Right ]
        rows;
      Format.pp_print_newline ppf ())
    [ Gpusim.Arch.a100; Gpusim.Arch.rtx3060 ]

(* ------------------------------------------------------------------ *)
(* Figures 11 and 12: UVM prefetching.                                *)
(* ------------------------------------------------------------------ *)

let uvm_figure ~oversub title =
  section title;
  List.iter
    (fun (arch_name, arch) ->
      Format.fprintf ppf "--- %s ---@." arch_name;
      let header = [ "model"; "baseline"; "object-level"; "tensor-level"; "obj speedup"; "ten speedup" ] in
      let outcomes =
        List.map (fun abbr -> UX.run ~arch ~oversub abbr) Runner.all_abbrs
      in
      let rows =
        List.map
          (fun o ->
            [
              o.UX.abbr;
              "1.00";
              Printf.sprintf "%.2f" (o.UX.object_level.UX.elapsed_us /. o.UX.baseline.UX.elapsed_us);
              Printf.sprintf "%.2f" (o.UX.tensor_level.UX.elapsed_us /. o.UX.baseline.UX.elapsed_us);
              Printf.sprintf "%.2fx" (UX.speedup o `Object);
              Printf.sprintf "%.2fx" (UX.speedup o `Tensor);
            ])
          outcomes
      in
      Pasta_util.Texttab.render ppf ~header
        ~align:[ Pasta_util.Texttab.Left; Right; Right; Right; Right; Right ]
        rows;
      let avg f =
        Pasta_util.Stats.mean (Array.of_list (List.map f outcomes))
      in
      Format.fprintf ppf
        "@.average speedup: object-level %.2fx, tensor-level %.2fx@.@."
        (avg (fun o -> UX.speedup o `Object))
        (avg (fun o -> UX.speedup o `Tensor)))
    [ ("RTX 3060", Gpusim.Arch.rtx3060); ("A100", Gpusim.Arch.a100) ]

let fig11 () =
  uvm_figure ~oversub:1.0
    "Figure 11: object- vs tensor-level prefetch, no oversubscription (normalized time, lower is better)"

let fig12 () =
  uvm_figure ~oversub:3.0
    "Figure 12: object- vs tensor-level prefetch, 3x oversubscription (normalized time, lower is better)"

(* ------------------------------------------------------------------ *)
(* Figure 13: time-series hotness of BERT inference.                  *)
(* ------------------------------------------------------------------ *)

let fig13 () =
  section "Figure 13: memory access hotness of BERT inference over time (2 MiB blocks)";
  let hot = Pasta_tools.Hotness.create () in
  let _, ctx, _, _ =
    fresh_run ~session_tool:(Pasta_tools.Hotness.tool hot) "BERT" Runner.Inference
  in
  Pasta_tools.Hotness.report hot ppf;
  Dlfw.Ctx.destroy ctx

(* ------------------------------------------------------------------ *)
(* Figure 14: GPT-2 training memory usage, NVIDIA vs AMD.             *)
(* ------------------------------------------------------------------ *)

let mem_profile arch =
  let device = Gpusim.Device.create arch in
  let ctx = Dlfw.Ctx.create device in
  let mt = Pasta_tools.Mem_timeline.create () in
  let session = Pasta.Session.attach ~tool:(Pasta_tools.Mem_timeline.tool mt) device in
  let model = Dlfw.Gpt2.build ctx in
  Dlfw.Model.train_iter ctx model;
  let _ = Pasta.Session.detach session in
  Dlfw.Ctx.destroy ctx;
  mt

let fig14 () =
  section "Figure 14: memory usage over one GPT-2 training iteration, NVIDIA vs AMD";
  let buckets = 64 in
  let nv = mem_profile Gpusim.Arch.a100 in
  let amd = mem_profile Gpusim.Arch.mi300x in
  let describe name mt =
    Format.fprintf ppf "%-14s peak %8.0f MB, %5d allocs, %5d frees@.  " name
      (Pasta_tools.Mem_timeline.peak_bytes mt /. 1048576.0)
      (Pasta_tools.Mem_timeline.alloc_events mt)
      (Pasta_tools.Mem_timeline.free_events mt);
    Pasta_util.Timeline.pp_sparkline ppf (Pasta_tools.Mem_timeline.series mt ~buckets);
    Format.pp_print_newline ppf ()
  in
  describe "NVIDIA (A100)" nv;
  describe "AMD (MI300X)" amd;
  let diff =
    Pasta_util.Timeline.diff
      (Pasta_tools.Mem_timeline.series nv ~buckets)
      (Pasta_tools.Mem_timeline.series amd ~buckets)
  in
  let s = Pasta_util.Stats.summarize diff in
  Format.fprintf ppf
    "difference (NVIDIA - AMD, MB): min %.0f, max %.0f, mean %.0f@."
    s.Pasta_util.Stats.min s.Pasta_util.Stats.max s.Pasta_util.Stats.mean;
  Format.fprintf ppf
    "(expected shape: same ramp-up/peak/ramp-down; NVIDIA fewer alloc events, slightly higher peak)@."

(* ------------------------------------------------------------------ *)
(* Figure 15: Megatron GPT-2 345M per-GPU memory, DP / TP / PP.       *)
(* ------------------------------------------------------------------ *)

let fig15 () =
  section "Figure 15: per-GPU memory, Megatron GPT-2 345M, one training iteration";
  List.iter
    (fun strategy ->
      let r = Megatron.Trainer.run_iteration strategy in
      Format.fprintf ppf "--- %s ---@." (Megatron.Trainer.strategy_to_string strategy);
      List.iter
        (fun (id, mt) ->
          Format.fprintf ppf "GPU%d  peak %8.0f MB  " id
            (Pasta_tools.Mem_timeline.peak_bytes mt /. 1048576.0);
          Pasta_util.Timeline.pp_sparkline ppf (Pasta_tools.Mem_timeline.series mt ~buckets:64);
          Format.pp_print_newline ppf ())
        r.Megatron.Trainer.timelines;
      (match r.Megatron.Trainer.timelines with
      | [ (_, t0); (_, t1) ] ->
          let d =
            Pasta_util.Timeline.diff
              (Pasta_tools.Mem_timeline.series t0 ~buckets:64)
              (Pasta_tools.Mem_timeline.series t1 ~buckets:64)
          in
          let s = Pasta_util.Stats.summarize d in
          Format.fprintf ppf "GPU0-GPU1 difference (MB): min %.0f max %.0f mean %.0f@.@."
            s.Pasta_util.Stats.min s.Pasta_util.Stats.max s.Pasta_util.Stats.mean
      | _ -> ()))
    Megatron.Trainer.all_strategies;
  (* Multi-node mode (paper §IV-D): one PASTA profile per rank. *)
  Format.fprintf ppf "--- DP across 2 nodes x 2 GPUs (per-rank profiles) ---@.";
  let nr = Megatron.Trainer.run_multinode_dp ~nodes:2 ~gpus_per_node:2 () in
  List.iter
    (fun (node, rank, mt) ->
      Format.fprintf ppf "node%d/rank%d  peak %8.0f MB@." node rank
        (Pasta_tools.Mem_timeline.peak_bytes mt /. 1048576.0))
    nr.Megatron.Trainer.per_rank;
  Format.fprintf ppf
    "iteration time: %.1f ms over InfiniBand vs %.1f ms single-node (x%.2f)@."
    (nr.Megatron.Trainer.internode_elapsed_us /. 1000.0)
    (nr.Megatron.Trainer.intranode_elapsed_us /. 1000.0)
    (nr.Megatron.Trainer.internode_elapsed_us /. nr.Megatron.Trainer.intranode_elapsed_us)

(* ------------------------------------------------------------------ *)
(* Instruction-level analysis tools (paper §III-H).                    *)
(* ------------------------------------------------------------------ *)

let instr () =
  section "Instruction-level tools (paper §III-H): divergence, barrier stalls, value hazards";
  let base = baseline_time "BERT" Runner.Inference in
  let run_tool name tool report =
    let _, ctx, _, result = fresh_run ~session_tool:tool "BERT" Runner.Inference in
    Dlfw.Ctx.destroy ctx;
    let result = Option.get result in
    Format.fprintf ppf "--- %s (overhead %.2fx) ---@." name
      (result.Pasta.Session.elapsed_us /. base);
    report ppf;
    Format.pp_print_newline ppf ()
  in
  let d = Pasta_tools.Divergence.create () in
  run_tool "branch divergence" (Pasta_tools.Divergence.tool d) (Pasta_tools.Divergence.report d);
  let b = Pasta_tools.Barrier_stall.create () in
  run_tool "barrier stalls + bank conflicts" (Pasta_tools.Barrier_stall.tool b)
    (Pasta_tools.Barrier_stall.report b);
  let v = Pasta_tools.Value_check.create () in
  run_tool "value sanitizer" (Pasta_tools.Value_check.tool v) (Pasta_tools.Value_check.report v);
  let s = Pasta_tools.Op_summary.create () in
  run_tool "operator summary (DLProf-style)" (Pasta_tools.Op_summary.tool s)
    (Pasta_tools.Op_summary.report s);
  let u = Pasta_tools.Underutilized.create () in
  run_tool "underutilized memory regions" (Pasta_tools.Underutilized.tool u)
    (Pasta_tools.Underutilized.report u)

(* ------------------------------------------------------------------ *)
(* Ablations.                                                          *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation: oversubscription sweep (BERT, A100; normalized time vs demand paging)";
  let header = [ "oversub"; "object-level"; "tensor-level" ] in
  let rows =
    List.map
      (fun oversub ->
        let o = UX.run ~arch:Gpusim.Arch.a100 ~oversub "BERT" in
        [
          Printf.sprintf "%.1fx" oversub;
          Printf.sprintf "%.2f" (o.UX.object_level.UX.elapsed_us /. o.UX.baseline.UX.elapsed_us);
          Printf.sprintf "%.2f" (o.UX.tensor_level.UX.elapsed_us /. o.UX.baseline.UX.elapsed_us);
        ])
      [ 1.0; 1.5; 2.0; 3.0; 4.0 ]
  in
  Pasta_util.Texttab.render ppf ~header
    ~align:[ Pasta_util.Texttab.Right; Right; Right ] rows;

  section "Ablation: batch size vs footprint and working set (BERT inference, A100)";
  let header = [ "batch"; "footprint (MB)"; "WS (MB)"; "kernels" ] in
  let rows =
    List.map
      (fun batch ->
        let device = Gpusim.Device.create Gpusim.Arch.a100 in
        let ctx = Dlfw.Ctx.create device in
        let mc = MC.create () in
        let session = Pasta.Session.attach ~tool:(MC.tool mc) device in
        let model = Dlfw.Bert.build ~batch ctx in
        Dlfw.Model.inference_iter ctx model;
        let _ = Pasta.Session.detach session in
        let r = MC.result mc in
        Dlfw.Ctx.destroy ctx;
        [
          string_of_int batch;
          Printf.sprintf "%.0f" (mb r.MC.footprint_bytes);
          Printf.sprintf "%.0f" (mb r.MC.ws_bytes);
          string_of_int r.MC.kernel_count;
        ])
      [ 1; 4; 16; 64 ]
  in
  Pasta_util.Texttab.render ppf ~header
    ~align:[ Pasta_util.Texttab.Right; Right; Right; Right ]
    rows;

  section "Ablation: training-memory levers (GPT-2, A100): checkpointing and optimizer state";
  let header = [ "configuration"; "peak alloc (MB)"; "kernels" ] in
  let train ~checkpoint ~optimizer =
    let device = Gpusim.Device.create Gpusim.Arch.a100 in
    let ctx = Dlfw.Ctx.create device in
    let m = Dlfw.Gpt2.build ~checkpoint ctx in
    (match optimizer with
    | Some opt -> Dlfw.Model.train_iter_opt ctx m ~optimizer:opt
    | None -> Dlfw.Model.train_iter ctx m);
    let peak = mb (Dlfw.Allocator.peak_allocated ctx.Dlfw.Ctx.pool) in
    let kernels = Gpusim.Device.launches device in
    Dlfw.Ctx.destroy ctx;
    (peak, kernels)
  in
  let rows =
    List.map
      (fun (label, checkpoint, optimizer) ->
        let peak, kernels = train ~checkpoint ~optimizer in
        [ label; Printf.sprintf "%.0f" peak; string_of_int kernels ])
      [
        ("eager + SGD", false, None);
        ("eager + Adam", false, Some (Dlfw.Optimizer.adam ()));
        ("checkpointed + SGD", true, None);
        ("checkpointed + Adam", true, Some (Dlfw.Optimizer.adam ()));
      ]
  in
  Pasta_util.Texttab.render ppf ~header
    ~align:[ Pasta_util.Texttab.Left; Right; Right ] rows;
  Format.fprintf ppf
    "(gradient checkpointing recovers the paper-scale training footprints; Adam adds 2x \
     parameter bytes of optimizer state)@.";

  section "Ablation: device trace-buffer size (BERT inference, CS-CPU, A100)";
  let header = [ "buffer"; "simulated total (s)" ] in
  let rows =
    List.map
      (fun buffer_bytes ->
        let device = Gpusim.Device.create Gpusim.Arch.a100 in
        let ctx = Dlfw.Ctx.create device in
        let s = Vendor.Sanitizer.attach device in
        Vendor.Sanitizer.patch_module s
          (Vendor.Sanitizer.Host_analysis
             {
               buffer_records = buffer_bytes / Gpusim.Costmodel.record_bytes;
               on_record = (fun _ _ -> ());
               on_batch = None;
               per_record_us = Gpusim.Costmodel.sanitizer_host_per_record_us;
             });
        ignore (Runner.run_default ctx "BERT" ~mode:Runner.Inference);
        let t = Gpusim.Device.now_us device /. 1.0e6 in
        Vendor.Sanitizer.detach s;
        Dlfw.Ctx.destroy ctx;
        [ Format.asprintf "%a" Pasta_util.Bytesize.pp buffer_bytes;
          Printf.sprintf "%.1f" t ])
      [ 1 lsl 20; 4 lsl 20; 16 lsl 20; 64 lsl 20 ]
  in
  Pasta_util.Texttab.render ppf ~header ~align:[ Pasta_util.Texttab.Right; Right ] rows;

  section "Ablation: NVBit SASS dump+parse cost vs Sanitizer selective patching";
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let nv = Vendor.Nvbit.attach device in
  Vendor.Nvbit.instrument_memory nv ~on_record:(fun _ _ -> ()) ();
  ignore (Runner.run_default ctx "RN-18" ~mode:Runner.Inference);
  let p = Vendor.Nvbit.phases nv in
  Format.fprintf ppf
    "NVBit parsed %d distinct kernels; collect %.1f ms of which SASS dump/parse is the fixed per-function part@."
    (Vendor.Nvbit.functions_parsed nv)
    (p.Vendor.Phases.collect_us /. 1000.0);
  Vendor.Nvbit.detach nv;
  Dlfw.Ctx.destroy ctx;

  section "Ablation: sampling cap vs working-set accuracy (BERT inference, CS-CPU)";
  let header = [ "sample cap"; "WS (MB)"; "records seen" ] in
  let rows =
    List.map
      (fun cap ->
        let mc = MC.create ~variant:MC.Cpu_sanitizer () in
        let device = Gpusim.Device.create Gpusim.Arch.a100 in
        let ctx = Dlfw.Ctx.create device in
        let seen = ref 0 in
        let tool = MC.tool mc in
        let tool =
          { tool with Pasta.Tool.on_access = (fun i a -> incr seen; tool.Pasta.Tool.on_access i a) }
        in
        let session = Pasta.Session.attach ~sample_cap:cap ~tool device in
        ignore (Runner.run_default ctx "BERT" ~mode:Runner.Inference);
        let _ = Pasta.Session.detach session in
        let r = MC.result mc in
        Dlfw.Ctx.destroy ctx;
        [ string_of_int cap;
          Printf.sprintf "%.2f" (mb r.MC.ws_bytes);
          string_of_int !seen ])
      [ 4; 32; 128; 1024 ]
  in
  Pasta_util.Texttab.render ppf ~header
    ~align:[ Pasta_util.Texttab.Right; Right; Right ] rows

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock microbenches.                                   *)
(* ------------------------------------------------------------------ *)

let bechamel_benches () =
  section "Bechamel: wall-clock microbenches of the core data paths";
  let open Bechamel in
  (* GPU-resident vs host-trace analysis over one identical kernel: the
     wall-clock version of the paper's central overhead claim. *)
  let mk_device () =
    let device = Gpusim.Device.create Gpusim.Arch.a100 in
    let a = Gpusim.Device.malloc device (8 * 1024 * 1024) in
    let kernel =
      Gpusim.Kernel.make ~name:"bench_kernel" ~grid:(Gpusim.Dim3.make 1024)
        ~block:(Gpusim.Dim3.make 256)
        ~regions:
          [
            Gpusim.Kernel.region ~base:a.Gpusim.Device_mem.base ~bytes:(4 * 1024 * 1024)
              ~accesses:1_000_000 ();
          ]
        ()
    in
    (device, kernel)
  in
  let gpu_mode () =
    let device, kernel = mk_device () in
    let s = Vendor.Sanitizer.attach device in
    let count = ref 0 in
    Vendor.Sanitizer.patch_module s
      (Vendor.Sanitizer.Device_analysis
         {
           map_bytes = (fun () -> 1024);
           device_fn = (fun _ r -> count := !count + r.Gpusim.Kernel.accesses);
           on_kernel_complete = (fun _ _ -> ());
         });
    fun () -> ignore (Gpusim.Device.launch device kernel)
  in
  let cpu_mode () =
    let device, kernel = mk_device () in
    Gpusim.Device.set_sample_cap device 4096;
    let s = Vendor.Sanitizer.attach device in
    let count = ref 0 in
    Vendor.Sanitizer.patch_module s
      (Vendor.Sanitizer.Host_analysis
         {
           buffer_records = Vendor.Sanitizer.default_buffer_records;
           on_record = (fun _ a -> count := !count + a.Gpusim.Warp.weight);
           on_batch = None;
           per_record_us = Gpusim.Costmodel.sanitizer_host_per_record_us;
         });
    fun () -> ignore (Gpusim.Device.launch device kernel)
  in
  let rng = Pasta_util.Det_rng.of_string "bench" in
  let objmap =
    let m = Pasta.Objmap.create () in
    for i = 0 to 999 do
      Pasta.Objmap.on_alloc m ~addr:(i * 65536) ~bytes:65536 ~managed:false
    done;
    m
  in
  let hist = Pasta_util.Histogram.create () in
  let kernel_for_sass =
    Gpusim.Kernel.make ~name:"sass_bench" ~grid:(Gpusim.Dim3.make 64)
      ~block:(Gpusim.Dim3.make 256)
      ~regions:
        [ Gpusim.Kernel.region ~base:0x1000 ~bytes:4096 ~accesses:4096 () ]
      ~flops:1.0e9 ()
  in
  let tests =
    [
      Test.make ~name:"analysis/gpu-resident-kernel" (Staged.stage (gpu_mode ()));
      Test.make ~name:"analysis/host-trace-kernel" (Staged.stage (cpu_mode ()));
      Test.make ~name:"objmap/resolve"
        (Staged.stage (fun () ->
             ignore (Pasta.Objmap.resolve objmap (Pasta_util.Det_rng.int rng (1000 * 65536)))));
      Test.make ~name:"histogram/add"
        (Staged.stage (fun () -> Pasta_util.Histogram.add hist "kernel_name"));
      Test.make ~name:"sass/dump+parse"
        (Staged.stage (fun () ->
             ignore (Gpusim.Sass.parse (Gpusim.Sass.dump kernel_for_sass))));
      Test.make ~name:"normalize/api-name"
        (Staged.stage (fun () -> ignore (Pasta.Normalize.canonical_api "cudaMemcpyAsync")));
    ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] (Test.make_grouped ~name:"pasta" tests) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] |> List.sort compare in
  List.iter
    (fun name ->
      let est = Analyze.OLS.estimates (Hashtbl.find results name) in
      match est with
      | Some [ ns ] -> Format.fprintf ppf "%-40s %12.1f ns/run@." name ns
      | _ -> Format.fprintf ppf "%-40s (no estimate)@." name)
    names

(* ------------------------------------------------------------------ *)
(* Pipeline: batched parallel preprocessing vs per-record delivery.    *)
(* ------------------------------------------------------------------ *)

type pipeline_run = {
  p_records : int;
  p_wall_s : float;
  p_report : string;  (* rendered tool output, for byte-identity checks *)
}

(* One BERT-inference run under fine-grained hotness.  [`Serial] is the
   legacy per-record path: every sampled record crosses the ring buffer
   alone and becomes one event allocation, one dispatch and one
   [on_access] call.  [`Parallel n] is the batched path: packed chunks,
   an [n]-domain device-side reduction, one merged summary per kernel. *)
let pipeline_run ~sample_cap ~iters kind =
  (match kind with
  | `Serial ->
      Pasta.Config.set "ACCEL_PROF_DOMAINS" "1";
      (* the pre-batching pipeline: one host callback, one ring-buffer
         push and one event dispatch per record *)
      Pasta.Config.set "ACCEL_PROF_BATCH_DELIVERY" "0"
  | `Parallel n -> Pasta.Config.set "ACCEL_PROF_DOMAINS" (string_of_int n));
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let records = ref 0 in
  let tool, render =
    match kind with
    | `Serial ->
        (* Same unit of per-sample tool work as the hotness accumulator,
           so the comparison measures the delivery pipeline, not the tool. *)
        let samples = ref [] in
        let tool =
          {
            (Pasta.Tool.default ~fine_grained:Pasta.Tool.Cpu_sanitizer "hotness_serial") with
            Pasta.Tool.on_access =
              (fun _ a ->
                incr records;
                samples :=
                  (a.Pasta.Event.addr / Pasta_tools.Hotness.block_bytes, a.Pasta.Event.weight)
                  :: !samples);
          }
        in
        (tool, fun () -> Printf.sprintf "serial: %d block samples" (List.length !samples))
    | `Parallel _ ->
        let hot = Pasta_tools.Hotness.create () in
        let base = Pasta_tools.Hotness.tool_fine hot in
        let tool =
          {
            base with
            Pasta.Tool.on_device_summary =
              (fun info s ->
                records := !records + s.Pasta.Devagg.sampled_records;
                base.Pasta.Tool.on_device_summary info s);
          }
        in
        (tool, fun () -> Format.asprintf "%t" (fun ppf -> Pasta_tools.Hotness.report hot ppf))
  in
  let t0 = Unix.gettimeofday () in
  let session = Pasta.Session.attach ~sample_cap:sample_cap ~tool device in
  let model = Runner.build ctx "BERT" in
  Runner.run ctx model ~mode:Runner.Inference ~iters;
  let (_ : Pasta.Session.result) = Pasta.Session.detach session in
  let wall = Unix.gettimeofday () -. t0 in
  Dlfw.Ctx.destroy ctx;
  Pasta.Config.unset "ACCEL_PROF_DOMAINS";
  Pasta.Config.unset "ACCEL_PROF_BATCH_DELIVERY";
  { p_records = !records; p_wall_s = wall; p_report = render () }

(* One configuration measured [reps] times: the median wall time is the
   headline (robust against a stray GC pause or scheduler hiccup in either
   direction), the min is reported alongside as the best case. *)
type pipeline_summary = {
  pm_records : int;
  pm_wall_median : float;
  pm_wall_min : float;
  pm_report : string;
}

let pipeline_summarize runs =
  let walls = List.map (fun r -> r.p_wall_s) runs |> List.sort compare in
  let median =
    let a = Array.of_list walls in
    let n = Array.length a in
    if n land 1 = 1 then a.(n / 2) else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))
  in
  let first = List.hd runs in
  (* Record counts and reports are deterministic per configuration; check
     rather than assume, so a rep-to-rep divergence can't hide. *)
  List.iter
    (fun r ->
      if r.p_records <> first.p_records || r.p_report <> first.p_report then begin
        prerr_endline "pipeline: FAIL - output diverges across repetitions";
        exit 1
      end)
    runs;
  {
    pm_records = first.p_records;
    pm_wall_median = median;
    pm_wall_min = List.hd walls;
    pm_report = first.p_report;
  }

let pipeline () =
  section
    "Pipeline: per-record delivery vs batched parallel preprocessing (BERT inference, \
     fine-grained hotness)";
  let sample_cap = 4096 and iters = 1 and reps = 9 in
  let kinds = [| `Serial; `Parallel 1; `Parallel 2; `Parallel 4; `Parallel 8 |] in
  (* One unmeasured warmup pass per configuration (page cache, branch
     predictors, pool creation), then the timed reps run round-robin
     across configurations with a compacted heap, so slow machine drift
     lands evenly on every configuration instead of on whichever
     happened to run last.  Each round starts one configuration later
     than the previous one: within a round the heap and allocator state
     degrade slightly from first slot to last, and rotating the start
     spreads that position cost across configurations instead of always
     taxing the same one. *)
  Array.iter (fun k -> ignore (pipeline_run ~sample_cap ~iters k)) kinds;
  let n_kinds = Array.length kinds in
  let samples = Array.map (fun _ -> ref []) kinds in
  for rep = 0 to reps - 1 do
    for slot = 0 to n_kinds - 1 do
      let i = (slot + rep) mod n_kinds in
      Gc.compact ();
      samples.(i) := pipeline_run ~sample_cap ~iters kinds.(i) :: !(samples.(i))
    done
  done;
  let summarize i = pipeline_summarize (List.rev !(samples.(i))) in
  let serial = summarize 0 in
  let par = List.mapi (fun i d -> (d, summarize (i + 1))) [ 1; 2; 4; 8 ] in
  let rps r = float_of_int r.pm_records /. r.pm_wall_median in
  let speedup r = serial.pm_wall_median /. r.pm_wall_median in
  let row name r =
    [
      name;
      string_of_int r.pm_records;
      Printf.sprintf "%.1f" (1000.0 *. r.pm_wall_median);
      Printf.sprintf "%.1f" (1000.0 *. r.pm_wall_min);
      Printf.sprintf "%.2e" (rps r);
      Printf.sprintf "%.2fx" (speedup r);
    ]
  in
  Pasta_util.Texttab.render ppf
    ~header:
      [ "configuration"; "records"; "median (ms)"; "min (ms)"; "records/s"; "speedup" ]
    ~align:[ Pasta_util.Texttab.Left; Right; Right; Right; Right; Right ]
    (row "serial (per-record)" serial
    :: List.map
         (fun (d, r) ->
           row (Printf.sprintf "batched, %d domain%s" d (if d = 1 then "" else "s")) r)
         par);
  Format.fprintf ppf
    "@.%d reps per configuration; wall times are medians, speedups from medians.@." reps;
  (match List.assoc_opt 2 par with
  | Some r ->
      (* The old 2-domain anomaly (2.06x vs 2.83x at 1 domain) was
         oversubscription: every extra domain past the hardware's
         parallelism just timeshares a core through the job mutex.
         Domain_pool now claims guided blocks and clamps spawned workers
         to [Domain.recommended_domain_count], so extra requested domains
         can no longer make the pipeline slower. *)
      Format.fprintf ppf
        "2-domain scheduling (guided claiming, pool clamped to %d-core hardware): %.2fx \
         vs serial@."
        (Domain.recommended_domain_count ())
        (speedup r)
  | None -> ());
  let digests = List.map (fun (d, r) -> (d, Digest.to_hex (Digest.string r.pm_report))) par in
  let deterministic =
    match digests with
    | [] -> true
    | (_, d0) :: rest -> List.for_all (fun (_, d) -> d = d0) rest
  in
  Format.fprintf ppf "tool output %s across domain counts (md5 %s)@."
    (if deterministic then "byte-identical" else "DIVERGES")
    (match digests with (_, d) :: _ -> d | [] -> "-");
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n";
  Printf.bprintf b "  \"experiment\": \"pipeline\",\n";
  Printf.bprintf b "  \"workload\": \"BERT-inference\",\n";
  Printf.bprintf b "  \"sample_cap\": %d,\n  \"iters\": %d,\n  \"reps\": %d,\n" sample_cap
    iters reps;
  Printf.bprintf b "  \"hardware_parallelism\": %d,\n" (Domain.recommended_domain_count ());
  Printf.bprintf b
    "  \"serial\": { \"records\": %d, \"wall_median_s\": %.6f, \"wall_min_s\": %.6f, \
     \"records_per_sec\": %.1f },\n"
    serial.pm_records serial.pm_wall_median serial.pm_wall_min (rps serial);
  Printf.bprintf b "  \"parallel\": [\n";
  List.iteri
    (fun i (d, r) ->
      Printf.bprintf b
        "    { \"domains\": %d, \"records\": %d, \"wall_median_s\": %.6f, \
         \"wall_min_s\": %.6f, \"records_per_sec\": %.1f, \"speedup_vs_serial\": %.3f, \
         \"digest\": \"%s\" }%s\n"
        d r.pm_records r.pm_wall_median r.pm_wall_min (rps r) (speedup r)
        (Digest.to_hex (Digest.string r.pm_report))
        (if i = List.length par - 1 then "" else ","))
    par;
  Printf.bprintf b "  ],\n";
  let sp d = match List.assoc_opt d par with Some r -> speedup r | None -> 0.0 in
  (* Measurement noise floor: the worst relative gap between a batched
     configuration's median and best wall across the reps.  Once the pool
     clamps to hardware parallelism, configurations past the core count
     execute identical code, so speedup differences inside this band are
     sampling error, not scheduling regressions; the monotonicity gate
     below compares at this resolution.  On hardware with enough cores
     for every configuration the band still applies, but genuine scaling
     regressions dwarf it. *)
  let noise_floor =
    List.fold_left
      (fun acc (_, r) ->
        Float.max acc ((r.pm_wall_median -. r.pm_wall_min) /. r.pm_wall_median))
      0.0 par
  in
  let monotone_raw =
    let rec go = function
      | (_, a) :: ((_, b) :: _ as rest) ->
          speedup a <= speedup b && go rest
      | _ -> true
    in
    go par
  in
  Printf.bprintf b "  \"speedup_4_domains_vs_serial\": %.3f,\n" (sp 4);
  Printf.bprintf b "  \"speedup_8_domains_vs_serial\": %.3f,\n" (sp 8);
  Printf.bprintf b "  \"speedup_noise_floor\": %.4f,\n" noise_floor;
  Printf.bprintf b "  \"speedup_monotone_1_to_8\": %b,\n" monotone_raw;
  Printf.bprintf b "  \"deterministic_across_domains\": %b\n}\n" deterministic;
  let oc = open_out "BENCH_pipeline.json" in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.fprintf ppf "wrote BENCH_pipeline.json@.";
  if not deterministic then begin
    prerr_endline "pipeline: FAIL - parallel tool output diverges across domain counts";
    exit 1
  end;
  if sp 8 < sp 4 *. (1.0 -. noise_floor) then begin
    Printf.eprintf
      "pipeline: FAIL - 8-domain speedup (%.2fx) below 4-domain speedup (%.2fx) beyond \
       the %.1f%% measurement noise floor\n"
      (sp 8) (sp 4) (100.0 *. noise_floor);
    exit 1
  end
  else if sp 8 < sp 4 then
    Format.fprintf ppf
      "8-domain speedup (%.2fx) within the %.1f%% noise floor of 4-domain (%.2fx); \
       configurations past the %d-core clamp run identical code@."
      (sp 8) (100.0 *. noise_floor) (sp 4)
      (Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)

(* Record/replay: a live simulate+analyze run with a trace capture riding
   along, vs re-driving the recorded op stream through the same tool
   offline.  Replay skips simulation and instrumentation entirely, so it
   should be substantially faster while reproducing the report byte for
   byte. *)

let replay_live ~sample_cap ~iters ~capture =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let hot = Pasta_tools.Hotness.create () in
  let t0 = Unix.gettimeofday () in
  let session =
    Pasta.Session.attach ~sample_cap:sample_cap ?capture
      ~tool:(Pasta_tools.Hotness.tool_fine hot)
      device
  in
  let model = Runner.build ctx "BERT" in
  Runner.run ctx model ~mode:Runner.Inference ~iters;
  let result = Pasta.Session.detach session in
  let wall = Unix.gettimeofday () -. t0 in
  Dlfw.Ctx.destroy ctx;
  (wall, result)

let replay_offline path =
  let hot = Pasta_tools.Hotness.create () in
  let t0 = Unix.gettimeofday () in
  let o =
    Pasta.Replay.run ~mode:Pasta.Ptrace.Strict
      ~tool:(Pasta_tools.Hotness.tool_fine hot)
      path
  in
  let wall = Unix.gettimeofday () -. t0 in
  (wall, o)

let replay () =
  section
    "Record/replay: live simulate+analyze vs offline trace replay (BERT \
     inference, fine-grained hotness)";
  let sample_cap = 4096 and iters = 1 and reps = 3 in
  let path = Filename.temp_file "pasta_bench" ".ptrace" in
  let best f =
    let runs = List.init reps (fun _ -> f ()) in
    List.fold_left
      (fun (w0, r0) (w, r) -> if w < w0 then (w, r) else (w0, r0))
      (List.hd runs) (List.tl runs)
  in
  let live_wall, live_result =
    best (fun () -> replay_live ~sample_cap ~iters ~capture:None)
  in
  (* the recording run overwrites [path] each rep; the last trace is the
     one replayed below, and every rep's trace is structurally identical *)
  let rec_wall, rec_result =
    best (fun () -> replay_live ~sample_cap ~iters ~capture:(Some path))
  in
  let replay_wall, outcome = best (fun () -> replay_offline path) in
  let live_report = Format.asprintf "%t" rec_result.Pasta.Session.report in
  let replay_report = Format.asprintf "%t" outcome.Pasta.Replay.report in
  let identical = String.equal live_report replay_report in
  let h = rec_result.Pasta.Session.health in
  let row name wall =
    [
      name;
      Printf.sprintf "%.1f" (1000.0 *. wall);
      Printf.sprintf "%.2fx" (live_wall /. wall);
    ]
  in
  Pasta_util.Texttab.render ppf
    ~header:[ "configuration"; "wall (ms)"; "speedup vs live" ]
    ~align:[ Pasta_util.Texttab.Left; Right; Right ]
    [
      row "live (simulate+analyze)" live_wall;
      row "live + capture" rec_wall;
      row "replay (trace -> tool)" replay_wall;
    ];
  Format.fprintf ppf
    "@.trace: %d ops, %d bytes, %d chunks; replay report %s live@."
    h.Pasta.Session.events_recorded h.Pasta.Session.bytes_written
    h.Pasta.Session.chunks
    (if identical then "byte-identical to" else "DIVERGES from");
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n";
  Printf.bprintf b "  \"experiment\": \"replay\",\n";
  Printf.bprintf b "  \"workload\": \"BERT-inference\",\n";
  Printf.bprintf b "  \"sample_cap\": %d,\n  \"iters\": %d,\n" sample_cap iters;
  Printf.bprintf b "  \"live_wall_s\": %.6f,\n" live_wall;
  Printf.bprintf b "  \"record_wall_s\": %.6f,\n" rec_wall;
  Printf.bprintf b "  \"replay_wall_s\": %.6f,\n" replay_wall;
  Printf.bprintf b "  \"replay_speedup_vs_live\": %.3f,\n"
    (live_wall /. replay_wall);
  Printf.bprintf b "  \"capture_overhead_vs_live\": %.3f,\n"
    (rec_wall /. live_wall);
  Printf.bprintf b
    "  \"trace\": { \"ops\": %d, \"bytes\": %d, \"chunks\": %d },\n"
    h.Pasta.Session.events_recorded h.Pasta.Session.bytes_written
    h.Pasta.Session.chunks;
  Printf.bprintf b "  \"replay_ops\": %d,\n" outcome.Pasta.Replay.ops_replayed;
  Printf.bprintf b "  \"live_report_md5\": \"%s\",\n"
    (Digest.to_hex (Digest.string live_report));
  Printf.bprintf b "  \"replay_report_md5\": \"%s\",\n"
    (Digest.to_hex (Digest.string replay_report));
  Printf.bprintf b "  \"identical_reports\": %b\n}\n" identical;
  let oc = open_out "BENCH_replay.json" in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.fprintf ppf "wrote BENCH_replay.json@.";
  Sys.remove path;
  ignore live_result

(* ------------------------------------------------------------------ *)

(* Self-telemetry overhead: the same batched pipeline workload with the
   framework's own observability off / basic / full.  The paper's
   low-overhead claim, applied to PASTA itself: basic (always-on
   attribution) must stay under 5% of the telemetry-off wall time. *)

let telemetry_run ~sample_cap ~iters level =
  Pasta.Config.set "ACCEL_PROF_TELEMETRY" level;
  Pasta.Telemetry.refresh_level ();
  Pasta.Telemetry.reset ();
  let r = pipeline_run ~sample_cap ~iters (`Parallel 4) in
  Pasta.Config.unset "ACCEL_PROF_TELEMETRY";
  Pasta.Telemetry.refresh_level ();
  r

let telemetry () =
  section
    "Self-telemetry overhead: off vs basic vs full (BERT inference, batched \
     hotness, 4 domains)";
  let sample_cap = 4096 and iters = 1 and reps = 5 in
  let best level =
    let runs = List.init reps (fun _ -> telemetry_run ~sample_cap ~iters level) in
    List.fold_left
      (fun acc r -> if r.p_wall_s < acc.p_wall_s then r else acc)
      (List.hd runs) (List.tl runs)
  in
  let off = best "off" in
  let basic = best "basic" in
  let full = best "full" in
  (* One more full run whose attribution we keep for the report. *)
  Pasta.Config.set "ACCEL_PROF_TELEMETRY" "full";
  Pasta.Telemetry.refresh_level ();
  Pasta.Telemetry.reset ();
  let attr_run = pipeline_run ~sample_cap ~iters (`Parallel 4) in
  let attr = Pasta.Telemetry.attribution () in
  let overhead r = (r.p_wall_s -. off.p_wall_s) /. off.p_wall_s in
  let row name r =
    [
      name;
      Printf.sprintf "%.1f" (1000.0 *. r.p_wall_s);
      Printf.sprintf "%+.1f%%" (100.0 *. overhead r);
    ]
  in
  Pasta_util.Texttab.render ppf
    ~header:[ "telemetry level"; "wall (ms)"; "overhead vs off" ]
    ~align:[ Pasta_util.Texttab.Left; Right; Right ]
    [ row "off" off; row "basic" basic; row "full" full ];
  let identical =
    String.equal off.p_report basic.p_report
    && String.equal off.p_report full.p_report
  in
  Format.fprintf ppf
    "@.tool output %s across telemetry levels; attribution (full run):@.%a@."
    (if identical then "byte-identical" else "DIVERGES")
    Pasta.Telemetry.pp_attribution attr;
  Pasta.Config.unset "ACCEL_PROF_TELEMETRY";
  Pasta.Telemetry.refresh_level ();
  let basic_ok = overhead basic < 0.05 in
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n";
  Printf.bprintf b "  \"experiment\": \"telemetry\",\n";
  Printf.bprintf b "  \"workload\": \"BERT-inference-batched-4dom\",\n";
  Printf.bprintf b "  \"sample_cap\": %d,\n  \"iters\": %d,\n  \"reps\": %d,\n"
    sample_cap iters reps;
  Printf.bprintf b "  \"off_wall_s\": %.6f,\n" off.p_wall_s;
  Printf.bprintf b "  \"basic_wall_s\": %.6f,\n" basic.p_wall_s;
  Printf.bprintf b "  \"full_wall_s\": %.6f,\n" full.p_wall_s;
  Printf.bprintf b "  \"basic_overhead\": %.4f,\n" (overhead basic);
  Printf.bprintf b "  \"full_overhead\": %.4f,\n" (overhead full);
  Printf.bprintf b "  \"attribution_rows\": [\n";
  let rows = attr.Pasta.Telemetry.at_rows in
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    { \"label\": \"%s\", \"self_us\": %.1f, \"count\": %d }%s\n"
        r.Pasta.Telemetry.row_label r.Pasta.Telemetry.row_self_us
        r.Pasta.Telemetry.row_count
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.bprintf b "  ],\n";
  Printf.bprintf b "  \"attribution_total_us\": %.1f,\n"
    attr.Pasta.Telemetry.at_total_us;
  Printf.bprintf b "  \"identical_reports\": %b,\n" identical;
  Printf.bprintf b "  \"basic_under_5pct\": %b\n}\n" basic_ok;
  let oc = open_out "BENCH_telemetry.json" in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.fprintf ppf "wrote BENCH_telemetry.json@.";
  ignore attr_run;
  if not basic_ok then begin
    Format.fprintf ppf
      "telemetry: FAIL - basic-level overhead %.1f%% exceeds the 5%% budget@."
      (100.0 *. overhead basic);
    exit 1
  end

(* ------------------------------------------------------------------ *)

(* Sampling: overhead vs estimate-error tradeoff at fixed rates and
   under the adaptive governor.  Fine-grained hotness over BERT
   inference; per-block heat comes straight from the weighted Devagg
   summaries, so sampled runs report inverse-probability estimates.
   Overhead is the telemetry attribution fraction — the same signal the
   governor steers on — which keeps the budget gate meaningful even
   though the simulated workload is wall-clock cheap. *)

type sampling_run = {
  s_wall_s : float;
  s_frac : float;  (* framework self-time fraction over the run's window *)
  s_records : int;  (* records that actually crossed the pipeline *)
  s_heat : (int, float) Hashtbl.t;  (* absolute 2 MiB block -> weighted heat *)
  s_rate : float;  (* rate in force when the session detached *)
  s_snapshot : Pasta.Sampler.snapshot option;
}

let sampling_run ~sample_cap ~iters spec =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let hot = Pasta_tools.Hotness.create () in
  let heat = Hashtbl.create 512 in
  let records = ref 0 in
  let base = Pasta_tools.Hotness.tool_fine hot in
  let tool =
    {
      base with
      Pasta.Tool.on_device_summary =
        (fun info s ->
          records := !records + s.Pasta.Devagg.sampled_records;
          List.iter
            (fun (b, c) ->
              let prev = Option.value ~default:0.0 (Hashtbl.find_opt heat b) in
              Hashtbl.replace heat b (prev +. float_of_int c))
            s.Pasta.Devagg.blocks;
          base.Pasta.Tool.on_device_summary info s);
    }
  in
  let total0, over0 = Pasta.Telemetry.overhead_snapshot () in
  let t0 = Unix.gettimeofday () in
  let session =
    match spec with
    | `Exact -> Pasta.Session.attach ~sample_cap ~tool device
    | `Fixed r -> Pasta.Session.attach ~sample_cap ~sample_rate:r ~tool device
    | `Auto budget -> Pasta.Session.attach ~sample_cap ~overhead_budget:budget ~tool device
  in
  let model = Runner.build ctx "BERT" in
  Runner.run ctx model ~mode:Runner.Inference ~iters;
  let result = Pasta.Session.detach session in
  let wall = Unix.gettimeofday () -. t0 in
  let total1, over1 = Pasta.Telemetry.overhead_snapshot () in
  Dlfw.Ctx.destroy ctx;
  let dt = total1 -. total0 in
  let snap = result.Pasta.Session.health.Pasta.Session.sampling in
  {
    s_wall_s = wall;
    s_frac = (if dt > 0.0 then (over1 -. over0) /. dt else 0.0);
    s_records = !records;
    s_heat = heat;
    s_rate = (match snap with Some sn -> sn.Pasta.Sampler.sn_rate | None -> 1.0);
    s_snapshot = snap;
  }

let top_blocks ?(n = 10) heat =
  Hashtbl.fold (fun b c acc -> (b, c) :: acc) heat []
  |> List.sort (fun (b1, c1) (b2, c2) ->
         match compare c2 c1 with 0 -> compare b1 b2 | c -> c)
  |> List.filteri (fun i _ -> i < n)
  |> List.map fst

(* Does [heat]'s top-10 match the exact run's top-10 ranking, up to ties
   in the exact data?  Blocks whose true heat is within 1% of the exact
   rank-10 value are interchangeable — which of them a sampled run ranks
   10th vs 11th is noise, not error.  The ranking matches when no block
   strictly hotter than that tie band is missing from the sampled top-10
   and no block outside the band intrudes into it. *)
let top10_matches ~exact heat =
  let exact_heat b = Option.value ~default:0.0 (Hashtbl.find_opt exact b) in
  match List.rev (top_blocks exact) with
  | [] -> Hashtbl.length heat = 0
  | b10 :: _ ->
      let h10 = exact_heat b10 in
      let sampled = top_blocks heat in
      let no_intruder = List.for_all (fun b -> exact_heat b >= 0.99 *. h10) sampled in
      let none_missed =
        Hashtbl.fold
          (fun b c acc -> acc && (c <= 1.01 *. h10 || List.mem b sampled))
          exact true
      in
      no_intruder && none_missed

(* Relative L1 error of the weighted block estimates against the exact
   (rate 1.0) run, over the union of observed blocks. *)
let est_error ~exact heat =
  let union = Hashtbl.copy exact in
  Hashtbl.iter
    (fun b _ -> if not (Hashtbl.mem union b) then Hashtbl.replace union b 0.0)
    heat;
  let num = ref 0.0 and den = ref 0.0 in
  Hashtbl.iter
    (fun b ex ->
      let es = Option.value ~default:0.0 (Hashtbl.find_opt heat b) in
      num := !num +. Float.abs (es -. ex);
      den := !den +. Float.abs ex)
    union;
  if !den > 0.0 then !num /. !den else 0.0

let sampling () =
  section
    "Sampling: overhead vs estimate error at rates 1.0/0.5/0.1 and under the \
     governor (BERT inference, fine hotness)";
  let sample_cap = 4096 and iters = 1 and reps = 3 in
  let budget = 0.35 in
  let measure spec =
    let runs = List.init reps (fun _ -> sampling_run ~sample_cap ~iters spec) in
    let by_frac = List.sort (fun a b -> compare a.s_frac b.s_frac) runs in
    let median_frac = (List.nth by_frac (reps / 2)).s_frac in
    let best =
      List.fold_left
        (fun acc r -> if r.s_wall_s < acc.s_wall_s then r else acc)
        (List.hd runs) (List.tl runs)
    in
    (best, median_frac)
  in
  let configs =
    [
      ("exact (rate 1.0)", `Exact);
      ("fixed 0.5", `Fixed 0.5);
      ("fixed 0.1", `Fixed 0.1);
      (Printf.sprintf "auto (budget %.0f%%)" (100.0 *. budget), `Auto budget);
    ]
  in
  let results = List.map (fun (name, spec) -> (name, measure spec)) configs in
  let exact, _ = snd (List.hd results) in
  let exact_top = top_blocks exact.s_heat in
  let overlap heat =
    List.length (List.filter (fun b -> List.mem b (top_blocks heat)) exact_top)
  in
  Pasta_util.Texttab.render ppf
    ~header:
      [ "configuration"; "rate"; "records"; "wall (ms)"; "self-time"; "est err"; "top-10" ]
    ~align:
      [ Pasta_util.Texttab.Left; Right; Right; Right; Right; Right; Right ]
    (List.map
       (fun (name, (r, frac)) ->
         [
           name;
           Printf.sprintf "%.2f" r.s_rate;
           string_of_int r.s_records;
           Printf.sprintf "%.1f" (1000.0 *. r.s_wall_s);
           Printf.sprintf "%.1f%%" (100.0 *. frac);
           Printf.sprintf "%.3f" (est_error ~exact:exact.s_heat r.s_heat);
           Printf.sprintf "%d/10" (overlap r.s_heat);
         ])
       results);
  let auto, auto_frac =
    snd (List.find (fun (name, _) -> String.length name >= 4 && String.sub name 0 4 = "auto") results)
  in
  (match auto.s_snapshot with
  | Some sn -> Format.fprintf ppf "governor: %a@." Pasta.Sampler.pp_snapshot sn
  | None -> ());
  let auto_within = auto_frac <= budget +. 0.01 in
  let top_match = top10_matches ~exact:exact.s_heat auto.s_heat in
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n";
  Printf.bprintf b "  \"experiment\": \"sampling\",\n";
  Printf.bprintf b "  \"workload\": \"BERT-inference-fine-hotness\",\n";
  Printf.bprintf b "  \"sample_cap\": %d,\n  \"iters\": %d,\n  \"reps\": %d,\n"
    sample_cap iters reps;
  Printf.bprintf b "  \"budget\": %.2f,\n" budget;
  Printf.bprintf b "  \"runs\": [\n";
  List.iteri
    (fun i (name, (r, frac)) ->
      Printf.bprintf b
        "    { \"config\": \"%s\", \"rate\": %.3f, \"records\": %d, \"wall_s\": \
         %.6f, \"overhead_frac\": %.4f, \"est_error\": %.4f, \"top10_overlap\": \
         %d, \"top10_match\": %b }%s\n"
        name r.s_rate r.s_records r.s_wall_s frac
        (est_error ~exact:exact.s_heat r.s_heat)
        (overlap r.s_heat)
        (top10_matches ~exact:exact.s_heat r.s_heat)
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.bprintf b "  ],\n";
  Printf.bprintf b "  \"auto_overhead_frac\": %.4f,\n" auto_frac;
  Printf.bprintf b "  \"auto_within_budget\": %b,\n" auto_within;
  Printf.bprintf b "  \"auto_top10_matches_exact\": %b\n}\n" top_match;
  let oc = open_out "BENCH_sampling.json" in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.fprintf ppf "wrote BENCH_sampling.json@.";
  if not auto_within then begin
    Format.fprintf ppf
      "sampling: FAIL - governed overhead %.1f%% exceeds the %.0f%% budget (+1pp)@."
      (100.0 *. auto_frac) (100.0 *. budget);
    exit 1
  end;
  if not top_match then begin
    Format.fprintf ppf
      "sampling: FAIL - governed top-10 hot blocks diverge from the exact run@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)

(* Fleet aggregation: tree reduction (fanout 8, domain pool) vs flat
   concat (one merge node over every leaf) as the device count grows.
   Leaves are synthesized by scaling one real per-shard summary, so the
   bench times only the aggregation — the claim under test is that the
   failure-aware tree's wall time grows sublinearly from 64 to 512
   devices while the flat baseline grows linearly, with and without
   injected merge-node corruption. *)

let fleet_leaf_summary () =
  let device = Gpusim.Device.create ~seed:42L Gpusim.Arch.a100 in
  let acc = ref [] in
  let tool =
    {
      (Pasta.Tool.default ~fine_grained:Pasta.Tool.Gpu_parallel "fleet-bench") with
      Pasta.Tool.on_device_summary = (fun _ s -> acc := s :: !acc);
    }
  in
  let (), _ =
    Pasta.Session.run ~tool device (fun () ->
        let buf = Gpusim.Device.malloc device (4 * 1024 * 1024) in
        for _ = 1 to 3 do
          ignore
            (Gpusim.Device.launch device
               (Gpusim.Kernel.make ~name:"fleet_bench_kernel"
                  ~grid:(Gpusim.Dim3.make 64) ~block:(Gpusim.Dim3.make 128)
                  ~regions:
                    [
                      Gpusim.Kernel.region ~base:buf.Gpusim.Device_mem.base
                        ~bytes:(1 lsl 20) ~accesses:20_000 ();
                    ]
                  ()))
        done)
  in
  Pasta.Devagg.merge_summaries (List.rev !acc)

(* Uniform integer scaling keeps every Devagg.validate invariant (weights
   still sum to the total), so scaled clones stand in for distinct
   devices without running 512 sessions. *)
let scale_summary k s =
  {
    s with
    Pasta.Devagg.objects =
      List.map (fun (o, w) -> (o, w * k)) s.Pasta.Devagg.objects;
    blocks = List.map (fun (b, c) -> (b, c * k)) s.Pasta.Devagg.blocks;
    sampled_records = s.Pasta.Devagg.sampled_records * k;
    true_accesses = s.Pasta.Devagg.true_accesses * k;
    writes = s.Pasta.Devagg.writes * k;
  }

let fleet_bench () =
  section
    "Fleet aggregation: failure-aware tree reduction vs flat concat, 64..512 \
     devices";
  let base = fleet_leaf_summary () in
  let fanout = 8 and seed = 0x5eedL and reps = 5 in
  let pool = Pasta_util.Domain_pool.global ~size:(Pasta.Config.domains ()) in
  let best f =
    let wall () =
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      Unix.gettimeofday () -. t0
    in
    List.init reps (fun _ -> wall ()) |> List.fold_left Float.min infinity
  in
  let sizes = [ 64; 128; 256; 512 ] in
  let measure n =
    let leaves = Array.init n (fun d -> Some (scale_summary (1 + (d mod 7)) base)) in
    let summaries = Array.to_list leaves |> List.filter_map Fun.id in
    let tree_us = 1.0e6 *. best (fun () -> Pasta.Fleet.reduce ~pool ~seed ~fanout leaves) in
    let tree_fault_us =
      1.0e6
      *. best (fun () ->
             Pasta.Fleet.reduce ~pool ~rates:Gpusim.Faults.default_fleet_rates
               ~seed ~fanout leaves)
    in
    let flat_us = 1.0e6 *. best (fun () -> Pasta.Fleet.flat_merge summaries) in
    let faulted =
      Pasta.Fleet.reduce ~pool ~rates:Gpusim.Faults.default_fleet_rates ~seed
        ~fanout leaves
    in
    let dropped =
      List.fold_left
        (fun acc (_, ds) -> acc + List.length ds)
        0 faulted.Pasta.Fleet.red_dropped
    in
    (n, tree_us, tree_fault_us, flat_us, dropped)
  in
  let rows = List.map measure sizes in
  Pasta_util.Texttab.render ppf
    ~header:
      [ "devices"; "tree (us)"; "tree+faults (us)"; "flat (us)"; "dropped" ]
    ~align:[ Pasta_util.Texttab.Right; Right; Right; Right; Right ]
    (List.map
       (fun (n, t, tf, fl, d) ->
         [
           string_of_int n;
           Printf.sprintf "%.1f" t;
           Printf.sprintf "%.1f" tf;
           Printf.sprintf "%.1f" fl;
           string_of_int d;
         ])
       rows);
  let at n = List.find (fun (m, _, _, _, _) -> m = n) rows in
  let _, t64, _, f64, _ = at 64 and _, t512, _, f512, _ = at 512 in
  let growth_tree = t512 /. t64 and growth_flat = f512 /. f64 in
  (* 64 -> 512 is an 8x device growth: the tree is sublinear when its
     wall time grows by less than that factor. *)
  let sublinear = growth_tree < 8.0 in
  Format.fprintf ppf
    "@.64 -> 512 devices: tree wall grows %.2fx, flat grows %.2fx (%s)@."
    growth_tree growth_flat
    (if sublinear then "tree sublinear" else "tree NOT sublinear");
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n";
  Printf.bprintf b "  \"experiment\": \"fleet\",\n";
  Printf.bprintf b "  \"fanout\": %d,\n  \"reps\": %d,\n  \"pool_domains\": %d,\n"
    fanout reps
    (Pasta_util.Domain_pool.size pool);
  Printf.bprintf b "  \"rows\": [\n";
  List.iteri
    (fun i (n, t, tf, fl, d) ->
      Printf.bprintf b
        "    { \"devices\": %d, \"tree_us\": %.1f, \"tree_faults_us\": %.1f, \
         \"flat_us\": %.1f, \"dropped_with_faults\": %d }%s\n"
        n t tf fl d
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.bprintf b "  ],\n";
  Printf.bprintf b "  \"growth_tree_64_to_512\": %.3f,\n" growth_tree;
  Printf.bprintf b "  \"growth_flat_64_to_512\": %.3f,\n" growth_flat;
  Printf.bprintf b "  \"tree_sublinear\": %b\n}\n" sublinear;
  let oc = open_out "BENCH_fleet.json" in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.fprintf ppf "wrote BENCH_fleet.json@.";
  if not sublinear then begin
    Format.fprintf ppf
      "fleet: FAIL - tree aggregation wall time grew %.2fx over an 8x device \
       growth@."
      growth_tree;
    exit 1
  end

(* Tiny divergence gate for `dune build @perf-smoke` (part of runtest):
   the batched path must see exactly the records the per-record path
   sees, and its output must not depend on the domain count. *)
let pipeline_smoke () =
  let sample_cap = 64 and iters = 1 in
  let serial = pipeline_run ~sample_cap ~iters `Serial in
  let par =
    List.map (fun d -> (d, pipeline_run ~sample_cap ~iters (`Parallel d))) [ 1; 2; 4; 8 ]
  in
  let digests = List.map (fun (_, r) -> Digest.to_hex (Digest.string r.p_report)) par in
  let same_digest =
    match digests with [] -> true | d :: rest -> List.for_all (( = ) d) rest
  in
  if not same_digest then begin
    prerr_endline "perf-smoke: FAIL - parallel tool output diverges across domain counts";
    exit 1
  end;
  if List.exists (fun (_, r) -> r.p_records <> serial.p_records) par then begin
    Printf.eprintf "perf-smoke: FAIL - record counts diverge (serial %d vs parallel %s)\n"
      serial.p_records
      (String.concat "/" (List.map (fun (_, r) -> string_of_int r.p_records) par));
    exit 1
  end;
  Printf.printf "perf-smoke: OK - %d records, identical output at 1/2/4/8 domains (md5 %s)\n"
    serial.p_records
    (match digests with d :: _ -> d | [] -> "-")

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig4", fig4);
    ("fig7", fig7);
    ("tablev", tablev);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("instr", instr);
    ("ablation", ablation);
    ("bechamel", bechamel_benches);
    ("pipeline", pipeline);
    ("replay", replay);
    ("telemetry", telemetry);
    ("sampling", sampling);
    ("fleet", fleet_bench);
  ]

(* Run one experiment, optionally capturing its output into
   <dir>/<name>.txt like the artifact's results/ tree. *)
let run_experiment ~out (name, f) =
  match out with
  | None -> f ()
  | Some dir ->
      let path = Filename.concat dir (name ^ ".txt") in
      let oc = open_out path in
      let file_ppf = Format.formatter_of_out_channel oc in
      let saved = !out_ppf in
      Format.pp_print_flush ppf ();
      out_ppf := file_ppf;
      Fun.protect
        ~finally:(fun () ->
          Format.pp_print_flush ppf ();
          Format.pp_print_flush file_ppf ();
          close_out oc;
          out_ppf := saved;
          Format.fprintf saved "wrote %s@." path)
        f

let () =
  (* The simulated workloads allocate heavily, and every minor collection
     is a stop-the-world handshake across all domains — including parked
     pool workers.  A larger minor heap keeps the GC out of the
     measurements for serial and parallel configurations alike. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let args = Array.to_list Sys.argv |> List.tl |> List.filter (fun a -> a <> "--") in
  let out, args =
    match args with
    | "--out" :: dir :: rest ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        (Some dir, rest)
    | args -> (None, args)
  in
  match args with
  | [] -> List.iter (run_experiment ~out) experiments
  | [ "pipeline-smoke" ] -> pipeline_smoke ()
  | [ "list" ] ->
      List.iter (fun (name, _) -> Format.fprintf ppf "%s@." name) experiments
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> run_experiment ~out (name, f)
          | None ->
              Format.fprintf ppf "unknown experiment %s (try 'list')@." name;
              exit 1)
        names
