(* Unit and property tests for Pasta_util. *)

open Pasta_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

let qtest = QCheck_alcotest.to_alcotest

(* ---- Det_rng ---- *)

let test_rng_determinism () =
  let a = Det_rng.create 42L and b = Det_rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Det_rng.int64 a) (Det_rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Det_rng.create 1L and b = Det_rng.create 2L in
  check_bool "different seeds diverge" true (Det_rng.int64 a <> Det_rng.int64 b)

let test_rng_of_string_stable () =
  let a = Det_rng.of_string "gpu0" and b = Det_rng.of_string "gpu0" in
  Alcotest.(check int64) "stable" (Det_rng.int64 a) (Det_rng.int64 b)

let test_rng_split_independent () =
  let a = Det_rng.create 7L in
  let b = Det_rng.split a in
  let xa = Det_rng.int64 a and xb = Det_rng.int64 b in
  check_bool "split streams differ" true (xa <> xb)

let test_rng_copy () =
  let a = Det_rng.create 9L in
  ignore (Det_rng.int64 a);
  let b = Det_rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Det_rng.int64 a) (Det_rng.int64 b)

let test_rng_int_invalid () =
  let r = Det_rng.create 1L in
  Alcotest.check_raises "non-positive bound" (Invalid_argument "Det_rng.int: bound must be positive")
    (fun () -> ignore (Det_rng.int r 0))

let test_rng_prob_extremes () =
  let r = Det_rng.create 1L in
  check_bool "p=0 never" false (Det_rng.prob r 0.0);
  check_bool "p=1 always" true (Det_rng.prob r 1.0)

let test_rng_pick_empty () =
  let r = Det_rng.create 1L in
  Alcotest.check_raises "empty array" (Invalid_argument "Det_rng.pick: empty array")
    (fun () -> ignore (Det_rng.pick r [||]))

let test_rng_geometric_p1 () =
  let r = Det_rng.create 1L in
  check_int "p=1 is zero failures" 0 (Det_rng.geometric r 1.0)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Det_rng.int stays in bounds" ~count:500
    QCheck.(pair int64 (int_range 1 10000))
    (fun (seed, bound) ->
      let r = Det_rng.create seed in
      let v = Det_rng.int r bound in
      v >= 0 && v < bound)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Det_rng.float stays in bounds" ~count:500 QCheck.int64
    (fun seed ->
      let r = Det_rng.create seed in
      let v = Det_rng.float r 3.5 in
      v >= 0.0 && v < 3.5)

let prop_rng_lognormal_positive =
  QCheck.Test.make ~name:"Det_rng.lognormal is positive" ~count:200 QCheck.int64
    (fun seed ->
      let r = Det_rng.create seed in
      Det_rng.lognormal r ~mu:0.0 ~sigma:1.0 > 0.0)

(* ---- Bytesize ---- *)

let test_bytesize_pp () =
  check_string "bytes" "512 B" (Bytesize.to_string 512);
  check_string "kb" "1.00 KB" (Bytesize.to_string 1024);
  check_string "mb" "2.00 MB" (Bytesize.to_string (Bytesize.mib 2));
  check_string "gb" "4.00 GB" (Bytesize.to_string (Bytesize.gib 4))

let test_bytesize_units () =
  check_int "kib" 2048 (Bytesize.kib 2);
  check_int "mib" (1024 * 1024) (Bytesize.mib 1);
  check_float "to_mib" 1.5 (Bytesize.to_mib_f (Bytesize.kib 1536))

let test_align_up_invalid () =
  Alcotest.check_raises "align 0" (Invalid_argument "Bytesize.align_up: align must be positive")
    (fun () -> ignore (Bytesize.align_up 5 ~align:0))

let prop_align_up =
  QCheck.Test.make ~name:"align_up is minimal aligned upper bound" ~count:500
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 4096))
    (fun (n, align) ->
      let a = Bytesize.align_up n ~align in
      a >= n && a mod align = 0 && a - n < align)

(* ---- Stats ---- *)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 5.0 s.Stats.max;
  check_float "mean" 3.0 s.Stats.mean;
  check_float "median" 3.0 s.Stats.median;
  check_int "count" 5 s.Stats.count;
  check_float "total" 15.0 s.Stats.total

let test_stats_percentile_interp () =
  check_float "p50 of [1,2]" 1.5 (Stats.percentile [| 1.0; 2.0 |] 50.0);
  check_float "p0" 1.0 (Stats.percentile [| 2.0; 1.0 |] 0.0);
  check_float "p100" 2.0 (Stats.percentile [| 2.0; 1.0 |] 100.0)

let test_stats_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Stats.summarize [||]))

let test_stats_percentile_range () =
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile [| 1.0 |] 101.0))

let test_stats_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive sample") (fun () ->
      ignore (Stats.geomean [| 1.0; 0.0 |]))

let test_stats_no_mutation () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.summarize xs);
  Alcotest.(check (array (float 0.0))) "input untouched" [| 3.0; 1.0; 2.0 |] xs

let prop_stats_ordering =
  QCheck.Test.make ~name:"min <= median <= p90 <= max" ~count:300
    QCheck.(array_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.min <= s.Stats.median
      && s.Stats.median <= s.Stats.p90 +. 1e-9
      && s.Stats.p90 <= s.Stats.max +. 1e-9)

(* ---- Histogram ---- *)

let test_histogram_basic () =
  let h = Histogram.create () in
  Histogram.add h "a";
  Histogram.add h "a";
  Histogram.add h ~count:3 "b";
  check_int "count a" 2 (Histogram.count h "a");
  check_int "count b" 3 (Histogram.count h "b");
  check_int "count missing" 0 (Histogram.count h "c");
  check_int "total" 5 (Histogram.total h);
  check_int "distinct" 2 (Histogram.distinct h)

let test_histogram_sorted () =
  let h = Histogram.create () in
  Histogram.add h ~count:1 "low";
  Histogram.add h ~count:5 "high";
  Histogram.add h ~count:5 "also_high";
  (match Histogram.to_sorted h with
  | (k1, 5) :: (k2, 5) :: (k3, 1) :: [] ->
      check_string "ties lexicographic" "also_high" k1;
      check_string "second" "high" k2;
      check_string "third" "low" k3
  | _ -> Alcotest.fail "unexpected sort");
  check_int "top 1" 1 (List.length (Histogram.top h 1))

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a ~count:2 "x";
  Histogram.add b ~count:3 "x";
  Histogram.add b "y";
  let m = Histogram.merge a b in
  check_int "merged x" 5 (Histogram.count m "x");
  check_int "merged y" 1 (Histogram.count m "y");
  check_int "originals intact" 2 (Histogram.count a "x")

(* ---- Timeline ---- *)

let test_timeline_basic () =
  let t = Timeline.create () in
  check_bool "empty" true (Timeline.is_empty t);
  Timeline.record t ~time:0.0 10.0;
  Timeline.record t ~time:1.0 20.0;
  Timeline.record t ~time:2.0 5.0;
  check_int "length" 3 (Timeline.length t);
  check_float "last" 5.0 (Timeline.last_value t);
  check_float "peak" 20.0 (Timeline.peak t);
  check_float "duration" 2.0 (Timeline.duration t)

let test_timeline_backwards () =
  let t = Timeline.create () in
  Timeline.record t ~time:5.0 1.0;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Timeline.record: time went backwards") (fun () ->
      Timeline.record t ~time:4.0 1.0)

let test_timeline_bucketize () =
  let t = Timeline.create () in
  Timeline.record t ~time:0.0 1.0;
  Timeline.record t ~time:10.0 2.0;
  let b = Timeline.bucketize t ~buckets:4 in
  check_int "bucket count" 4 (Array.length b);
  check_float "first holds initial" 1.0 b.(0);
  check_float "last holds final" 2.0 b.(3)

let test_timeline_bucketize_instant () =
  let t = Timeline.create () in
  Timeline.record t ~time:1.0 7.0;
  let b = Timeline.bucketize t ~buckets:3 in
  Array.iter (fun v -> check_float "constant" 7.0 v) b

let test_timeline_diff_mismatch () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Timeline.diff: length mismatch")
    (fun () -> ignore (Timeline.diff [| 1.0 |] [| 1.0; 2.0 |]))

(* ---- Freelist ---- *)

let test_freelist_coalesce () =
  let f = Freelist.singleton ~base:0 ~bytes:100 in
  let f = match Freelist.take_first_fit f ~bytes:100 with Some (0, f) -> f | _ -> Alcotest.fail "take" in
  check_bool "empty after take" true (Freelist.is_empty f);
  (* Re-insert in three pieces out of order; must coalesce to one hole. *)
  let f = Freelist.insert f ~base:50 ~bytes:25 in
  let f = Freelist.insert f ~base:0 ~bytes:50 in
  let f = Freelist.insert f ~base:75 ~bytes:25 in
  Alcotest.(check (list (pair int int))) "coalesced" [ (0, 100) ] (Freelist.holes f)

let test_freelist_overlap () =
  let f = Freelist.singleton ~base:0 ~bytes:10 in
  Alcotest.check_raises "overlap" (Invalid_argument "Freelist.insert: overlapping hole")
    (fun () -> ignore (Freelist.insert f ~base:5 ~bytes:10))

let test_freelist_first_fit () =
  let f = Freelist.singleton ~base:0 ~bytes:10 in
  let f = Freelist.insert f ~base:100 ~bytes:50 in
  (match Freelist.take_first_fit f ~bytes:20 with
  | Some (100, f') ->
      Alcotest.(check (list (pair int int))) "split hole" [ (0, 10); (120, 30) ]
        (Freelist.holes f')
  | _ -> Alcotest.fail "expected fit at 100");
  check_bool "no fit" true (Freelist.take_first_fit f ~bytes:51 = None)

let prop_freelist_total_preserved =
  QCheck.Test.make ~name:"freelist take+insert preserves total bytes" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 1 64))
    (fun sizes ->
      let f = ref (Freelist.singleton ~base:0 ~bytes:4096) in
      let taken = ref [] in
      List.iter
        (fun sz ->
          match Freelist.take_first_fit !f ~bytes:sz with
          | Some (base, f') ->
              f := f';
              taken := (base, sz) :: !taken
          | None -> ())
        sizes;
      List.iter (fun (base, bytes) -> f := Freelist.insert !f ~base ~bytes) !taken;
      Freelist.total !f = 4096 && Freelist.holes !f = [ (0, 4096) ])

(* ---- Ring_buffer ---- *)

let test_ring_fifo () =
  let r = Ring_buffer.create ~capacity:3 in
  check_bool "push1" true (Ring_buffer.push r 1);
  check_bool "push2" true (Ring_buffer.push r 2);
  check_bool "push3" true (Ring_buffer.push r 3);
  check_bool "full rejects" false (Ring_buffer.push r 4);
  Alcotest.(check (option int)) "pop fifo" (Some 1) (Ring_buffer.pop r);
  check_bool "can push after pop" true (Ring_buffer.push r 4);
  Alcotest.(check (list int)) "drain order" [ 2; 3; 4 ] (Ring_buffer.drain r);
  check_bool "empty" true (Ring_buffer.is_empty r)

let test_ring_clear () =
  let r = Ring_buffer.create ~capacity:2 in
  ignore (Ring_buffer.push r 1);
  Ring_buffer.clear r;
  check_int "cleared" 0 (Ring_buffer.length r);
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Ring_buffer.create: capacity must be positive") (fun () ->
      ignore (Ring_buffer.create ~capacity:0))

(* ---- Texttab / Heatmap ---- *)

let test_texttab_render () =
  let out =
    Format.asprintf "%t" (fun ppf ->
        Texttab.render ppf ~header:[ "a"; "b" ] ~align:[ Texttab.Left; Texttab.Right ]
          [ [ "x"; "1" ]; [ "longer" ] ])
  in
  check_bool "contains header" true
    (String.length out > 0 && String.sub out 0 1 = "a");
  check_bool "pads short rows" true (String.length out > 10)

let test_heatmap_intensity () =
  Alcotest.(check char) "zero" ' ' (Heatmap.intensity_char 0.0);
  Alcotest.(check char) "one" '@' (Heatmap.intensity_char 1.0);
  Alcotest.(check char) "clamped high" '@' (Heatmap.intensity_char 2.0);
  Alcotest.(check char) "clamped low" ' ' (Heatmap.intensity_char (-1.0))

let suite =
  [
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng of_string stable", `Quick, test_rng_of_string_stable);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng copy", `Quick, test_rng_copy);
    ("rng int invalid", `Quick, test_rng_int_invalid);
    ("rng prob extremes", `Quick, test_rng_prob_extremes);
    ("rng pick empty", `Quick, test_rng_pick_empty);
    ("rng geometric p=1", `Quick, test_rng_geometric_p1);
    qtest prop_rng_int_bounds;
    qtest prop_rng_float_bounds;
    qtest prop_rng_lognormal_positive;
    ("bytesize pp", `Quick, test_bytesize_pp);
    ("bytesize units", `Quick, test_bytesize_units);
    ("align_up invalid", `Quick, test_align_up_invalid);
    qtest prop_align_up;
    ("stats summary", `Quick, test_stats_summary);
    ("stats percentile interpolation", `Quick, test_stats_percentile_interp);
    ("stats empty", `Quick, test_stats_empty);
    ("stats percentile range", `Quick, test_stats_percentile_range);
    ("stats geomean", `Quick, test_stats_geomean);
    ("stats no mutation", `Quick, test_stats_no_mutation);
    qtest prop_stats_ordering;
    ("histogram basic", `Quick, test_histogram_basic);
    ("histogram sorted", `Quick, test_histogram_sorted);
    ("histogram merge", `Quick, test_histogram_merge);
    ("timeline basic", `Quick, test_timeline_basic);
    ("timeline backwards", `Quick, test_timeline_backwards);
    ("timeline bucketize", `Quick, test_timeline_bucketize);
    ("timeline bucketize instant", `Quick, test_timeline_bucketize_instant);
    ("timeline diff mismatch", `Quick, test_timeline_diff_mismatch);
    ("freelist coalesce", `Quick, test_freelist_coalesce);
    ("freelist overlap", `Quick, test_freelist_overlap);
    ("freelist first fit", `Quick, test_freelist_first_fit);
    qtest prop_freelist_total_preserved;
    ("ring buffer fifo", `Quick, test_ring_fifo);
    ("ring buffer clear", `Quick, test_ring_clear);
    ("texttab render", `Quick, test_texttab_render);
    ("heatmap intensity", `Quick, test_heatmap_intensity);
  ]
