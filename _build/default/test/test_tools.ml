(* Case-study tool tests: kernel frequency, working sets, hotness,
   timelines, the UVM prefetcher and the end-to-end UVM experiment. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module MC = Pasta_tools.Memory_charact
module UX = Pasta_tools.Uvm_experiment

let small_gpt2 ctx = Dlfw.Gpt2.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx

let with_session ?range tool f =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let (), result = Pasta.Session.run ?range ~tool device (fun () -> f ctx) in
  Dlfw.Ctx.destroy ctx;
  result

(* ---- Kernel_freq ---- *)

let test_kernel_freq_counts () =
  let kf = Pasta_tools.Kernel_freq.create () in
  let result =
    with_session (Pasta_tools.Kernel_freq.tool kf) (fun ctx ->
        let m = small_gpt2 ctx in
        Dlfw.Model.inference_iter ctx m)
  in
  check_int "tool count equals session count" result.Pasta.Session.kernels
    (Pasta_tools.Kernel_freq.total_launches kf);
  check_bool "distinct kernels" true (Pasta_tools.Kernel_freq.distinct_kernels kf > 5);
  (match Pasta_tools.Kernel_freq.top kf 3 with
  | (_, a) :: (_, b) :: _ -> check_bool "sorted" true (a >= b)
  | _ -> Alcotest.fail "expected top kernels");
  check_bool "most called tracked" true (Pasta_tools.Kernel_freq.most_called kf <> None);
  check_bool "most mem tracked" true
    (Pasta_tools.Kernel_freq.most_mem_referenced kf <> None);
  let report = Format.asprintf "%t" (Pasta_tools.Kernel_freq.report kf) in
  check_bool "report mentions launches" true (Astring_contains.contains report "launches")

(* ---- Memory_charact ---- *)

let run_mc variant =
  let mc = MC.create ~variant () in
  let _ =
    with_session (MC.tool mc) (fun ctx ->
        let m = small_gpt2 ctx in
        Dlfw.Model.inference_iter ctx m)
  in
  MC.result mc

let test_mc_variants_agree () =
  let g = run_mc MC.Gpu in
  let cs = run_mc MC.Cpu_sanitizer in
  let nv = run_mc MC.Cpu_nvbit in
  (* All three analysis models must compute identical working sets; only
     their cost differs (paper Fig. 8). *)
  check_int "gpu vs cs-cpu kernels" g.MC.kernel_count cs.MC.kernel_count;
  check_int "gpu vs cs-cpu ws" g.MC.ws_bytes cs.MC.ws_bytes;
  check_int "gpu vs nvbit ws" g.MC.ws_bytes nv.MC.ws_bytes;
  check_int "footprints agree" g.MC.footprint_bytes cs.MC.footprint_bytes

let test_mc_ordering () =
  let r = run_mc MC.Gpu in
  check_bool "min <= median" true (float_of_int r.MC.ws_min <= r.MC.ws_median);
  check_bool "median <= p90" true (r.MC.ws_median <= r.MC.ws_p90);
  check_bool "p90 <= max" true (r.MC.ws_p90 <= float_of_int r.MC.ws_bytes);
  check_bool "ws <= footprint" true (r.MC.ws_bytes <= r.MC.footprint_bytes)

let test_mc_empty () =
  let mc = MC.create () in
  Alcotest.check_raises "no kernels"
    (Invalid_argument "Memory_charact.result: no kernels observed") (fun () ->
      ignore (MC.result mc))

let test_mc_footprints_per_kernel () =
  let mc = MC.create ~variant:MC.Gpu () in
  let result =
    with_session (MC.tool mc) (fun ctx ->
        let m = small_gpt2 ctx in
        Dlfw.Model.inference_iter ctx m)
  in
  let fp = MC.kernel_footprints mc in
  check_int "one footprint per kernel" result.Pasta.Session.kernels (Array.length fp)

(* ---- Mem_timeline ---- *)

let test_mem_timeline () =
  let mt = Pasta_tools.Mem_timeline.create () in
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let (), _ =
    Pasta.Session.run ~tool:(Pasta_tools.Mem_timeline.tool mt) device (fun () ->
        let m = small_gpt2 ctx in
        Dlfw.Model.train_iter ctx m)
  in
  check_bool "alloc events seen" true (Pasta_tools.Mem_timeline.alloc_events mt > 10);
  check_bool "free events seen" true (Pasta_tools.Mem_timeline.free_events mt > 10);
  (* The tool's peak must match the allocator's true peak (params are
     allocated before the session attaches, so compare against live
     tracking tolerance: the tool sees everything allocated during the
     session). *)
  check_bool "peak positive" true (Pasta_tools.Mem_timeline.peak_bytes mt > 0.0);
  let s = Pasta_tools.Mem_timeline.series mt ~buckets:16 in
  check_int "series buckets" 16 (Array.length s);
  Dlfw.Ctx.destroy ctx

(* ---- Hotness ---- *)

let test_hotness_matrix () =
  let hot = Pasta_tools.Hotness.create ~time_buckets:8 () in
  let _ =
    with_session (Pasta_tools.Hotness.tool hot) (fun ctx ->
        let m = small_gpt2 ctx in
        Dlfw.Model.inference_iter ctx m;
        Dlfw.Model.inference_iter ctx m)
  in
  let matrix = Pasta_tools.Hotness.matrix hot in
  check_bool "blocks observed" true (Array.length matrix > 0);
  Array.iter (fun row -> check_int "row width" 8 (Array.length row)) matrix;
  let classes = Pasta_tools.Hotness.classify hot in
  check_int "one class per block" (Array.length matrix) (List.length classes);
  (* Model parameters are accessed in both iterations: some block must be
     persistent-hot. *)
  check_bool "persistent-hot blocks exist" true
    (Pasta_tools.Hotness.prefetch_candidates hot <> []);
  let report = Format.asprintf "%t" (fun ppf -> Pasta_tools.Hotness.report hot ppf) in
  check_bool "report renders" true (Astring_contains.contains report "blocks")

let test_hotness_empty () =
  let hot = Pasta_tools.Hotness.create () in
  check_int "empty matrix" 0 (Array.length (Pasta_tools.Hotness.matrix hot));
  let report = Format.asprintf "%t" (fun ppf -> Pasta_tools.Hotness.report hot ppf) in
  check_bool "empty report" true (Astring_contains.contains report "no accesses")

(* ---- Uvm_prefetch ---- *)

let test_prefetch_plans () =
  let rec_ = Pasta_tools.Uvm_prefetch.recorder () in
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create ~managed:true device in
  let (), result =
    Pasta.Session.run ~tool:(Pasta_tools.Uvm_prefetch.recorder_tool rec_) device
      (fun () ->
        let m = small_gpt2 ctx in
        Dlfw.Model.inference_iter ctx m)
  in
  let obj = Pasta_tools.Uvm_prefetch.plan_of rec_ Pasta_tools.Uvm_prefetch.Object_level in
  let ten = Pasta_tools.Uvm_prefetch.plan_of rec_ Pasta_tools.Uvm_prefetch.Tensor_level in
  check_int "plan covers every kernel"
    result.Pasta.Session.kernels
    (Pasta_tools.Uvm_prefetch.plan_kernels obj);
  check_bool "tensor plans at least as fine" true
    (Pasta_tools.Uvm_prefetch.plan_ranges ten
    >= Pasta_tools.Uvm_prefetch.plan_ranges obj);
  Dlfw.Ctx.destroy ctx

let test_prefetch_probe_install_remove () =
  let rec_ = Pasta_tools.Uvm_prefetch.recorder () in
  let plan = Pasta_tools.Uvm_prefetch.plan_of rec_ Pasta_tools.Uvm_prefetch.Tensor_level in
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  Pasta_tools.Uvm_prefetch.install plan device;
  Pasta_tools.Uvm_prefetch.remove device;
  (* Removing twice is harmless. *)
  Pasta_tools.Uvm_prefetch.remove device

(* ---- Uvm_experiment ---- *)

let test_uvm_experiment_no_oversub () =
  let o = UX.run ~arch:Gpusim.Arch.a100 ~oversub:1.0 "BERT" in
  check_bool "prefetching helps without oversubscription" true
    (UX.speedup o `Object > 1.0 && UX.speedup o `Tensor > 1.0);
  check_int "no thrashing" 0 o.UX.baseline.UX.refaults;
  check_bool "footprint measured" true (o.UX.footprint_bytes > 0);
  check_int "full capacity" Gpusim.Arch.a100.Gpusim.Arch.mem_bytes o.UX.capacity_bytes

let test_uvm_experiment_oversub () =
  (* AlexNet's pool segments bundle the huge im2col buffers with the
     activations, so object-level prefetching thrashes at 3x (paper
     Fig. 12). *)
  let o = UX.run ~arch:Gpusim.Arch.a100 ~oversub:3.0 "AN" in
  check_bool "capacity limited" true (o.UX.capacity_bytes < o.UX.footprint_bytes);
  check_bool "baseline thrashes" true (o.UX.baseline.UX.refaults > 0);
  check_bool "object-level thrashes harder than tensor-level" true
    (o.UX.object_level.UX.refaults > o.UX.tensor_level.UX.refaults);
  check_bool "tensor-level beats object-level under pressure" true
    (UX.speedup o `Tensor > UX.speedup o `Object);
  check_bool "object-level prefetch hurts under pressure" true
    (UX.speedup o `Object < 1.0)

let test_uvm_experiment_train_mode () =
  (* Training under UVM exercises the same machinery; prefetching must
     still help at full capacity. *)
  let o =
    UX.run ~mode:Dlfw.Runner.Train ~iters:1 ~arch:Gpusim.Arch.a100 ~oversub:1.0 "RN-18"
  in
  check_bool "prefetch helps training too" true (UX.speedup o `Tensor > 1.0)

let test_uvm_experiment_validation () =
  check_bool "bad oversub" true
    (try
       ignore (UX.run ~arch:Gpusim.Arch.a100 ~oversub:0.0 "BERT");
       false
     with Invalid_argument _ -> true)

let test_uvm_replay_determinism () =
  let a = UX.run ~arch:Gpusim.Arch.a100 ~oversub:2.0 "RN-18" in
  let b = UX.run ~arch:Gpusim.Arch.a100 ~oversub:2.0 "RN-18" in
  Alcotest.(check (float 0.0)) "baselines identical"
    a.UX.baseline.UX.elapsed_us b.UX.baseline.UX.elapsed_us;
  Alcotest.(check (float 0.0)) "tensor replays identical"
    a.UX.tensor_level.UX.elapsed_us b.UX.tensor_level.UX.elapsed_us

(* ---- Multi_gpu ---- *)

let test_multi_gpu_attach () =
  let d0 = Gpusim.Device.create ~id:0 Gpusim.Arch.a100 in
  let d1 = Gpusim.Device.create ~id:1 Gpusim.Arch.a100 in
  let mg =
    Pasta_tools.Multi_gpu.attach
      ~has_context:(fun d -> Gpusim.Device.id d = 0)
      [ d0; d1 ]
  in
  check_int "helper process skipped" 1 (Pasta_tools.Multi_gpu.instrumented_devices mg);
  let results = Pasta_tools.Multi_gpu.detach mg in
  check_int "one result" 1 (List.length results);
  let mg2 = Pasta_tools.Multi_gpu.attach [ d0; d1 ] in
  check_int "both instrumented" 2 (Pasta_tools.Multi_gpu.instrumented_devices mg2);
  (match Pasta_tools.Multi_gpu.timelines mg2 with
  | [ (0, _); (1, _) ] -> ()
  | _ -> Alcotest.fail "expected timelines for devices 0 and 1");
  ignore (Pasta_tools.Multi_gpu.detach mg2)

(* ---- Registry glue ---- *)

let test_register_all () =
  Pasta_tools.Tools.register_all ();
  List.iter
    (fun name ->
      check_bool name true (Pasta.Registry.find name <> None))
    [ "kernel_freq"; "memory_charact"; "memory_charact_cs_cpu";
      "memory_charact_nvbit_cpu"; "hotness"; "mem_timeline" ]

let test_registered_tools_run () =
  Pasta_tools.Tools.register_all ();
  List.iter
    (fun name ->
      let tool = (Option.get (Pasta.Registry.find name)) () in
      let result =
        with_session tool (fun ctx ->
            let m = small_gpt2 ctx in
            Dlfw.Model.inference_iter ctx m)
      in
      let report = Format.asprintf "%t" result.Pasta.Session.report in
      check_bool (name ^ " produces a report") true (String.length report > 0))
    (Pasta.Registry.names ()
    |> List.filter (fun n -> not (Astring_contains.contains n "test_tool")))

let suite =
  [
    ("kernel_freq counts", `Quick, test_kernel_freq_counts);
    ("memory_charact variants agree", `Quick, test_mc_variants_agree);
    ("memory_charact ordering", `Quick, test_mc_ordering);
    ("memory_charact empty", `Quick, test_mc_empty);
    ("memory_charact per-kernel footprints", `Quick, test_mc_footprints_per_kernel);
    ("mem_timeline", `Quick, test_mem_timeline);
    ("hotness matrix", `Quick, test_hotness_matrix);
    ("hotness empty", `Quick, test_hotness_empty);
    ("uvm_prefetch plans", `Quick, test_prefetch_plans);
    ("uvm_prefetch probe install/remove", `Quick, test_prefetch_probe_install_remove);
    ("uvm experiment: no oversubscription", `Slow, test_uvm_experiment_no_oversub);
    ("uvm experiment: oversubscription", `Slow, test_uvm_experiment_oversub);
    ("uvm experiment: train mode", `Slow, test_uvm_experiment_train_mode);
    ("uvm experiment: validation", `Quick, test_uvm_experiment_validation);
    ("uvm experiment: replay determinism", `Slow, test_uvm_replay_determinism);
    ("multi_gpu attach", `Quick, test_multi_gpu_attach);
    ("register_all", `Quick, test_register_all);
    ("registered tools run", `Quick, test_registered_tools_run);
  ]
