(* DL-framework substrate tests: allocator, tensors, ops, layers, models. *)

open Dlfw

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

let mk_ctx ?(arch = Gpusim.Arch.a100) ?(managed = false) () =
  Ctx.create ~managed (Gpusim.Device.create arch)

(* ---- Dtype / Shape ---- *)

let test_dtype_sizes () =
  check_int "f32" 4 (Dtype.size_bytes Dtype.F32);
  check_int "f16" 2 (Dtype.size_bytes Dtype.F16);
  check_int "i64" 8 (Dtype.size_bytes Dtype.I64);
  check_int "u8" 1 (Dtype.size_bytes Dtype.U8)

let test_shape () =
  check_int "numel" 24 (Shape.numel [ 2; 3; 4 ]);
  check_int "scalar numel" 1 (Shape.numel []);
  check_int "bytes" 96 (Shape.bytes [ 2; 3; 4 ] Dtype.F32);
  check_bool "equal" true (Shape.equal [ 1; 2 ] [ 1; 2 ]);
  Alcotest.check_raises "non-positive dim"
    (Invalid_argument "Shape.numel: non-positive dimension") (fun () ->
      ignore (Shape.numel [ 2; 0 ]))

(* ---- Callbacks ---- *)

let test_callbacks_observers () =
  Callbacks.clear_observers ();
  let mems = ref 0 and ops = ref 0 in
  Callbacks.add_memory_observer "t" (fun _ -> incr mems);
  Callbacks.add_op_observer "t" (fun _ -> incr ops);
  Callbacks.report_memory_usage
    { Callbacks.ptr = 0; size_delta = 1; total_allocated = 1; total_reserved = 1;
      device_id = 0; tag = "x" };
  Callbacks.record_function
    { Callbacks.op_name = "aten::x"; phase = `Begin; device_id = 0; seq = 1 };
  check_int "mem observed" 1 !mems;
  check_int "op observed" 1 !ops;
  Callbacks.remove_memory_observer "t";
  Callbacks.report_memory_usage
    { Callbacks.ptr = 0; size_delta = 1; total_allocated = 1; total_reserved = 1;
      device_id = 0; tag = "x" };
  check_int "removed" 1 !mems;
  Callbacks.clear_observers ();
  Callbacks.record_function
    { Callbacks.op_name = "aten::x"; phase = `End; device_id = 0; seq = 1 };
  check_int "cleared" 1 !ops

let test_callbacks_seq () =
  let a = Callbacks.next_op_seq () in
  let b = Callbacks.next_op_seq () in
  check_bool "increments" true (b = a + 1)

(* ---- Allocator ---- *)

let test_alloc_rounding () =
  let ctx = mk_ctx () in
  let b = Allocator.alloc ctx.Ctx.pool 100 in
  check_int "rounded to 512" 512 b.Allocator.bytes;
  check_int "requested kept" 100 b.Allocator.requested;
  Allocator.free ctx.Ctx.pool b;
  Ctx.destroy ctx

let test_alloc_small_pool_segment () =
  let ctx = mk_ctx () in
  let b = Allocator.alloc ctx.Ctx.pool 1024 in
  check_int "small request in 2MB segment" (2 * 1024 * 1024) b.Allocator.seg_bytes;
  (* A second small allocation shares the segment. *)
  let b2 = Allocator.alloc ctx.Ctx.pool 1024 in
  check_int "shares segment" b.Allocator.seg_base b2.Allocator.seg_base;
  check_int "one segment" 1 (Allocator.segment_count ctx.Ctx.pool);
  Ctx.destroy ctx

let test_alloc_reuse () =
  let ctx = mk_ctx () in
  let b = Allocator.alloc ctx.Ctx.pool 4096 in
  let base = b.Allocator.base in
  Allocator.free ctx.Ctx.pool b;
  let b2 = Allocator.alloc ctx.Ctx.pool 4096 in
  check_int "freed block reused" base b2.Allocator.base;
  check_int "no new device traffic" 1 (Allocator.segment_count ctx.Ctx.pool);
  Ctx.destroy ctx

let test_alloc_best_fit () =
  let ctx = mk_ctx () in
  (* Create two holes: 8K and 4K; a 3K request must take the 4K hole. *)
  let pad1 = Allocator.alloc ctx.Ctx.pool 512 in
  let h8 = Allocator.alloc ctx.Ctx.pool 8192 in
  let pad2 = Allocator.alloc ctx.Ctx.pool 512 in
  let h4 = Allocator.alloc ctx.Ctx.pool 4096 in
  let pad3 = Allocator.alloc ctx.Ctx.pool 512 in
  Allocator.free ctx.Ctx.pool h8;
  Allocator.free ctx.Ctx.pool h4;
  let b = Allocator.alloc ctx.Ctx.pool 3072 in
  check_int "best fit picks the smaller hole" h4.Allocator.base b.Allocator.base;
  List.iter (Allocator.free ctx.Ctx.pool) [ pad1; pad2; pad3; b ];
  Ctx.destroy ctx

let test_alloc_double_free () =
  let ctx = mk_ctx () in
  let b = Allocator.alloc ctx.Ctx.pool 512 in
  Allocator.free ctx.Ctx.pool b;
  Alcotest.check_raises "double free"
    (Invalid_argument "Allocator.free: not a live block (double free?)") (fun () ->
      Allocator.free ctx.Ctx.pool b);
  Ctx.destroy ctx

let test_alloc_events () =
  Callbacks.clear_observers ();
  let ctx = mk_ctx () in
  let deltas = ref [] in
  Callbacks.add_memory_observer "t" (fun ev ->
      deltas := (ev.Callbacks.size_delta, ev.Callbacks.total_allocated) :: !deltas);
  let b = Allocator.alloc ctx.Ctx.pool 512 in
  Allocator.free ctx.Ctx.pool b;
  (match List.rev !deltas with
  | [ (512, 512); (-512, 0) ] -> ()
  | other ->
      Alcotest.failf "unexpected deltas: %s"
        (String.concat ";"
           (List.map (fun (d, t) -> Printf.sprintf "(%d,%d)" d t) other)));
  Callbacks.clear_observers ();
  Ctx.destroy ctx

let test_alloc_peaks () =
  let ctx = mk_ctx () in
  let a = Allocator.alloc ctx.Ctx.pool 1024 in
  let b = Allocator.alloc ctx.Ctx.pool 2048 in
  Allocator.free ctx.Ctx.pool a;
  Allocator.free ctx.Ctx.pool b;
  check_int "peak allocated" 3072 (Allocator.peak_allocated ctx.Ctx.pool);
  check_int "current zero" 0 (Allocator.allocated_bytes ctx.Ctx.pool);
  check_bool "reserved persists (cache)" true (Allocator.reserved_bytes ctx.Ctx.pool > 0);
  Allocator.release_cached ctx.Ctx.pool;
  check_int "cache released" 0 (Allocator.reserved_bytes ctx.Ctx.pool);
  Ctx.destroy ctx

let test_alloc_segment_of_addr () =
  let ctx = mk_ctx () in
  let b = Allocator.alloc ctx.Ctx.pool 512 in
  (match Allocator.segment_of_addr ctx.Ctx.pool (b.Allocator.base + 10) with
  | Some (sb, _) -> check_int "segment found" b.Allocator.seg_base sb
  | None -> Alcotest.fail "expected segment");
  check_bool "foreign address" true (Allocator.segment_of_addr ctx.Ctx.pool 1 = None);
  Ctx.destroy ctx

let prop_alloc_invariants =
  QCheck.Test.make ~name:"allocator invariants under random alloc/free" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range 1 (4 * 1024 * 1024)))
    (fun sizes ->
      Callbacks.clear_observers ();
      let ctx = mk_ctx () in
      let live = ref [] in
      let rng = Pasta_util.Det_rng.create 11L in
      List.iter
        (fun sz ->
          if Pasta_util.Det_rng.bool rng || !live = [] then
            live := Allocator.alloc ctx.Ctx.pool sz :: !live
          else
            match !live with
            | b :: rest ->
                Allocator.free ctx.Ctx.pool b;
                live := rest
            | [] -> ())
        sizes;
      Allocator.check_invariants ctx.Ctx.pool;
      Ctx.destroy ctx;
      true)

(* ---- Tensor ---- *)

let test_tensor_lifecycle () =
  let ctx = mk_ctx () in
  let t = Tensor.create ctx.Ctx.pool ~name:"x" [ 4; 4 ] Dtype.F32 in
  check_int "bytes" 64 (Tensor.bytes t);
  check_int "numel" 16 (Tensor.numel t);
  check_bool "live" true (Tensor.is_live t);
  let allocated = Allocator.allocated_bytes ctx.Ctx.pool in
  Tensor.release t;
  check_bool "freed from pool" true (Allocator.allocated_bytes ctx.Ctx.pool < allocated);
  check_bool "dead" false (Tensor.is_live t);
  Alcotest.check_raises "double release" (Invalid_argument "Tensor.release: double release of x")
    (fun () -> Tensor.release t);
  Alcotest.check_raises "use after free" (Invalid_argument "Tensor.base: use after free of x")
    (fun () -> ignore (Tensor.base t));
  Ctx.destroy ctx

let test_tensor_refcount () =
  let ctx = mk_ctx () in
  let t = Tensor.create ctx.Ctx.pool [ 8 ] Dtype.F32 in
  ignore (Tensor.retain t);
  check_int "rc 2" 2 (Tensor.refcount t);
  Tensor.release t;
  check_bool "still live" true (Tensor.is_live t);
  Tensor.release t;
  check_bool "now dead" false (Tensor.is_live t);
  Ctx.destroy ctx

let test_tensor_reshape () =
  let ctx = mk_ctx () in
  let t = Tensor.create ctx.Ctx.pool [ 4; 4 ] Dtype.F32 in
  let t = Tensor.reshape t [ 16 ] in
  Alcotest.(check (list int)) "reshaped" [ 16 ] (Tensor.shape t);
  Alcotest.check_raises "byte mismatch"
    (Invalid_argument "Tensor.reshape: byte count mismatch") (fun () ->
      ignore (Tensor.reshape t [ 5 ]));
  Tensor.release t;
  Ctx.destroy ctx

(* ---- Ops ---- *)

let count_kernels ctx =
  let n = ref 0 in
  Gpusim.Device.add_probe ctx.Ctx.device
    {
      Gpusim.Device.probe_name = "kcount";
      on_event = (fun ev -> match ev with Gpusim.Device.Launch_end _ -> incr n | _ -> ());
    };
  n

let test_conv_out_dims () =
  let cfg =
    { Ops.n = 1; c = 3; h = 224; w = 224; oc = 64; kh = 11; kw = 11; stride = 4;
      pad = 2; algo = `Im2col; benchmark_search = false }
  in
  let oh, ow = Ops.conv_out_dims cfg in
  check_int "alexnet conv1 oh" 55 oh;
  check_int "alexnet conv1 ow" 55 ow;
  Alcotest.check_raises "degenerate" (Invalid_argument "Ops.conv_out_dims: degenerate geometry")
    (fun () -> ignore (Ops.conv_out_dims { cfg with h = 4; kh = 50 }))

let test_conv_im2col_kernels () =
  let ctx = mk_ctx () in
  let n = count_kernels ctx in
  let input = Ops.new_tensor ctx [ 4; 3; 16; 16 ] Dtype.F32 in
  let weight = Ops.new_tensor ctx [ 8; 3; 3; 3 ] Dtype.F32 in
  let cfg =
    { Ops.n = 4; c = 3; h = 16; w = 16; oc = 8; kh = 3; kw = 3; stride = 1; pad = 1;
      algo = `Im2col; benchmark_search = false }
  in
  let out = Ops.conv2d ctx ~input ~weight ~bias:None ~cfg in
  (* One im2col launch per image plus one batched GEMM. *)
  check_int "kernels = n + 1" 5 !n;
  Alcotest.(check (list int)) "output shape" [ 4; 8; 16; 16 ] (Tensor.shape out);
  Ctx.destroy ctx

let test_conv_cudnn_benchmark_search () =
  let ctx = mk_ctx () in
  let n = count_kernels ctx in
  let input = Ops.new_tensor ctx [ 2; 4; 8; 8 ] Dtype.F32 in
  let weight = Ops.new_tensor ctx [ 4; 4; 3; 3 ] Dtype.F32 in
  let cfg =
    { Ops.n = 2; c = 4; h = 8; w = 8; oc = 4; kh = 3; kw = 3; stride = 1; pad = 1;
      algo = `Cudnn; benchmark_search = true }
  in
  ignore (Ops.conv2d ctx ~input ~weight ~bias:None ~cfg);
  let first = !n in
  ignore (Ops.conv2d ctx ~input ~weight ~bias:None ~cfg:{ cfg with benchmark_search = false });
  let second = !n - first in
  check_bool "search adds the workspace transform kernel" true (first = second + 1);
  Ctx.destroy ctx

let test_linear_vendor_lowering () =
  (* NVIDIA fuses the bias; AMD issues a separate bias kernel. *)
  let kernels arch =
    let ctx = mk_ctx ~arch () in
    let n = count_kernels ctx in
    let x = Ops.new_tensor ctx [ 4; 8 ] Dtype.F32 in
    let w = Ops.new_tensor ctx [ 16; 8 ] Dtype.F32 in
    let b = Ops.new_tensor ctx [ 16 ] Dtype.F32 in
    ignore (Ops.linear ctx ~input:x ~weight:w ~bias:(Some b) ~m:4 ~k:8 ~n:16);
    let k = !n in
    Ctx.destroy ctx;
    k
  in
  check_int "nvidia: fused" 1 (kernels Gpusim.Arch.a100);
  check_int "amd: gemm + bias" 2 (kernels Gpusim.Arch.mi300x)

let test_record_function_pairing () =
  Callbacks.clear_observers ();
  let ctx = mk_ctx () in
  let events = ref [] in
  Callbacks.add_op_observer "t" (fun ev ->
      events := (ev.Callbacks.op_name, ev.Callbacks.phase, ev.Callbacks.seq) :: !events);
  let x = Ops.new_tensor ctx [ 4 ] Dtype.F32 in
  let y = Ops.relu ctx x in
  Tensor.release x;
  Tensor.release y;
  (match List.rev !events with
  | [ ("aten::relu", `Begin, s1); ("aten::relu", `End, s2) ] ->
      check_int "matching seq" s1 s2
  | _ -> Alcotest.fail "expected one begin/end pair");
  Callbacks.clear_observers ();
  Ctx.destroy ctx

let test_bbm_and_softmax_shapes () =
  let ctx = mk_ctx () in
  let a = Ops.new_tensor ctx [ 8; 4 ] Dtype.F32 in
  let b = Ops.new_tensor ctx [ 4; 8 ] Dtype.F32 in
  let c = Ops.bmm ctx ~a ~b ~m:8 ~n:8 ~k:4 ~out_shape:[ 8; 8 ] in
  Alcotest.(check (list int)) "bmm out" [ 8; 8 ] (Tensor.shape c);
  let s = Ops.softmax ctx c in
  Alcotest.(check (list int)) "softmax out" [ 8; 8 ] (Tensor.shape s);
  List.iter Tensor.release [ a; b; c; s ];
  Ctx.destroy ctx

(* ---- Layers / models: lifetime discipline ---- *)

(* After any full iteration, the only live pool bytes must be parameters
   and lazily-created persistent workspaces: activation/gradient leaks
   show up here immediately. *)
let persistent_bytes ctx model =
  let ws =
    (match ctx.Ctx.cudnn_workspace with Some t -> Tensor.bytes t | None -> 0)
    + match ctx.Ctx.cublaslt_workspace with Some t -> Tensor.bytes t | None -> 0
  in
  Layer.param_bytes model.Model.root + ws

let rounded_up bytes = Pasta_util.Bytesize.align_up bytes ~align:512

let leak_check abbr mode =
  let ctx = mk_ctx () in
  let model = Runner.build ctx abbr in
  (match mode with
  | Runner.Inference -> Model.inference_iter ctx model
  | Runner.Train -> Model.train_iter ctx model);
  let live = Allocator.allocated_bytes ctx.Ctx.pool in
  let expected = persistent_bytes ctx model in
  (* Allow the 512-byte rounding per parameter tensor. *)
  let params = List.length (Layer.all_params model.Model.root) in
  let slack = 512 * (params + 4) in
  if live > rounded_up expected + slack then
    Alcotest.failf "%s %s leaked: %d live vs %d persistent (+%d slack)" abbr
      (Runner.mode_to_string mode) live expected slack;
  Ctx.destroy ctx

let test_leaks () =
  List.iter
    (fun abbr ->
      leak_check abbr Runner.Inference;
      leak_check abbr Runner.Train)
    Runner.all_abbrs

let test_param_counts () =
  let expect = [ ("AN", 61.0, 62.0); ("RN-18", 11.0, 12.0); ("RN-34", 21.0, 22.5);
                 ("BERT", 105.0, 115.0); ("GPT-2", 160.0, 170.0); ("Whisper", 270.0, 300.0) ]
  in
  let ctx = mk_ctx () in
  List.iter
    (fun (abbr, lo, hi) ->
      let m = Runner.build ctx abbr in
      let p = float_of_int (Model.param_count m) /. 1.0e6 in
      if p < lo || p > hi then
        Alcotest.failf "%s params %.1fM outside [%.1f, %.1f]" abbr p lo hi)
    expect;
  Ctx.destroy ctx

let test_forward_shapes () =
  let ctx = mk_ctx () in
  let m = Runner.build ctx "RN-18" in
  ctx.Ctx.training <- false;
  let logits = Model.forward ctx m in
  Alcotest.(check (list int)) "resnet logits" [ 32; 1000 ] (Tensor.shape logits);
  Tensor.release logits;
  Ctx.destroy ctx

let test_unbalanced_backward () =
  let ctx = mk_ctx () in
  let l = Layer.relu ctx in
  let g = Ops.new_tensor ctx [ 4 ] Dtype.F32 in
  Alcotest.check_raises "backward without forward"
    (Invalid_argument "ReLU: backward without matching forward") (fun () ->
      ignore (Layer.backward ctx l g));
  Ctx.destroy ctx

let test_residual_projection () =
  let ctx = mk_ctx () in
  ctx.Ctx.training <- true;
  let block =
    Layer.residual ~name:"proj"
      ~skip:[ Layer.conv2d ctx ~bias:false ~in_ch:4 ~out_ch:8 ~k:1 ~stride:2 ~pad:0 ~algo:`Cudnn () ]
      [
        Layer.conv2d ctx ~bias:false ~in_ch:4 ~out_ch:8 ~k:3 ~stride:2 ~pad:1 ~algo:`Cudnn ();
        Layer.batchnorm ctx ~features:8;
      ]
  in
  let x = Ops.new_tensor ctx [ 2; 4; 8; 8 ] Dtype.F32 in
  let y = Layer.forward ctx block x in
  Alcotest.(check (list int)) "downsampled" [ 2; 8; 4; 4 ] (Tensor.shape y);
  let gin = Layer.backward ctx block y in
  Tensor.release gin;
  let pairs = Layer.take_grad_pairs block in
  check_int "grads for both branches" 3 (List.length pairs);
  List.iter (fun (_, g) -> Tensor.release g) pairs;
  Ctx.destroy ctx

let test_frozen_subtree_grads () =
  let ctx = mk_ctx () in
  let l = Layer.linear ctx ~in_features:4 ~out_features:4 () in
  (* Forward in inference mode saves nothing; take_grad_pairs must treat
     the layer as frozen rather than erroring. *)
  ctx.Ctx.training <- false;
  let x = Ops.new_tensor ctx [ 2; 4 ] Dtype.F32 in
  let y = Layer.forward ctx l x in
  Tensor.release y;
  check_int "no pairs when frozen" 0 (List.length (Layer.take_grad_pairs l));
  Ctx.destroy ctx

let test_runner_validation () =
  let ctx = mk_ctx () in
  Alcotest.check_raises "unknown model" (Invalid_argument "Runner.build: unknown model nope")
    (fun () -> ignore (Runner.build ctx "nope"));
  let m = Runner.build ctx "AN" in
  Alcotest.check_raises "bad iters" (Invalid_argument "Runner.run: iters must be positive")
    (fun () -> Runner.run ctx m ~mode:Runner.Inference ~iters:0);
  List.iter
    (fun abbr ->
      check_bool "default iters positive" true
        (Runner.default_iters ~abbr ~mode:Runner.Inference > 0
        && Runner.default_iters ~abbr ~mode:Runner.Train > 0))
    Runner.all_abbrs;
  Ctx.destroy ctx

let test_training_memory_exceeds_inference () =
  let peak abbr mode =
    let ctx = mk_ctx () in
    let m = Runner.build ctx abbr in
    (match mode with
    | Runner.Inference -> Model.inference_iter ctx m
    | Runner.Train -> Model.train_iter ctx m);
    let p = Allocator.peak_allocated ctx.Ctx.pool in
    Ctx.destroy ctx;
    p
  in
  check_bool "training holds activations" true
    (peak "BERT" Runner.Train > peak "BERT" Runner.Inference)

let suite =
  [
    ("dtype sizes", `Quick, test_dtype_sizes);
    ("shape", `Quick, test_shape);
    ("callbacks observers", `Quick, test_callbacks_observers);
    ("callbacks seq", `Quick, test_callbacks_seq);
    ("allocator rounding", `Quick, test_alloc_rounding);
    ("allocator small pool segment", `Quick, test_alloc_small_pool_segment);
    ("allocator reuse", `Quick, test_alloc_reuse);
    ("allocator best fit", `Quick, test_alloc_best_fit);
    ("allocator double free", `Quick, test_alloc_double_free);
    ("allocator events", `Quick, test_alloc_events);
    ("allocator peaks", `Quick, test_alloc_peaks);
    ("allocator segment_of_addr", `Quick, test_alloc_segment_of_addr);
    qtest prop_alloc_invariants;
    ("tensor lifecycle", `Quick, test_tensor_lifecycle);
    ("tensor refcount", `Quick, test_tensor_refcount);
    ("tensor reshape", `Quick, test_tensor_reshape);
    ("conv out dims", `Quick, test_conv_out_dims);
    ("conv im2col kernels", `Quick, test_conv_im2col_kernels);
    ("conv cudnn benchmark search", `Quick, test_conv_cudnn_benchmark_search);
    ("linear vendor lowering", `Quick, test_linear_vendor_lowering);
    ("record_function pairing", `Quick, test_record_function_pairing);
    ("bmm/softmax shapes", `Quick, test_bbm_and_softmax_shapes);
    ("no activation leaks (all models, both modes)", `Slow, test_leaks);
    ("parameter counts realistic", `Quick, test_param_counts);
    ("forward shapes", `Quick, test_forward_shapes);
    ("unbalanced backward", `Quick, test_unbalanced_backward);
    ("residual projection", `Quick, test_residual_projection);
    ("frozen subtree grads", `Quick, test_frozen_subtree_grads);
    ("runner validation", `Quick, test_runner_validation);
    ("training memory exceeds inference", `Quick, test_training_memory_exceeds_inference);
  ]
