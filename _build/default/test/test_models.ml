(* Model-specific behaviour: shapes, structure and the lowering details
   the experiments rely on. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_ctx ?(arch = Gpusim.Arch.a100) f =
  let device = Gpusim.Device.create arch in
  let ctx = Dlfw.Ctx.create device in
  let r = f ctx device in
  Dlfw.Ctx.destroy ctx;
  r

let kernel_names ctx device f =
  let names = ref [] in
  Gpusim.Device.add_probe device
    {
      Gpusim.Device.probe_name = "names";
      on_event =
        (fun ev ->
          match ev with
          | Gpusim.Device.Launch_begin i ->
              names := i.Gpusim.Device.kernel.Gpusim.Kernel.name :: !names
          | _ -> ());
    };
  f ctx;
  List.rev !names

let test_all_models_logit_shapes () =
  with_ctx (fun ctx _ ->
      let expectations =
        [
          ("AN", [ 128; 1000 ]);
          ("RN-18", [ 32; 1000 ]);
          ("RN-34", [ 32; 1000 ]);
          ("BERT", [ 16; 2 ]);
        ]
      in
      ctx.Dlfw.Ctx.training <- false;
      List.iter
        (fun (abbr, expected) ->
          let m = Dlfw.Runner.build ctx abbr in
          let logits = Dlfw.Model.forward ctx m in
          Alcotest.(check (list int)) (abbr ^ " logits") expected (Dlfw.Tensor.shape logits);
          Dlfw.Tensor.release logits)
        expectations)

let test_gpt2_logits_vocab () =
  with_ctx (fun ctx _ ->
      ctx.Dlfw.Ctx.training <- false;
      let m = Dlfw.Gpt2.build ~batch:2 ~seq:64 ~layers:2 ctx in
      let logits = Dlfw.Model.forward ctx m in
      Alcotest.(check (list int)) "vocab-wide logits" [ 2 * 64; 50257 ]
        (Dlfw.Tensor.shape logits);
      Dlfw.Tensor.release logits)

let test_alexnet_im2col_dominates () =
  with_ctx (fun ctx device ->
      let names =
        kernel_names ctx device (fun ctx ->
            let m = Dlfw.Alexnet.build ~batch:8 ctx in
            Dlfw.Model.inference_iter ctx m)
      in
      let im2col =
        List.length (List.filter (fun n -> n = "at::native::im2col_kernel") names)
      in
      (* One im2col launch per image per conv: 5 convs x batch 8. *)
      check_int "per-image im2col launches" 40 im2col)

let test_resnet_uses_cudnn_path () =
  with_ctx (fun ctx device ->
      let names =
        kernel_names ctx device (fun ctx ->
            let m = Dlfw.Resnet.build18 ctx in
            Dlfw.Model.inference_iter ctx m)
      in
      check_bool "implicit gemm kernels" true
        (List.exists (fun n -> Astring_contains.contains n "implicit_gemm") names);
      check_bool "no im2col on the cudnn path" false
        (List.exists (fun n -> n = "at::native::im2col_kernel") names);
      (* Benchmark search: exactly one workspace transform per conv layer
         across all iterations (20 convs in ResNet-18). *)
      check_int "one algorithm search per conv" 20
        (List.length (List.filter (fun n -> Astring_contains.contains n "nchwToNhwc") names)))

let test_resnet34_deeper_than_18 () =
  let launches abbr =
    with_ctx (fun ctx device ->
        let m = Dlfw.Runner.build ctx abbr in
        Dlfw.Model.inference_iter ctx m;
        Gpusim.Device.launches device)
  in
  check_bool "34 launches more kernels than 18" true (launches "RN-34" > launches "RN-18")

let test_whisper_frozen_encoder () =
  with_ctx (fun ctx _ ->
      let m = Dlfw.Whisper.build ~batch:2 ctx in
      ctx.Dlfw.Ctx.training <- true;
      let logits = Dlfw.Layer.forward ctx m.Dlfw.Model.root (m.Dlfw.Model.make_input ctx) in
      let g = Dlfw.Ops.cross_entropy_bwd ctx ~logits in
      Dlfw.Tensor.release logits;
      let gin = Dlfw.Layer.backward ctx m.Dlfw.Model.root g in
      Dlfw.Tensor.release gin;
      let pairs = Dlfw.Layer.take_grad_pairs m.Dlfw.Model.root in
      let n_params = List.length (Dlfw.Layer.all_params m.Dlfw.Model.root) in
      let n_grads = List.length pairs in
      check_bool "encoder contributed no grads" true (n_grads < n_params);
      check_bool "decoder still trains" true (n_grads > 30);
      List.iter (fun (_, g) -> Dlfw.Tensor.release g) pairs)

let test_bert_small_classifier_kernels () =
  with_ctx (fun ctx device ->
      let names =
        kernel_names ctx device (fun ctx ->
            let m = Dlfw.Bert.build ~batch:4 ~seq:64 ~layers:1 ctx in
            Dlfw.Model.inference_iter ctx m)
      in
      check_bool "CLS selection kernel present" true
        (List.exists (fun n -> Astring_contains.contains n "index_select") names))

let test_amd_lowering_more_kernels () =
  (* The HIP backend decomposes fused ops: same model, more launches. *)
  let launches arch =
    with_ctx ~arch (fun ctx device ->
        let m = Dlfw.Gpt2.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx in
        Dlfw.Model.inference_iter ctx m;
        Gpusim.Device.launches device)
  in
  check_bool "amd launches more kernels" true
    (launches Gpusim.Arch.mi300x > launches Gpusim.Arch.a100)

let test_training_kernel_multiple () =
  (* Backward + optimizer roughly triples the launch count. *)
  let launches mode =
    with_ctx (fun ctx device ->
        let m = Dlfw.Bert.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx in
        (match mode with
        | `Inf -> Dlfw.Model.inference_iter ctx m
        | `Train -> Dlfw.Model.train_iter ctx m);
        Gpusim.Device.launches device)
  in
  let inf = launches `Inf and train = launches `Train in
  check_bool "training at least doubles launches" true (train >= 2 * inf)

let suite =
  [
    ("logit shapes", `Quick, test_all_models_logit_shapes);
    ("gpt2 vocab logits", `Quick, test_gpt2_logits_vocab);
    ("alexnet im2col per image", `Quick, test_alexnet_im2col_dominates);
    ("resnet cudnn path", `Quick, test_resnet_uses_cudnn_path);
    ("resnet34 deeper", `Quick, test_resnet34_deeper_than_18);
    ("whisper frozen encoder", `Quick, test_whisper_frozen_encoder);
    ("bert classifier kernels", `Quick, test_bert_small_classifier_kernels);
    ("amd lowering decomposes", `Quick, test_amd_lowering_more_kernels);
    ("training kernel multiple", `Quick, test_training_kernel_multiple);
  ]
