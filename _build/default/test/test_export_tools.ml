(* Operator-summary attribution and Chrome-trace export. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_model ctx = Dlfw.Gpt2.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx

let run_with tool f =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let (), result = Pasta.Session.run ~tool device (fun () -> f ctx) in
  Dlfw.Ctx.destroy ctx;
  result

(* ---- Op_summary ---- *)

let test_op_summary_attribution () =
  let s = Pasta_tools.Op_summary.create () in
  let result =
    run_with (Pasta_tools.Op_summary.tool s) (fun ctx ->
        Dlfw.Model.inference_iter ctx (small_model ctx))
  in
  let rows = Pasta_tools.Op_summary.rows s in
  check_bool "operators attributed" true (List.length rows > 3);
  (* Every kernel is accounted for: attributed + unattributed = total. *)
  let attributed = List.fold_left (fun acc r -> acc + r.Pasta_tools.Op_summary.kernels) 0 rows in
  check_int "kernel accounting closes" result.Pasta.Session.kernels
    (attributed + Pasta_tools.Op_summary.unattributed_kernels s);
  (* GEMMs dominate a transformer: addmm must be the top operator. *)
  (match rows with
  | top :: _ ->
      check_bool "addmm dominates" true
        (Astring_contains.contains top.Pasta_tools.Op_summary.op_name "addmm"
        || Astring_contains.contains top.Pasta_tools.Op_summary.op_name "bmm")
  | [] -> Alcotest.fail "no rows");
  check_bool "gpu time positive" true (Pasta_tools.Op_summary.total_gpu_time_us s > 0.0);
  let report = Format.asprintf "%t" (Pasta_tools.Op_summary.report s) in
  check_bool "report renders" true (Astring_contains.contains report "GPU time")

let test_op_summary_nested_ops () =
  (* conv lowers through nested record scopes; attribution goes to the
     innermost open operator and the stack unwinds cleanly. *)
  let s = Pasta_tools.Op_summary.create () in
  let _ =
    run_with (Pasta_tools.Op_summary.tool s) (fun ctx ->
        let m = Dlfw.Resnet.build18 ctx in
        Dlfw.Model.inference_iter ctx m)
  in
  check_int "no kernels leak outside operators" 0
    (Pasta_tools.Op_summary.unattributed_kernels s)

(* ---- Trace_export ---- *)

let test_trace_export_structure () =
  let tx = Pasta.Trace_export.create () in
  let result =
    run_with (Pasta.Trace_export.tool tx) (fun ctx ->
        Dlfw.Model.inference_iter ctx (small_model ctx))
  in
  check_bool "events materialized" true (Pasta.Trace_export.event_count tx > 50);
  let json = Pasta.Trace_export.to_json tx in
  check_bool "object wrapper" true
    (String.length json > 2 && json.[0] = '{' && json.[String.length json - 1] = '}');
  check_bool "has traceEvents" true (Astring_contains.contains json "\"traceEvents\":[");
  check_bool "has duration events" true (Astring_contains.contains json "\"ph\":\"X\"");
  check_bool "has counter track" true (Astring_contains.contains json "\"ph\":\"C\"");
  check_bool "kernel names present" true (Astring_contains.contains json "xla::" = false);
  check_bool "operator names present" true (Astring_contains.contains json "aten::");
  (* One duration event per kernel. *)
  let count_occurrences needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i acc =
      if i + n > h then acc
      else if String.sub hay i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check_bool "at least one X event per kernel" true
    (count_occurrences {|"cat":"kernel"|} json >= result.Pasta.Session.kernels)

let test_trace_export_escaping () =
  let tx = Pasta.Trace_export.create () in
  Pasta.Trace_export.record tx
    {
      Pasta.Event.device = 0;
      time_us = 1.0;
      payload = Pasta.Event.Annotation { label = "quo\"te\\back"; phase = `Start };
    };
  let json = Pasta.Trace_export.to_json tx in
  check_bool "quotes escaped" true (Astring_contains.contains json {|quo\"te\\back|})

let test_trace_export_file () =
  let tx = Pasta.Trace_export.create () in
  let _ =
    run_with (Pasta.Trace_export.tool tx) (fun ctx ->
        Dlfw.Model.inference_iter ctx (small_model ctx))
  in
  let path = Filename.temp_file "pasta_trace" ".json" in
  Pasta.Trace_export.write_file tx path;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  check_int "file holds the json" (String.length (Pasta.Trace_export.to_json tx)) len

let test_trace_export_unbalanced () =
  let tx = Pasta.Trace_export.create () in
  (* An end without a begin is dropped, not crashed on. *)
  Pasta.Trace_export.record tx
    {
      Pasta.Event.device = 0;
      time_us = 5.0;
      payload = Pasta.Event.Operator { name = "aten::orphan"; phase = `Exit; seq = 99 };
    };
  check_int "orphan end dropped" 0 (Pasta.Trace_export.event_count tx)

let suite =
  [
    ("op_summary attribution", `Quick, test_op_summary_attribution);
    ("op_summary nested operators", `Quick, test_op_summary_nested_ops);
    ("trace export structure", `Quick, test_trace_export_structure);
    ("trace export escaping", `Quick, test_trace_export_escaping);
    ("trace export file", `Quick, test_trace_export_file);
    ("trace export unbalanced", `Quick, test_trace_export_unbalanced);
  ]

(* ---- Transfer ---- *)

let test_transfer_tool () =
  let t = Pasta_tools.Transfer.create () in
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let (), _ =
    Pasta.Session.run ~tool:(Pasta_tools.Transfer.tool t) device (fun () ->
        Gpusim.Device.memcpy device ~dst:0 ~src:0 ~bytes:1000
          ~kind:Gpusim.Device.Host_to_device ();
        Gpusim.Device.memcpy device ~dst:0 ~src:0 ~bytes:2000
          ~kind:Gpusim.Device.Host_to_device ();
        Gpusim.Device.memcpy device ~dst:0 ~src:0 ~bytes:1000
          ~kind:Gpusim.Device.Device_to_host ();
        Gpusim.Device.memcpy device ~dst:0 ~src:0 ~bytes:5000
          ~kind:Gpusim.Device.Device_to_device ())
  in
  check_int "count" 4 (Pasta_tools.Transfer.total_count t);
  check_int "bytes" 9000 (Pasta_tools.Transfer.total_bytes t);
  check_int "h2d" 3000 (Pasta_tools.Transfer.h2d_bytes t);
  check_int "d2h" 1000 (Pasta_tools.Transfer.d2h_bytes t);
  Alcotest.(check (float 1e-9)) "imbalance" 0.75 (Pasta_tools.Transfer.imbalance t);
  (match Pasta_tools.Transfer.rows t with
  | top :: _ -> check_int "largest direction first" 5000 top.Pasta_tools.Transfer.bytes
  | [] -> Alcotest.fail "no rows");
  let report = Format.asprintf "%t" (Pasta_tools.Transfer.report t) in
  check_bool "report" true (Astring_contains.contains report "copies")

let test_transfer_empty () =
  let t = Pasta_tools.Transfer.create () in
  Alcotest.(check (float 0.0)) "imbalance zero" 0.0 (Pasta_tools.Transfer.imbalance t);
  let report = Format.asprintf "%t" (Pasta_tools.Transfer.report t) in
  check_bool "empty report" true (Astring_contains.contains report "no copies")

let suite =
  suite
  @ [
      ("transfer tool", `Quick, test_transfer_tool);
      ("transfer empty", `Quick, test_transfer_empty);
    ]

(* ---- Underutilized ---- *)

let test_underutilized () =
  let u = Pasta_tools.Underutilized.create () in
  let result =
    run_with (Pasta_tools.Underutilized.tool u) (fun ctx ->
        Dlfw.Model.inference_iter ctx (small_model ctx))
  in
  ignore result;
  check_bool "tensors observed" true (Pasta_tools.Underutilized.rows u <> []);
  check_bool "fraction in [0,1]" true
    (Pasta_tools.Underutilized.cold_fraction u >= 0.0
    && Pasta_tools.Underutilized.cold_fraction u <= 1.0);
  (* The persistent cuBLASLt workspace is passed to GEMMs but never
     dereferenced: the tool must surface it as cold. *)
  (match Pasta_tools.Underutilized.rows u with
  | coldest :: _ ->
      check_bool "workspace is the coldest object" true
        (Astring_contains.contains coldest.Pasta_tools.Underutilized.tag "workspace");
      check_int "never accessed" 0 coldest.Pasta_tools.Underutilized.accesses
  | [] -> Alcotest.fail "no rows");
  check_bool "cold bytes below total" true
    (Pasta_tools.Underutilized.cold_bytes u
    < Pasta_tools.Underutilized.allocated_bytes_total u);
  let report = Format.asprintf "%t" (Pasta_tools.Underutilized.report u) in
  check_bool "report renders" true (Astring_contains.contains report "offloading")

let test_underutilized_threshold () =
  let u = Pasta_tools.Underutilized.create ~cold_threshold:1000 () in
  let _ =
    run_with (Pasta_tools.Underutilized.tool u) (fun ctx ->
        Dlfw.Model.inference_iter ctx (small_model ctx))
  in
  let u0 = Pasta_tools.Underutilized.create () in
  let _ =
    run_with (Pasta_tools.Underutilized.tool u0) (fun ctx ->
        Dlfw.Model.inference_iter ctx (small_model ctx))
  in
  check_bool "higher threshold marks more bytes cold" true
    (Pasta_tools.Underutilized.cold_bytes u >= Pasta_tools.Underutilized.cold_bytes u0)

let suite =
  suite
  @ [
      ("underutilized", `Quick, test_underutilized);
      ("underutilized threshold", `Quick, test_underutilized_threshold);
    ]
