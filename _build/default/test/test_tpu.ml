(* TPU generalization tests (paper §III-G): the XProf substrate, its
   normalization, and a full PASTA session against the Google backend. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let tpu () = Gpusim.Device.create Gpusim.Arch.tpu_v4

let test_arch () =
  check_string "vendor" "Google" (Gpusim.Arch.vendor_to_string Gpusim.Arch.tpu_v4.Gpusim.Arch.vendor);
  check_bool "listed" true (List.mem Gpusim.Arch.tpu_v4 Gpusim.Arch.all);
  check_bool "analysis lanes defined" true (Gpusim.Arch.analysis_lanes Gpusim.Arch.tpu_v4 > 0)

let test_api_names () =
  let d = tpu () in
  check_string "tpu api prefix" "TpuExecutor_Malloc" (Gpusim.Device.api_name d "Malloc");
  check_string "canonical strips it" "Malloc"
    (Pasta.Normalize.canonical_api "TpuExecutor_Malloc")

let test_xprof_vendor_check () =
  let nv = Gpusim.Device.create Gpusim.Arch.a100 in
  Alcotest.check_raises "cuda rejected" (Invalid_argument "Xprof.attach: not a Google TPU")
    (fun () -> ignore (Vendor.Xprof.attach nv))

let test_xprof_records () =
  let d = tpu () in
  let x = Vendor.Xprof.attach d in
  let records = ref [] in
  Vendor.Xprof.configure_callback x (fun r -> records := r :: !records);
  let a = Gpusim.Device.malloc d 4096 in
  Gpusim.Device.memcpy d ~dst:a.Gpusim.Device_mem.base ~src:0 ~bytes:4096
    ~kind:Gpusim.Device.Host_to_device ();
  let k =
    Gpusim.Kernel.make ~name:"xla::dot" ~grid:(Gpusim.Dim3.make 1)
      ~block:(Gpusim.Dim3.make 128)
      ~regions:
        [ Gpusim.Kernel.region ~base:a.Gpusim.Device_mem.base ~bytes:4096 ~accesses:64 () ]
      ~flops:1.0e8 ()
  in
  ignore (Gpusim.Device.launch d k);
  Gpusim.Device.free d a.Gpusim.Device_mem.base;
  let tags =
    List.rev_map
      (function
        | Vendor.Xprof.Buffer_allocate _ -> "alloc"
        | Buffer_deallocate _ -> "free"
        | Infeed _ -> "infeed"
        | Outfeed _ -> "outfeed"
        | Program_execute { phase = `Begin; _ } -> "pb"
        | Program_execute { phase = `End; _ } -> "pe"
        | Step_marker -> "step"
        | Systolic_array_active _ -> "mxu")
      !records
  in
  Alcotest.(check (list string)) "record planes"
    [ "alloc"; "infeed"; "pb"; "mxu"; "pe"; "free" ]
    tags

let test_xprof_normalization () =
  (* Vendor-unique systolic activity must normalize to nothing. *)
  check_int "systolic dropped" 0
    (List.length (Pasta.Normalize.of_xprof (Vendor.Xprof.Systolic_array_active { cycles = 10 })));
  (match Pasta.Normalize.of_xprof (Vendor.Xprof.Infeed { bytes = 42 }) with
  | [ Pasta.Event.Memory_copy { bytes = 42; direction = `H2d; _ } ] -> ()
  | _ -> Alcotest.fail "infeed should be an H2D copy");
  (match Pasta.Normalize.of_xprof (Vendor.Xprof.Outfeed { bytes = 7 }) with
  | [ Pasta.Event.Memory_copy { direction = `D2h; _ } ] -> ()
  | _ -> Alcotest.fail "outfeed should be a D2H copy");
  match Pasta.Normalize.of_xprof Vendor.Xprof.Step_marker with
  | [ Pasta.Event.Synchronization _ ] -> ()
  | _ -> Alcotest.fail "step marker should be a synchronization"

let test_tpu_session_end_to_end () =
  let d = tpu () in
  check_bool "default backend is xprof" true
    (Pasta.Backend.default_kind_for d = Pasta.Backend.Xprof);
  let ctx = Dlfw.Ctx.create d in
  let kf = Pasta_tools.Kernel_freq.create () in
  let (), result =
    Pasta.Session.run ~tool:(Pasta_tools.Kernel_freq.tool kf) d (fun () ->
        let m = Dlfw.Gpt2.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx in
        Dlfw.Model.inference_iter ctx m)
  in
  check_bool "programs observed" true (result.Pasta.Session.kernels > 10);
  check_bool "xla-flavoured names" true
    (List.exists
       (fun (name, _) -> Astring_contains.contains name "xla::")
       (Pasta_tools.Kernel_freq.top kf 20));
  Dlfw.Ctx.destroy ctx

let test_tpu_no_fine_grained () =
  let d = tpu () in
  let proc = Pasta.Processor.create ~device:(Gpusim.Device.id d) () in
  let b = Pasta.Backend.attach Pasta.Backend.Xprof d ~processor:proc in
  Alcotest.check_raises "no fine-grained on TPUs"
    (Invalid_argument "Backend: TPUs expose no fine-grained instrumentation") (fun () ->
      Pasta.Backend.enable_fine_grained b Pasta.Tool.Gpu_accelerated);
  Pasta.Backend.detach b

let test_tpu_mem_timeline () =
  (* The memory-timeline tool works unchanged on the third vendor. *)
  let d = tpu () in
  let ctx = Dlfw.Ctx.create d in
  let mt = Pasta_tools.Mem_timeline.create () in
  let (), _ =
    Pasta.Session.run ~tool:(Pasta_tools.Mem_timeline.tool mt) d (fun () ->
        let m = Dlfw.Gpt2.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx in
        Dlfw.Model.train_iter ctx m)
  in
  check_bool "allocs seen" true (Pasta_tools.Mem_timeline.alloc_events mt > 10);
  check_bool "peak positive" true (Pasta_tools.Mem_timeline.peak_bytes mt > 0.0);
  Dlfw.Ctx.destroy ctx

let suite =
  [
    ("tpu arch", `Quick, test_arch);
    ("tpu api names", `Quick, test_api_names);
    ("xprof vendor check", `Quick, test_xprof_vendor_check);
    ("xprof records", `Quick, test_xprof_records);
    ("xprof normalization", `Quick, test_xprof_normalization);
    ("tpu session end-to-end", `Quick, test_tpu_session_end_to_end);
    ("tpu no fine-grained", `Quick, test_tpu_no_fine_grained);
    ("tpu mem_timeline", `Quick, test_tpu_mem_timeline);
  ]
