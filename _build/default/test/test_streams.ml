(* Asynchronous stream semantics: overlap, synchronization joins, and the
   serialize-under-instrumentation rule. *)

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

module D = Gpusim.Device

let big_kernel device =
  let a = D.malloc device (64 * 1024 * 1024) in
  Gpusim.Kernel.make ~name:"async_k" ~grid:(Gpusim.Dim3.make 256)
    ~block:(Gpusim.Dim3.make 256)
    ~regions:
      [
        Gpusim.Kernel.region ~base:a.Gpusim.Device_mem.base
          ~bytes:(64 * 1024 * 1024)
          ~accesses:(16 * 1024 * 1024) ();
      ]
    ~flops:1.0e10 ()

let test_async_host_does_not_wait () =
  let device = D.create Gpusim.Arch.a100 in
  let k = big_kernel device in
  let t0 = D.now_us device in
  let stats = D.launch_async device ~stream:1 k in
  let submit_elapsed = D.now_us device -. t0 in
  check_bool "host returns before the kernel finishes" true
    (submit_elapsed < stats.D.duration_us);
  check_bool "stream holds the pending work" true
    (D.stream_busy_until device 1 > D.now_us device);
  D.stream_synchronize device 1;
  check_bool "sync waits for completion" true
    (D.now_us device >= t0 +. stats.D.duration_us)

let test_overlap_two_streams () =
  (* Two independent kernels: concurrent on two streams, serialized on
     one.  The two-stream run must be faster and close to max() rather
     than sum(). *)
  let run ~streams =
    let device = D.create Gpusim.Arch.a100 in
    let k1 = big_kernel device and k2 = big_kernel device in
    let s1, s2 = match streams with `Two -> (1, 2) | `One -> (1, 1) in
    let st1 = D.launch_async device ~stream:s1 k1 in
    let st2 = D.launch_async device ~stream:s2 k2 in
    D.synchronize device;
    (D.now_us device, st1.D.duration_us, st2.D.duration_us)
  in
  let t_two, d1, d2 = run ~streams:`Two in
  let t_one, _, _ = run ~streams:`One in
  check_bool "two streams overlap" true (t_two < t_one);
  check_bool "serialized ~ sum of durations" true (t_one >= d1 +. d2);
  check_bool "concurrent ~ max of durations" true (t_two < d1 +. d2)

let test_copy_compute_overlap () =
  let run ~overlap =
    let device = D.create Gpusim.Arch.a100 in
    let k = big_kernel device in
    let copy_stream = if overlap then 2 else 1 in
    D.memcpy_async device ~dst:0 ~src:0 ~bytes:(256 * 1024 * 1024)
      ~kind:D.Host_to_device ~stream:copy_stream;
    ignore (D.launch_async device ~stream:1 k);
    D.synchronize device;
    D.now_us device
  in
  check_bool "copy overlaps compute on a second stream" true
    (run ~overlap:true < run ~overlap:false)

let test_same_stream_serializes () =
  let device = D.create Gpusim.Arch.a100 in
  let k = big_kernel device in
  let s1 = D.launch_async device ~stream:3 k in
  let s2 = D.launch_async device ~stream:3 k in
  D.stream_synchronize device 3;
  check_bool "same-stream work is sequential" true
    (D.now_us device >= s1.D.duration_us +. s2.D.duration_us)

let test_sync_idempotent () =
  let device = D.create Gpusim.Arch.a100 in
  let k = big_kernel device in
  ignore (D.launch_async device ~stream:1 k);
  D.synchronize device;
  let t = D.now_us device in
  D.synchronize device;
  check_float "second sync only pays the call cost" (t +. 3.0) (D.now_us device)

let test_instrumented_degrades_to_sync () =
  let device = D.create Gpusim.Arch.a100 in
  let s = Vendor.Sanitizer.attach device in
  let regions = ref 0 in
  Vendor.Sanitizer.patch_module s
    (Vendor.Sanitizer.Device_analysis
       {
         map_bytes = (fun () -> 64);
         device_fn = (fun _ _ -> incr regions);
         on_kernel_complete = (fun _ _ -> ());
       });
  let k = big_kernel device in
  let t0 = D.now_us device in
  let stats = D.launch_async device ~stream:1 k in
  (* With an instrument installed, the launch blocks and the instrument
     observes the kernel. *)
  check_bool "blocked for the full duration" true
    (D.now_us device -. t0 >= stats.D.duration_us);
  Alcotest.(check int) "instrument saw the region" 1 !regions

let test_async_events_still_fire () =
  let device = D.create Gpusim.Arch.a100 in
  let launches = ref 0 and copies = ref 0 in
  D.add_probe device
    {
      D.probe_name = "p";
      on_event =
        (fun ev ->
          match ev with
          | D.Launch_end _ -> incr launches
          | D.Memcpy _ -> incr copies
          | _ -> ());
    };
  let k = big_kernel device in
  ignore (D.launch_async device ~stream:1 k);
  D.memcpy_async device ~dst:0 ~src:0 ~bytes:1024 ~kind:D.Device_to_host ~stream:2;
  Alcotest.(check int) "launch event" 1 !launches;
  Alcotest.(check int) "copy event" 1 !copies

let suite =
  [
    ("async host does not wait", `Quick, test_async_host_does_not_wait);
    ("two streams overlap", `Quick, test_overlap_two_streams);
    ("copy-compute overlap", `Quick, test_copy_compute_overlap);
    ("same stream serializes", `Quick, test_same_stream_serializes);
    ("sync idempotent", `Quick, test_sync_idempotent);
    ("instrumented degrades to sync", `Quick, test_instrumented_degrades_to_sync);
    ("async events still fire", `Quick, test_async_events_still_fire);
  ]
