(* Multi-GPU parallel-training tests with a reduced-size GPT-2 config so
   the strategies stay fast; the Fig. 15 semantics (identical DP, halved
   TP, asymmetric PP) must hold at any scale. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tiny_cfg =
  { Megatron.Shard.layers = 4; dim = 128; heads = 8; seq = 64; vocab = 2048; batch = 2 }

(* ---- Comm ---- *)

let mk_two_ctxs () =
  let d0 = Gpusim.Device.create ~id:0 Gpusim.Arch.a100 in
  let d1 = Gpusim.Device.create ~id:1 Gpusim.Arch.a100 in
  (Dlfw.Ctx.create d0, Dlfw.Ctx.create d1)

let test_comm_needs_two () =
  let ctx0, _ = mk_two_ctxs () in
  Alcotest.check_raises "one rank" (Invalid_argument "Comm.create: need at least two ranks")
    (fun () -> ignore (Megatron.Comm.create [ ctx0 ] ~buffer_bytes:4096))

let test_comm_all_reduce_synchronizes () =
  let ctx0, ctx1 = mk_two_ctxs () in
  let comm = Megatron.Comm.create [ ctx0; ctx1 ] ~buffer_bytes:(1 lsl 20) in
  check_int "ranks" 2 (Megatron.Comm.ranks comm);
  (* Skew the clocks, then all-reduce: both must land on the same time. *)
  Gpusim.Clock.advance_us (Gpusim.Device.clock ctx0.Dlfw.Ctx.device) 1000.0;
  Megatron.Comm.all_reduce comm ~bytes:(1 lsl 20);
  Alcotest.(check (float 1e-6)) "clocks synchronized"
    (Gpusim.Device.now_us ctx0.Dlfw.Ctx.device)
    (Gpusim.Device.now_us ctx1.Dlfw.Ctx.device);
  Megatron.Comm.destroy comm

let test_comm_local_reduce_is_local () =
  let ctx0, ctx1 = mk_two_ctxs () in
  let comm = Megatron.Comm.create [ ctx0; ctx1 ] ~buffer_bytes:(1 lsl 20) in
  let t1 = Gpusim.Device.now_us ctx1.Dlfw.Ctx.device in
  Megatron.Comm.local_reduce comm ~rank:0 ~bytes:(1 lsl 20);
  check_bool "rank 0 charged" true (Gpusim.Device.now_us ctx0.Dlfw.Ctx.device > 0.0);
  Alcotest.(check (float 0.0)) "rank 1 untouched" t1
    (Gpusim.Device.now_us ctx1.Dlfw.Ctx.device);
  Megatron.Comm.destroy comm

(* ---- Shard ---- *)

let test_shard_validation () =
  let ctx0, _ = mk_two_ctxs () in
  Alcotest.check_raises "shard must divide heads"
    (Invalid_argument "Shard.tp_attention: shard must divide heads") (fun () ->
      ignore
        (Megatron.Shard.tp_block ctx0 { tiny_cfg with Megatron.Shard.heads = 3 }
           ~shard:2 ~comm:(fun ~bytes -> ignore bytes)))

let test_shard_tp_params_halved () =
  let ctx0, ctx1 = mk_two_ctxs () in
  let full = Megatron.Shard.build_full_model ctx0 tiny_cfg in
  let tp =
    Megatron.Shard.build_tp_model ctx1 tiny_cfg ~shard:2 ~comm:(fun ~bytes -> ignore bytes)
  in
  let fp = Dlfw.Model.param_count full and tp_p = Dlfw.Model.param_count tp in
  check_bool "tp shard holds roughly half the parameters" true
    (float_of_int tp_p < 0.7 *. float_of_int fp)

let test_shard_wider_tp () =
  (* Sharding 4 ways shrinks the replica further than sharding 2 ways. *)
  let params shard =
    let ctx, _ = mk_two_ctxs () in
    let m =
      Megatron.Shard.build_tp_model ctx
        { tiny_cfg with Megatron.Shard.heads = 8 }
        ~shard ~comm:(fun ~bytes -> ignore bytes)
    in
    Dlfw.Model.param_count m
  in
  check_bool "4-way < 2-way" true (params 4 < params 2)

let test_shard_pp_split () =
  let ctx0, ctx1 = mk_two_ctxs () in
  let s0, s1 = Megatron.Shard.build_pp_stages ctx0 ctx1 tiny_cfg in
  check_bool "both stages have params" true
    (Dlfw.Layer.param_bytes s0 > 0 && Dlfw.Layer.param_bytes s1 > 0);
  (* Stage 0 holds the embedding, stage 1 the LM head: both vocab-sized. *)
  check_bool "stage1 holds the head" true
    (List.exists
       (fun p -> Dlfw.Tensor.numel p >= tiny_cfg.Megatron.Shard.vocab * tiny_cfg.Megatron.Shard.dim)
       (Dlfw.Layer.all_params s1))

(* ---- Trainer ---- *)

let run strategy = Megatron.Trainer.run_iteration ~cfg:tiny_cfg strategy

let test_trainer_dp_symmetric () =
  let r = run Megatron.Trainer.DP in
  match (r.Megatron.Trainer.peaks_mb, r.Megatron.Trainer.kernels) with
  | [ (0, p0); (1, p1) ], [ (_, k0); (_, k1) ] ->
      Alcotest.(check (float 0.001)) "identical peaks" p0 p1;
      check_int "identical kernel counts" k0 k1;
      check_bool "ran kernels" true (k0 > 0)
  | _ -> Alcotest.fail "expected two GPUs"

let test_trainer_tp_halves_peak () =
  let dp = run Megatron.Trainer.DP in
  let tp = run Megatron.Trainer.TP in
  let peak r = List.assoc 0 r.Megatron.Trainer.peaks_mb in
  check_bool "tp peak well below dp peak" true (peak tp < 0.75 *. peak dp);
  match tp.Megatron.Trainer.peaks_mb with
  | [ (_, p0); (_, p1) ] -> Alcotest.(check (float 0.001)) "tp symmetric" p0 p1
  | _ -> Alcotest.fail "expected two GPUs"

let test_trainer_pp_asymmetric () =
  let r = run Megatron.Trainer.PP in
  match r.Megatron.Trainer.peaks_mb with
  | [ (0, p0); (1, p1) ] ->
      check_bool "stages differ" true (Float.abs (p0 -. p1) > 1.0);
      check_bool "logits stage heavier" true (p1 > p0)
  | _ -> Alcotest.fail "expected two GPUs"

let test_multinode_dp () =
  let r =
    Megatron.Trainer.run_multinode_dp ~cfg:tiny_cfg ~nodes:2 ~gpus_per_node:2 ()
  in
  check_int "four ranks profiled" 4 (List.length r.Megatron.Trainer.per_rank);
  (* Ranks 0-1 on node 0, ranks 2-3 on node 1. *)
  List.iter
    (fun (node, rank, _) -> check_int "node mapping" (rank / 2) node)
    r.Megatron.Trainer.per_rank;
  (* DP replicas: every rank's memory curve peaks identically. *)
  let peaks =
    List.map (fun (_, _, tl) -> Pasta_tools.Mem_timeline.peak_bytes tl) r.Megatron.Trainer.per_rank
  in
  List.iter (fun p -> Alcotest.(check (float 0.001)) "identical peaks" (List.hd peaks) p) peaks;
  check_bool "inter-node ring slower than single-node" true
    (r.Megatron.Trainer.internode_elapsed_us > r.Megatron.Trainer.intranode_elapsed_us)

let test_multinode_validation () =
  Alcotest.check_raises "one rank"
    (Invalid_argument "Trainer.run_multinode_dp: need at least two ranks") (fun () ->
      ignore (Megatron.Trainer.run_multinode_dp ~cfg:tiny_cfg ~nodes:1 ~gpus_per_node:1 ()))

let test_trainer_timelines_populated () =
  let r = run Megatron.Trainer.DP in
  List.iter
    (fun (_, mt) ->
      check_bool "timeline non-empty" true
        (not (Pasta_util.Timeline.is_empty (Pasta_tools.Mem_timeline.timeline mt))))
    r.Megatron.Trainer.timelines;
  check_bool "elapsed positive" true (r.Megatron.Trainer.elapsed_us > 0.0)

let suite =
  [
    ("comm needs two ranks", `Quick, test_comm_needs_two);
    ("comm all_reduce synchronizes", `Quick, test_comm_all_reduce_synchronizes);
    ("comm local_reduce is local", `Quick, test_comm_local_reduce_is_local);
    ("shard validation", `Quick, test_shard_validation);
    ("shard tp params halved", `Quick, test_shard_tp_params_halved);
    ("shard wider tp", `Quick, test_shard_wider_tp);
    ("shard pp split", `Quick, test_shard_pp_split);
    ("trainer DP symmetric", `Quick, test_trainer_dp_symmetric);
    ("trainer TP halves peak", `Quick, test_trainer_tp_halves_peak);
    ("trainer PP asymmetric", `Quick, test_trainer_pp_asymmetric);
    ("multi-node DP", `Quick, test_multinode_dp);
    ("multi-node validation", `Quick, test_multinode_validation);
    ("trainer timelines populated", `Quick, test_trainer_timelines_populated);
  ]
