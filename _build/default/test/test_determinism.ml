(* End-to-end determinism: the whole stack — simulator, framework, PASTA,
   tools, trace export — must produce bit-identical results across runs.
   Every experiment in EXPERIMENTS.md depends on this property. *)

let check_bool = Alcotest.(check bool)

let profiled_run () =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let kf = Pasta_tools.Kernel_freq.create () in
  let tx = Pasta.Trace_export.create () in
  let trace_session = Pasta.Session.attach ~tool:(Pasta.Trace_export.tool tx) device in
  let (), result =
    Pasta.Session.run ~tool:(Pasta_tools.Kernel_freq.tool kf) device (fun () ->
        let m = Dlfw.Bert.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx in
        Dlfw.Model.inference_iter ctx m;
        Dlfw.Model.train_iter ctx m)
  in
  let _ = Pasta.Session.detach trace_session in
  let elapsed = Gpusim.Device.now_us device in
  let histogram = Pasta_util.Histogram.to_sorted (Pasta_tools.Kernel_freq.counts kf) in
  let json = Pasta.Trace_export.to_json tx in
  Dlfw.Ctx.destroy ctx;
  (result.Pasta.Session.events_seen, elapsed, histogram, json)

let test_run_twice_identical () =
  let e1, t1, h1, j1 = profiled_run () in
  let e2, t2, h2, j2 = profiled_run () in
  Alcotest.(check int) "event counts" e1 e2;
  Alcotest.(check (float 0.0)) "simulated time" t1 t2;
  Alcotest.(check (list (pair string int))) "kernel histograms" h1 h2;
  check_bool "trace json identical" true (String.equal j1 j2)

let test_report_deterministic () =
  let run () =
    let device = Gpusim.Device.create Gpusim.Arch.a100 in
    let ctx = Dlfw.Ctx.create device in
    let mc = Pasta_tools.Memory_charact.create () in
    let (), result =
      Pasta.Session.run ~tool:(Pasta_tools.Memory_charact.tool mc) device (fun () ->
          let m = Dlfw.Gpt2.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx in
          Dlfw.Model.inference_iter ctx m)
    in
    let report = Format.asprintf "%t" result.Pasta.Session.report in
    Dlfw.Ctx.destroy ctx;
    report
  in
  check_bool "reports identical" true (String.equal (run ()) (run ()))

let test_cross_arch_differs () =
  (* Different architectures must produce different timing but the same
     kernel stream — a sanity check that determinism is not accidental
     constancy. *)
  let run arch =
    let device = Gpusim.Device.create arch in
    let ctx = Dlfw.Ctx.create device in
    let kf = Pasta_tools.Kernel_freq.create () in
    let (), _ =
      Pasta.Session.run ~tool:(Pasta_tools.Kernel_freq.tool kf) device (fun () ->
          let m = Dlfw.Bert.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx in
          Dlfw.Model.inference_iter ctx m)
    in
    let t = Gpusim.Device.now_us device in
    Dlfw.Ctx.destroy ctx;
    (Pasta_tools.Kernel_freq.total_launches kf, t)
  in
  let k1, t1 = run Gpusim.Arch.a100 in
  let k2, t2 = run Gpusim.Arch.rtx3060 in
  Alcotest.(check int) "same kernel stream" k1 k2;
  check_bool "different timing" true (t1 <> t2)

let suite =
  [
    ("run twice identical", `Quick, test_run_twice_identical);
    ("report deterministic", `Quick, test_report_deterministic);
    ("cross-arch differs only in timing", `Quick, test_cross_arch_differs);
  ]
