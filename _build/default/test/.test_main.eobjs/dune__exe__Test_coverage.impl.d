test/test_coverage.ml: Alcotest Astring_contains Dlfw Format Gen Gpusim List Pasta Pasta_tools Pasta_util Printf QCheck QCheck_alcotest String
