test/test_pasta_core.ml: Alcotest Astring_contains Dlfw Format Gpusim List Pasta String Vendor
