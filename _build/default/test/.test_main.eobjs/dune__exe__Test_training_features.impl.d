test/test_training_features.ml: Alcotest Dlfw Gpusim List Pasta Pasta_tools Pasta_util
