test/test_models.ml: Alcotest Astring_contains Dlfw Gpusim List
