test/test_vendor.ml: Alcotest Arch Costmodel Device Device_mem Dim3 Gpusim Instr Kernel List Option Vendor Warp
