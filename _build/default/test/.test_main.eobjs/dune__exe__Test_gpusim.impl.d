test/test_gpusim.ml: Alcotest Arch Clock Costmodel Device Device_mem Dim3 Gen Gpusim Hashtbl Hostctx Instr Kernel List Pasta_util QCheck QCheck_alcotest Sass Uvm Warp
