test/test_export_tools.ml: Alcotest Astring_contains Dlfw Filename Format Gpusim List Pasta Pasta_tools String Sys
