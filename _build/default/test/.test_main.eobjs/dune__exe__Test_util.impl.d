test/test_util.ml: Alcotest Array Bytesize Det_rng Format Freelist Gen Heatmap Histogram List Pasta_util QCheck QCheck_alcotest Ring_buffer Stats String Texttab Timeline
