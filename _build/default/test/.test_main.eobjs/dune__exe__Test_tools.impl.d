test/test_tools.ml: Alcotest Array Astring_contains Dlfw Format Gpusim List Option Pasta Pasta_tools String
