test/test_dlfw.ml: Alcotest Allocator Callbacks Ctx Dlfw Dtype Gen Gpusim Layer List Model Ops Pasta_util Printf QCheck QCheck_alcotest Runner Shape String Tensor
