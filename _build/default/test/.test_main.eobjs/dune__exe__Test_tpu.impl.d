test/test_tpu.ml: Alcotest Astring_contains Dlfw Gpusim List Pasta Pasta_tools Vendor
