test/test_properties.ml: Array Float Gen Gpusim Hashtbl List Pasta Pasta_util QCheck QCheck_alcotest
