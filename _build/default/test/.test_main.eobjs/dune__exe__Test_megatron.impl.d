test/test_megatron.ml: Alcotest Dlfw Float Gpusim List Megatron Pasta_tools Pasta_util
