test/test_uvm.ml: Alcotest Arch Clock Gen Gpusim List QCheck QCheck_alcotest Uvm
