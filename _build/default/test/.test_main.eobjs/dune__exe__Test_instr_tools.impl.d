test/test_instr_tools.ml: Alcotest Astring_contains Dlfw Format Gpusim List Pasta Pasta_tools QCheck QCheck_alcotest Vendor
