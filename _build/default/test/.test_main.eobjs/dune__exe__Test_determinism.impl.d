test/test_determinism.ml: Alcotest Dlfw Format Gpusim Pasta Pasta_tools Pasta_util String
