test/test_streams.ml: Alcotest Gpusim Vendor
