(* Gradient checkpointing and optimizer-state features. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let peak_and_kernels ~checkpoint ?optimizer () =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let m = Dlfw.Gpt2.build ~batch:1 ~seq:128 ~layers:4 ~dim:128 ~heads:4 ~checkpoint ctx in
  (match optimizer with
  | Some opt -> Dlfw.Model.train_iter_opt ctx m ~optimizer:opt
  | None -> Dlfw.Model.train_iter ctx m);
  let peak = Dlfw.Allocator.peak_allocated ctx.Dlfw.Ctx.pool in
  let live = Dlfw.Allocator.allocated_bytes ctx.Dlfw.Ctx.pool in
  let kernels = Gpusim.Device.launches device in
  Dlfw.Ctx.destroy ctx;
  (peak, live, kernels)

(* ---- Gradient checkpointing ---- *)

(* Measure the block stack alone (no vocab-sized logits dwarfing the
   activations): forward + backward through 6 transformer blocks. *)
let block_stack_peak ~checkpoint =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let block () =
    let b = Dlfw.Transformer.block_prenorm ctx ~file:"t.py" ~dim:256 ~heads:4 ~seq:256 () in
    if checkpoint then Dlfw.Layer.checkpoint b else b
  in
  let stack = Dlfw.Layer.sequential (List.init 6 (fun _ -> block ())) in
  ctx.Dlfw.Ctx.training <- true;
  let x = Dlfw.Ops.new_tensor ctx [ 2 * 256; 256 ] Dlfw.Dtype.F32 in
  let y = Dlfw.Layer.forward ctx stack x in
  let gin = Dlfw.Layer.backward ctx stack y in
  Dlfw.Tensor.release gin;
  List.iter (fun (_, g) -> Dlfw.Tensor.release g) (Dlfw.Layer.take_grad_pairs stack);
  let peak = Dlfw.Allocator.peak_allocated ctx.Dlfw.Ctx.pool in
  let kernels = Gpusim.Device.launches device in
  Dlfw.Ctx.destroy ctx;
  (peak, kernels)

let test_checkpoint_reduces_memory () =
  let peak_plain, k_plain = block_stack_peak ~checkpoint:false in
  let peak_ckpt, k_ckpt = block_stack_peak ~checkpoint:true in
  check_bool "checkpointing reduces peak training memory" true
    (float_of_int peak_ckpt < 0.8 *. float_of_int peak_plain);
  check_bool "checkpointing recomputes (more kernels)" true (k_ckpt > k_plain)

let test_checkpoint_same_grads () =
  (* Both variants must produce gradients for every parameter. *)
  let grads_of checkpoint =
    let device = Gpusim.Device.create Gpusim.Arch.a100 in
    let ctx = Dlfw.Ctx.create device in
    let m = Dlfw.Gpt2.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ~checkpoint ctx in
    ctx.Dlfw.Ctx.training <- true;
    let logits = Dlfw.Layer.forward ctx m.Dlfw.Model.root (m.Dlfw.Model.make_input ctx) in
    let g = Dlfw.Ops.cross_entropy_bwd ctx ~logits in
    Dlfw.Tensor.release logits;
    let gin = Dlfw.Layer.backward ctx m.Dlfw.Model.root g in
    Dlfw.Tensor.release gin;
    let pairs = Dlfw.Layer.take_grad_pairs m.Dlfw.Model.root in
    let n_params = List.length (Dlfw.Layer.all_params m.Dlfw.Model.root) in
    let n_grads = List.length pairs in
    List.iter (fun (_, g) -> Dlfw.Tensor.release g) pairs;
    Dlfw.Ctx.destroy ctx;
    (n_params, n_grads)
  in
  let p1, g1 = grads_of false in
  let p2, g2 = grads_of true in
  check_int "plain: grad per param" p1 g1;
  check_int "checkpointed: grad per param" p2 g2;
  check_int "same param count" p1 p2

let test_checkpoint_inference_passthrough () =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let inner = Dlfw.Layer.relu ctx in
  let wrapped = Dlfw.Layer.checkpoint inner in
  ctx.Dlfw.Ctx.training <- false;
  let x = Dlfw.Ops.new_tensor ctx [ 8 ] Dlfw.Dtype.F32 in
  let y = Dlfw.Layer.forward ctx wrapped x in
  Dlfw.Tensor.release y;
  (* Nothing saved in inference mode, so backward is unbalanced. *)
  Alcotest.check_raises "no state saved in inference"
    (Invalid_argument "Checkpoint: backward without matching forward") (fun () ->
      ignore
        (Dlfw.Layer.backward ctx wrapped (Dlfw.Ops.new_tensor ctx [ 8 ] Dlfw.Dtype.F32)));
  Dlfw.Ctx.destroy ctx

(* ---- Optimizers ---- *)

let test_adam_allocates_state () =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let m = Dlfw.Gpt2.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx in
  let opt = Dlfw.Optimizer.adam () in
  check_int "no state before first step" 0 (Dlfw.Optimizer.state_bytes opt);
  Dlfw.Model.train_iter_opt ctx m ~optimizer:opt;
  let param_bytes = Dlfw.Model.param_bytes m in
  check_int "two moments per parameter" (2 * param_bytes) (Dlfw.Optimizer.state_bytes opt);
  (* Second step reuses the state, no growth. *)
  Dlfw.Model.train_iter_opt ctx m ~optimizer:opt;
  check_int "state stable across steps" (2 * param_bytes) (Dlfw.Optimizer.state_bytes opt);
  let live_with_state = Dlfw.Allocator.allocated_bytes ctx.Dlfw.Ctx.pool in
  Dlfw.Optimizer.destroy opt;
  check_bool "destroy releases the moments" true
    (Dlfw.Allocator.allocated_bytes ctx.Dlfw.Ctx.pool
    <= live_with_state - (2 * param_bytes) + 1024);
  Dlfw.Ctx.destroy ctx

let test_adam_vs_sgd_memory () =
  let _, live_sgd, _ = peak_and_kernels ~checkpoint:false () in
  let _, live_adam, _ =
    peak_and_kernels ~checkpoint:false ~optimizer:(Dlfw.Optimizer.adam ()) ()
  in
  check_bool "adam holds more persistent memory" true (live_adam > live_sgd)

let test_optimizer_names () =
  Alcotest.(check string) "sgd" "sgd" (Dlfw.Optimizer.name (Dlfw.Optimizer.sgd ()));
  Alcotest.(check string) "adam" "adam" (Dlfw.Optimizer.name (Dlfw.Optimizer.adam ()))

let test_adam_kernel_visible_to_pasta () =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let kf = Pasta_tools.Kernel_freq.create () in
  let (), _ =
    Pasta.Session.run ~tool:(Pasta_tools.Kernel_freq.tool kf) device (fun () ->
        let m = Dlfw.Gpt2.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx in
        Dlfw.Model.train_iter_opt ctx m ~optimizer:(Dlfw.Optimizer.adam ()))
  in
  check_int "one fused adam kernel" 1
    (Pasta_util.Histogram.count
       (Pasta_tools.Kernel_freq.counts kf)
       "at::native::multi_tensor_apply_kernel<adam>");
  Dlfw.Ctx.destroy ctx

let suite =
  [
    ("checkpoint reduces memory", `Quick, test_checkpoint_reduces_memory);
    ("checkpoint same grads", `Quick, test_checkpoint_same_grads);
    ("checkpoint inference passthrough", `Quick, test_checkpoint_inference_passthrough);
    ("adam allocates state", `Quick, test_adam_allocates_state);
    ("adam vs sgd memory", `Quick, test_adam_vs_sgd_memory);
    ("optimizer names", `Quick, test_optimizer_names);
    ("adam kernel visible to pasta", `Quick, test_adam_kernel_visible_to_pasta);
  ]
