(* UVM subsystem tests: residency, faulting, eviction, prefetch, pinning. *)

open Gpusim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

let page = Arch.a100.Arch.uvm_page_bytes

let mk ?(capacity_pages = 8) () =
  let clock = Clock.create () in
  let u = Uvm.create Arch.a100 clock ~capacity:(capacity_pages * page) in
  (u, clock)

let test_register () =
  let u, _ = mk () in
  Uvm.register_range u ~base:0 ~bytes:(3 * page);
  check_bool "inside" true (Uvm.is_managed u (page + 1));
  check_bool "last byte" true (Uvm.is_managed u ((3 * page) - 1));
  check_bool "outside" false (Uvm.is_managed u (3 * page));
  Alcotest.check_raises "overlap" (Invalid_argument "Uvm.register_range: overlapping range")
    (fun () -> Uvm.register_range u ~base:page ~bytes:page);
  Uvm.unregister_range u ~base:0;
  check_bool "gone" false (Uvm.is_managed u 0);
  Alcotest.check_raises "unknown" (Invalid_argument "Uvm.unregister_range: unknown base")
    (fun () -> Uvm.unregister_range u ~base:42)

let test_touch_faults_once () =
  let u, clock = mk () in
  Uvm.register_range u ~base:0 ~bytes:(4 * page);
  let faulted = ref 0 in
  Uvm.touch u ~base:0 ~bytes:(2 * page) ~faulted_pages:faulted;
  check_int "cold faults" 2 !faulted;
  check_int "resident" 2 (Uvm.resident_pages u);
  check_bool "clock advanced" true (Clock.now_us clock > 0.0);
  let t = Clock.now_us clock in
  Uvm.touch u ~base:0 ~bytes:(2 * page) ~faulted_pages:faulted;
  check_int "warm: no new faults" 2 !faulted;
  Alcotest.(check (float 0.0)) "warm touch is free" t (Clock.now_us clock);
  Uvm.check_invariants u

let test_unmanaged_touch_ignored () =
  let u, _ = mk () in
  let faulted = ref 0 in
  Uvm.touch u ~base:0x999999 ~bytes:page ~faulted_pages:faulted;
  check_int "ordinary memory never faults" 0 !faulted

let test_eviction_under_pressure () =
  let u, _ = mk ~capacity_pages:2 () in
  Uvm.register_range u ~base:0 ~bytes:(4 * page);
  let f = ref 0 in
  Uvm.touch u ~base:0 ~bytes:(4 * page) ~faulted_pages:f;
  check_int "all pages faulted" 4 !f;
  check_bool "capacity respected" true (Uvm.resident_pages u <= 2);
  check_bool "evictions happened" true ((Uvm.stats u).Uvm.evicted_pages >= 2);
  Uvm.check_invariants u

let test_refault_counting () =
  let u, _ = mk ~capacity_pages:1 () in
  Uvm.register_range u ~base:0 ~bytes:(2 * page);
  let f = ref 0 in
  Uvm.touch u ~base:0 ~bytes:page ~faulted_pages:f;
  Uvm.touch u ~base:page ~bytes:page ~faulted_pages:f (* evicts page 0 *);
  Uvm.touch u ~base:0 ~bytes:page ~faulted_pages:f (* refault *);
  check_int "refaults counted" 1 (Uvm.stats u).Uvm.refaults

let test_prefetch_avoids_faults () =
  let u, clock = mk () in
  Uvm.register_range u ~base:0 ~bytes:(4 * page);
  Uvm.prefetch u ~base:0 ~bytes:(4 * page);
  check_int "resident after prefetch" 4 (Uvm.resident_pages u);
  check_int "prefetched bytes" (4 * page) (Uvm.stats u).Uvm.prefetched_bytes;
  let t = Clock.now_us clock in
  let f = ref 0 in
  Uvm.touch u ~base:0 ~bytes:(4 * page) ~faulted_pages:f;
  check_int "no faults after prefetch" 0 !f;
  Alcotest.(check (float 0.0)) "no fault time" t (Clock.now_us clock);
  (* Prefetching again moves nothing new. *)
  Uvm.prefetch u ~base:0 ~bytes:(4 * page);
  check_int "idempotent bytes" (4 * page) (Uvm.stats u).Uvm.prefetched_bytes

let test_prefetch_cheaper_than_faulting () =
  let demand, clock_d = mk () in
  Uvm.register_range demand ~base:0 ~bytes:(8 * page);
  let f = ref 0 in
  Uvm.touch demand ~base:0 ~bytes:(8 * page) ~faulted_pages:f;
  let fault_time = Clock.now_us clock_d in
  let pre, clock_p = mk () in
  Uvm.register_range pre ~base:0 ~bytes:(8 * page);
  Uvm.prefetch pre ~base:0 ~bytes:(8 * page);
  let prefetch_time = Clock.now_us clock_p in
  check_bool "bulk prefetch beats demand faulting" true (prefetch_time < fault_time)

let test_evict_range () =
  let u, _ = mk () in
  Uvm.register_range u ~base:0 ~bytes:(4 * page);
  Uvm.prefetch u ~base:0 ~bytes:(4 * page);
  Uvm.evict_range u ~base:0 ~bytes:(2 * page);
  check_int "partially evicted" 2 (Uvm.resident_pages u);
  Uvm.check_invariants u

let test_pinning () =
  let u, _ = mk ~capacity_pages:2 () in
  Uvm.register_range u ~base:0 ~bytes:(4 * page);
  Uvm.prefetch u ~base:0 ~bytes:page;
  Uvm.pin u ~base:0 ~bytes:page;
  let f = ref 0 in
  (* Touch the other three pages; the pinned one must survive. *)
  Uvm.touch u ~base:page ~bytes:(3 * page) ~faulted_pages:f;
  Uvm.evict_range u ~base:0 ~bytes:page;
  let f2 = ref 0 in
  Uvm.touch u ~base:0 ~bytes:page ~faulted_pages:f2;
  check_int "pinned page never left" 0 !f2;
  Uvm.unpin u ~base:0 ~bytes:page;
  Uvm.evict_range u ~base:0 ~bytes:page;
  let f3 = ref 0 in
  Uvm.touch u ~base:0 ~bytes:page ~faulted_pages:f3;
  check_int "after unpin it can be evicted" 1 !f3

let test_forced_eviction_when_all_pinned () =
  let u, _ = mk ~capacity_pages:1 () in
  Uvm.register_range u ~base:0 ~bytes:(2 * page);
  Uvm.prefetch u ~base:0 ~bytes:page;
  Uvm.pin u ~base:0 ~bytes:(2 * page);
  let f = ref 0 in
  (* Needs a page but everything resident is pinned: the last-resort scan
     must still make room rather than deadlock. *)
  Uvm.touch u ~base:page ~bytes:page ~faulted_pages:f;
  check_int "still fits capacity" 1 (Uvm.resident_pages u);
  Uvm.check_invariants u

let test_unregister_releases_residency () =
  let u, _ = mk () in
  Uvm.register_range u ~base:0 ~bytes:(4 * page);
  Uvm.prefetch u ~base:0 ~bytes:(4 * page);
  Uvm.unregister_range u ~base:0;
  check_int "residency released" 0 (Uvm.resident_pages u);
  Uvm.check_invariants u

let test_reset_stats () =
  let u, _ = mk () in
  Uvm.register_range u ~base:0 ~bytes:page;
  let f = ref 0 in
  Uvm.touch u ~base:0 ~bytes:page ~faulted_pages:f;
  Uvm.reset_stats u;
  check_int "faults cleared" 0 (Uvm.stats u).Uvm.faults;
  check_int "bytes cleared" 0 (Uvm.stats u).Uvm.migrated_bytes

let test_capacity_too_small () =
  let clock = Clock.create () in
  Alcotest.check_raises "below one page"
    (Invalid_argument "Uvm.create: capacity below one page") (fun () ->
      ignore (Uvm.create Arch.a100 clock ~capacity:100))

let prop_uvm_capacity_invariant =
  QCheck.Test.make ~name:"uvm never exceeds capacity under random ops" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 60) (pair (int_range 0 15) (int_range 1 4)))
    (fun ops ->
      let u, _ = mk ~capacity_pages:4 () in
      Uvm.register_range u ~base:0 ~bytes:(16 * page);
      let f = ref 0 in
      List.iter
        (fun (start, len) ->
          let base = start * page in
          let bytes = min (len * page) ((16 * page) - base) in
          if bytes > 0 then
            if (start + len) mod 3 = 0 then Uvm.prefetch u ~base ~bytes
            else if (start + len) mod 3 = 1 then Uvm.touch u ~base ~bytes ~faulted_pages:f
            else Uvm.evict_range u ~base ~bytes)
        ops;
      Uvm.check_invariants u;
      Uvm.resident_pages u <= Uvm.capacity_pages u)

let suite =
  [
    ("register/unregister", `Quick, test_register);
    ("touch faults once", `Quick, test_touch_faults_once);
    ("unmanaged touch ignored", `Quick, test_unmanaged_touch_ignored);
    ("eviction under pressure", `Quick, test_eviction_under_pressure);
    ("refault counting", `Quick, test_refault_counting);
    ("prefetch avoids faults", `Quick, test_prefetch_avoids_faults);
    ("prefetch cheaper than faulting", `Quick, test_prefetch_cheaper_than_faulting);
    ("evict_range", `Quick, test_evict_range);
    ("pinning", `Quick, test_pinning);
    ("forced eviction when all pinned", `Quick, test_forced_eviction_when_all_pinned);
    ("unregister releases residency", `Quick, test_unregister_releases_residency);
    ("reset stats", `Quick, test_reset_stats);
    ("capacity too small", `Quick, test_capacity_too_small);
    qtest prop_uvm_capacity_invariant;
  ]
