(* Extending PASTA: write a new tool by overriding template callbacks.

   This is the paper's extensibility claim (§III-H) in action: an
   operator-latency tool, built from scratch in ~40 lines, that attributes
   GPU kernel time to the DL-framework operator that launched it — a
   cross-layer attribution no vendor tool can do alone, because operator
   boundaries only exist at the framework level.

   Run with: dune exec examples/custom_tool.exe *)

let () =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in

  (* Tool state: a stack of currently-open operators and per-operator
     accumulated kernel time. *)
  let open_ops : string list ref = ref [] in
  let op_time = Pasta_util.Histogram.create () in
  let op_kernels = Pasta_util.Histogram.create () in

  let tool =
    {
      (Pasta.Tool.default "op_latency") with
      Pasta.Tool.on_operator =
        (fun name phase _seq ->
          match phase with
          | `Enter -> open_ops := name :: !open_ops
          | `Exit -> (
              match !open_ops with _ :: rest -> open_ops := rest | [] -> ()));
      on_kernel_end =
        (fun _info summary ->
          match !open_ops with
          | op :: _ ->
              (* Attribute microseconds as integer counts. *)
              Pasta_util.Histogram.add op_time
                ~count:(int_of_float summary.Pasta.Event.duration_us)
                op;
              Pasta_util.Histogram.add op_kernels op
          | [] -> ());
      report =
        (fun ppf ->
          Format.fprintf ppf "GPU time per framework operator:@.";
          List.iter
            (fun (op, us) ->
              Format.fprintf ppf "  %-40s %8.1f ms  (%d kernels)@." op
                (float_of_int us /. 1000.0)
                (Pasta_util.Histogram.count op_kernels op))
            (Pasta_util.Histogram.top op_time 12));
    }
  in

  let (), result =
    Pasta.Session.run ~tool device (fun () ->
        let model = Dlfw.Bert.build ctx in
        Dlfw.Model.train_iter ctx model)
  in
  result.Pasta.Session.report Format.std_formatter;
  Dlfw.Ctx.destroy ctx
