(* Cross-vendor profiling with one tool (paper §III-D, §V-D1).

   The same memory-timeline tool runs unchanged against the Compute
   Sanitizer backend on an NVIDIA A100 and the ROCProfiler backend on an
   AMD MI300X: the event handler normalizes the vendor differences
   (including AMD's negative-size release records) before the tool ever
   sees an event.

   Run with: dune exec examples/cross_vendor.exe *)

let profile arch =
  let device = Gpusim.Device.create arch in
  let ctx = Dlfw.Ctx.create device in
  let mt = Pasta_tools.Mem_timeline.create () in
  let (), result =
    Pasta.Session.run ~tool:(Pasta_tools.Mem_timeline.tool mt) device (fun () ->
        let model = Dlfw.Gpt2.build ctx in
        Dlfw.Model.train_iter ctx model)
  in
  Dlfw.Ctx.destroy ctx;
  (mt, result)

let () =
  List.iter
    (fun arch ->
      let mt, result = profile arch in
      Format.printf "%-28s backend saw %6d events, %4d kernels@."
        arch.Gpusim.Arch.name result.Pasta.Session.events_seen
        result.Pasta.Session.kernels;
      Format.printf "  peak %8.0f MB, %5d tensor allocs, %5d frees@."
        (Pasta_tools.Mem_timeline.peak_bytes mt /. 1048576.0)
        (Pasta_tools.Mem_timeline.alloc_events mt)
        (Pasta_tools.Mem_timeline.free_events mt);
      Format.printf "  ";
      Pasta_util.Timeline.pp_sparkline Format.std_formatter
        (Pasta_tools.Mem_timeline.series mt ~buckets:64);
      Format.printf "@.@.")
    [ Gpusim.Arch.a100; Gpusim.Arch.mi300x ]
