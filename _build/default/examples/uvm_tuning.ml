(* UVM prefetch tuning with the tensor-aware prefetcher (paper §V-C1).

   Runs the full record-then-replay pipeline for one model under memory
   oversubscription and reports which prefetch granularity to use — the
   decision Figs. 11/12 of the paper are about.

   Run with: dune exec examples/uvm_tuning.exe -- [model] [oversub]
   e.g.      dune exec examples/uvm_tuning.exe -- BERT 3.0 *)

let () =
  let abbr = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BERT" in
  let oversub =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 3.0
  in
  let o = Pasta_tools.Uvm_experiment.run ~arch:Gpusim.Arch.rtx3060 ~oversub abbr in
  let open Pasta_tools.Uvm_experiment in
  Format.printf "model %s on RTX 3060, oversubscription %.1fx@." abbr oversub;
  Format.printf "footprint %.0f MB, device capacity %.0f MB@.@."
    (float_of_int o.footprint_bytes /. 1048576.0)
    (float_of_int o.capacity_bytes /. 1048576.0);
  let report name (r : run_stats) =
    Format.printf
      "%-14s %8.3f s   faults %6d (refaults %6d)   migrated %6.0f MB   prefetched %6.0f MB@."
      name (r.elapsed_us /. 1.0e6) r.faults r.refaults
      (float_of_int r.migrated_bytes /. 1048576.0)
      (float_of_int r.prefetched_bytes /. 1048576.0)
  in
  report "demand paging" o.baseline;
  report "object-level" o.object_level;
  report "tensor-level" o.tensor_level;
  Format.printf "@.object-level speedup %.2fx, tensor-level speedup %.2fx@."
    (speedup o `Object) (speedup o `Tensor);
  let best =
    if speedup o `Tensor >= speedup o `Object && speedup o `Tensor > 1.0 then
      "tensor-level prefetching"
    else if speedup o `Object > 1.0 then "object-level prefetching"
    else "demand paging (prefetching hurts at this pressure)"
  in
  Format.printf "recommendation: %s@." best
