(* Generalizing beyond GPUs (paper §III-G): the same PASTA tool against a
   Google TPU through the XProf backend.

   The TPU substrate reports XSpace planes — program executions, buffer
   events, infeeds, plus vendor-unique systolic-array activity that the
   normalization layer drops on purpose.  The kernel-frequency tool runs
   unchanged and sees XLA program names instead of CUDA kernels.

   Run with: dune exec examples/tpu_backend.exe *)

let () =
  let device = Gpusim.Device.create Gpusim.Arch.tpu_v4 in
  let ctx = Dlfw.Ctx.create device in
  let kf = Pasta_tools.Kernel_freq.create () in
  let (), result =
    Pasta.Session.run ~tool:(Pasta_tools.Kernel_freq.tool kf) device (fun () ->
        let model = Dlfw.Gpt2.build ~batch:2 ~seq:256 ~layers:4 ctx in
        Dlfw.Model.inference_iter ctx model)
  in
  Format.printf "device: %a@." Gpusim.Arch.pp (Gpusim.Device.arch device);
  Format.printf "backend: %s@."
    (Pasta.Backend.kind_to_string (Pasta.Backend.default_kind_for device));
  Format.printf "programs executed: %d (%d events)@.@." result.Pasta.Session.kernels
    result.Pasta.Session.events_seen;
  Format.printf "top XLA programs:@.";
  List.iter
    (fun (name, n) -> Format.printf "  %-48s %6d@." name n)
    (Pasta_tools.Kernel_freq.top kf 8);
  Dlfw.Ctx.destroy ctx
