(* PASTA beyond deep learning (paper §III-G): profiling an HPC workload.

   A conjugate-gradient solver written directly against the simulated
   CUDA-like runtime — no DL framework, no tensors, just kernels and
   device buffers, the way an HPC code uses a GPU.  PASTA profiles it
   with the same tools, and the grid-id range mechanism
   (START_GRID_ID / END_GRID_ID) isolates the steady-state iterations
   from the setup phase.

   Run with: dune exec examples/hpc_cg.exe *)

module D = Gpusim.Device
module K = Gpusim.Kernel

let n = 4 * 1024 * 1024 (* unknowns *)
let nnz = 27 * n (* 27-point stencil *)
let iterations = 25

let spmv device ~mat ~x ~y =
  ignore
    (D.launch device
       (K.make ~name:"cg::spmv_csr_vector_kernel" ~grid:(Gpusim.Dim3.make (n / 256))
          ~block:(Gpusim.Dim3.make 256)
          ~regions:
            [
              K.region ~base:mat ~bytes:(nnz * 12) ~accesses:(2 * nnz) ();
              K.region ~base:x ~bytes:(n * 8) ~accesses:nnz ~pattern:K.Random ();
              K.region ~write:true ~base:y ~bytes:(n * 8) ~accesses:n ();
            ]
          ~flops:(2.0 *. float_of_int nnz)
          ~prof:
            (K.profile ~branches:nnz ~divergent_branches:(nnz / 6)
               ~value_min:(-1.0e3) ~value_max:1.0e3 ())
          ()))

let dot device ~a ~b ~out =
  ignore
    (D.launch device
       (K.make ~name:"cg::dot_product_kernel" ~grid:(Gpusim.Dim3.make (n / 512))
          ~block:(Gpusim.Dim3.make 256)
          ~regions:
            [
              K.region ~base:a ~bytes:(n * 8) ~accesses:n ();
              K.region ~base:b ~bytes:(n * 8) ~accesses:n ();
              K.region ~write:true ~base:out ~bytes:512 ~accesses:1 ();
            ]
          ~flops:(2.0 *. float_of_int n)
          ~barriers:2
          ~prof:
            (K.profile ~branches:(n / 32 * 5) ~divergent_branches:(n / 32)
               ~shared_accesses:(n / 2) ~bank_conflicts:(n / 256)
               ~barrier_stall_us:4.0 ~value_min:(-1.0e6) ~value_max:1.0e6 ())
          ()))

let axpy device ~x ~y =
  ignore
    (D.launch device
       (K.make ~name:"cg::axpy_kernel" ~grid:(Gpusim.Dim3.make (n / 256))
          ~block:(Gpusim.Dim3.make 256)
          ~regions:
            [
              K.region ~base:x ~bytes:(n * 8) ~accesses:n ();
              K.region ~write:true ~base:y ~bytes:(n * 8) ~accesses:n ();
            ]
          ~flops:(2.0 *. float_of_int n)
          ()))

let run_cg device =
  let buf bytes = (D.malloc device bytes).Gpusim.Device_mem.base in
  let mat = buf (nnz * 12) in
  let x = buf (n * 8) and r = buf (n * 8) and p = buf (n * 8) and q = buf (n * 8) in
  let scalars = buf 4096 in
  (* Setup: ship the matrix and the initial guess. *)
  D.memcpy device ~dst:mat ~src:0 ~bytes:(nnz * 12) ~kind:D.Host_to_device ();
  D.memcpy device ~dst:x ~src:0 ~bytes:(n * 8) ~kind:D.Host_to_device ();
  (* CG iterations: spmv, two dots, three axpys each. *)
  for _ = 1 to iterations do
    spmv device ~mat ~x:p ~y:q;
    dot device ~a:p ~b:q ~out:scalars;
    axpy device ~x:q ~y:x;
    axpy device ~x:q ~y:r;
    dot device ~a:r ~b:r ~out:scalars;
    axpy device ~x:r ~y:p
  done;
  D.synchronize device

let profile ?range () =
  let device = D.create Gpusim.Arch.a100 in
  let kf = Pasta_tools.Kernel_freq.create () in
  let (), result =
    Pasta.Session.run ?range ~tool:(Pasta_tools.Kernel_freq.tool kf) device (fun () ->
        run_cg device)
  in
  (kf, result)

let () =
  let kf, result = profile () in
  Format.printf "whole solver: %d kernel launches, %.1f ms simulated@."
    result.Pasta.Session.kernels
    (result.Pasta.Session.elapsed_us /. 1000.0);
  List.iter
    (fun (name, count) -> Format.printf "  %-36s %5d@." name count)
    (Pasta_tools.Kernel_freq.top kf 5);
  (* Steady state only: skip the first five iterations (6 kernels each). *)
  let kf, _ =
    profile ~range:(Pasta.Range.create ~start_grid:31 ()) ()
  in
  Format.printf "@.steady state (START_GRID_ID=31): %d launches analyzed@."
    (Pasta_tools.Kernel_freq.total_launches kf)
