(* Quickstart: profile a model with a stock PASTA tool.

   The five-line recipe:
     1. create a simulated device,
     2. create a framework context on it,
     3. pick a tool from the collection,
     4. run the workload inside a PASTA session,
     5. print the tool's report.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in

  (* The kernel-invocation-frequency tool from the collection (paper
     §V-B1). *)
  let kf = Pasta_tools.Kernel_freq.create () in

  let (), result =
    Pasta.Session.run ~tool:(Pasta_tools.Kernel_freq.tool kf) device (fun () ->
        let model = Dlfw.Resnet.build18 ctx in
        Dlfw.Runner.run ctx model ~mode:Dlfw.Runner.Inference ~iters:2)
  in

  Format.printf "profiled %d kernel launches (%d events) in %.2f ms simulated@.@."
    result.Pasta.Session.kernels result.Pasta.Session.events_seen
    (result.Pasta.Session.elapsed_us /. 1000.0);
  result.Pasta.Session.report Format.std_formatter;
  Dlfw.Ctx.destroy ctx
