examples/async_streams.ml: Format Gpusim Pasta Pasta_tools
