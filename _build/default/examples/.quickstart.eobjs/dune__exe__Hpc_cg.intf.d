examples/hpc_cg.mli:
