examples/uvm_tuning.ml: Array Format Gpusim Pasta_tools Sys
