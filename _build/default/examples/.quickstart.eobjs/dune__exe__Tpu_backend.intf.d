examples/tpu_backend.mli:
