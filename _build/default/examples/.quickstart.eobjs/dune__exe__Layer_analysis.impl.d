examples/layer_analysis.ml: Dlfw Format Gpusim List Pasta Pasta_tools
