examples/layer_analysis.mli:
