examples/cross_vendor.mli:
