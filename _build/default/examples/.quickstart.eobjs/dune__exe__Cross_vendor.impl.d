examples/cross_vendor.ml: Dlfw Format Gpusim List Pasta Pasta_tools Pasta_util
