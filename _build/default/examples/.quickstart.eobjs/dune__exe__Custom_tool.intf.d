examples/custom_tool.mli:
