examples/instr_mix.ml: Dlfw Format Gpusim Hashtbl List Option Pasta Pasta_tools Vendor
