examples/quickstart.mli:
