examples/hpc_cg.ml: Format Gpusim List Pasta Pasta_tools
