examples/instr_mix.mli:
