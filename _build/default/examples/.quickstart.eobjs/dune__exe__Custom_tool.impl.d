examples/custom_tool.ml: Dlfw Format Gpusim List Pasta Pasta_util
