examples/async_streams.mli:
