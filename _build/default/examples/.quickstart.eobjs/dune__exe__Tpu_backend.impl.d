examples/tpu_backend.ml: Dlfw Format Gpusim List Pasta Pasta_tools
