examples/uvm_tuning.mli:
