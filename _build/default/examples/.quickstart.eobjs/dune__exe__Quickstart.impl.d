examples/quickstart.ml: Dlfw Format Gpusim Pasta Pasta_tools
