(* Profiling asynchronous, multi-stream execution — the "asynchronous
   interactions with CPUs" the paper's §II-A calls the core difficulty of
   GPU performance analysis.

   A double-buffered pipeline (copy chunk N+1 on stream 2 while computing
   chunk N on stream 1) is compared against the same work serialized on
   one stream, with PASTA's transfer and operator tools attached.

   Run with: dune exec examples/async_streams.exe *)

module D = Gpusim.Device
module K = Gpusim.Kernel

let chunk_bytes = 128 * 1024 * 1024
let chunks = 8

let process_kernel buf =
  K.make ~name:"pipeline::process_chunk" ~grid:(Gpusim.Dim3.make 512)
    ~block:(Gpusim.Dim3.make 256)
    ~regions:[ K.region ~base:buf ~bytes:chunk_bytes ~accesses:(chunk_bytes / 4) () ]
    ~flops:2.0e10 ()

let run ~pipelined =
  let device = D.create Gpusim.Arch.a100 in
  let t = Pasta_tools.Transfer.create () in
  let (), _ =
    Pasta.Session.run ~tool:(Pasta_tools.Transfer.tool t) device (fun () ->
        let buf0 = (D.malloc device chunk_bytes).Gpusim.Device_mem.base in
        let buf1 = (D.malloc device chunk_bytes).Gpusim.Device_mem.base in
        let copy_stream = if pipelined then 2 else 1 in
        for i = 0 to chunks - 1 do
          let buf = if i mod 2 = 0 then buf0 else buf1 in
          D.memcpy_async device ~dst:buf ~src:0 ~bytes:chunk_bytes
            ~kind:D.Host_to_device ~stream:copy_stream;
          if not pipelined then D.stream_synchronize device copy_stream;
          ignore (D.launch_async device ~stream:1 (process_kernel buf))
        done;
        D.synchronize device)
  in
  (D.now_us device /. 1000.0, t)

let () =
  let serial_ms, _ = run ~pipelined:false in
  let piped_ms, transfers = run ~pipelined:true in
  Format.printf "serialized pipeline:    %8.1f ms@." serial_ms;
  Format.printf "double-buffered (2 streams): %3.1f ms  (%.2fx)@.@." piped_ms
    (serial_ms /. piped_ms);
  Pasta_tools.Transfer.report transfers Format.std_formatter
