(* Using the profiling libraries in conjunction (paper §III-D: "users have
   the flexibility to choose either of these libraries independently or
   use both in conjunction").

   A PASTA session on the Sanitizer backend provides the coarse view
   (kernels, operators, memory), while NVBit's "any specific instruction"
   instrumentation — Table II's last row — counts FFMA/LDG/BAR executions
   per kernel for an instruction-mix breakdown no single library exposes.

   Run with: dune exec examples/instr_mix.exe *)

let tracked = [ Gpusim.Instr.Ffma; Gpusim.Instr.Ld_global; Gpusim.Instr.Bar_sync ]

let () =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  (* NVBit side: opcode counters. *)
  let nv = Vendor.Nvbit.attach device in
  let mix : (string, (Gpusim.Instr.opcode * int) list) Hashtbl.t = Hashtbl.create 16 in
  Vendor.Nvbit.instrument_opcodes nv ~opcodes:tracked
    ~on_counts:(fun info counts ->
      let name = info.Gpusim.Device.kernel.Gpusim.Kernel.name in
      let prev = Option.value ~default:(List.map (fun o -> (o, 0)) tracked)
          (Hashtbl.find_opt mix name) in
      Hashtbl.replace mix name
        (List.map2 (fun (o, a) (_, b) -> (o, a + b)) prev counts))
    ();
  (* PASTA side: the kernel-frequency tool through the NVBit backend (the
     same library serves both coarse events and instrumentation). *)
  let kf = Pasta_tools.Kernel_freq.create () in
  let session =
    Pasta.Session.attach ~backend:Pasta.Backend.Nvbit
      ~tool:(Pasta_tools.Kernel_freq.tool kf) device
  in
  let model = Dlfw.Bert.build ~batch:1 ~seq:128 ~layers:2 ctx in
  Dlfw.Model.inference_iter ctx model;
  let result = Pasta.Session.detach session in
  Vendor.Nvbit.detach nv;
  Format.printf "%d kernels; instruction mix of the top 5 by invocation count:@.@."
    result.Pasta.Session.kernels;
  Format.printf "%-58s %12s %12s %10s@." "kernel" "FFMA" "LDG.E" "BAR.SYNC";
  List.iter
    (fun (name, _) ->
      match Hashtbl.find_opt mix name with
      | Some counts ->
          let get o = Option.value ~default:0 (List.assoc_opt o counts) in
          Format.printf "%-58s %12d %12d %10d@." name (get Gpusim.Instr.Ffma)
            (get Gpusim.Instr.Ld_global) (get Gpusim.Instr.Bar_sync)
      | None -> ())
    (Pasta_tools.Kernel_freq.top kf 5);
  Dlfw.Ctx.destroy ctx
