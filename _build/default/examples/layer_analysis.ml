(* Range-specific analysis with pasta.start / pasta.end annotations
   (paper §III-F1, Listing 1).

   In DL workloads the interesting unit is usually one layer or one
   forward pass, not the whole program.  Here we profile GPT-2 twice with
   the same tool: once over the whole run, once with annotations opened
   only around the forward pass of a single iteration — PASTA then
   dispatches only the kernels inside the annotated region.

   Run with: dune exec examples/layer_analysis.exe *)

let profile_with annotate =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = Dlfw.Ctx.create device in
  let kf = Pasta_tools.Kernel_freq.create () in
  let range =
    if annotate then Pasta.Range.create ~annotations_only:true ()
    else Pasta.Range.create ()
  in
  let (), result =
    Pasta.Session.run ~range ~tool:(Pasta_tools.Kernel_freq.tool kf) device (fun () ->
        let model = Dlfw.Gpt2.build ctx in
        (* Warm-up iteration, outside any annotation. *)
        Dlfw.Model.inference_iter ctx model;
        if annotate then Pasta.Session.start ~label:"forward" ();
        Dlfw.Model.inference_iter ctx model;
        if annotate then Pasta.Session.end_ ~label:"forward" ();
        (* Cool-down iteration, also outside. *)
        Dlfw.Model.inference_iter ctx model)
  in
  Dlfw.Ctx.destroy ctx;
  (kf, result)

let () =
  let whole, whole_res = profile_with false in
  let ranged, ranged_res = profile_with true in
  Format.printf "whole run:       %d launches dispatched (%d events)@."
    (Pasta_tools.Kernel_freq.total_launches whole)
    whole_res.Pasta.Session.events_dispatched;
  Format.printf "annotated range: %d launches dispatched (%d events)@.@."
    (Pasta_tools.Kernel_freq.total_launches ranged)
    ranged_res.Pasta.Session.events_dispatched;
  Format.printf "top kernels inside the annotated forward pass:@.";
  List.iter
    (fun (name, n) -> Format.printf "  %-60s %6d@." name n)
    (Pasta_tools.Kernel_freq.top ranged 8)
