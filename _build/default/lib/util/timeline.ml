type t = { mutable times : float list; mutable values : float list; mutable n : int }
(* Samples are kept in reverse order for O(1) append. *)

let create () = { times = []; values = []; n = 0 }

let record t ~time v =
  (match t.times with
  | last :: _ when time < last -> invalid_arg "Timeline.record: time went backwards"
  | _ -> ());
  t.times <- time :: t.times;
  t.values <- v :: t.values;
  t.n <- t.n + 1

let length t = t.n
let is_empty t = t.n = 0
let last_value t = match t.values with [] -> 0.0 | v :: _ -> v
let peak t = List.fold_left Float.max 0.0 t.values

let samples t =
  let times = Array.of_list (List.rev t.times) in
  let values = Array.of_list (List.rev t.values) in
  Array.map2 (fun a b -> (a, b)) times values

let duration t =
  match (t.times, List.rev t.times) with
  | last :: _, first :: _ when t.n >= 2 -> last -. first
  | _ -> 0.0

let bucketize t ~buckets =
  if buckets <= 0 then invalid_arg "Timeline.bucketize: buckets must be positive";
  if t.n = 0 then invalid_arg "Timeline.bucketize: empty timeline";
  let s = samples t in
  let t0 = fst s.(0) and t1 = fst s.(Array.length s - 1) in
  let span = t1 -. t0 in
  let out = Array.make buckets 0.0 in
  if span <= 0.0 then (
    (* All samples at a single instant: hold the final value everywhere. *)
    Array.fill out 0 buckets (snd s.(Array.length s - 1));
    out)
  else begin
    let idx = ref 0 in
    let current = ref (snd s.(0)) in
    for b = 0 to buckets - 1 do
      let slot_end = t0 +. (span *. float_of_int (b + 1) /. float_of_int buckets) in
      while !idx < Array.length s && fst s.(!idx) <= slot_end do
        current := snd s.(!idx);
        incr idx
      done;
      out.(b) <- !current
    done;
    out
  end

let diff a b =
  if Array.length a <> Array.length b then
    invalid_arg "Timeline.diff: length mismatch";
  Array.map2 ( -. ) a b

let spark_chars = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]

let pp_sparkline ppf series =
  let hi = Array.fold_left Float.max 0.0 series in
  Array.iter
    (fun v ->
      let level =
        if hi <= 0.0 then 0
        else
          let l = int_of_float (Float.round (v /. hi *. 8.0)) in
          max 0 (min 8 l)
      in
      Format.pp_print_string ppf spark_chars.(level))
    series
