(** String-keyed frequency counters, the data structure behind the
    kernel-invocation-frequency tool (paper Fig. 7). *)

type t

val create : unit -> t
val add : t -> ?count:int -> string -> unit
val count : t -> string -> int
val total : t -> int
val distinct : t -> int

val to_sorted : t -> (string * int) list
(** Bindings sorted by decreasing count, then lexicographically. *)

val top : t -> int -> (string * int) list

val merge : t -> t -> t
(** [merge a b] is a fresh histogram with the summed counts. *)

val iter : (string -> int -> unit) -> t -> unit

val pp : ?limit:int -> Format.formatter -> t -> unit
(** One "name count" row per binding, most frequent first. *)
