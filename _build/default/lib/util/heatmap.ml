let ramp = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let intensity_char v =
  let v = Float.max 0.0 (Float.min 1.0 v) in
  let idx = int_of_float (v *. 9.0 +. 0.5) in
  ramp.(max 0 (min 9 idx))

let render ppf ~row_label cells =
  let hi =
    Array.fold_left
      (fun acc row -> Array.fold_left Float.max acc row)
      0.0 cells
  in
  Array.iteri
    (fun i row ->
      Format.fprintf ppf "%s |" (row_label i);
      Array.iter
        (fun v ->
          let norm = if hi <= 0.0 then 0.0 else v /. hi in
          Format.pp_print_char ppf (intensity_char norm))
        row;
      Format.fprintf ppf "|@.")
    cells
