(** Fixed-capacity FIFO ring buffer.

    Models the device-side trace buffer of the CPU-analysis profiling
    pipelines (paper Fig. 2a): producers push records until the buffer is
    full, at which point the producing kernel must stall while a consumer
    drains it. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_full : 'a t -> bool
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [push t x] appends [x] and returns [true], or returns [false] without
    modifying [t] when full. *)

val pop : 'a t -> 'a option

val drain : 'a t -> 'a list
(** Remove and return all elements, oldest first. *)

val clear : 'a t -> unit
