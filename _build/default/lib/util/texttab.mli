(** Plain-text table rendering for the experiment harness output
    (Table V and the per-figure series dumps). *)

type align = Left | Right

val render :
  Format.formatter -> header:string list -> align:align list -> string list list -> unit
(** [render ppf ~header ~align rows] draws an aligned table with a rule
    under the header.  [align] gives per-column alignment; missing entries
    default to [Left].  Rows shorter than the header are padded with
    empty cells. *)
