lib/util/texttab.ml: Array Format List String
