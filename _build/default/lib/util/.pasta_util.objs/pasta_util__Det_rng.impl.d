lib/util/det_rng.ml: Array Char Float Int64 String
