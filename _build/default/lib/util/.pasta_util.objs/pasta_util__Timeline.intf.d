lib/util/timeline.mli: Format
