lib/util/heatmap.ml: Array Float Format
