lib/util/det_rng.mli:
