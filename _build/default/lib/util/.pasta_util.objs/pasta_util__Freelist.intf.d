lib/util/freelist.mli:
