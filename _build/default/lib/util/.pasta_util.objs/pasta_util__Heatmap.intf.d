lib/util/heatmap.mli: Format
