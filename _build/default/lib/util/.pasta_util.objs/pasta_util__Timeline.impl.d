lib/util/timeline.ml: Array Float Format List
