lib/util/freelist.ml: List
