(** Text heatmap rendering for the time-series hotness figure
    (paper Fig. 13): rows are memory blocks, columns are time windows,
    cell intensity encodes access counts. *)

val render :
  Format.formatter ->
  row_label:(int -> string) ->
  float array array ->
  unit
(** [render ppf ~row_label cells] draws one text row per matrix row.
    Intensities are normalized to the global maximum and mapped onto a
    10-step character ramp.  Empty matrices render nothing. *)

val intensity_char : float -> char
(** Map a [0;1]-normalized intensity to the character ramp
    [' ' '.' ':' '-' '=' '+' '*' '#' '%' '@'].  Values are clamped. *)
