(** Byte quantities: constructors, arithmetic helpers and human-readable
    formatting matching the unit conventions of the paper's Table V
    ("512 B", "1.00 KB", "1528.13 MB", sizes in MB by default). *)

type t = int
(** A size in bytes.  We keep a plain [int]: on a 64-bit platform this
    covers every quantity in the reproduction (device memories are <= 192
    GB). *)

val b : int -> t
val kib : int -> t
val mib : int -> t
val gib : int -> t

val to_mib_f : t -> float
(** Size expressed in binary megabytes as a float. *)

val pp : Format.formatter -> t -> unit
(** Adaptive unit: "512 B", "47.50 KB", "212.62 MB", "4.05 GB". *)

val pp_mb : Format.formatter -> t -> unit
(** Fixed MB with two decimals, as in Table V body cells. *)

val to_string : t -> string

val align_up : t -> align:int -> t
(** [align_up n ~align] rounds [n] up to a multiple of [align].
    Requires [align > 0]. *)
