type t = (int * int) list

let empty = []
let singleton ~base ~bytes = [ (base, bytes) ]
let is_empty t = t = []

let insert t ~base ~bytes =
  if bytes <= 0 then invalid_arg "Freelist.insert: non-positive size";
  let rec go = function
    | [] -> [ (base, bytes) ]
    | (b, n) :: rest when base + bytes < b -> (base, bytes) :: (b, n) :: rest
    | (b, n) :: rest when base + bytes = b -> (base, bytes + n) :: rest
    | (b, n) :: rest when b + n = base -> (
        match rest with
        | (b2, n2) :: rest2 when b + n + bytes = b2 -> (b, n + bytes + n2) :: rest2
        | _ -> (b, n + bytes) :: rest)
    | (b, n) :: rest when b + n < base -> (b, n) :: go rest
    | _ -> invalid_arg "Freelist.insert: overlapping hole"
  in
  go t

let take_first_fit t ~bytes =
  let rec go acc = function
    | [] -> None
    | (b, n) :: rest when n >= bytes ->
        let remaining = if n = bytes then rest else (b + bytes, n - bytes) :: rest in
        Some (b, List.rev_append acc remaining)
    | hole :: rest -> go (hole :: acc) rest
  in
  go [] t

let take_at t ~base ~bytes =
  let rec go acc = function
    | [] -> None
    | (b, n) :: rest when b = base ->
        if n < bytes then None
        else
          let remaining = if n = bytes then rest else (b + bytes, n - bytes) :: rest in
          Some (List.rev_append acc remaining)
    | hole :: rest -> go (hole :: acc) rest
  in
  go [] t

let total t = List.fold_left (fun acc (_, n) -> acc + n) 0 t
let holes t = t
let largest t = List.fold_left (fun acc (_, n) -> max acc n) 0 t
