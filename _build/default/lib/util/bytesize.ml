type t = int

let b n = n
let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024
let to_mib_f n = float_of_int n /. 1048576.0

let pp ppf n =
  let f = float_of_int n in
  if n < 1024 then Format.fprintf ppf "%d B" n
  else if n < 1024 * 1024 then Format.fprintf ppf "%.2f KB" (f /. 1024.0)
  else if n < 1024 * 1024 * 1024 then Format.fprintf ppf "%.2f MB" (f /. 1048576.0)
  else Format.fprintf ppf "%.2f GB" (f /. 1073741824.0)

let pp_mb ppf n = Format.fprintf ppf "%.2f" (to_mib_f n)
let to_string n = Format.asprintf "%a" pp n

let align_up n ~align =
  if align <= 0 then invalid_arg "Bytesize.align_up: align must be positive";
  (n + align - 1) / align * align
