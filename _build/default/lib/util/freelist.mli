(** Sorted, coalesced free-extent lists.

    Shared bookkeeping for the simulated allocators (the device VA
    allocator and the framework caching allocator): a list of disjoint
    [(base, bytes)] holes kept sorted by base, with adjacent holes merged
    on insertion. *)

type t
(** Immutable; operations return updated lists. *)

val empty : t
val singleton : base:int -> bytes:int -> t
val is_empty : t -> bool

val insert : t -> base:int -> bytes:int -> t
(** Add a hole, coalescing with adjacent holes.  Raises [Invalid_argument]
    if the hole overlaps an existing one or [bytes <= 0]. *)

val take_first_fit : t -> bytes:int -> (int * t) option
(** Carve [bytes] out of the lowest-based hole large enough; returns the
    carved base and the remaining list. *)

val take_at : t -> base:int -> bytes:int -> t option
(** Carve [bytes] from the front of the hole starting exactly at [base];
    [None] when no such hole exists or it is too small.  Used by best-fit
    allocation once a specific hole has been chosen. *)

val total : t -> int
val holes : t -> (int * int) list
(** In increasing base order. *)

val largest : t -> int
(** Size of the largest hole; 0 when empty. *)
