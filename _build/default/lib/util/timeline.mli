(** Time-series accumulation: ordered (time, value) samples with bucketed
    resampling and series differencing, used for the memory-usage-over-time
    figures (paper Figs. 14 and 15). *)

type t

val create : unit -> t

val record : t -> time:float -> float -> unit
(** Append a sample.  Times must be non-decreasing; a sample earlier than
    the previous one raises [Invalid_argument]. *)

val length : t -> int
val is_empty : t -> bool

val last_value : t -> float
(** 0.0 when empty. *)

val peak : t -> float
(** Maximum recorded value; 0.0 when empty. *)

val samples : t -> (float * float) array
(** All samples in recording order. *)

val duration : t -> float
(** Last time minus first time; 0.0 when fewer than two samples. *)

val bucketize : t -> buckets:int -> float array
(** [bucketize t ~buckets] resamples the step function defined by the
    samples onto [buckets] equal time slots (value at slot end; the series
    is treated as piecewise-constant, holding the last value).  Raises
    [Invalid_argument] if [buckets <= 0] or the timeline is empty. *)

val diff : float array -> float array -> float array
(** Pointwise difference of two equal-length bucketized series. *)

val pp_sparkline : Format.formatter -> float array -> unit
(** Unicode block-character sparkline scaled to the series max. *)
