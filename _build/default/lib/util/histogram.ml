type t = (string, int) Hashtbl.t

let create () = Hashtbl.create 64

let add t ?(count = 1) key =
  match Hashtbl.find_opt t key with
  | Some n -> Hashtbl.replace t key (n + count)
  | None -> Hashtbl.add t key count

let count t key = Option.value ~default:0 (Hashtbl.find_opt t key)
let total t = Hashtbl.fold (fun _ n acc -> acc + n) t 0
let distinct t = Hashtbl.length t

let to_sorted t =
  let items = Hashtbl.fold (fun k n acc -> (k, n) :: acc) t [] in
  List.sort
    (fun (k1, n1) (k2, n2) ->
      match compare n2 n1 with 0 -> compare k1 k2 | c -> c)
    items

let top t k =
  let sorted = to_sorted t in
  List.filteri (fun i _ -> i < k) sorted

let merge a b =
  let out = create () in
  Hashtbl.iter (fun k n -> add out ~count:n k) a;
  Hashtbl.iter (fun k n -> add out ~count:n k) b;
  out

let iter f t = Hashtbl.iter f t

let pp ?limit ppf t =
  let rows = to_sorted t in
  let rows = match limit with None -> rows | Some k -> List.filteri (fun i _ -> i < k) rows in
  List.iter (fun (k, n) -> Format.fprintf ppf "%-60s %10d@." k n) rows
