type align = Left | Right

let render ppf ~header ~align rows =
  let ncols = List.length header in
  let pad_row r =
    let len = List.length r in
    if len >= ncols then List.filteri (fun i _ -> i < ncols) r
    else r @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map pad_row rows in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let align_of i =
    match List.nth_opt align i with Some a -> a | None -> Left
  in
  let pp_cell i cell =
    let w = widths.(i) in
    match align_of i with
    | Left -> Format.fprintf ppf "%-*s" w cell
    | Right -> Format.fprintf ppf "%*s" w cell
  in
  let pp_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Format.pp_print_string ppf "  ";
        pp_cell i cell)
      row;
    Format.pp_print_newline ppf ()
  in
  pp_row header;
  let rule_width =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  Format.fprintf ppf "%s@." (String.make rule_width '-');
  List.iter pp_row rows
