module Imap = Map.Make (Int)

type obj =
  | Tensor of { ptr : int; bytes : int; tag : string }
  | Device_alloc of { ptr : int; bytes : int; managed : bool }
  | Unknown of int

let obj_key = function
  | Tensor { ptr; _ } | Device_alloc { ptr; _ } -> ptr
  | Unknown addr -> addr

let obj_bytes = function
  | Tensor { bytes; _ } | Device_alloc { bytes; _ } -> bytes
  | Unknown _ -> 0

let obj_label = function
  | Tensor { tag; _ } -> "tensor:" ^ tag
  | Device_alloc { managed; _ } -> if managed then "managed-alloc" else "device-alloc"
  | Unknown _ -> "unknown"

type alloc_rec = { a_bytes : int; managed : bool }
type tensor_rec = { t_bytes : int; tag : string }

type t = {
  mutable allocs : alloc_rec Imap.t;
  mutable tensors : tensor_rec Imap.t;
}

let create () = { allocs = Imap.empty; tensors = Imap.empty }

let on_alloc t ~addr ~bytes ~managed =
  t.allocs <- Imap.add addr { a_bytes = bytes; managed } t.allocs

let on_free t ~addr = t.allocs <- Imap.remove addr t.allocs

let on_tensor_alloc t ~ptr ~bytes ~tag =
  t.tensors <- Imap.add ptr { t_bytes = bytes; tag } t.tensors

let on_tensor_free t ~ptr = t.tensors <- Imap.remove ptr t.tensors

let find_covering map addr size_of =
  match Imap.find_last_opt (fun b -> b <= addr) map with
  | Some (base, r) when addr < base + size_of r -> Some (base, r)
  | _ -> None

let resolve t addr =
  match find_covering t.tensors addr (fun r -> r.t_bytes) with
  | Some (ptr, r) -> Tensor { ptr; bytes = r.t_bytes; tag = r.tag }
  | None -> (
      match find_covering t.allocs addr (fun r -> r.a_bytes) with
      | Some (ptr, r) -> Device_alloc { ptr; bytes = r.a_bytes; managed = r.managed }
      | None -> Unknown addr)

let live_objects t = Imap.cardinal t.allocs + Imap.cardinal t.tensors
let live_allocs t = List.map (fun (b, r) -> (b, r.a_bytes)) (Imap.bindings t.allocs)
let map_bytes t = 16 * max 1 (live_objects t)
