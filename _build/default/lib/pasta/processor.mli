(** The PASTA event processor (paper §III-B): the dispatch and
    preprocessing layer between the event handler and the tools.

    It maintains the memory-object registry from the event stream, applies
    the range filter, enriches fine-grained data (resolving raw addresses
    to objects), and routes each event to the active tool's callbacks.
    For GPU-accelerated analysis it accumulates per-kernel region
    aggregates and flushes them as object-level summaries when the kernel
    completes. *)

type stats = {
  mutable events_seen : int;
  mutable events_dispatched : int;
  mutable kernels_seen : int;
  mutable summaries_flushed : int;
}

type t

val create : ?range:Range.t -> device:int -> unit -> t

val set_tool : t -> Tool.t -> unit
val clear_tool : t -> unit
val tool : t -> Tool.t option

val objmap : t -> Objmap.t
val range : t -> Range.t
val stats : t -> stats

val submit : t -> time_us:float -> Event.payload -> unit
(** Feed one normalized event.  Registry updates happen regardless of the
    range filter; tool dispatch respects it. *)

val submit_region :
  t -> Event.kernel_info -> base:int -> extent:int -> accesses:int -> written:bool -> unit
(** Accumulate a device-side region aggregate for the kernel currently
    executing (GPU-accelerated mode). *)

val flush_kernel_summary : t -> time_us:float -> Event.kernel_info -> unit
(** Resolve the accumulated regions to objects, aggregate per object, emit
    [Kernel_region] events and call the tool's [on_mem_summary]. *)

val submit_access : t -> time_us:float -> Event.kernel_info -> Event.mem_access -> unit
(** Feed one host-analyzed trace record (CPU modes). *)

val submit_profile :
  t -> time_us:float -> Event.kernel_info -> Gpusim.Kernel.profile -> unit
(** Feed a per-kernel behaviour profile (instruction-level mode);
    dispatched to the tool's [on_kernel_profile] when in range. *)

val annot_start : t -> string -> unit
val annot_end : t -> string -> unit
(** Range annotations, also forwarded as [Annotation] events. *)
