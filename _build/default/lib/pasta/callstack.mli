(** Cross-layer call-stack utilities (paper §III-F2, Fig. 4).

    PASTA distinguishes itself by joining the low-level C/C++ backtrace
    (libbacktrace on real hardware) with the high-level Python stack
    (CPython frame walking) into one cross-layer view: native frames
    innermost-first, then the Python frames that led there. *)

type t = {
  native : Gpusim.Hostctx.frame list;  (** innermost first *)
  python : Gpusim.Hostctx.frame list;  (** innermost first *)
}

val of_kernel : Event.kernel_info -> t
(** The stacks captured when the kernel was launched. *)

val depth : t -> int

val pp : Format.formatter -> t -> unit
(** Fig. 4 layout: native frames first (innermost to outermost, ending in
    the libc entry frames), then the Python frames innermost to
    outermost. *)
