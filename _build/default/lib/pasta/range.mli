(** Range-specific analysis (paper §III-F1).

    Two mechanisms select the sub-region of the run a tool should see:

    - grid-id bounds ([START_GRID_ID] / [END_GRID_ID] environment
      variables) for plain GPU applications;
    - [pasta.start ()] / [pasta.end ()] code annotations, for DL
      workloads where the interesting unit is a layer, a forward/backward
      pass, or any custom code region.

    When one or more annotations are seen the range becomes
    annotation-driven: events are in range only inside a start/end pair.
    Grid bounds apply on top in all cases. *)

type t

val create :
  ?start_grid:int -> ?end_grid:int -> ?annotations_only:bool -> unit -> t
(** With [annotations_only] the range starts closed and only annotation
    pairs open it; otherwise everything is in range until the first
    annotation is seen, after which the range becomes annotation-driven. *)

val of_config : unit -> t
(** Bounds from {!Config.start_grid_id} / {!Config.end_grid_id}. *)

val annot_start : t -> string -> unit
val annot_end : t -> string -> unit
(** Raises [Invalid_argument] on unbalanced [annot_end]. *)

val annotation_depth : t -> int
val saw_annotations : t -> bool

val active : t -> grid_id:int -> bool
(** Whether a kernel-scoped event with this grid id is in range. *)

val active_now : t -> bool
(** Whether non-kernel events are in range (annotation state only). *)
