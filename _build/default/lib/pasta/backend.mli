(** Vendor-abstraction layer: attach any supported profiling substrate to
    a device and pump normalized events into an event processor
    (paper §III-D, "Support for Diverse GPU Platforms").

    Supporting a new accelerator means adding one constructor here and a
    normalization function in {!Normalize} — tools and the processor are
    untouched, which is the modularity claim of the paper's design. *)

type kind = Sanitizer | Nvbit | Rocprofiler | Xprof

val kind_to_string : kind -> string

val default_kind_for : Gpusim.Device.t -> kind
(** Sanitizer on NVIDIA parts, Rocprofiler on AMD parts, Xprof on Google
    parts. *)

type t

val attach : kind -> Gpusim.Device.t -> processor:Processor.t -> t
(** Subscribe to every coarse event domain and forward normalized events
    with device timestamps.  Raises [Invalid_argument] on a vendor
    mismatch (e.g. [Rocprofiler] on an NVIDIA device). *)

val detach : t -> unit
val kind : t -> kind
val phases : t -> Vendor.Phases.t
val device : t -> Gpusim.Device.t

val enable_fine_grained : t -> Tool.fine_grained -> unit
(** Install the instrumentation the tool's analysis model needs:

    - [Gpu_accelerated]: device-resident aggregation (Sanitizer patching
      or ROCProfiler kernel patching) feeding
      {!Processor.submit_region} / {!Processor.flush_kernel_summary};
    - [Cpu_sanitizer]: Sanitizer host-buffer tracing feeding
      {!Processor.submit_access};
    - [Cpu_nvbit]: NVBit memory tracing (requires an [Nvbit] backend);
    - [No_fine_grained]: nothing.

    Raises [Invalid_argument] on unsupported backend/model combinations. *)
