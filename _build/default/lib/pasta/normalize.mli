(** Vendor-record normalization (paper §III-G, "Handling Differences in
    Low-Level Event Semantics").

    Each vendor substrate reports the same semantic events with different
    shapes — HIP vs CUDA API names, allocation/release as one
    signed-delta record on AMD vs two distinct records on NVIDIA, agents
    vs devices.  These functions map every vendor record onto the unified
    {!Event.payload} vocabulary. *)

val canonical_api : string -> string
(** Strip the vendor prefix: "cudaMalloc", "hipMalloc" and
    "TpuExecutor_Malloc" all become "Malloc"; "cuLaunchKernel" and
    "hipModuleLaunchKernel" become "LaunchKernel"; unknown names pass
    through unchanged. *)

val direction_of_kind : Gpusim.Device.memcpy_kind -> Event.copy_direction

val of_sanitizer : Vendor.Sanitizer.callback -> Event.payload list
val of_nvbit : Vendor.Nvbit.cuda_event -> Event.payload list
val of_rocprofiler : Vendor.Rocprofiler.record -> Event.payload list

val of_xprof : Vendor.Xprof.record -> Event.payload list
(** TPU XSpace records.  Vendor-unique planes ([Systolic_array_active])
    normalize to nothing — the paper's "ignored on other accelerators"
    rule — while programs, buffers and feeds map to the shared
    vocabulary. *)
