type t = {
  start_grid : int option;
  end_grid : int option;
  mutable depth : int;
  mutable ever_annotated : bool;
}

let create ?start_grid ?end_grid ?(annotations_only = false) () =
  { start_grid; end_grid; depth = 0; ever_annotated = annotations_only }

let of_config () =
  create ?start_grid:(Config.start_grid_id ()) ?end_grid:(Config.end_grid_id ()) ()

let annot_start t _label =
  t.depth <- t.depth + 1;
  t.ever_annotated <- true

let annot_end t label =
  if t.depth <= 0 then
    invalid_arg ("Range.annot_end: pasta.end without pasta.start (" ^ label ^ ")");
  t.depth <- t.depth - 1

let annotation_depth t = t.depth
let saw_annotations t = t.ever_annotated

let grid_ok t grid_id =
  (match t.start_grid with Some s -> grid_id >= s | None -> true)
  && match t.end_grid with Some e -> grid_id <= e | None -> true

let annot_ok t = (not t.ever_annotated) || t.depth > 0

let active t ~grid_id = grid_ok t grid_id && annot_ok t
let active_now t = annot_ok t
