(** Inefficiency-location knobs (paper §III-F2).

    Predefined selectors such as [MAX_MEM_REFERENCED_KERNEL] and
    [MAX_CALLED_KERNEL] track the extreme kernel under a metric without
    paying for full-context capture on every event; custom knobs are just
    new named trackers.  Once the run finishes, the winning kernel's
    cross-layer call stack pinpoints the inefficiency (Fig. 4). *)

type t

val max_mem_referenced_kernel : string
val max_called_kernel : string

val create : string -> t
(** A named max-tracker. *)

val name : t -> string

val observe : t -> kernel:Event.kernel_info -> metric:int -> unit
(** Keep the kernel iff [metric] beats the current maximum.  For
    invocation-count style knobs, pass the running count. *)

val best : t -> (Event.kernel_info * int) option

val pp_report : Format.formatter -> t -> unit
(** Winning kernel, metric, and its cross-layer call stack. *)
