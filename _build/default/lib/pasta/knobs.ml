type t = {
  knob_name : string;
  mutable best : (Event.kernel_info * int) option;
}

let max_mem_referenced_kernel = "MAX_MEM_REFERENCED_KERNEL"
let max_called_kernel = "MAX_CALLED_KERNEL"

let create knob_name = { knob_name; best = None }
let name t = t.knob_name

let observe t ~kernel ~metric =
  match t.best with
  | Some (_, m) when m >= metric -> ()
  | _ -> t.best <- Some (kernel, metric)

let best t = t.best

let pp_report ppf t =
  match t.best with
  | None -> Format.fprintf ppf "%s: no kernels observed@." t.knob_name
  | Some (k, metric) ->
      Format.fprintf ppf "%s: %s (metric=%d)@." t.knob_name k.Event.name metric;
      Callstack.pp ppf (Callstack.of_kernel k)
