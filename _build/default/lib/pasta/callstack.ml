module H = Gpusim.Hostctx

type t = { native : H.frame list; python : H.frame list }

let of_kernel (k : Event.kernel_info) =
  { native = k.Event.native_stack; python = k.Event.py_stack }

let depth t = List.length t.native + List.length t.python

(* The process-entry frames every native backtrace bottoms out in. *)
let libc_frames =
  [
    { H.file = "../sysdeps/nptl/libc_start_call_main.h"; line = 58; symbol = "__libc_start_call_main" };
    { H.file = "../csu/libc-start.c"; line = 392; symbol = "__libc_start_main_impl" };
  ]

let pp ppf t =
  List.iter (fun f -> Format.fprintf ppf "%a@." H.pp_frame f) t.native;
  if t.native <> [] then begin
    Format.fprintf ppf "...@.";
    List.iter (fun f -> Format.fprintf ppf "%a@." H.pp_frame f) libc_frames
  end;
  List.iter (fun f -> Format.fprintf ppf "%a@." H.pp_frame f) t.python
