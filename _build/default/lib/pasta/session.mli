(** A profiling session: the [LD_PRELOAD] injection equivalent.

    Attaching a session wires the whole PASTA stack onto a device: the
    vendor backend for low-level events, the DL-framework hooks for
    high-level events, the event processor in between, and the selected
    tool — plus whatever fine-grained instrumentation the tool's analysis
    model requires.  Detaching tears it all down and returns the run's
    accounting.

    {!start} / {!end_} implement the [pasta.start()] / [pasta.end()]
    Python annotations (paper Listing 1) against the innermost active
    session. *)

type t

type result = {
  tool_name : string;
  phases : Vendor.Phases.t;  (** profiling-time phase breakdown (Fig. 10) *)
  events_seen : int;
  events_dispatched : int;
  kernels : int;
  elapsed_us : float;  (** simulated device time spent while attached *)
  report : Format.formatter -> unit;  (** the tool's report *)
}

val attach :
  ?backend:Backend.kind ->
  ?range:Range.t ->
  ?sample_rate:int ->
  tool:Tool.t ->
  Gpusim.Device.t ->
  t
(** [backend] defaults per vendor ({!Backend.default_kind_for}), except
    that a tool requiring [Cpu_nvbit] forces the NVBit backend.
    [sample_rate] caps materialized records per kernel region (defaults to
    [ACCEL_PROF_ENV_SAMPLE_RATE] when set). *)

val detach : t -> result

val run :
  ?backend:Backend.kind ->
  ?range:Range.t ->
  ?sample_rate:int ->
  tool:Tool.t ->
  Gpusim.Device.t ->
  (unit -> 'a) ->
  'a * result
(** Attach, run the workload, detach — even on exception. *)

val processor : t -> Processor.t
val tool : t -> Tool.t

val start : ?label:string -> unit -> unit
(** [pasta.start()]: open an analysis range on the innermost active
    session; a no-op when no session is attached. *)

val end_ : ?label:string -> unit -> unit
(** [pasta.end()]. *)
