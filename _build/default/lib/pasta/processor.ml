type stats = {
  mutable events_seen : int;
  mutable events_dispatched : int;
  mutable kernels_seen : int;
  mutable summaries_flushed : int;
}

type pending_region = { p_base : int; p_extent : int; p_accesses : int; p_written : bool }

type t = {
  device : int;
  objmap : Objmap.t;
  range : Range.t;
  mutable tool : Tool.t option;
  stats : stats;
  mutable pending : (int * pending_region list) option;
      (** (grid_id, regions) of the kernel currently being aggregated *)
}

let create ?range ~device () =
  let range = match range with Some r -> r | None -> Range.of_config () in
  {
    device;
    objmap = Objmap.create ();
    range;
    tool = None;
    stats = { events_seen = 0; events_dispatched = 0; kernels_seen = 0; summaries_flushed = 0 };
    pending = None;
  }

let set_tool t tool = t.tool <- Some tool
let clear_tool t = t.tool <- None
let tool t = t.tool
let objmap t = t.objmap
let range t = t.range
let stats t = t.stats

let update_registry t payload =
  match payload with
  | Event.Memory_alloc { addr; bytes; managed } ->
      Objmap.on_alloc t.objmap ~addr ~bytes ~managed
  | Event.Memory_free { addr; _ } -> Objmap.on_free t.objmap ~addr
  | Event.Tensor_alloc { ptr; bytes; tag; _ } ->
      Objmap.on_tensor_alloc t.objmap ~ptr ~bytes ~tag
  | Event.Tensor_free { ptr; _ } -> Objmap.on_tensor_free t.objmap ~ptr
  | _ -> ()

let in_range t payload =
  match payload with
  | Event.Kernel_launch { info; _ }
  | Event.Global_access { kernel = info; _ }
  | Event.Shared_access { kernel = info; _ }
  | Event.Kernel_region { kernel = info; _ }
  | Event.Barrier { kernel = info; _ } ->
      Range.active t.range ~grid_id:info.Event.grid_id
  | _ -> Range.active_now t.range

let dispatch t (ev : Event.t) =
  match t.tool with
  | None -> ()
  | Some tool ->
      t.stats.events_dispatched <- t.stats.events_dispatched + 1;
      tool.Tool.on_event ev;
      (match ev.Event.payload with
      | Event.Kernel_launch { info; phase = `Begin } -> tool.Tool.on_kernel_begin info
      | Event.Kernel_launch { info; phase = `End s } -> tool.Tool.on_kernel_end info s
      | Event.Operator { name; phase; seq } -> tool.Tool.on_operator name phase seq
      | Event.Tensor_alloc { ptr; bytes; tag; _ } ->
          tool.Tool.on_tensor (`Alloc (ptr, bytes, tag))
      | Event.Tensor_free { ptr; bytes; _ } -> tool.Tool.on_tensor (`Free (ptr, bytes))
      | _ -> ())

let submit t ~time_us payload =
  t.stats.events_seen <- t.stats.events_seen + 1;
  update_registry t payload;
  (match payload with
  | Event.Kernel_launch { phase = `Begin; _ } ->
      t.stats.kernels_seen <- t.stats.kernels_seen + 1
  | _ -> ());
  if in_range t payload then
    dispatch t { Event.device = t.device; time_us; payload }

let submit_region t (info : Event.kernel_info) ~base ~extent ~accesses ~written =
  let region = { p_base = base; p_extent = extent; p_accesses = accesses; p_written = written } in
  match t.pending with
  | Some (gid, regions) when gid = info.Event.grid_id ->
      t.pending <- Some (gid, region :: regions)
  | _ -> t.pending <- Some (info.Event.grid_id, [ region ])

let flush_kernel_summary t ~time_us (info : Event.kernel_info) =
  match t.pending with
  | Some (gid, regions) when gid = info.Event.grid_id ->
      t.pending <- None;
      t.stats.summaries_flushed <- t.stats.summaries_flushed + 1;
      if Range.active t.range ~grid_id:info.Event.grid_id then begin
        (* Emit one Kernel_region event per raw region... *)
        List.iter
          (fun r ->
            dispatch t
              {
                Event.device = t.device;
                time_us;
                payload =
                  Event.Kernel_region
                    {
                      kernel = info;
                      region =
                        {
                          Event.base = r.p_base;
                          extent = r.p_extent;
                          accesses = r.p_accesses;
                          written = r.p_written;
                        };
                    };
              })
          (List.rev regions);
        (* ...and the object-level aggregate for the tool. *)
        match t.tool with
        | None -> ()
        | Some tool ->
            let by_obj = Hashtbl.create 8 in
            List.iter
              (fun r ->
                let obj = Objmap.resolve t.objmap r.p_base in
                let key = Objmap.obj_key obj in
                match Hashtbl.find_opt by_obj key with
                | Some (o, count) -> Hashtbl.replace by_obj key (o, count + r.p_accesses)
                | None -> Hashtbl.add by_obj key (obj, r.p_accesses))
              regions;
            let summary =
              Hashtbl.fold (fun _ (o, c) acc -> (o, c) :: acc) by_obj []
              |> List.sort (fun (a, _) (b, _) -> compare (Objmap.obj_key a) (Objmap.obj_key b))
            in
            tool.Tool.on_mem_summary info summary
      end
  | _ -> ()

let submit_access t ~time_us (info : Event.kernel_info) access =
  t.stats.events_seen <- t.stats.events_seen + 1;
  if Range.active t.range ~grid_id:info.Event.grid_id then begin
    dispatch t
      {
        Event.device = t.device;
        time_us;
        payload = Event.Global_access { kernel = info; access };
      };
    match t.tool with Some tool -> tool.Tool.on_access info access | None -> ()
  end

let submit_profile t ~time_us (info : Event.kernel_info) profile =
  t.stats.events_seen <- t.stats.events_seen + 1;
  ignore time_us;
  if Range.active t.range ~grid_id:info.Event.grid_id then
    match t.tool with
    | Some tool -> tool.Tool.on_kernel_profile info profile
    | None -> ()

let annot_start t label =
  Range.annot_start t.range label;
  submit t ~time_us:0.0 (Event.Annotation { label; phase = `Start })

let annot_end t label =
  Range.annot_end t.range label;
  submit t ~time_us:0.0 (Event.Annotation { label; phase = `End })
