module D = Gpusim.Device

let strip_prefix s p =
  if String.length s >= String.length p && String.sub s 0 (String.length p) = p then
    Some (String.sub s (String.length p) (String.length s - String.length p))
  else None

let canonical_api name =
  match strip_prefix name "cuda" with
  | Some rest -> rest
  | None -> (
      match strip_prefix name "hip" with
      | Some rest -> (
          match rest with "ModuleLaunchKernel" -> "LaunchKernel" | r -> r)
      | None -> (
          match strip_prefix name "TpuExecutor_" with
          | Some rest -> rest
          | None -> (
              match strip_prefix name "cu" with
              | Some rest -> rest
              | None -> name)))

let direction_of_kind = function
  | D.Host_to_device -> `H2d
  | D.Device_to_host -> `D2h
  | D.Device_to_device -> `D2d
  | D.Peer d -> `P2p d

let launch_payload info phase =
  Event.Kernel_launch { info = Event.kernel_info_of_launch info; phase }

let end_summary (s : D.exec_stats) =
  {
    Event.duration_us = s.D.duration_us;
    true_accesses = s.D.true_accesses;
    faulted_pages = s.D.faulted_pages;
  }

let of_sanitizer (cb : Vendor.Sanitizer.callback) =
  match cb with
  | Vendor.Sanitizer.Api { name; phase } ->
      [ Event.Driver_call { name = canonical_api name; phase } ]
  | Launch_begin info -> [ launch_payload info `Begin ]
  | Launch_end (info, stats) -> [ launch_payload info (`End (end_summary stats)) ]
  | Memcpy_cb { bytes; kind; stream; _ } ->
      [ Event.Memory_copy { bytes; direction = direction_of_kind kind; stream } ]
  | Memset_cb { addr; bytes; value; _ } -> [ Event.Memory_set { addr; bytes; value } ]
  | Alloc_cb alloc ->
      [
        Event.Memory_alloc
          {
            addr = alloc.Gpusim.Device_mem.base;
            bytes = alloc.Gpusim.Device_mem.bytes;
            managed = alloc.Gpusim.Device_mem.managed;
          };
      ]
  | Free_cb alloc ->
      [
        Event.Memory_free
          { addr = alloc.Gpusim.Device_mem.base; bytes = alloc.Gpusim.Device_mem.bytes };
      ]
  | Sync_cb scope -> [ Event.Synchronization { scope } ]

let of_nvbit (ev : Vendor.Nvbit.cuda_event) =
  match ev with
  | Vendor.Nvbit.Ev_launch_begin info -> [ launch_payload info `Begin ]
  | Ev_launch_end (info, stats) -> [ launch_payload info (`End (end_summary stats)) ]
  | Ev_memcpy { bytes; kind } ->
      [ Event.Memory_copy { bytes; direction = direction_of_kind kind; stream = 0 } ]
  | Ev_malloc alloc ->
      [
        Event.Memory_alloc
          {
            addr = alloc.Gpusim.Device_mem.base;
            bytes = alloc.Gpusim.Device_mem.bytes;
            managed = alloc.Gpusim.Device_mem.managed;
          };
      ]
  | Ev_free alloc ->
      [
        Event.Memory_free
          { addr = alloc.Gpusim.Device_mem.base; bytes = alloc.Gpusim.Device_mem.bytes };
      ]
  | Ev_sync -> [ Event.Synchronization { scope = `Device } ]

let of_rocprofiler (r : Vendor.Rocprofiler.record) =
  match r with
  | Vendor.Rocprofiler.Hip_api { name; phase } ->
      [ Event.Runtime_call { name = canonical_api name; phase } ]
  | Kernel_dispatch { dispatch; phase = `Begin; _ } -> [ launch_payload dispatch `Begin ]
  | Kernel_dispatch { dispatch; phase = `End; stats = Some s; _ } ->
      [ launch_payload dispatch (`End (end_summary s)) ]
  | Kernel_dispatch { phase = `End; stats = None; _ } -> []
  | Memory_copy { bytes; kind } ->
      [ Event.Memory_copy { bytes; direction = direction_of_kind kind; stream = 0 } ]
  | Memory_allocate { address; size_delta; _ } ->
      (* The AMD convention reports release as a negative-sized allocation;
         normalize to distinct alloc/free events. *)
      if size_delta >= 0 then
        [ Event.Memory_alloc { addr = address; bytes = size_delta; managed = false } ]
      else [ Event.Memory_free { addr = address; bytes = -size_delta } ]
  | Scratch_memory _ -> []
  | Sync_event -> [ Event.Synchronization { scope = `Device } ]

let of_xprof (r : Vendor.Xprof.record) =
  match r with
  | Vendor.Xprof.Program_execute { dispatch; phase = `Begin; _ } ->
      [ launch_payload dispatch `Begin ]
  | Program_execute { dispatch; phase = `End; stats = Some s; _ } ->
      [ launch_payload dispatch (`End (end_summary s)) ]
  | Program_execute { phase = `End; stats = None; _ } -> []
  | Buffer_allocate { address; bytes } ->
      [ Event.Memory_alloc { addr = address; bytes; managed = false } ]
  | Buffer_deallocate { address; bytes } ->
      [ Event.Memory_free { addr = address; bytes } ]
  | Infeed { bytes } ->
      [ Event.Memory_copy { bytes; direction = `H2d; stream = 0 } ]
  | Outfeed { bytes } ->
      [ Event.Memory_copy { bytes; direction = `D2h; stream = 0 } ]
  | Step_marker -> [ Event.Synchronization { scope = `Device } ]
  | Systolic_array_active _ ->
      (* Vendor-unique plane with no cross-accelerator semantics. *)
      []
