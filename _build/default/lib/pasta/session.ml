type t = {
  device : Gpusim.Device.t;
  backend : Backend.t;
  dl : Dl_hooks.t;
  proc : Processor.t;
  the_tool : Tool.t;
  start_us : float;
  saved_sample_cap : int;
}

type result = {
  tool_name : string;
  phases : Vendor.Phases.t;
  events_seen : int;
  events_dispatched : int;
  kernels : int;
  elapsed_us : float;
  report : Format.formatter -> unit;
}

let active : t list ref = ref []

let attach ?backend ?range ?sample_rate ~tool device =
  let kind =
    match backend with
    | Some k -> k
    | None -> (
        match tool.Tool.fine_grained with
        | Tool.Cpu_nvbit -> Backend.Nvbit
        | _ -> Backend.default_kind_for device)
  in
  let proc = Processor.create ?range ~device:(Gpusim.Device.id device) () in
  Processor.set_tool proc tool;
  let b = Backend.attach kind device ~processor:proc in
  Backend.enable_fine_grained b tool.Tool.fine_grained;
  let dl = Dl_hooks.attach device ~processor:proc in
  let saved_sample_cap = Gpusim.Device.sample_cap device in
  (match (sample_rate, Config.sample_rate ()) with
  | Some r, _ | None, Some r -> Gpusim.Device.set_sample_cap device r
  | None, None -> ());
  let s =
    {
      device;
      backend = b;
      dl;
      proc;
      the_tool = tool;
      start_us = Gpusim.Device.now_us device;
      saved_sample_cap;
    }
  in
  active := s :: !active;
  s

let detach s =
  active := List.filter (fun x -> x != s) !active;
  Dl_hooks.detach s.dl;
  let phases = Vendor.Phases.add (Vendor.Phases.create ()) (Backend.phases s.backend) in
  Backend.detach s.backend;
  Gpusim.Device.set_sample_cap s.device s.saved_sample_cap;
  let stats = Processor.stats s.proc in
  {
    tool_name = s.the_tool.Tool.name;
    phases;
    events_seen = stats.Processor.events_seen;
    events_dispatched = stats.Processor.events_dispatched;
    kernels = stats.Processor.kernels_seen;
    elapsed_us = Gpusim.Device.now_us s.device -. s.start_us;
    report = s.the_tool.Tool.report;
  }

let run ?backend ?range ?sample_rate ~tool device f =
  let s = attach ?backend ?range ?sample_rate ~tool device in
  match f () with
  | v -> (v, detach s)
  | exception e ->
      let (_ : result) = detach s in
      raise e

let processor s = s.proc
let tool s = s.the_tool

let start ?(label = "region") () =
  match !active with
  | [] -> ()
  | s :: _ -> Processor.annot_start s.proc label

let end_ ?(label = "region") () =
  match !active with
  | [] -> ()
  | s :: _ -> Processor.annot_end s.proc label
