lib/pasta/config.ml: Hashtbl Option Sys
