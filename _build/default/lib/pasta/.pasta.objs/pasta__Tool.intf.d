lib/pasta/tool.mli: Event Format Gpusim Objmap
