lib/pasta/objmap.ml: Int List Map
