lib/pasta/objmap.mli:
