lib/pasta/tool.ml: Event Format Gpusim Objmap
