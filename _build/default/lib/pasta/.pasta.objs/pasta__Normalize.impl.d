lib/pasta/normalize.ml: Event Gpusim String Vendor
