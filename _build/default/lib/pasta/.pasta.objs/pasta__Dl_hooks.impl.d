lib/pasta/dl_hooks.ml: Dlfw Event Gpusim Printf Processor
