lib/pasta/knobs.ml: Callstack Event Format
