lib/pasta/config.mli:
