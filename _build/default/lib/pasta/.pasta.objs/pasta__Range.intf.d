lib/pasta/range.mli:
