lib/pasta/backend.ml: Event Gpusim List Normalize Objmap Processor Tool Vendor
