lib/pasta/processor.mli: Event Gpusim Objmap Range Tool
