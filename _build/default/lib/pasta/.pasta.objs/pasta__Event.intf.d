lib/pasta/event.mli: Format Gpusim
