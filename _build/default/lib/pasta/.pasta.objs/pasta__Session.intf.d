lib/pasta/session.mli: Backend Format Gpusim Processor Range Tool Vendor
