lib/pasta/range.ml: Config
