lib/pasta/callstack.ml: Event Format Gpusim List
