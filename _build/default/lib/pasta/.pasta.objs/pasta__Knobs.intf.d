lib/pasta/knobs.mli: Event Format
