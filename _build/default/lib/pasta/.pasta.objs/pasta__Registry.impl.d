lib/pasta/registry.ml: Config Hashtbl List Option Tool
