lib/pasta/registry.mli: Tool
