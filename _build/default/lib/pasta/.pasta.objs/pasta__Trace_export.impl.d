lib/pasta/trace_export.ml: Buffer Char Event Float Format Fun Gpusim Hashtbl List Printf String Tool
