lib/pasta/processor.ml: Event Hashtbl List Objmap Range Tool
