lib/pasta/callstack.mli: Event Format Gpusim
