lib/pasta/trace_export.mli: Event Tool
