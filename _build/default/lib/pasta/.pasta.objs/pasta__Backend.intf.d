lib/pasta/backend.mli: Gpusim Processor Tool Vendor
