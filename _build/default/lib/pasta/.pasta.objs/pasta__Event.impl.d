lib/pasta/event.ml: Format Gpusim Pasta_util
