lib/pasta/dl_hooks.mli: Gpusim Processor
