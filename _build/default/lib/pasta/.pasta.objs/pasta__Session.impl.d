lib/pasta/session.ml: Backend Config Dl_hooks Format Gpusim List Processor Tool Vendor
