lib/pasta/normalize.mli: Event Gpusim Vendor
