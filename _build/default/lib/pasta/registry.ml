let tools : (string, unit -> Tool.t) Hashtbl.t = Hashtbl.create 16

let register name make = Hashtbl.replace tools name make
let find name = Hashtbl.find_opt tools name

let names () =
  Hashtbl.fold (fun k _ acc -> k :: acc) tools [] |> List.sort compare

let resolve_from_config () =
  Option.bind (Config.tool_name ()) (fun name ->
      Option.map (fun make -> make ()) (find name))
