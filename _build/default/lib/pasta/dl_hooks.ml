type t = { device : Gpusim.Device.t; mem_name : string; op_name : string }

let counter = ref 0

let attach device ~processor =
  incr counter;
  let suffix = Printf.sprintf "%d-%d" (Gpusim.Device.id device) !counter in
  let t =
    {
      device;
      mem_name = "pasta-mem-" ^ suffix;
      op_name = "pasta-op-" ^ suffix;
    }
  in
  Dlfw.Callbacks.add_memory_observer t.mem_name (fun ev ->
      if ev.Dlfw.Callbacks.device_id = Gpusim.Device.id device then begin
        let time_us = Gpusim.Device.now_us device in
        let payload =
          if ev.Dlfw.Callbacks.size_delta >= 0 then
            Event.Tensor_alloc
              {
                ptr = ev.Dlfw.Callbacks.ptr;
                bytes = ev.Dlfw.Callbacks.size_delta;
                pool_allocated = ev.Dlfw.Callbacks.total_allocated;
                pool_reserved = ev.Dlfw.Callbacks.total_reserved;
                tag = ev.Dlfw.Callbacks.tag;
              }
          else
            Event.Tensor_free
              {
                ptr = ev.Dlfw.Callbacks.ptr;
                bytes = -ev.Dlfw.Callbacks.size_delta;
                pool_allocated = ev.Dlfw.Callbacks.total_allocated;
                pool_reserved = ev.Dlfw.Callbacks.total_reserved;
              }
        in
        Processor.submit processor ~time_us payload
      end);
  Dlfw.Callbacks.add_op_observer t.op_name (fun ev ->
      if ev.Dlfw.Callbacks.device_id = Gpusim.Device.id device then
        Processor.submit processor ~time_us:(Gpusim.Device.now_us device)
          (Event.Operator
             {
               name = ev.Dlfw.Callbacks.op_name;
               phase = (match ev.Dlfw.Callbacks.phase with `Begin -> `Enter | `End -> `Exit);
               seq = ev.Dlfw.Callbacks.seq;
             }));
  t

let detach t =
  Dlfw.Callbacks.remove_memory_observer t.mem_name;
  Dlfw.Callbacks.remove_op_observer t.op_name
