(** DL-framework integration (paper §III-E): subscribe to the framework's
    callback surface ([reportMemoryUsage] / [RecordFunction]) and forward
    tensor and operator events, normalized, into the event processor.

    This is the half of PASTA that vendor tools cannot see — it closes the
    gap between pool-managed tensors and the raw runtime allocations the
    profiling libraries report. *)

type t

val attach : Gpusim.Device.t -> processor:Processor.t -> t
(** Events from other devices are filtered out, which is what makes
    multi-GPU profiling attribute tensors to the right rank. *)

val detach : t -> unit
