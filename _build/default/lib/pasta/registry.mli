(** Named tool registry: the mechanism behind selecting a PASTA tool with
    a command-line option or the [PASTA_TOOL] environment variable
    (paper §III-C, workflow step 4). *)

val register : string -> (unit -> Tool.t) -> unit
(** Later registrations under the same name replace earlier ones. *)

val find : string -> (unit -> Tool.t) option
val names : unit -> string list
(** Sorted. *)

val resolve_from_config : unit -> Tool.t option
(** Instantiate the tool named by [PASTA_TOOL], if any. *)
