let overrides : (string, string) Hashtbl.t = Hashtbl.create 8

let set k v = Hashtbl.replace overrides k v
let unset k = Hashtbl.remove overrides k
let clear_overrides () = Hashtbl.reset overrides

let get k =
  match Hashtbl.find_opt overrides k with
  | Some v -> Some v
  | None -> Sys.getenv_opt k

let get_int k = Option.bind (get k) int_of_string_opt

let tool_name () = get "PASTA_TOOL"
let start_grid_id () = get_int "START_GRID_ID"
let end_grid_id () = get_int "END_GRID_ID"
let sample_rate () = get_int "ACCEL_PROF_ENV_SAMPLE_RATE"
