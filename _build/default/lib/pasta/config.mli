(** Configuration knobs, settable programmatically or through the
    environment variables the paper's artifact uses
    ([PASTA_TOOL], [START_GRID_ID], [END_GRID_ID],
    [ACCEL_PROF_ENV_SAMPLE_RATE]).  Programmatic overrides win over the
    environment; [clear_overrides] restores environment-only behaviour. *)

val set : string -> string -> unit
val unset : string -> unit
val clear_overrides : unit -> unit

val get : string -> string option
val get_int : string -> int option
(** [None] when the variable is absent or not an integer. *)

val tool_name : unit -> string option
(** [PASTA_TOOL]. *)

val start_grid_id : unit -> int option
val end_grid_id : unit -> int option
val sample_rate : unit -> int option
