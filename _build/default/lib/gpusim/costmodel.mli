(** Analytic timing model.

    All simulated durations come from here, parameterized by the
    architecture record.  Kernels follow a roofline (max of compute and
    memory time); copies and migrations are bandwidth terms plus fixed
    latencies; instrumentation costs follow the structure the paper
    describes in §V-B3:

    - device-resident analysis is serialized only within an effective
      analysis lane, so its per-access cost is divided by
      {!Arch.analysis_lanes};
    - trace collection into a device buffer is likewise lane-parallel;
    - trace *transfer* crosses the host link at PCIe bandwidth;
    - trace *analysis* on the host is a single CPU thread paying a fixed
      cost per record — the term that dominates and produces the paper's
      hours-to-days CPU-side times (Figs. 9, 10). *)

val record_bytes : int
(** Size of one trace record (16 B: address + metadata). *)

val kernel_time_us : Arch.t -> Kernel.t -> float
(** Roofline execution time plus launch overhead; deterministic. *)

val memcpy_time_us :
  Arch.t -> bytes:int -> kind:[ `H2d | `D2h | `D2d | `P2p ] -> float

val memset_time_us : Arch.t -> bytes:int -> float
val malloc_time_us : float
val free_time_us : float

(** {2 Instrumentation} *)

val sass_dump_parse_time_us : static_instrs:int -> float
(** NVBit's per-kernel cost of dumping the SASS listing and parsing it to
    find memory instructions. *)

val device_analysis_time_us : Arch.t -> accesses:int -> per_access_us:float -> float
(** In-situ analysis: [per_access_us] serialized within a lane, amortized
    over all lanes. *)

val collect_time_us : Arch.t -> accesses:int -> per_access_us:float -> float
(** Device-side record emission into the trace buffer, lane-parallel. *)

val transfer_time_us : Arch.t -> records:int -> float
(** Device-to-host trace buffer copy over the host link. *)

val host_analysis_time_us : records:int -> per_record_us:float -> float
(** Single-threaded host-side processing. *)

(** Default per-unit costs of the three profiling backends. *)

val sanitizer_gpu_per_access_us : float
val sanitizer_collect_per_access_us : float
val sanitizer_host_per_record_us : float
val nvbit_collect_per_access_us : float
val nvbit_host_per_record_us : float
val flush_overhead_us : float

(** {2 UVM} *)

val uvm_fault_time_us : Arch.t -> pages:int -> float
(** Demand-migration: per-page fault latency plus transfer. *)

val uvm_prefetch_time_us : Arch.t -> bytes:int -> float
(** Bulk prefetch: bandwidth-bound plus one call overhead. *)

val uvm_evict_time_us : Arch.t -> pages:int -> float
(** Write-back of evicted pages to host memory. *)
