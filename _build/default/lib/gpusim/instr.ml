type opcode =
  | Ld_global
  | St_global
  | Ld_shared
  | St_shared
  | Ldgsts
  | Atom_global
  | Bar_sync
  | Cluster_bar
  | Pipeline_commit
  | Pipeline_wait
  | Ffma
  | Fadd
  | Fmul
  | Imad
  | Mov
  | Bra
  | Call
  | Ret
  | Exit

let all_opcodes =
  [ Ld_global; St_global; Ld_shared; St_shared; Ldgsts; Atom_global; Bar_sync;
    Cluster_bar; Pipeline_commit; Pipeline_wait; Ffma; Fadd; Fmul; Imad; Mov;
    Bra; Call; Ret; Exit ]

let mnemonic = function
  | Ld_global -> "LDG.E"
  | St_global -> "STG.E"
  | Ld_shared -> "LDS"
  | St_shared -> "STS"
  | Ldgsts -> "LDGSTS"
  | Atom_global -> "ATOMG.ADD"
  | Bar_sync -> "BAR.SYNC"
  | Cluster_bar -> "BAR.CLUSTER"
  | Pipeline_commit -> "CP.ASYNC.COMMIT"
  | Pipeline_wait -> "CP.ASYNC.WAIT"
  | Ffma -> "FFMA"
  | Fadd -> "FADD"
  | Fmul -> "FMUL"
  | Imad -> "IMAD"
  | Mov -> "MOV"
  | Bra -> "BRA"
  | Call -> "CALL.REL"
  | Ret -> "RET"
  | Exit -> "EXIT"

let opcode_of_mnemonic s =
  List.find_opt (fun op -> String.equal (mnemonic op) s) all_opcodes

let is_global_memory = function
  | Ld_global | St_global | Ldgsts | Atom_global -> true
  | _ -> false

let is_shared_memory = function Ld_shared | St_shared | Ldgsts -> true | _ -> false

let is_memory op = is_global_memory op || is_shared_memory op

let is_control = function Bra | Call | Ret | Exit -> true | _ -> false

let is_barrier = function Bar_sync | Cluster_bar -> true | _ -> false

type t = { pc : int; opcode : opcode; operands : string }

let pp ppf i =
  Format.fprintf ppf "/*%04x*/ %s %s ;" i.pc (mnemonic i.opcode) i.operands
