type t = { mutable now : float }

let create () = { now = 0.0 }
let now_us t = t.now

let advance_us t d =
  if d < 0.0 then invalid_arg "Clock.advance_us: negative duration";
  t.now <- t.now +. d

let reset t = t.now <- 0.0
