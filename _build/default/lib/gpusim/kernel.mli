(** Kernel descriptors.

    A kernel is described by its launch geometry and an *access plan*: the
    set of global-memory regions it touches, each with a dynamic access
    count and an address pattern.  The plan is the ground truth that
    instrumentation observes — sampled into individual access records for
    trace-based profiling, or aggregated directly for device-resident
    analysis.

    [arg_ptrs] lists every pointer argument passed to the kernel, including
    ones the kernel never dereferences: the paper's working-set analysis
    (§V-B2) exists precisely because argument lists over-approximate the
    memory a kernel uses. *)

type pattern =
  | Sequential  (** coalesced linear walk over the region *)
  | Strided of int  (** fixed byte stride between consecutive warp accesses *)
  | Random  (** uniform within the region *)

(** Microarchitectural behaviour profile: the per-kernel aggregates that
    instruction-level instrumentation observes (paper §III-H — branch
    divergence, barrier stalls, shared-memory bank conflicts, operand
    value ranges).  Ground truth lives here; profiling layers charge the
    cost of observing it. *)
type profile = {
  branches : int;  (** dynamic branch instructions *)
  divergent_branches : int;  (** branches whose warp splits *)
  shared_accesses : int;  (** dynamic shared-memory accesses *)
  bank_conflicts : int;  (** shared accesses serialized by conflicts *)
  barrier_stall_us : float;  (** cumulative time warps wait at barriers *)
  value_min : float;  (** smallest operand value produced *)
  value_max : float;
  redundant_loads : int;  (** loads that observed the previously loaded value *)
}

val no_profile : profile
(** All-zero profile (value range collapses to 0). *)

val profile :
  ?branches:int ->
  ?divergent_branches:int ->
  ?shared_accesses:int ->
  ?bank_conflicts:int ->
  ?barrier_stall_us:float ->
  ?value_min:float ->
  ?value_max:float ->
  ?redundant_loads:int ->
  unit ->
  profile
(** Validates non-negative counts, [divergent_branches <= branches],
    [bank_conflicts <= shared_accesses] and [value_min <= value_max]. *)

type region = {
  base : int;  (** device VA of the first byte accessed *)
  bytes : int;  (** extent of the region touched *)
  accesses : int;  (** dynamic global-memory access count (true, unsampled) *)
  write : bool;
  pattern : pattern;
}

type t = {
  name : string;  (** demangled display name, e.g. "at::native::im2col_kernel" *)
  grid : Dim3.t;
  block : Dim3.t;
  regions : region list;
  arg_ptrs : int list;
  flops : float;  (** floating-point work, for the roofline cost model *)
  shared_bytes : int;
  barriers : int;  (** dynamic barrier count *)
  prof : profile;
}

val make :
  name:string ->
  grid:Dim3.t ->
  block:Dim3.t ->
  ?regions:region list ->
  ?arg_ptrs:int list ->
  ?flops:float ->
  ?shared_bytes:int ->
  ?barriers:int ->
  ?prof:profile ->
  unit ->
  t
(** Validates that region extents and access counts are non-negative.
    When [arg_ptrs] is omitted it defaults to the region bases. *)

val region :
  ?write:bool -> ?pattern:pattern -> base:int -> bytes:int -> accesses:int -> unit -> region

val total_accesses : t -> int
(** Sum of dynamic accesses over all regions. *)

val bytes_touched : t -> int
(** Sum of region extents (the kernel's true footprint). *)

val bytes_moved : t -> int
(** Dynamic traffic estimate: [accesses * 4] bytes summed over regions,
    capped below by [bytes_touched]. *)

val threads : t -> int

val pp : Format.formatter -> t -> unit
