(** Simulated device virtual-address-space allocator.

    Backs both [cudaMalloc]-style device allocations and
    [cudaMallocManaged]-style UVM allocations.  No data is stored — the
    simulator only tracks extents — but the allocator enforces the
    invariants a real allocator would: allocations never overlap, frees must
    hit a live base address, and adjacent free regions coalesce.

    Address-to-allocation lookup ({!find_containing}) is the primitive the
    working-set tool builds on: it resolves a memory-access address to the
    memory object it belongs to. *)

type alloc = {
  base : int;
  bytes : int;
  tag : string;  (** caller-supplied label, e.g. "cudaMalloc" or a pool id *)
  managed : bool;  (** allocated through the UVM path *)
  seq : int;  (** allocation order, for stable reporting *)
}

type t

val create : ?base:int -> capacity:int -> unit -> t
(** [create ~capacity ()] manages a VA range of [capacity] bytes starting
    at [base] (default 0x7f00_0000_0000, a plausible device VA).  Raises
    [Invalid_argument] if [capacity <= 0]. *)

val capacity : t -> int
val used_bytes : t -> int
val live_count : t -> int

exception Out_of_memory of { requested : int; available : int }

val alloc : t -> ?tag:string -> ?managed:bool -> int -> alloc
(** First-fit allocation, 512-byte aligned like the CUDA allocator.
    Zero-byte requests are rounded to one alignment unit.  Raises
    {!Out_of_memory} when no free region fits and [Invalid_argument] on a
    negative size. *)

val free : t -> int -> alloc
(** [free t base] releases the allocation at exactly [base] and returns its
    record.  Raises [Invalid_argument] if [base] is not a live allocation
    base (double free / invalid free). *)

val find_containing : t -> int -> alloc option
(** The live allocation whose extent contains the given address. *)

val iter_live : (alloc -> unit) -> t -> unit
val live : t -> alloc list
(** Live allocations in increasing base order. *)

val check_invariants : t -> unit
(** Validates no-overlap, ordering and accounting; raises [Failure] with a
    diagnostic on violation.  Used by the property tests. *)
