(** Device instruction vocabulary (SASS-like).

    The NVBit substrate needs a static instruction listing per kernel to
    dump, parse and instrument; the Compute Sanitizer substrate patches only
    the memory / barrier instruction classes.  This module defines the
    instruction set both work over. *)

type opcode =
  | Ld_global
  | St_global
  | Ld_shared
  | St_shared
  | Ldgsts  (** asynchronous global-to-shared copy *)
  | Atom_global
  | Bar_sync
  | Cluster_bar
  | Pipeline_commit
  | Pipeline_wait
  | Ffma
  | Fadd
  | Fmul
  | Imad
  | Mov
  | Bra
  | Call
  | Ret
  | Exit

val all_opcodes : opcode list
val mnemonic : opcode -> string
val opcode_of_mnemonic : string -> opcode option

val is_global_memory : opcode -> bool
(** Loads/stores/atomics touching global memory (incl. LDGSTS). *)

val is_shared_memory : opcode -> bool
val is_memory : opcode -> bool
val is_control : opcode -> bool
val is_barrier : opcode -> bool

type t = { pc : int; opcode : opcode; operands : string }

val pp : Format.formatter -> t -> unit
(** "/*0040*/ LDG.E R2, [R4] ;" — the textual SASS form. *)
