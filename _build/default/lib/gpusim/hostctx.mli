(** Simulated host-process runtime context.

    On real hardware PASTA reconstructs cross-layer call stacks from live
    CPython frames and [libbacktrace] symbols.  Our substitute is this
    per-process registry: the DL-framework substrate pushes frames as it
    enters Python modules and C++ dispatch functions, and the profiling
    layers snapshot the current stacks when a kernel is launched
    (paper §III-F2 and Fig. 4). *)

type frame = {
  file : string;
  line : int;
  symbol : string;
}

val pp_frame : Format.formatter -> frame -> unit
(** Rendered as "file:line symbol", the format of the paper's Fig. 4. *)

type lang = Python | Native

val push : lang -> frame -> unit
val pop : lang -> unit
(** Popping an empty stack raises [Invalid_argument] — it indicates an
    unbalanced instrumentation scope in the framework substrate. *)

val with_frame : lang -> frame -> (unit -> 'a) -> 'a
(** Push, run, pop; exception-safe. *)

val snapshot : lang -> frame list
(** Innermost frame first. *)

val depth : lang -> int
val clear : unit -> unit
(** Reset both stacks; used between independent experiment runs. *)
