(** SASS listing generation, emission and parsing.

    NVBit-style instrumentation cannot ask the runtime which instructions
    are memory operations; it must dump each kernel's SASS text and parse
    it back to find them (paper §V-B3 attributes NVBit's extra overhead to
    exactly this).  This module provides the three pieces: a deterministic
    listing synthesized from the kernel descriptor, a textual dump, and a
    parser for the dump. *)

val listing : Kernel.t -> Instr.t list
(** Deterministic SASS-like listing for a kernel: a prologue, one
    load/store block per region, a compute body scaled to the kernel's
    FLOP count, barriers, and an exit.  Stable across calls. *)

val static_size : Kernel.t -> int
(** Length of [listing] without materializing it. *)

val dump : Kernel.t -> string
(** The listing rendered as text, one instruction per line, with a
    function header — what NVBit's [nvbit_get_instrs] hands back. *)

exception Parse_error of { line : int; text : string }

val parse : string -> Instr.t list
(** Parse a [dump]-formatted listing back.  Raises {!Parse_error} on
    malformed lines. *)

val memory_pcs : Instr.t list -> int list
(** Program counters of the global-memory instructions — the set an
    NVBit tool would instrument after parsing. *)
