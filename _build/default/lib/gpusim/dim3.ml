type t = { x : int; y : int; z : int }

let make ?(y = 1) ?(z = 1) x =
  if x <= 0 || y <= 0 || z <= 0 then invalid_arg "Dim3.make: non-positive component";
  { x; y; z }

let total { x; y; z } = x * y * z
let pp ppf { x; y; z } = Format.fprintf ppf "(%d,%d,%d)" x y z
let to_string t = Format.asprintf "%a" pp t
let equal a b = a.x = b.x && a.y = b.y && a.z = b.z
