lib/gpusim/uvm.mli: Arch Clock
