lib/gpusim/dim3.mli: Format
