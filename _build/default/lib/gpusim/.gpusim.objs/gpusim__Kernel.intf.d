lib/gpusim/kernel.mli: Dim3 Format
