lib/gpusim/device_mem.ml: Format Int List Map Pasta_util
