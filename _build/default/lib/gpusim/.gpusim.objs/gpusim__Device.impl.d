lib/gpusim/device.ml: Arch Clock Costmodel Device_mem Float Hashtbl Hostctx Int64 Kernel List Option Pasta_util String Uvm Warp
