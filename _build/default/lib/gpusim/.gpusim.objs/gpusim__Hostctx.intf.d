lib/gpusim/hostctx.mli: Format
