lib/gpusim/clock.mli:
