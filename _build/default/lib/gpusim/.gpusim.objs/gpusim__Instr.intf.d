lib/gpusim/instr.mli: Format
