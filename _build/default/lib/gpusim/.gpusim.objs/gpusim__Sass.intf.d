lib/gpusim/sass.mli: Instr Kernel
