lib/gpusim/hostctx.ml: Format List
