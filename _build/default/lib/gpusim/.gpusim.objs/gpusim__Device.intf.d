lib/gpusim/device.mli: Arch Clock Device_mem Hostctx Kernel Uvm Warp
