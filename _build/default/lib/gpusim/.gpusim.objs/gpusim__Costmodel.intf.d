lib/gpusim/costmodel.mli: Arch Kernel
