lib/gpusim/arch.ml: Format Pasta_util
