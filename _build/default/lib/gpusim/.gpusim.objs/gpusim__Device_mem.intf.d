lib/gpusim/device_mem.mli:
