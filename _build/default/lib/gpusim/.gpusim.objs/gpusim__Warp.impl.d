lib/gpusim/warp.ml: Kernel List Pasta_util
