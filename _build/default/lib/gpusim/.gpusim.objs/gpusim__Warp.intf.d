lib/gpusim/warp.mli: Kernel Pasta_util
