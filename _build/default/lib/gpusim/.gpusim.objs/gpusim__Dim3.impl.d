lib/gpusim/dim3.ml: Format
