lib/gpusim/instr.ml: Format List String
