lib/gpusim/clock.ml:
