lib/gpusim/sass.ml: Buffer Float Format Instr Kernel List Printf Scanf String
