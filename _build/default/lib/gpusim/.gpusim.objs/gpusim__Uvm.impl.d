lib/gpusim/uvm.ml: Arch Array Bytes Char Clock Costmodel Format Int Map Option Queue
