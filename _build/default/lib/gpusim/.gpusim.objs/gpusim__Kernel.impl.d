lib/gpusim/kernel.ml: Dim3 Format List Pasta_util
