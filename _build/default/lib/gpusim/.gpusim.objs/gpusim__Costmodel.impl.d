lib/gpusim/costmodel.ml: Arch Float Kernel
