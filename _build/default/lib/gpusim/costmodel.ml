let record_bytes = 16

let gb = 1.0e9

let kernel_time_us (arch : Arch.t) k =
  let compute_s = k.Kernel.flops /. (arch.fp32_tflops *. 1.0e12) in
  let mem_s = float_of_int (Kernel.bytes_moved k) /. (arch.mem_bw_gbps *. gb) in
  (Float.max compute_s mem_s *. 1.0e6) +. arch.launch_overhead_us

let memcpy_time_us (arch : Arch.t) ~bytes ~kind =
  let bw_gbps =
    match kind with
    | `H2d | `D2h -> arch.pcie_bw_gbps
    | `P2p -> arch.pcie_bw_gbps *. 2.0 (* NVLink-ish peer link *)
    | `D2d -> arch.mem_bw_gbps /. 2.0 (* read + write on the same bus *)
  in
  (float_of_int bytes /. (bw_gbps *. gb) *. 1.0e6) +. 8.0

let memset_time_us (arch : Arch.t) ~bytes =
  (float_of_int bytes /. (arch.mem_bw_gbps *. gb) *. 1.0e6) +. 4.0

let malloc_time_us = 10.0
let free_time_us = 6.0

let sass_dump_parse_time_us ~static_instrs =
  500.0 +. (1.5 *. float_of_int static_instrs)

let device_analysis_time_us arch ~accesses ~per_access_us =
  float_of_int accesses *. per_access_us
  /. float_of_int (Arch.analysis_lanes arch)

let collect_time_us arch ~accesses ~per_access_us =
  float_of_int accesses *. per_access_us
  /. float_of_int (Arch.analysis_lanes arch)

let transfer_time_us (arch : Arch.t) ~records =
  float_of_int (records * record_bytes) /. (arch.pcie_bw_gbps *. gb) *. 1.0e6

let host_analysis_time_us ~records ~per_record_us =
  float_of_int records *. per_record_us

(* Backend cost constants, chosen so that the overhead ratios land in the
   regime the paper reports (§V-B3: PASTA's GPU-resident tool is ~941x /
   ~13006x faster than the Sanitizer- / NVBit-based CPU tools on A100). *)
let sanitizer_gpu_per_access_us = 0.64
let sanitizer_collect_per_access_us = 0.3
let sanitizer_host_per_record_us = 0.18
let nvbit_collect_per_access_us = 1.2
let nvbit_host_per_record_us = 2.2
let flush_overhead_us = 30.0

let uvm_fault_time_us (arch : Arch.t) ~pages =
  let transfer =
    float_of_int (pages * arch.uvm_page_bytes) /. (arch.pcie_bw_gbps *. gb) *. 1.0e6
  in
  (float_of_int pages *. arch.uvm_fault_latency_us) +. transfer

let uvm_prefetch_time_us (arch : Arch.t) ~bytes =
  (float_of_int bytes /. (arch.pcie_bw_gbps *. gb) *. 1.0e6) +. 25.0

let uvm_evict_time_us (arch : Arch.t) ~pages =
  let bytes = pages * arch.uvm_page_bytes in
  (float_of_int bytes /. (arch.pcie_bw_gbps *. gb) *. 1.0e6)
  +. (2.0 *. float_of_int pages)
