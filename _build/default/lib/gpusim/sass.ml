exception Parse_error of { line : int; text : string }

(* The compute body is capped so listings stay realistic (real kernels have
   hundreds to a few thousand static instructions, independent of dynamic
   trip counts). *)
let max_body = 512

let body_size k =
  let flop_based = int_of_float (Float.log2 (Float.max 2.0 k.Kernel.flops)) * 8 in
  min max_body (max 16 flop_based)

let listing k =
  let pc = ref 0 in
  let instrs = ref [] in
  let emit opcode operands =
    instrs := { Instr.pc = !pc; opcode; operands } :: !instrs;
    pc := !pc + 16
  in
  (* Prologue: thread-index computation. *)
  emit Mov "R1, c[0x0][0x28]";
  emit Imad "R0, R3, c[0x0][0x0], R2";
  emit Mov "R4, c[0x0][0x160]";
  (* One access block per region. *)
  List.iteri
    (fun i (r : Kernel.region) ->
      let reg = 4 + (2 * i) in
      emit Imad (Printf.sprintf "R%d, R0, 0x4, R%d" reg reg);
      if r.write then emit Instr.St_global (Printf.sprintf "[R%d], R%d" reg (reg + 1))
      else emit Instr.Ld_global (Printf.sprintf "R%d, [R%d]" (reg + 1) reg))
    k.Kernel.regions;
  if k.Kernel.shared_bytes > 0 then begin
    emit Instr.Ldgsts "[R20], [R4]";
    emit Instr.Pipeline_commit "";
    emit Instr.Pipeline_wait "0x0";
    emit Instr.Ld_shared "R21, [R20]"
  end;
  if k.Kernel.barriers > 0 then emit Instr.Bar_sync "0x0";
  (* Compute body. *)
  let body = body_size k in
  for i = 0 to body - 1 do
    match i mod 4 with
    | 0 -> emit Instr.Ffma "R8, R9, R10, R8"
    | 1 -> emit Instr.Fmul "R9, R9, R11"
    | 2 -> emit Instr.Fadd "R10, R10, R12"
    | _ -> emit Instr.Imad "R11, R11, 0x3, R13"
  done;
  (* Writeback of the first written region, if any, then exit. *)
  (match List.find_opt (fun (r : Kernel.region) -> r.write) k.Kernel.regions with
  | Some _ -> emit Instr.Bra "0x40"
  | None -> ());
  emit Instr.Exit "";
  List.rev !instrs

let static_size k =
  let base = 3 + 1 in
  let regions = 2 * List.length k.Kernel.regions in
  let shared = if k.Kernel.shared_bytes > 0 then 4 else 0 in
  let bar = if k.Kernel.barriers > 0 then 1 else 0 in
  let wb =
    if List.exists (fun (r : Kernel.region) -> r.write) k.Kernel.regions then 1
    else 0
  in
  base + regions + shared + bar + wb + body_size k

let dump k =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf ".text.%s:\n" k.Kernel.name);
  List.iter
    (fun i -> Buffer.add_string buf (Format.asprintf "%a\n" Instr.pp i))
    (listing k);
  Buffer.contents buf

let parse_line lineno line =
  let line = String.trim line in
  if line = "" then None
  else if String.length line > 0 && line.[0] = '.' then None (* section header *)
  else
    (* Format: "/*PC*/ MNEMONIC operands ;" *)
    try
      Scanf.sscanf line "/*%x*/ %s@;" (fun pc rest ->
          let rest = String.trim rest in
          let mnemonic, operands =
            match String.index_opt rest ' ' with
            | None -> (rest, "")
            | Some i ->
                ( String.sub rest 0 i,
                  String.trim (String.sub rest (i + 1) (String.length rest - i - 1)) )
          in
          match Instr.opcode_of_mnemonic mnemonic with
          | Some opcode -> Some { Instr.pc; opcode; operands }
          | None -> raise (Parse_error { line = lineno; text = line }))
    with Scanf.Scan_failure _ | End_of_file ->
      raise (Parse_error { line = lineno; text = line })

let parse text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i line -> match parse_line (i + 1) line with Some x -> [ x ] | None -> [])
       lines)

let memory_pcs instrs =
  List.filter_map
    (fun (i : Instr.t) -> if Instr.is_global_memory i.opcode then Some i.pc else None)
    instrs
