(** CUDA-style three-dimensional launch geometry. *)

type t = { x : int; y : int; z : int }

val make : ?y:int -> ?z:int -> int -> t
(** [make ?y ?z x] with [y] and [z] defaulting to 1.  All components must
    be positive. *)

val total : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
