type access = {
  addr : int;
  size : int;
  write : bool;
  warp_id : int;
  pc : int;
  weight : int;
}

let access_size = 4

let region_records ~rng ~warp_size ~max_records (r : Kernel.region) ~pc ~f =
  if r.accesses = 0 then ()
  else begin
    let n = min r.accesses max_records in
    let base_weight = r.accesses / n and extra = r.accesses mod n in
    let span = max 1 (r.bytes - access_size) in
    for i = 0 to n - 1 do
      let offset =
        match r.pattern with
        | Kernel.Sequential ->
            (* Spread evenly so the samples cover the whole extent. *)
            span * i / n
        | Kernel.Strided stride ->
            let s = max access_size stride in
            s * i mod span
        | Kernel.Random -> Pasta_util.Det_rng.int rng span
      in
      let warp_id = i * warp_size mod max warp_size (span / access_size) / warp_size in
      f
        {
          addr = r.base + offset;
          size = access_size;
          write = r.write;
          warp_id;
          pc;
          weight = (base_weight + if i < extra then 1 else 0);
        }
    done
  end

let generate ~rng ~warp_size ~max_records_per_region k ~f =
  (* PCs must match the SASS listing: region i's access instruction is the
     second instruction of its access block, after a 3-instruction
     prologue. *)
  List.iteri
    (fun i r ->
      let pc = (3 + (2 * i) + 1) * 16 in
      region_records ~rng ~warp_size ~max_records:max_records_per_region r ~pc ~f)
    k.Kernel.regions;
  Kernel.total_accesses k
