(** Unified Virtual Memory subsystem.

    Page-granular (2 MiB) managed memory shared between host and device,
    with demand migration on kernel access, LRU-approximate eviction under
    capacity pressure, and the optimization APIs the paper's UVM tools
    drive: bulk prefetch ([cudaMemPrefetchAsync]), pinning
    ([cudaMemAdvise(SetPreferredLocation)]) and proactive eviction.

    The device capacity visible to UVM is configurable below the physical
    memory size, which is how the paper (and we) impose a controlled
    oversubscription factor (§V-A: "we limit device memory capacity by
    allocating a specified amount in advance"). *)

type stats = {
  mutable faults : int;  (** faulted pages *)
  mutable refaults : int;  (** faults on pages previously evicted — thrashing *)
  mutable migrated_bytes : int;  (** demand-migration traffic, host to device *)
  mutable prefetched_bytes : int;
  mutable prefetch_calls : int;
  mutable evicted_pages : int;
  mutable fault_stall_us : float;  (** total time spent in fault handling *)
  mutable prefetch_us : float;
  mutable evict_us : float;
}

type t

val create : Arch.t -> Clock.t -> capacity:int -> t
(** [capacity] is the device bytes available to managed pages.  Raises
    [Invalid_argument] if smaller than one page. *)

val page_bytes : t -> int
val capacity_pages : t -> int
val resident_pages : t -> int
val resident_bytes : t -> int

val register_range : t -> base:int -> bytes:int -> unit
(** Declare a managed allocation.  All pages start host-resident.
    Overlapping registrations raise [Invalid_argument]. *)

val unregister_range : t -> base:int -> unit
(** Forget a managed allocation (its resident pages are released without
    write-back cost, as on [cudaFree]).  Unknown bases raise
    [Invalid_argument]. *)

val is_managed : t -> int -> bool
(** Whether an address falls inside a registered range. *)

val touch : t -> base:int -> bytes:int -> faulted_pages:int ref -> unit
(** Kernel access to [\[base, base+bytes)]: fault in every non-resident
    page (charging fault latency and migration bandwidth on the clock,
    evicting LRU pages if the device is full) and refresh the LRU stamps
    of the whole extent.  Addresses outside managed ranges are ignored —
    ordinary device memory never faults.  [faulted_pages] is incremented
    by the number of pages migrated. *)

val prefetch : t -> base:int -> bytes:int -> unit
(** Bulk migration of the extent's non-resident pages at link bandwidth
    with a single call overhead — no per-page fault latency.  Evicts under
    pressure exactly like {!touch}.  Ignored outside managed ranges. *)

val evict_range : t -> base:int -> bytes:int -> unit
(** Proactively write the extent's resident (unpinned) pages back to the
    host. *)

val pin : t -> base:int -> bytes:int -> unit
(** Mark the extent's pages as preferring device residency; eviction skips
    them unless nothing else is left. *)

val unpin : t -> base:int -> bytes:int -> unit

val stats : t -> stats
val reset_stats : t -> unit

val check_invariants : t -> unit
(** Residency accounting and capacity bound; raises [Failure] on
    violation. *)
