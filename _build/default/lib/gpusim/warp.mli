(** Warp-level memory-access record generation.

    Turns a kernel's access plan into concrete per-access records, the raw
    material of trace-based profiling.  Real workloads issue billions of
    accesses; materializing each one would make the simulator itself
    intractable, so generation is *sampled*: at most
    [max_records_per_region] records are emitted per region and each record
    carries a [weight] — the number of true dynamic accesses it stands for.
    Weights always sum to the region's exact access count, so aggregate
    statistics computed from samples are exact in total and approximate
    only in their spatial distribution. *)

type access = {
  addr : int;
  size : int;  (** bytes per access (4) *)
  write : bool;
  warp_id : int;
  pc : int;  (** PC of the issuing SASS instruction *)
  weight : int;  (** true accesses this sampled record represents *)
}

val generate :
  rng:Pasta_util.Det_rng.t ->
  warp_size:int ->
  max_records_per_region:int ->
  Kernel.t ->
  f:(access -> unit) ->
  int
(** [generate ~rng ~warp_size ~max_records_per_region k ~f] calls [f] on
    each sampled record and returns the kernel's true total access count.
    Sampled addresses follow the region's pattern: [Sequential] spreads
    records uniformly over the extent, [Strided s] walks in stride [s]
    (wrapping), [Random] draws uniformly.  Every non-empty region yields at
    least one record, so object-coverage analyses never miss a touched
    region. *)
