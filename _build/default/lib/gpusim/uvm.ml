module Imap = Map.Make (Int)

type stats = {
  mutable faults : int;
  mutable refaults : int;
  mutable migrated_bytes : int;
  mutable prefetched_bytes : int;
  mutable prefetch_calls : int;
  mutable evicted_pages : int;
  mutable fault_stall_us : float;
  mutable prefetch_us : float;
  mutable evict_us : float;
}

let fresh_stats () =
  {
    faults = 0;
    refaults = 0;
    migrated_bytes = 0;
    prefetched_bytes = 0;
    prefetch_calls = 0;
    evicted_pages = 0;
    fault_stall_us = 0.0;
    prefetch_us = 0.0;
    evict_us = 0.0;
  }

(* Per-page state bits. *)
let bit_resident = 1
let bit_pinned = 2
let bit_was_resident = 4

type range = {
  base : int;
  bytes : int;
  npages : int;
  state : Bytes.t; (* one state byte per page *)
  stamp : int array; (* LRU stamp per page *)
}

type t = {
  arch : Arch.t;
  clock : Clock.t;
  cap_pages : int;
  mutable ranges : range Imap.t; (* keyed by base *)
  mutable resident : int; (* resident page count *)
  mutable tick : int; (* global LRU counter *)
  lru : (range * int * int) Queue.t; (* (range, page_idx, stamp) — lazy entries *)
  st : stats;
}

let create arch clock ~capacity =
  let cap_pages = capacity / arch.Arch.uvm_page_bytes in
  if cap_pages < 1 then invalid_arg "Uvm.create: capacity below one page";
  {
    arch;
    clock;
    cap_pages;
    ranges = Imap.empty;
    resident = 0;
    tick = 0;
    lru = Queue.create ();
    st = fresh_stats ();
  }

let page_bytes t = t.arch.Arch.uvm_page_bytes
let capacity_pages t = t.cap_pages
let resident_pages t = t.resident
let resident_bytes t = t.resident * page_bytes t
let stats t = t.st

let reset_stats t =
  let s = t.st in
  s.faults <- 0;
  s.refaults <- 0;
  s.migrated_bytes <- 0;
  s.prefetched_bytes <- 0;
  s.prefetch_calls <- 0;
  s.evicted_pages <- 0;
  s.fault_stall_us <- 0.0;
  s.prefetch_us <- 0.0;
  s.evict_us <- 0.0

let find_range t addr =
  match Imap.find_last_opt (fun b -> b <= addr) t.ranges with
  | Some (_, r) when addr < r.base + r.bytes -> Some r
  | _ -> None

let is_managed t addr = Option.is_some (find_range t addr)

let register_range t ~base ~bytes =
  if bytes <= 0 then invalid_arg "Uvm.register_range: non-positive size";
  let last = base + bytes - 1 in
  if is_managed t base || is_managed t last then
    invalid_arg "Uvm.register_range: overlapping range";
  let npages = (bytes + page_bytes t - 1) / page_bytes t in
  let r = { base; bytes; npages; state = Bytes.make npages '\000'; stamp = Array.make npages 0 } in
  t.ranges <- Imap.add base r t.ranges

let unregister_range t ~base =
  match Imap.find_opt base t.ranges with
  | None -> invalid_arg "Uvm.unregister_range: unknown base"
  | Some r ->
      for i = 0 to r.npages - 1 do
        if Char.code (Bytes.get r.state i) land bit_resident <> 0 then
          t.resident <- t.resident - 1
      done;
      t.ranges <- Imap.remove base t.ranges

let get_state r i = Char.code (Bytes.get r.state i)
let set_state r i v = Bytes.set r.state i (Char.chr v)
let is_resident r i = get_state r i land bit_resident <> 0
let is_pinned r i = get_state r i land bit_pinned <> 0

let touch_stamp t r i =
  t.tick <- t.tick + 1;
  r.stamp.(i) <- t.tick;
  Queue.push (r, i, t.tick) t.lru

(* Evict one unpinned LRU page; returns false if nothing evictable. *)
let rec evict_one t ~forced =
  match Queue.take_opt t.lru with
  | None -> if forced then evict_scan t else false
  | Some (r, i, stamp) ->
      if r.stamp.(i) = stamp && is_resident r i && (not (is_pinned r i)) && Imap.mem r.base t.ranges
      then begin
        set_state r i (get_state r i land lnot bit_resident);
        t.resident <- t.resident - 1;
        t.st.evicted_pages <- t.st.evicted_pages + 1;
        let d = Costmodel.uvm_evict_time_us t.arch ~pages:1 in
        t.st.evict_us <- t.st.evict_us +. d;
        Clock.advance_us t.clock d;
        true
      end
      else evict_one t ~forced

(* Last resort when the lazy queue is exhausted: linear scan, evicting even
   pinned pages (mirrors the driver's behaviour when preferred-location
   advice cannot be honoured). *)
and evict_scan t =
  let victim = ref None in
  Imap.iter
    (fun _ r ->
      for i = 0 to r.npages - 1 do
        if is_resident r i then
          match !victim with
          | Some (_, _, s) when s <= r.stamp.(i) -> ()
          | _ -> victim := Some (r, i, r.stamp.(i))
      done)
    t.ranges;
  match !victim with
  | None -> false
  | Some (r, i, _) ->
      set_state r i (get_state r i land lnot bit_resident);
      t.resident <- t.resident - 1;
      t.st.evicted_pages <- t.st.evicted_pages + 1;
      let d = Costmodel.uvm_evict_time_us t.arch ~pages:1 in
      t.st.evict_us <- t.st.evict_us +. d;
      Clock.advance_us t.clock d;
      true

let ensure_free_page t =
  if t.resident >= t.cap_pages then ignore (evict_one t ~forced:true)

(* Page index span of [base, base+bytes) clipped to the range. *)
let span_indices t r ~base ~bytes =
  let pbytes = page_bytes t in
  let lo = max r.base base and hi = min (r.base + r.bytes) (base + bytes) in
  if hi <= lo then None
  else Some ((lo - r.base) / pbytes, (hi - 1 - r.base) / pbytes)

let touch t ~base ~bytes ~faulted_pages =
  match find_range t base with
  | None -> ()
  | Some r -> (
      match span_indices t r ~base ~bytes with
      | None -> ()
      | Some (i0, i1) ->
          let faults = ref 0 in
          for i = i0 to i1 do
            if not (is_resident r i) then begin
              ensure_free_page t;
              let s = get_state r i in
              if s land bit_was_resident <> 0 then t.st.refaults <- t.st.refaults + 1;
              set_state r i (s lor bit_resident lor bit_was_resident);
              t.resident <- t.resident + 1;
              incr faults
            end;
            touch_stamp t r i
          done;
          if !faults > 0 then begin
            t.st.faults <- t.st.faults + !faults;
            t.st.migrated_bytes <- t.st.migrated_bytes + (!faults * page_bytes t);
            faulted_pages := !faulted_pages + !faults;
            let d = Costmodel.uvm_fault_time_us t.arch ~pages:!faults in
            t.st.fault_stall_us <- t.st.fault_stall_us +. d;
            Clock.advance_us t.clock d
          end)

let prefetch t ~base ~bytes =
  match find_range t base with
  | None -> ()
  | Some r -> (
      match span_indices t r ~base ~bytes with
      | None -> ()
      | Some (i0, i1) ->
          let moved = ref 0 in
          for i = i0 to i1 do
            if not (is_resident r i) then begin
              ensure_free_page t;
              set_state r i (get_state r i lor bit_resident lor bit_was_resident);
              t.resident <- t.resident + 1;
              incr moved
            end;
            touch_stamp t r i
          done;
          t.st.prefetch_calls <- t.st.prefetch_calls + 1;
          let bytes_moved = !moved * page_bytes t in
          t.st.prefetched_bytes <- t.st.prefetched_bytes + bytes_moved;
          let d = Costmodel.uvm_prefetch_time_us t.arch ~bytes:bytes_moved in
          t.st.prefetch_us <- t.st.prefetch_us +. d;
          Clock.advance_us t.clock d)

let evict_range t ~base ~bytes =
  match find_range t base with
  | None -> ()
  | Some r -> (
      match span_indices t r ~base ~bytes with
      | None -> ()
      | Some (i0, i1) ->
          let evicted = ref 0 in
          for i = i0 to i1 do
            if is_resident r i && not (is_pinned r i) then begin
              set_state r i (get_state r i land lnot bit_resident);
              t.resident <- t.resident - 1;
              incr evicted
            end
          done;
          if !evicted > 0 then begin
            t.st.evicted_pages <- t.st.evicted_pages + !evicted;
            let d = Costmodel.uvm_evict_time_us t.arch ~pages:!evicted in
            t.st.evict_us <- t.st.evict_us +. d;
            Clock.advance_us t.clock d
          end)

let set_pin_bit t ~base ~bytes ~on =
  match find_range t base with
  | None -> ()
  | Some r -> (
      match span_indices t r ~base ~bytes with
      | None -> ()
      | Some (i0, i1) ->
          for i = i0 to i1 do
            let s = get_state r i in
            set_state r i (if on then s lor bit_pinned else s land lnot bit_pinned)
          done)

let pin t ~base ~bytes = set_pin_bit t ~base ~bytes ~on:true
let unpin t ~base ~bytes = set_pin_bit t ~base ~bytes ~on:false

let check_invariants t =
  let count = ref 0 in
  Imap.iter
    (fun _ r ->
      for i = 0 to r.npages - 1 do
        if is_resident r i then incr count
      done)
    t.ranges;
  if !count <> t.resident then
    Format.kasprintf failwith "Uvm: residency drift (%d counted, %d recorded)"
      !count t.resident;
  if t.resident > t.cap_pages then
    Format.kasprintf failwith "Uvm: capacity exceeded (%d > %d)" t.resident
      t.cap_pages
