type vendor = Nvidia | Amd | Google

let vendor_to_string = function
  | Nvidia -> "NVIDIA"
  | Amd -> "AMD"
  | Google -> "Google"
let pp_vendor ppf v = Format.pp_print_string ppf (vendor_to_string v)

type t = {
  name : string;
  vendor : vendor;
  sm_count : int;
  warp_size : int;
  max_warps_per_sm : int;
  mem_bytes : int;
  mem_bw_gbps : float;
  pcie_bw_gbps : float;
  fp32_tflops : float;
  clock_ghz : float;
  launch_overhead_us : float;
  uvm_page_bytes : int;
  uvm_fault_latency_us : float;
}

let a100 =
  {
    name = "NVIDIA A100 (80GB)";
    vendor = Nvidia;
    sm_count = 108;
    warp_size = 32;
    max_warps_per_sm = 64;
    mem_bytes = 80 * 1024 * 1024 * 1024;
    mem_bw_gbps = 2039.0;
    pcie_bw_gbps = 25.0;
    fp32_tflops = 19.5;
    clock_ghz = 1.41;
    launch_overhead_us = 4.0;
    uvm_page_bytes = 2 * 1024 * 1024;
    uvm_fault_latency_us = 130.0;
  }

let rtx3060 =
  {
    name = "NVIDIA GeForce RTX 3060";
    vendor = Nvidia;
    sm_count = 28;
    warp_size = 32;
    max_warps_per_sm = 48;
    mem_bytes = 12 * 1024 * 1024 * 1024;
    mem_bw_gbps = 360.0;
    pcie_bw_gbps = 12.0;
    fp32_tflops = 12.7;
    clock_ghz = 1.78;
    launch_overhead_us = 5.0;
    uvm_page_bytes = 2 * 1024 * 1024;
    uvm_fault_latency_us = 180.0;
  }

let mi300x =
  {
    name = "AMD MI300X";
    vendor = Amd;
    sm_count = 304;
    warp_size = 64;
    max_warps_per_sm = 32;
    mem_bytes = 192 * 1024 * 1024 * 1024;
    mem_bw_gbps = 5300.0;
    pcie_bw_gbps = 32.0;
    fp32_tflops = 163.4;
    clock_ghz = 2.1;
    launch_overhead_us = 6.0;
    uvm_page_bytes = 2 * 1024 * 1024;
    uvm_fault_latency_us = 150.0;
  }

let tpu_v4 =
  {
    name = "Google TPU v4";
    vendor = Google;
    sm_count = 2; (* TensorCores *)
    warp_size = 128; (* vector lane width *)
    max_warps_per_sm = 16; (* in-flight program slots *)
    mem_bytes = 32 * 1024 * 1024 * 1024;
    mem_bw_gbps = 1228.0;
    pcie_bw_gbps = 32.0;
    fp32_tflops = 137.5; (* bf16 MXU throughput, halved for fp32 *)
    clock_ghz = 1.05;
    launch_overhead_us = 10.0; (* program dispatch via the TPU driver *)
    uvm_page_bytes = 2 * 1024 * 1024;
    uvm_fault_latency_us = 200.0;
  }

let all = [ a100; rtx3060; mi300x; tpu_v4 ]

let concurrent_lanes t = t.sm_count * t.max_warps_per_sm * t.warp_size

let analysis_lanes t =
  (* Calibrated effective lanes for device-resident analysis: one warp
     slot per SM sustains the atomic traffic; wider parts gain a modest
     memory-subsystem factor on top. *)
  match t.name with
  | "NVIDIA A100 (80GB)" -> 3456
  | "NVIDIA GeForce RTX 3060" -> 2304
  | "AMD MI300X" -> 6912
  | "Google TPU v4" -> 1024 (* sparse-core scalar units, not the MXU *)
  | _ -> t.sm_count * t.warp_size

let pp ppf t =
  Format.fprintf ppf "%s (%a, %d SMs, %a, %.0f GB/s)" t.name pp_vendor t.vendor
    t.sm_count Pasta_util.Bytesize.pp t.mem_bytes t.mem_bw_gbps
