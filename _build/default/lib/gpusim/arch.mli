(** Architectural descriptions of the simulated accelerators.

    One record per GPU model used in the paper's evaluation (Table III):
    NVIDIA A100 80GB, NVIDIA GeForce RTX 3060 and AMD MI300X.  The numbers
    are public datasheet values; they parameterize the cost model, the UVM
    subsystem and the profiling backends. *)

type vendor = Nvidia | Amd | Google

val pp_vendor : Format.formatter -> vendor -> unit
val vendor_to_string : vendor -> string

type t = {
  name : string;
  vendor : vendor;
  sm_count : int;  (** streaming multiprocessors / compute units *)
  warp_size : int;  (** threads per warp (32) or wavefront (64) *)
  max_warps_per_sm : int;
  mem_bytes : int;  (** device memory capacity *)
  mem_bw_gbps : float;  (** device memory bandwidth, GB/s *)
  pcie_bw_gbps : float;  (** host link bandwidth, GB/s *)
  fp32_tflops : float;
  clock_ghz : float;
  launch_overhead_us : float;  (** fixed host-side kernel launch cost *)
  uvm_page_bytes : int;  (** UVM management/migration granularity (2 MiB) *)
  uvm_fault_latency_us : float;
      (** demand-migration latency overhead per 2 MiB page, on top of the
          transfer itself: a 2 MiB block faults in as a series of 64 KiB
          fault groups, each paying fault-handling latency *)
}

val a100 : t
val rtx3060 : t
val mi300x : t

val tpu_v4 : t
(** Google TPU v4: a systolic-array accelerator.  The GPU-oriented fields
    are mapped onto TPU concepts — [sm_count] is the TensorCore count,
    [warp_size] the vector-lane width, [max_warps_per_sm] the in-flight
    program slots — exercising the paper's claim (§III-G) that PASTA
    extends to any accelerator with runtime event APIs. *)

val all : t list

val concurrent_lanes : t -> int
(** Number of hardware threads the device can run concurrently. *)

val analysis_lanes : t -> int
(** Effective parallelism available to GPU-resident analysis functions.
    Calibrated, not raw thread count: patched instrumentation is bound by
    the memory/atomic subsystem, so the effective lane count grows much
    more slowly than the thread count across GPU generations (the paper's
    A100-vs-RTX3060 overhead ratios imply roughly a 1.5x gap, not the 5x
    raw-thread gap). *)

val pp : Format.formatter -> t -> unit
