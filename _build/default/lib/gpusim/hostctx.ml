type frame = { file : string; line : int; symbol : string }

let pp_frame ppf f = Format.fprintf ppf "%s:%d %s" f.file f.line f.symbol

type lang = Python | Native

let python_stack : frame list ref = ref []
let native_stack : frame list ref = ref []
let stack_of = function Python -> python_stack | Native -> native_stack

let push lang f =
  let s = stack_of lang in
  s := f :: !s

let pop lang =
  let s = stack_of lang in
  match !s with
  | [] -> invalid_arg "Hostctx.pop: empty stack (unbalanced scope)"
  | _ :: rest -> s := rest

let with_frame lang f k =
  push lang f;
  match k () with
  | v ->
      pop lang;
      v
  | exception e ->
      pop lang;
      raise e

let snapshot lang = !(stack_of lang)
let depth lang = List.length !(stack_of lang)

let clear () =
  python_stack := [];
  native_stack := []
