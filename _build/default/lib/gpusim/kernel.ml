type pattern = Sequential | Strided of int | Random

type region = {
  base : int;
  bytes : int;
  accesses : int;
  write : bool;
  pattern : pattern;
}

type profile = {
  branches : int;
  divergent_branches : int;
  shared_accesses : int;
  bank_conflicts : int;
  barrier_stall_us : float;
  value_min : float;
  value_max : float;
  redundant_loads : int;
}

let no_profile =
  {
    branches = 0;
    divergent_branches = 0;
    shared_accesses = 0;
    bank_conflicts = 0;
    barrier_stall_us = 0.0;
    value_min = 0.0;
    value_max = 0.0;
    redundant_loads = 0;
  }

let profile ?(branches = 0) ?(divergent_branches = 0) ?(shared_accesses = 0)
    ?(bank_conflicts = 0) ?(barrier_stall_us = 0.0) ?(value_min = 0.0)
    ?(value_max = 0.0) ?(redundant_loads = 0) () =
  if branches < 0 || divergent_branches < 0 || shared_accesses < 0
     || bank_conflicts < 0 || redundant_loads < 0
  then invalid_arg "Kernel.profile: negative count";
  if divergent_branches > branches then
    invalid_arg "Kernel.profile: divergent_branches > branches";
  if bank_conflicts > shared_accesses then
    invalid_arg "Kernel.profile: bank_conflicts > shared_accesses";
  if value_min > value_max then invalid_arg "Kernel.profile: empty value range";
  if barrier_stall_us < 0.0 then invalid_arg "Kernel.profile: negative stall";
  {
    branches;
    divergent_branches;
    shared_accesses;
    bank_conflicts;
    barrier_stall_us;
    value_min;
    value_max;
    redundant_loads;
  }

type t = {
  name : string;
  grid : Dim3.t;
  block : Dim3.t;
  regions : region list;
  arg_ptrs : int list;
  flops : float;
  shared_bytes : int;
  barriers : int;
  prof : profile;
}

let region ?(write = false) ?(pattern = Sequential) ~base ~bytes ~accesses () =
  if bytes < 0 then invalid_arg "Kernel.region: negative extent";
  if accesses < 0 then invalid_arg "Kernel.region: negative access count";
  { base; bytes; accesses; write; pattern }

let make ~name ~grid ~block ?(regions = []) ?arg_ptrs ?(flops = 0.0)
    ?(shared_bytes = 0) ?(barriers = 0) ?(prof = no_profile) () =
  List.iter
    (fun r ->
      if r.bytes < 0 || r.accesses < 0 then
        invalid_arg "Kernel.make: invalid region")
    regions;
  let arg_ptrs =
    match arg_ptrs with
    | Some ps -> ps
    | None -> List.map (fun r -> r.base) regions
  in
  { name; grid; block; regions; arg_ptrs; flops; shared_bytes; barriers; prof }

let total_accesses t = List.fold_left (fun acc r -> acc + r.accesses) 0 t.regions
let bytes_touched t = List.fold_left (fun acc r -> acc + r.bytes) 0 t.regions
let bytes_moved t = max (bytes_touched t) (4 * total_accesses t)
let threads t = Dim3.total t.grid * Dim3.total t.block

let pp ppf t =
  Format.fprintf ppf "%s<<<%a,%a>>> (%d regions, %d accesses, %a)" t.name
    Dim3.pp t.grid Dim3.pp t.block (List.length t.regions) (total_accesses t)
    Pasta_util.Bytesize.pp (bytes_touched t)
