module Imap = Map.Make (Int)

type alloc = { base : int; bytes : int; tag : string; managed : bool; seq : int }

module Freelist = Pasta_util.Freelist

type t = {
  va_base : int;
  cap : int;
  mutable allocs : alloc Imap.t; (* keyed by base *)
  mutable free_list : Freelist.t;
  mutable used : int;
  mutable next_seq : int;
}

let alignment = 512

let create ?(base = 0x7f00_0000_0000) ~capacity () =
  if capacity <= 0 then invalid_arg "Device_mem.create: capacity must be positive";
  {
    va_base = base;
    cap = capacity;
    allocs = Imap.empty;
    free_list = Freelist.singleton ~base ~bytes:capacity;
    used = 0;
    next_seq = 0;
  }

let capacity t = t.cap
let used_bytes t = t.used
let live_count t = Imap.cardinal t.allocs

exception Out_of_memory of { requested : int; available : int }

let alloc t ?(tag = "device") ?(managed = false) bytes =
  if bytes < 0 then invalid_arg "Device_mem.alloc: negative size";
  let bytes = max alignment (Pasta_util.Bytesize.align_up bytes ~align:alignment) in
  let base, free_list =
    match Freelist.take_first_fit t.free_list ~bytes with
    | Some r -> r
    | None -> raise (Out_of_memory { requested = bytes; available = t.cap - t.used })
  in
  let a = { base; bytes; tag; managed; seq = t.next_seq } in
  t.free_list <- free_list;
  t.allocs <- Imap.add base a t.allocs;
  t.used <- t.used + bytes;
  t.next_seq <- t.next_seq + 1;
  a

let free t base =
  match Imap.find_opt base t.allocs with
  | None -> invalid_arg "Device_mem.free: not a live allocation base"
  | Some a ->
      t.allocs <- Imap.remove base t.allocs;
      t.free_list <- Freelist.insert t.free_list ~base:a.base ~bytes:a.bytes;
      t.used <- t.used - a.bytes;
      a

let find_containing t addr =
  match Imap.find_last_opt (fun b -> b <= addr) t.allocs with
  | Some (_, a) when addr < a.base + a.bytes -> Some a
  | _ -> None

let iter_live f t = Imap.iter (fun _ a -> f a) t.allocs
let live t = List.map snd (Imap.bindings t.allocs)

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  (* Allocations sorted, non-overlapping, within range. *)
  let prev_end = ref t.va_base in
  Imap.iter
    (fun base a ->
      if base <> a.base then fail "key/base mismatch at 0x%x" base;
      if a.base < !prev_end then fail "overlap at 0x%x" a.base;
      if a.base + a.bytes > t.va_base + t.cap then fail "allocation beyond range";
      prev_end := a.base + a.bytes)
    t.allocs;
  (* Free list sorted, coalesced, disjoint from allocations. *)
  let rec check_holes = function
    | [] -> ()
    | (b, n) :: rest ->
        if n <= 0 then fail "empty hole at 0x%x" b;
        (match find_containing t b with
        | Some _ -> fail "hole overlaps allocation at 0x%x" b
        | None -> ());
        (match rest with
        | (b2, _) :: _ ->
            if b + n > b2 then fail "free list overlap";
            if b + n = b2 then fail "free list not coalesced at 0x%x" b
        | [] -> ());
        check_holes rest
  in
  check_holes (Freelist.holes t.free_list);
  (* Accounting. *)
  let alloc_total = Imap.fold (fun _ a acc -> acc + a.bytes) t.allocs 0 in
  let hole_total = Freelist.total t.free_list in
  if alloc_total <> t.used then fail "used accounting drift";
  if alloc_total + hole_total <> t.cap then fail "capacity accounting drift"
