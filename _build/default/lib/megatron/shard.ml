module L = Dlfw.Layer
module T = Dlfw.Tensor
module Ops = Dlfw.Ops

type cfg = {
  layers : int;
  dim : int;
  heads : int;
  seq : int;
  vocab : int;
  batch : int;
}

let gpt2_345m =
  { layers = 24; dim = 1024; heads = 16; seq = 1024; vocab = 50257; batch = 4 }

let file = "megatron/model/transformer.py"

(* Column-parallel attention + row-parallel output projection. *)
let tp_attention ctx cfg ~shard ~comm =
  if cfg.heads mod shard <> 0 then invalid_arg "Shard.tp_attention: shard must divide heads";
  let d = cfg.dim in
  let d_local = d / shard in
  let heads_local = cfg.heads / shard in
  let dh = d / cfg.heads in
  let w_qkv = T.create ctx.Dlfw.Ctx.pool ~name:"tp.attn.qkv.weight" [ 3 * d_local; d ] Dlfw.Dtype.F32 in
  let w_o = T.create ctx.Dlfw.Ctx.pool ~name:"tp.attn.out.weight" [ d; d_local ] Dlfw.Dtype.F32 in
  let params = [ w_qkv; w_o ] in
  let fwd ctx l x =
    let m = T.numel x / d in
    let batch = max 1 (m / cfg.seq) in
    let qkv = Ops.linear ctx ~input:x ~weight:w_qkv ~bias:None ~m ~k:d ~n:(3 * d_local) in
    let probs =
      Ops.bmm ctx ~a:qkv ~b:qkv ~m:(batch * heads_local * cfg.seq) ~n:cfg.seq ~k:dh
        ~out_shape:[ batch; heads_local; cfg.seq; cfg.seq ]
    in
    Ops.softmax_ ctx probs;
    let ctxv = Ops.bmm ctx ~a:probs ~b:qkv ~m ~n:d_local ~k:cfg.seq ~out_shape:[ m; d_local ] in
    let out = Ops.linear ctx ~input:ctxv ~weight:w_o ~bias:None ~m ~k:d_local ~n:d in
    (* RowParallelLinear: all-reduce the partial output across ranks. *)
    comm ~bytes:(T.bytes out);
    if ctx.Dlfw.Ctx.training then L.save l [ x; qkv; probs; ctxv ]
    else List.iter T.release [ x; qkv; probs; ctxv ];
    out
  in
  let bwd ctx l g =
    let x, qkv, probs, ctxv =
      match L.unsave l 4 with [ a; b; c; d' ] -> (a, b, c, d') | _ -> assert false
    in
    let m = T.numel x / d in
    let batch = max 1 (m / cfg.seq) in
    let g_ctxv, gw_o, _ =
      Ops.linear_bwd ctx ~input:ctxv ~weight:w_o ~grad_out:g ~has_bias:false ~m
        ~k:d_local ~n:d
    in
    let g_probs =
      Ops.bmm ctx ~a:g_ctxv ~b:qkv ~m:(batch * heads_local * cfg.seq) ~n:cfg.seq ~k:dh
        ~out_shape:[ batch; heads_local; cfg.seq; cfg.seq ]
    in
    let g_scores = Ops.softmax_bwd ctx ~output:probs ~grad_out:g_probs in
    let g_qkv = Ops.bmm ctx ~a:g_scores ~b:qkv ~m ~n:(3 * d_local) ~k:cfg.seq ~out_shape:[ m; 3 * d_local ] in
    let gin, gw_qkv, _ =
      Ops.linear_bwd ctx ~input:x ~weight:w_qkv ~grad_out:g_qkv ~has_bias:false ~m
        ~k:d ~n:(3 * d_local)
    in
    comm ~bytes:(T.bytes gin);
    List.iter T.release [ g; x; qkv; probs; ctxv; g_ctxv; g_probs; g_scores; g_qkv ];
    l.L.grads <- l.L.grads @ [ gw_qkv; gw_o ];
    gin
  in
  L.custom ~params ~file ~line:312 ~name:"ParallelAttention" ~fwd ~bwd ()

let tp_mlp ctx cfg ~shard ~comm =
  let d = cfg.dim in
  let hidden_local = 4 * d / shard in
  let comm_after =
    let fwd ctx l x =
      ignore ctx;
      ignore l;
      comm ~bytes:(T.bytes x);
      x
    in
    let bwd ctx l g =
      ignore ctx;
      ignore l;
      comm ~bytes:(T.bytes g);
      g
    in
    L.custom ~file ~line:120 ~name:"RowParallelReduce" ~fwd ~bwd ()
  in
  [
    L.linear ctx ~file ~line:116 ~bias:false ~in_features:d ~out_features:hidden_local ();
    L.gelu ctx;
    L.linear ctx ~file ~line:118 ~bias:false ~in_features:hidden_local ~out_features:d ();
    comm_after;
  ]

let tp_block ctx cfg ~shard ~comm =
  L.sequential ~name:"ParallelTransformerLayer"
    [
      L.residual ~name:"attn_residual"
        [ L.layernorm ctx ~features:cfg.dim; tp_attention ctx cfg ~shard ~comm ];
      L.residual ~name:"mlp_residual"
        (L.layernorm ctx ~features:cfg.dim :: tp_mlp ctx cfg ~shard ~comm);
    ]

let embedding_layers ctx cfg ~vocab_rows =
  [
    L.embedding ctx ~file ~line:44 ~vocab:vocab_rows ~dim:cfg.dim
      ~rows_touched:(min (cfg.batch * cfg.seq) (vocab_rows / 8))
      ();
    Dlfw.Transformer.pos_add ctx ~file ~seq:cfg.seq ~dim:cfg.dim;
  ]

let head_layers ctx cfg ~vocab_rows =
  [
    L.layernorm ctx ~features:cfg.dim;
    L.linear ctx ~file ~line:203 ~bias:false ~in_features:cfg.dim ~out_features:vocab_rows ();
  ]

let make_model name root cfg =
  {
    Dlfw.Model.name;
    abbr = name;
    root;
    make_input =
      (fun ctx -> Ops.new_tensor ctx ~name:"input_ids" [ cfg.batch; cfg.seq ] Dlfw.Dtype.I64);
    batch = cfg.batch;
  }

let build_tp_model ctx cfg ~shard ~comm =
  let vocab_rows = max 1 (cfg.vocab / shard) in
  let root =
    L.sequential ~name:"MegatronGPT2-TP"
      (embedding_layers ctx cfg ~vocab_rows
      @ List.init cfg.layers (fun _ -> tp_block ctx cfg ~shard ~comm)
      @ head_layers ctx cfg ~vocab_rows)
  in
  make_model "Megatron-GPT2-345M/TP" root cfg

let build_full_model ctx cfg =
  let model =
    Dlfw.Gpt2.build ~batch:cfg.batch ~seq:cfg.seq ~layers:cfg.layers ~dim:cfg.dim
      ~heads:cfg.heads ctx
  in
  { model with Dlfw.Model.name = "Megatron-GPT2-345M/DP" }

let build_pp_stages ctx0 ctx1 cfg =
  let half = cfg.layers / 2 in
  let block ctx = Dlfw.Transformer.block_prenorm ctx ~file ~dim:cfg.dim ~heads:cfg.heads ~seq:cfg.seq () in
  let stage0 =
    L.sequential ~name:"PP-stage0"
      (embedding_layers ctx0 cfg ~vocab_rows:cfg.vocab
      @ List.init half (fun _ -> block ctx0))
  in
  let stage1 =
    L.sequential ~name:"PP-stage1"
      (List.init (cfg.layers - half) (fun _ -> block ctx1)
      @ head_layers ctx1 cfg ~vocab_rows:cfg.vocab)
  in
  (stage0, stage1)
