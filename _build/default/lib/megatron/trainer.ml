module D = Gpusim.Device
module T = Dlfw.Tensor
module L = Dlfw.Layer
module Ops = Dlfw.Ops

type strategy = DP | TP | PP

let strategy_to_string = function DP -> "DP" | TP -> "TP" | PP -> "PP"
let all_strategies = [ DP; TP; PP ]

type result = {
  strategy : strategy;
  timelines : (int * Pasta_tools.Mem_timeline.t) list;
  peaks_mb : (int * float) list;
  kernels : (int * int) list;
  elapsed_us : float;
}

let microbatches = 4
let grad_bucket_bytes = 25 * 1024 * 1024 (* DDP's 25 MB gradient buckets *)

let allreduce_grads comm ~rank pairs =
  let total = List.fold_left (fun acc (_, g) -> acc + T.bytes g) 0 pairs in
  let rec go remaining =
    if remaining > 0 then begin
      Comm.local_reduce comm ~rank ~bytes:(min remaining grad_bucket_bytes);
      go (remaining - grad_bucket_bytes)
    end
  in
  go total

let run_dp ctxs comm cfg =
  List.iteri
    (fun rank ctx ->
      let model = Shard.build_full_model ctx cfg in
      Dlfw.Model.train_iter_hooked ctx model ~before_opt:(allreduce_grads comm ~rank))
    ctxs

let run_tp ctxs comm cfg =
  List.iteri
    (fun rank ctx ->
      let model =
        Shard.build_tp_model ctx cfg ~shard:(List.length ctxs)
          ~comm:(fun ~bytes -> Comm.local_reduce comm ~rank ~bytes)
      in
      Dlfw.Model.train_iter_hooked ctx model ~before_opt:ignore)
    ctxs

(* GPipe schedule: all microbatch forwards, then backwards in reverse
   order (matching the layers' LIFO saved-activation stacks), gradient
   accumulation across microbatches, one optimizer step per stage. *)
let run_pp ctx0 ctx1 comm cfg =
  (* Keep the global batch equal to the other strategies: split it into
     microbatches rather than multiplying it. *)
  let cfg = { cfg with Shard.batch = max 1 (cfg.Shard.batch * 2 / microbatches) } in
  let stage0, stage1 = Shard.build_pp_stages ctx0 ctx1 cfg in
  ctx0.Dlfw.Ctx.training <- true;
  ctx1.Dlfw.Ctx.training <- true;
  let act_bytes = cfg.Shard.batch * cfg.Shard.seq * cfg.Shard.dim * 4 in
  (* Forward all microbatches through both stages. *)
  let logits_list =
    List.init microbatches (fun _ ->
        let input =
          Ops.new_tensor ctx0 ~name:"input_ids" [ cfg.Shard.batch; cfg.Shard.seq ]
            Dlfw.Dtype.I64
        in
        let a0 = L.forward ctx0 stage0 input in
        Comm.send_recv comm ~src:0 ~dst:1 ~bytes:act_bytes;
        let a1 =
          Ops.new_tensor ctx1 ~name:"pp_activation_in"
            [ cfg.Shard.batch * cfg.Shard.seq; cfg.Shard.dim ]
            Dlfw.Dtype.F32
        in
        T.release a0;
        L.forward ctx1 stage1 a1)
  in
  (* Backward in reverse microbatch order, accumulating gradients. *)
  let acc0 : (int, T.t) Hashtbl.t = Hashtbl.create 64 in
  let acc1 : (int, T.t) Hashtbl.t = Hashtbl.create 64 in
  let accumulate ctx acc pairs =
    List.iter
      (fun (p, g) ->
        match Hashtbl.find_opt acc (T.id p) with
        | None -> Hashtbl.add acc (T.id p) g
        | Some g0 ->
            Dlfw.Kernels.elementwise ctx ~op:"grad_accumulate" ~ins:[ g ] ~out:g0;
            T.release g)
      pairs
  in
  List.iter
    (fun logits ->
      let loss = Ops.cross_entropy ctx1 ~logits in
      let g = Ops.cross_entropy_bwd ctx1 ~logits in
      T.release loss;
      T.release logits;
      let g_a1 = L.backward ctx1 stage1 g in
      Comm.send_recv comm ~src:1 ~dst:0 ~bytes:act_bytes;
      T.release g_a1;
      let g_a0 =
        Ops.new_tensor ctx0 ~name:"pp_grad_in"
          [ cfg.Shard.batch * cfg.Shard.seq; cfg.Shard.dim ]
          Dlfw.Dtype.F32
      in
      let g_input = L.backward ctx0 stage0 g_a0 in
      T.release g_input;
      accumulate ctx1 acc1 (L.take_grad_pairs stage1);
      accumulate ctx0 acc0 (L.take_grad_pairs stage0))
    (List.rev logits_list);
  (* Optimizer step per stage. *)
  let step ctx stage acc =
    let params = L.all_params stage in
    let pairs =
      List.filter_map
        (fun p ->
          Option.map (fun g -> (p, g)) (Hashtbl.find_opt acc (T.id p)))
        params
    in
    let ps, gs = List.split pairs in
    if ps <> [] then Ops.sgd_step ctx ~params:ps ~grads:gs;
    List.iter T.release gs
  in
  step ctx1 stage1 acc1;
  step ctx0 stage0 acc0;
  ctx0.Dlfw.Ctx.training <- false;
  ctx1.Dlfw.Ctx.training <- false;
  D.synchronize ctx0.Dlfw.Ctx.device;
  D.synchronize ctx1.Dlfw.Ctx.device

type node_result = {
  per_rank : (int * int * Pasta_tools.Mem_timeline.t) list;
  internode_elapsed_us : float;
  intranode_elapsed_us : float;
}

let run_dp_ranks ~arch ~cfg ~node_of ~nranks =
  let devices = List.init nranks (fun id -> D.create ~id arch) in
  let ctxs =
    List.mapi (fun i d -> Dlfw.Ctx.create ~seed:(Int64.of_int (0x3E6A0 + i)) d) devices
  in
  let mg = Pasta_tools.Multi_gpu.attach devices in
  let comm = Comm.create ~node_of ctxs ~buffer_bytes:(64 * 1024 * 1024) in
  run_dp ctxs comm cfg;
  Comm.destroy comm;
  let timelines = Pasta_tools.Multi_gpu.timelines mg in
  ignore (Pasta_tools.Multi_gpu.detach mg);
  let elapsed = List.fold_left (fun acc d -> Float.max acc (D.now_us d)) 0.0 devices in
  List.iter Dlfw.Ctx.destroy ctxs;
  (timelines, elapsed)

let run_multinode_dp ?(arch = Gpusim.Arch.a100) ?(cfg = Shard.gpt2_345m) ~nodes
    ~gpus_per_node () =
  if nodes <= 0 || gpus_per_node <= 0 || nodes * gpus_per_node < 2 then
    invalid_arg "Trainer.run_multinode_dp: need at least two ranks";
  let nranks = nodes * gpus_per_node in
  let node_of rank = rank / gpus_per_node in
  let timelines, internode_elapsed_us =
    run_dp_ranks ~arch ~cfg ~node_of ~nranks
  in
  let _, intranode_elapsed_us = run_dp_ranks ~arch ~cfg ~node_of:(fun _ -> 0) ~nranks in
  {
    per_rank = List.map (fun (id, tl) -> (node_of id, id, tl)) timelines;
    internode_elapsed_us;
    intranode_elapsed_us;
  }

let run_iteration ?(arch = Gpusim.Arch.a100) ?(cfg = Shard.gpt2_345m) strategy =
  let dev0 = D.create ~id:0 arch and dev1 = D.create ~id:1 arch in
  let ctx0 = Dlfw.Ctx.create ~seed:0x3E6A0L dev0 in
  let ctx1 = Dlfw.Ctx.create ~seed:0x3E6A1L dev1 in
  let mg = Pasta_tools.Multi_gpu.attach [ dev0; dev1 ] in
  let comm = Comm.create [ ctx0; ctx1 ] ~buffer_bytes:(64 * 1024 * 1024) in
  (match strategy with
  | DP -> run_dp [ ctx0; ctx1 ] comm cfg
  | TP -> run_tp [ ctx0; ctx1 ] comm cfg
  | PP -> run_pp ctx0 ctx1 comm cfg);
  Comm.destroy comm;
  let timelines = Pasta_tools.Multi_gpu.timelines mg in
  let results = Pasta_tools.Multi_gpu.detach mg in
  let peaks_mb =
    List.map
      (fun (id, tl) -> (id, Pasta_tools.Mem_timeline.peak_bytes tl /. 1048576.0))
      timelines
  in
  let kernels = List.map (fun (id, r) -> (id, r.Pasta.Session.kernels)) results in
  let elapsed_us = Float.max (D.now_us dev0) (D.now_us dev1) in
  Dlfw.Ctx.destroy ctx0;
  Dlfw.Ctx.destroy ctx1;
  { strategy; timelines; peaks_mb; kernels; elapsed_us }
