(** Two-GPU Megatron GPT-2 345M training (paper §V-D2, Fig. 15).

    Runs one training iteration under each parallelism strategy with a
    PASTA memory-timeline session attached to every rank:

    - [DP]: full replicas, gradient all-reduce before the optimizer —
      identical per-GPU memory curves at full peak;
    - [TP]: Megatron tensor parallelism — identical curves at roughly
      half the peak;
    - [PP]: pipeline split at the block-stack midpoint with GPipe-style
      microbatching — asymmetric curves, the logits-producing stage 1
      showing the heavier tail. *)

type strategy = DP | TP | PP

val strategy_to_string : strategy -> string
val all_strategies : strategy list

type result = {
  strategy : strategy;
  timelines : (int * Pasta_tools.Mem_timeline.t) list;  (** per device id *)
  peaks_mb : (int * float) list;
  kernels : (int * int) list;  (** kernels launched per device *)
  elapsed_us : float;
}

val run_iteration : ?arch:Gpusim.Arch.t -> ?cfg:Shard.cfg -> strategy -> result

type node_result = {
  per_rank : (int * int * Pasta_tools.Mem_timeline.t) list;
      (** (node, rank, timeline), one PASTA profile per rank — the
          per-rank output of the paper's multi-node mode (§IV-D) *)
  internode_elapsed_us : float;
  intranode_elapsed_us : float;
      (** the same iteration on a single node, for comparison: the
          inter-node ring must be slower *)
}

val run_multinode_dp :
  ?arch:Gpusim.Arch.t -> ?cfg:Shard.cfg -> nodes:int -> gpus_per_node:int ->
  unit -> node_result
(** Data-parallel training over [nodes x gpus_per_node] ranks, one PASTA
    session per rank.  Raises [Invalid_argument] unless both counts are
    positive and the total is at least two. *)
