lib/megatron/shard.ml: Dlfw List
