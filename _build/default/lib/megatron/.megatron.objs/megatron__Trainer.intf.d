lib/megatron/trainer.mli: Gpusim Pasta_tools Shard
