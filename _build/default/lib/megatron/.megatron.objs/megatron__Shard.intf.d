lib/megatron/shard.mli: Dlfw
