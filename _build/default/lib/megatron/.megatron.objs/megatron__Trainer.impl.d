lib/megatron/trainer.ml: Comm Dlfw Float Gpusim Hashtbl Int64 List Option Pasta Pasta_tools Shard
