lib/megatron/comm.mli: Dlfw
