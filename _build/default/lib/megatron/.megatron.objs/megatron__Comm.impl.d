lib/megatron/comm.ml: Array Dlfw Float Gpusim List
