(** Tensor-parallel (Megatron-style) model shards.

    Column-parallel projections shrink by the shard factor, attention
    runs on [heads/shard] heads, and every row-parallel output triggers an
    activation all-reduce through the supplied [comm] hook — the
    Megatron-LM partitioning that halves per-GPU peak memory at
    [shard = 2] (paper Fig. 15, TP). *)

type cfg = {
  layers : int;
  dim : int;
  heads : int;
  seq : int;
  vocab : int;
  batch : int;
}

val gpt2_345m : cfg
(** 24 layers, d=1024, 16 heads, seq 1024, the Fig. 15 model. *)

val tp_block :
  Dlfw.Ctx.t -> cfg -> shard:int -> comm:(bytes:int -> unit) -> Dlfw.Layer.t

val build_tp_model :
  Dlfw.Ctx.t -> cfg -> shard:int -> comm:(bytes:int -> unit) -> Dlfw.Model.t
(** Full sharded replica: vocab-parallel embedding, [cfg.layers] TP
    blocks, final norm and a vocab-sharded LM head. *)

val build_full_model : Dlfw.Ctx.t -> cfg -> Dlfw.Model.t
(** Unsharded replica (the DP case), reusing the GPT-2 definition. *)

val build_pp_stages : Dlfw.Ctx.t -> Dlfw.Ctx.t -> cfg -> Dlfw.Layer.t * Dlfw.Layer.t
(** Pipeline split at the midpoint of the block stack: stage 0 holds the
    embedding and the first half, stage 1 the second half plus the final
    norm and LM head (built on the second context's device). *)
