let file = "models/bert/bert_pytorch/model/bert.py"
let vocab = 30522

(* Select each sequence's [CLS] position before the pooler: the classifier
   then works on tiny [batch; dim] tensors, giving BERT its kilobyte-scale
   minimum working set (Table V). *)
let take_cls ctx ~batch ~seq ~dim =
  ignore ctx;
  let fwd ctx l x =
    Ops.record ctx "aten::select" @@ fun () ->
    let out = Ops.new_tensor ctx ~name:"cls_tokens" [ batch; dim ] Dtype.F32 in
    Kernels.launch ctx ~name:"at::native::index_select_cuda_kernel"
      ~regions:
        [
          Kernels.region ~extent:(Tensor.bytes out)
            ~pattern:(Gpusim.Kernel.Strided (seq * dim * 4))
            x;
          Kernels.region ~rw:Kernels.Write out;
        ]
      ~flops:0.0 ~work:(Tensor.numel out) ();
    if ctx.Ctx.training then Layer.save l [ x ] else Tensor.release x;
    out
  in
  let bwd ctx l g =
    let x = match Layer.unsave l 1 with [ x ] -> x | _ -> assert false in
    let gin = Ops.new_tensor ctx ~name:"grad_cls_scatter" (Tensor.shape x) Dtype.F32 in
    Kernels.fill ctx gin;
    Kernels.launch ctx ~name:"at::native::index_put_kernel"
      ~regions:
        [
          Kernels.region g;
          Kernels.region ~rw:Kernels.Write ~extent:(Tensor.bytes g) gin;
        ]
      ~flops:0.0 ~work:(Tensor.numel g) ();
    Tensor.release x;
    Tensor.release g;
    gin
  in
  Layer.custom ~file ~line:84 ~name:"TakeCLS" ~fwd ~bwd ()

let build ?(batch = 16) ?(seq = 512) ?(layers = 12) ?(dim = 768) ?(heads = 12) ctx =
  let blocks =
    List.init layers (fun _ -> Transformer.block_postnorm ctx ~file ~dim ~heads ~seq ())
  in
  let root =
    Layer.sequential ~name:"BERT"
      ([
         Layer.embedding ctx ~file ~line:24 ~vocab ~dim
           ~rows_touched:(min (batch * seq) (vocab / 8))
           ();
         Transformer.pos_add ctx ~file ~seq ~dim;
         Layer.layernorm ctx ~features:dim;
         Layer.dropout ctx;
       ]
      @ blocks
      @ [
          (* Pooler + sequence classifier over the [CLS] positions. *)
          take_cls ctx ~batch ~seq ~dim;
          Layer.linear ctx ~file ~line:88 ~in_features:dim ~out_features:dim ();
          Layer.gelu ctx;
          Layer.linear ctx ~file ~line:90 ~in_features:dim ~out_features:2 ();
        ])
  in
  {
    Model.name = "BERT";
    abbr = "BERT";
    root;
    make_input =
      (fun ctx -> Ops.new_tensor ctx ~name:"input_ids" [ batch; seq ] Dtype.I64);
    batch;
  }
