(** Tensor shapes: ordered dimension lists. *)

type t = int list

val numel : t -> int
(** Product of dimensions; 1 for the scalar shape [[]].  Raises
    [Invalid_argument] on a non-positive dimension. *)

val bytes : t -> Dtype.t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
