let file = "models/resnet/model.py"

let conv ctx ~line ~in_ch ~out_ch ~k ~stride ~pad =
  Layer.conv2d ctx ~file ~line ~bias:false ~in_ch ~out_ch ~k ~stride ~pad
    ~algo:`Cudnn ()

let basic_block ctx ~in_ch ~out_ch ~stride =
  let body =
    [
      conv ctx ~line:41 ~in_ch ~out_ch ~k:3 ~stride ~pad:1;
      Layer.batchnorm ctx ~features:out_ch;
      Layer.relu ctx;
      conv ctx ~line:44 ~in_ch:out_ch ~out_ch ~k:3 ~stride:1 ~pad:1;
      Layer.batchnorm ctx ~features:out_ch;
    ]
  in
  let skip =
    if stride <> 1 || in_ch <> out_ch then
      Some
        [
          conv ctx ~line:48 ~in_ch ~out_ch ~k:1 ~stride ~pad:0;
          Layer.batchnorm ctx ~features:out_ch;
        ]
    else None
  in
  Layer.sequential ~name:"BasicBlock"
    [ Layer.residual ~name:"BasicBlock.residual" ?skip body; Layer.relu ctx ]

let stage ctx ~count ~in_ch ~out_ch ~stride =
  List.init count (fun i ->
      basic_block ctx
        ~in_ch:(if i = 0 then in_ch else out_ch)
        ~out_ch
        ~stride:(if i = 0 then stride else 1))

let build ~name ~abbr ~blocks ?(batch = 32) ctx =
  let b1, b2, b3, b4 = blocks in
  let root =
    Layer.sequential ~name
      ([
         conv ctx ~line:12 ~in_ch:3 ~out_ch:64 ~k:7 ~stride:2 ~pad:3;
         Layer.batchnorm ctx ~features:64;
         Layer.relu ctx;
         Layer.maxpool ctx ~k:3 ~stride:2;
       ]
      @ stage ctx ~count:b1 ~in_ch:64 ~out_ch:64 ~stride:1
      @ stage ctx ~count:b2 ~in_ch:64 ~out_ch:128 ~stride:2
      @ stage ctx ~count:b3 ~in_ch:128 ~out_ch:256 ~stride:2
      @ stage ctx ~count:b4 ~in_ch:256 ~out_ch:512 ~stride:2
      @ [
          Layer.avgpool_to ctx ~out_hw:1;
          Layer.flatten ctx;
          Layer.linear ctx ~file ~line:77 ~in_features:512 ~out_features:1000 ();
        ])
  in
  {
    Model.name;
    abbr;
    root;
    make_input =
      (fun ctx -> Ops.new_tensor ctx ~name:"input_images" [ batch; 3; 224; 224 ] Dtype.F32);
    batch;
  }

let build18 ?batch ctx = build ~name:"ResNet18" ~abbr:"RN-18" ~blocks:(2, 2, 2, 2) ?batch ctx
let build34 ?batch ctx = build ~name:"ResNet34" ~abbr:"RN-34" ~blocks:(3, 4, 6, 3) ?batch ctx
