(** Pool-based caching allocator, modeled on PyTorch's
    [CUDACachingAllocator].

    Device memory is requested from the runtime in large *segments*
    ([cudaMalloc] / [cudaMallocManaged]) and subdivided to serve tensor
    allocations: requests are rounded to 512 B, small requests (< 1 MiB)
    come from 2 MiB segments, mid-size requests from 20 MiB segments, and
    big requests get their own segment.  Freed blocks return to their
    segment's free list and coalesce for reuse.

    This pooling is the behaviour that breaks object-level UVM prefetching
    (paper §V-C1): one runtime-visible memory object (a segment) holds many
    tensors with unrelated lifetimes and access patterns.

    Every block allocation/release fires {!Callbacks.report_memory_usage},
    mirroring [c10::reportMemoryUsage]. *)

type block = {
  id : int;
  base : int;
  bytes : int;  (** rounded size actually reserved for the block *)
  requested : int;
  seg_base : int;  (** owning segment — the runtime-visible memory object *)
  seg_bytes : int;
}

type t

val create : ?managed:bool -> Gpusim.Device.t -> t
(** [managed] routes segment allocation through [malloc_managed], putting
    the whole pool under UVM. *)

val device : t -> Gpusim.Device.t
val managed : t -> bool

val alloc : t -> ?tag:string -> int -> block
(** Best-fit over the pool's free blocks, 512-byte aligned like the CUDA
    caching allocator.  Raises [Invalid_argument] on a negative size.
    Propagates
    {!Gpusim.Device_mem.Out_of_memory} after releasing cached segments
    fails to make room. *)

val free : t -> block -> unit
(** Raises [Invalid_argument] on double free. *)

val allocated_bytes : t -> int
(** Live block bytes. *)

val reserved_bytes : t -> int
(** Device bytes held in segments. *)

val peak_allocated : t -> int
val peak_reserved : t -> int
val alloc_count : t -> int
val free_count : t -> int
val segment_count : t -> int

val segments : t -> (int * int) list
(** [(base, bytes)] of every live segment. *)

val segment_of_addr : t -> int -> (int * int) option
(** Owning segment of an address inside the pool. *)

val release_cached : t -> unit
(** Return empty segments to the device ([emptyCache]). *)

val destroy : t -> unit
(** Free all segments unconditionally; the pool must not be used after.
    Blocks still live are abandoned (their tensors become dangling), which
    mirrors allocator teardown at process exit. *)

val check_invariants : t -> unit
