type t = int list

let numel t =
  List.fold_left
    (fun acc d ->
      if d <= 0 then invalid_arg "Shape.numel: non-positive dimension";
      acc * d)
    1 t

let bytes t dt = numel t * Dtype.size_bytes dt

let pp ppf t =
  Format.fprintf ppf "[%s]" (String.concat "," (List.map string_of_int t))

let to_string t = Format.asprintf "%a" pp t
let equal = List.equal Int.equal
