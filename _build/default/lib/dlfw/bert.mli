(** BERT base (paper Table IV: encoder-only transformer, 12 layers,
    batch 16): d=768, 12 heads, sequence length 512, post-norm blocks and
    a small classification head.  The materialized 201 MB attention-score
    tensor is BERT's Table V working-set peak. *)

val build : ?batch:int -> ?seq:int -> ?layers:int -> ?dim:int -> ?heads:int -> Ctx.t -> Model.t
