lib/dlfw/tensor.ml: Allocator Dtype Format Shape
