lib/dlfw/ops.ml: Callbacks Ctx Dtype Gpusim Kernels List Option Tensor
