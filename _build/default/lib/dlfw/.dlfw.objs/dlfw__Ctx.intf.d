lib/dlfw/ctx.mli: Allocator Gpusim Pasta_util Tensor
