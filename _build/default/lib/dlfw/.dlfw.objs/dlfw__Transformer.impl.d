lib/dlfw/transformer.ml: Ctx Dtype Kernels Layer Ops Tensor
