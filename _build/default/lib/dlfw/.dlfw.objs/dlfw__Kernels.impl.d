lib/dlfw/kernels.ml: Ctx Dtype Gpusim List Printf String Tensor
