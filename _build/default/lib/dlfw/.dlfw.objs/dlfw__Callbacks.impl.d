lib/dlfw/callbacks.ml: List String
