lib/dlfw/kernels.mli: Ctx Gpusim Tensor
