lib/dlfw/runner.ml: Alexnet Bert Gpt2 Model Resnet Whisper
