lib/dlfw/tensor.mli: Allocator Dtype Format Shape
