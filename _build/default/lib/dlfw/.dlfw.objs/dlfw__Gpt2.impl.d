lib/dlfw/gpt2.ml: Dtype Layer List Model Ops Transformer
