lib/dlfw/transformer.mli: Ctx Layer
