lib/dlfw/whisper.mli: Ctx Model
