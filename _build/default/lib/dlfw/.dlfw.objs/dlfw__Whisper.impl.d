lib/dlfw/whisper.ml: Ctx Dtype Kernels Layer List Model Ops Tensor Transformer
