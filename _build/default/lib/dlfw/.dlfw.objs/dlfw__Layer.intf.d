lib/dlfw/layer.mli: Ctx Tensor
