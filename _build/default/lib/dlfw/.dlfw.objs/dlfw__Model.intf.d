lib/dlfw/model.mli: Ctx Layer Optimizer Tensor
