lib/dlfw/optimizer.mli: Ctx Tensor
