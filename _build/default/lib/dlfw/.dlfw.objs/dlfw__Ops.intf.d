lib/dlfw/ops.mli: Ctx Dtype Shape Tensor
