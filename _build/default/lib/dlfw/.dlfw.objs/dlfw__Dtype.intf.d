lib/dlfw/dtype.mli: Format
