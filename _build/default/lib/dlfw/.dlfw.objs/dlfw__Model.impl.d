lib/dlfw/model.ml: Ctx Gpusim Layer List Ops Optimizer Printf String Tensor
