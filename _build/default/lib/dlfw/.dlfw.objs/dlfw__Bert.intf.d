lib/dlfw/bert.mli: Ctx Model
