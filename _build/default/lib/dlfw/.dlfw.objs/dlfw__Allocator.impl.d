lib/dlfw/allocator.ml: Callbacks Format Gpusim Hashtbl List Pasta_util
