lib/dlfw/resnet.mli: Ctx Model
