lib/dlfw/dtype.ml: Format
