lib/dlfw/alexnet.ml: Dtype Layer Model Ops
