lib/dlfw/callbacks.mli:
