lib/dlfw/shape.mli: Dtype Format
