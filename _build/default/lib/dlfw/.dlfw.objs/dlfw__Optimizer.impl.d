lib/dlfw/optimizer.ml: Ctx Dtype Hashtbl Kernels List Ops Tensor
