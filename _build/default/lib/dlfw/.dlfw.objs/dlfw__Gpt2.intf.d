lib/dlfw/gpt2.mli: Ctx Model
