lib/dlfw/allocator.mli: Gpusim
