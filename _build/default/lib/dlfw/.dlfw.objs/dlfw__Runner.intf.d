lib/dlfw/runner.mli: Ctx Model
