lib/dlfw/resnet.ml: Dtype Layer List Model Ops
