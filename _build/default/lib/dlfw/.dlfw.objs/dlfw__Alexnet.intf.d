lib/dlfw/alexnet.mli: Ctx Model
