lib/dlfw/layer.ml: Ctx Dtype Gpusim Kernels List Ops Option Printf Shape Tensor
