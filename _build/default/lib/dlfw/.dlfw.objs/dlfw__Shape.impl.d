lib/dlfw/shape.ml: Dtype Format Int List String
