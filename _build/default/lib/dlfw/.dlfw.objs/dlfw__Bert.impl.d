lib/dlfw/bert.ml: Ctx Dtype Gpusim Kernels Layer List Model Ops Tensor Transformer
