lib/dlfw/ctx.ml: Allocator Gpusim Pasta_util Tensor
