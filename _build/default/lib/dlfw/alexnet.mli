(** AlexNet (paper Table IV: CNN, 8 layers, batch 128).

    Convolutions take the aten im2col+GEMM fallback path, which is why
    [at::native::im2col_kernel] dominates AlexNet's kernel-frequency
    distribution in the paper's Fig. 7. *)

val build : ?batch:int -> Ctx.t -> Model.t
