(** GPT-2 small (paper Table IV: decoder-only transformer, 12 layers,
    batch 8).  124M parameters: d=768, 12 heads, sequence length 1024,
    vocabulary 50257.  The untied LM head produces the 1.6 GB logits
    tensor that dominates GPT-2's footprint in Table V. *)

val build :
  ?batch:int -> ?seq:int -> ?layers:int -> ?dim:int -> ?heads:int ->
  ?checkpoint:bool -> Ctx.t -> Model.t
(** [checkpoint] wraps every transformer block in gradient checkpointing,
    trading recomputation for training memory. *)
