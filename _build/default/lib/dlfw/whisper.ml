let file = "models/whisper/model.py"
let vocab = 51865
let dim = 768
let heads = 12
let enc_seq = 1500
let dec_seq = 448
let head_positions = 32

(* Cross-attention: queries from the decoder stream, keys/values from the
   encoder output published in [enc_holder] by the model root. *)
let cross_attention ctx ~enc_holder =
  let d = dim and dh = dim / heads in
  let w_q = Tensor.create ctx.Ctx.pool ~name:"cross.q.weight" [ d; d ] Dtype.F32 in
  let w_kv = Tensor.create ctx.Ctx.pool ~name:"cross.kv.weight" [ 2 * d; d ] Dtype.F32 in
  let w_o = Tensor.create ctx.Ctx.pool ~name:"cross.out.weight" [ d; d ] Dtype.F32 in
  let params = [ w_q; w_kv; w_o ] in
  let fwd ctx l x =
    let enc =
      match !enc_holder with
      | Some e -> e
      | None -> invalid_arg "Whisper: cross-attention before encoder ran"
    in
    let m_dec = Tensor.numel x / d in
    let m_enc = Tensor.numel enc / d in
    let batch = max 1 (m_dec / dec_seq) in
    let q = Ops.linear ctx ~input:x ~weight:w_q ~bias:None ~m:m_dec ~k:d ~n:d in
    let kv = Ops.linear ctx ~input:enc ~weight:w_kv ~bias:None ~m:m_enc ~k:d ~n:(2 * d) in
    let probs =
      Ops.bmm ctx ~a:q ~b:kv ~m:(batch * heads * dec_seq) ~n:enc_seq ~k:dh
        ~out_shape:[ batch; heads; dec_seq; enc_seq ]
    in
    Ops.softmax_ ctx probs;
    let ctxv = Ops.bmm ctx ~a:probs ~b:kv ~m:m_dec ~n:d ~k:enc_seq ~out_shape:[ m_dec; d ] in
    let out = Ops.linear ctx ~input:ctxv ~weight:w_o ~bias:None ~m:m_dec ~k:d ~n:d in
    if ctx.Ctx.training then Layer.save l [ x; q; kv; probs; ctxv ]
    else List.iter Tensor.release [ x; q; kv; probs; ctxv ];
    out
  in
  let bwd ctx l g =
    let x, q, kv, probs, ctxv =
      match Layer.unsave l 5 with
      | [ a; b; c; d'; e ] -> (a, b, c, d', e)
      | _ -> assert false
    in
    let m_dec = Tensor.numel x / d in
    let batch = max 1 (m_dec / dec_seq) in
    let g_ctxv, gw_o, _ =
      Ops.linear_bwd ctx ~input:ctxv ~weight:w_o ~grad_out:g ~has_bias:false ~m:m_dec
        ~k:d ~n:d
    in
    let g_probs =
      Ops.bmm ctx ~a:g_ctxv ~b:kv ~m:(batch * heads * dec_seq) ~n:enc_seq ~k:dh
        ~out_shape:[ batch; heads; dec_seq; enc_seq ]
    in
    let g_scores = Ops.softmax_bwd ctx ~output:probs ~grad_out:g_probs in
    let g_q = Ops.bmm ctx ~a:g_scores ~b:kv ~m:m_dec ~n:d ~k:enc_seq ~out_shape:[ m_dec; d ] in
    let gin, gw_q, _ =
      Ops.linear_bwd ctx ~input:x ~weight:w_q ~grad_out:g_q ~has_bias:false ~m:m_dec
        ~k:d ~n:d
    in
    (* The key/value projection gradient flows toward the encoder; the
       encoder's backward pass is driven separately by the model root. *)
    let gw_kv = Ops.new_tensor ctx ~name:"grad_cross_kv" (Tensor.shape w_kv) Dtype.F32 in
    Kernels.fill ctx gw_kv;
    List.iter Tensor.release [ g; x; q; kv; probs; ctxv; g_ctxv; g_probs; g_scores; g_q ];
    l.Layer.grads <- l.Layer.grads @ [ gw_q; gw_kv; gw_o ];
    gin
  in
  Layer.custom ~params ~file ~line:63 ~name:"CrossAttention" ~fwd ~bwd ()

(* Keep only the last [head_positions] positions before the LM head, as a
   KV-cached decode loop would score. *)
let take_tail ctx =
  let fwd ctx l x =
    ignore l;
    Ops.record ctx "aten::slice" @@ fun () ->
    let batch =
      match Tensor.shape x with b :: _ -> max 1 (b / dec_seq) | [] -> 1
    in
    let out = Ops.new_tensor ctx ~name:"tail_slice" [ batch * head_positions; dim ] Dtype.F32 in
    Kernels.launch ctx ~name:"at::native::slice_copy_kernel"
      ~regions:
        [
          Kernels.region ~extent:(Tensor.bytes out) x;
          Kernels.region ~rw:Kernels.Write out;
        ]
      ~flops:0.0 ~work:(Tensor.numel out) ();
    if ctx.Ctx.training then Layer.save l [ x ] else Tensor.release x;
    out
  in
  let bwd ctx l g =
    let x = match Layer.unsave l 1 with [ x ] -> x | _ -> assert false in
    let gin = Ops.new_tensor ctx ~name:"grad_tail" (Tensor.shape x) Dtype.F32 in
    Kernels.fill ctx gin;
    Kernels.launch ctx ~name:"at::native::slice_backward_kernel"
      ~regions:
        [
          Kernels.region g;
          Kernels.region ~rw:Kernels.Write ~extent:(Tensor.bytes g) gin;
        ]
      ~flops:0.0 ~work:(Tensor.numel g) ();
    Tensor.release x;
    Tensor.release g;
    gin
  in
  ignore ctx;
  Layer.custom ~file ~line:101 ~name:"TakeTail" ~fwd ~bwd ()

let decoder_block ctx ~enc_holder =
  Layer.sequential ~name:"DecoderBlock"
    [
      Layer.residual ~name:"self_attn_residual"
        [
          Layer.layernorm ctx ~features:dim;
          Layer.attention ctx ~file ~line:81 ~embed_dim:dim ~heads ~seq:dec_seq ();
        ];
      Layer.residual ~name:"cross_attn_residual"
        [ Layer.layernorm ctx ~features:dim; cross_attention ctx ~enc_holder ];
      Layer.residual ~name:"mlp_residual"
        (Layer.layernorm ctx ~features:dim :: Transformer.mlp ctx ~file ~dim ~ratio:4);
    ]

let build ?(batch = 16) ctx =
  let enc_holder = ref None in
  let encoder =
    Layer.sequential ~name:"WhisperEncoder"
      ([
         Layer.conv2d ctx ~file ~line:21 ~in_ch:80 ~out_ch:dim ~k:3 ~stride:1 ~pad:1
           ~algo:`Im2col ();
         Layer.gelu ctx;
         Layer.conv2d ctx ~file ~line:23 ~in_ch:dim ~out_ch:dim ~k:3 ~stride:2 ~pad:1
           ~algo:`Im2col ();
         Layer.gelu ctx;
         Layer.flatten ctx;
         Transformer.pos_add ctx ~file ~seq:enc_seq ~dim;
       ]
      @ List.init 12 (fun _ ->
            Transformer.block_prenorm ctx ~file ~dim ~heads ~seq:enc_seq
              ~fused_attention:true ())
      @ [ Layer.layernorm ctx ~features:dim ])
  in
  let decoder =
    Layer.sequential ~name:"WhisperDecoder"
      ([
         Layer.embedding ctx ~file ~line:75 ~vocab ~dim
           ~rows_touched:(min (batch * dec_seq) (vocab / 16))
           ();
         Transformer.pos_add ctx ~file ~seq:dec_seq ~dim;
       ]
      @ List.init 12 (fun _ -> decoder_block ctx ~enc_holder)
      @ [ Layer.layernorm ctx ~features:dim ])
  in
  let head =
    Layer.sequential ~name:"WhisperHead"
      [
        take_tail ctx;
        Layer.linear ctx ~file ~line:118 ~bias:false ~in_features:dim
          ~out_features:vocab ();
      ]
  in
  let fwd ctx l mel =
    ignore l;
    (* The encoder is frozen during fine-tuning (run under no_grad), the
       standard Whisper training recipe: only the decoder accumulates
       activations and gradients. *)
    let was_training = ctx.Ctx.training in
    ctx.Ctx.training <- false;
    let enc_out = Layer.forward ctx encoder mel in
    ctx.Ctx.training <- was_training;
    enc_holder := Some enc_out;
    let tokens = Ops.new_tensor ctx ~name:"decoder_input_ids" [ batch; dec_seq ] Dtype.I64 in
    let dec_out = Layer.forward ctx decoder tokens in
    enc_holder := None;
    Tensor.release enc_out;
    Layer.forward ctx head dec_out
  in
  let bwd ctx l g =
    ignore l;
    let g_dec = Layer.backward ctx head g in
    let g_tokens = Layer.backward ctx decoder g_dec in
    Tensor.release g_tokens;
    (* The frozen encoder takes no backward pass; the chain ends with a
       token gradient for the mel input. *)
    Ops.new_tensor ctx ~name:"grad_mel" [ 1 ] Dtype.F32
  in
  let root =
    Layer.custom ~children:[ encoder; decoder; head ] ~file ~line:130
      ~name:"Whisper" ~fwd ~bwd ()
  in
  {
    Model.name = "Whisper (small)";
    abbr = "Whisper";
    root;
    make_input =
      (fun ctx -> Ops.new_tensor ctx ~name:"mel_spectrogram" [ batch; 80; 1; 3000 ] Dtype.F32);
    batch;
  }
