type t = F32 | F16 | I64 | I32 | U8

let size_bytes = function F32 -> 4 | F16 -> 2 | I64 -> 8 | I32 -> 4 | U8 -> 1

let to_string = function
  | F32 -> "float32"
  | F16 -> "float16"
  | I64 -> "int64"
  | I32 -> "int32"
  | U8 -> "uint8"

let pp ppf t = Format.pp_print_string ppf (to_string t)
