module H = Gpusim.Hostctx

type conv_cfg = {
  n : int;
  c : int;
  h : int;
  w : int;
  oc : int;
  kh : int;
  kw : int;
  stride : int;
  pad : int;
  algo : [ `Im2col | `Cudnn ];
  benchmark_search : bool;
}

let conv_out_dims cfg =
  let oh = ((cfg.h + (2 * cfg.pad) - cfg.kh) / cfg.stride) + 1 in
  let ow = ((cfg.w + (2 * cfg.pad) - cfg.kw) / cfg.stride) + 1 in
  if oh <= 0 || ow <= 0 then invalid_arg "Ops.conv_out_dims: degenerate geometry";
  (oh, ow)

let record (ctx : Ctx.t) name f =
  let seq = Callbacks.next_op_seq () in
  let device_id = Gpusim.Device.id ctx.Ctx.device in
  Callbacks.record_function { Callbacks.op_name = name; phase = `Begin; device_id; seq };
  let finish () =
    Callbacks.record_function { Callbacks.op_name = name; phase = `End; device_id; seq }
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let new_tensor (ctx : Ctx.t) ?name shape dtype = Tensor.create ctx.Ctx.pool ?name shape dtype

(* Native dispatch frames, innermost last in the list we push. *)
let with_native_frames frames f =
  let rec go = function
    | [] -> f ()
    | (file, line, symbol) :: rest ->
        H.with_frame H.Native { H.file; line; symbol } (fun () -> go rest)
  in
  go frames

let gemm_frames =
  [
    ("torch/build/aten/src/ATen/RegisterCUDA.cpp", 17434, "wrapper_CUDA_addmm");
    ("torch/aten/src/ATen/native/cuda/Blas.cpp", 281, "addmm_out_cuda_impl");
    ("torch/aten/src/ATen/cuda/CUDABlas.cpp", 771, "at::cuda::blas::gemm_and_bias()");
  ]

let conv_frames =
  [
    ("torch/build/aten/src/ATen/RegisterCUDA.cpp", 9912, "wrapper_CUDA_convolution");
    ("torch/aten/src/ATen/native/cudnn/Conv_v8.cpp", 403, "raw_cudnn_convolution_forward");
  ]

let elementwise_frames op =
  [ ("torch/aten/src/ATen/native/cuda/CUDALoops.cuh", 312, "gpu_kernel_impl<" ^ op ^ ">") ]

(* ----- forward ----- *)

let big_gemm_threshold = 1 lsl 20
let cublaslt_workspace_bytes = 64 * 1024 * 1024
let rocblas_scratch_bytes = 32 * 1024 * 1024

let cublaslt_workspace ctx =
  match ctx.Ctx.cublaslt_workspace with
  | Some ws -> ws
  | None ->
      let ws =
        new_tensor ctx ~name:"cublaslt_workspace" [ cublaslt_workspace_bytes / 4 ]
          Dtype.F32
      in
      ctx.Ctx.cublaslt_workspace <- Some ws;
      ws

let linear ctx ~input ~weight ~bias ~m ~k ~n =
  record ctx "aten::addmm" @@ fun () ->
  with_native_frames gemm_frames @@ fun () ->
  let out = new_tensor ctx ~name:"addmm_out" [ m; n ] Dtype.F32 in
  (match Ctx.vendor ctx with
  | Gpusim.Arch.Nvidia ->
      (* cuBLASLt: a persistent workspace and a fused bias epilogue. *)
      let unused_args =
        if m * n >= big_gemm_threshold then [ cublaslt_workspace ctx ] else []
      in
      Kernels.gemm ctx ?fused_bias:bias ~unused_args ~m ~n ~k ~a:input ~b:weight
        ~c:out ()
  | Gpusim.Arch.Amd ->
      (* rocBLAS: transient per-call scratch and a separate bias kernel —
         more allocator traffic, smaller persistent footprint (Fig. 14). *)
      let scratch =
        if m * n >= big_gemm_threshold then
          Some (new_tensor ctx ~name:"rocblas_scratch" [ rocblas_scratch_bytes / 4 ] Dtype.F32)
        else None
      in
      Kernels.gemm ctx ?unused_args:(Option.map (fun t -> [ t ]) scratch) ~m ~n ~k
        ~a:input ~b:weight ~c:out ();
      (match bias with
      | Some b -> Kernels.elementwise ctx ~op:"add_bias" ~ins:[ out; b ] ~out
      | None -> ());
      Option.iter Tensor.release scratch
  | Gpusim.Arch.Google ->
      (* XLA fuses the bias into the dot and manages scratch itself. *)
      Kernels.gemm ctx ?fused_bias:bias ~m ~n ~k ~a:input ~b:weight ~c:out ());
  out

let bmm ctx ~a ~b ~m ~n ~k ~out_shape =
  record ctx "aten::bmm" @@ fun () ->
  with_native_frames gemm_frames @@ fun () ->
  let out = new_tensor ctx ~name:"bmm_out" out_shape Dtype.F32 in
  Kernels.gemm ctx ~m ~n ~k ~a ~b ~c:out ();
  out

let cudnn_workspace_bytes = 1024 * 1024 * 1024

let cudnn_workspace ctx =
  match ctx.Ctx.cudnn_workspace with
  | Some ws -> ws
  | None ->
      let ws =
        new_tensor ctx ~name:"cudnn_workspace" [ cudnn_workspace_bytes / 4 ] Dtype.F32
      in
      ctx.Ctx.cudnn_workspace <- Some ws;
      ws

let conv2d ctx ~input ~weight ~bias ~cfg =
  record ctx "aten::convolution" @@ fun () ->
  with_native_frames conv_frames @@ fun () ->
  let oh, ow = conv_out_dims cfg in
  let out = new_tensor ctx ~name:"conv_out" [ cfg.n; cfg.oc; oh; ow ] Dtype.F32 in
  (match cfg.algo with
  | `Im2col ->
      (* aten fallback: one im2col launch per image into a whole-batch
         column buffer, then a single batched GEMM. *)
      let kk = cfg.c * cfg.kh * cfg.kw in
      let col = new_tensor ctx ~name:"im2col_buffer" [ cfg.n; kk; oh * ow ] Dtype.F32 in
      for _img = 1 to cfg.n do
        Kernels.im2col ctx ~input ~col
      done;
      Kernels.gemm ctx ?fused_bias:bias ~m:cfg.oc ~n:(cfg.n * oh * ow) ~k:kk
        ~a:weight ~b:col ~c:out ();
      Tensor.release col
  | `Cudnn -> (
      let ws = cudnn_workspace ctx in
      (match Ctx.vendor ctx with
      | Gpusim.Arch.Nvidia ->
          (* Benchmark-mode search on the first call for this layer: the
             algorithm sweep stages layouts through the whole shared
             workspace.  Later calls reuse the cached algorithm. *)
          if cfg.benchmark_search then
            Kernels.launch ctx ~name:"cudnn::ops::nchwToNhwcKernel"
              ~regions:[ Kernels.region ~rw:Kernels.Write ws ]
              ~flops:0.0
              ~work:(Tensor.numel input) ();
          let conv_prof =
            let work = Tensor.numel out in
            let kk = cfg.c * cfg.kh * cfg.kw in
            Gpusim.Kernel.profile
              ~branches:(max 1 (work / 256 * cfg.kh * cfg.kw))
              ~divergent_branches:(max 1 (work / 256 / 8))
              ~shared_accesses:(work * cfg.kh * cfg.kw)
              ~bank_conflicts:(work * cfg.kh * cfg.kw / 128)
              ~barrier_stall_us:(2.0 *. float_of_int (cfg.kh * cfg.kw))
              ~value_min:(-4.0 *. sqrt (float_of_int kk))
              ~value_max:(4.0 *. sqrt (float_of_int kk))
              ()
          in
          Kernels.launch ctx
            ~name:"sm80_xmma_fprop_implicit_gemm_f32f32_tf32"
            ~unused_args:[ ws ] ~shared_bytes:(64 * 1024) ~prof:conv_prof
            ~barriers:(cfg.kh * cfg.kw)
            ~regions:
              [
                Kernels.region ~accesses:(Tensor.numel out * cfg.kh * cfg.kw) input;
                Kernels.region ~accesses:(Tensor.numel out * cfg.c / 8) weight;
                Kernels.region ~rw:Kernels.Write out;
              ]
            ~flops:
              (2.0 *. float_of_int (Tensor.numel out) *. float_of_int (cfg.c * cfg.kh * cfg.kw))
            ~work:(Tensor.numel out) ()
      | Gpusim.Arch.Google ->
          (* XLA lowers convolution to one fused program. *)
          Kernels.launch ctx ~name:"xla::conv_general_dilated"
            ~unused_args:[ ws ]
            ~regions:
              [
                Kernels.region ~accesses:(Tensor.numel out * cfg.kh * cfg.kw) input;
                Kernels.region ~accesses:(Tensor.numel out * cfg.c / 8) weight;
                Kernels.region ~rw:Kernels.Write out;
              ]
            ~flops:
              (2.0 *. float_of_int (Tensor.numel out)
              *. float_of_int (cfg.c * cfg.kh * cfg.kw))
            ~work:(Tensor.numel out) ()
      | Gpusim.Arch.Amd ->
          (* MIOpen allocates a transient per-call workspace and issues a
             separate transform + conv pair: more allocator traffic. *)
          let scratch =
            new_tensor ctx ~name:"miopen_scratch" [ max 1 (Tensor.numel out / 2) ] Dtype.F32
          in
          Kernels.launch ctx ~name:"miopen::transpose_NCHW2CNHW"
            ~regions:[ Kernels.region ~rw:Kernels.Write scratch ]
            ~flops:0.0 ~work:(Tensor.numel input) ();
          Kernels.launch ctx ~name:"miopen::MIOpenConvUniC"
            ~unused_args:[ ws ]
            ~regions:
              [
                Kernels.region ~accesses:(Tensor.numel out * cfg.kh * cfg.kw) input;
                Kernels.region ~accesses:(Tensor.numel out * cfg.c / 8) weight;
                Kernels.region ~rw:Kernels.Write out;
              ]
            ~flops:
              (2.0 *. float_of_int (Tensor.numel out) *. float_of_int (cfg.c * cfg.kh * cfg.kw))
            ~work:(Tensor.numel out) ();
          Tensor.release scratch);
      match bias with
      | Some b -> Kernels.elementwise ctx ~op:"add_bias" ~ins:[ out; b ] ~out
      | None -> ()));
  out

let relu ctx input =
  record ctx "aten::relu" @@ fun () ->
  with_native_frames (elementwise_frames "relu") @@ fun () ->
  let out = new_tensor ctx ~name:"relu_out" (Tensor.shape input) (Tensor.dtype input) in
  Kernels.elementwise ctx ~op:"relu" ~ins:[ input ] ~out;
  out

let gelu ctx input =
  record ctx "aten::gelu" @@ fun () ->
  with_native_frames (elementwise_frames "gelu") @@ fun () ->
  let out = new_tensor ctx ~name:"gelu_out" (Tensor.shape input) (Tensor.dtype input) in
  Kernels.elementwise ctx ~op:"gelu" ~ins:[ input ] ~out;
  out

let add ctx a b =
  record ctx "aten::add" @@ fun () ->
  with_native_frames (elementwise_frames "add") @@ fun () ->
  let out = new_tensor ctx ~name:"add_out" (Tensor.shape a) (Tensor.dtype a) in
  Kernels.elementwise ctx ~op:"add" ~ins:[ a; b ] ~out;
  out

let batchnorm ctx ~input ~scale =
  record ctx "aten::batch_norm" @@ fun () ->
  let out = new_tensor ctx ~name:"bn_out" (Tensor.shape input) (Tensor.dtype input) in
  Kernels.batchnorm_stats ctx ~input ~stats:scale;
  Kernels.batchnorm_apply ctx ~input ~stats:scale ~out;
  out

let layernorm ctx ~input ~scale =
  record ctx "aten::layer_norm" @@ fun () ->
  let out = new_tensor ctx ~name:"ln_out" (Tensor.shape input) (Tensor.dtype input) in
  let n_ln = Tensor.numel input in
  Kernels.launch ctx ~name:"at::native::(anonymous namespace)::vectorized_layer_norm_kernel"
    ~prof:
      (Gpusim.Kernel.profile
         ~branches:(max 1 (n_ln / 32 * 2))
         ~divergent_branches:(max 1 (n_ln / 1024))
         ~shared_accesses:(max 1 (n_ln / 4))
         ~bank_conflicts:(n_ln / 512) ~barrier_stall_us:3.0 ~value_min:(-24.0)
         ~value_max:24.0 ())
    ~barriers:2
    ~regions:
      [
        Kernels.region ~accesses:(2 * Tensor.numel input) input;
        Kernels.region scale;
        Kernels.region ~rw:Kernels.Write out;
      ]
    ~flops:(4.0 *. float_of_int (Tensor.numel input))
    ~work:(Tensor.numel input) ();
  out

let softmax ctx input =
  record ctx "aten::softmax" @@ fun () ->
  let out = new_tensor ctx ~name:"softmax_out" (Tensor.shape input) (Tensor.dtype input) in
  Kernels.softmax ctx ~direction:`Fwd ~src:input ~dst:out;
  out

let softmax_ ctx t =
  record ctx "aten::softmax_" @@ fun () ->
  Kernels.softmax ctx ~direction:`Fwd ~src:t ~dst:t

let dropout ctx input =
  record ctx "aten::dropout" @@ fun () ->
  let out = new_tensor ctx ~name:"dropout_out" (Tensor.shape input) (Tensor.dtype input) in
  let mask = new_tensor ctx ~name:"dropout_mask" (Tensor.shape input) Dtype.U8 in
  let n_drop = Tensor.numel input in
  Kernels.launch ctx ~name:"at::native::(anonymous namespace)::fused_dropout_kernel"
    ~prof:
      (Gpusim.Kernel.profile ~branches:n_drop ~divergent_branches:(n_drop / 2)
         ~value_min:(-8.0) ~value_max:8.0 ())
    ~regions:
      [
        Kernels.region input;
        Kernels.region ~rw:Kernels.Write out;
        Kernels.region ~rw:Kernels.Write mask;
      ]
    ~flops:(float_of_int (Tensor.numel input))
    ~work:(Tensor.numel input) ();
  (out, mask)

let maxpool ctx ~input ~out_shape =
  record ctx "aten::max_pool2d" @@ fun () ->
  let out = new_tensor ctx ~name:"maxpool_out" out_shape (Tensor.dtype input) in
  Kernels.pool ctx ~kind:`Max ~input ~out;
  out

let avgpool ctx ~input ~out_shape =
  record ctx "aten::avg_pool2d" @@ fun () ->
  let out = new_tensor ctx ~name:"avgpool_out" out_shape (Tensor.dtype input) in
  Kernels.pool ctx ~kind:`Avg ~input ~out;
  out

let embedding ctx ~table ~indices ~rows_touched ~embed_dim =
  record ctx "aten::embedding" @@ fun () ->
  let n_idx = Tensor.numel indices in
  let out = new_tensor ctx ~name:"embedding_out" [ n_idx; embed_dim ] Dtype.F32 in
  let row_bytes = embed_dim * 4 in
  Kernels.gather ctx ~table ~touched_bytes:(rows_touched * row_bytes) ~indices ~out;
  out

let cross_entropy ctx ~logits =
  record ctx "aten::cross_entropy_loss" @@ fun () ->
  let probs = new_tensor ctx ~name:"log_softmax_out" (Tensor.shape logits) Dtype.F32 in
  Kernels.softmax ctx ~direction:`Fwd ~src:logits ~dst:probs;
  let loss = new_tensor ctx ~name:"loss" [ 1 ] Dtype.F32 in
  (* aten zero-initializes the loss accumulator with its own tiny kernel —
     the 512 B minimum working set of the paper's training rows. *)
  Kernels.fill ctx loss;
  Kernels.reduce ctx ~op:"nll_loss" ~src:probs ~dst:loss;
  Tensor.release probs;
  loss

(* ----- backward ----- *)

let linear_bwd ctx ~input ~weight ~grad_out ~has_bias ~m ~k ~n =
  record ctx "aten::addmm_backward" @@ fun () ->
  with_native_frames gemm_frames @@ fun () ->
  let grad_in = new_tensor ctx ~name:"grad_input" [ m; k ] Dtype.F32 in
  Kernels.gemm ctx ~m ~n:k ~k:n ~a:grad_out ~b:weight ~c:grad_in ();
  let grad_w = new_tensor ctx ~name:"grad_weight" (Tensor.shape weight) Dtype.F32 in
  Kernels.gemm ctx ~m:k ~n ~k:m ~a:input ~b:grad_out ~c:grad_w ();
  let grad_b =
    if has_bias then begin
      let gb = new_tensor ctx ~name:"grad_bias" [ n ] Dtype.F32 in
      Kernels.reduce ctx ~op:"sum_bias" ~src:grad_out ~dst:gb;
      Some gb
    end
    else None
  in
  (grad_in, grad_w, grad_b)

let conv2d_bwd ctx ~input ~weight ~grad_out ~has_bias ~cfg =
  record ctx "aten::convolution_backward" @@ fun () ->
  with_native_frames conv_frames @@ fun () ->
  let oh, ow = conv_out_dims cfg in
  let kk = cfg.c * cfg.kh * cfg.kw in
  let grad_in = new_tensor ctx ~name:"grad_input" (Tensor.shape input) Dtype.F32 in
  let grad_w = new_tensor ctx ~name:"grad_weight" (Tensor.shape weight) Dtype.F32 in
  (match cfg.algo with
  | `Im2col ->
      (* dgrad: GEMM into a column buffer, then col2im. *)
      let col = new_tensor ctx ~name:"col_buffer_bwd" [ cfg.n; kk; oh * ow ] Dtype.F32 in
      Kernels.gemm ctx ~m:kk ~n:(cfg.n * oh * ow) ~k:cfg.oc ~a:weight ~b:grad_out
        ~c:col ();
      Kernels.col2im ctx ~col ~output:grad_in;
      (* wgrad: recompute im2col of the input, then GEMM. *)
      for _img = 1 to cfg.n do
        Kernels.im2col ctx ~input ~col
      done;
      Kernels.gemm ctx ~m:cfg.oc ~n:kk ~k:(cfg.n * oh * ow) ~a:grad_out ~b:col
        ~c:grad_w ();
      Tensor.release col
  | `Cudnn ->
      let ws = cudnn_workspace ctx in
      Kernels.launch ctx ~name:"sm80_xmma_dgrad_implicit_gemm_f32f32_tf32"
        ~unused_args:[ ws ] ~shared_bytes:(64 * 1024)
        ~regions:
          [
            Kernels.region ~accesses:(Tensor.numel grad_in * cfg.kh * cfg.kw) grad_out;
            Kernels.region weight;
            Kernels.region ~rw:Kernels.Write grad_in;
          ]
        ~flops:(2.0 *. float_of_int (Tensor.numel grad_in) *. float_of_int kk)
        ~work:(Tensor.numel grad_in) ();
      Kernels.launch ctx ~name:"sm80_xmma_wgrad_implicit_gemm_f32f32_tf32"
        ~unused_args:[ ws ] ~shared_bytes:(64 * 1024)
        ~regions:
          [
            Kernels.region ~accesses:(Tensor.numel grad_out * cfg.kh * cfg.kw) input;
            Kernels.region grad_out;
            Kernels.region ~rw:Kernels.Write grad_w;
          ]
        ~flops:(2.0 *. float_of_int (Tensor.numel grad_out) *. float_of_int kk)
        ~work:(Tensor.numel grad_w) ());
  let grad_b =
    if has_bias then begin
      let gb = new_tensor ctx ~name:"grad_bias" [ cfg.oc ] Dtype.F32 in
      Kernels.reduce ctx ~op:"sum_bias" ~src:grad_out ~dst:gb;
      Some gb
    end
    else None
  in
  (grad_in, grad_w, grad_b)

let relu_bwd ctx ~output ~grad_out =
  record ctx "aten::threshold_backward" @@ fun () ->
  let grad_in = new_tensor ctx ~name:"grad_relu" (Tensor.shape grad_out) Dtype.F32 in
  Kernels.elementwise ctx ~op:"threshold_backward" ~ins:[ output; grad_out ]
    ~out:grad_in;
  grad_in

let gelu_bwd ctx ~input ~grad_out =
  record ctx "aten::gelu_backward" @@ fun () ->
  let grad_in = new_tensor ctx ~name:"grad_gelu" (Tensor.shape grad_out) Dtype.F32 in
  Kernels.elementwise ctx ~op:"gelu_backward" ~ins:[ input; grad_out ] ~out:grad_in;
  grad_in

let batchnorm_bwd ctx ~input ~scale ~grad_out =
  record ctx "aten::native_batch_norm_backward" @@ fun () ->
  let grad_in = new_tensor ctx ~name:"grad_bn" (Tensor.shape input) Dtype.F32 in
  Kernels.batchnorm_stats ctx ~input:grad_out ~stats:scale;
  Kernels.batchnorm_apply ctx ~input:grad_out ~stats:scale ~out:grad_in;
  grad_in

let layernorm_bwd ctx ~input ~scale ~grad_out =
  record ctx "aten::native_layer_norm_backward" @@ fun () ->
  let grad_in = new_tensor ctx ~name:"grad_ln" (Tensor.shape input) Dtype.F32 in
  Kernels.launch ctx ~name:"at::native::(anonymous namespace)::layer_norm_grad_input_kernel"
    ~barriers:2
    ~regions:
      [
        Kernels.region input;
        Kernels.region scale;
        Kernels.region grad_out;
        Kernels.region ~rw:Kernels.Write grad_in;
      ]
    ~flops:(6.0 *. float_of_int (Tensor.numel input))
    ~work:(Tensor.numel input) ();
  grad_in

let softmax_bwd ctx ~output ~grad_out =
  record ctx "aten::_softmax_backward_data" @@ fun () ->
  let grad_in = new_tensor ctx ~name:"grad_softmax" (Tensor.shape output) Dtype.F32 in
  Kernels.softmax ctx ~direction:`Bwd ~src:grad_out ~dst:grad_in;
  ignore output;
  grad_in

let dropout_bwd ctx ~mask ~grad_out =
  record ctx "aten::native_dropout_backward" @@ fun () ->
  let grad_in = new_tensor ctx ~name:"grad_dropout" (Tensor.shape grad_out) Dtype.F32 in
  Kernels.elementwise ctx ~op:"masked_scale" ~ins:[ mask; grad_out ] ~out:grad_in;
  grad_in

let maxpool_bwd ctx ~grad_out ~in_shape =
  record ctx "aten::max_pool2d_with_indices_backward" @@ fun () ->
  let grad_in = new_tensor ctx ~name:"grad_maxpool" in_shape Dtype.F32 in
  Kernels.pool_bwd ctx ~kind:`Max ~grad_out ~grad_in;
  grad_in

let avgpool_bwd ctx ~grad_out ~in_shape =
  record ctx "aten::avg_pool2d_backward" @@ fun () ->
  let grad_in = new_tensor ctx ~name:"grad_avgpool" in_shape Dtype.F32 in
  Kernels.pool_bwd ctx ~kind:`Avg ~grad_out ~grad_in;
  grad_in

let embedding_bwd ctx ~table ~grad_out ~rows_touched =
  record ctx "aten::embedding_dense_backward" @@ fun () ->
  let grad_table = new_tensor ctx ~name:"grad_embedding" (Tensor.shape table) Dtype.F32 in
  Kernels.fill ctx grad_table;
  let row_bytes =
    match Tensor.shape table with
    | _ :: dim :: _ -> dim * 4
    | _ -> 4
  in
  Kernels.launch ctx ~name:"at::native::(anonymous namespace)::embedding_backward_kernel"
    ~regions:
      [
        Kernels.region grad_out;
        Kernels.region ~rw:Kernels.Write ~extent:(rows_touched * row_bytes)
          ~pattern:Gpusim.Kernel.Random grad_table;
      ]
    ~flops:(float_of_int (Tensor.numel grad_out))
    ~work:(Tensor.numel grad_out) ();
  grad_table

let cross_entropy_bwd ctx ~logits =
  record ctx "aten::nll_loss_backward" @@ fun () ->
  let grad_logits = new_tensor ctx ~name:"grad_logits" (Tensor.shape logits) Dtype.F32 in
  Kernels.elementwise ctx ~op:"nll_loss_backward" ~ins:[ logits ] ~out:grad_logits;
  grad_logits

(* ----- optimizer ----- *)

let sgd_step ctx ~params ~grads =
  record ctx "optimizer::sgd_step" @@ fun () -> Kernels.sgd_step ctx ~params ~grads

let zero_grad ctx tensors =
  record ctx "optimizer::zero_grad" @@ fun () ->
  List.iter (fun t -> Kernels.fill ctx t) tensors
