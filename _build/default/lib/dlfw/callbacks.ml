type mem_event = {
  ptr : int;
  size_delta : int;
  total_allocated : int;
  total_reserved : int;
  device_id : int;
  tag : string;
}

type op_event = {
  op_name : string;
  phase : [ `Begin | `End ];
  device_id : int;
  seq : int;
}

let mem_observers : (string * (mem_event -> unit)) list ref = ref []
let op_observers : (string * (op_event -> unit)) list ref = ref []
let op_seq = ref 0

let report_memory_usage ev = List.iter (fun (_, f) -> f ev) !mem_observers
let record_function ev = List.iter (fun (_, f) -> f ev) !op_observers

let add_memory_observer name f = mem_observers := !mem_observers @ [ (name, f) ]

let remove_memory_observer name =
  mem_observers := List.filter (fun (n, _) -> not (String.equal n name)) !mem_observers

let add_op_observer name f = op_observers := !op_observers @ [ (name, f) ]

let remove_op_observer name =
  op_observers := List.filter (fun (n, _) -> not (String.equal n name)) !op_observers

let clear_observers () =
  mem_observers := [];
  op_observers := []

let next_op_seq () =
  incr op_seq;
  !op_seq
