(** Shared transformer building blocks for the GPT-2 / BERT / Whisper
    model definitions. *)

val pos_add : Ctx.t -> file:string -> seq:int -> dim:int -> Layer.t
(** Learned positional embedding added to the activation stream. *)

val block_prenorm :
  Ctx.t -> file:string -> dim:int -> heads:int -> seq:int ->
  ?fused_attention:bool -> ?mlp_ratio:int -> unit -> Layer.t
(** GPT-style block: [x + Attn(LN(x))] then [x + MLP(LN(x))]. *)

val block_postnorm :
  Ctx.t -> file:string -> dim:int -> heads:int -> seq:int ->
  ?mlp_ratio:int -> unit -> Layer.t
(** BERT-style block: [LN(x + Attn(x))] then [LN(x + MLP(x))]. *)

val mlp : Ctx.t -> file:string -> dim:int -> ratio:int -> Layer.t list
(** The two-linear GELU feed-forward stack. *)
