(** Tensor element types. *)

type t = F32 | F16 | I64 | I32 | U8

val size_bytes : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
