(** Neural-network layer substrate with a saved-activation discipline.

    A layer owns its parameters, composes {!Ops} in its forward pass, and
    implements the matching backward pass over activations it saved during
    forward — a miniature of PyTorch's autograd at module granularity,
    which is the right granularity for PASTA: what the profiler observes
    is operators and kernels, not gradient formulas.

    {b Ownership protocol.}  [forward ctx l x] consumes [x] (the layer
    releases it once used, unless it must be saved for backward) and
    returns an owned output.  [backward ctx l g] consumes [g], releases
    the activations saved in forward, appends parameter gradients to the
    layer's gradient list, and returns the owned input gradient.  In
    inference mode ([ctx.training = false]) nothing is saved, so memory
    stays flat; in training mode activations accumulate through forward
    and drain through backward, producing the ramp-up / peak / ramp-down
    profile of the paper's Fig. 14.

    Each layer carries a simulated Python source location; [forward]
    pushes it as a CPython frame so kernels launched inside see a full
    Python-side stack (paper Fig. 4). *)

type t = {
  lname : string;
  params : Tensor.t list;
  mutable grads : Tensor.t list;
  mutable saved : Tensor.t list;  (** activation stack, innermost last *)
  children : t list;
  fwd : Ctx.t -> t -> Tensor.t -> Tensor.t;
  bwd : Ctx.t -> t -> Tensor.t -> Tensor.t;
  py_file : string;
  py_line : int;
}

val forward : Ctx.t -> t -> Tensor.t -> Tensor.t
val backward : Ctx.t -> t -> Tensor.t -> Tensor.t

val all_params : t -> Tensor.t list
(** This layer's and every descendant's parameters. *)

val take_grad_pairs : t -> (Tensor.t * Tensor.t) list
(** Collect and clear (parameter, gradient) pairs; layers that produced no
    gradients this step (frozen subtrees) contribute nothing.  Raises
    [Invalid_argument] if a layer's gradient count mismatches its
    parameter count. *)

val param_bytes : t -> int

(** {2 Constructors} *)

val linear :
  Ctx.t -> ?file:string -> ?line:int -> ?bias:bool ->
  in_features:int -> out_features:int -> unit -> t

val conv2d :
  Ctx.t -> ?file:string -> ?line:int -> ?bias:bool ->
  in_ch:int -> out_ch:int -> k:int -> stride:int -> pad:int ->
  algo:[ `Im2col | `Cudnn ] -> unit -> t

val relu : Ctx.t -> t
val gelu : Ctx.t -> t
val batchnorm : Ctx.t -> features:int -> t
val layernorm : Ctx.t -> features:int -> t
val maxpool : Ctx.t -> k:int -> stride:int -> t
val avgpool_to : Ctx.t -> out_hw:int -> t
(** Adaptive average pool to a fixed spatial size. *)

val dropout : Ctx.t -> t
val flatten : Ctx.t -> t
(** Metadata-only reshape to [[n; rest]]. *)

val embedding :
  Ctx.t -> ?file:string -> ?line:int -> vocab:int -> dim:int ->
  rows_touched:int -> unit -> t
(** Input is an index tensor [[b; s]]; output is [[b*s; dim]]. *)

val attention :
  Ctx.t -> ?file:string -> ?line:int -> ?fused:bool -> embed_dim:int ->
  heads:int -> seq:int -> unit -> t
(** Multi-head self-attention over [[b*s; d]] activations.  With [fused]
    the score matrix is never materialized (flash-attention style): one
    fused kernel replaces the bmm/softmax/bmm chain, keeping the working
    set small. *)

(** {2 Extension point} *)

val custom :
  ?params:Tensor.t list ->
  ?children:t list ->
  ?file:string ->
  ?line:int ->
  name:string ->
  fwd:(Ctx.t -> t -> Tensor.t -> Tensor.t) ->
  bwd:(Ctx.t -> t -> Tensor.t -> Tensor.t) ->
  unit ->
  t
(** Build a layer from raw forward/backward functions; model files use
    this for model-specific glue (positional adds, cross-attention,
    encoder-decoder roots). *)

val save : t -> Tensor.t list -> unit
(** Push activations for backward (ownership transfers to the layer). *)

val unsave : t -> int -> Tensor.t list
(** Pop the [n] most recently saved activations (in save order); raises
    [Invalid_argument] when fewer are available. *)

val checkpoint : t -> t
(** Gradient checkpointing ([torch.utils.checkpoint]): forward runs the
    wrapped layer without saving activations and keeps only the input;
    backward recomputes the forward (with saving) before running the
    wrapped backward.  Trades ~one extra forward pass for dropping the
    layer's saved activations — the standard fix for training-memory
    pressure. *)

val sequential : ?name:string -> t list -> t

val residual : ?name:string -> ?skip:t list -> t list -> t
(** Skip connection around the given body; [skip] replaces the identity
    shortcut with a projection branch (ResNet downsample blocks). *)
