(** Workload runner: builds the paper's six models (Table IV) by
    abbreviation and runs inference / training loops with the iteration
    counts used by the evaluation harness. *)

type mode = Inference | Train

val mode_to_string : mode -> string

val all_abbrs : string list
(** ["AN"; "RN-18"; "RN-34"; "BERT"; "GPT-2"; "Whisper"] — Table IV order. *)

val build : Ctx.t -> string -> Model.t
(** Build a model by abbreviation.  Raises [Invalid_argument] for an
    unknown abbreviation. *)

val default_iters : abbr:string -> mode:mode -> int
(** Iterations per measured run, chosen so total kernel counts land in the
    regime of the paper's Table V. *)

val run : Ctx.t -> Model.t -> mode:mode -> iters:int -> unit
(** Run [iters] iterations.  Raises [Invalid_argument] if [iters <= 0]. *)

val run_default : Ctx.t -> string -> mode:mode -> Model.t
(** Build by abbreviation and run the default number of iterations;
    returns the model for inspection. *)
