let pos_add ctx ~file ~seq ~dim =
  let wpe = Tensor.create ctx.Ctx.pool ~name:"wpe" [ seq; dim ] Dtype.F32 in
  let fwd ctx l x =
    ignore l;
    Ops.record ctx "aten::add_" @@ fun () ->
    (* Position ids are materialized by a tiny arange kernel — the
       kilobyte-scale minimum working set of the transformer rows in the
       paper's Table V. *)
    let pos_ids = Ops.new_tensor ctx ~name:"position_ids" [ seq ] Dtype.I64 in
    Kernels.launch ctx ~name:"at::native::arange_cuda_kernel"
      ~regions:[ Kernels.region ~rw:Kernels.Write pos_ids ]
      ~flops:0.0 ~work:seq ();
    let out = Ops.new_tensor ctx ~name:"pos_add_out" (Tensor.shape x) Dtype.F32 in
    Kernels.elementwise ctx ~op:"add_positional" ~ins:[ x; wpe ] ~out;
    Tensor.release pos_ids;
    Tensor.release x;
    out
  in
  let bwd ctx l g =
    (* d(x + wpe)/dx is the identity; the positional table's gradient is a
       batch reduction of g. *)
    let gwpe = Ops.new_tensor ctx ~name:"grad_wpe" (Tensor.shape wpe) Dtype.F32 in
    Kernels.reduce ctx ~op:"sum_batch" ~src:g ~dst:gwpe;
    l.Layer.grads <- l.Layer.grads @ [ gwpe ];
    g
  in
  Layer.custom ~params:[ wpe ] ~file ~line:58 ~name:"PositionalEmbedding" ~fwd ~bwd ()

let mlp ctx ~file ~dim ~ratio =
  [
    Layer.linear ctx ~file ~line:84 ~in_features:dim ~out_features:(ratio * dim) ();
    Layer.gelu ctx;
    Layer.linear ctx ~file ~line:86 ~in_features:(ratio * dim) ~out_features:dim ();
  ]

let block_prenorm ctx ~file ~dim ~heads ~seq ?(fused_attention = false)
    ?(mlp_ratio = 4) () =
  Layer.sequential ~name:"TransformerBlock"
    [
      Layer.residual ~name:"attn_residual"
        [
          Layer.layernorm ctx ~features:dim;
          Layer.attention ctx ~file ~line:71 ~fused:fused_attention ~embed_dim:dim
            ~heads ~seq ();
          Layer.dropout ctx;
        ];
      Layer.residual ~name:"mlp_residual"
        (Layer.layernorm ctx ~features:dim
         :: (mlp ctx ~file ~dim ~ratio:mlp_ratio @ [ Layer.dropout ctx ]));
    ]

let block_postnorm ctx ~file ~dim ~heads ~seq ?(mlp_ratio = 4) () =
  Layer.sequential ~name:"TransformerBlock"
    [
      Layer.residual ~name:"attn_residual"
        [
          Layer.attention ctx ~file ~line:71 ~embed_dim:dim ~heads ~seq ();
          Layer.dropout ctx;
        ];
      Layer.layernorm ctx ~features:dim;
      Layer.residual ~name:"mlp_residual"
        (mlp ctx ~file ~dim ~ratio:mlp_ratio @ [ Layer.dropout ctx ]);
      Layer.layernorm ctx ~features:dim;
    ]
