module H = Gpusim.Hostctx

type t = {
  name : string;
  abbr : string;
  root : Layer.t;
  make_input : Ctx.t -> Tensor.t;
  batch : int;
}

let script_frame m phase =
  {
    H.file = Printf.sprintf "models/%s/run_%s.py" (String.lowercase_ascii m.abbr) (String.lowercase_ascii m.abbr);
    line = (match phase with `Test -> 146 | `Train -> 177);
    symbol =
      (match phase with
      | `Test -> Printf.sprintf "def test_%s()" (String.lowercase_ascii m.abbr)
      | `Train -> Printf.sprintf "def train_%s()" (String.lowercase_ascii m.abbr));
  }

let forward ctx m =
  H.with_frame H.Python (script_frame m `Test) @@ fun () ->
  Layer.forward ctx m.root (m.make_input ctx)

let inference_iter ctx m =
  ctx.Ctx.training <- false;
  let logits = forward ctx m in
  Tensor.release logits;
  Gpusim.Device.synchronize ctx.Ctx.device

let train_iter_full ctx m ?optimizer ~before_opt () =
  H.with_frame H.Python (script_frame m `Train) @@ fun () ->
  ctx.Ctx.training <- true;
  let logits = Layer.forward ctx m.root (m.make_input ctx) in
  let loss = Ops.cross_entropy ctx ~logits in
  let grad_logits = Ops.cross_entropy_bwd ctx ~logits in
  Tensor.release loss;
  Tensor.release logits;
  let grad_in = Layer.backward ctx m.root grad_logits in
  Tensor.release grad_in;
  let pairs = Layer.take_grad_pairs m.root in
  before_opt pairs;
  (match optimizer with
  | Some opt -> Optimizer.step opt ctx pairs
  | None ->
      let params, grads = List.split pairs in
      Ops.sgd_step ctx ~params ~grads);
  List.iter (fun (_, g) -> Tensor.release g) pairs;
  ctx.Ctx.training <- false;
  Gpusim.Device.synchronize ctx.Ctx.device

let train_iter_hooked ctx m ~before_opt = train_iter_full ctx m ~before_opt ()
let train_iter ctx m = train_iter_full ctx m ~before_opt:ignore ()
let train_iter_opt ctx m ~optimizer = train_iter_full ctx m ~optimizer ~before_opt:ignore ()

let param_bytes m = Layer.param_bytes m.root

let param_count m =
  List.fold_left (fun acc p -> acc + Tensor.numel p) 0 (Layer.all_params m.root)
