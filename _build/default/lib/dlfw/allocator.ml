module D = Gpusim.Device
module Freelist = Pasta_util.Freelist

let round_to = 512
let small_limit = 1024 * 1024 (* requests below this use the small pool *)
let small_segment = 2 * 1024 * 1024
let mid_limit = 10 * 1024 * 1024
let mid_segment = 20 * 1024 * 1024

type block = {
  id : int;
  base : int;
  bytes : int;
  requested : int;
  seg_base : int;
  seg_bytes : int;
}

type segment = {
  sbase : int;
  sbytes : int;
  pool : [ `Small | `Large ];
  mutable free : Freelist.t;
  mutable live_blocks : int;
}

type t = {
  dev : D.t;
  is_managed : bool;
  mutable segs : segment list; (* most-recently-created first *)
  live : (int, block) Hashtbl.t; (* keyed by block base *)
  mutable allocated : int;
  mutable reserved : int;
  mutable peak_alloc : int;
  mutable peak_reserved : int;
  mutable allocs : int;
  mutable frees : int;
  mutable next_id : int;
}

let create ?(managed = false) dev =
  {
    dev;
    is_managed = managed;
    segs = [];
    live = Hashtbl.create 256;
    allocated = 0;
    reserved = 0;
    peak_alloc = 0;
    peak_reserved = 0;
    allocs = 0;
    frees = 0;
    next_id = 0;
  }

let device t = t.dev
let managed t = t.is_managed
let allocated_bytes t = t.allocated
let reserved_bytes t = t.reserved
let peak_allocated t = t.peak_alloc
let peak_reserved t = t.peak_reserved
let alloc_count t = t.allocs
let free_count t = t.frees
let segment_count t = List.length t.segs
let segments t = List.map (fun s -> (s.sbase, s.sbytes)) t.segs

let segment_of_addr t addr =
  List.find_map
    (fun s -> if addr >= s.sbase && addr < s.sbase + s.sbytes then Some (s.sbase, s.sbytes) else None)
    t.segs

let rounded bytes = max round_to (Pasta_util.Bytesize.align_up bytes ~align:round_to)

let pool_of bytes = if bytes < small_limit then `Small else `Large

let segment_size_for bytes =
  if bytes < small_limit then small_segment
  else if bytes < mid_limit then mid_segment
  else Pasta_util.Bytesize.align_up bytes ~align:small_segment

let new_segment t ~bytes =
  let seg_bytes = segment_size_for bytes in
  let tag = if t.is_managed then "pool-segment-managed" else "pool-segment" in
  let alloc =
    if t.is_managed then D.malloc_managed t.dev ~tag seg_bytes
    else D.malloc t.dev ~tag seg_bytes
  in
  let s =
    {
      sbase = alloc.Gpusim.Device_mem.base;
      sbytes = alloc.Gpusim.Device_mem.bytes;
      pool = pool_of bytes;
      free = Freelist.singleton ~base:alloc.Gpusim.Device_mem.base ~bytes:alloc.Gpusim.Device_mem.bytes;
      live_blocks = 0;
    }
  in
  t.segs <- s :: t.segs;
  t.reserved <- t.reserved + s.sbytes;
  t.peak_reserved <- max t.peak_reserved t.reserved;
  s

let release_cached t =
  let empty, keep = List.partition (fun s -> s.live_blocks = 0) t.segs in
  List.iter
    (fun s ->
      D.free t.dev s.sbase;
      t.reserved <- t.reserved - s.sbytes)
    empty;
  t.segs <- keep

(* Best-fit across the pool's segments, like the size-ordered block sets of
   the CUDA caching allocator; first-fit fragments badly under the
   alloc-heavy training loops. *)
let find_space t ~bytes =
  let pool = pool_of bytes in
  let best = ref None in
  List.iter
    (fun s ->
      if s.pool = pool then
        List.iter
          (fun (hole_base, hole) ->
            if hole >= bytes then
              match !best with
              | Some (_, _, h) when h <= hole -> ()
              | _ -> best := Some (s, hole_base, hole))
          (Freelist.holes s.free))
    t.segs;
  match !best with
  | None -> None
  | Some (s, base, _) -> (
      match Freelist.take_at s.free ~base ~bytes with
      | Some free' ->
          s.free <- free';
          Some (s, base)
      | None -> None)

let alloc t ?(tag = "tensor") requested =
  if requested < 0 then invalid_arg "Allocator.alloc: negative size";
  let bytes = rounded requested in
  let seg, base =
    match find_space t ~bytes with
    | Some r -> r
    | None -> (
        (* Grow the pool; under memory pressure, release cached segments and
           retry once before giving up — cudaMalloc retry-after-emptyCache. *)
        match new_segment t ~bytes with
        | s -> (
            match Freelist.take_first_fit s.free ~bytes with
            | Some (base, free') ->
                s.free <- free';
                (s, base)
            | None -> assert false)
        | exception Gpusim.Device_mem.Out_of_memory _ -> (
            release_cached t;
            let s = new_segment t ~bytes in
            match Freelist.take_first_fit s.free ~bytes with
            | Some (base, free') ->
                s.free <- free';
                (s, base)
            | None -> assert false))
  in
  seg.live_blocks <- seg.live_blocks + 1;
  let b =
    {
      id = t.next_id;
      base;
      bytes;
      requested;
      seg_base = seg.sbase;
      seg_bytes = seg.sbytes;
    }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.add t.live base b;
  t.allocated <- t.allocated + bytes;
  t.peak_alloc <- max t.peak_alloc t.allocated;
  t.allocs <- t.allocs + 1;
  Callbacks.report_memory_usage
    {
      Callbacks.ptr = base;
      size_delta = bytes;
      total_allocated = t.allocated;
      total_reserved = t.reserved;
      device_id = D.id t.dev;
      tag;
    };
  b

let free t (b : block) =
  (match Hashtbl.find_opt t.live b.base with
  | Some live when live.id = b.id -> ()
  | _ -> invalid_arg "Allocator.free: not a live block (double free?)");
  Hashtbl.remove t.live b.base;
  let seg =
    match List.find_opt (fun s -> s.sbase = b.seg_base) t.segs with
    | Some s -> s
    | None -> invalid_arg "Allocator.free: owning segment is gone"
  in
  seg.free <- Freelist.insert seg.free ~base:b.base ~bytes:b.bytes;
  seg.live_blocks <- seg.live_blocks - 1;
  t.allocated <- t.allocated - b.bytes;
  t.frees <- t.frees + 1;
  Callbacks.report_memory_usage
    {
      Callbacks.ptr = b.base;
      size_delta = -b.bytes;
      total_allocated = t.allocated;
      total_reserved = t.reserved;
      device_id = D.id t.dev;
      tag = "free";
    }

let destroy t =
  List.iter (fun s -> D.free t.dev s.sbase) t.segs;
  t.reserved <- 0;
  t.allocated <- 0;
  t.segs <- [];
  Hashtbl.reset t.live

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  let live_total = Hashtbl.fold (fun _ b acc -> acc + b.bytes) t.live 0 in
  if live_total <> t.allocated then fail "Allocator: allocated drift";
  let seg_total = List.fold_left (fun acc s -> acc + s.sbytes) 0 t.segs in
  if seg_total <> t.reserved then fail "Allocator: reserved drift";
  (* Per segment: free + live block bytes = segment bytes. *)
  List.iter
    (fun s ->
      let live_in_seg =
        Hashtbl.fold
          (fun _ b acc -> if b.seg_base = s.sbase then acc + b.bytes else acc)
          t.live 0
      in
      if live_in_seg + Freelist.total s.free <> s.sbytes then
        fail "Allocator: segment 0x%x accounting drift" s.sbase)
    t.segs;
  (* Blocks live inside their segment bounds. *)
  Hashtbl.iter
    (fun _ b ->
      if b.base < b.seg_base || b.base + b.bytes > b.seg_base + b.seg_bytes then
        fail "Allocator: block escapes segment")
    t.live
