type t = {
  tensor_id : int;
  name : string;
  mutable shape : Shape.t;
  dtype : Dtype.t;
  blk : Allocator.block;
  pool : Allocator.t;
  mutable rc : int;
}

let counter = ref 0

let create pool ?(name = "tensor") shape dtype =
  let bytes = Shape.bytes shape dtype in
  let blk = Allocator.alloc pool ~tag:name bytes in
  incr counter;
  { tensor_id = !counter; name; shape; dtype; blk; pool; rc = 1 }

let name t = t.name
let shape t = t.shape
let dtype t = t.dtype
let numel t = Shape.numel t.shape
let bytes t = Shape.bytes t.shape t.dtype
let id t = t.tensor_id
let is_live t = t.rc > 0
let refcount t = t.rc

let base t =
  if t.rc <= 0 then invalid_arg ("Tensor.base: use after free of " ^ t.name);
  t.blk.Allocator.base

let block t = t.blk

let reshape t shape =
  if t.rc <= 0 then invalid_arg ("Tensor.reshape: use after free of " ^ t.name);
  if Shape.bytes shape t.dtype <> Shape.bytes t.shape t.dtype then
    invalid_arg "Tensor.reshape: byte count mismatch";
  t.shape <- shape;
  t

let retain t =
  if t.rc <= 0 then invalid_arg ("Tensor.retain: use after free of " ^ t.name);
  t.rc <- t.rc + 1;
  t

let release t =
  if t.rc <= 0 then invalid_arg ("Tensor.release: double release of " ^ t.name);
  t.rc <- t.rc - 1;
  if t.rc = 0 then Allocator.free t.pool t.blk

let pp ppf t =
  Format.fprintf ppf "%s%a:%a@0x%x%s" t.name Shape.pp t.shape Dtype.pp t.dtype
    t.blk.Allocator.base
    (if t.rc > 0 then "" else " (freed)")
