let file = "models/alexnet/model.py"

let build ?(batch = 128) ctx =
  let conv ~line ~in_ch ~out_ch ~k ~stride ~pad =
    Layer.conv2d ctx ~file ~line ~in_ch ~out_ch ~k ~stride ~pad ~algo:`Im2col ()
  in
  let root =
    Layer.sequential ~name:"AlexNet"
      [
        conv ~line:12 ~in_ch:3 ~out_ch:64 ~k:11 ~stride:4 ~pad:2;
        Layer.relu ctx;
        Layer.maxpool ctx ~k:3 ~stride:2;
        conv ~line:15 ~in_ch:64 ~out_ch:192 ~k:5 ~stride:1 ~pad:2;
        Layer.relu ctx;
        Layer.maxpool ctx ~k:3 ~stride:2;
        conv ~line:18 ~in_ch:192 ~out_ch:384 ~k:3 ~stride:1 ~pad:1;
        Layer.relu ctx;
        conv ~line:20 ~in_ch:384 ~out_ch:256 ~k:3 ~stride:1 ~pad:1;
        Layer.relu ctx;
        conv ~line:22 ~in_ch:256 ~out_ch:256 ~k:3 ~stride:1 ~pad:1;
        Layer.relu ctx;
        Layer.maxpool ctx ~k:3 ~stride:2;
        Layer.avgpool_to ctx ~out_hw:6;
        Layer.flatten ctx;
        Layer.dropout ctx;
        Layer.linear ctx ~file ~line:28 ~in_features:9216 ~out_features:4096 ();
        Layer.relu ctx;
        Layer.dropout ctx;
        Layer.linear ctx ~file ~line:31 ~in_features:4096 ~out_features:4096 ();
        Layer.relu ctx;
        Layer.linear ctx ~file ~line:33 ~in_features:4096 ~out_features:1000 ();
      ]
  in
  {
    Model.name = "AlexNet";
    abbr = "AN";
    root;
    make_input =
      (fun ctx -> Ops.new_tensor ctx ~name:"input_images" [ batch; 3; 224; 224 ] Dtype.F32);
    batch;
  }
