module H = Gpusim.Hostctx

type t = {
  lname : string;
  params : Tensor.t list;
  mutable grads : Tensor.t list;
  mutable saved : Tensor.t list;
  children : t list;
  fwd : Ctx.t -> t -> Tensor.t -> Tensor.t;
  bwd : Ctx.t -> t -> Tensor.t -> Tensor.t;
  py_file : string;
  py_line : int;
}

let module_frame = { H.file = "torch/nn/modules/module.py"; line = 1518; symbol = "def _wrapped_call_impl()" }

let forward ctx l x =
  H.with_frame H.Python module_frame @@ fun () ->
  H.with_frame H.Python { H.file = l.py_file; line = l.py_line; symbol = "def forward()" }
  @@ fun () -> l.fwd ctx l x

let backward ctx l g =
  H.with_frame H.Python { H.file = l.py_file; line = l.py_line; symbol = "def backward()" }
  @@ fun () -> l.bwd ctx l g

let rec all_params l = l.params @ List.concat_map all_params l.children

let rec take_grad_pairs l =
  let own =
    match (l.params, l.grads) with
    | _, [] -> [] (* frozen or stateless: no gradients this step *)
    | ps, gs when List.length ps = List.length gs -> List.combine ps gs
    | ps, gs ->
        invalid_arg
          (Printf.sprintf "%s: %d params but %d grads" l.lname (List.length ps)
             (List.length gs))
  in
  l.grads <- [];
  own @ List.concat_map take_grad_pairs l.children

let param_bytes l = List.fold_left (fun acc p -> acc + Tensor.bytes p) 0 (all_params l)

(* Saved-activation helpers.  Forward pushes, backward pops; a mismatch is
   an unbalanced layer implementation. *)
let save l ts = l.saved <- l.saved @ ts

let unsave l n =
  let len = List.length l.saved in
  if len < n then invalid_arg (l.lname ^ ": backward without matching forward");
  let rec split i = function
    | rest when i = 0 -> ([], rest)
    | x :: rest ->
        let taken, remaining = split (i - 1) rest in
        (x :: taken, remaining)
    | [] -> assert false
  in
  let keep, taken = split (len - n) l.saved in
  l.saved <- keep;
  taken

let make ?(params = []) ?(children = []) ?(file = "model.py") ?(line = 1) lname fwd bwd =
  { lname; params; grads = []; saved = []; children; fwd; bwd; py_file = file; py_line = line }

let custom ?params ?children ?file ?line ~name ~fwd ~bwd () =
  make ?params ?children ?file ?line name fwd bwd

(* ----- parameterized layers ----- *)

let linear ctx ?(file = "model.py") ?(line = 1) ?(bias = true) ~in_features
    ~out_features () =
  let w =
    Tensor.create ctx.Ctx.pool ~name:"linear.weight" [ out_features; in_features ]
      Dtype.F32
  in
  let b =
    if bias then
      Some (Tensor.create ctx.Ctx.pool ~name:"linear.bias" [ out_features ] Dtype.F32)
    else None
  in
  let params = w :: Option.to_list b in
  let fwd ctx l x =
    let m = Tensor.numel x / in_features in
    let out = Ops.linear ctx ~input:x ~weight:w ~bias:b ~m ~k:in_features ~n:out_features in
    if ctx.Ctx.training then save l [ x ] else Tensor.release x;
    out
  in
  let bwd ctx l g =
    let x = match unsave l 1 with [ x ] -> x | _ -> assert false in
    let m = Tensor.numel x / in_features in
    let gin, gw, gb =
      Ops.linear_bwd ctx ~input:x ~weight:w ~grad_out:g ~has_bias:bias ~m
        ~k:in_features ~n:out_features
    in
    Tensor.release x;
    Tensor.release g;
    l.grads <- l.grads @ (gw :: Option.to_list gb);
    gin
  in
  make ~params ~file ~line "Linear" fwd bwd

let conv2d ctx ?(file = "model.py") ?(line = 1) ?(bias = true) ~in_ch ~out_ch ~k
    ~stride ~pad ~algo () =
  let w =
    Tensor.create ctx.Ctx.pool ~name:"conv.weight" [ out_ch; in_ch; k; k ] Dtype.F32
  in
  let b =
    if bias then Some (Tensor.create ctx.Ctx.pool ~name:"conv.bias" [ out_ch ] Dtype.F32)
    else None
  in
  let params = w :: Option.to_list b in
  let searched = ref false in
  let cfg_of ~search x =
    match Tensor.shape x with
    | [ n; c; h; w_ ] when c = in_ch ->
        { Ops.n; c; h; w = w_; oc = out_ch; kh = k; kw = k; stride; pad; algo;
          benchmark_search = search }
    | s ->
        invalid_arg
          (Printf.sprintf "Conv2d: bad input shape %s (expected [n;%d;h;w])"
             (Shape.to_string s) in_ch)
  in
  let fwd ctx l x =
    let search = not !searched in
    searched := true;
    let out = Ops.conv2d ctx ~input:x ~weight:w ~bias:b ~cfg:(cfg_of ~search x) in
    if ctx.Ctx.training then save l [ x ] else Tensor.release x;
    out
  in
  let bwd ctx l g =
    let x = match unsave l 1 with [ x ] -> x | _ -> assert false in
    let gin, gw, gb =
      Ops.conv2d_bwd ctx ~input:x ~weight:w ~grad_out:g ~has_bias:bias
        ~cfg:(cfg_of ~search:false x)
    in
    Tensor.release x;
    Tensor.release g;
    l.grads <- l.grads @ (gw :: Option.to_list gb);
    gin
  in
  make ~params ~file ~line "Conv2d" fwd bwd

let batchnorm ctx ~features =
  let scale =
    Tensor.create ctx.Ctx.pool ~name:"bn.scale" [ 4; features ] Dtype.F32
  in
  let fwd ctx l x =
    let out = Ops.batchnorm ctx ~input:x ~scale in
    if ctx.Ctx.training then save l [ x ] else Tensor.release x;
    out
  in
  let bwd ctx l g =
    let x = match unsave l 1 with [ x ] -> x | _ -> assert false in
    let gin = Ops.batchnorm_bwd ctx ~input:x ~scale ~grad_out:g in
    Tensor.release x;
    Tensor.release g;
    let gscale = Ops.new_tensor ctx ~name:"grad_bn_scale" (Tensor.shape scale) Dtype.F32 in
    l.grads <- l.grads @ [ gscale ];
    gin
  in
  make ~params:[ scale ] "BatchNorm2d" fwd bwd

let layernorm ctx ~features =
  let scale = Tensor.create ctx.Ctx.pool ~name:"ln.scale" [ 2; features ] Dtype.F32 in
  let fwd ctx l x =
    let out = Ops.layernorm ctx ~input:x ~scale in
    if ctx.Ctx.training then save l [ x ] else Tensor.release x;
    out
  in
  let bwd ctx l g =
    let x = match unsave l 1 with [ x ] -> x | _ -> assert false in
    let gin = Ops.layernorm_bwd ctx ~input:x ~scale ~grad_out:g in
    Tensor.release x;
    Tensor.release g;
    let gscale = Ops.new_tensor ctx ~name:"grad_ln_scale" (Tensor.shape scale) Dtype.F32 in
    l.grads <- l.grads @ [ gscale ];
    gin
  in
  make ~params:[ scale ] "LayerNorm" fwd bwd

(* ----- stateless layers ----- *)

let relu _ctx =
  let fwd ctx l x =
    let out = Ops.relu ctx x in
    Tensor.release x;
    if ctx.Ctx.training then save l [ Tensor.retain out ];
    out
  in
  let bwd ctx l g =
    let out = match unsave l 1 with [ o ] -> o | _ -> assert false in
    let gin = Ops.relu_bwd ctx ~output:out ~grad_out:g in
    Tensor.release out;
    Tensor.release g;
    gin
  in
  make "ReLU" fwd bwd

let gelu _ctx =
  let fwd ctx l x =
    let out = Ops.gelu ctx x in
    if ctx.Ctx.training then save l [ x ] else Tensor.release x;
    out
  in
  let bwd ctx l g =
    let x = match unsave l 1 with [ x ] -> x | _ -> assert false in
    let gin = Ops.gelu_bwd ctx ~input:x ~grad_out:g in
    Tensor.release x;
    Tensor.release g;
    gin
  in
  make "GELU" fwd bwd

let pool_out_shape shape ~k ~stride =
  match shape with
  | [ n; c; h; w ] -> [ n; c; ((h - k) / stride) + 1; ((w - k) / stride) + 1 ]
  | s -> invalid_arg ("pool: bad input shape " ^ Shape.to_string s)

let maxpool _ctx ~k ~stride =
  let fwd ctx l x =
    let out = Ops.maxpool ctx ~input:x ~out_shape:(pool_out_shape (Tensor.shape x) ~k ~stride) in
    if ctx.Ctx.training then save l [ x ] else Tensor.release x;
    out
  in
  let bwd ctx l g =
    let x = match unsave l 1 with [ x ] -> x | _ -> assert false in
    let gin = Ops.maxpool_bwd ctx ~grad_out:g ~in_shape:(Tensor.shape x) in
    Tensor.release x;
    Tensor.release g;
    gin
  in
  make "MaxPool2d" fwd bwd

let avgpool_to _ctx ~out_hw =
  let fwd ctx l x =
    let out_shape =
      match Tensor.shape x with
      | [ n; c; _; _ ] -> [ n; c; out_hw; out_hw ]
      | s -> invalid_arg ("AvgPool: bad input shape " ^ Shape.to_string s)
    in
    let out = Ops.avgpool ctx ~input:x ~out_shape in
    if ctx.Ctx.training then save l [ x ] else Tensor.release x;
    out
  in
  let bwd ctx l g =
    let x = match unsave l 1 with [ x ] -> x | _ -> assert false in
    let gin = Ops.avgpool_bwd ctx ~grad_out:g ~in_shape:(Tensor.shape x) in
    Tensor.release x;
    Tensor.release g;
    gin
  in
  make "AdaptiveAvgPool2d" fwd bwd

let dropout _ctx =
  let fwd ctx l x =
    if not ctx.Ctx.training then x (* inference dropout is the identity *)
    else begin
      let out, mask = Ops.dropout ctx x in
      Tensor.release x;
      save l [ mask ];
      out
    end
  in
  let bwd ctx l g =
    let mask = match unsave l 1 with [ m ] -> m | _ -> assert false in
    let gin = Ops.dropout_bwd ctx ~mask ~grad_out:g in
    Tensor.release mask;
    Tensor.release g;
    gin
  in
  make "Dropout" fwd bwd

let flatten _ctx =
  let flat_shape shape =
    match shape with
    | n :: rest -> [ n; Shape.numel rest ]
    | [] -> invalid_arg "Flatten: scalar input"
  in
  let fwd ctx l x =
    if ctx.Ctx.training then save l [ Ops.new_tensor ctx ~name:"shape_witness" [ 1 ] Dtype.I32 ];
    ignore ctx;
    Tensor.reshape x (flat_shape (Tensor.shape x))
  in
  let bwd _ctx l g =
    (match unsave l 1 with [ w ] -> Tensor.release w | _ -> assert false);
    g
  in
  make "Flatten" fwd bwd

let embedding ctx ?(file = "model.py") ?(line = 1) ~vocab ~dim ~rows_touched () =
  let table = Tensor.create ctx.Ctx.pool ~name:"embedding.weight" [ vocab; dim ] Dtype.F32 in
  let fwd ctx l indices =
    let out = Ops.embedding ctx ~table ~indices ~rows_touched ~embed_dim:dim in
    ignore l;
    Tensor.release indices;
    out
  in
  let bwd ctx l g =
    let gtable = Ops.embedding_bwd ctx ~table ~grad_out:g ~rows_touched in
    Tensor.release g;
    l.grads <- l.grads @ [ gtable ];
    (* Indices have no gradient; return a token scalar so the chain stays
       uniform. *)
    Ops.new_tensor ctx ~name:"grad_none" [ 1 ] Dtype.F32
  in
  make ~params:[ table ] ~file ~line "Embedding" fwd bwd

let attention ctx ?(file = "model.py") ?(line = 1) ?(fused = false) ~embed_dim
    ~heads ~seq () =
  if embed_dim mod heads <> 0 then invalid_arg "Layer.attention: heads must divide dim";
  let d = embed_dim and dh = embed_dim / heads in
  let w_qkv = Tensor.create ctx.Ctx.pool ~name:"attn.qkv.weight" [ 3 * d; d ] Dtype.F32 in
  let b_qkv = Tensor.create ctx.Ctx.pool ~name:"attn.qkv.bias" [ 3 * d ] Dtype.F32 in
  let w_o = Tensor.create ctx.Ctx.pool ~name:"attn.out.weight" [ d; d ] Dtype.F32 in
  let b_o = Tensor.create ctx.Ctx.pool ~name:"attn.out.bias" [ d ] Dtype.F32 in
  let params = [ w_qkv; b_qkv; w_o; b_o ] in
  if fused then begin
    (* Flash-attention style: qkv projection, one fused kernel that streams
       tiles through shared memory without materializing the score matrix,
       then the output projection. *)
    let flash direction pool m =
      let name =
        match direction with
        | `Fwd -> "flash::fmha_forward_kernel"
        | `Bwd -> "flash::fmha_backward_kernel"
      in
      let out = Tensor.create pool ~name:"attn_ctx" [ m; d ] Dtype.F32 in
      (out, name)
    in
    let fwd ctx l x =
      let m = Tensor.numel x / d in
      let qkv = Ops.linear ctx ~input:x ~weight:w_qkv ~bias:(Some b_qkv) ~m ~k:d ~n:(3 * d) in
      let ctxv, name = flash `Fwd ctx.Ctx.pool m in
      let flash_prof =
        Gpusim.Kernel.profile
          ~branches:(max 1 (m * seq / 64))
          ~divergent_branches:(max 1 (m / 64))
          ~shared_accesses:(m * seq / 4)
          ~bank_conflicts:(m * seq / 1024)
          ~barrier_stall_us:(0.05 *. float_of_int (seq / 64))
          ~value_min:(-300.0) ~value_max:300.0 ()
      in
      Kernels.launch ctx ~name ~prof:flash_prof ~shared_bytes:(96 * 1024)
        ~barriers:(seq / 64)
        ~regions:
          [
            Kernels.region ~accesses:(m * seq / 16 * 3) qkv;
            Kernels.region ~rw:Kernels.Write ctxv;
          ]
        ~flops:(4.0 *. float_of_int m *. float_of_int seq *. float_of_int d)
        ~work:m ();
      let out = Ops.linear ctx ~input:ctxv ~weight:w_o ~bias:(Some b_o) ~m ~k:d ~n:d in
      if ctx.Ctx.training then save l [ x; qkv; ctxv ]
      else List.iter Tensor.release [ x; qkv; ctxv ];
      out
    in
    let bwd ctx l g =
      let x, qkv, ctxv =
        match unsave l 3 with [ a; b; c ] -> (a, b, c) | _ -> assert false
      in
      let m = Tensor.numel x / d in
      let g_ctxv, gw_o, gb_o =
        Ops.linear_bwd ctx ~input:ctxv ~weight:w_o ~grad_out:g ~has_bias:true ~m ~k:d ~n:d
      in
      let g_qkv, name = flash `Bwd ctx.Ctx.pool m in
      let g_qkv = Tensor.reshape g_qkv [ m; d ] in
      Kernels.launch ctx ~name ~shared_bytes:(96 * 1024) ~barriers:(seq / 64)
        ~regions:
          [
            Kernels.region ~accesses:(m * seq / 16 * 4) qkv;
            Kernels.region g_ctxv;
            Kernels.region ~rw:Kernels.Write g_qkv;
          ]
        ~flops:(8.0 *. float_of_int m *. float_of_int seq *. float_of_int d)
        ~work:m ();
      let gin, gw_qkv, gb_qkv =
        Ops.linear_bwd ctx ~input:x ~weight:w_qkv ~grad_out:g_qkv ~has_bias:true ~m
          ~k:d ~n:(3 * d)
      in
      List.iter Tensor.release [ g; x; qkv; ctxv; g_ctxv; g_qkv ];
      l.grads <-
        l.grads
        @ [ gw_qkv ] @ Option.to_list gb_qkv @ [ gw_o ] @ Option.to_list gb_o;
      gin
    in
    make ~params ~file ~line "MultiheadAttention(fused)" fwd bwd
  end
  else
  let fwd ctx l x =
    let m = Tensor.numel x / d in
    let batch = max 1 (m / seq) in
    let qkv = Ops.linear ctx ~input:x ~weight:w_qkv ~bias:(Some b_qkv) ~m ~k:d ~n:(3 * d) in
    let probs =
      Ops.bmm ctx ~a:qkv ~b:qkv ~m:(batch * heads * seq) ~n:seq ~k:dh
        ~out_shape:[ batch; heads; seq; seq ]
    in
    Ops.softmax_ ctx probs;
    let ctxv = Ops.bmm ctx ~a:probs ~b:qkv ~m ~n:d ~k:seq ~out_shape:[ m; d ] in
    let out = Ops.linear ctx ~input:ctxv ~weight:w_o ~bias:(Some b_o) ~m ~k:d ~n:d in
    if ctx.Ctx.training then begin
      save l [ x; qkv; probs; ctxv ]
    end
    else begin
      Tensor.release x;
      Tensor.release qkv;
      Tensor.release probs;
      Tensor.release ctxv
    end;
    out
  in
  let bwd ctx l g =
    let x, qkv, probs, ctxv =
      match unsave l 4 with
      | [ x; qkv; probs; ctxv ] -> (x, qkv, probs, ctxv)
      | _ -> assert false
    in
    let m = Tensor.numel x / d in
    let batch = max 1 (m / seq) in
    let g_ctxv, gw_o, gb_o =
      Ops.linear_bwd ctx ~input:ctxv ~weight:w_o ~grad_out:g ~has_bias:true ~m ~k:d ~n:d
    in
    let g_probs =
      Ops.bmm ctx ~a:g_ctxv ~b:qkv ~m:(batch * heads * seq) ~n:seq ~k:dh
        ~out_shape:[ batch; heads; seq; seq ]
    in
    let g_scores = Ops.softmax_bwd ctx ~output:probs ~grad_out:g_probs in
    let g_qkv = Ops.bmm ctx ~a:g_scores ~b:qkv ~m ~n:(3 * d) ~k:seq ~out_shape:[ m; 3 * d ] in
    let gin, gw_qkv, gb_qkv =
      Ops.linear_bwd ctx ~input:x ~weight:w_qkv ~grad_out:g_qkv ~has_bias:true ~m
        ~k:d ~n:(3 * d)
    in
    List.iter Tensor.release [ g; x; qkv; probs; ctxv; g_ctxv; g_probs; g_scores; g_qkv ];
    l.grads <-
      l.grads
      @ [ gw_qkv ] @ Option.to_list gb_qkv @ [ gw_o ] @ Option.to_list gb_o;
    gin
  in
  make ~params ~file ~line "MultiheadAttention" fwd bwd

(* ----- containers ----- *)

let checkpoint inner =
  let fwd ctx l x =
    if not ctx.Ctx.training then forward ctx inner x
    else begin
      (* Keep only the input; run the body in no-grad mode so nothing is
         saved inside. *)
      save l [ Tensor.retain x ];
      ctx.Ctx.training <- false;
      let out = forward ctx inner x in
      ctx.Ctx.training <- true;
      out
    end
  in
  let bwd ctx l g =
    let x = match unsave l 1 with [ x ] -> x | _ -> assert false in
    (* Recompute the forward with saving enabled, then backpropagate. *)
    let out = forward ctx inner x in
    Tensor.release out;
    backward ctx inner g
  in
  make ~children:[ inner ]
    ~file:"torch/utils/checkpoint.py" ~line:451 "Checkpoint" fwd bwd

let container_file = "torch/nn/modules/container.py"

let sequential ?(name = "Sequential") layers =
  let fwd ctx l x =
    ignore l;
    List.fold_left (fun acc child -> forward ctx child acc) x layers
  in
  let bwd ctx l g =
    ignore l;
    List.fold_left (fun acc child -> backward ctx child acc) g (List.rev layers)
  in
  make ~children:layers ~file:container_file ~line:217 name fwd bwd

let residual ?(name = "Residual") ?skip body =
  let inner = sequential ~name:(name ^ ".body") body in
  let skip_branch = Option.map (sequential ~name:(name ^ ".downsample")) skip in
  let fwd ctx l x =
    ignore l;
    let skip_v =
      match skip_branch with
      | None -> Tensor.retain x
      | Some s -> forward ctx s (Tensor.retain x)
    in
    let y = forward ctx inner x in
    let out = Ops.add ctx y skip_v in
    Tensor.release y;
    Tensor.release skip_v;
    out
  in
  let bwd ctx l g =
    ignore l;
    let g_skip =
      match skip_branch with
      | None -> Tensor.retain g
      | Some s -> backward ctx s (Tensor.retain g)
    in
    let g_body = backward ctx inner g in
    let gin = Ops.add ctx g_body g_skip in
    Tensor.release g_body;
    Tensor.release g_skip;
    gin
  in
  make
    ~children:(inner :: Option.to_list skip_branch)
    ~file:container_file ~line:217 name fwd bwd
