type mode = Inference | Train

let mode_to_string = function Inference -> "inference" | Train -> "train"

let all_abbrs = [ "AN"; "RN-18"; "RN-34"; "BERT"; "GPT-2"; "Whisper" ]

let build ctx abbr =
  match abbr with
  | "AN" -> Alexnet.build ctx
  | "RN-18" -> Resnet.build18 ctx
  | "RN-34" -> Resnet.build34 ctx
  | "BERT" -> Bert.build ctx
  | "GPT-2" -> Gpt2.build ctx
  | "Whisper" -> Whisper.build ctx
  | other -> invalid_arg ("Runner.build: unknown model " ^ other)

let default_iters ~abbr ~mode =
  match (abbr, mode) with
  | "AN", Inference -> 2
  | "AN", Train -> 3
  | "RN-18", Inference -> 13
  | "RN-18", Train -> 7
  | "RN-34", Inference -> 13
  | "RN-34", Train -> 7
  | "BERT", Inference -> 3
  | "BERT", Train -> 1
  | "GPT-2", Inference -> 4
  | "GPT-2", Train -> 4
  | "Whisper", Inference -> 2
  | "Whisper", Train -> 1
  | other, _ -> invalid_arg ("Runner.default_iters: unknown model " ^ other)

let run ctx model ~mode ~iters =
  if iters <= 0 then invalid_arg "Runner.run: iters must be positive";
  for _ = 1 to iters do
    match mode with
    | Inference -> Model.inference_iter ctx model
    | Train -> Model.train_iter ctx model
  done

let run_default ctx abbr ~mode =
  let model = build ctx abbr in
  run ctx model ~mode ~iters:(default_iters ~abbr ~mode);
  model
