type t = {
  device : Gpusim.Device.t;
  pool : Allocator.t;
  rng : Pasta_util.Det_rng.t;
  mutable training : bool;
  mutable cudnn_workspace : Tensor.t option;
  mutable cublaslt_workspace : Tensor.t option;
}

let create ?(managed = false) ?(seed = 0xD1F0L) device =
  {
    device;
    pool = Allocator.create ~managed device;
    rng = Pasta_util.Det_rng.create seed;
    training = false;
    cudnn_workspace = None;
    cublaslt_workspace = None;
  }

let vendor t = (Gpusim.Device.arch t.device).Gpusim.Arch.vendor
let destroy t = Allocator.destroy t.pool
