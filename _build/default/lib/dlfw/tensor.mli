(** Shape-level tensors.

    Tensors carry no data — the simulator needs only extents — but they
    are real allocations in the caching pool, with PyTorch-style shared
    ownership: a tensor starts with one reference, {!retain} adds one, and
    the storage returns to the pool when the last reference is
    {!release}d.  Use-after-free and double-release raise, so the tests
    can verify the framework substrate's lifetime discipline. *)

type t

val create : Allocator.t -> ?name:string -> Shape.t -> Dtype.t -> t
val name : t -> string
val shape : t -> Shape.t
val dtype : t -> Dtype.t
val numel : t -> int
val bytes : t -> int
val base : t -> int
(** Device address of the first element.  Raises [Invalid_argument] when
    the tensor has been freed. *)

val block : t -> Allocator.block
val id : t -> int
val is_live : t -> bool
val refcount : t -> int

val reshape : t -> Shape.t -> t
(** In-place metadata view: same storage under a new shape with the same
    byte count (PyTorch [view]).  Returns the tensor itself. *)

val retain : t -> t
(** Returns the tensor itself, for chaining. *)

val release : t -> unit
(** Drop one reference; frees the storage at zero.  Raises
    [Invalid_argument] if already freed. *)

val pp : Format.formatter -> t -> unit
