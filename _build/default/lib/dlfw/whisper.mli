(** Whisper small (paper Table IV: encoder/decoder transformer, batch 16).

    Encoder: two convolutions over the mel spectrogram then 12 pre-norm
    blocks with fused (flash-style) self-attention over 1500 frames.
    Decoder: 12 blocks of self-attention over 448 token positions plus
    cross-attention into the encoder output; the materialized cross
    scores are Whisper's working-set peak.  The LM head scores only the
    trailing positions, as a KV-cached decode would. *)

val build : ?batch:int -> Ctx.t -> Model.t
