(** Framework execution context: the device being driven, its caching
    allocator, the training/inference mode flag and a deterministic RNG
    stream for data-dependent shapes. *)

type t = {
  device : Gpusim.Device.t;
  pool : Allocator.t;
  rng : Pasta_util.Det_rng.t;
  mutable training : bool;
  mutable cudnn_workspace : Tensor.t option;
      (** shared benchmark-mode convolution workspace (1 GiB, lazily
          allocated), like cuDNN's workspace under PyTorch *)
  mutable cublaslt_workspace : Tensor.t option;
      (** persistent cuBLASLt GEMM workspace (NVIDIA backend only): one
          lazy allocation that slightly raises peak usage, where the AMD
          backend instead allocates transient per-call scratch — the
          allocator-traffic asymmetry of the paper's Fig. 14 *)
}

val create : ?managed:bool -> ?seed:int64 -> Gpusim.Device.t -> t
(** Fresh context with its own caching pool; [managed] puts the pool under
    UVM. *)

val vendor : t -> Gpusim.Arch.vendor

val destroy : t -> unit
(** Tear down the pool, releasing all its device memory. *)
