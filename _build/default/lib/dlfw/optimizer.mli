(** Optimizers.

    SGD applies one fused multi-tensor kernel.  Adam additionally owns
    persistent first/second-moment state — two extra tensors per
    parameter, lazily allocated on the first step — which is why switching
    optimizer visibly moves a model's memory footprint (the effect the
    allocator-timeline tools must be able to show). *)

type t

val sgd : unit -> t

val adam : unit -> t
(** Fresh Adam state; moments are allocated on the first {!step}. *)

val name : t -> string

val state_bytes : t -> int
(** Persistent optimizer-state bytes currently held (0 for SGD). *)

val step : t -> Ctx.t -> (Tensor.t * Tensor.t) list -> unit
(** Apply one update over (parameter, gradient) pairs.  Gradients are
    read, parameters written; the caller still owns both. *)

val destroy : t -> unit
(** Release optimizer state. *)
