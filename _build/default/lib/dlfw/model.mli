(** Model wrapper: a built network plus its input pipeline and loss,
    with single-call inference and training iterations.

    Iterations follow PyTorch lifetime semantics: inference frees every
    activation as soon as it is consumed (flat memory profile); training
    accumulates saved activations through forward, drains them through
    backward, materializes gradients, applies a fused SGD step and frees
    the gradients — the ramp-up / peak / ramp-down shape of the paper's
    Fig. 14. *)

type t = {
  name : string;
  abbr : string;  (** paper Table IV abbreviation, e.g. "RN-18" *)
  root : Layer.t;
  make_input : Ctx.t -> Tensor.t;
  batch : int;
}

val forward : Ctx.t -> t -> Tensor.t
(** Run one forward pass on a fresh input; returns the owned logits. *)

val inference_iter : Ctx.t -> t -> unit
val train_iter : Ctx.t -> t -> unit

val train_iter_hooked :
  Ctx.t -> t -> before_opt:((Tensor.t * Tensor.t) list -> unit) -> unit
(** Like {!train_iter} but calls [before_opt] with the (parameter,
    gradient) pairs before the optimizer step — the hook data-parallel
    training uses to all-reduce gradients. *)

val train_iter_opt : Ctx.t -> t -> optimizer:Optimizer.t -> unit
(** Like {!train_iter} but stepping the given optimizer (e.g. Adam with
    its persistent moment state) instead of plain fused SGD. *)

val param_bytes : t -> int
val param_count : t -> int
