(** ResNet-18 and ResNet-34 (paper Table IV: CNN, residual blocks,
    batch 32).  Convolutions take the cuDNN/MIOpen implicit-GEMM path with
    the shared 1 GiB benchmark workspace. *)

val build18 : ?batch:int -> Ctx.t -> Model.t
val build34 : ?batch:int -> Ctx.t -> Model.t
