(** Operator layer: PyTorch-style composite operators.

    Every operator fires [RecordFunction] begin/end events
    ({!Callbacks.record_function}) under its "aten::" name, pushes the
    native (C++) frames a real dispatch would traverse — so cross-layer
    call-stack capture sees realistic stacks (paper Fig. 4) — allocates its
    outputs from the caching pool, and lowers to one or more kernel
    launches through {!Kernels}.

    Lowering is vendor-sensitive: the CUDA/cuDNN backend fuses bias and
    activation into fewer kernels while the HIP/MIOpen backend decomposes
    them and allocates transient per-call workspaces, reproducing the
    allocation-count and peak-memory differences of the paper's Fig. 14.

    Ownership convention: operators {e never} consume their inputs; callers
    (the layer substrate) manage tensor lifetimes. *)

type conv_cfg = {
  n : int;
  c : int;
  h : int;
  w : int;
  oc : int;
  kh : int;
  kw : int;
  stride : int;
  pad : int;
  algo : [ `Im2col | `Cudnn ];
      (** [`Im2col]: per-image im2col launches + one batched GEMM (the
          aten fallback path AlexNet hits); [`Cudnn]: implicit GEMM (the
          cuDNN/MIOpen path ResNet hits). *)
  benchmark_search : bool;
      (** cuDNN benchmark-mode algorithm search: the first call for a
          given layer sweeps candidate algorithms through the full shared
          workspace (a layout-transform kernel touching the whole 1 GiB
          object); later calls reuse the cached choice. *)
}

val conv_out_dims : conv_cfg -> int * int
(** (out_h, out_w).  Raises [Invalid_argument] if the geometry is
    degenerate. *)

val record : Ctx.t -> string -> (unit -> 'a) -> 'a
(** Wrap a computation in RecordFunction begin/end events. *)

val new_tensor : Ctx.t -> ?name:string -> Shape.t -> Dtype.t -> Tensor.t

(** {2 Forward operators} *)

val linear :
  Ctx.t -> input:Tensor.t -> weight:Tensor.t -> bias:Tensor.t option ->
  m:int -> k:int -> n:int -> Tensor.t

val conv2d :
  Ctx.t -> input:Tensor.t -> weight:Tensor.t -> bias:Tensor.t option ->
  cfg:conv_cfg -> Tensor.t

val bmm :
  Ctx.t -> a:Tensor.t -> b:Tensor.t -> m:int -> n:int -> k:int ->
  out_shape:Shape.t -> Tensor.t
(** Batched matrix multiply ("aten::bmm"): the attention score and
    context products. *)

val relu : Ctx.t -> Tensor.t -> Tensor.t
val gelu : Ctx.t -> Tensor.t -> Tensor.t
val add : Ctx.t -> Tensor.t -> Tensor.t -> Tensor.t
val batchnorm : Ctx.t -> input:Tensor.t -> scale:Tensor.t -> Tensor.t
val layernorm : Ctx.t -> input:Tensor.t -> scale:Tensor.t -> Tensor.t
val softmax : Ctx.t -> Tensor.t -> Tensor.t

(** In-place softmax over the tensor's own storage — what the attention
    paths use so the score matrix is the only large object the kernel
    touches. *)
val softmax_ : Ctx.t -> Tensor.t -> unit
val dropout : Ctx.t -> Tensor.t -> Tensor.t * Tensor.t
(** (output, mask); the mask is saved for backward in training. *)

val maxpool : Ctx.t -> input:Tensor.t -> out_shape:Shape.t -> Tensor.t
val avgpool : Ctx.t -> input:Tensor.t -> out_shape:Shape.t -> Tensor.t

val embedding :
  Ctx.t -> table:Tensor.t -> indices:Tensor.t -> rows_touched:int ->
  embed_dim:int -> Tensor.t

val cross_entropy : Ctx.t -> logits:Tensor.t -> Tensor.t
(** Scalar loss tensor. *)

(** {2 Backward operators} *)

val linear_bwd :
  Ctx.t -> input:Tensor.t -> weight:Tensor.t -> grad_out:Tensor.t ->
  has_bias:bool -> m:int -> k:int -> n:int ->
  Tensor.t * Tensor.t * Tensor.t option
(** (grad_input, grad_weight, grad_bias). *)

val conv2d_bwd :
  Ctx.t -> input:Tensor.t -> weight:Tensor.t -> grad_out:Tensor.t ->
  has_bias:bool -> cfg:conv_cfg ->
  Tensor.t * Tensor.t * Tensor.t option

val relu_bwd : Ctx.t -> output:Tensor.t -> grad_out:Tensor.t -> Tensor.t
val gelu_bwd : Ctx.t -> input:Tensor.t -> grad_out:Tensor.t -> Tensor.t
val batchnorm_bwd :
  Ctx.t -> input:Tensor.t -> scale:Tensor.t -> grad_out:Tensor.t -> Tensor.t
val layernorm_bwd :
  Ctx.t -> input:Tensor.t -> scale:Tensor.t -> grad_out:Tensor.t -> Tensor.t
val softmax_bwd : Ctx.t -> output:Tensor.t -> grad_out:Tensor.t -> Tensor.t
val dropout_bwd : Ctx.t -> mask:Tensor.t -> grad_out:Tensor.t -> Tensor.t
val maxpool_bwd : Ctx.t -> grad_out:Tensor.t -> in_shape:Shape.t -> Tensor.t
val avgpool_bwd : Ctx.t -> grad_out:Tensor.t -> in_shape:Shape.t -> Tensor.t
val embedding_bwd :
  Ctx.t -> table:Tensor.t -> grad_out:Tensor.t -> rows_touched:int -> Tensor.t
(** Dense grad-table tensor, scatter-added. *)

val cross_entropy_bwd : Ctx.t -> logits:Tensor.t -> Tensor.t

(** {2 Optimizer} *)

val sgd_step : Ctx.t -> params:Tensor.t list -> grads:Tensor.t list -> unit
val zero_grad : Ctx.t -> Tensor.t list -> unit
