(** Framework callback surface.

    The substitute for the PyTorch hooks PASTA integrates with
    (paper §IV-A): [c10::reportMemoryUsage] for allocator traffic and
    [at::RecordFunction] for operator boundaries.  Observers register by
    name; the framework substrate fires events as it runs.  Per-process
    global state, like the real callback registries. *)

type mem_event = {
  ptr : int;
  size_delta : int;  (** positive on allocation, negative on release *)
  total_allocated : int;  (** live framework bytes after the event *)
  total_reserved : int;  (** device bytes held by the caching allocator *)
  device_id : int;
  tag : string;  (** tensor / buffer label *)
}

type op_event = {
  op_name : string;  (** e.g. "aten::addmm" *)
  phase : [ `Begin | `End ];
  device_id : int;
  seq : int;  (** operator sequence number, shared by Begin/End *)
}

val report_memory_usage : mem_event -> unit
val record_function : op_event -> unit

val add_memory_observer : string -> (mem_event -> unit) -> unit
val remove_memory_observer : string -> unit
val add_op_observer : string -> (op_event -> unit) -> unit
val remove_op_observer : string -> unit

val clear_observers : unit -> unit
(** Drop all observers; used between independent experiment runs. *)

val next_op_seq : unit -> int
(** Fresh operator sequence number. *)
