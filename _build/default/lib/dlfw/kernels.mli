(** Kernel builders: translate tensor-level operations into simulated
    kernel launches with realistic names, launch geometry, FLOP counts and
    memory-access plans.

    Kernel names are vendor-flavoured the way real PyTorch backends are —
    cuBLAS/cuDNN-style on NVIDIA parts, rocBLAS/MIOpen-style on AMD — so
    that the kernel-frequency tool (paper Fig. 7) and the cross-vendor
    comparison (Fig. 14) see the naming differences PASTA must normalize.

    Access-count model: GEMM operands are re-read once per 128-wide output
    tile (a tiled-cache approximation), elementwise kernels read each input
    and write each output element once, reductions read everything and
    write the reduced extent. *)

val tile : int
(** GEMM tile width used by the operand re-read model (128). *)

type rw = Read | Write

val region :
  ?rw:rw ->
  ?extent:int ->
  ?accesses:int ->
  ?pattern:Gpusim.Kernel.pattern ->
  Tensor.t ->
  Gpusim.Kernel.region
(** Access-plan entry for a tensor: [extent] defaults to the whole tensor,
    [accesses] to one access per element of the extent. *)

val launch :
  Ctx.t ->
  name:string ->
  ?unused_args:Tensor.t list ->
  ?shared_bytes:int ->
  ?barriers:int ->
  ?prof:Gpusim.Kernel.profile ->
  regions:Gpusim.Kernel.region list ->
  flops:float ->
  work:int ->
  unit ->
  unit
(** Launch a kernel with one thread per [work] item in 256-thread blocks.
    [unused_args] are pointer arguments passed but never dereferenced —
    the over-approximation that motivates access-based working-set
    analysis (paper §V-B2). *)

(** {2 Specific kernels} *)

val gemm :
  Ctx.t ->
  ?fused_bias:Tensor.t ->
  ?unused_args:Tensor.t list ->
  m:int ->
  n:int ->
  k:int ->
  a:Tensor.t ->
  b:Tensor.t ->
  c:Tensor.t ->
  unit ->
  unit

val elementwise :
  Ctx.t -> op:string -> ins:Tensor.t list -> out:Tensor.t -> unit
(** One read per input element, one write per output element. *)

val reduce : Ctx.t -> op:string -> src:Tensor.t -> dst:Tensor.t -> unit
val copy : Ctx.t -> src:Tensor.t -> dst:Tensor.t -> unit
val fill : Ctx.t -> Tensor.t -> unit

val im2col : Ctx.t -> input:Tensor.t -> col:Tensor.t -> unit
val col2im : Ctx.t -> col:Tensor.t -> output:Tensor.t -> unit

val gather :
  Ctx.t -> table:Tensor.t -> touched_bytes:int -> indices:Tensor.t -> out:Tensor.t -> unit
(** Embedding lookup: only [touched_bytes] of the table extent is
    accessed (clamped to the table size). *)

val softmax : Ctx.t -> direction:[ `Fwd | `Bwd ] -> src:Tensor.t -> dst:Tensor.t -> unit

val batchnorm_stats : Ctx.t -> input:Tensor.t -> stats:Tensor.t -> unit
val batchnorm_apply : Ctx.t -> input:Tensor.t -> stats:Tensor.t -> out:Tensor.t -> unit

val pool : Ctx.t -> kind:[ `Max | `Avg ] -> input:Tensor.t -> out:Tensor.t -> unit
val pool_bwd : Ctx.t -> kind:[ `Max | `Avg ] -> grad_out:Tensor.t -> grad_in:Tensor.t -> unit

val sgd_step : Ctx.t -> params:Tensor.t list -> grads:Tensor.t list -> unit
(** One fused multi-tensor-apply launch over all parameter/grad pairs. *)
