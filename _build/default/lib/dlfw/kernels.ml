module K = Gpusim.Kernel
module D = Gpusim.Device

let tile = 128
let block = Gpusim.Dim3.make 256

type rw = Read | Write

let region ?(rw = Read) ?extent ?accesses ?(pattern = K.Sequential) tensor =
  let extent =
    match extent with
    | Some e -> min e (Tensor.bytes tensor)
    | None -> Tensor.bytes tensor
  in
  let accesses =
    match accesses with
    | Some a -> a
    | None -> max 1 (extent / Dtype.size_bytes (Tensor.dtype tensor))
  in
  K.region ~write:(rw = Write) ~pattern ~base:(Tensor.base tensor) ~bytes:extent
    ~accesses ()

let launch (ctx : Ctx.t) ~name ?(unused_args = []) ?(shared_bytes = 0)
    ?(barriers = 0) ?prof ~regions ~flops ~work () =
  let grid = Gpusim.Dim3.make (max 1 ((work + 255) / 256)) in
  let arg_ptrs =
    List.map (fun (r : K.region) -> r.K.base) regions
    @ List.map Tensor.base unused_args
  in
  let kernel =
    K.make ~name ~grid ~block ~regions ~arg_ptrs ~flops ~shared_bytes ~barriers
      ?prof ()
  in
  ignore (D.launch ctx.Ctx.device kernel)

(* Vendor-flavoured kernel naming, following the real backend libraries. *)
let gemm_name (ctx : Ctx.t) ~m ~n =
  match Ctx.vendor ctx with
  | Gpusim.Arch.Nvidia ->
      Printf.sprintf "ampere_sgemm_%dx%d_tn" (min 128 (max 32 (m / 64 * 32)))
        (min 128 (max 32 (n / 64 * 32)))
  | Gpusim.Arch.Amd ->
      Printf.sprintf "Cijk_Ailk_Bljk_SB_MT%dx%d" (min 128 (max 32 (m / 64 * 32)))
        (min 128 (max 32 (n / 64 * 32)))
  | Gpusim.Arch.Google -> Printf.sprintf "xla::dot_general_%dx%d" m n

let elementwise_name (ctx : Ctx.t) op =
  match Ctx.vendor ctx with
  | Gpusim.Arch.Nvidia ->
      Printf.sprintf "at::native::vectorized_elementwise_kernel<4, %s>" op
  | Gpusim.Arch.Amd -> Printf.sprintf "at::native::elementwise_kernel<%s>" op
  | Gpusim.Arch.Google -> Printf.sprintf "xla::fusion<%s>" op

let ceil_div a b = (a + b - 1) / b

let gemm ctx ?fused_bias ?(unused_args = []) ~m ~n ~k ~a ~b ~c () =
  let reads_a = m * k * ceil_div n tile in
  let reads_b = k * n * ceil_div m tile in
  let writes_c = m * n in
  let regions =
    [
      region ~rw:Read ~accesses:reads_a a;
      region ~rw:Read ~accesses:reads_b b;
      region ~rw:Write ~accesses:writes_c c;
    ]
    @
    match fused_bias with
    | Some bias -> [ region ~rw:Read ~accesses:n bias ]
    | None -> []
  in
  let prof =
    let shared = reads_a + reads_b in
    let branches = max 1 (m * n / 256 * ceil_div k 32) in
    K.profile ~branches
      ~divergent_branches:(branches / 64) (* boundary tiles only *)
      ~shared_accesses:shared
      ~bank_conflicts:(shared / 128)
      ~barrier_stall_us:(1.5 *. float_of_int (ceil_div k 32))
      ~value_min:(-4.0 *. sqrt (float_of_int k))
      ~value_max:(4.0 *. sqrt (float_of_int k))
      ~redundant_loads:(max 0 (reads_a - (m * k)) + max 0 (reads_b - (k * n)))
      ()
  in
  launch ctx
    ~name:(gemm_name ctx ~m ~n)
    ~unused_args
    ~shared_bytes:(48 * 1024) ~barriers:(ceil_div k 32) ~prof
    ~regions
    ~flops:(2.0 *. float_of_int m *. float_of_int n *. float_of_int k)
    ~work:(m * n) ()

let elementwise ctx ~op ~ins ~out =
  let work = Tensor.numel out in
  let regions =
    List.map (fun t -> region ~rw:Read t) ins @ [ region ~rw:Write out ]
  in
  let data_dependent =
    match op with
    | "relu" | "threshold_backward" | "gelu" | "gelu_backward" | "masked_scale" -> true
    | _ -> false
  in
  let broadcast_reads =
    (* Inputs smaller than the output are broadcast: every re-read beyond
       the first pass over the operand observes an already-loaded value. *)
    List.fold_left
      (fun acc t -> acc + max 0 (work - Tensor.numel t))
      0 ins
  in
  let value_max = match op with "relu" -> 6.0 | "add" | "add_bias" -> 16.0 | _ -> 8.0 in
  let prof =
    K.profile ~branches:work
      ~divergent_branches:(if data_dependent then work / 8 else 0)
      ~value_min:(if String.equal op "relu" then 0.0 else -.value_max)
      ~value_max ~redundant_loads:broadcast_reads ()
  in
  launch ctx ~name:(elementwise_name ctx op) ~regions ~prof
    ~flops:(float_of_int work) ~work ()

let reduce ctx ~op ~src ~dst =
  let n = Tensor.numel src in
  let value_min = if String.equal op "nll_loss" then -88.0 else -32.0 in
  let prof =
    K.profile ~branches:(max 1 (n / 32 * 5))
      ~divergent_branches:(max 1 (n / 32)) (* the tail of every warp tree *)
      ~shared_accesses:(max 1 (n / 4))
      ~bank_conflicts:(n / 256)
      ~barrier_stall_us:2.0 ~value_min ~value_max:32.0 ()
  in
  launch ctx
    ~name:(Printf.sprintf "at::native::reduce_kernel<%s>" op)
    ~regions:[ region ~rw:Read src; region ~rw:Write dst ]
    ~barriers:2 ~prof
    ~flops:(float_of_int n)
    ~work:n ()

let copy ctx ~src ~dst =
  launch ctx ~name:"at::native::direct_copy_kernel"
    ~regions:[ region ~rw:Read src; region ~rw:Write dst ]
    ~flops:0.0 ~work:(Tensor.numel dst) ()

let fill ctx t =
  launch ctx ~name:"at::native::fill_kernel"
    ~regions:[ region ~rw:Write t ]
    ~flops:0.0 ~work:(Tensor.numel t) ()

let im2col ctx ~input ~col =
  let name =
    match Ctx.vendor ctx with
    | Gpusim.Arch.Nvidia -> "at::native::im2col_kernel"
    | Gpusim.Arch.Amd -> "miopen::Im2Col"
    | Gpusim.Arch.Google -> "xla::im2col"
  in
  (* Each column-buffer element is one read of the input (with overlap, the
     input is read multiple times) and one write. *)
  let writes = Tensor.numel col in
  launch ctx ~name
    ~regions:
      [ region ~rw:Read ~accesses:writes input; region ~rw:Write col ]
    ~flops:0.0 ~work:writes ()

let col2im ctx ~col ~output =
  let name =
    match Ctx.vendor ctx with
    | Gpusim.Arch.Nvidia -> "at::native::col2im_kernel"
    | Gpusim.Arch.Amd -> "miopen::Col2Im"
    | Gpusim.Arch.Google -> "xla::col2im"
  in
  let reads = Tensor.numel col in
  launch ctx ~name
    ~regions:[ region ~rw:Read col; region ~rw:Write ~accesses:reads output ]
    ~flops:(float_of_int reads) ~work:reads ()

let gather ctx ~table ~touched_bytes ~indices ~out =
  let n = Tensor.numel out in
  let prof =
    K.profile ~branches:n ~divergent_branches:(n / 2)
      ~value_min:(-2.0) ~value_max:2.0 ()
  in
  launch ctx ~prof ~name:"at::native::(anonymous namespace)::indexSelectLargeIndex"
    ~regions:
      [
        region ~rw:Read ~extent:touched_bytes ~pattern:K.Random table;
        region ~rw:Read indices;
        region ~rw:Write out;
      ]
    ~flops:0.0 ~work:(Tensor.numel out) ()

let softmax ctx ~direction ~src ~dst =
  let name =
    match direction with
    | `Fwd -> "at::native::(anonymous namespace)::softmax_warp_forward"
    | `Bwd -> "at::native::(anonymous namespace)::softmax_warp_backward"
  in
  let n = Tensor.numel src in
  let prof =
    K.profile ~branches:(max 1 (n / 32 * 2))
      ~divergent_branches:(max 1 (n / 512))
      ~shared_accesses:(max 1 (n / 2))
      ~bank_conflicts:(n / 512)
      ~barrier_stall_us:3.0
      ~value_min:(-90000.0) ~value_max:90000.0 (* exp intermediates *)
      ()
  in
  launch ctx ~name ~barriers:2 ~prof
    ~regions:
      [ region ~rw:Read ~accesses:(2 * n) src; region ~rw:Write dst ]
    ~flops:(3.0 *. float_of_int n)
    ~work:n ()

let batchnorm_stats ctx ~input ~stats =
  let name =
    match Ctx.vendor ctx with
    | Gpusim.Arch.Nvidia -> "at::native::batch_norm_collect_statistics_kernel"
    | Gpusim.Arch.Amd -> "MIOpenBatchNormFwdTrainSpatialStats"
    | Gpusim.Arch.Google -> "xla::batch_norm_training_stats"
  in
  let n = Tensor.numel input in
  let prof =
    K.profile ~branches:(max 1 (n / 32 * 3))
      ~divergent_branches:(max 1 (n / 64))
      ~shared_accesses:(max 1 (n / 2))
      ~bank_conflicts:(n / 64) (* column-strided accumulators conflict *)
      ~barrier_stall_us:8.0 ~value_min:(-64.0) ~value_max:64.0 ()
  in
  launch ctx ~name ~barriers:4 ~prof
    ~regions:[ region ~rw:Read input; region ~rw:Write stats ]
    ~flops:(2.0 *. float_of_int n)
    ~work:n ()

let batchnorm_apply ctx ~input ~stats ~out =
  let name =
    match Ctx.vendor ctx with
    | Gpusim.Arch.Nvidia -> "at::native::batch_norm_transform_input_kernel"
    | Gpusim.Arch.Amd -> "MIOpenBatchNormFwdTrainSpatialNorm"
    | Gpusim.Arch.Google -> "xla::batch_norm_training_apply"
  in
  launch ctx ~name
    ~regions:
      [ region ~rw:Read input; region ~rw:Read stats; region ~rw:Write out ]
    ~flops:(2.0 *. float_of_int (Tensor.numel input))
    ~work:(Tensor.numel input) ()

let pool ctx ~kind ~input ~out =
  let name =
    match kind with
    | `Max -> "at::native::(anonymous namespace)::max_pool_forward_nchw"
    | `Avg -> "at::native::(anonymous namespace)::avg_pool2d_out_cuda_frame"
  in
  let reads = Tensor.numel input in
  let windows = Tensor.numel out in
  let prof =
    match kind with
    | `Max ->
        K.profile ~branches:reads ~divergent_branches:(reads / 4)
          ~value_min:(-8.0) ~value_max:8.0 ()
    | `Avg -> K.profile ~branches:windows ~value_min:(-8.0) ~value_max:8.0 ()
  in
  launch ctx ~name ~prof
    ~regions:[ region ~rw:Read input; region ~rw:Write out ]
    ~flops:(float_of_int reads) ~work:windows ()

let pool_bwd ctx ~kind ~grad_out ~grad_in =
  let name =
    match kind with
    | `Max -> "at::native::(anonymous namespace)::max_pool_backward_nchw"
    | `Avg -> "at::native::(anonymous namespace)::avg_pool2d_backward_out_cuda_frame"
  in
  launch ctx ~name
    ~regions:[ region ~rw:Read grad_out; region ~rw:Write grad_in ]
    ~flops:(float_of_int (Tensor.numel grad_in))
    ~work:(Tensor.numel grad_in) ()

let sgd_step ctx ~params ~grads =
  if List.length params <> List.length grads then
    invalid_arg "Kernels.sgd_step: params/grads length mismatch";
  let regions =
    List.concat_map
      (fun (p, g) -> [ region ~rw:Write p; region ~rw:Read g ])
      (List.combine params grads)
  in
  let work = List.fold_left (fun acc p -> acc + Tensor.numel p) 0 params in
  launch ctx ~name:"at::native::multi_tensor_apply_kernel<sgd>" ~regions
    ~flops:(2.0 *. float_of_int work)
    ~work ()
