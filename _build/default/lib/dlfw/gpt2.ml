let file = "models/gpt2/model.py"
let vocab = 50257

let build ?(batch = 8) ?(seq = 1024) ?(layers = 12) ?(dim = 768) ?(heads = 12)
    ?(checkpoint = false) ctx =
  let blocks =
    List.init layers (fun _ ->
        let block = Transformer.block_prenorm ctx ~file ~dim ~heads ~seq () in
        if checkpoint then Layer.checkpoint block else block)
  in
  let root =
    Layer.sequential ~name:"GPT2"
      ([
         Layer.embedding ctx ~file ~line:31 ~vocab ~dim
           ~rows_touched:(min (batch * seq) (vocab / 8))
           ();
         Transformer.pos_add ctx ~file ~seq ~dim;
         Layer.dropout ctx;
       ]
      @ blocks
      @ [
          Layer.layernorm ctx ~features:dim;
          Layer.linear ctx ~file ~line:52 ~bias:false ~in_features:dim
            ~out_features:vocab ();
        ])
  in
  {
    Model.name = "GPT-2";
    abbr = "GPT-2";
    root;
    make_input =
      (fun ctx -> Ops.new_tensor ctx ~name:"input_ids" [ batch; seq ] Dtype.I64);
    batch;
  }
