type kind = Sgd | Adam

type t = {
  kind : kind;
  moments : (int, Tensor.t * Tensor.t) Hashtbl.t; (* param tensor id -> (m, v) *)
}

let sgd () = { kind = Sgd; moments = Hashtbl.create 1 }
let adam () = { kind = Adam; moments = Hashtbl.create 64 }

let name t = match t.kind with Sgd -> "sgd" | Adam -> "adam"

let state_bytes t =
  Hashtbl.fold (fun _ (m, v) acc -> acc + Tensor.bytes m + Tensor.bytes v) t.moments 0

let moments_for t ctx p =
  match Hashtbl.find_opt t.moments (Tensor.id p) with
  | Some mv -> mv
  | None ->
      let m = Tensor.create ctx.Ctx.pool ~name:"adam.exp_avg" (Tensor.shape p) Dtype.F32 in
      let v = Tensor.create ctx.Ctx.pool ~name:"adam.exp_avg_sq" (Tensor.shape p) Dtype.F32 in
      Kernels.fill ctx m;
      Kernels.fill ctx v;
      Hashtbl.add t.moments (Tensor.id p) (m, v);
      (m, v)

let step t ctx pairs =
  match t.kind with
  | Sgd ->
      let params, grads = List.split pairs in
      if params <> [] then Ops.sgd_step ctx ~params ~grads
  | Adam ->
      Ops.record ctx "optimizer::adam_step" @@ fun () ->
      (* One fused multi-tensor kernel over params, grads and both moment
         buffers, like apex/fused Adam. *)
      let regions =
        List.concat_map
          (fun (p, g) ->
            let m, v = moments_for t ctx p in
            [
              Kernels.region ~rw:Kernels.Write p;
              Kernels.region ~rw:Kernels.Read g;
              Kernels.region ~rw:Kernels.Write m;
              Kernels.region ~rw:Kernels.Write v;
            ])
          pairs
      in
      if regions <> [] then begin
        let work = List.fold_left (fun acc (p, _) -> acc + Tensor.numel p) 0 pairs in
        Kernels.launch ctx ~name:"at::native::multi_tensor_apply_kernel<adam>"
          ~regions
          ~flops:(8.0 *. float_of_int work)
          ~work ()
      end

let destroy t =
  Hashtbl.iter
    (fun _ (m, v) ->
      Tensor.release m;
      Tensor.release v)
    t.moments;
  Hashtbl.reset t.moments
