(** ROCProfiler-SDK-style profiling substrate for AMD devices.

    Exposes the callback-tracing service shape of the ROCm SDK
    ([rocprofiler_configure_callback_tracing_service]): HIP API records,
    kernel dispatches, memory copies and memory allocations.  Two
    deliberate convention differences from the NVIDIA substrates exercise
    PASTA's cross-vendor normalization (paper §III-G):

    - memory *release* is reported as an allocation record with a
      {e negative} size delta rather than a distinct free record;
    - kernels are dispatched on an "agent"/"queue" rather than a
      device/stream.

    Fine-grained patching also uses device-resident accumulation, mirroring
    the Sanitizer path so AMD parts support the same working-set tools. *)

type record =
  | Hip_api of { name : string; phase : [ `Enter | `Exit ] }
  | Kernel_dispatch of {
      agent : int;
      queue : int;
      dispatch : Gpusim.Device.launch_info;
      phase : [ `Begin | `End ];
      stats : Gpusim.Device.exec_stats option;  (** present on [`End] *)
    }
  | Memory_copy of { bytes : int; kind : Gpusim.Device.memcpy_kind }
  | Memory_allocate of { address : int; size_delta : int; agent : int }
      (** positive on allocation, negative on release *)
  | Scratch_memory of { bytes : int }
  | Sync_event

type t

val attach : Gpusim.Device.t -> t
(** Raises [Invalid_argument] when the device is not an AMD part — the SDK
    does not load against CUDA devices. *)

val detach : t -> unit

val configure_callback : t -> (record -> unit) -> unit

val patch_kernels :
  t ->
  map_bytes:(unit -> int) ->
  device_fn:(Gpusim.Device.launch_info -> Gpusim.Kernel.region -> unit) ->
  on_kernel_complete:(Gpusim.Device.launch_info -> Gpusim.Device.exec_stats -> unit) ->
  unit
(** Device-resident fine-grained accumulation, as {!Sanitizer.patch_module}
    with [Device_analysis]. *)

val unpatch_kernels : t -> unit

val phases : t -> Phases.t
val reset_phases : t -> unit
