(** NVBit-style dynamic binary instrumentation substrate.

    NVBit differs from the Sanitizer path in how it finds what to
    instrument: it receives CUDA events ([nvbit_at_cuda_event]) and, for
    each new kernel, must *dump the SASS listing and parse it* to identify
    memory instructions before inserting instrumentation calls — the extra
    cost source the paper calls out in §V-B3.  Tracing then follows the
    conventional collect-on-GPU / analyze-on-CPU model with a device
    channel buffer (the NVBit MemTrace design, Fig. 2a).  Instrumented
    functions are cached per kernel name, as [nvbit_at_function_first_load]
    does. *)

type cuda_event =
  | Ev_launch_begin of Gpusim.Device.launch_info
  | Ev_launch_end of Gpusim.Device.launch_info * Gpusim.Device.exec_stats
  | Ev_memcpy of { bytes : int; kind : Gpusim.Device.memcpy_kind }
  | Ev_malloc of Gpusim.Device_mem.alloc
  | Ev_free of Gpusim.Device_mem.alloc
  | Ev_sync

type t

val attach : Gpusim.Device.t -> t
val detach : t -> unit

val at_cuda_event : t -> (cuda_event -> unit) -> unit
(** Register the CUDA-event callback (replaces the previous one). *)

val get_instrs : t -> Gpusim.Kernel.t -> Gpusim.Instr.t list
(** Dump and parse the kernel's SASS, charging the dump/parse cost; results
    are cached per kernel name so each function pays once, like
    [nvbit_get_instrs]. *)

val instrument_memory :
  t ->
  ?buffer_records:int ->
  ?per_record_us:float ->
  on_record:(Gpusim.Device.launch_info -> Gpusim.Warp.access -> unit) ->
  unit ->
  unit
(** Install memory tracing.  For every kernel: ensure its SASS has been
    dumped/parsed (first launch only), instrument its global-memory
    instructions, stream records through the channel buffer
    ([buffer_records] capacity, default the 4 MB buffer) and hand each
    (sampled, weighted) record to [on_record] on the host.  Costs use the
    NVBit constants of {!Gpusim.Costmodel} plus a per-flush channel
    overhead. *)

val instrument_opcodes :
  t ->
  opcodes:Gpusim.Instr.opcode list ->
  on_counts:(Gpusim.Device.launch_info -> (Gpusim.Instr.opcode * int) list -> unit) ->
  unit ->
  unit
(** "Any Specific Instruction" instrumentation (paper Table II): count the
    dynamic executions of the given opcodes per kernel.  The SASS listing
    is dumped/parsed per function (cached), the matching static
    instructions get counting trampolines, and each launch reports one
    count per requested opcode (static occurrences x threads).  Collection
    cost is charged per counted dynamic instruction.  Replaces any
    previously installed instrumentation. *)

val uninstrument : t -> unit

val functions_parsed : t -> int
(** Number of distinct kernels whose SASS has been dumped and parsed. *)

val phases : t -> Phases.t
val reset_phases : t -> unit
