(** XProf-style profiling substrate for Google TPUs.

    The TPU execution profiler exposes *XSpace* event planes rather than
    callback domains: program executions on a TensorCore, buffer
    allocations/deallocations, infeed/outfeed transfers, step markers —
    plus vendor-unique systolic-array activity that has no equivalent on
    other accelerators (paper §III-G: such events are handled by a
    specialized handler and ignored elsewhere).

    No fine-grained patching exists on TPUs; instruction-level and
    trace-based analysis models are unavailable on this substrate, which
    is exactly the portability boundary the paper describes. *)

type record =
  | Program_execute of {
      core : int;
      dispatch : Gpusim.Device.launch_info;
      phase : [ `Begin | `End ];
      stats : Gpusim.Device.exec_stats option;
    }
  | Buffer_allocate of { address : int; bytes : int }
  | Buffer_deallocate of { address : int; bytes : int }
  | Infeed of { bytes : int }  (** host-to-device transfer *)
  | Outfeed of { bytes : int }  (** device-to-host transfer *)
  | Step_marker
  | Systolic_array_active of { cycles : int }
      (** vendor-unique MXU activity; unified-format normalization drops
          it on purpose *)

type t

val attach : Gpusim.Device.t -> t
(** Raises [Invalid_argument] unless the device is a Google part. *)

val detach : t -> unit
val configure_callback : t -> (record -> unit) -> unit
val phases : t -> Phases.t
val reset_phases : t -> unit
