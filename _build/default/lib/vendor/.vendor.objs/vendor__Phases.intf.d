lib/vendor/phases.mli: Format Gpusim
