lib/vendor/sanitizer.mli: Gpusim Phases
