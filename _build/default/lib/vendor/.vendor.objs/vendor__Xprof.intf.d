lib/vendor/xprof.mli: Gpusim Phases
