lib/vendor/nvbit.mli: Gpusim Phases
