lib/vendor/phases.ml: Format Gpusim
