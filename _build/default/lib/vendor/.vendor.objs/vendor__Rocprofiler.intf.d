lib/vendor/rocprofiler.mli: Gpusim Phases
