lib/vendor/sanitizer.ml: Gpusim List Phases Printf
