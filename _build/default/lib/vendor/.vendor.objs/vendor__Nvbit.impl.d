lib/vendor/nvbit.ml: Gpusim Hashtbl List Phases Printf
