lib/vendor/rocprofiler.ml: Gpusim Phases Printf
