lib/vendor/xprof.ml: Gpusim Phases Printf
