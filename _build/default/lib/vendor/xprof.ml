module D = Gpusim.Device

type record =
  | Program_execute of {
      core : int;
      dispatch : D.launch_info;
      phase : [ `Begin | `End ];
      stats : D.exec_stats option;
    }
  | Buffer_allocate of { address : int; bytes : int }
  | Buffer_deallocate of { address : int; bytes : int }
  | Infeed of { bytes : int }
  | Outfeed of { bytes : int }
  | Step_marker
  | Systolic_array_active of { cycles : int }

type t = {
  device : D.t;
  probe_name : string;
  mutable callback : record -> unit;
  phases : Phases.t;
}

let dispatch t ev =
  let core = D.id t.device in
  match ev with
  | D.Api _ | D.Memset _ -> ()
  | D.Malloc { alloc } ->
      t.callback
        (Buffer_allocate
           { address = alloc.Gpusim.Device_mem.base; bytes = alloc.Gpusim.Device_mem.bytes })
  | D.Free { alloc } ->
      t.callback
        (Buffer_deallocate
           { address = alloc.Gpusim.Device_mem.base; bytes = alloc.Gpusim.Device_mem.bytes })
  | D.Memcpy { bytes; kind; _ } -> (
      match kind with
      | D.Host_to_device -> t.callback (Infeed { bytes })
      | D.Device_to_host -> t.callback (Outfeed { bytes })
      | D.Device_to_device | D.Peer _ -> t.callback (Infeed { bytes }))
  | D.Launch_begin info ->
      t.callback (Program_execute { core; dispatch = info; phase = `Begin; stats = None });
      (* The MXU plane reports systolic activity alongside the program —
         a vendor-unique event stream. *)
      t.callback
        (Systolic_array_active
           { cycles = max 1 (int_of_float (info.D.kernel.Gpusim.Kernel.flops /. 16384.0)) })
  | D.Launch_end (info, stats) ->
      t.phases.Phases.workload_us <- t.phases.Phases.workload_us +. stats.D.duration_us;
      t.callback
        (Program_execute { core; dispatch = info; phase = `End; stats = Some stats })
  | D.Sync _ -> t.callback Step_marker

let attach device =
  (match (D.arch device).Gpusim.Arch.vendor with
  | Gpusim.Arch.Google -> ()
  | Gpusim.Arch.Nvidia | Gpusim.Arch.Amd ->
      invalid_arg "Xprof.attach: not a Google TPU");
  let t =
    {
      device;
      probe_name = Printf.sprintf "xprof-%d" (D.id device);
      callback = ignore;
      phases = Phases.create ();
    }
  in
  D.add_probe device { D.probe_name = t.probe_name; on_event = (fun ev -> dispatch t ev) };
  t

let detach t = D.remove_probe t.device t.probe_name
let configure_callback t f = t.callback <- f
let phases t = t.phases
let reset_phases t = Phases.reset t.phases
