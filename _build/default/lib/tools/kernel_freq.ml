type t = {
  counts : Pasta_util.Histogram.t;
  called_knob : Pasta.Knobs.t;
  mem_knob : Pasta.Knobs.t;
}

let create () =
  {
    counts = Pasta_util.Histogram.create ();
    called_knob = Pasta.Knobs.create Pasta.Knobs.max_called_kernel;
    mem_knob = Pasta.Knobs.create Pasta.Knobs.max_mem_referenced_kernel;
  }

let counts t = t.counts
let total_launches t = Pasta_util.Histogram.total t.counts
let distinct_kernels t = Pasta_util.Histogram.distinct t.counts
let top t k = Pasta_util.Histogram.top t.counts k
let most_called t = Pasta.Knobs.best t.called_knob
let most_mem_referenced t = Pasta.Knobs.best t.mem_knob

let report t ppf =
  Format.fprintf ppf "kernel invocation frequencies (%d launches, %d distinct):@."
    (total_launches t) (distinct_kernels t);
  Pasta_util.Histogram.pp ~limit:15 ppf t.counts;
  Pasta.Knobs.pp_report ppf t.called_knob

(* The paper's TOOL::record_kernel_freq: maintain a name->count map. *)
let record_kernel_freq t (info : Pasta.Event.kernel_info) =
  Pasta_util.Histogram.add t.counts info.Pasta.Event.name;
  Pasta.Knobs.observe t.called_knob ~kernel:info
    ~metric:(Pasta_util.Histogram.count t.counts info.Pasta.Event.name)

let tool t =
  {
    (Pasta.Tool.default "kernel_freq") with
    Pasta.Tool.on_kernel_begin = record_kernel_freq t;
    on_kernel_end =
      (fun info s ->
        Pasta.Knobs.observe t.mem_knob ~kernel:info
          ~metric:s.Pasta.Event.true_accesses);
    report = report t;
  }
