(** Kernel invocation frequency analysis (paper §V-B1, Fig. 7).

    The paper's minimal-extension example: the whole tool is one override
    ([record_kernel_freq]) over the template.  It also tracks the
    [MAX_CALLED_KERNEL] and [MAX_MEM_REFERENCED_KERNEL] knobs so the
    hottest kernel's cross-layer call stack can be reported (Fig. 4). *)

type t

val create : unit -> t

val tool : t -> Pasta.Tool.t
(** No fine-grained instrumentation: kernel-launch callbacks only. *)

val counts : t -> Pasta_util.Histogram.t
val total_launches : t -> int
val distinct_kernels : t -> int

val top : t -> int -> (string * int) list

val most_called : t -> (Pasta.Event.kernel_info * int) option
val most_mem_referenced : t -> (Pasta.Event.kernel_info * int) option

val report : t -> Format.formatter -> unit
