(** Value-based analysis (paper §III-H, "Value-based analysis tools"):
    a numeric range sanitizer plus redundant value-load detection.

    From operand-value instrumentation the tool tracks each kernel's
    observed value range and flags kernels whose intermediates exceed the
    fp16 representable range (|v| > 65504) — exactly the hazards that
    surface when a model is later run in half precision — and kernels
    whose values dip below the fp16 subnormal floor (risking flush-to-zero
    underflow).  It also aggregates redundant loads (loads observing the
    previously loaded value), the signal for load/store elimination. *)

val fp16_max : float
val fp16_min_normal : float

type hazard = Overflow | Underflow

val hazard_to_string : hazard -> string

val hazards_of_range : value_min:float -> value_max:float -> hazard list
(** Classify an observed value range against the fp16 limits. *)

type row = {
  kernel : string;
  launches : int;
  value_min : float;
  value_max : float;
  hazards : hazard list;
  loads : int;  (** total weighted loads observed *)
  redundant : int;
}

val redundancy : row -> float

type t

val create : unit -> t
val tool : t -> Pasta.Tool.t

val rows : t -> row list
val flagged : t -> row list
(** Kernels with at least one hazard. *)

val most_redundant : t -> row option
(** Highest redundancy among kernels with at least 1000 loads. *)

val report : t -> Format.formatter -> unit
