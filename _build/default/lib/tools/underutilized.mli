(** Underutilized-memory-region analysis (paper §III-H and the §V-B2
    conclusion: "a substantial fraction of memory is underutilized even
    for memory-intensive DL workloads").

    Correlates every live tensor (via the DL-framework events) with the
    access counts the GPU-resident analysis reports, and quantifies how
    much allocated memory is touched rarely or never — the theoretical
    basis the paper gives for swapping and offloading optimizations. *)

type row = {
  tag : string;  (** tensor label *)
  bytes : int;
  accesses : int;  (** total dynamic accesses over the run *)
  kernels_touching : int;
}

type t

val create : ?cold_threshold:int -> unit -> t
(** Objects with at most [cold_threshold] total accesses count as cold
    (default 0: never accessed). *)

val tool : t -> Pasta.Tool.t
(** GPU-resident instrumentation. *)

val rows : t -> row list
(** Every allocated tensor seen during the run, coldest-per-byte first
    (never-accessed large tensors on top). *)

val allocated_bytes_total : t -> int
(** Sum over all distinct tensors allocated during the run. *)

val cold_bytes : t -> int
(** Bytes belonging to cold tensors. *)

val cold_fraction : t -> float

val report : t -> Format.formatter -> unit
