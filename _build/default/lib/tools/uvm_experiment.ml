type run_stats = {
  elapsed_us : float;
  faults : int;
  refaults : int;
  migrated_bytes : int;
  prefetched_bytes : int;
  evicted_pages : int;
}

type outcome = {
  abbr : string;
  arch : Gpusim.Arch.t;
  oversub : float;
  footprint_bytes : int;
  capacity_bytes : int;
  baseline : run_stats;
  object_level : run_stats;
  tensor_level : run_stats;
}

let speedup o variant =
  let v = match variant with `Object -> o.object_level | `Tensor -> o.tensor_level in
  o.baseline.elapsed_us /. v.elapsed_us

let snapshot device =
  let s = Gpusim.Uvm.stats (Gpusim.Device.uvm device) in
  {
    elapsed_us = Gpusim.Device.now_us device;
    faults = s.Gpusim.Uvm.faults;
    refaults = s.Gpusim.Uvm.refaults;
    migrated_bytes = s.Gpusim.Uvm.migrated_bytes;
    prefetched_bytes = s.Gpusim.Uvm.prefetched_bytes;
    evicted_pages = s.Gpusim.Uvm.evicted_pages;
  }

let workload_seed = 0xF16AL

let run ?(mode = Dlfw.Runner.Inference) ?(iters = 1) ~arch ~oversub abbr =
  if oversub <= 0.0 then invalid_arg "Uvm_experiment.run: oversub must be positive";
  (* Pass 1: profile under PASTA to learn the footprint and the plans. *)
  let rec_ = Uvm_prefetch.recorder () in
  let footprint =
    let device = Gpusim.Device.create arch in
    let ctx = Dlfw.Ctx.create ~managed:true ~seed:workload_seed device in
    let (), _result =
      Pasta.Session.run ~tool:(Uvm_prefetch.recorder_tool rec_) device (fun () ->
          let model = Dlfw.Runner.build ctx abbr in
          Dlfw.Runner.run ctx model ~mode ~iters)
    in
    let fp = Dlfw.Allocator.peak_reserved ctx.Dlfw.Ctx.pool in
    Dlfw.Ctx.destroy ctx;
    fp
  in
  let capacity =
    if oversub <= 1.0 then arch.Gpusim.Arch.mem_bytes
    else
      max (2 * arch.Gpusim.Arch.uvm_page_bytes)
        (int_of_float (float_of_int footprint /. oversub))
  in
  (* Passes 2-4: baseline, then each prefetch granularity, on the limited
     device. *)
  let replay plan =
    let device = Gpusim.Device.create ~uvm_capacity:capacity arch in
    let ctx = Dlfw.Ctx.create ~managed:true ~seed:workload_seed device in
    (match plan with Some p -> Uvm_prefetch.install p device | None -> ());
    let model = Dlfw.Runner.build ctx abbr in
    Dlfw.Runner.run ctx model ~mode ~iters;
    let stats = snapshot device in
    (match plan with Some _ -> Uvm_prefetch.remove device | None -> ());
    Dlfw.Ctx.destroy ctx;
    stats
  in
  let baseline = replay None in
  let object_level = replay (Some (Uvm_prefetch.plan_of rec_ Uvm_prefetch.Object_level)) in
  let tensor_level = replay (Some (Uvm_prefetch.plan_of rec_ Uvm_prefetch.Tensor_level)) in
  {
    abbr;
    arch;
    oversub;
    footprint_bytes = footprint;
    capacity_bytes = capacity;
    baseline;
    object_level;
    tensor_level;
  }
