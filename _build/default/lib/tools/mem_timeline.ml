type t = {
  tl : Pasta_util.Timeline.t;
  mutable allocs : int;
  mutable frees : int;
}

let create () = { tl = Pasta_util.Timeline.create (); allocs = 0; frees = 0 }

let timeline t = t.tl
let peak_bytes t = Pasta_util.Timeline.peak t.tl
let alloc_events t = t.allocs
let free_events t = t.frees

let series t ~buckets =
  Array.map (fun b -> b /. 1048576.0) (Pasta_util.Timeline.bucketize t.tl ~buckets)

let report t ppf =
  Format.fprintf ppf
    "mem_timeline: %d allocs, %d frees, peak %a, duration %.1f us@."
    t.allocs t.frees Pasta_util.Bytesize.pp
    (int_of_float (peak_bytes t))
    (Pasta_util.Timeline.duration t.tl);
  if not (Pasta_util.Timeline.is_empty t.tl) then begin
    Format.fprintf ppf "usage: ";
    Pasta_util.Timeline.pp_sparkline ppf (series t ~buckets:60);
    Format.pp_print_newline ppf ()
  end

let tool t =
  {
    (Pasta.Tool.default "mem_timeline") with
    Pasta.Tool.on_event =
      (fun ev ->
        match ev.Pasta.Event.payload with
        | Pasta.Event.Tensor_alloc { pool_allocated; _ } ->
            t.allocs <- t.allocs + 1;
            Pasta_util.Timeline.record t.tl ~time:ev.Pasta.Event.time_us
              (float_of_int pool_allocated)
        | Pasta.Event.Tensor_free { pool_allocated; _ } ->
            t.frees <- t.frees + 1;
            Pasta_util.Timeline.record t.tl ~time:ev.Pasta.Event.time_us
              (float_of_int pool_allocated)
        | _ -> ());
    report = report t;
  }
