lib/tools/mem_timeline.ml: Array Format Pasta Pasta_util
