lib/tools/divergence.mli: Format Pasta
