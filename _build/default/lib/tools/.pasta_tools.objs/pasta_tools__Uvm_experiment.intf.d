lib/tools/uvm_experiment.mli: Dlfw Gpusim
