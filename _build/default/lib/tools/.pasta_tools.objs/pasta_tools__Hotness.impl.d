lib/tools/hotness.ml: Array Float Format List Pasta Pasta_util Printf
