lib/tools/memory_charact.mli: Format Pasta
