lib/tools/uvm_prefetch.mli: Gpusim Pasta
