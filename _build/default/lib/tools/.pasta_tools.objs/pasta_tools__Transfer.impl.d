lib/tools/transfer.ml: Format Hashtbl List Option Pasta Pasta_util
