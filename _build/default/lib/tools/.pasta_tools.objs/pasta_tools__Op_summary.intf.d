lib/tools/op_summary.mli: Format Pasta
