lib/tools/uvm_experiment.ml: Dlfw Gpusim Pasta Uvm_prefetch
