lib/tools/barrier_stall.ml: Format Gpusim Hashtbl List Option Pasta
