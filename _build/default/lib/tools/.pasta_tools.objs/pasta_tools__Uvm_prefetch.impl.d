lib/tools/uvm_prefetch.ml: Format Gpusim Int List Map Pasta
