lib/tools/divergence.ml: Format Gpusim Hashtbl List Option Pasta
