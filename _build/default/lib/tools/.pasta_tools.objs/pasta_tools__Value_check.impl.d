lib/tools/value_check.ml: Float Format Gpusim Hashtbl List Option Pasta String
