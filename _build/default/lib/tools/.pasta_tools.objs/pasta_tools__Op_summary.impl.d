lib/tools/op_summary.ml: Format Hashtbl List Option Pasta String
