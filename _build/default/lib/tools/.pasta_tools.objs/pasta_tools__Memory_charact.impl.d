lib/tools/memory_charact.ml: Array Format Hashtbl List Pasta Pasta_util
