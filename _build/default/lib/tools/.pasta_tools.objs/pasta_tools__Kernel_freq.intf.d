lib/tools/kernel_freq.mli: Format Pasta Pasta_util
