lib/tools/value_check.mli: Format Pasta
