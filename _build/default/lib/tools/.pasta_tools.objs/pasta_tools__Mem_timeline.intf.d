lib/tools/mem_timeline.mli: Format Pasta Pasta_util
