lib/tools/transfer.mli: Format Pasta
