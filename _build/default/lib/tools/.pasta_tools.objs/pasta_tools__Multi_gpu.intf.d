lib/tools/multi_gpu.mli: Gpusim Mem_timeline Pasta
