lib/tools/underutilized.mli: Format Pasta
