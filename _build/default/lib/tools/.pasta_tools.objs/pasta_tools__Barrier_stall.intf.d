lib/tools/barrier_stall.mli: Format Pasta
