lib/tools/underutilized.ml: Format Hashtbl List Pasta Pasta_util
