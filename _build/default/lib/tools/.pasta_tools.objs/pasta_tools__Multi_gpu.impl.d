lib/tools/multi_gpu.ml: Gpusim List Mem_timeline Pasta
