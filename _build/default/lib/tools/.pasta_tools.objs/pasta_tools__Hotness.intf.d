lib/tools/hotness.mli: Format Pasta
