lib/tools/tools.mli:
