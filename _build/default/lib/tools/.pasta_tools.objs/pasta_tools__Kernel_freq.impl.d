lib/tools/kernel_freq.ml: Format Pasta Pasta_util
