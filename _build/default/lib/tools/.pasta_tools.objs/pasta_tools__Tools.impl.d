lib/tools/tools.ml: Barrier_stall Divergence Hotness Kernel_freq Mem_timeline Memory_charact Op_summary Pasta Transfer Underutilized Value_check
