(** Memory-usage-over-time tool (paper §V-D, Figs. 14 and 15).

    Samples the framework's live allocation total at every tensor
    allocation and release, producing the ramp-up / peak / ramp-down
    curves of a training iteration, plus allocator-traffic counters for
    the cross-vendor comparison (NVIDIA issues fewer allocation events,
    AMD more, per Fig. 14). *)

type t

val create : unit -> t
val tool : t -> Pasta.Tool.t

val timeline : t -> Pasta_util.Timeline.t
(** (simulated time, live framework bytes) samples. *)

val peak_bytes : t -> float
val alloc_events : t -> int
val free_events : t -> int

val series : t -> buckets:int -> float array
(** Bucketized live-bytes curve (MB). *)

val report : t -> Format.formatter -> unit
