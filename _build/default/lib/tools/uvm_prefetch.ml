type granularity = Object_level | Tensor_level

let granularity_to_string = function
  | Object_level -> "object-level"
  | Tensor_level -> "tensor-level"

module Imap = Map.Make (Int)

type kernel_targets = {
  tensors : (int * int) list;  (** (base, bytes) of accessed tensors *)
  objects : (int * int) list;  (** (base, bytes) of their runtime allocations *)
}

type recorder = {
  own_objmap : Pasta.Objmap.t;
  mutable per_kernel : kernel_targets Imap.t; (* keyed by grid_id *)
}

let recorder () = { own_objmap = Pasta.Objmap.create (); per_kernel = Imap.empty }

let dedup ranges =
  List.sort_uniq compare ranges

(* The runtime allocation covering an address: for a tensor inside a pool
   segment this is the segment — the only granularity a framework-blind
   prefetcher can see. *)
let covering_alloc rec_ addr =
  List.find_opt (fun (base, bytes) -> addr >= base && addr < base + bytes)
    (Pasta.Objmap.live_allocs rec_.own_objmap)

let record_summary rec_ (info : Pasta.Event.kernel_info) summary =
  let tensors, objects =
    List.fold_left
      (fun (ts, os) (obj, count) ->
        if count <= 0 then (ts, os)
        else
          match obj with
          | Pasta.Objmap.Tensor { ptr; bytes; _ } ->
              let os =
                match covering_alloc rec_ ptr with
                | Some range -> range :: os
                | None -> os
              in
              ((ptr, bytes) :: ts, os)
          | Pasta.Objmap.Device_alloc { ptr; bytes; _ } ->
              ((ptr, bytes) :: ts, (ptr, bytes) :: os)
          | Pasta.Objmap.Unknown _ -> (ts, os))
      ([], []) summary
  in
  rec_.per_kernel <-
    Imap.add info.Pasta.Event.grid_id
      { tensors = dedup tensors; objects = dedup objects }
      rec_.per_kernel

let recorder_tool rec_ =
  {
    (Pasta.Tool.default ~fine_grained:Pasta.Tool.Gpu_accelerated "uvm_prefetch_recorder") with
    Pasta.Tool.on_event =
      (fun ev ->
        match ev.Pasta.Event.payload with
        | Pasta.Event.Memory_alloc { addr; bytes; managed } ->
            Pasta.Objmap.on_alloc rec_.own_objmap ~addr ~bytes ~managed
        | Pasta.Event.Memory_free { addr; _ } -> Pasta.Objmap.on_free rec_.own_objmap ~addr
        | Pasta.Event.Tensor_alloc { ptr; bytes; tag; _ } ->
            Pasta.Objmap.on_tensor_alloc rec_.own_objmap ~ptr ~bytes ~tag
        | Pasta.Event.Tensor_free { ptr; _ } ->
            Pasta.Objmap.on_tensor_free rec_.own_objmap ~ptr
        | _ -> ());
    on_mem_summary = record_summary rec_;
    report =
      (fun ppf ->
        Format.fprintf ppf "uvm_prefetch_recorder: plans for %d kernels@."
          (Imap.cardinal rec_.per_kernel));
  }

type plan = { ranges : (int * int) list Imap.t }

let plan_of rec_ granularity =
  let pick (kt : kernel_targets) =
    match granularity with Object_level -> kt.objects | Tensor_level -> kt.tensors
  in
  { ranges = Imap.map pick rec_.per_kernel }

let plan_kernels plan = Imap.cardinal plan.ranges

let plan_ranges plan =
  Imap.fold (fun _ rs acc -> acc + List.length rs) plan.ranges 0

let probe_name = "uvm-prefetcher"

let install plan device =
  let uvm = Gpusim.Device.uvm device in
  Gpusim.Device.add_probe device
    {
      Gpusim.Device.probe_name;
      on_event =
        (fun ev ->
          match ev with
          | Gpusim.Device.Launch_begin info -> (
              match Imap.find_opt info.Gpusim.Device.grid_id plan.ranges with
              | Some ranges ->
                  List.iter
                    (fun (base, bytes) -> Gpusim.Uvm.prefetch uvm ~base ~bytes)
                    ranges
              | None -> ())
          | _ -> ());
    }

let remove device = Gpusim.Device.remove_probe device probe_name
