(** Tensor-aware UVM prefetching (paper §V-C1, Figs. 11 and 12).

    Two-phase design, exactly the paper's tool:

    {b Phase 1 — record.}  A GPU-accelerated PASTA tool correlates every
    kernel launch with the memory objects and tensors it actually
    accesses, producing a prefetch {!plan} keyed by grid id.  Because the
    simulator is deterministic, grid ids and device addresses are
    reproducible across runs.

    {b Phase 2 — replay.}  A probe installed on a fresh device issues
    [cudaMemPrefetchAsync]-equivalents before each kernel launch, at
    either granularity:

    - [Object_level]: whole runtime allocations (pool segments) — the
      conventional strategy, which degrades badly under oversubscription
      because pool segments bundle tensors with unrelated lifetimes;
    - [Tensor_level]: exactly the tensors the kernel accesses — the
      cross-layer strategy only PASTA's DL-framework integration makes
      possible. *)

type granularity = Object_level | Tensor_level

val granularity_to_string : granularity -> string

type recorder

val recorder : unit -> recorder
val recorder_tool : recorder -> Pasta.Tool.t

type plan

val plan_of : recorder -> granularity -> plan
val plan_kernels : plan -> int
(** Number of kernels with recorded prefetch targets. *)

val plan_ranges : plan -> int
(** Total (deduplicated per kernel) prefetch ranges in the plan. *)

val install : plan -> Gpusim.Device.t -> unit
(** Attach the prefetching probe: before each kernel launch, prefetch the
    plan's ranges for that grid id into device memory. *)

val remove : Gpusim.Device.t -> unit
