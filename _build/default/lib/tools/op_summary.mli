(** Layer-wise / operator-wise kernel attribution (the DLProf-style
    summary the paper cites as related work, built in a few lines on
    PASTA's cross-layer events).

    Correlates kernel-end events with the framework operator that was open
    when the kernel launched (via [RecordFunction] begin/end), attributing
    GPU time, launch counts and memory traffic per "aten::" operator —
    something neither a vendor profiler (no operator boundaries) nor the
    framework profiler (no kernel times) can produce alone. *)

type row = {
  op_name : string;
  calls : int;  (** operator invocations *)
  kernels : int;  (** kernels attributed *)
  gpu_time_us : float;
  accesses : int;  (** global-memory accesses by attributed kernels *)
}

type t

val create : unit -> t
val tool : t -> Pasta.Tool.t

val rows : t -> row list
(** Sorted by decreasing GPU time. *)

val total_gpu_time_us : t -> float

val unattributed_kernels : t -> int
(** Kernels that launched outside any operator scope. *)

val report : t -> Format.formatter -> unit
