(** End-to-end driver for the UVM prefetching evaluation
    (paper §V-C1, Figs. 11 and 12).

    For one (model, GPU, oversubscription) point it runs four deterministic
    passes:

    + a profiling pass with the {!Uvm_prefetch} recorder attached, which
      yields the workload's device-memory footprint and the per-kernel
      prefetch plans;
    + a baseline pass under UVM demand paging with device capacity limited
      to footprint / oversubscription;
    + one pass per prefetch granularity with the prefetching probe
      installed on the same limited capacity.

    Determinism makes the passes address- and grid-id-compatible, standing
    in for the paper's record-then-replay on real hardware. *)

type run_stats = {
  elapsed_us : float;
  faults : int;
  refaults : int;  (** faults on previously evicted pages — thrashing *)
  migrated_bytes : int;
  prefetched_bytes : int;
  evicted_pages : int;
}

type outcome = {
  abbr : string;
  arch : Gpusim.Arch.t;
  oversub : float;
  footprint_bytes : int;
  capacity_bytes : int;
  baseline : run_stats;
  object_level : run_stats;
  tensor_level : run_stats;
}

val speedup : outcome -> [ `Object | `Tensor ] -> float
(** Baseline time divided by the variant's time (> 1 is a speedup). *)

val run :
  ?mode:Dlfw.Runner.mode ->
  ?iters:int ->
  arch:Gpusim.Arch.t ->
  oversub:float ->
  string ->
  outcome
(** [run ~arch ~oversub abbr] with [oversub <= 1.0] meaning no
    oversubscription (full device capacity).  [iters] defaults to one
    iteration — the paper's UVM runs are single-iteration.  Raises
    [Invalid_argument] for unknown models or non-positive oversub. *)
