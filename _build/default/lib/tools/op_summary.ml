type row = {
  op_name : string;
  calls : int;
  kernels : int;
  gpu_time_us : float;
  accesses : int;
}

type t = {
  table : (string, row) Hashtbl.t;
  mutable open_ops : string list; (* innermost first *)
  mutable unattributed : int;
}

let create () = { table = Hashtbl.create 64; open_ops = []; unattributed = 0 }

let row t name =
  Option.value
    ~default:{ op_name = name; calls = 0; kernels = 0; gpu_time_us = 0.0; accesses = 0 }
    (Hashtbl.find_opt t.table name)

let on_operator t name phase _seq =
  match phase with
  | `Enter ->
      t.open_ops <- name :: t.open_ops;
      let r = row t name in
      Hashtbl.replace t.table name { r with calls = r.calls + 1 }
  | `Exit -> (
      match t.open_ops with
      | top :: rest when String.equal top name -> t.open_ops <- rest
      | _ :: rest -> t.open_ops <- rest (* tolerate interleaving *)
      | [] -> ())

let on_kernel_end t _info (summary : Pasta.Event.kernel_end_summary) =
  match t.open_ops with
  | [] -> t.unattributed <- t.unattributed + 1
  | op :: _ ->
      let r = row t op in
      Hashtbl.replace t.table op
        {
          r with
          kernels = r.kernels + 1;
          gpu_time_us = r.gpu_time_us +. summary.Pasta.Event.duration_us;
          accesses = r.accesses + summary.Pasta.Event.true_accesses;
        }

let rows t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.table []
  |> List.sort (fun a b -> compare b.gpu_time_us a.gpu_time_us)

let total_gpu_time_us t = List.fold_left (fun acc r -> acc +. r.gpu_time_us) 0.0 (rows t)
let unattributed_kernels t = t.unattributed

let report t ppf =
  let rs = rows t in
  if rs = [] then Format.fprintf ppf "op_summary: no operators observed@."
  else begin
    Format.fprintf ppf "GPU time per framework operator (%.1f ms total):@."
      (total_gpu_time_us t /. 1000.0);
    List.iteri
      (fun i r ->
        if i < 15 then
          Format.fprintf ppf "  %-42s %9.2f ms  %5d kernels  %5d calls@." r.op_name
            (r.gpu_time_us /. 1000.0)
            r.kernels r.calls)
      rs;
    if t.unattributed > 0 then
      Format.fprintf ppf "  (%d kernels outside any operator scope)@." t.unattributed
  end

let tool t =
  {
    (Pasta.Tool.default "op_summary") with
    Pasta.Tool.on_operator = on_operator t;
    on_kernel_end = on_kernel_end t;
    report = report t;
  }
