(** Tool-collection registry glue: make every case-study tool selectable
    by name (the [accelprof -t <tool>] / [PASTA_TOOL] mechanism). *)

val register_all : unit -> unit
(** Registers: "kernel_freq", "memory_charact" (GPU-accelerated),
    "memory_charact_cs_cpu", "memory_charact_nvbit_cpu", "hotness",
    "mem_timeline", "divergence", "barrier_stall", "value_check",
    "op_summary", "trace_export", "transfer", "underutilized". *)
