type row = { tag : string; bytes : int; accesses : int; kernels_touching : int }

type acc = {
  mutable a_tag : string;
  a_bytes : int;
  mutable a_accesses : int;
  mutable a_kernels : int;
}

type t = {
  cold_threshold : int;
  (* Keyed by base address + size: distinct allocations at a reused
     address stay distinct only while live, which is the right
     granularity for "was this allocation ever used". *)
  objects : (int * int, acc) Hashtbl.t;
}

let create ?(cold_threshold = 0) () =
  if cold_threshold < 0 then invalid_arg "Underutilized.create: negative threshold";
  { cold_threshold; objects = Hashtbl.create 256 }

let note_alloc t ~ptr ~bytes ~tag =
  match Hashtbl.find_opt t.objects (ptr, bytes) with
  | Some acc ->
      (* The pool reused this block for a new tensor: keep the access
         totals (the bytes were utilized) but adopt the newest label. *)
      acc.a_tag <- tag
  | None ->
      Hashtbl.add t.objects (ptr, bytes)
        { a_tag = tag; a_bytes = bytes; a_accesses = 0; a_kernels = 0 }

let note_access t ~ptr ~bytes ~count =
  match Hashtbl.find_opt t.objects (ptr, bytes) with
  | Some acc ->
      acc.a_accesses <- acc.a_accesses + count;
      acc.a_kernels <- acc.a_kernels + 1
  | None -> ()

let rows t =
  Hashtbl.fold
    (fun _ acc l ->
      { tag = acc.a_tag; bytes = acc.a_bytes; accesses = acc.a_accesses;
        kernels_touching = acc.a_kernels }
      :: l)
    t.objects []
  |> List.sort (fun a b ->
         let coldness r = (r.accesses, -r.bytes) in
         compare (coldness a) (coldness b))

let allocated_bytes_total t =
  Hashtbl.fold (fun _ acc n -> n + acc.a_bytes) t.objects 0

let cold_bytes t =
  Hashtbl.fold
    (fun _ acc n -> if acc.a_accesses <= t.cold_threshold then n + acc.a_bytes else n)
    t.objects 0

let cold_fraction t =
  let total = allocated_bytes_total t in
  if total = 0 then 0.0 else float_of_int (cold_bytes t) /. float_of_int total

let report t ppf =
  if Hashtbl.length t.objects = 0 then
    Format.fprintf ppf "underutilized: no tensors observed@."
  else begin
    Format.fprintf ppf
      "underutilized: %a allocated across %d tensors; %a (%.1f%%) with <= %d accesses@."
      Pasta_util.Bytesize.pp (allocated_bytes_total t)
      (Hashtbl.length t.objects) Pasta_util.Bytesize.pp (cold_bytes t)
      (100.0 *. cold_fraction t)
      t.cold_threshold;
    Format.fprintf ppf "coldest tensors (offloading candidates):@.";
    List.iteri
      (fun i r ->
        if i < 10 then
          Format.fprintf ppf "  %-28s %12s  %10d accesses in %4d kernels@." r.tag
            (Pasta_util.Bytesize.to_string r.bytes)
            r.accesses r.kernels_touching)
      (rows t)
  end

let tool t =
  {
    (Pasta.Tool.default ~fine_grained:Pasta.Tool.Gpu_accelerated "underutilized") with
    Pasta.Tool.on_event =
      (fun ev ->
        match ev.Pasta.Event.payload with
        | Pasta.Event.Tensor_alloc { ptr; bytes; tag; _ } -> note_alloc t ~ptr ~bytes ~tag
        | _ -> ());
    on_mem_summary =
      (fun _info summary ->
        List.iter
          (fun (obj, count) ->
            match obj with
            | Pasta.Objmap.Tensor { ptr; bytes; tag } ->
                (* Tensors created before the session attached (model
                   parameters) still deserve rows. *)
                note_alloc t ~ptr ~bytes ~tag;
                note_access t ~ptr ~bytes ~count
            | Pasta.Objmap.Device_alloc _ | Pasta.Objmap.Unknown _ -> ())
          summary);
    report = report t;
  }
