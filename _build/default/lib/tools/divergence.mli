(** Branch-divergence analysis (paper §III-H, "Instruction-level analysis
    tools").

    Intercepts device-side control-flow instructions and correlates them
    with active thread masks, aggregating per kernel name: dynamic branch
    counts, how many split their warp, and the resulting divergence rate —
    the warp-inefficiency signal for SIMT architectures. *)

type row = {
  kernel : string;
  launches : int;
  branches : int;
  divergent : int;
}

val divergence_rate : row -> float
(** [divergent / branches]; 0 when the kernel has no branches. *)

type t

val create : unit -> t

val tool : t -> Pasta.Tool.t
(** [Instruction_level] instrumentation (Sanitizer control-flow patching). *)

val rows : t -> row list
(** Sorted by decreasing divergent-branch count. *)

val total_branches : t -> int
val total_divergent : t -> int

val worst : t -> row option
(** The kernel with the highest divergence rate among those with at least
    1000 branches (noise floor). *)

val report : t -> Format.formatter -> unit
