type row = { kernel : string; launches : int; branches : int; divergent : int }

let divergence_rate r =
  if r.branches = 0 then 0.0 else float_of_int r.divergent /. float_of_int r.branches

type t = { table : (string, row) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let observe t (info : Pasta.Event.kernel_info) (p : Gpusim.Kernel.profile) =
  let name = info.Pasta.Event.name in
  let prev =
    Option.value
      ~default:{ kernel = name; launches = 0; branches = 0; divergent = 0 }
      (Hashtbl.find_opt t.table name)
  in
  Hashtbl.replace t.table name
    {
      prev with
      launches = prev.launches + 1;
      branches = prev.branches + p.Gpusim.Kernel.branches;
      divergent = prev.divergent + p.Gpusim.Kernel.divergent_branches;
    }

let rows t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.table []
  |> List.sort (fun a b -> compare b.divergent a.divergent)

let total_branches t = List.fold_left (fun acc r -> acc + r.branches) 0 (rows t)
let total_divergent t = List.fold_left (fun acc r -> acc + r.divergent) 0 (rows t)

let worst t =
  rows t
  |> List.filter (fun r -> r.branches >= 1000)
  |> List.sort (fun a b -> compare (divergence_rate b) (divergence_rate a))
  |> function
  | [] -> None
  | r :: _ -> Some r

let report t ppf =
  let rs = rows t in
  if rs = [] then Format.fprintf ppf "divergence: no kernels observed@."
  else begin
    let tb = total_branches t and td = total_divergent t in
    Format.fprintf ppf
      "divergence: %d dynamic branches, %d divergent (%.2f%% overall)@." tb td
      (if tb = 0 then 0.0 else 100.0 *. float_of_int td /. float_of_int tb);
    List.iteri
      (fun i r ->
        if i < 10 then
          Format.fprintf ppf "  %-58s %10d branches  %6.2f%% divergent@." r.kernel
            r.branches
            (100.0 *. divergence_rate r))
      rs;
    match worst t with
    | Some r ->
        Format.fprintf ppf "highest divergence rate: %s (%.1f%%)@." r.kernel
          (100.0 *. divergence_rate r)
    | None -> ()
  end

let tool t =
  {
    (Pasta.Tool.default ~fine_grained:Pasta.Tool.Instruction_level "divergence") with
    Pasta.Tool.on_kernel_profile = observe t;
    report = report t;
  }
