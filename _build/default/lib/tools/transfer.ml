type direction_row = {
  direction : Pasta.Event.copy_direction;
  count : int;
  bytes : int;
}

type t = { table : (Pasta.Event.copy_direction, direction_row) Hashtbl.t }

let create () = { table = Hashtbl.create 8 }

let observe t direction bytes =
  let prev =
    Option.value ~default:{ direction; count = 0; bytes = 0 }
      (Hashtbl.find_opt t.table direction)
  in
  Hashtbl.replace t.table direction
    { prev with count = prev.count + 1; bytes = prev.bytes + bytes }

let rows t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.table []
  |> List.sort (fun a b -> compare b.bytes a.bytes)

let total_bytes t = List.fold_left (fun acc r -> acc + r.bytes) 0 (rows t)
let total_count t = List.fold_left (fun acc r -> acc + r.count) 0 (rows t)

let bytes_of t d =
  Option.value ~default:0
    (Option.map (fun r -> r.bytes) (Hashtbl.find_opt t.table d))

let h2d_bytes t = bytes_of t `H2d
let d2h_bytes t = bytes_of t `D2h

let imbalance t =
  let h = float_of_int (h2d_bytes t) and d = float_of_int (d2h_bytes t) in
  if h +. d <= 0.0 then 0.0 else h /. (h +. d)

let report t ppf =
  let rs = rows t in
  if rs = [] then Format.fprintf ppf "transfer: no copies observed@."
  else begin
    Format.fprintf ppf "transfer: %d copies, %a total@." (total_count t)
      Pasta_util.Bytesize.pp (total_bytes t);
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-12s %6d copies  %a@."
          (Format.asprintf "%a" Pasta.Event.pp_direction r.direction)
          r.count Pasta_util.Bytesize.pp r.bytes)
      rs;
    Format.fprintf ppf "host->device share of host-link traffic: %.0f%%@."
      (100.0 *. imbalance t)
  end

let tool t =
  {
    (Pasta.Tool.default "transfer") with
    Pasta.Tool.on_event =
      (fun ev ->
        match ev.Pasta.Event.payload with
        | Pasta.Event.Memory_copy { bytes; direction; _ } -> observe t direction bytes
        | _ -> ());
    report = report t;
  }
