let fp16_max = 65504.0
let fp16_min_normal = 6.104e-5

type hazard = Overflow | Underflow

let hazard_to_string = function Overflow -> "fp16-overflow" | Underflow -> "fp16-underflow"

type row = {
  kernel : string;
  launches : int;
  value_min : float;
  value_max : float;
  hazards : hazard list;
  loads : int;
  redundant : int;
}

let redundancy r =
  if r.loads = 0 then 0.0 else float_of_int r.redundant /. float_of_int r.loads

let hazards_of_range ~value_min ~value_max =
  let overflow = Float.max (Float.abs value_min) (Float.abs value_max) > fp16_max in
  let underflow =
    let magnitude = Float.min (Float.abs value_min) (Float.abs value_max) in
    magnitude > 0.0 && magnitude < fp16_min_normal
  in
  (if overflow then [ Overflow ] else []) @ if underflow then [ Underflow ] else []

type t = { table : (string, row) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let observe t (info : Pasta.Event.kernel_info) (p : Gpusim.Kernel.profile) summary_loads =
  let name = info.Pasta.Event.name in
  let prev =
    Option.value
      ~default:
        { kernel = name; launches = 0; value_min = infinity; value_max = neg_infinity;
          hazards = []; loads = 0; redundant = 0 }
      (Hashtbl.find_opt t.table name)
  in
  let value_min = Float.min prev.value_min p.Gpusim.Kernel.value_min in
  let value_max = Float.max prev.value_max p.Gpusim.Kernel.value_max in
  Hashtbl.replace t.table name
    {
      prev with
      launches = prev.launches + 1;
      value_min;
      value_max;
      hazards = hazards_of_range ~value_min ~value_max;
      loads = prev.loads + summary_loads;
      redundant = prev.redundant + p.Gpusim.Kernel.redundant_loads;
    }

let rows t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.table []
  |> List.sort (fun a b -> compare a.kernel b.kernel)

let flagged t = List.filter (fun r -> r.hazards <> []) (rows t)

let most_redundant t =
  rows t
  |> List.filter (fun r -> r.loads >= 1000)
  |> List.sort (fun a b -> compare (redundancy b) (redundancy a))
  |> function
  | [] -> None
  | r :: _ -> Some r

let report t ppf =
  let rs = rows t in
  if rs = [] then Format.fprintf ppf "value_check: no kernels observed@."
  else begin
    let bad = flagged t in
    Format.fprintf ppf "value_check: %d kernels observed, %d with fp16 hazards@."
      (List.length rs) (List.length bad);
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-58s range [%.3g, %.3g]  %s@." r.kernel r.value_min
          r.value_max
          (String.concat "," (List.map hazard_to_string r.hazards)))
      bad;
    (match most_redundant t with
    | Some r ->
        Format.fprintf ppf "most redundant loads: %s (%.1f%% of %d loads)@." r.kernel
          (100.0 *. redundancy r)
          r.loads
    | None -> ())
  end

let tool t =
  {
    (Pasta.Tool.default ~fine_grained:Pasta.Tool.Instruction_level "value_check") with
    Pasta.Tool.on_kernel_profile =
      (fun info p ->
        (* Total loads come from the kernel's true access count, which the
           launch-end summary reports; approximate with the kernel's
           redundant count as a floor plus what on_kernel_end adds. *)
        observe t info p 0);
    on_kernel_end =
      (fun info summary ->
        (* Fold the exact load volume into the row created by the profile
           callback (profile fires before launch-end). *)
        match Hashtbl.find_opt t.table info.Pasta.Event.name with
        | Some prev ->
            Hashtbl.replace t.table info.Pasta.Event.name
              { prev with loads = prev.loads + summary.Pasta.Event.true_accesses }
        | None -> ());
    report = report t;
  }
