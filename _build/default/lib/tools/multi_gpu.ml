type entry = {
  device : Gpusim.Device.t;
  session : Pasta.Session.t;
  mem : Mem_timeline.t;
}

type t = { entries : entry list }

let attach ?(has_context = fun _ -> true) devices =
  let entries =
    List.filter_map
      (fun device ->
        if has_context device then begin
          let mem = Mem_timeline.create () in
          let session = Pasta.Session.attach ~tool:(Mem_timeline.tool mem) device in
          Some { device; session; mem }
        end
        else None)
      devices
  in
  { entries }

let detach t =
  List.map
    (fun e -> (Gpusim.Device.id e.device, Pasta.Session.detach e.session))
    t.entries

let timelines t = List.map (fun e -> (Gpusim.Device.id e.device, e.mem)) t.entries
let instrumented_devices t = List.length t.entries
