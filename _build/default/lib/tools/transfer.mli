(** Host-device transfer analysis: the Nsight-Systems-style memcpy summary
    (counts, bytes and simulated bandwidth share per direction), built as
    a trivial template extension over the coarse [Memory_copy] events.
    Excessive or asymmetric transfer traffic is the classic first-order
    inefficiency in accelerator applications (what DrGPUM/Diogenes hunt,
    per the paper's related work). *)

type direction_row = {
  direction : Pasta.Event.copy_direction;
  count : int;
  bytes : int;
}

type t

val create : unit -> t
val tool : t -> Pasta.Tool.t

val rows : t -> direction_row list
(** One row per direction seen, sorted by decreasing bytes. *)

val total_bytes : t -> int
val total_count : t -> int

val h2d_bytes : t -> int
val d2h_bytes : t -> int

val imbalance : t -> float
(** [h2d / (h2d + d2h)] in bytes; 0.5 is balanced, 0 when no transfers. *)

val report : t -> Format.formatter -> unit
