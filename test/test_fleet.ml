(* Fleet-scale profiling: reduction-topology determinism, failure-aware
   merge nodes, the domain-safe Guard under concurrent access, and chaos
   runs (injected crashes/stragglers/corruption) that must stay
   byte-deterministic at any domain count, live or replayed. *)

module F = Pasta.Fleet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let qtest = QCheck_alcotest.to_alcotest

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Reduction topology                                                  *)
(* ------------------------------------------------------------------ *)

let level_widths p = List.map Array.length p.F.pl_levels

let test_plan_shape () =
  let p = F.plan ~fanout:2 8 in
  Alcotest.(check (list int)) "8 leaves, fanout 2" [ 4; 2; 1 ] (level_widths p);
  check_int "7 merge nodes" 7 (F.plan_nodes p);
  let p = F.plan ~fanout:8 64 in
  Alcotest.(check (list int)) "64 leaves, fanout 8" [ 8; 1 ] (level_widths p);
  check_int "9 merge nodes" 9 (F.plan_nodes p);
  (* ragged width: 10 leaves at fanout 4 -> 3 groups, then 1 root *)
  let p = F.plan ~fanout:4 10 in
  Alcotest.(check (list int)) "10 leaves, fanout 4" [ 3; 1 ] (level_widths p);
  let p1 = F.plan ~fanout:4 1 in
  check_int "single leaf still has a root" 1 (F.plan_nodes p1);
  Alcotest.check_raises "fanout 1 rejected"
    (Invalid_argument "Fleet.plan: fanout must be >= 2") (fun () ->
      ignore (F.plan ~fanout:1 4))

let test_plan_partitions_leaves () =
  let p = F.plan ~fanout:3 17 in
  (* level-major ids are dense and stable *)
  let next = ref 0 in
  List.iter
    (fun level ->
      Array.iter
        (fun n ->
          check_int "level-major id" !next n.F.pn_id;
          incr next)
        level)
    p.F.pl_levels;
  check_int "id count = node count" (F.plan_nodes p) !next;
  (* every leaf feeds exactly one first-level node, in order *)
  let fed =
    List.concat_map
      (fun n -> n.F.pn_children)
      (Array.to_list (List.hd p.F.pl_levels))
  in
  Alcotest.(check (list int)) "leaves partitioned in order"
    (List.init 17 Fun.id) fed

(* ------------------------------------------------------------------ *)
(* Failure-aware reduction over synthesized leaves                     *)
(* ------------------------------------------------------------------ *)

(* One real per-shard summary from a tiny instrumented run; scaled clones
   stand in for distinct devices (uniform integer scaling preserves every
   Devagg.validate invariant). *)
let leaf_summary =
  lazy
    (let device = Gpusim.Device.create ~seed:77L Gpusim.Arch.a100 in
     let acc = ref [] in
     let tool =
       {
         (Pasta.Tool.default ~fine_grained:Pasta.Tool.Gpu_parallel "fleet-test") with
         Pasta.Tool.on_device_summary = (fun _ s -> acc := s :: !acc);
       }
     in
     let (), _ =
       Pasta.Session.run ~tool device (fun () ->
           let buf = Gpusim.Device.malloc device (1 lsl 20) in
           ignore
             (Gpusim.Device.launch device
                (Gpusim.Kernel.make ~name:"fleet_test_kernel"
                   ~grid:(Gpusim.Dim3.make 32) ~block:(Gpusim.Dim3.make 128)
                   ~regions:
                     [
                       Gpusim.Kernel.region ~base:buf.Gpusim.Device_mem.base
                         ~bytes:(1 lsl 18) ~accesses:4_000 ();
                     ]
                   ())))
     in
     Pasta.Devagg.merge_summaries (List.rev !acc))

let scale k (s : Pasta.Devagg.summary) =
  {
    s with
    Pasta.Devagg.objects = List.map (fun (o, w) -> (o, w * k)) s.objects;
    blocks = List.map (fun (b, c) -> (b, c * k)) s.blocks;
    sampled_records = s.sampled_records * k;
    true_accesses = s.true_accesses * k;
    writes = s.writes * k;
  }

let leaves n = Array.init n (fun d -> Some (scale (1 + (d mod 5)) (Lazy.force leaf_summary)))

let summary_text = Format.asprintf "%a" Pasta.Devagg.pp

let test_merge_validate_roundtrip () =
  let s = Lazy.force leaf_summary in
  Alcotest.(check (result unit string)) "leaf validates" (Ok ())
    (Pasta.Devagg.validate s);
  let m = Pasta.Devagg.merge_summaries [ s; scale 3 s; scale 2 s ] in
  Alcotest.(check (result unit string)) "merge validates" (Ok ())
    (Pasta.Devagg.validate m);
  check_int "merged totals are sums" (6 * s.Pasta.Devagg.true_accesses)
    m.Pasta.Devagg.true_accesses

let test_tree_equals_flat () =
  let ls = leaves 20 in
  let red = F.reduce ~seed:0x5eedL ~fanout:4 ls in
  let flat = F.flat_merge (Array.to_list ls |> List.filter_map Fun.id) in
  check_bool "tree summary present" true (red.F.red_summary <> None);
  check_string "tree == flat bytes"
    (summary_text (Option.get flat))
    (summary_text (Option.get red.F.red_summary));
  Alcotest.(check (list int)) "all devices aggregated" (List.init 20 Fun.id)
    red.F.red_devices;
  check_bool "nothing dropped" true (red.F.red_dropped = [])

let test_reduce_skips_missing () =
  let ls = leaves 9 in
  ls.(2) <- None;
  ls.(7) <- None;
  let red = F.reduce ~seed:1L ~fanout:3 ls in
  Alcotest.(check (list int)) "missing leaves excluded" [ 0; 1; 3; 4; 5; 6; 8 ]
    red.F.red_devices

let corrupting_rates =
  { Gpusim.Faults.default_fleet_rates with Gpusim.Faults.corrupt_summary = 0.5 }

let test_reduce_drops_corrupt () =
  let ls = leaves 16 in
  let red = F.reduce ~rates:corrupting_rates ~seed:0xBADL ~fanout:4 ls in
  check_bool "corruption at this rate drops someone" true
    (red.F.red_dropped <> []);
  let dropped = List.concat_map snd red.F.red_dropped in
  List.iter
    (fun d ->
      check_bool
        (Printf.sprintf "device %d not dropped AND aggregated" d)
        false
        (List.mem d red.F.red_devices))
    dropped;
  Alcotest.(check (list int)) "dropped + aggregated = all leaves"
    (List.init 16 Fun.id)
    (List.sort compare (red.F.red_devices @ dropped));
  check_bool "survivors still merge" true (red.F.red_summary <> None)

let reduction_fingerprint red =
  Format.asprintf "%s|%s|%s"
    (match red.F.red_summary with Some s -> summary_text s | None -> "-")
    (String.concat "," (List.map string_of_int red.F.red_devices))
    (String.concat ";"
       (List.map
          (fun (n, ds) ->
            Printf.sprintf "%d:[%s]" n
              (String.concat "," (List.map string_of_int ds)))
          red.F.red_dropped))

let test_reduce_pool_invariant () =
  let ls = leaves 24 in
  let serial = F.reduce ~rates:corrupting_rates ~seed:0xBADL ~fanout:4 ls in
  List.iter
    (fun size ->
      let pool = Pasta_util.Domain_pool.global ~size in
      let par = F.reduce ~pool ~rates:corrupting_rates ~seed:0xBADL ~fanout:4 ls in
      check_string
        (Printf.sprintf "pool of %d matches serial" size)
        (reduction_fingerprint serial) (reduction_fingerprint par))
    [ 1; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Guard under concurrent quarantine / half-open probes                *)
(* ------------------------------------------------------------------ *)

let test_concurrent_trip_once () =
  let trips = Atomic.make 0 in
  let g =
    Pasta.Guard.create ~threshold:1 ~cooldown_kernels:max_int
      ~on_trip:(fun ~failures:_ -> Atomic.incr trips)
      (Pasta.Tool.default "race-trip")
  in
  let barrier = Atomic.make 0 in
  let doms =
    List.init 8 (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr barrier;
            while Atomic.get barrier < 8 do
              Domain.cpu_relax ()
            done;
            Pasta.Guard.call g Pasta.Guard.On_event (fun _ -> failwith "boom")))
  in
  List.iter Domain.join doms;
  check_int "a concurrent failure burst trips exactly once" 1
    (Atomic.get trips);
  check_int "one quarantine recorded" 1 (Pasta.Guard.quarantine_count g);
  check_string "breaker is quarantined" "quarantined"
    (Pasta.Guard.state_name (Pasta.Guard.state g))

(* Random race model: [domains] workers each replay a script of
   succeed/fail calls interleaved with cooldown ticks against one guard
   with an aggressive (1-kernel) cooldown, so quarantine, half-open
   probing and reinstatement all race.  Whatever the interleaving, the
   breaker must stay internally consistent: every call either ran or was
   suppressed, failure/trip/reinstate counters relate sanely, and no
   exception escapes. *)
let guard_race_model =
  QCheck.Test.make ~count:60 ~name:"guard: concurrent race invariants"
    QCheck.(
      pair (int_range 2 4) (small_list (small_list bool)))
    (fun (domains, scripts) ->
      let scripts =
        List.init domains (fun i ->
            match List.nth_opt scripts i with Some s -> s | None -> [ true; false ])
      in
      let executed = Atomic.make 0 in
      let failures_attempted =
        List.fold_left
          (fun acc s -> acc + List.length (List.filter Fun.id s))
          0 scripts
      in
      let total_calls = List.fold_left (fun acc s -> acc + List.length s) 0 scripts in
      let trips = Atomic.make 0 in
      let g =
        Pasta.Guard.create ~threshold:2 ~cooldown_kernels:1
          ~on_trip:(fun ~failures:_ -> Atomic.incr trips)
          (Pasta.Tool.default "race-model")
      in
      let doms =
        List.map
          (fun script ->
            Domain.spawn (fun () ->
                List.iter
                  (fun fail ->
                    Pasta.Guard.note_kernel g;
                    Pasta.Guard.call g Pasta.Guard.On_event (fun _ ->
                        Atomic.incr executed;
                        if fail then failwith "boom"))
                  script))
          scripts
      in
      List.iter Domain.join doms;
      let failures = Pasta.Guard.total_failures g in
      let quarantines = Pasta.Guard.quarantine_count g in
      let reinstated = Pasta.Guard.reinstated_count g in
      let suppressed = Pasta.Guard.suppressed_count g in
      Atomic.get executed + suppressed = total_calls
      && failures <= failures_attempted
      && quarantines = Atomic.get trips
      && quarantines <= failures
      && reinstated <= quarantines
      && suppressed <= total_calls)

(* ------------------------------------------------------------------ *)
(* Fleet chaos runs                                                    *)
(* ------------------------------------------------------------------ *)

let chaos_cfg ?capture_prefix ~devices () =
  {
    (F.default_cfg ~devices ()) with
    F.fault_rates = Some Gpusim.Faults.default_fleet_rates;
    deadline_us = 150.0;
    retries = 2;
    backoff_base_us = 10.0;
    seed = 0xC0FFEEL;
    capture_prefix;
  }

let with_domains d f =
  Pasta.Config.set "ACCEL_PROF_DOMAINS" (string_of_int d);
  Fun.protect ~finally:(fun () -> Pasta.Config.unset "ACCEL_PROF_DOMAINS") f

let test_chaos_partial_report () =
  let r = F.run (chaos_cfg ~devices:12 ()) in
  check_int "every device reported" 12 (List.length r.F.devices);
  check_int "statuses partition the fleet" 12 (r.F.fresh + r.F.stale + r.F.missing);
  check_bool "chaos at this seed loses someone" true
    (r.F.missing > 0 || r.F.dropped_at_merge <> []);
  (* every missing device is named in the report with its reason *)
  List.iter
    (fun d ->
      match d.F.fr_status with
      | F.Missing reason ->
          check_bool
            (Printf.sprintf "report names missing device %d" d.F.fr_dev)
            true
            (contains r.F.report
               (Printf.sprintf "device %3d: missing:%s" d.F.fr_dev
                  (F.reason_name reason)))
      | F.Fresh | F.Stale -> ())
    r.F.devices;
  (* dropped devices are excluded from coverage *)
  let aggregated =
    List.length
      (List.filter
         (fun d -> d.F.fr_status <> F.Missing F.Crashed
                   && d.F.fr_status <> F.Missing F.Quarantined
                   && d.F.fr_status <> F.Missing F.Timeout)
         r.F.devices)
    - List.length (List.concat_map snd r.F.dropped_at_merge)
  in
  check_bool "coverage matches aggregated/total" true
    (Float.abs (r.F.coverage -. (float_of_int aggregated /. 12.0)) < 1e-9)

let test_chaos_deterministic_across_domains () =
  let reports =
    List.map (fun d -> with_domains d (fun () -> (F.run (chaos_cfg ~devices:12 ())).F.report))
      [ 1; 4; 8 ]
  in
  match reports with
  | [ a; b; c ] ->
      check_string "1 domain = 4 domains" a b;
      check_string "4 domains = 8 domains" b c
  | _ -> assert false

let test_all_timeout_names_everyone () =
  let cfg =
    { (chaos_cfg ~devices:5 ()) with F.deadline_us = 10.0; fault_rates = None }
  in
  let r = F.run cfg in
  check_int "no device beats a 10us deadline" 5 r.F.missing;
  check_bool "no aggregate" true (r.F.summary = None);
  check_bool "coverage is zero" true (r.F.coverage = 0.0);
  check_bool "report names the timeouts" true
    (contains r.F.report "missing (timeout): [0,1,2,3,4]")

let test_coverage_reweights_estimate () =
  (* force exactly the stragglers out: deadline catches normal shards *)
  let r = F.run (chaos_cfg ~devices:12 ()) in
  match r.F.summary with
  | Some s when r.F.coverage < 1.0 ->
      check_bool "partial aggregate is annotated as estimate" true
        (s.Pasta.Devagg.est_rate < 1.0);
      check_bool "stderr widened" true (Pasta.Devagg.rel_stderr s > 0.0)
  | Some _ -> check_bool "full coverage keeps exact rate" true (r.F.coverage = 1.0)
  | None -> Alcotest.fail "chaos run lost every device"

let test_capture_replay_byte_identical () =
  let prefix =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pasta_fleet_%d" (Unix.getpid ()))
  in
  let devices = 6 in
  let cfg = chaos_cfg ~capture_prefix:prefix ~devices () in
  Fun.protect
    ~finally:(fun () ->
      for d = 0 to devices - 1 do
        let p = F.trace_path prefix d in
        if Sys.file_exists p then Sys.remove p
      done)
    (fun () ->
      let live = F.run cfg in
      let replayed = F.replay cfg in
      check_string "replayed report is byte-identical" live.F.report
        replayed.F.report;
      check_int "same missing set" live.F.missing replayed.F.missing)

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "plan: shapes and node counts" `Quick test_plan_shape;
    Alcotest.test_case "plan: level-major ids partition the leaves" `Quick
      test_plan_partitions_leaves;
    Alcotest.test_case "merge_summaries/validate round trip" `Quick
      test_merge_validate_roundtrip;
    Alcotest.test_case "tree reduction == flat merge" `Quick test_tree_equals_flat;
    Alcotest.test_case "reduction skips missing leaves" `Quick
      test_reduce_skips_missing;
    Alcotest.test_case "merge nodes drop corrupt summaries" `Quick
      test_reduce_drops_corrupt;
    Alcotest.test_case "reduction invariant under pool size" `Quick
      test_reduce_pool_invariant;
    Alcotest.test_case "guard: concurrent failure burst trips once" `Quick
      test_concurrent_trip_once;
    qtest guard_race_model;
    Alcotest.test_case "chaos: partial report names every loss" `Quick
      test_chaos_partial_report;
    Alcotest.test_case "chaos: byte-deterministic at 1/4/8 domains" `Quick
      test_chaos_deterministic_across_domains;
    Alcotest.test_case "all-timeout fleet reports everyone missing" `Quick
      test_all_timeout_names_everyone;
    Alcotest.test_case "coverage re-weights the aggregate estimate" `Quick
      test_coverage_reweights_estimate;
    Alcotest.test_case "fleet capture -> replay is byte-identical" `Quick
      test_capture_replay_byte_identical;
  ]
