(* Golden-report snapshot harness.

   Runs the seeded quickstart workload (the BERT inference the README
   opens with) under each locked tool and compares the report text
   byte-for-byte against the snapshots in [test/golden/].  The simulator
   stack is deterministic end to end, so any diff is a real behaviour
   change — re-bless intentionally with [--update]:

     dune exec test/golden_runner.exe -- --update

   The overhead report is the one wall-clock-dependent output; its
   numeric and whitespace runs are collapsed before comparison so the
   snapshot locks the table's structure, labels and row set. *)

let update = ref false
let dir = ref (if Sys.file_exists "test/golden" then "test/golden" else "golden")

let () =
  let rec parse = function
    | [] -> ()
    | "--update" :: rest ->
        update := true;
        parse rest
    | "--dir" :: d :: rest ->
        dir := d;
        parse rest
    | arg :: _ ->
        prerr_endline ("golden_runner: unknown argument " ^ arg);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

(* Pin every knob the reports depend on, so a developer's environment
   cannot make the snapshots lie. *)
let () =
  List.iter Pasta.Config.unset
    [
      "ACCEL_PROF_SAMPLE_RATE";
      "ACCEL_PROF_OVERHEAD_BUDGET";
      "ACCEL_PROF_ENV_SAMPLE_RATE";
      "ACCEL_PROF_INJECT_FAULTS";
      "ACCEL_PROF_DOMAINS";
      "ACCEL_PROF_RANGE";
    ];
  Pasta.Config.set "ACCEL_PROF_TELEMETRY" "basic";
  Pasta.Telemetry.refresh_level ()

(* Collapse each run of digits (dots/commas inside numbers included) to a
   single '#', and each run of spaces to a single space, so right-aligned
   columns of varying wall-clock magnitudes compare equal. *)
let scrub s =
  let n = String.length s in
  let buf = Buffer.create n in
  let is_digit c = c >= '0' && c <= '9' in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if is_digit c then begin
      Buffer.add_char buf '#';
      let j = ref (!i + 1) in
      let stop = ref false in
      while (not !stop) && !j < n do
        if is_digit s.[!j] then incr j
        else if
          (s.[!j] = '.' || s.[!j] = ',')
          && !j + 1 < n
          && is_digit s.[!j + 1]
        then j := !j + 2
        else stop := true
      done;
      i := !j
    end
    else if c = ' ' then begin
      Buffer.add_char buf ' ';
      while !i < n && s.[!i] = ' ' do
        incr i
      done
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

let quickstart device =
  let ctx = Dlfw.Ctx.create device in
  let m = Dlfw.Bert.build ~batch:1 ~seq:64 ~layers:2 ~dim:64 ~heads:4 ctx in
  Dlfw.Model.inference_iter ctx m;
  ctx

let run_tool tool =
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = ref None in
  let (), result =
    Pasta.Session.run ~tool device (fun () -> ctx := Some (quickstart device))
  in
  Option.iter Dlfw.Ctx.destroy !ctx;
  (Format.asprintf "%t" result.Pasta.Session.report, result)

let kernel_freq () =
  let t = Pasta_tools.Kernel_freq.create () in
  fst (run_tool (Pasta_tools.Kernel_freq.tool t))

let hotness () =
  let t = Pasta_tools.Hotness.create () in
  fst (run_tool (Pasta_tools.Hotness.tool_fine t))

let op_summary () =
  let t = Pasta_tools.Op_summary.create () in
  fst (run_tool (Pasta_tools.Op_summary.tool t))

(* The --overhead-report surface: attribution table plus the governor
   line, exactly what bin/accelprof prints, scrubbed of clock noise.  A
   fixed-rate governor keeps the snapshot line's wording independent of
   wall-clock behaviour (an auto governor's adjustment/violation counts —
   and with them English plurals and the optional floor line — vary run
   to run, which no numeric scrub can hide). *)
let overhead_report () =
  Pasta.Telemetry.reset ();
  let t = Pasta_tools.Hotness.create () in
  let device = Gpusim.Device.create Gpusim.Arch.a100 in
  let ctx = ref None in
  let (), result =
    Pasta.Session.run ~sample_rate:0.25
      ~tool:(Pasta_tools.Hotness.tool_fine t)
      device
      (fun () -> ctx := Some (quickstart device))
  in
  Option.iter Dlfw.Ctx.destroy !ctx;
  let attribution =
    Format.asprintf "%a" Pasta.Telemetry.pp_attribution
      (Pasta.Telemetry.attribution ())
  in
  let governor =
    match result.Pasta.Session.health.Pasta.Session.sampling with
    | Some sn -> Format.asprintf "%a@." Pasta.Sampler.pp_snapshot sn
    | None -> "sampling: (no governor)\n"
  in
  scrub (attribution ^ governor)

let read_file path =
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  body

let write_file path body =
  let oc = open_out_bin path in
  output_string oc body;
  close_out oc

let failures = ref 0

let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go n = function
    | x :: xs, y :: ys when String.equal x y -> go (n + 1) (xs, ys)
    | x :: _, y :: _ -> Some (n, x, y)
    | x :: _, [] -> Some (n, x, "<missing>")
    | [], y :: _ -> Some (n, "<missing>", y)
    | [], [] -> None
  in
  go 1 (la, lb)

let snapshot name produce =
  let path = Filename.concat !dir (name ^ ".txt") in
  let got = produce () in
  if !update then begin
    write_file path got;
    Printf.printf "golden: blessed %s (%d bytes)\n" path (String.length got)
  end
  else if not (Sys.file_exists path) then begin
    incr failures;
    Printf.printf "golden: MISSING %s — run with --update to bless it\n" path
  end
  else begin
    let want = read_file path in
    if String.equal want got then Printf.printf "golden: ok %s\n" path
    else begin
      incr failures;
      Printf.printf "golden: MISMATCH %s\n" path;
      match first_diff want got with
      | Some (line, w, g) ->
          Printf.printf "  first diff at line %d:\n  - %s\n  + %s\n" line w g
      | None -> ()
    end
  end

let () =
  snapshot "kernel_freq" kernel_freq;
  snapshot "hotness" hotness;
  snapshot "op_summary" op_summary;
  snapshot "overhead_report" overhead_report;
  if !failures > 0 then begin
    Printf.printf
      "golden: %d snapshot%s out of date (dune exec test/golden_runner.exe \
       -- --update to re-bless)\n"
      !failures
      (if !failures = 1 then "" else "s");
    exit 1
  end
