(* Vendor profiling substrate tests: Sanitizer, NVBit, ROCProfiler. *)

open Gpusim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_device ?(arch = Arch.a100) () = Device.create arch

let mk_kernel device ~bytes ~accesses =
  let a = Device.malloc device bytes in
  Kernel.make ~name:"vendor_test_kernel" ~grid:(Dim3.make 8) ~block:(Dim3.make 128)
    ~regions:[ Kernel.region ~base:a.Device_mem.base ~bytes ~accesses () ]
    ()

(* ---- Sanitizer ---- *)

let test_sanitizer_domains () =
  let d = mk_device () in
  let s = Vendor.Sanitizer.attach d in
  let hits = ref 0 in
  Vendor.Sanitizer.set_callback s (fun _ -> incr hits);
  ignore (Device.malloc d 512);
  check_int "nothing before enable" 0 !hits;
  Vendor.Sanitizer.enable_domain s Vendor.Sanitizer.Memory;
  ignore (Device.malloc d 512);
  check_int "alloc delivered" 1 !hits;
  Vendor.Sanitizer.disable_domain s Vendor.Sanitizer.Memory;
  ignore (Device.malloc d 512);
  check_int "disabled again" 1 !hits;
  Vendor.Sanitizer.detach s;
  Vendor.Sanitizer.enable_domain s Vendor.Sanitizer.Memory;
  ignore (Device.malloc d 512);
  check_int "detached" 1 !hits

let test_sanitizer_launch_events () =
  let d = mk_device () in
  let s = Vendor.Sanitizer.attach d in
  Vendor.Sanitizer.enable_domain s Vendor.Sanitizer.Launch;
  let begins = ref 0 and ends = ref 0 in
  Vendor.Sanitizer.set_callback s (function
    | Vendor.Sanitizer.Launch_begin _ -> incr begins
    | Vendor.Sanitizer.Launch_end _ -> incr ends
    | _ -> ());
  let k = mk_kernel d ~bytes:4096 ~accesses:100 in
  ignore (Device.launch d k);
  check_int "begin" 1 !begins;
  check_int "end" 1 !ends;
  check_bool "workload time recorded" true
    ((Vendor.Sanitizer.phases s).Vendor.Phases.workload_us > 0.0)

let test_sanitizer_device_analysis () =
  let d = mk_device () in
  let s = Vendor.Sanitizer.attach d in
  let regions = ref 0 and completes = ref 0 and order_ok = ref true in
  Vendor.Sanitizer.patch_module s
    (Vendor.Sanitizer.Device_analysis
       {
         map_bytes = (fun () -> 1024);
         device_fn =
           (fun _ _ ->
             incr regions;
             if !completes > 0 then order_ok := false);
         on_kernel_complete = (fun _ _ -> incr completes);
       });
  let k = mk_kernel d ~bytes:8192 ~accesses:50000 in
  ignore (Device.launch d k);
  check_int "one region" 1 !regions;
  check_int "one completion" 1 !completes;
  check_bool "regions before completion" true !order_ok;
  let p = Vendor.Sanitizer.phases s in
  check_bool "collect charged" true (p.Vendor.Phases.collect_us > 0.0);
  check_bool "transfer charged (map both ways)" true (p.Vendor.Phases.transfer_us > 0.0);
  Alcotest.(check (float 0.0)) "no host analysis in GPU mode" 0.0 p.Vendor.Phases.analysis_us

let test_sanitizer_host_analysis () =
  let d = mk_device () in
  Device.set_sample_cap d 8;
  let s = Vendor.Sanitizer.attach d in
  let weight = ref 0 in
  Vendor.Sanitizer.patch_module s
    (Vendor.Sanitizer.Host_analysis
       {
         buffer_records = 1000;
         on_record = (fun _ a -> weight := !weight + a.Warp.weight);
         on_batch = None;
         per_record_us = 0.1;
       });
  let k = mk_kernel d ~bytes:8192 ~accesses:12345 in
  ignore (Device.launch d k);
  check_int "weights cover all true records" 12345 !weight;
  let p = Vendor.Sanitizer.phases s in
  check_bool "analysis charged" true (p.Vendor.Phases.analysis_us > 0.0);
  check_bool "transfer charged" true (p.Vendor.Phases.transfer_us > 0.0);
  (* Host analysis must cost per true record. *)
  Alcotest.(check (float 1.0)) "per-record accounting" 1234.5 p.Vendor.Phases.analysis_us

let test_sanitizer_buffer_stall () =
  (* A smaller device buffer forces more flushes but identical totals. *)
  let run buffer_records =
    let d = mk_device () in
    Device.set_sample_cap d 64;
    let s = Vendor.Sanitizer.attach d in
    let flushed_batches = ref 0 in
    let last = ref (-1) in
    Vendor.Sanitizer.patch_module s
      (Vendor.Sanitizer.Host_analysis
         {
           buffer_records;
           on_record =
             (fun info _ ->
               if info.Device.grid_id <> !last then begin
                 incr flushed_batches;
                 last := info.Device.grid_id
               end);
           on_batch = None;
           per_record_us = 0.1;
         });
    let k = mk_kernel d ~bytes:65536 ~accesses:100000 in
    ignore (Device.launch d k);
    (Vendor.Sanitizer.phases s).Vendor.Phases.analysis_us
  in
  Alcotest.(check (float 1.0)) "total analysis independent of buffer size"
    (run 100) (run 100000)

let test_sanitizer_invalid_buffer () =
  let d = mk_device () in
  let s = Vendor.Sanitizer.attach d in
  Alcotest.check_raises "zero buffer"
    (Invalid_argument "Sanitizer.patch_module: buffer_records must be positive")
    (fun () ->
      Vendor.Sanitizer.patch_module s
        (Vendor.Sanitizer.Host_analysis
           { buffer_records = 0; on_record = (fun _ _ -> ()); on_batch = None; per_record_us = 0.1 }))

(* ---- NVBit ---- *)

let test_nvbit_parse_cache () =
  let d = mk_device () in
  let nv = Vendor.Nvbit.attach d in
  let k = mk_kernel d ~bytes:4096 ~accesses:10 in
  let i1 = Vendor.Nvbit.get_instrs nv k in
  let cost_after_first = (Vendor.Nvbit.phases nv).Vendor.Phases.collect_us in
  let i2 = Vendor.Nvbit.get_instrs nv k in
  check_int "cached same listing" (List.length i1) (List.length i2);
  Alcotest.(check (float 0.0)) "second dump free (cached)" cost_after_first
    (Vendor.Nvbit.phases nv).Vendor.Phases.collect_us;
  check_int "one function parsed" 1 (Vendor.Nvbit.functions_parsed nv)

let test_nvbit_instrument () =
  let d = mk_device () in
  Device.set_sample_cap d 16;
  let nv = Vendor.Nvbit.attach d in
  let weight = ref 0 in
  Vendor.Nvbit.instrument_memory nv
    ~on_record:(fun _ a -> weight := !weight + a.Warp.weight)
    ();
  let k = mk_kernel d ~bytes:8192 ~accesses:777 in
  ignore (Device.launch d k);
  check_int "records delivered" 777 !weight;
  check_int "kernel parsed on first launch" 1 (Vendor.Nvbit.functions_parsed nv);
  ignore (Device.launch d k);
  check_int "second launch reuses parse" 1 (Vendor.Nvbit.functions_parsed nv)

let test_nvbit_costlier_than_sanitizer () =
  (* Same workload, both CPU-analysis models: NVBit must cost more
     (heavier trampoline, SASS parse, per-flush channel overhead). *)
  let run attach_and_patch =
    let d = mk_device () in
    Device.set_sample_cap d 16;
    attach_and_patch d;
    let k = mk_kernel d ~bytes:65536 ~accesses:1_000_000 in
    ignore (Device.launch d k);
    Device.now_us d
  in
  let t_cs =
    run (fun d ->
        let s = Vendor.Sanitizer.attach d in
        Vendor.Sanitizer.patch_module s
          (Vendor.Sanitizer.Host_analysis
             {
               buffer_records = Vendor.Sanitizer.default_buffer_records;
               on_record = (fun _ _ -> ());
               on_batch = None;
               per_record_us = Costmodel.sanitizer_host_per_record_us;
             }))
  in
  let t_nvbit =
    run (fun d ->
        let nv = Vendor.Nvbit.attach d in
        Vendor.Nvbit.instrument_memory nv ~on_record:(fun _ _ -> ()) ())
  in
  check_bool "nvbit slower than sanitizer" true (t_nvbit > t_cs)

let test_nvbit_opcode_counts () =
  let d = mk_device () in
  let nv = Vendor.Nvbit.attach d in
  let seen = ref [] in
  Vendor.Nvbit.instrument_opcodes nv
    ~opcodes:[ Instr.Ld_global; Instr.Exit ]
    ~on_counts:(fun _ counts -> seen := counts)
    ();
  let k = mk_kernel d ~bytes:4096 ~accesses:100 in
  ignore (Device.launch d k);
  let threads = Kernel.threads k in
  let get o = Option.value ~default:(-1) (List.assoc_opt o !seen) in
  (* The test kernel has one read region -> one LDG, and every listing ends
     in one EXIT; dynamic count = static x threads. *)
  check_int "ldg dynamic count" (1 * threads) (get Instr.Ld_global);
  check_int "exit dynamic count" (1 * threads) (get Instr.Exit);
  check_bool "collect charged" true
    ((Vendor.Nvbit.phases nv).Vendor.Phases.collect_us > 0.0)

let test_nvbit_events () =
  let d = mk_device () in
  let nv = Vendor.Nvbit.attach d in
  let events = ref [] in
  Vendor.Nvbit.at_cuda_event nv (fun ev ->
      let tag =
        match ev with
        | Vendor.Nvbit.Ev_launch_begin _ -> "lb"
        | Ev_launch_end _ -> "le"
        | Ev_memcpy _ -> "cp"
        | Ev_malloc _ -> "ma"
        | Ev_free _ -> "fr"
        | Ev_sync -> "sy"
      in
      events := tag :: !events);
  let a = Device.malloc d 4096 in
  Device.memcpy d ~dst:a.Device_mem.base ~src:0 ~bytes:4096 ~kind:Device.Host_to_device ();
  Device.free d a.Device_mem.base;
  Device.synchronize d;
  Alcotest.(check (list string)) "event kinds" [ "ma"; "cp"; "fr"; "sy" ] (List.rev !events)

(* ---- ROCProfiler ---- *)

let test_rocprofiler_vendor_check () =
  let d = mk_device ~arch:Arch.a100 () in
  Alcotest.check_raises "nvidia rejected"
    (Invalid_argument "Rocprofiler.attach: not an AMD device") (fun () ->
      ignore (Vendor.Rocprofiler.attach d))

let test_rocprofiler_negative_free () =
  let d = mk_device ~arch:Arch.mi300x () in
  let r = Vendor.Rocprofiler.attach d in
  let deltas = ref [] in
  Vendor.Rocprofiler.configure_callback r (function
    | Vendor.Rocprofiler.Memory_allocate { size_delta; _ } ->
        deltas := size_delta :: !deltas
    | _ -> ());
  let a = Device.malloc d 1000 in
  Device.free d a.Device_mem.base;
  (match List.rev !deltas with
  | [ alloc; free ] ->
      check_int "allocation positive" 1024 alloc;
      check_int "release negative" (-1024) free
  | _ -> Alcotest.fail "expected two allocate records")

let test_rocprofiler_dispatch () =
  let d = mk_device ~arch:Arch.mi300x () in
  let r = Vendor.Rocprofiler.attach d in
  let phases_seen = ref [] in
  Vendor.Rocprofiler.configure_callback r (function
    | Vendor.Rocprofiler.Kernel_dispatch { phase; stats; agent; _ } ->
        phases_seen := (phase, stats <> None, agent) :: !phases_seen
    | _ -> ());
  let k = mk_kernel d ~bytes:4096 ~accesses:10 in
  ignore (Device.launch d k);
  (match List.rev !phases_seen with
  | [ (`Begin, false, a1); (`End, true, a2) ] ->
      check_int "agent is device id" (Device.id d) a1;
      check_int "same agent" a1 a2
  | _ -> Alcotest.fail "expected begin/end dispatch records")

let test_rocprofiler_patch () =
  let d = mk_device ~arch:Arch.mi300x () in
  let r = Vendor.Rocprofiler.attach d in
  let regions = ref 0 in
  Vendor.Rocprofiler.patch_kernels r
    ~map_bytes:(fun () -> 512)
    ~device_fn:(fun _ _ -> incr regions)
    ~on_kernel_complete:(fun _ _ -> ());
  let k = mk_kernel d ~bytes:4096 ~accesses:10 in
  ignore (Device.launch d k);
  check_int "region delivered" 1 !regions

(* ---- Phases ---- *)

let test_phases_arith () =
  let p = Vendor.Phases.create () in
  p.Vendor.Phases.workload_us <- 10.0;
  p.Vendor.Phases.collect_us <- 20.0;
  p.Vendor.Phases.transfer_us <- 30.0;
  p.Vendor.Phases.analysis_us <- 40.0;
  Alcotest.(check (float 1e-9)) "total" 100.0 (Vendor.Phases.total_us p);
  Alcotest.(check (float 1e-9)) "overhead" 90.0 (Vendor.Phases.overhead_us p);
  let w, c, t, a = Vendor.Phases.fractions p in
  Alcotest.(check (float 1e-9)) "w" 0.1 w;
  Alcotest.(check (float 1e-9)) "c" 0.2 c;
  Alcotest.(check (float 1e-9)) "t" 0.3 t;
  Alcotest.(check (float 1e-9)) "a" 0.4 a;
  let q = Vendor.Phases.add p p in
  Alcotest.(check (float 1e-9)) "add" 200.0 (Vendor.Phases.total_us q);
  Vendor.Phases.reset p;
  Alcotest.(check (float 0.0)) "reset" 0.0 (Vendor.Phases.total_us p)

let suite =
  [
    ("sanitizer domains", `Quick, test_sanitizer_domains);
    ("sanitizer launch events", `Quick, test_sanitizer_launch_events);
    ("sanitizer device analysis", `Quick, test_sanitizer_device_analysis);
    ("sanitizer host analysis", `Quick, test_sanitizer_host_analysis);
    ("sanitizer buffer-size invariance", `Quick, test_sanitizer_buffer_stall);
    ("sanitizer invalid buffer", `Quick, test_sanitizer_invalid_buffer);
    ("nvbit parse cache", `Quick, test_nvbit_parse_cache);
    ("nvbit instrument", `Quick, test_nvbit_instrument);
    ("nvbit costlier than sanitizer", `Quick, test_nvbit_costlier_than_sanitizer);
    ("nvbit opcode counts", `Quick, test_nvbit_opcode_counts);
    ("nvbit events", `Quick, test_nvbit_events);
    ("rocprofiler vendor check", `Quick, test_rocprofiler_vendor_check);
    ("rocprofiler negative free", `Quick, test_rocprofiler_negative_free);
    ("rocprofiler dispatch", `Quick, test_rocprofiler_dispatch);
    ("rocprofiler patch", `Quick, test_rocprofiler_patch);
    ("phases arithmetic", `Quick, test_phases_arith);
  ]
